package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"
)

// event is a scheduled resumption of a process.
type event struct {
	at  Time
	seq uint64 // creation order; breaks timestamp ties deterministically
	p   *Proc
}

// eventHeap is a min-heap ordered by (at, seq).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// Engine is a deterministic discrete-event simulation kernel.  Create one
// with NewEngine, add processes with Spawn, then call Run.
//
// An Engine is not safe for concurrent use; all interaction happens either
// before Run or from within simulated processes (which the engine runs one
// at a time).
type Engine struct {
	now    Time
	events eventHeap
	seq    uint64

	yield   chan struct{} // running proc hands control back on this
	nLive   int           // spawned but not yet terminated processes
	procs   []*Proc
	running *Proc
	failure error // first process panic, converted to a run error

	// Events counts every event dispatched by Run.  It is the
	// simulator-cost metric used by the paper's "speed of simulation"
	// comparison (more simulated events = slower simulation).
	Events uint64

	// MaxTime, when positive, aborts Run with a *TimeLimitError once
	// the simulated clock passes it — a watchdog against runaway
	// simulations (livelocked spin loops, mis-sized workloads).
	MaxTime Time

	// Tick, when non-nil, is invoked from Run every time the simulated
	// clock is about to advance to a strictly later value, with the new
	// time.  It runs before the advancing event dispatches, so all
	// state mutations recorded so far happened at or before the
	// previous clock value — the hook telemetry probes use to close
	// sampling epochs.  Tick must not call back into the engine.
	Tick func(now Time)
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	return &Engine{yield: make(chan struct{})}
}

// Now reports the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Procs returns the processes spawned on the engine, in spawn order.
func (e *Engine) Procs() []*Proc { return e.procs }

// schedule enqueues a resumption of p at time at (>= now).
func (e *Engine) schedule(at Time, p *Proc) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past: %v < now %v", at, e.now))
	}
	if at > p.sched {
		p.sched = at
	}
	e.seq++
	heap.Push(&e.events, event{at: at, seq: e.seq, p: p})
}

// Spawn creates a simulated process executing fn and schedules it to start
// at the current simulation time.  It may be called before Run or from
// inside a running process.  The returned Proc is also passed to fn.
func (e *Engine) Spawn(name string, fn func(*Proc)) *Proc {
	p := &Proc{
		ID:     len(e.procs),
		Name:   name,
		eng:    e,
		resume: make(chan struct{}),
	}
	e.procs = append(e.procs, p)
	e.nLive++
	go func() {
		<-p.resume // wait for the engine to dispatch our start event
		defer func() {
			if r := recover(); r != nil && e.failure == nil {
				e.failure = fmt.Errorf("sim: process %q panicked at %v: %v", p.Name, e.now, r)
			}
			p.terminated = true
			e.nLive--
			e.yield <- struct{}{} // hand control back; goroutine exits
		}()
		fn(p)
	}()
	e.schedule(e.now, p)
	return p
}

// Run dispatches events until none remain.  It returns a *DeadlockError
// if processes are still alive (parked forever) when the event queue
// drains, and nil when every process has terminated.
func (e *Engine) Run() error {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(event)
		if ev.p.terminated {
			continue // stale wakeup for a finished process
		}
		if e.Tick != nil && ev.at > e.now {
			e.Tick(ev.at)
		}
		e.now = ev.at
		if e.MaxTime > 0 && e.now > e.MaxTime {
			return &TimeLimitError{Limit: e.MaxTime, At: e.now}
		}
		e.Events++
		e.running = ev.p
		ev.p.parked = false
		ev.p.resume <- struct{}{}
		<-e.yield
		e.running = nil
		if e.failure != nil {
			return e.failure
		}
	}
	if e.nLive > 0 {
		return e.deadlock()
	}
	return nil
}

func (e *Engine) deadlock() *DeadlockError {
	var stuck []string
	for _, p := range e.procs {
		if !p.terminated {
			stuck = append(stuck, p.Name)
		}
	}
	sort.Strings(stuck)
	return &DeadlockError{At: e.now, Procs: stuck}
}

// DeadlockError reports that the event queue drained while processes were
// still blocked, i.e. the simulated program deadlocked.
type DeadlockError struct {
	At    Time     // simulation time at which progress stopped
	Procs []string // names of the blocked processes
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at %v: blocked processes: %s",
		d.At, strings.Join(d.Procs, ", "))
}

// TimeLimitError reports that the simulation exceeded Engine.MaxTime.
type TimeLimitError struct {
	Limit Time
	At    Time
}

func (t *TimeLimitError) Error() string {
	return fmt.Sprintf("sim: simulated time %v exceeded the %v limit", t.At, t.Limit)
}
