package app

import (
	"sort"

	"spasm/internal/sim"
	"spasm/internal/stats"
)

// Phase profiling: SPASM's overhead separation applied per program
// phase, so an analysis can say not just *how much* latency or
// contention a run accumulated but *which part of the program* caused it
// (the instrument behind the paper's per-phase arguments, e.g. "during
// the communication phase in FFT...").
//
// A program calls p.Phase("transpose") at each phase boundary; the
// framework attributes all overheads between boundaries to the named
// phase, per processor, and aggregates them in the run's PhaseProfile.

// PhaseStats aggregates the overheads attributed to one named phase.
type PhaseStats struct {
	Name string
	// Time sums each overhead bucket across processors.
	Time [stats.NumBuckets]sim.Time
	// Wall sums the processors' elapsed local time in the phase.
	Wall sim.Time
	// Visits counts processor entries into the phase.
	Visits int
}

// PhaseProfile collects PhaseStats for a run, in first-entry order.
type PhaseProfile struct {
	phases map[string]*PhaseStats
	order  []string
}

// newPhaseProfile returns an empty profile.
func newPhaseProfile() *PhaseProfile {
	return &PhaseProfile{phases: map[string]*PhaseStats{}}
}

// Get returns the stats for a named phase, or nil.
func (pp *PhaseProfile) Get(name string) *PhaseStats { return pp.phases[name] }

// Phases returns all phases in first-entry order.
func (pp *PhaseProfile) Phases() []*PhaseStats {
	out := make([]*PhaseStats, 0, len(pp.order))
	for _, n := range pp.order {
		out = append(out, pp.phases[n])
	}
	return out
}

// Names returns the phase names in first-entry order.
func (pp *PhaseProfile) Names() []string {
	return append([]string(nil), pp.order...)
}

// TotalWall sums the wall time across phases (process-seconds).
func (pp *PhaseProfile) TotalWall() sim.Time {
	var t sim.Time
	for _, ps := range pp.phases {
		t += ps.Wall
	}
	return t
}

func (pp *PhaseProfile) add(name string, dt [stats.NumBuckets]sim.Time, wall sim.Time) {
	ps, ok := pp.phases[name]
	if !ok {
		ps = &PhaseStats{Name: name}
		pp.phases[name] = ps
		pp.order = append(pp.order, name)
	}
	for b := range dt {
		ps.Time[b] += dt[b]
	}
	ps.Wall += wall
	ps.Visits++
}

// Phase marks a phase boundary: all overheads since the previous
// boundary (or the processor's start) are attributed to the previous
// phase, and subsequent overheads accrue to the named one.  Programs
// that never call Phase incur no profiling cost.
func (p *Proc) Phase(name string) {
	p.closePhase()
	p.phase = name
	p.phaseT0 = p.Now()
	p.phaseSnap = p.St.Time
}

// closePhase attributes the open phase interval, if any.  The runner
// calls it after Body returns.
func (p *Proc) closePhase() {
	if p.phase == "" {
		return
	}
	var dt [stats.NumBuckets]sim.Time
	for b := range dt {
		dt[b] = p.St.Time[b] - p.phaseSnap[b]
	}
	// The profile map is shared across processors: commit through the
	// ordered gate so parallel runs accumulate it in dispatch order.
	p.S.Ordered(func() {
		p.Ctx.Phases.add(p.phase, dt, p.Now()-p.phaseT0)
	})
	p.phase = ""
}

// SortedByBucket returns phase names ordered by descending time in one
// bucket — "which phase causes the contention".
func (pp *PhaseProfile) SortedByBucket(b stats.Bucket) []*PhaseStats {
	out := pp.Phases()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time[b] > out[j].Time[b] })
	return out
}
