package exp

import (
	"spasm/internal/apps"
	"spasm/internal/machine"
)

// The fidelity-comparison study contrasts the three network tiers —
// the flow abstraction, the LogP abstraction, and the detailed
// circuit-switched fabric — on the full application suite: how far each
// abstraction's predicted execution time lands from the detailed
// machine's, and how much network-model work each tier performed to get
// there.  It is the quantitative basis for adaptive fidelity: the flow
// tier is worth starting on exactly when its error stays small while
// its model-event count is orders of magnitude below the per-hop
// fabric's.

// FidelityRow compares the network tiers for one application.
type FidelityRow struct {
	App string
	// TargetUS, FlowUS and LogPUS are the predicted execution times, us.
	TargetUS float64
	FlowUS   float64
	LogPUS   float64
	// FlowErrPct and LogPErrPct are each abstraction's signed execution
	// time error against the detailed machine, in percent.
	FlowErrPct float64
	LogPErrPct float64
	// TargetNetEvents, FlowNetEvents and LogPNetEvents are each tier's
	// network-model work: per-hop reservations, allocation
	// recomputations, and port gatings respectively.
	TargetNetEvents uint64
	FlowNetEvents   uint64
	LogPNetEvents   uint64
	// EventRatio is TargetNetEvents / max(FlowNetEvents, 1) — the flow
	// tier's event-reduction factor.
	EventRatio float64
}

// FidelityStudy runs the application suite on the flow, LogP, and
// detailed target machines at the given topology and processor count.
// Like every study it is cached on the session and fully deterministic.
func (s *Session) FidelityStudy(topo string, p int) ([]FidelityRow, error) {
	var out []FidelityRow
	for _, name := range apps.Names() {
		tgt, err := s.Run(name, topo, machine.Target, p)
		if err != nil {
			return nil, err
		}
		fl, err := s.Run(name, topo, machine.Flow, p)
		if err != nil {
			return nil, err
		}
		lg, err := s.Run(name, topo, machine.LogP, p)
		if err != nil {
			return nil, err
		}
		row := FidelityRow{
			App:             name,
			TargetUS:        tgt.Total.Micros(),
			FlowUS:          fl.Total.Micros(),
			LogPUS:          lg.Total.Micros(),
			TargetNetEvents: tgt.NetEvents,
			FlowNetEvents:   fl.NetEvents,
			LogPNetEvents:   lg.NetEvents,
		}
		if row.TargetUS > 0 {
			row.FlowErrPct = 100 * (row.FlowUS - row.TargetUS) / row.TargetUS
			row.LogPErrPct = 100 * (row.LogPUS - row.TargetUS) / row.TargetUS
		}
		flEvents := row.FlowNetEvents
		if flEvents == 0 {
			flEvents = 1
		}
		row.EventRatio = float64(row.TargetNetEvents) / float64(flEvents)
		out = append(out, row)
	}
	return out, nil
}
