package probe_test

import (
	"testing"

	"spasm"
	"spasm/internal/stats"
)

// profiledCases are the (application, machine) pairs the accounting
// tests sweep: a compute-bound workload and a communication-bound one,
// each on the detailed target machine and on the abstracted LogP
// machine.
var profiledCases = []struct {
	app  string
	kind spasm.Kind
	topo string
	p    int
}{
	{"ep", spasm.Target, "mesh", 4},
	{"ep", spasm.LogP, "mesh", 4},
	{"fft", spasm.Target, "mesh", 8},
	{"fft", spasm.LogP, "mesh", 8},
}

// TestEpochAccounting checks the probe's central invariant: for every
// processor and every bucket and counter, the per-epoch deltas sum
// exactly to the run's aggregate statistics.
func TestEpochAccounting(t *testing.T) {
	for _, tc := range profiledCases {
		t.Run(tc.app+"/"+tc.kind.String(), func(t *testing.T) {
			cfg := spasm.Config{Kind: tc.kind, Topology: tc.topo, P: tc.p}
			res, prof, err := spasm.RunProfiled(tc.app, spasm.Tiny, 1, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if prof.Total != res.Stats.Total {
				t.Errorf("profile total %v != run total %v", prof.Total, res.Stats.Total)
			}
			for i := range res.Stats.Procs {
				st := &res.Stats.Procs[i]
				var got stats.Proc
				for e := range prof.Epochs {
					s := &prof.Epochs[e].Procs[i]
					for b := range s.Buckets {
						got.Time[b] += s.Buckets[b]
					}
					got.Reads += s.Reads
					got.Writes += s.Writes
					got.Hits += s.Hits
					got.Misses += s.Misses
					got.Messages += s.Messages
					got.Invals += s.Invals
					got.Writebacks += s.Writebacks
				}
				for b := range st.Time {
					if got.Time[b] != st.Time[b] {
						t.Errorf("proc %d bucket %v: epoch sum %v != aggregate %v",
							i, stats.Bucket(b), got.Time[b], st.Time[b])
					}
				}
				if got.Reads != st.Reads || got.Writes != st.Writes {
					t.Errorf("proc %d references: epoch sums %d/%d != aggregates %d/%d",
						i, got.Reads, got.Writes, st.Reads, st.Writes)
				}
				if got.Hits != st.Hits || got.Misses != st.Misses {
					t.Errorf("proc %d cache: epoch sums %d/%d != aggregates %d/%d",
						i, got.Hits, got.Misses, st.Hits, st.Misses)
				}
				if got.Messages != st.Messages {
					t.Errorf("proc %d messages: epoch sum %d != aggregate %d",
						i, got.Messages, st.Messages)
				}
				if got.Invals != st.Invals || got.Writebacks != st.Writebacks {
					t.Errorf("proc %d coherence: epoch sums %d/%d != aggregates %d/%d",
						i, got.Invals, got.Writebacks, st.Invals, st.Writebacks)
				}
			}
		})
	}
}

// TestProfilingDoesNotPerturb checks that attaching the probe changes
// nothing about the simulation itself: the profiled run's statistics
// are identical to an unprofiled run of the same spec.
func TestProfilingDoesNotPerturb(t *testing.T) {
	for _, tc := range profiledCases {
		t.Run(tc.app+"/"+tc.kind.String(), func(t *testing.T) {
			cfg := spasm.Config{Kind: tc.kind, Topology: tc.topo, P: tc.p}
			profiled, _, err := spasm.RunProfiled(tc.app, spasm.Tiny, 1, cfg)
			if err != nil {
				t.Fatal(err)
			}
			plain, err := spasm.Run(tc.app, spasm.Tiny, 1, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if profiled.Stats.Total != plain.Stats.Total {
				t.Errorf("profiled total %v != plain total %v",
					profiled.Stats.Total, plain.Stats.Total)
			}
			for i := range plain.Stats.Procs {
				a, b := &profiled.Stats.Procs[i], &plain.Stats.Procs[i]
				if a.Time != b.Time || a.Finish != b.Finish {
					t.Errorf("proc %d: profiled buckets %v (finish %v) != plain %v (finish %v)",
						i, a.Time, a.Finish, b.Time, b.Finish)
				}
				if a.Misses != b.Misses || a.Messages != b.Messages {
					t.Errorf("proc %d: profiled counters diverge from plain run", i)
				}
			}
		})
	}
}

// TestLinkOccupancy checks the target-machine link series: occupancy is
// bounded by the epoch length, link ids are valid and sorted, and the
// per-epoch histograms account for every fabric transmission.
func TestLinkOccupancy(t *testing.T) {
	res, prof, err := spasm.RunProfiled("fft", spasm.Tiny, 1,
		spasm.Config{Kind: spasm.Target, Topology: "mesh", P: 8})
	if err != nil {
		t.Fatal(err)
	}
	if prof.NumLinks == 0 {
		t.Fatal("target machine profile has no link id space")
	}
	var hist uint64
	for e := range prof.Epochs {
		prev := -1
		for _, l := range prof.Epochs[e].Links {
			if l.Link <= prev {
				t.Fatalf("epoch %d: link ids not strictly sorted (%d after %d)", e, l.Link, prev)
			}
			prev = l.Link
			if l.Link >= prof.NumLinks {
				t.Fatalf("epoch %d: link id %d out of range [0,%d)", e, l.Link, prof.NumLinks)
			}
			if l.Busy < 0 || l.Busy > prof.EpochLen {
				t.Fatalf("epoch %d link %d: busy %v outside [0, %v]", e, l.Link, l.Busy, prof.EpochLen)
			}
		}
		hist += prof.Epochs[e].Messages()
	}
	if msgs := res.Stats.Messages(); hist != msgs {
		t.Errorf("histogram counted %d messages, run sent %d", hist, msgs)
	}
}

// BenchmarkProfiledRun measures the probe's overhead on a full
// instrumented run (compare BenchmarkRun in the root package).
func BenchmarkProfiledRun(b *testing.B) {
	cfg := spasm.Config{Kind: spasm.Target, Topology: "mesh", P: 8}
	for i := 0; i < b.N; i++ {
		if _, _, err := spasm.RunProfiled("fft", spasm.Tiny, 1, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// TestResolutionCoarsening checks the epoch budget: a tight MaxEpochs
// forces pairwise merges, and the merged profile still reconciles.
func TestResolutionCoarsening(t *testing.T) {
	cfg := spasm.Config{Kind: spasm.Target, Topology: "mesh", P: 8}
	res, fine, err := spasm.RunProfiled("fft", spasm.Tiny, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, coarse, err := spasm.RunProfiledConfig("fft", spasm.Tiny, 1, cfg,
		spasm.ProfileConfig{MaxEpochs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(coarse.Epochs) > 8 {
		t.Errorf("MaxEpochs=8 produced %d epochs", len(coarse.Epochs))
	}
	if coarse.EpochLen <= fine.EpochLen {
		t.Errorf("coarse epoch length %v not above fine %v", coarse.EpochLen, fine.EpochLen)
	}
	for b := range res.Stats.Procs[0].Time {
		want := res.Stats.Sum(stats.Bucket(b))
		if got := coarse.Sum(stats.Bucket(b)); got != want {
			t.Errorf("coarse profile bucket %v sum %v != aggregate %v", stats.Bucket(b), got, want)
		}
	}
}
