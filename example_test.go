package spasm_test

import (
	"fmt"

	"spasm"
)

// Running one application on the detailed target machine and reading the
// overhead separation.
func ExampleRun() {
	res, err := spasm.Run("ep", spasm.Tiny, 1, spasm.Config{
		Kind:     spasm.Target,
		Topology: "full",
		P:        4,
	})
	if err != nil {
		panic(err)
	}
	r := res.Stats
	fmt.Printf("processors: %d\n", r.P())
	fmt.Printf("reads+writes: %d\n",
		r.Count(func(p *spasm.ProcStats) uint64 { return p.Reads + p.Writes }))
	fmt.Printf("deterministic: %v\n", r.Total > 0)
	// Output:
	// processors: 4
	// reads+writes: 220
	// deterministic: true
}

// Profiling a run over simulated time and locating the epoch where
// network contention peaked.
func ExampleRunProfiled() {
	_, prof, err := spasm.RunProfiled("ep", spasm.Tiny, 1, spasm.Config{
		Kind:     spasm.Target,
		Topology: "mesh",
		P:        4,
	})
	if err != nil {
		panic(err)
	}
	epoch, total := prof.Peak(spasm.Contention)
	fmt.Printf("epochs: %d x %v\n", len(prof.Epochs), prof.EpochLen)
	fmt.Printf("peak contention: epoch %d (t=%v), %v\n",
		epoch, prof.EpochStart(epoch), total)
	// Output:
	// epochs: 35 x 10.000us
	// peak contention: epoch 23 (t=230.000us), 12.939us
}

// Computing the paper's g parameter table (section 5).
func ExampleGapTable() {
	for _, row := range spasm.GapTable([]int{16}) {
		fmt.Printf("%s: %.3f us\n", row.Topology, row.G.Micros())
	}
	// Output:
	// full: 0.200 us
	// cube: 1.600 us
	// mesh: 3.200 us
}

// Regenerating a paper figure as CSV.
func ExampleSession_Figure() {
	s := spasm.NewSession(spasm.Options{Scale: spasm.Tiny, Procs: []int{4}})
	fig, _ := spasm.FigureByNumber(3) // EP on Full: Latency
	fr, err := s.Figure(fig)
	if err != nil {
		panic(err)
	}
	fmt.Println(fig.Caption())
	fmt.Printf("series: %d, points per series: %d\n",
		len(fr.Series), len(fr.Series[0].Points))
	// Output:
	// EP on Full: Latency
	// series: 3, points per series: 1
}

// Writing a custom application against the Proc API.
func ExampleRunProgram() {
	prog := &sumProgram{n: 64}
	res, err := spasm.RunProgram(prog, spasm.Config{
		Kind: spasm.CLogP, Topology: "cube", P: 4,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("sum: %d\n", prog.total)
	fmt.Printf("simulated: %v\n", res.Stats.Total > 0)
	// Output:
	// sum: 2016
	// simulated: true
}

// Recording an application's reference trace and replaying it on a
// different machine characterization (trace-driven simulation).
func ExampleRecordTrace() {
	tr, _, err := spasm.RecordTrace("is", spasm.Tiny, 1, spasm.Config{
		Kind: spasm.CLogP, Topology: "full", P: 4,
	})
	if err != nil {
		panic(err)
	}
	res, err := spasm.ReplayTrace(tr, spasm.Config{
		Kind: spasm.Target, Topology: "mesh", P: 4,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("replayed %d events: %v\n", len(tr.Events), res.Stats.Total > 0)
	// Output:
	// replayed 2204 events: true
}

// Running the section-7 gap-discipline ablation.
func ExampleGapAblation() {
	rows, err := spasm.GapAblation(spasm.Tiny, 1, []int{8})
	if err != nil {
		panic(err)
	}
	r := rows[0]
	fmt.Printf("per-class gap closer to target: %v\n",
		r.PerClassGap-r.Target < r.CombinedGap-r.Target)
	// Output:
	// per-class gap closer to target: true
}

// Comparing coherence protocols on the same directory engine.
func ExampleProtocolComparison() {
	rows, err := spasm.ProtocolComparison(spasm.Tiny, 1, "full", 4)
	if err != nil {
		panic(err)
	}
	fmt.Printf("apps compared: %d\n", len(rows))
	// Output:
	// apps compared: 5
}

// sumProgram sums 0..n-1 with each processor reducing its own block into
// a lock-guarded shared total.
type sumProgram struct {
	n     int
	arr   *spasm.Array
	lock  *spasm.SpinLock
	total int
}

func (s *sumProgram) Name() string { return "sum" }

func (s *sumProgram) Setup(c *spasm.Ctx) {
	s.arr = c.Space.Alloc("data", s.n, 8, spasm.Blocked)
	s.lock = c.NewLock("lock", 0)
}

func (s *sumProgram) Body(p *spasm.Proc) {
	per := s.n / p.Ctx.P
	lo := p.ID * per
	part := 0
	p.ReadRange(s.arr, lo, lo+per)
	for i := lo; i < lo+per; i++ {
		part += i
	}
	p.Compute(int64(per))
	s.lock.Lock(p)
	s.total += part
	s.lock.Unlock(p)
}

func (s *sumProgram) Check() error { return nil }
