package coherence

import "math/bits"

// Sharing-set representation.
//
// The directory used to keep one uint64 bit-vector per entry, which
// hard-capped coherent machines at 64 nodes.  Large machines need the
// per-entry state to stay small while the *common case* — the paper's
// workloads keep most blocks in one to a handful of caches — stays O(1),
// so the sharing set is limited-pointer style:
//
//   - up to inlineSharers node ids live inline in the entry, kept in
//     ascending order (insertion into at most four elements);
//   - beyond that the set overflows to a bitset of ceil(P/64) words,
//     allocated from a per-engine slot arena and recycled through a
//     freelist, so widely shared blocks cost O(P) bits each while the
//     many narrowly shared ones stay pointer-free.
//
// Every operation is semantically a set of node ids iterated in
// ascending order — exactly the order bits.TrailingZeros64 walked the
// old bit-vector — so runs at P <= 64 are bit-identical to the previous
// representation (the golden suite locks this).
const (
	// MaxP bounds coherent machines (Target, CLogP): the per-entry
	// inline ids are int16 and the overflow arena sizes its slots from
	// P, so the representation itself scales much further, but 1024 is
	// the validated and benchmarked ceiling (docs/INTERNALS.md §12).
	MaxP = 1024

	// inlineSharers is the limited-pointer capacity: sharing beyond
	// this many caches spills the entry to an overflow bitset.
	inlineSharers = 4

	// nshOverflow marks an entry whose sharing set lives in the
	// overflow arena slot named by entry.ovf.
	nshOverflow = -1
)

// acquireSlot takes a cleared overflow bitset slot, recycling a freed
// one when available.  Slot numbering is a deterministic function of the
// access sequence, and slot ids never influence protocol behaviour.
func (e *Engine) acquireSlot() int32 {
	if n := len(e.ovfFree); n > 0 {
		s := e.ovfFree[n-1]
		e.ovfFree = e.ovfFree[:n-1]
		w := e.ovfBits[s]
		for i := range w {
			w[i] = 0
		}
		return s
	}
	e.ovfBits = append(e.ovfBits, make([]uint64, e.ovfWords))
	return int32(len(e.ovfBits) - 1)
}

// releaseSlot returns an overflow slot to the freelist.
func (e *Engine) releaseSlot(s int32) {
	e.ovfFree = append(e.ovfFree, s)
}

// addSharer inserts node n into the entry's sharing set (no-op if
// already present).
func (e *Engine) addSharer(en *entry, n int) {
	if en.nsh == nshOverflow {
		e.ovfBits[en.ovf][n>>6] |= 1 << uint(n&63)
		return
	}
	k := int(en.nsh)
	i := 0
	for i < k && int(en.inline[i]) < n {
		i++
	}
	if i < k && int(en.inline[i]) == n {
		return
	}
	if k < inlineSharers {
		copy(en.inline[i+1:k+1], en.inline[i:k])
		en.inline[i] = int16(n)
		en.nsh = int16(k + 1)
		return
	}
	// Overflow: spill the inline ids plus n to a bitset slot.
	s := e.acquireSlot()
	w := e.ovfBits[s]
	for j := 0; j < k; j++ {
		id := int(en.inline[j])
		w[id>>6] |= 1 << uint(id&63)
	}
	w[n>>6] |= 1 << uint(n&63)
	en.nsh = nshOverflow
	en.ovf = s
}

// setSoleSharer makes node n the only sharer, releasing any overflow
// slot back to the freelist (the entry returns to the inline fast path —
// this is how a write to a widely shared block reclaims its bitset).
func (e *Engine) setSoleSharer(en *entry, n int) {
	if en.nsh == nshOverflow {
		e.releaseSlot(en.ovf)
		en.ovf = -1
	}
	en.nsh = 1
	en.inline[0] = int16(n)
}

// removeSharer deletes node n from the sharing set (no-op if absent).
// Overflowed entries stay overflowed until the next exclusive write
// resets them; collapsing back early would buy little and cost a scan.
func (e *Engine) removeSharer(en *entry, n int) {
	if en.nsh == nshOverflow {
		e.ovfBits[en.ovf][n>>6] &^= 1 << uint(n&63)
		return
	}
	k := int(en.nsh)
	for i := 0; i < k; i++ {
		if int(en.inline[i]) == n {
			copy(en.inline[i:k-1], en.inline[i+1:k])
			en.nsh = int16(k - 1)
			return
		}
	}
}

// containsSharer reports whether node n is in the sharing set.
func (e *Engine) containsSharer(en *entry, n int) bool {
	if en.nsh == nshOverflow {
		return e.ovfBits[en.ovf][n>>6]&(1<<uint(n&63)) != 0
	}
	for i := 0; i < int(en.nsh); i++ {
		if int(en.inline[i]) == n {
			return true
		}
	}
	return false
}

// hasOtherSharer reports whether the set contains any node besides r.
func (e *Engine) hasOtherSharer(en *entry, r int) bool {
	if en.nsh == nshOverflow {
		for wi, w := range e.ovfBits[en.ovf] {
			if wi == r>>6 {
				w &^= 1 << uint(r&63)
			}
			if w != 0 {
				return true
			}
		}
		return false
	}
	for i := 0; i < int(en.nsh); i++ {
		if int(en.inline[i]) != r {
			return true
		}
	}
	return false
}

// appendSharers appends the sharing set's node ids to buf in ascending
// order, excluding skip (pass a negative skip to take the whole set).
// Callers snapshot the set this way before mutating it mid-iteration,
// matching the old bit-vector code that iterated a copied mask.
func (e *Engine) appendSharers(buf []int32, en *entry, skip int) []int32 {
	if en.nsh == nshOverflow {
		for wi, w := range e.ovfBits[en.ovf] {
			base := wi << 6
			for w != 0 {
				n := base + bits.TrailingZeros64(w)
				w &= w - 1
				if n != skip {
					buf = append(buf, int32(n))
				}
			}
		}
		return buf
	}
	for i := 0; i < int(en.nsh); i++ {
		if n := int(en.inline[i]); n != skip {
			buf = append(buf, int32(n))
		}
	}
	return buf
}
