package sim

import (
	"fmt"
	"math/rand"
	"testing"
)

// qheadOf re-derives a queue's head without mutating contents (peek may
// reorganize, never changes the pop order).
func qhead(q eventQueue) (event, bool) {
	ev := q.peek()
	if ev == nil {
		return event{}, false
	}
	return *ev, true
}

// differentialStream replays one randomized push/pop/invalidate stream
// through the binary heap and the ladder queue and requires identical
// behavior at every step: same pops (at, seq, gen, proc), same peeks,
// same lengths.  The stream respects the kernel's invariants — pushes
// never go behind the time of the last popped event, and seq is
// globally monotone — which are exactly the conditions the ladder's
// ordering argument relies on.
func differentialStream(t *testing.T, rng *rand.Rand, h *eventHeap, l *ladderQueue, steps int) {
	t.Helper()
	var (
		now  Time
		seq  uint64
		gens [16]uint64 // stand-in per-proc generation counters
	)
	procs := make([]*Proc, len(gens))
	for i := range procs {
		procs[i] = &Proc{Name: fmt.Sprintf("q%d", i)}
	}
	push := func(at Time) {
		seq++
		pi := rng.Intn(len(procs))
		gens[pi]++
		ev := event{at: at, seq: seq, gen: gens[pi], p: procs[pi]}
		h.push(ev)
		l.push(ev)
	}
	// delta draws a time increment from one of several shapes so the
	// stream exercises same-timestamp storms, dense near-future activity,
	// and far-future outliers (deep rung recursion) in one run.
	delta := func() Time {
		switch rng.Intn(10) {
		case 0, 1, 2:
			return 0 // same-timestamp FIFO
		case 3, 4, 5:
			return Time(rng.Intn(8))
		case 6, 7:
			return Time(rng.Intn(1000))
		case 8:
			return Time(rng.Intn(1_000_000))
		default:
			return Time(rng.Int63n(1_000_000_000_000))
		}
	}
	for i := 0; i < steps; i++ {
		if h.len() != l.len() {
			t.Fatalf("step %d: length diverged: heap %d, ladder %d", i, h.len(), l.len())
		}
		switch op := rng.Intn(10); {
		case op < 5 || h.len() == 0: // push
			push(now + delta())
		case op < 9: // pop
			a, b := h.pop(), l.pop()
			if a != b {
				t.Fatalf("step %d: pop diverged: heap (at=%v seq=%d gen=%d %s), ladder (at=%v seq=%d gen=%d %s)",
					i, a.at, a.seq, a.gen, a.p.Name, b.at, b.seq, b.gen, b.p.Name)
			}
			if a.at < now {
				t.Fatalf("step %d: pop went backwards: %v < %v", i, a.at, now)
			}
			now = a.at
		default: // invalidate: a later push supersedes an earlier event
			pi := rng.Intn(len(procs))
			gens[pi]++ // queued events for pi are now stale; order must not change
		}
		if (i & 7) == 0 {
			ah, aok := qhead(h)
			bh, bok := qhead(l)
			if aok != bok || ah != bh {
				t.Fatalf("step %d: peek diverged: heap (%v, %v), ladder (%v, %v)", i, ah, aok, bh, bok)
			}
		}
	}
	// Drain both completely: the tail must agree event for event.
	for h.len() > 0 {
		if a, b := h.pop(), l.pop(); a != b {
			t.Fatalf("drain: pop diverged: heap seq=%d, ladder seq=%d", a.seq, b.seq)
		}
	}
	if l.len() != 0 {
		t.Fatalf("drain: ladder still holds %d events after heap emptied", l.len())
	}
}

// TestQueueDifferential is the equivalence proof by replay: identical
// randomized streams through both eventQueue implementations, across
// many seeds, with reset-reuse rounds in between (the same objects are
// reused after reset, as a pooled engine reuses them).
func TestQueueDifferential(t *testing.T) {
	var h eventHeap
	var l ladderQueue
	l.topStart = minTime
	for seed := int64(1); seed <= 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		differentialStream(t, rng, &h, &l, 4000)
		// Reset reuse: both queues must behave identically when reused,
		// with no event from the previous round surviving.
		h.reset()
		l.reset()
		if h.len() != 0 || l.len() != 0 {
			t.Fatalf("seed %d: reset left events behind (heap %d, ladder %d)", seed, h.len(), l.len())
		}
	}
}

// TestLadderOrderProperty drives the ladder alone through adversarial
// shapes — all-equal timestamps, unit steps, random interleaves, and a
// range wide enough to overflow ladderMaxRungs — asserting the popped
// sequence is exactly the total (at, seq) order of what was pushed.
func TestLadderOrderProperty(t *testing.T) {
	shapes := []struct {
		name string
		at   func(rng *rand.Rand, i int, now Time) Time
	}{
		{"equal", func(rng *rand.Rand, i int, now Time) Time { return now }},
		{"unit-steps", func(rng *rand.Rand, i int, now Time) Time { return now + Time(rng.Intn(2)) }},
		{"clustered", func(rng *rand.Rand, i int, now Time) Time { return now + Time(rng.Intn(5)*1000) }},
		{"wide", func(rng *rand.Rand, i int, now Time) Time { return now + Time(rng.Int63n(1<<50)) }},
	}
	for _, shape := range shapes {
		t.Run(shape.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			var l ladderQueue
			l.topStart = minTime
			p := &Proc{Name: "x"}
			var now Time
			var seq uint64
			pending := 0
			var lastAt Time
			var lastSeq uint64
			popped := 0
			for i := 0; i < 20000; i++ {
				if pending == 0 || rng.Intn(3) > 0 {
					seq++
					l.push(event{at: shape.at(rng, i, now), seq: seq, gen: 1, p: p})
					pending++
					continue
				}
				ev := l.pop()
				pending--
				if popped > 0 && (ev.at < lastAt || (ev.at == lastAt && ev.seq <= lastSeq)) {
					t.Fatalf("pop %d out of order: (%v, %d) after (%v, %d)",
						popped, ev.at, ev.seq, lastAt, lastSeq)
				}
				lastAt, lastSeq = ev.at, ev.seq
				popped++
				now = ev.at
			}
			for pending > 0 {
				ev := l.pop()
				pending--
				if ev.at < lastAt || (ev.at == lastAt && ev.seq <= lastSeq) {
					t.Fatalf("drain out of order: (%v, %d) after (%v, %d)", ev.at, ev.seq, lastAt, lastSeq)
				}
				lastAt, lastSeq = ev.at, ev.seq
			}
			if l.len() != 0 {
				t.Fatalf("ladder reports %d events after full drain", l.len())
			}
		})
	}
}

// TestLadderSelection pins the auto-selection contract: small runs stay
// on the heap, runs at ladderProcs and beyond start on the ladder, and a
// mid-run backlog beyond ladderPending escalates — all with identical
// results, which the goldens and the differential test above guarantee.
func TestLadderSelection(t *testing.T) {
	small := NewEngine()
	for i := 0; i < 8; i++ {
		small.Spawn(fmt.Sprintf("s%d", i), func(p *Proc) { p.Hold(3) })
	}
	if err := small.Run(); err != nil {
		t.Fatal(err)
	}
	if small.q != &small.heap {
		t.Fatal("small run escalated off the binary heap")
	}

	big := NewEngine()
	for i := 0; i < ladderProcs; i++ {
		big.Spawn(fmt.Sprintf("b%d", i), func(p *Proc) { p.Hold(3) })
	}
	if err := big.Run(); err != nil {
		t.Fatal(err)
	}
	if big.q != &big.lad {
		t.Fatal("large run did not select the ladder queue")
	}
	big.Reset()
	if big.q != &big.heap {
		t.Fatal("Reset did not restore the binary heap default")
	}

	// Mid-run escalation: few processes, huge pending backlog (one far
	// future wakeup per spawned helper event via repeated Wake storms is
	// awkward to arrange; a single process scheduling many distinct
	// future self-wakeups is not possible — so drive the threshold
	// directly through schedule on a synthetic engine).
	esc := NewEngine()
	p := &Proc{Name: "filler", eng: esc}
	esc.procs = append(esc.procs, p)
	for i := 0; i <= ladderPending; i++ {
		esc.schedule(Time(i+1), p)
	}
	if esc.q != &esc.lad {
		t.Fatalf("backlog of %d events did not escalate to the ladder queue", ladderPending+1)
	}
}

// TestParallelQueueRetention runs a windowed parallel run large enough
// to select per-domain ladder queues and checks that no backing slot of
// any per-domain store retains a *Proc afterwards — the parallel-mode
// counterpart of TestQueueRetainsNoProcsAfterRun, covering pooled reuse
// of engines whose last run was parallel.
func TestParallelQueueRetention(t *testing.T) {
	const doms = 2
	e := NewEngine()
	for i := 0; i < doms*ladderProcs; i++ {
		i := i
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for j := 0; j < 5; j++ {
				p.Hold(Time(10 + (i+j)%7))
			}
		})
	}
	e.SetParallel(2, 5, func(id int) int { return id % doms })
	if !e.WillRunParallel() {
		t.Fatalf("parallel mode unavailable: %q", e.parFallback())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !e.ParReport().Parallel {
		t.Fatal("run did not execute in parallel mode")
	}
	if len(e.pqLads) < doms {
		t.Fatalf("run did not select per-domain ladder queues (stores: %d)", len(e.pqLads))
	}
	scanRetained(t, e, "after parallel run")
	e.Reset()
	scanRetained(t, e, "after parallel run + Reset")
}
