// network_compare runs one communication-heavy application (IS) on the
// target machine's three interconnection topologies and shows how
// contention grows as connectivity drops — and how badly the
// bisection-bandwidth g parameter overestimates it on the mesh (the
// paper's Figures 6 and 7).
//
//	go run ./examples/network_compare
package main

import (
	"fmt"
	"log"

	"spasm"
)

func main() {
	const p = 16
	fmt.Printf("IS contention overhead across topologies (p=%d)\n\n", p)
	fmt.Printf("%-6s %16s %16s %14s\n", "topo", "target_us", "logp+cache_us", "CL/target")

	for _, topo := range []string{"full", "cube", "mesh"} {
		var tgt, cl float64
		for _, kind := range []spasm.Kind{spasm.Target, spasm.CLogP} {
			res, err := spasm.Run("is", spasm.Small, 1, spasm.Config{
				Kind: kind, Topology: topo, P: p,
			})
			if err != nil {
				log.Fatal(err)
			}
			v := res.Stats.Sum(spasm.Contention).Micros()
			if kind == spasm.Target {
				tgt = v
			} else {
				cl = v
			}
		}
		fmt.Printf("%-6s %16.1f %16.1f %13.1fx\n", topo, tgt, cl, cl/tgt)
	}

	fmt.Println()
	fmt.Println("g parameters behind the abstraction (derived from bisection bandwidth):")
	for _, row := range spasm.GapTable([]int{p}) {
		fmt.Printf("  %-6s g = %6.3f us\n", row.Topology, row.G.Micros())
	}
	fmt.Println()
	fmt.Println("Lower connectivity -> larger g -> the gap model's pessimism grows,")
	fmt.Println("because g assumes every message crosses the bisection while the")
	fmt.Println("application's communication is partly local.")
}
