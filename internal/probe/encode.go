package probe

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"spasm/internal/sim"
	"spasm/internal/stats"
)

// The compact binary profile format: a magic/version header, the
// identifying strings, the geometry, then per epoch the per-processor
// deltas, the delay histogram, and the active-link samples, all as
// unsigned varints.  Every field is a deterministic function of the
// profiled spec, and maps are flattened in sorted order, so encoding the
// same profile always yields identical bytes — the property the spasmd
// result cache and the golden tests rely on.

// profileMagic opens every encoded profile.
var profileMagic = [4]byte{'S', 'P', 'R', 'F'}

// profileVersion is bumped on any change to the wire layout.
const profileVersion = 1

// sanity bounds for Decode: reject absurd geometries before allocating.
const (
	maxDecodeEpochs = 1 << 20
	maxDecodeProcs  = 1 << 16
	maxDecodeString = 1 << 10
)

type countingWriter struct {
	w *bufio.Writer
	n int
}

func (cw *countingWriter) uvarint(v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	cw.w.Write(buf[:n])
	cw.n += n
}

func (cw *countingWriter) time(t sim.Time) { cw.uvarint(uint64(t)) }

func (cw *countingWriter) str(s string) {
	cw.uvarint(uint64(len(s)))
	cw.w.WriteString(s)
	cw.n += len(s)
}

// Encode writes the profile in its compact binary form and returns the
// number of bytes written.
func (p *Profile) Encode(w io.Writer) (int, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(profileMagic[:]); err != nil {
		return 0, err
	}
	cw := &countingWriter{w: bw, n: len(profileMagic)}
	cw.uvarint(profileVersion)
	cw.str(p.App)
	cw.str(p.Machine)
	cw.str(p.Topology)
	cw.uvarint(uint64(p.P))
	cw.uvarint(uint64(p.NumLinks))
	cw.time(p.EpochLen)
	cw.time(p.Total)
	cw.uvarint(uint64(stats.NumBuckets))
	cw.uvarint(uint64(HistBuckets))
	cw.uvarint(uint64(len(p.Epochs)))
	for i := range p.Epochs {
		e := &p.Epochs[i]
		for j := range e.Procs {
			ps := &e.Procs[j]
			for b := range ps.Buckets {
				cw.time(ps.Buckets[b])
			}
			cw.uvarint(ps.Reads)
			cw.uvarint(ps.Writes)
			cw.uvarint(ps.Hits)
			cw.uvarint(ps.Misses)
			cw.uvarint(ps.Messages)
			cw.uvarint(ps.Invals)
			cw.uvarint(ps.Writebacks)
		}
		for _, c := range e.Hist {
			cw.uvarint(c)
		}
		cw.uvarint(uint64(len(e.Links)))
		for _, l := range e.Links {
			cw.uvarint(uint64(l.Link))
			cw.time(l.Busy)
			cw.time(l.Wait)
			cw.uvarint(l.Messages)
			cw.uvarint(l.Bytes)
		}
	}
	if err := bw.Flush(); err != nil {
		return 0, err
	}
	return cw.n, nil
}

type reader struct {
	r   *bufio.Reader
	err error
}

func (rd *reader) uvarint() uint64 {
	if rd.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(rd.r)
	if err != nil {
		rd.err = fmt.Errorf("probe: truncated profile: %w", err)
	}
	return v
}

func (rd *reader) time() sim.Time { return sim.Time(rd.uvarint()) }

func (rd *reader) count(what string, max uint64) int {
	v := rd.uvarint()
	if rd.err == nil && v > max {
		rd.err = fmt.Errorf("probe: implausible %s count %d", what, v)
	}
	return int(v)
}

func (rd *reader) str() string {
	n := rd.count("string", maxDecodeString)
	if rd.err != nil {
		return ""
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(rd.r, b); err != nil {
		rd.err = fmt.Errorf("probe: truncated profile: %w", err)
		return ""
	}
	return string(b)
}

// Decode reads a profile serialized with Encode.
func Decode(r io.Reader) (*Profile, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("probe: truncated profile: %w", err)
	}
	if magic != profileMagic {
		return nil, fmt.Errorf("probe: bad magic %q", magic[:])
	}
	rd := &reader{r: br}
	if v := rd.uvarint(); rd.err == nil && v != profileVersion {
		return nil, fmt.Errorf("probe: unsupported profile version %d", v)
	}
	p := &Profile{
		App:      rd.str(),
		Machine:  rd.str(),
		Topology: rd.str(),
		P:        rd.count("processor", maxDecodeProcs),
		NumLinks: rd.count("link-space", 1<<30),
		EpochLen: rd.time(),
		Total:    rd.time(),
	}
	nb := rd.count("bucket", 64)
	nh := rd.count("hist-bucket", 64)
	if rd.err == nil && (nb != int(stats.NumBuckets) || nh != HistBuckets) {
		return nil, fmt.Errorf("probe: profile has %d buckets / %d hist buckets, want %d / %d",
			nb, nh, stats.NumBuckets, HistBuckets)
	}
	nEpochs := rd.count("epoch", maxDecodeEpochs)
	for i := 0; i < nEpochs && rd.err == nil; i++ {
		e := Epoch{Procs: make([]ProcSample, p.P)}
		for j := range e.Procs {
			ps := &e.Procs[j]
			for b := range ps.Buckets {
				ps.Buckets[b] = rd.time()
			}
			ps.Reads = rd.uvarint()
			ps.Writes = rd.uvarint()
			ps.Hits = rd.uvarint()
			ps.Misses = rd.uvarint()
			ps.Messages = rd.uvarint()
			ps.Invals = rd.uvarint()
			ps.Writebacks = rd.uvarint()
		}
		for b := range e.Hist {
			e.Hist[b] = rd.uvarint()
		}
		nLinks := rd.count("link", 1<<30)
		for k := 0; k < nLinks && rd.err == nil; k++ {
			e.Links = append(e.Links, LinkSample{
				Link:     int(rd.uvarint()),
				Busy:     rd.time(),
				Wait:     rd.time(),
				Messages: rd.uvarint(),
				Bytes:    rd.uvarint(),
			})
		}
		p.Epochs = append(p.Epochs, e)
	}
	if rd.err != nil {
		return nil, rd.err
	}
	return p, nil
}
