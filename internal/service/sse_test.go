package service_test

import (
	"bytes"
	"context"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"spasm/internal/faults"
	"spasm/internal/service"
	"spasm/internal/service/client"
)

// flowReq is the acceptance-gate spec: a 256-processor run on the flow
// tier, large enough that the probe closes several epochs mid-run.
var flowReq = service.RunRequest{App: "uniform", Scale: "tiny", Machine: "flow", Topology: "torus", P: 256}

// metricEventually polls the metrics page until name reaches at least
// want (metrics tick moments after the observable effect, e.g. a
// deferred release after a handler returns).
func metricEventually(t *testing.T, svc *service.Server, name string, want float64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if v, ok := client.MetricValue(svc.RenderMetrics(), name); ok && v >= want {
			return
		}
		if time.Now().After(deadline) {
			v, _ := client.MetricValue(svc.RenderMetrics(), name)
			t.Fatalf("%s = %v, want >= %v", name, v, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestStreamDeliversEpochs: a streamed submission yields live epoch
// events — at least two before the terminal result — and the streamed
// run's RunDoc is byte-identical to a plain (uninstrumented) run of the
// same spec.
func TestStreamDeliversEpochs(t *testing.T) {
	svc, c := newTestService(t, service.Config{Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	var order []string
	final, err := c.RunStream(ctx, flowReq, func(ev client.StreamEvent) error {
		order = append(order, ev.Event)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if final.State != service.StateDone {
		t.Fatalf("streamed run ended %s: %s", final.State, final.Error)
	}
	epochs := 0
	sawResult := false
	for _, ev := range order {
		switch ev {
		case "epoch":
			if sawResult {
				t.Fatal("epoch event after the result event")
			}
			epochs++
		case "result":
			sawResult = true
		}
	}
	if epochs < 2 {
		t.Fatalf("stream delivered %d epoch events (%v), want >= 2 before completion", epochs, order)
	}
	if !sawResult || order[0] != "state" {
		t.Fatalf("stream order %v, want state first and a result", order)
	}

	// The instrumented run must not perturb the result: a plain run on a
	// fresh server produces the same bytes.
	_, plainClient := newTestService(t, service.Config{Workers: 2})
	plain, err := plainClient.Run(ctx, flowReq)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(final.Result, plain.Result) {
		t.Fatal("streamed run's RunDoc differs from a plain run of the same spec")
	}

	page := svc.RenderMetrics()
	if v, ok := client.MetricValue(page, "spasmd_stream_events_total"); !ok || v < 2 {
		t.Fatalf("spasmd_stream_events_total = %v, want >= 2", v)
	}
	if v, ok := client.MetricValue(page, "spasmd_streams_active"); !ok || v != 0 {
		t.Fatalf("spasmd_streams_active = %v after stream closed, want 0", v)
	}
}

// TestStreamClientDisconnectMidRun: a pending streamed job whose only
// client disconnects is canceled before it burns a worker, via the same
// waiter-refcounted release as SubmitWaited.
func TestStreamClientDisconnectMidRun(t *testing.T) {
	// Wedge the single worker on another job so the streamed one stays
	// pending.
	release := make(chan struct{})
	var once sync.Once
	restore := faults.Set(faults.WorkerStall, func() error {
		<-release
		return nil
	})
	defer restore()
	defer once.Do(func() { close(release) })

	svc, c := newTestService(t, service.Config{Workers: 1})
	blockSpec, err := (service.RunRequest{App: "fft", Scale: "tiny", Machine: "target", Topology: "mesh", P: 2}).Spec()
	if err != nil {
		t.Fatal(err)
	}
	blocker, _, err := svc.Submit(blockSpec)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sawState := make(chan struct{}, 1)
	go func() {
		c.RunStream(ctx, flowReq, func(ev client.StreamEvent) error {
			select {
			case sawState <- struct{}{}:
			default:
			}
			return nil
		})
	}()
	select {
	case <-sawState:
	case <-time.After(10 * time.Second):
		t.Fatal("stream never delivered its first event")
	}
	cancel() // client walks away; the pending job should be canceled

	metricEventually(t, svc, "spasmd_jobs_canceled_total", 1)
	once.Do(func() { close(release) })
	<-blocker.Done()
}

// TestStreamShutdownMidStream: Shutdown drains rather than drops — a
// run being streamed completes, and its subscriber receives the result.
func TestStreamShutdownMidStream(t *testing.T) {
	svc, c := newTestService(t, service.Config{Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	started := make(chan struct{}, 1)
	done := make(chan *service.RunStatus, 1)
	go func() {
		final, err := c.RunStream(ctx, flowReq, func(ev client.StreamEvent) error {
			select {
			case started <- struct{}{}:
			default:
			}
			return nil
		})
		if err != nil {
			t.Errorf("stream during shutdown: %v", err)
		}
		done <- final
	}()
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("stream never started")
	}
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	select {
	case final := <-done:
		if final == nil || final.State != service.StateDone {
			t.Fatalf("stream across shutdown ended %+v, want done", final)
		}
	case <-time.After(time.Minute):
		t.Fatal("stream never completed after shutdown drain")
	}
}

// TestStreamCachedRun: attaching to an already-completed run yields its
// single result event immediately — from memory or from the durable
// store.
func TestStreamCachedRun(t *testing.T) {
	_, c := newTestService(t, service.Config{Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	req := service.RunRequest{App: "fft", Scale: "tiny", Machine: "target", Topology: "mesh", P: 4}
	first, err := c.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	var events []string
	final, err := c.Stream(ctx, first.ID, func(ev client.StreamEvent) error {
		events = append(events, ev.Event)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0] != "result" {
		t.Fatalf("cached stream events %v, want exactly one result", events)
	}
	if !bytes.Equal(final.Result, first.Result) {
		t.Fatal("cached stream result differs from the original run")
	}
	if _, err := c.Stream(ctx, strings.Repeat("ab", 32), nil); err == nil {
		t.Fatal("stream of an unknown run should 404")
	}
}

// TestBodyTooLarge: request bodies past MaxBodyBytes bounce with 413
// and tick their counter; the submission never reaches the queue.
func TestBodyTooLarge(t *testing.T) {
	svc, c := newTestService(t, service.Config{Workers: 1, MaxBodyBytes: 256})
	body := `{"app":"fft","p":4,"topology":"` + strings.Repeat("x", 512) + `"}`
	resp, err := http.Post(c.BaseURL+"/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize body got HTTP %d, want 413", resp.StatusCode)
	}
	page := svc.RenderMetrics()
	if v, ok := client.MetricValue(page, "spasmd_body_too_large_total"); !ok || v != 1 {
		t.Fatalf("spasmd_body_too_large_total = %v, want 1", v)
	}
	if v, ok := client.MetricValue(page, "spasmd_jobs_submitted_total"); !ok || v != 0 {
		t.Fatalf("spasmd_jobs_submitted_total = %v, want 0", v)
	}
}

// TestTenantQuotaOverHTTP: a tenant at its outstanding-run quota gets
// 429 with a Retry-After hint; other tenants are unaffected.
func TestTenantQuotaOverHTTP(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	restore := faults.Set(faults.WorkerStall, func() error {
		<-release
		return nil
	})
	defer restore()
	defer once.Do(func() { close(release) })

	svc, c := newTestService(t, service.Config{Workers: 1, TenantQuotaRuns: 1})
	c.Tenant = "alice"
	c.Retry.MaxAttempts = 1 // 429 is retried by default; this test wants the raw status
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	first, err := c.SubmitRun(ctx, service.RunRequest{App: "fft", Scale: "tiny", Machine: "target", Topology: "mesh", P: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.SubmitRun(ctx, service.RunRequest{App: "fft", Scale: "tiny", Machine: "target", Topology: "mesh", P: 4})
	if err == nil || !strings.Contains(err.Error(), "HTTP 429") {
		t.Fatalf("second submission: %v, want HTTP 429", err)
	}

	// A different tenant is admitted despite alice's saturation.
	other := client.New(c.BaseURL)
	other.Tenant = "bob"
	if _, err := other.SubmitRun(ctx, service.RunRequest{App: "fft", Scale: "tiny", Machine: "target", Topology: "mesh", P: 4}); err != nil {
		t.Fatalf("other tenant: %v", err)
	}

	page := svc.RenderMetrics()
	if v, ok := client.MetricValue(page, `spasmd_tenant_rejected_total{tenant="alice"}`); !ok || v != 1 {
		t.Fatalf("alice's rejected counter = %v, want 1", v)
	}

	once.Do(func() { close(release) })
	if st, err := c.GetRun(ctx, first.ID); err != nil || st == nil {
		t.Fatalf("poll first run: %v", err)
	}
}
