package app

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"spasm/internal/machine"
	"spasm/internal/runpool"
)

// spinnerProg runs forever, scheduling a real engine event per
// iteration (Compute alone only defers local time, which would never
// hand control back to the event loop); only an abort ends it.
func spinnerProg() Program {
	return &testProg{
		name:  "spinner",
		setup: func(*Ctx) {},
		body: func(p *Proc) {
			for {
				p.Compute(100)
				p.S.Hold(1)
			}
		},
	}
}

// settleGoroutines waits for the goroutine count to come back to (near)
// base — aborted process goroutines unwind asynchronously after the run
// returns.
func settleGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutine leak: %d live, want <= %d\n%s", runtime.NumGoroutine(), base, buf[:n])
}

func TestRunControlledTimeout(t *testing.T) {
	base := runtime.NumGoroutine()
	cfg := machine.Config{Kind: machine.Ideal, P: 4}
	_, err := RunControlled(spinnerProg(), cfg, RunControl{Timeout: 2 * time.Millisecond})
	if !errors.Is(err, ErrRunTimeout) {
		t.Fatalf("want ErrRunTimeout, got %v", err)
	}
	settleGoroutines(t, base)
}

func TestRunControlledCancel(t *testing.T) {
	base := runtime.NumGoroutine()
	cancel := make(chan struct{})
	go func() {
		time.Sleep(time.Millisecond)
		close(cancel)
	}()
	cfg := machine.Config{Kind: machine.Ideal, P: 4}
	_, err := RunControlled(spinnerProg(), cfg, RunControl{Cancel: cancel})
	if !errors.Is(err, ErrRunCanceled) {
		t.Fatalf("want ErrRunCanceled, got %v", err)
	}
	settleGoroutines(t, base+1) // the canceler itself may still be exiting
}

func TestRunControlledZeroValueCompletes(t *testing.T) {
	cfg := machine.Config{Kind: machine.Target, Topology: "full", P: 2}
	prog := &testProg{name: "ok", setup: func(*Ctx) {}, body: func(p *Proc) { p.Compute(50) }}
	res, err := RunControlled(prog, cfg, RunControl{})
	if err != nil || res == nil {
		t.Fatalf("zero-control run failed: %v", err)
	}
}

// TestRunControlledGenerousTimeoutCompletes pins the watchdog-join
// handshake: a run that finishes before its (ample) deadline must
// succeed, and the late-armed watchdog must not poison anything.
func TestRunControlledGenerousTimeoutCompletes(t *testing.T) {
	cfg := machine.Config{Kind: machine.Ideal, P: 2}
	prog := &testProg{name: "quick", setup: func(*Ctx) {}, body: func(p *Proc) { p.Compute(10) }}
	for i := 0; i < 20; i++ {
		if _, err := RunControlled(prog, cfg, RunControl{Timeout: time.Minute}); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
	}
}

// TestPooledDiscardOnAbort: an aborted pooled run must discard its
// context — half-finished engine/space/machine state never re-enters the
// freelist — while a subsequent clean run on the same pool still works.
func TestPooledDiscardOnAbort(t *testing.T) {
	pool := runpool.New(4)
	cfg := machine.Config{Kind: machine.Ideal, P: 4}
	_, err := RunPooledControlled(spinnerProg(), cfg, pool, RunControl{Timeout: 2 * time.Millisecond})
	if !errors.Is(err, ErrRunTimeout) {
		t.Fatalf("want ErrRunTimeout, got %v", err)
	}
	st := pool.Stats()
	if st.Discarded != 1 || st.Live != 0 {
		t.Fatalf("after abort: %+v, want Discarded=1 Live=0", st)
	}

	prog := &testProg{name: "clean", setup: func(*Ctx) {}, body: func(p *Proc) { p.Compute(10) }}
	if _, err := RunPooledControlled(prog, cfg, pool, RunControl{Timeout: time.Minute}); err != nil {
		t.Fatalf("clean run after discard: %v", err)
	}
	st = pool.Stats()
	if st.Live != 1 || st.Discarded != 1 {
		t.Fatalf("after clean run: %+v, want Live=1 Discarded=1", st)
	}
}

// TestPooledDiscardOnFailure: non-abort failures (a failed result check)
// also bypass the freelist.
func TestPooledDiscardOnFailure(t *testing.T) {
	pool := runpool.New(4)
	cfg := machine.Config{Kind: machine.Ideal, P: 2}
	bad := &testProg{
		name:  "bad",
		setup: func(*Ctx) {},
		body:  func(p *Proc) { p.Compute(10) },
		check: func() error { return errors.New("wrong answer") },
	}
	if _, err := RunPooledControlled(bad, cfg, pool, RunControl{}); err == nil {
		t.Fatal("check failure not propagated")
	}
	if st := pool.Stats(); st.Discarded != 1 || st.Live != 0 {
		t.Fatalf("after failed run: %+v, want Discarded=1 Live=0", st)
	}
}

// TestPooledControlledNilPool falls back to unpooled controlled runs.
func TestPooledControlledNilPool(t *testing.T) {
	cfg := machine.Config{Kind: machine.Ideal, P: 2}
	_, err := RunPooledControlled(spinnerProg(), cfg, nil, RunControl{Timeout: 2 * time.Millisecond})
	if !errors.Is(err, ErrRunTimeout) {
		t.Fatalf("want ErrRunTimeout, got %v", err)
	}
	prog := &testProg{name: "ok", setup: func(*Ctx) {}, body: func(p *Proc) { p.Compute(10) }}
	if _, err := RunPooledControlled(prog, cfg, nil, RunControl{}); err != nil {
		t.Fatalf("nil-pool zero-control run: %v", err)
	}
}
