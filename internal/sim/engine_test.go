package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	cases := []struct {
		us   float64
		want Time
	}{
		{1, 660},
		{1.6, 1056}, // LogP L parameter
		{0.05, 33},  // one byte at 20 MB/s
		{3.2, 2112}, // full-network g numerator
		{0.8, 528},  // mesh g coefficient
		{0, 0},
		{10.5, 6930},
	}
	for _, c := range cases {
		if got := Micros(c.us); got != c.want {
			t.Errorf("Micros(%v) = %v, want %v", c.us, got, c.want)
		}
	}
	if got := Cycles(1); got != 20 {
		t.Errorf("Cycles(1) = %v, want 20", got)
	}
	if got := Micros(1.6).Micros(); got != 1.6 {
		t.Errorf("round-trip 1.6us = %v", got)
	}
	if s := Micros(1.6).String(); s != "1.600us" {
		t.Errorf("String() = %q", s)
	}
	if Cycle*33 != SerialByte*20 {
		t.Errorf("unit mismatch: 33 cycles (1us) should equal 20 byte-times (1us)")
	}
}

func TestHoldAdvancesTime(t *testing.T) {
	e := NewEngine()
	var end Time
	e.Spawn("a", func(p *Proc) {
		p.Hold(Micros(5))
		p.Hold(Cycles(10))
		end = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := Micros(5) + Cycles(10)
	if end != want {
		t.Errorf("end time = %v, want %v", end, want)
	}
	if e.Now() != want {
		t.Errorf("engine now = %v, want %v", e.Now(), want)
	}
}

func TestHoldNonPositive(t *testing.T) {
	e := NewEngine()
	e.Spawn("a", func(p *Proc) {
		p.Hold(0)
		p.Hold(-5)
		if p.Now() != 0 {
			t.Errorf("time advanced by non-positive hold: %v", p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestInterleavingDeterministic(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		var log []string
		for i := 0; i < 4; i++ {
			i := i
			e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				for step := 0; step < 3; step++ {
					p.Hold(Time(10 * (i + 1)))
					log = append(log, fmt.Sprintf("p%d@%d", i, p.Now()))
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	first := run()
	for trial := 0; trial < 5; trial++ {
		if got := run(); fmt.Sprint(got) != fmt.Sprint(first) {
			t.Fatalf("nondeterministic interleaving:\n%v\nvs\n%v", first, got)
		}
	}
}

func TestTieBreakIsSpawnOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 8; i++ {
		i := i
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Hold(100) // all wake at the same instant
			order = append(order, i)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("tie broken out of spawn order: %v", order)
		}
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine()
	var q Queue
	e.Spawn("waiter", func(p *Proc) { q.Wait(p) })
	err := e.Run()
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("want DeadlockError, got %v", err)
	}
	if len(dl.Procs) != 1 || dl.Procs[0] != "waiter" {
		t.Errorf("deadlock procs = %v", dl.Procs)
	}
	if dl.Error() == "" {
		t.Error("empty error string")
	}
}

func TestQueueWakeOneFIFO(t *testing.T) {
	e := NewEngine()
	var q Queue
	var order []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		e.Spawn(name, func(p *Proc) {
			q.Wait(p)
			order = append(order, name)
		})
	}
	e.Spawn("waker", func(p *Proc) {
		p.Hold(10)
		for q.WakeOne() {
			p.Hold(10)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[a b c]" {
		t.Errorf("wake order = %v", order)
	}
}

func TestQueueWaitReportsTime(t *testing.T) {
	e := NewEngine()
	var q Queue
	var waited Time
	e.Spawn("w", func(p *Proc) { waited = q.Wait(p) })
	e.Spawn("s", func(p *Proc) {
		p.Hold(123)
		q.WakeAll()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if waited != 123 {
		t.Errorf("waited = %v, want 123", waited)
	}
}

func TestQueueRemove(t *testing.T) {
	e := NewEngine()
	var q Queue
	done := false
	e.Spawn("a", func(p *Proc) {
		e.Spawn("b", func(b *Proc) {
			q.Wait(b)
			done = true
		})
		p.Hold(10)
		if q.Len() != 1 {
			t.Errorf("queue len = %d", q.Len())
		}
		other := e.Procs()[1]
		if !q.Remove(other) {
			t.Error("Remove failed")
		}
		if q.Remove(other) {
			t.Error("double Remove succeeded")
		}
		other.Wake() // still parked; wake manually so the run terminates
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Error("b never resumed")
	}
}

func TestLockMutualExclusionAndFairness(t *testing.T) {
	e := NewEngine()
	var l Lock
	inside := 0
	var order []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		e.Spawn(name, func(p *Proc) {
			l.Acquire(p)
			inside++
			if inside != 1 {
				t.Errorf("mutual exclusion violated: %d inside", inside)
			}
			order = append(order, name)
			p.Hold(50)
			inside--
			l.Release(p)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[a b c]" {
		t.Errorf("acquisition order = %v", order)
	}
	if l.Held() {
		t.Error("lock still held after run")
	}
}

func TestLockWaitTimes(t *testing.T) {
	e := NewEngine()
	var l Lock
	var waits []Time
	for i := 0; i < 3; i++ {
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			w := l.Acquire(p)
			waits = append(waits, w)
			p.Hold(100)
			l.Release(p)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{0, 100, 200}
	for i, w := range waits {
		if w != want[i] {
			t.Errorf("wait[%d] = %v, want %v", i, w, want[i])
		}
	}
}

func TestLockPanicsOnMisuse(t *testing.T) {
	e := NewEngine()
	var l Lock
	e.Spawn("a", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("no panic on release-by-non-holder")
			}
		}()
		l.Release(p)
	})
	_ = e.Run()
}

func TestBarrierReleasesTogether(t *testing.T) {
	const n = 5
	e := NewEngine()
	b := NewBarrier(n)
	var releaseTimes []Time
	for i := 0; i < n; i++ {
		i := i
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Hold(Time(10 * (i + 1)))
			b.Arrive(p)
			releaseTimes = append(releaseTimes, p.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for _, rt := range releaseTimes {
		if rt != 50 { // the slowest arrival
			t.Errorf("release at %v, want 50", rt)
		}
	}
}

func TestBarrierReusable(t *testing.T) {
	const n, rounds = 3, 4
	e := NewEngine()
	b := NewBarrier(n)
	counts := make([]int, rounds)
	for i := 0; i < n; i++ {
		i := i
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for r := 0; r < rounds; r++ {
				p.Hold(Time(rand.New(rand.NewSource(int64(i*10+r))).Intn(50) + 1))
				b.Arrive(p)
				counts[r]++
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for r, c := range counts {
		if c != n {
			t.Errorf("round %d count = %d, want %d", r, c, n)
		}
	}
}

func TestSemaphore(t *testing.T) {
	e := NewEngine()
	s := NewSemaphore(2)
	concurrent, peak := 0, 0
	for i := 0; i < 6; i++ {
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			s.Acquire(p)
			concurrent++
			if concurrent > peak {
				peak = concurrent
			}
			p.Hold(100)
			concurrent--
			s.Release()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if peak != 2 {
		t.Errorf("peak concurrency = %d, want 2", peak)
	}
}

func TestSpawnFromProcess(t *testing.T) {
	e := NewEngine()
	childRan := false
	e.Spawn("parent", func(p *Proc) {
		p.Hold(10)
		e.Spawn("child", func(c *Proc) {
			if c.Now() != 10 {
				t.Errorf("child started at %v, want 10", c.Now())
			}
			childRan = true
		})
		p.Hold(10)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !childRan {
		t.Error("child never ran")
	}
}

func TestWakeNonParkedPanics(t *testing.T) {
	e := NewEngine()
	e.Spawn("a", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("no panic waking non-parked process")
			}
		}()
		p.Wake()
	})
	_ = e.Run()
}

func TestMaxTimeWatchdog(t *testing.T) {
	e := NewEngine()
	e.MaxTime = 1000
	e.Spawn("spinner", func(p *Proc) {
		for {
			p.Hold(100)
		}
	})
	err := e.Run()
	var tl *TimeLimitError
	if !errors.As(err, &tl) {
		t.Fatalf("want TimeLimitError, got %v", err)
	}
	if tl.Limit != 1000 || tl.At <= 1000 {
		t.Errorf("limit=%v at=%v", tl.Limit, tl.At)
	}
	if tl.Error() == "" {
		t.Error("empty message")
	}
}

func TestMaxTimeZeroMeansUnlimited(t *testing.T) {
	e := NewEngine()
	e.Spawn("a", func(p *Proc) { p.Hold(Forever / 2) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestProcessPanicBecomesRunError(t *testing.T) {
	e := NewEngine()
	e.Spawn("ok", func(p *Proc) { p.Hold(1000) })
	e.Spawn("boom", func(p *Proc) {
		p.Hold(10)
		panic("kaboom")
	})
	err := e.Run()
	if err == nil {
		t.Fatal("panic not surfaced")
	}
	if got := err.Error(); !strings.Contains(got, "boom") || !strings.Contains(got, "kaboom") {
		t.Errorf("error %q missing context", got)
	}
}

func TestEventCountMonotone(t *testing.T) {
	e := NewEngine()
	e.Spawn("a", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Hold(5)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// 1 start event + 10 holds
	if e.Events != 11 {
		t.Errorf("Events = %d, want 11", e.Events)
	}
}

// Property: for any set of hold durations, processes finish at the sum of
// their holds, and the engine clock ends at the maximum finish time.
func TestHoldSumProperty(t *testing.T) {
	f := func(durs [][]uint16) bool {
		if len(durs) == 0 || len(durs) > 16 {
			return true
		}
		e := NewEngine()
		finish := make([]Time, len(durs))
		var wantMax Time
		for i, ds := range durs {
			if len(ds) > 64 {
				ds = ds[:64]
			}
			i, ds := i, ds
			var sum Time
			for _, d := range ds {
				sum += Time(d)
			}
			if sum > wantMax {
				wantMax = sum
			}
			e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				for _, d := range ds {
					p.Hold(Time(d))
				}
				finish[i] = p.Now()
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		for i, ds := range durs {
			if len(ds) > 64 {
				ds = ds[:64]
			}
			var sum Time
			for _, d := range ds {
				sum += Time(d)
			}
			if finish[i] != sum {
				return false
			}
		}
		return e.Now() == wantMax
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: timestamps observed by any single process are non-decreasing.
func TestTimeMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		ok := true
		var l Lock
		b := NewBarrier(4)
		for i := 0; i < 4; i++ {
			durs := make([]Time, 20)
			for j := range durs {
				durs[j] = Time(rng.Intn(100))
			}
			e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				last := p.Now()
				for _, d := range durs {
					p.Hold(d)
					l.Acquire(p)
					p.Hold(1)
					l.Release(p)
					if p.Now() < last {
						ok = false
					}
					last = p.Now()
				}
				b.Arrive(p)
				if p.Now() < last {
					ok = false
				}
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
