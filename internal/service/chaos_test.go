package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spasm"
	"spasm/internal/faults"
	"spasm/internal/report"
	"spasm/internal/service"
	"spasm/internal/service/client"
)

// settle waits for the goroutine count to return to (near) base after a
// shutdown — worker and simulated-process goroutines exit asynchronously.
func settle(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutine leak: %d live, want <= %d\n%s", runtime.NumGoroutine(), base, buf[:n])
}

func chaosMetric(t *testing.T, svc *service.Server, name string) float64 {
	t.Helper()
	v, ok := client.MetricValue(svc.RenderMetrics(), name)
	if !ok {
		t.Fatalf("metric %s missing:\n%s", name, svc.RenderMetrics())
	}
	return v
}

func cheapSpec(seed int64) spasm.Spec {
	return spasm.Spec{App: "ep", Scale: spasm.Tiny, Seed: seed, Machine: spasm.LogP, P: 2}
}

// TestChaosInjectedPanics: a worker whose runs keep panicking fails
// those jobs — deterministically, without killing the daemon or leaking
// anything — and keeps serving the jobs that don't panic.
func TestChaosInjectedPanics(t *testing.T) {
	defer faults.Reset()
	base := runtime.NumGoroutine()
	svc := service.New(service.Config{Workers: 2, NegativeCacheSize: 64})

	var calls atomic.Int64
	restore := faults.Set(faults.RunExec, func() error {
		if calls.Add(1)%2 == 0 {
			panic("injected chaos panic")
		}
		return nil
	})

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	const jobs = 12
	var panicked, completed int
	for i := 0; i < jobs; i++ {
		j, _, err := svc.Submit(cheapSpec(int64(i + 1)))
		if err != nil {
			t.Fatal(err)
		}
		st, err := svc.Wait(ctx, j)
		if err != nil {
			t.Fatal(err)
		}
		switch st.State {
		case service.StateDone:
			completed++
		case service.StateFailed:
			if !strings.Contains(st.Error, "injected chaos panic") {
				t.Fatalf("unexpected failure: %s", st.Error)
			}
			panicked++
		default:
			t.Fatalf("job ended %s", st.State)
		}
	}
	if panicked == 0 || completed == 0 {
		t.Fatalf("panicked=%d completed=%d, want a mix", panicked, completed)
	}

	// The accounting identity holds through the chaos...
	if done, failed := chaosMetric(t, svc, "spasmd_jobs_done_total"), chaosMetric(t, svc, "spasmd_jobs_failed_total"); done+failed != jobs {
		t.Fatalf("done %v + failed %v != %d submitted", done, failed, jobs)
	}
	// ...and with the injection removed the daemon is fully healthy.
	restore()
	j, _, err := svc.Submit(cheapSpec(1000))
	if err != nil {
		t.Fatal(err)
	}
	if st, err := svc.Wait(ctx, j); err != nil || st.State != service.StateDone {
		t.Fatalf("post-chaos run: %v / %+v", err, st)
	}

	if err := svc.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	settle(t, base+2)
}

// TestChaosRunTimeouts: jobs past the wall-clock deadline fail with a
// timeout, their pooled contexts are discarded (never recycled
// mid-flight), the failures land in the negative cache, and the daemon
// neither leaks goroutines nor loses the ability to run normal jobs.
func TestChaosRunTimeouts(t *testing.T) {
	base := runtime.NumGoroutine()
	svc := service.New(service.Config{Workers: 2, RunTimeout: time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Small-scale Cholesky at p=16 runs for far longer than 1ms.
	slow := spasm.Spec{App: "cholesky", Scale: spasm.Small, Seed: 1, Machine: spasm.Target, Topology: "mesh", P: 16}
	j, _, err := svc.Submit(slow)
	if err != nil {
		t.Fatal(err)
	}
	st, err := svc.Wait(ctx, j)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != service.StateFailed || !strings.Contains(st.Error, "timeout") {
		t.Fatalf("deadline run: state=%s err=%q, want failed/timeout", st.State, st.Error)
	}
	if v := chaosMetric(t, svc, "spasmd_jobs_timeout_total"); v != 1 {
		t.Fatalf("jobs_timeout_total = %v, want 1", v)
	}
	if v := chaosMetric(t, svc, "spasmd_pool_contexts_discarded_total"); v < 1 {
		t.Fatalf("pool_contexts_discarded_total = %v, want >= 1 (aborted context must not be reused)", v)
	}

	// Resubmission is answered from the negative cache without burning a
	// worker on a run already known to blow the deadline.
	j2, hit, err := svc.Submit(slow)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("remembered failure reported as a positive cache hit")
	}
	st2, err := svc.Wait(ctx, j2)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != service.StateFailed {
		t.Fatalf("negative hit state = %s, want failed", st2.State)
	}
	if v := chaosMetric(t, svc, "spasmd_cache_negative_hits_total"); v != 1 {
		t.Fatalf("cache_negative_hits_total = %v, want 1", v)
	}

	// Fast jobs still finish under the same deadline regime.
	j3, _, err := svc.Submit(cheapSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	if st3, err := svc.Wait(ctx, j3); err != nil || st3.State != service.StateDone {
		t.Fatalf("fast run under deadline: %v / %+v", err, st3)
	}

	if err := svc.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	settle(t, base+2)
}

// TestChaosMassCancellation: with the only worker wedged, a pile of
// waited jobs whose waiters all leave is canceled wholesale — no
// simulation ever runs for them, nothing is cached, and the canceled
// carcasses left in the queue are skipped once the worker recovers.
func TestChaosMassCancellation(t *testing.T) {
	defer faults.Reset()
	base := runtime.NumGoroutine()
	svc := service.New(service.Config{Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	gate := make(chan struct{})
	var gateOnce sync.Once
	faults.Set(faults.WorkerStall, func() error { <-gate; return nil })
	// Wedge the worker on a sacrificial job (it too will be canceled,
	// then skipped).
	const jobs = 8
	type waited struct {
		j       *service.Job
		release func()
	}
	var ws []waited
	for i := 0; i < jobs; i++ {
		j, hit, release, err := svc.SubmitWaited(cheapSpec(int64(i + 1)))
		if err != nil || hit {
			t.Fatalf("submit %d: hit=%v err=%v", i, hit, err)
		}
		ws = append(ws, waited{j, release})
	}

	// Every waiter leaves: all still-pending jobs cancel immediately.
	for _, w := range ws {
		w.release()
	}
	for i, w := range ws {
		select {
		case <-w.j.Done():
		case <-ctx.Done():
			t.Fatalf("job %d not canceled", i)
		}
		st, err := svc.Wait(ctx, w.j)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != service.StateCanceled {
			t.Fatalf("job %d state = %s, want canceled", i, st.State)
		}
	}
	if v := chaosMetric(t, svc, "spasmd_jobs_canceled_total"); v != jobs {
		t.Fatalf("jobs_canceled_total = %v, want %d", v, jobs)
	}

	// Unwedge: the worker drains the carcasses without running anything.
	gateOnce.Do(func() { close(gate) })
	j, _, err := svc.Submit(cheapSpec(999))
	if err != nil {
		t.Fatal(err)
	}
	if st, err := svc.Wait(ctx, j); err != nil || st.State != service.StateDone {
		t.Fatalf("post-cancellation run: %v / %+v", err, st)
	}
	if done := chaosMetric(t, svc, "spasmd_jobs_done_total"); done != 1 {
		t.Fatalf("jobs_done_total = %v, want 1 (canceled jobs must not execute)", done)
	}
	if sims := chaosMetric(t, svc, "spasmd_pool_hits_total") + chaosMetric(t, svc, "spasmd_pool_misses_total"); sims != 1 {
		t.Fatalf("pool gets = %v, want 1 (one real simulation)", sims)
	}
	// A canceled spec resubmitted runs fresh — cancellation is not cached.
	j2, hit, err := svc.Submit(cheapSpec(1))
	if err != nil || hit {
		t.Fatalf("resubmit canceled spec: hit=%v err=%v", hit, err)
	}
	if st, err := svc.Wait(ctx, j2); err != nil || st.State != service.StateDone {
		t.Fatalf("resubmitted canceled spec: %v / %+v", err, st)
	}

	if err := svc.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	settle(t, base+2)
}

// TestChaosMarshalFailure: a result that cannot be serialized fails its
// job (and is remembered) instead of wedging or crashing the worker.
func TestChaosMarshalFailure(t *testing.T) {
	defer faults.Reset()
	svc := service.New(service.Config{Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	restore := faults.Set(faults.Marshal, func() error { return fmt.Errorf("injected marshal failure") })
	j, _, err := svc.Submit(cheapSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	st, err := svc.Wait(ctx, j)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != service.StateFailed || !strings.Contains(st.Error, "injected marshal failure") {
		t.Fatalf("marshal-failed job: %+v", st)
	}
	restore()

	// The failure was cached against the spec; after the negative TTL'd
	// entry is bypassed with a different seed, marshaling works again.
	j2, _, err := svc.Submit(cheapSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	if st2, err := svc.Wait(ctx, j2); err != nil || st2.State != service.StateDone {
		t.Fatalf("post-restore run: %v / %+v", err, st2)
	}
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestShutdownSubmitRace hammers Submit from many goroutines while
// Shutdown closes the queue, pinning the invariant that the queue send
// happens under the same mutex that guards close(s.queue): a regression
// would panic with "send on closed channel" or trip the race detector.
func TestShutdownSubmitRace(t *testing.T) {
	for iter := 0; iter < 25; iter++ {
		svc := service.New(service.Config{Workers: 1, QueueDepth: 4})
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				for i := 0; i < 8; i++ {
					_, _, err := svc.Submit(cheapSpec(int64(iter*1000 + g*100 + i + 1)))
					if err != nil && !errors.Is(err, service.ErrDraining) && !errors.Is(err, service.ErrQueueFull) {
						t.Errorf("submit: %v", err)
						return
					}
				}
			}(g)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			defer cancel()
			if err := svc.Shutdown(ctx); err != nil {
				t.Errorf("shutdown: %v", err)
			}
		}()
		close(start)
		wg.Wait()
	}
}

// TestChaosParallelRuns: faults and deadlines against runs executing on
// the conservative parallel kernel.  Injected executor faults fail the
// job without touching the engine; a deadline interrupts the parallel
// window mid-flight and the drain discards the pooled context; and after
// the abuse the same daemon still serves a clean parallel run whose
// document is byte-identical to the sequential oracle.  Everything must
// settle to zero leaked goroutines — under -race this doubles as the
// service-level drain gauntlet.
func TestChaosParallelRuns(t *testing.T) {
	defer faults.Reset()
	base := runtime.NumGoroutine()
	svc := service.New(service.Config{Workers: 2, RunTimeout: time.Minute, NegativeCacheSize: 64})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	parSpec := func(seed int64) spasm.Spec {
		return spasm.Spec{App: "cholesky", Scale: spasm.Tiny, Seed: seed,
			Machine: spasm.LogP, Topology: "mesh", P: 8, Workers: 4}
	}

	// Every third run hits an injected executor fault.
	var calls atomic.Int64
	restore := faults.Set(faults.RunExec, func() error {
		if calls.Add(1)%3 == 0 {
			return fmt.Errorf("injected executor fault")
		}
		return nil
	})

	var injected, timedOut, done int
	for seed := int64(1); seed <= 12; seed++ {
		j, _, err := svc.Submit(parSpec(seed))
		if err != nil {
			t.Fatal(err)
		}
		st, err := svc.Wait(ctx, j)
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case st.State == service.StateDone:
			done++
		case strings.Contains(st.Error, "injected executor fault"):
			injected++
		case strings.Contains(st.Error, "timeout"):
			timedOut++
		default:
			t.Fatalf("seed %d: state=%s err=%q", seed, st.State, st.Error)
		}
	}
	restore()
	if injected == 0 {
		t.Fatal("no injected fault landed")
	}

	// A slow parallel run under a tight deadline, on its own server so
	// the timeout failure cannot pollute the main server's negative
	// cache: the abort happens inside a parallel window and must discard
	// the pooled context.
	dsvc := service.New(service.Config{Workers: 1, RunTimeout: 2 * time.Millisecond})
	slow := spasm.Spec{App: "cholesky", Scale: spasm.Small, Seed: 1,
		Machine: spasm.LogP, Topology: "mesh", P: 16, Workers: 4}
	j, _, err := dsvc.Submit(slow)
	if err != nil {
		t.Fatal(err)
	}
	st, err := dsvc.Wait(ctx, j)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != service.StateFailed || !strings.Contains(st.Error, "timeout") {
		t.Fatalf("deadline parallel run: state=%s err=%q, want failed/timeout", st.State, st.Error)
	}
	if v := chaosMetric(t, dsvc, "spasmd_pool_contexts_discarded_total"); v < 1 {
		t.Fatalf("pool_contexts_discarded_total = %v, want >= 1", v)
	}
	if err := dsvc.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// The survivor runs' documents match the sequential oracle.
	seq := parSpec(1)
	seq.Workers = 0
	direct, err := spasm.RunSpec(seq)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(report.RunJSON(direct))
	j2, _, err := svc.Submit(parSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	st2, err := svc.Wait(ctx, j2)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != service.StateDone {
		t.Fatalf("post-chaos parallel run: state=%s err=%q", st2.State, st2.Error)
	}
	if !bytes.Equal([]byte(st2.Result), want) {
		t.Fatalf("post-chaos parallel document diverged\nseq: %s\npar: %s", want, st2.Result)
	}
	if v := chaosMetric(t, svc, "spasmd_runs_parallel_total"); v < 1 {
		t.Fatalf("spasmd_runs_parallel_total = %v, want >= 1", v)
	}

	if err := svc.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	settle(t, base+2)
}
