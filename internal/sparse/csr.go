// Package sparse provides the sparse-matrix substrate for the CG and
// CHOLESKY applications: CSR symmetric positive-definite matrices, a
// seeded synthetic generator (the stand-in for the NAS/SPLASH inputs,
// which are not redistributable), symbolic Cholesky factorization
// (elimination structure), and reference numeric kernels used to verify
// the simulated applications' results.
package sparse

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// CSR is a square sparse matrix in compressed-sparse-row form.
type CSR struct {
	N      int
	RowPtr []int     // len N+1
	Col    []int     // len NNZ, column indices, sorted within each row
	Val    []float64 // len NNZ
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Col) }

// Row returns the column indices and values of row i.
func (m *CSR) Row(i int) ([]int, []float64) {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	return m.Col[lo:hi], m.Val[lo:hi]
}

// At returns element (i, j), zero if not stored.
func (m *CSR) At(i, j int) float64 {
	cols, vals := m.Row(i)
	k := sort.SearchInts(cols, j)
	if k < len(cols) && cols[k] == j {
		return vals[k]
	}
	return 0
}

// MulVec computes y = M x (host-side reference kernel).
func (m *CSR) MulVec(x, y []float64) {
	if len(x) != m.N || len(y) != m.N {
		panic("sparse: MulVec dimension mismatch")
	}
	for i := 0; i < m.N; i++ {
		cols, vals := m.Row(i)
		var s float64
		for k, j := range cols {
			s += vals[k] * x[j]
		}
		y[i] = s
	}
}

// Validate checks structural consistency: monotone RowPtr, in-range and
// sorted columns.
func (m *CSR) Validate() error {
	if len(m.RowPtr) != m.N+1 {
		return fmt.Errorf("sparse: RowPtr length %d for N=%d", len(m.RowPtr), m.N)
	}
	if m.RowPtr[0] != 0 || m.RowPtr[m.N] != len(m.Col) || len(m.Col) != len(m.Val) {
		return fmt.Errorf("sparse: inconsistent RowPtr/Col/Val lengths")
	}
	for i := 0; i < m.N; i++ {
		if m.RowPtr[i] > m.RowPtr[i+1] {
			return fmt.Errorf("sparse: RowPtr not monotone at row %d", i)
		}
		cols, _ := m.Row(i)
		for k, j := range cols {
			if j < 0 || j >= m.N {
				return fmt.Errorf("sparse: row %d has column %d out of range", i, j)
			}
			if k > 0 && cols[k-1] >= j {
				return fmt.Errorf("sparse: row %d columns not strictly sorted", i)
			}
		}
	}
	return nil
}

// IsSymmetric reports whether the stored pattern and values are
// symmetric.
func (m *CSR) IsSymmetric() bool {
	for i := 0; i < m.N; i++ {
		cols, vals := m.Row(i)
		for k, j := range cols {
			if m.At(j, i) != vals[k] {
				return false
			}
		}
	}
	return true
}

// RandomSPD generates a random symmetric positive-definite matrix of
// order n: a tridiagonal band plus `extra` random symmetric off-diagonal
// pairs per row, made strictly diagonally dominant (hence SPD).  The
// generator is fully determined by seed, standing in for the NAS CG and
// SPLASH TRI input matrices.
func RandomSPD(n, extra int, seed int64) *CSR {
	if n < 1 {
		panic("sparse: RandomSPD with n < 1")
	}
	rng := rand.New(rand.NewSource(seed))
	offDiag := make([]map[int]float64, n)
	for i := range offDiag {
		offDiag[i] = make(map[int]float64)
	}
	put := func(i, j int, v float64) {
		if i == j {
			return
		}
		offDiag[i][j] = v
		offDiag[j][i] = v
	}
	for i := 0; i+1 < n; i++ {
		put(i, i+1, -(0.1 + rng.Float64()))
	}
	for i := 0; i < n; i++ {
		for e := 0; e < extra; e++ {
			j := rng.Intn(n)
			if j != i {
				put(i, j, -(0.05 + 0.5*rng.Float64()))
			}
		}
	}
	m := &CSR{N: n, RowPtr: make([]int, n+1)}
	for i := 0; i < n; i++ {
		cols := make([]int, 0, len(offDiag[i])+1)
		for j := range offDiag[i] {
			cols = append(cols, j)
		}
		cols = append(cols, i)
		sort.Ints(cols)
		var rowSum float64
		for _, j := range cols {
			if j != i {
				rowSum += math.Abs(offDiag[i][j])
			}
		}
		for _, j := range cols {
			m.Col = append(m.Col, j)
			if j == i {
				m.Val = append(m.Val, rowSum+1.0+rng.Float64())
			} else {
				m.Val = append(m.Val, offDiag[i][j])
			}
		}
		m.RowPtr[i+1] = len(m.Col)
	}
	return m
}

// Residual returns max_i |b - A x|_i (host-side verification helper).
func Residual(a *CSR, x, b []float64) float64 {
	ax := make([]float64, a.N)
	a.MulVec(x, ax)
	var worst float64
	for i := range ax {
		if d := math.Abs(b[i] - ax[i]); d > worst {
			worst = d
		}
	}
	return worst
}
