// Command spasmd serves the simulator as a long-lived HTTP service: a
// job queue and worker pool execute runs through the spasm façade, and a
// content-addressed result cache makes repeated identical requests
// near-free (runs are deterministic functions of their spec).
//
// Usage:
//
//	spasmd                       # listen on :8347, GOMAXPROCS workers
//	spasmd -addr :9000 -workers 8 -cache 1024
//	spasmd -store /var/lib/spasmd  # durable result store: restarts stay warm
//
// Quick start:
//
//	curl -s localhost:8347/healthz
//	curl -s -X POST localhost:8347/v1/runs \
//	    -d '{"app":"fft","scale":"tiny","machine":"target","topology":"mesh","p":16}'
//	curl -s localhost:8347/v1/runs/<id>     # poll: pending -> running -> done
//	curl -s 'localhost:8347/v1/figures/7?scale=tiny&procs=2,4,8'
//	curl -s localhost:8347/metrics
//
// SIGINT/SIGTERM begin a graceful shutdown: the listener stops, and
// every accepted simulation drains before the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"spasm/internal/service"
	"spasm/internal/service/store"
)

// parseWeights parses -tenant-weights ("alice=4,bob=1") into the
// service's weight map.
func parseWeights(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]int)
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, errors.New("want tenant=weight pairs, e.g. alice=4,bob=1")
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 1 {
			return nil, errors.New("tenant weight must be a positive integer")
		}
		out[name] = w
	}
	return out, nil
}

func main() {
	var (
		addr        = flag.String("addr", ":8347", "listen address")
		workers     = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		cacheSize   = flag.Int("cache", 512, "result-cache capacity, in runs")
		queue       = flag.Int("queue", 1024, "pending-job queue depth")
		drain       = flag.Duration("drain", 10*time.Minute, "graceful-shutdown drain timeout")
		runTimeout  = flag.Duration("run-timeout", 0, "per-job wall-clock simulation deadline (0 = unbounded)")
		negCache    = flag.Int("neg-cache", 64, "failed-result cache capacity, in runs")
		negTTL      = flag.Duration("neg-ttl", 30*time.Second, "failed-result cache entry lifetime")
		storeDir    = flag.String("store", "", "durable result-store directory (empty = memory-only)")
		maxBody     = flag.Int64("max-body", 1<<20, "request-body size cap, in bytes")
		tenantRuns  = flag.Int("tenant-runs", 0, "per-tenant outstanding-run quota (0 = unlimited)")
		tenantBytes = flag.Int64("tenant-bytes", 0, "per-tenant queued-body-bytes quota (0 = unlimited)")
		weightsFlag = flag.String("tenant-weights", "", "per-tenant fair-share weights, e.g. alice=4,bob=1")
	)
	flag.Parse()

	weights, err := parseWeights(*weightsFlag)
	if err != nil {
		log.Fatalf("spasmd: -tenant-weights: %v", err)
	}
	var st *store.Store
	if *storeDir != "" {
		if st, err = store.Open(*storeDir); err != nil {
			log.Fatalf("spasmd: -store: %v", err)
		}
		log.Printf("spasmd: durable store at %s (%d runs warm)", st.Dir(), st.Stats().Entries)
	}

	svc := service.New(service.Config{
		Workers: *workers, CacheSize: *cacheSize, QueueDepth: *queue,
		RunTimeout: *runTimeout, NegativeCacheSize: *negCache, NegativeTTL: *negTTL,
		Store: st, MaxBodyBytes: *maxBody,
		TenantWeights: weights, TenantQuotaRuns: *tenantRuns, TenantQuotaBytes: *tenantBytes,
	})
	hs := &http.Server{Addr: *addr, Handler: svc.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		w := *workers
		if w == 0 {
			w = runtime.GOMAXPROCS(0)
		}
		log.Printf("spasmd: listening on %s (%d workers, cache %d runs)", *addr, w, *cacheSize)
		errCh <- hs.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		log.Fatalf("spasmd: %v", err)
	case <-ctx.Done():
	}

	log.Printf("spasmd: shutting down, draining in-flight simulations...")
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("spasmd: http shutdown: %v", err)
	}
	if err := svc.Shutdown(dctx); err != nil {
		log.Fatalf("spasmd: drain: %v", err)
	}
	log.Printf("spasmd: drained, bye")
}
