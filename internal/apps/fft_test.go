package apps

import (
	"testing"

	"spasm/internal/app"
	"spasm/internal/machine"
	"spasm/internal/stats"
)

func runFFT(t *testing.T, kind machine.Kind, p, n int) (*FFT, *stats.Run) {
	t.Helper()
	f := &FFT{N: n, Seed: 1}
	res, err := app.Run(f, machine.Config{Kind: kind, Topology: "full", P: p})
	if err != nil {
		t.Fatal(err)
	}
	return f, res.Stats
}

func TestFFTCorrectOnEveryMachine(t *testing.T) {
	// Check() compares against an independent host FFT; run it under
	// each timing model.
	for _, kind := range machine.Kinds() {
		runFFT(t, kind, 4, 256)
	}
}

func TestFFTMatrixDecomposition(t *testing.T) {
	for _, n := range []int{64, 256, 1024} {
		f, _ := runFFT(t, machine.Ideal, 2, n)
		if f.R*f.C != n {
			t.Errorf("n=%d: R*C = %d*%d", n, f.R, f.C)
		}
		if f.R > f.C {
			t.Errorf("n=%d: R=%d > C=%d", n, f.R, f.C)
		}
	}
}

func TestFFTOddLogDecomposition(t *testing.T) {
	f, _ := runFFT(t, machine.Ideal, 2, 512) // 2^9: R=16, C=32
	if f.R != 16 || f.C != 32 {
		t.Errorf("512 = %d x %d", f.R, f.C)
	}
}

func TestFFTRemoteReadsAreConsecutive(t *testing.T) {
	// The paper's observation: the communication phase reads
	// consecutive items, so on the cached machine the miss rate of
	// the transpose reads approaches 1/(items per block) = 1/4.
	_, run := runFFT(t, machine.CLogP, 4, 1024)
	misses := run.Count(func(q *stats.Proc) uint64 { return q.Misses })
	reads := run.Count(func(q *stats.Proc) uint64 { return q.Reads })
	if reads == 0 {
		t.Fatal("no reads")
	}
	rate := float64(misses) / float64(reads)
	// Both transposes miss at ~1/4 on their gather reads; local FFT
	// rows mostly hit.  Overall the rate must sit well below 1/2 and
	// above 1/20.
	if rate < 0.05 || rate > 0.5 {
		t.Errorf("miss rate %.3f outside the spatial-locality band", rate)
	}
}

func TestFFTPanicsWhenTooSmallForP(t *testing.T) {
	f := &FFT{N: 64, Seed: 1} // R=8: cannot split across 16 procs
	_, err := app.Run(f, machine.Config{Kind: machine.Ideal, Topology: "full", P: 16})
	if err == nil {
		t.Error("undersized FFT accepted")
	}
}

func TestFFTPhasesBarrierSeparated(t *testing.T) {
	f, run := runFFT(t, machine.Target, 4, 256)
	// 4 barriers per processor.
	ops := run.Count(func(q *stats.Proc) uint64 { return q.BarrierOps })
	if ops != 4*4 {
		t.Errorf("barrier ops = %d, want 16", ops)
	}
	_ = f
}

func TestFFTCommunicationGrowsWithP(t *testing.T) {
	// With more processors a larger fraction of each transpose is
	// remote: network accesses per processor-pair must grow.
	_, r2 := runFFT(t, machine.CLogP, 2, 1024)
	_, r8 := runFFT(t, machine.CLogP, 8, 1024)
	if r8.NetAccesses() <= r2.NetAccesses() {
		t.Errorf("net accesses p=8 (%d) not above p=2 (%d)",
			r8.NetAccesses(), r2.NetAccesses())
	}
}
