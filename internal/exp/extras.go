package exp

import (
	"time"

	"spasm/internal/apps"
	"spasm/internal/logp"
	"spasm/internal/machine"
	"spasm/internal/network"
	"spasm/internal/sim"
	"spasm/internal/stats"
)

// This file implements the paper's experiments that are reported in the
// text rather than as numbered figures:
//
//   - S1 (section 7, "Speed of Simulation"): the cost of simulating each
//     machine characterization — the paper's CLogP simulation is 25-30%
//     faster than the target's, while the LogP simulation is *slower*
//     because ignoring locality multiplies network events.
//   - S2 (section 7): the gap-accounting ablation — enforcing g only
//     between identical communication events brings the contention
//     estimate much closer to the real network (FFT on the cube).
//   - S3 (section 5): the g-parameter table derived from bisection
//     bandwidth.

// CostRow reports the cost of simulating one machine characterization.
type CostRow struct {
	Machine machine.Kind
	// Wall is the host time spent simulating the whole application
	// suite.
	Wall time.Duration
	// Events is the total number of discrete events dispatched — the
	// host-independent measure of simulation cost.
	Events uint64
}

// SimulationCost runs the full application suite on every machine kind
// at the given topology and processor count and reports each
// characterization's simulation cost.
func (s *Session) SimulationCost(topo string, p int) ([]CostRow, error) {
	var out []CostRow
	for _, kind := range s.opt.Machines {
		row := CostRow{Machine: kind}
		for _, name := range apps.Names() {
			r, err := s.Run(name, topo, kind, p)
			if err != nil {
				return nil, err
			}
			row.Wall += r.Wall
			row.Events += r.SimEvents
		}
		out = append(out, row)
	}
	return out, nil
}

// AblationRow is one sweep point of the gap-discipline ablation.
type AblationRow struct {
	P           int
	Target      float64 // contention on the detailed network, us
	CombinedGap float64 // CLogP contention, strict LogP gap
	PerClassGap float64 // CLogP contention, per-event-class gap
}

// GapAblation reproduces the section-7 experiment: FFT on the cube, with
// the g gap enforced between all network events (the LogP definition)
// versus only between identical events.  The per-class discipline should
// sit much closer to the target machine's contention.
func GapAblation(scale apps.Scale, seed int64, procs []int) ([]AblationRow, error) {
	combined := NewSession(Options{Scale: scale, Seed: seed, Procs: procs,
		Machines: []machine.Kind{machine.CLogP, machine.Target}, PortMode: logp.Combined})
	perClass := NewSession(Options{Scale: scale, Seed: seed, Procs: procs,
		Machines: []machine.Kind{machine.CLogP}, PortMode: logp.PerClass})

	var out []AblationRow
	for _, p := range combined.Options().Procs {
		tgt, err := combined.Run("fft", "cube", machine.Target, p)
		if err != nil {
			return nil, err
		}
		com, err := combined.Run("fft", "cube", machine.CLogP, p)
		if err != nil {
			return nil, err
		}
		per, err := perClass.Run("fft", "cube", machine.CLogP, p)
		if err != nil {
			return nil, err
		}
		out = append(out, AblationRow{
			P:           p,
			Target:      Value(ContentionOvh, tgt),
			CombinedGap: Value(ContentionOvh, com),
			PerClassGap: Value(ContentionOvh, per),
		})
	}
	return out, nil
}

// GapRow is one entry of the g-parameter table.
type GapRow struct {
	Topology string
	P        int
	G        sim.Time
}

// GapTable computes the paper's g parameters (section 5) for every
// topology and processor count: 3.2/p us on the full network, 1.6 us on
// the cube, 0.8*columns us on the mesh.
func GapTable(procs []int) []GapRow {
	var out []GapRow
	for _, topo := range []string{"full", "cube", "mesh"} {
		for _, p := range procs {
			t, err := network.New(topo, p)
			if err != nil {
				continue
			}
			out = append(out, GapRow{
				Topology: topo,
				P:        p,
				G:        logp.GapFor(t, 32, sim.SerialByte),
			})
		}
	}
	return out
}

// SpeedupRow is one point of a scalability curve: the overhead-separated
// speedup analysis SPASM was originally built for (the authors'
// SIGMETRICS'94 companion paper).
type SpeedupRow struct {
	P int
	// Exec is the execution time on the studied machine (us).
	Exec float64
	// IdealExec is the execution time on the PRAM-like ideal machine
	// at the same P: the purely algorithmic component (serial part +
	// imbalance), with no architectural overheads.
	IdealExec float64
	// Speedup is T_ideal(1) / T(P): real speedup over the
	// single-processor ideal execution.
	Speedup float64
	// AlgorithmicSpeedup is T_ideal(1) / T_ideal(P): the best this
	// algorithm could do on any machine.
	AlgorithmicSpeedup float64
	// Efficiency is Speedup / P.
	Efficiency float64
}

// Speedup computes the scalability curve of one application on one
// machine characterization, against the ideal-machine baseline.
func (s *Session) Speedup(appName, topo string, kind machine.Kind, procs []int) ([]SpeedupRow, error) {
	base, err := s.Run(appName, topo, machine.Ideal, 1)
	if err != nil {
		return nil, err
	}
	t1 := base.Total.Micros()
	var out []SpeedupRow
	for _, p := range procs {
		r, err := s.Run(appName, topo, kind, p)
		if err != nil {
			return nil, err
		}
		ideal, err := s.Run(appName, topo, machine.Ideal, p)
		if err != nil {
			return nil, err
		}
		row := SpeedupRow{
			P:         p,
			Exec:      r.Total.Micros(),
			IdealExec: ideal.Total.Micros(),
		}
		if row.Exec > 0 {
			row.Speedup = t1 / row.Exec
			row.Efficiency = row.Speedup / float64(p)
		}
		if row.IdealExec > 0 {
			row.AlgorithmicSpeedup = t1 / row.IdealExec
		}
		out = append(out, row)
	}
	return out, nil
}

// MessageCounts extracts per-machine message totals for a given
// application/topology/P — the "latency overhead is an indication of the
// number of messages" cross-check used in the locality analysis.
func (s *Session) MessageCounts(appName, topo string, p int) (map[machine.Kind]uint64, error) {
	out := map[machine.Kind]uint64{}
	for _, kind := range s.opt.Machines {
		r, err := s.Run(appName, topo, kind, p)
		if err != nil {
			return nil, err
		}
		out[kind] = r.Count(func(q *stats.Proc) uint64 { return q.Messages })
	}
	return out, nil
}
