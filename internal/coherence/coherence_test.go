package coherence

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"spasm/internal/cache"
	"spasm/internal/mem"
	"spasm/internal/sim"
	"spasm/internal/stats"
)

// flatTransport prices every message with a fixed delay — the simplest
// "target-like" transport for protocol testing.
type flatTransport struct {
	delay sim.Time
	log   []Class
}

func (f *flatTransport) Message(now sim.Time, src, dst, bytes int, class Class) Delivery {
	f.log = append(f.log, class)
	return Delivery{At: now + f.delay, Latency: f.delay, Sent: true}
}

// freeCoherence prices only data-moving messages, like the LogP+cache
// machine.
type freeCoherence struct {
	delay sim.Time
	log   []Class
}

func (f *freeCoherence) Message(now sim.Time, src, dst, bytes int, class Class) Delivery {
	if !class.MovesData() {
		return Delivery{At: now}
	}
	f.log = append(f.log, class)
	return Delivery{At: now + f.delay, Latency: f.delay, Sent: true}
}

// smallCache keeps working sets tiny so tests can force evictions.
func smallCache() cache.Config {
	return cache.Config{SizeBytes: 128, BlockBytes: 32, Assoc: 2} // 2 sets, 4 lines
}

func testEngine(p int, tr Transport) (*Engine, *mem.Space, *mem.Array) {
	space := mem.NewSpace(p, 32)
	arr := space.Alloc("x", p*64, 8, mem.Blocked)
	return NewEngine(space, smallCache(), DefaultCosts(), tr), space, arr
}

// drive runs fn as a single simulated process and returns its stats.
func drive(t *testing.T, p int, fn func(*sim.Proc, *stats.Run)) *stats.Run {
	t.Helper()
	e := sim.NewEngine()
	run := stats.NewRun(p)
	e.Spawn("driver", func(pr *sim.Proc) { fn(pr, run) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return run
}

func TestReadHomeLocalNoTraffic(t *testing.T) {
	tr := &flatTransport{delay: 100}
	eng, _, arr := testEngine(4, tr)
	run := drive(t, 4, func(p *sim.Proc, r *stats.Run) {
		lo, _ := arr.OwnerRange(0)
		eng.Read(p, &r.Procs[0], 0, arr.At(lo)) // node 0 reads its own partition
	})
	if got := run.Procs[0].Messages; got != 0 {
		t.Errorf("local read sent %d messages", got)
	}
	if run.Procs[0].NetAccesses != 0 {
		t.Error("local read counted as network access")
	}
	if run.Procs[0].Misses != 1 {
		t.Errorf("misses = %d", run.Procs[0].Misses)
	}
	if run.Procs[0].Time[stats.Memory] == 0 {
		t.Error("no memory time charged")
	}
}

func TestReadRemoteMemorySupply(t *testing.T) {
	tr := &flatTransport{delay: 100}
	eng, _, arr := testEngine(4, tr)
	run := drive(t, 4, func(p *sim.Proc, r *stats.Run) {
		lo, _ := arr.OwnerRange(2)
		eng.Read(p, &r.Procs[0], 0, arr.At(lo)) // node 0 reads node 2's partition
	})
	st := &run.Procs[0]
	if st.Messages != 2 { // request + data reply
		t.Errorf("messages = %d, want 2 (%v)", st.Messages, tr.log)
	}
	if fmt.Sprint(tr.log) != "[read-req data-reply]" {
		t.Errorf("message classes = %v", tr.log)
	}
	if st.NetAccesses != 1 {
		t.Errorf("net accesses = %d", st.NetAccesses)
	}
	if st.Time[stats.Latency] != 200 {
		t.Errorf("latency = %v, want 200", st.Time[stats.Latency])
	}
}

func TestSecondReadHits(t *testing.T) {
	tr := &flatTransport{delay: 100}
	eng, _, arr := testEngine(4, tr)
	run := drive(t, 4, func(p *sim.Proc, r *stats.Run) {
		lo, _ := arr.OwnerRange(2)
		eng.Read(p, &r.Procs[0], 0, arr.At(lo))
		eng.Read(p, &r.Procs[0], 0, arr.At(lo))   // same block: hit
		eng.Read(p, &r.Procs[0], 0, arr.At(lo+1)) // same 32B block (8B elems): hit
	})
	st := &run.Procs[0]
	if st.Hits != 2 || st.Misses != 1 {
		t.Errorf("hits=%d misses=%d", st.Hits, st.Misses)
	}
	if st.Messages != 2 {
		t.Errorf("messages = %d, spatial locality not captured", st.Messages)
	}
}

func TestOwnerSuppliesAndIsDemoted(t *testing.T) {
	tr := &flatTransport{delay: 100}
	eng, space, arr := testEngine(4, tr)
	lo, _ := arr.OwnerRange(2)
	addr := arr.At(lo) // homed at node 2
	run := drive(t, 4, func(p *sim.Proc, r *stats.Run) {
		eng.Write(p, &r.Procs[1], 1, addr) // node 1 becomes exclusive owner
		tr.log = nil
		eng.Read(p, &r.Procs[3], 3, addr) // node 3 reads: owner 1 must supply
	})
	_ = run
	if fmt.Sprint(tr.log) != "[read-req forward data-reply]" {
		t.Errorf("read-from-owner classes = %v", tr.log)
	}
	b := space.BlockOf(addr)
	if s := eng.Cache(1).State(b); s != cache.OwnedShared {
		t.Errorf("supplier state = %v, want SD (Berkeley keeps ownership)", s)
	}
	if s := eng.Cache(3).State(b); s != cache.UnOwned {
		t.Errorf("requester state = %v, want V", s)
	}
	if err := eng.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	tr := &flatTransport{delay: 100}
	eng, space, arr := testEngine(4, tr)
	lo, _ := arr.OwnerRange(0)
	addr := arr.At(lo) // homed at node 0
	run := drive(t, 4, func(p *sim.Proc, r *stats.Run) {
		eng.Read(p, &r.Procs[1], 1, addr)
		eng.Read(p, &r.Procs[2], 2, addr)
		eng.Read(p, &r.Procs[3], 3, addr)
		tr.log = nil
		eng.Write(p, &r.Procs[3], 3, addr) // upgrade: invalidate 1 and 2
	})
	b := space.BlockOf(addr)
	if s := eng.Cache(3).State(b); s != cache.OwnedExclusive {
		t.Errorf("writer state = %v", s)
	}
	for _, n := range []int{1, 2} {
		if s := eng.Cache(n).State(b); s != cache.Invalid {
			t.Errorf("cache %d state = %v, want I", n, s)
		}
	}
	// upgrade-req, then inval/ack per sharer, then grant
	if fmt.Sprint(tr.log) != "[upgrade-req inval inval-ack inval inval-ack grant]" {
		t.Errorf("upgrade classes = %v", tr.log)
	}
	if run.Procs[3].Invals != 2 {
		t.Errorf("invals = %d", run.Procs[3].Invals)
	}
	if err := eng.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestWriteHitExclusiveIsFree(t *testing.T) {
	tr := &flatTransport{delay: 100}
	eng, _, arr := testEngine(4, tr)
	lo, _ := arr.OwnerRange(2)
	addr := arr.At(lo)
	run := drive(t, 4, func(p *sim.Proc, r *stats.Run) {
		eng.Write(p, &r.Procs[1], 1, addr)
		tr.log = nil
		for i := 0; i < 10; i++ {
			eng.Write(p, &r.Procs[1], 1, addr)
		}
	})
	if len(tr.log) != 0 {
		t.Errorf("exclusive write hits sent messages: %v", tr.log)
	}
	if run.Procs[1].Hits != 10 {
		t.Errorf("hits = %d", run.Procs[1].Hits)
	}
}

func TestEvictionWritesBackOwnedBlock(t *testing.T) {
	tr := &flatTransport{delay: 100}
	eng, _, arr := testEngine(4, tr)
	// Node 0 writes blocks homed at node 2 until its tiny cache
	// (2 sets x 2 ways) must evict an exclusively owned block.
	run := drive(t, 4, func(p *sim.Proc, r *stats.Run) {
		lo, _ := arr.OwnerRange(2)
		for i := 0; i < 5; i++ {
			eng.Write(p, &r.Procs[0], 0, arr.At(lo+i*4)) // one block each (4 x 8B)
		}
	})
	if run.Procs[0].Writebacks == 0 {
		t.Error("no writebacks despite capacity eviction of owned blocks")
	}
	found := false
	for _, c := range tr.log {
		if c == Writeback {
			found = true
		}
	}
	if !found {
		t.Errorf("no writeback message in %v", tr.log)
	}
	if err := eng.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestReadAfterRemoteWriteMissesAgain(t *testing.T) {
	// The paper's CLogP example: both caches valid -> write by one
	// invalidates the other silently (free transport), and the
	// subsequent read by the other node IS a network access on both.
	tr := &freeCoherence{delay: 100}
	eng, _, arr := testEngine(4, tr)
	lo, _ := arr.OwnerRange(0)
	addr := arr.At(lo) // home 0
	run := drive(t, 4, func(p *sim.Proc, r *stats.Run) {
		eng.Read(p, &r.Procs[1], 1, addr)
		eng.Read(p, &r.Procs[2], 2, addr)
		tr.log = nil
		eng.Write(p, &r.Procs[1], 1, addr) // upgrade: free on CLogP
		if len(tr.log) != 0 {
			t.Errorf("upgrade cost messages on free-coherence transport: %v", tr.log)
		}
		eng.Read(p, &r.Procs[2], 2, addr) // must miss and fetch from owner 1
	})
	if run.Procs[1].NetAccesses == 0 {
		t.Error("initial remote read not counted")
	}
	// The re-read after invalidation crossed the network.
	if fmt.Sprint(tr.log) != "[read-req forward data-reply]" {
		t.Errorf("post-invalidation read classes = %v", tr.log)
	}
}

func TestUpgradeFreeOnFreeCoherenceTransport(t *testing.T) {
	tr := &freeCoherence{delay: 100}
	eng, _, arr := testEngine(4, tr)
	lo, _ := arr.OwnerRange(2)
	addr := arr.At(lo)
	run := drive(t, 4, func(p *sim.Proc, r *stats.Run) {
		eng.Read(p, &r.Procs[0], 0, addr)
		m0 := r.Procs[0].Messages
		eng.Write(p, &r.Procs[0], 0, addr) // upgrade, remote home
		if r.Procs[0].Messages != m0 {
			t.Error("upgrade sent messages on CLogP-style transport")
		}
		if r.Procs[0].NetAccesses != 1 {
			t.Errorf("net accesses = %d, want 1 (the read only)", r.Procs[0].NetAccesses)
		}
	})
	_ = run
}

func TestMessageClassProperties(t *testing.T) {
	for c := ReadReq; c <= Writeback; c++ {
		if c.String() == "" {
			t.Errorf("class %d has empty name", c)
		}
	}
	if Class(99).String() == "" {
		t.Error("unknown class empty name")
	}
	wantData := map[Class]bool{ReadReq: true, WriteReq: true, Forward: true, DataReply: true}
	for c := ReadReq; c <= Writeback; c++ {
		if c.MovesData() != wantData[c] {
			t.Errorf("%v.MovesData() = %v", c, c.MovesData())
		}
	}
}

func TestEngineValidation(t *testing.T) {
	space := mem.NewSpace(4, 32)
	mustPanic(t, func() {
		NewEngine(space, cache.Config{SizeBytes: 128, BlockBytes: 64, Assoc: 2},
			DefaultCosts(), &flatTransport{})
	})
	big := mem.NewSpace(MaxP+1, 32)
	mustPanic(t, func() {
		NewEngine(big, smallCache(), DefaultCosts(), &flatTransport{})
	})
}

// TestIdenticalCacheBehaviorAcrossTransports verifies the paper's core
// premise: the target machine and the LogP+cache machine have the SAME
// hit/miss and invalidation behaviour, because they share one protocol
// state machine — only message pricing differs.
func TestIdenticalCacheBehaviorAcrossTransports(t *testing.T) {
	f := func(seed int64) bool {
		const p = 4
		runOne := func(tr Transport) []uint64 {
			eng, _, arr := testEngine(p, tr)
			e := sim.NewEngine()
			run := stats.NewRun(p)
			rng := rand.New(rand.NewSource(seed))
			type op struct {
				node  int
				idx   int
				write bool
			}
			ops := make([]op, 300)
			for i := range ops {
				ops[i] = op{node: rng.Intn(p), idx: rng.Intn(arr.N), write: rng.Intn(3) == 0}
			}
			e.Spawn("driver", func(pr *sim.Proc) {
				for _, o := range ops {
					if o.write {
						eng.Write(pr, &run.Procs[o.node], o.node, arr.At(o.idx))
					} else {
						eng.Read(pr, &run.Procs[o.node], o.node, arr.At(o.idx))
					}
				}
			})
			if err := e.Run(); err != nil {
				t.Fatal(err)
			}
			if err := eng.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			var sig []uint64
			for n := 0; n < p; n++ {
				sig = append(sig, run.Procs[n].Hits, run.Procs[n].Misses, run.Procs[n].Invals)
			}
			return sig
		}
		a := runOne(&flatTransport{delay: 100})
		b := runOne(&freeCoherence{delay: 100})
		return fmt.Sprint(a) == fmt.Sprint(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestConcurrentTransactionsKeepInvariants stresses the engine with
// multiple simulated processors racing on a small shared array.
func TestConcurrentTransactionsKeepInvariants(t *testing.T) {
	f := func(seed int64) bool {
		const p = 8
		tr := &flatTransport{delay: 50}
		space := mem.NewSpace(p, 32)
		arr := space.Alloc("x", 64, 8, mem.Interleaved)
		eng := NewEngine(space, smallCache(), DefaultCosts(), tr)
		e := sim.NewEngine()
		run := stats.NewRun(p)
		for n := 0; n < p; n++ {
			n := n
			rng := rand.New(rand.NewSource(seed + int64(n)))
			e.Spawn(fmt.Sprintf("p%d", n), func(pr *sim.Proc) {
				for i := 0; i < 100; i++ {
					idx := rng.Intn(arr.N)
					if rng.Intn(2) == 0 {
						eng.Write(pr, &run.Procs[n], n, arr.At(idx))
					} else {
						eng.Read(pr, &run.Procs[n], n, arr.At(idx))
					}
					pr.Hold(sim.Time(rng.Intn(100)))
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return eng.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}
