// Quickstart: simulate one application on the detailed target machine
// and print the SPASM-style separation of overheads.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"spasm"
)

func main() {
	res, err := spasm.Run("fft", spasm.Small, 1, spasm.Config{
		Kind:     spasm.Target,
		Topology: "mesh",
		P:        16,
	})
	if err != nil {
		log.Fatal(err)
	}

	r := res.Stats
	fmt.Printf("FFT on the target CC-NUMA machine (16 processors, 2-D mesh)\n\n")
	fmt.Printf("execution time      %10.1f us\n", r.Total.Micros())
	fmt.Printf("compute (sum)       %10.1f us\n", r.Sum(spasm.Compute).Micros())
	fmt.Printf("memory (sum)        %10.1f us\n", r.Sum(spasm.Memory).Micros())
	fmt.Printf("latency (sum)       %10.1f us   <- contention-free message time\n", r.Sum(spasm.Latency).Micros())
	fmt.Printf("contention (sum)    %10.1f us   <- waiting for links\n", r.Sum(spasm.Contention).Micros())
	fmt.Printf("synchronization     %10.1f us\n", r.Sum(spasm.Sync).Micros())
	fmt.Printf("network messages    %10d\n", r.Messages())
	fmt.Printf("simulation cost     %10d events in %v\n", r.SimEvents, r.Wall)

	// The same program runs unmodified on the abstract machines.
	for _, kind := range []spasm.Kind{spasm.CLogP, spasm.LogP} {
		res, err := spasm.Run("fft", spasm.Small, 1, spasm.Config{
			Kind: kind, Topology: "mesh", P: 16,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\non %-10v         exec %10.1f us, latency %10.1f us, contention %10.1f us",
			kind, res.Stats.Total.Micros(),
			res.Stats.Sum(spasm.Latency).Micros(),
			res.Stats.Sum(spasm.Contention).Micros())
	}
	fmt.Println()
}
