// Command spasmd serves the simulator as a long-lived HTTP service: a
// job queue and worker pool execute runs through the spasm façade, and a
// content-addressed result cache makes repeated identical requests
// near-free (runs are deterministic functions of their spec).
//
// Usage:
//
//	spasmd                       # listen on :8347, GOMAXPROCS workers
//	spasmd -addr :9000 -workers 8 -cache 1024
//
// Quick start:
//
//	curl -s localhost:8347/healthz
//	curl -s -X POST localhost:8347/v1/runs \
//	    -d '{"app":"fft","scale":"tiny","machine":"target","topology":"mesh","p":16}'
//	curl -s localhost:8347/v1/runs/<id>     # poll: pending -> running -> done
//	curl -s 'localhost:8347/v1/figures/7?scale=tiny&procs=2,4,8'
//	curl -s localhost:8347/metrics
//
// SIGINT/SIGTERM begin a graceful shutdown: the listener stops, and
// every accepted simulation drains before the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"spasm/internal/service"
)

func main() {
	var (
		addr       = flag.String("addr", ":8347", "listen address")
		workers    = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		cacheSize  = flag.Int("cache", 512, "result-cache capacity, in runs")
		queue      = flag.Int("queue", 1024, "pending-job queue depth")
		drain      = flag.Duration("drain", 10*time.Minute, "graceful-shutdown drain timeout")
		runTimeout = flag.Duration("run-timeout", 0, "per-job wall-clock simulation deadline (0 = unbounded)")
		negCache   = flag.Int("neg-cache", 64, "failed-result cache capacity, in runs")
		negTTL     = flag.Duration("neg-ttl", 30*time.Second, "failed-result cache entry lifetime")
	)
	flag.Parse()

	svc := service.New(service.Config{
		Workers: *workers, CacheSize: *cacheSize, QueueDepth: *queue,
		RunTimeout: *runTimeout, NegativeCacheSize: *negCache, NegativeTTL: *negTTL,
	})
	hs := &http.Server{Addr: *addr, Handler: svc.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		w := *workers
		if w == 0 {
			w = runtime.GOMAXPROCS(0)
		}
		log.Printf("spasmd: listening on %s (%d workers, cache %d runs)", *addr, w, *cacheSize)
		errCh <- hs.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		log.Fatalf("spasmd: %v", err)
	case <-ctx.Done():
	}

	log.Printf("spasmd: shutting down, draining in-flight simulations...")
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("spasmd: http shutdown: %v", err)
	}
	if err := svc.Shutdown(dctx); err != nil {
		log.Fatalf("spasmd: drain: %v", err)
	}
	log.Printf("spasmd: drained, bye")
}
