package network

import "testing"

// FuzzRoutes checks, for arbitrary (topology, p, src, dst) choices, that
// routing never panics on valid inputs and always produces a connected
// route of the advertised length.
func FuzzRoutes(f *testing.F) {
	f.Add(uint8(0), uint8(3), uint8(1), uint8(7))
	f.Add(uint8(4), uint8(6), uint8(63), uint8(0))
	f.Fuzz(func(t *testing.T, topoSel, logP, srcRaw, dstRaw uint8) {
		names := Names()
		name := names[int(topoSel)%len(names)]
		p := 1 << (1 + int(logP)%6) // 2..64
		topo, err := New(name, p)
		if err != nil {
			t.Fatal(err)
		}
		src := int(srcRaw) % p
		dst := int(dstRaw) % p
		if src == dst {
			return
		}
		route := topo.Route(src, dst)
		if len(route) != topo.Hops(src, dst) {
			t.Fatalf("%s(%d): route %d->%d length %d != hops %d",
				name, p, src, dst, len(route), topo.Hops(src, dst))
		}
		cur := src
		for _, l := range route {
			from, to := topo.LinkEnds(l)
			if from != cur {
				t.Fatalf("%s(%d): disconnected route at link %d", name, p, l)
			}
			cur = to
		}
		if cur != dst {
			t.Fatalf("%s(%d): route ends at %d, want %d", name, p, cur, dst)
		}
	})
}
