package apps

import (
	"testing"

	"spasm/internal/app"
	"spasm/internal/machine"
	"spasm/internal/stats"
)

func runEP(t *testing.T, kind machine.Kind, p int, pairs int) (*EP, *stats.Run) {
	t.Helper()
	ep := &EP{Pairs: pairs, PairCycles: 120, Seed: 1}
	res, err := app.Run(ep, machine.Config{Kind: kind, Topology: "full", P: p})
	if err != nil {
		t.Fatal(err)
	}
	return ep, res.Stats
}

func TestEPTallyMatchesOracleOnEveryMachine(t *testing.T) {
	// Check() already compares against the oracle; this asserts the
	// run completes on every machine, i.e. the merge and signalling
	// chain work under all timing models.
	for _, kind := range machine.Kinds() {
		runEP(t, kind, 4, 512)
	}
}

func TestEPBinsSumToAcceptedPairs(t *testing.T) {
	ep, _ := runEP(t, machine.Ideal, 4, 2048)
	var total int64
	for _, b := range ep.bins {
		total += b
	}
	// Polar method acceptance rate is pi/4 ~ 78.5%.
	if total < 1200 || total > 1900 {
		t.Errorf("accepted %d of 2048 pairs (expected ~78%%)", total)
	}
}

func TestEPComputeDominates(t *testing.T) {
	// The defining property of EP: compute overwhelms communication.
	_, run := runEP(t, machine.Target, 4, 1<<13)
	compute := run.Sum(stats.Compute)
	network := run.Sum(stats.Latency) + run.Sum(stats.Contention)
	if compute < 10*network {
		t.Errorf("compute %v not >= 10x network %v", compute, network)
	}
}

func TestEPSignallingChainIsNeighbourly(t *testing.T) {
	// Flag i is homed at node i, so the wait-then-signal chain
	// communicates only between ID-adjacent processors — the
	// communication locality that makes the paper's Figure 11 g
	// estimate so pessimistic.  Verify the flags' homes.
	ep := NewEP(Tiny, 1).(*EP)
	res, err := app.Run(ep, machine.Config{Kind: machine.Ideal, Topology: "full", P: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range ep.flags {
		if home := res.Space.Home(f.Addr()); home != i {
			t.Errorf("flag %d homed at %d", i, home)
		}
	}
}

func TestEPScalesWork(t *testing.T) {
	_, small := runEP(t, machine.Ideal, 4, 512)
	_, large := runEP(t, machine.Ideal, 4, 4096)
	if large.Total <= small.Total {
		t.Errorf("more pairs did not take longer: %v vs %v", large.Total, small.Total)
	}
}

func TestEPWorkBalanced(t *testing.T) {
	_, run := runEP(t, machine.Ideal, 8, 1<<12)
	minC, maxC := run.Procs[0].Time[stats.Compute], run.Procs[0].Time[stats.Compute]
	for i := range run.Procs {
		c := run.Procs[i].Time[stats.Compute]
		if c < minC {
			minC = c
		}
		if c > maxC {
			maxC = c
		}
	}
	if maxC > minC*11/10 {
		t.Errorf("compute imbalance: %v vs %v", minC, maxC)
	}
}
