package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"spasm/internal/service"
)

// fastRetry keeps test backoffs in the microsecond range.
var fastRetry = RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}

func doneStatus(id string) service.RunStatus {
	return service.RunStatus{ID: id, State: service.StateDone, Result: json.RawMessage(`{}`)}
}

// TestRetriesTransient503: a submission that bounces off back-pressure
// twice succeeds on the third attempt, transparently.
func TestRetriesTransient503(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1") // capped by MaxDelay, so the test stays fast
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"service: job queue full"}`))
			return
		}
		json.NewEncoder(w).Encode(doneStatus("abc"))
	}))
	defer srv.Close()

	c := New(srv.URL)
	c.Retry = fastRetry
	st, err := c.SubmitRun(context.Background(), service.RunRequest{App: "ep", P: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != service.StateDone || calls.Load() != 3 {
		t.Fatalf("state=%s calls=%d, want done after 3 attempts", st.State, calls.Load())
	}
}

// TestGivesUpAfterMaxAttempts: a persistent 503 surfaces as the last
// apiError once the attempt budget is exhausted.
func TestGivesUpAfterMaxAttempts(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":"draining"}`))
	}))
	defer srv.Close()

	c := New(srv.URL)
	c.Retry = fastRetry
	_, err := c.SubmitRun(context.Background(), service.RunRequest{App: "ep", P: 2})
	var ae *apiError
	if !errors.As(err, &ae) || ae.Status != http.StatusServiceUnavailable {
		t.Fatalf("want 503 apiError, got %v", err)
	}
	if calls.Load() != int64(fastRetry.MaxAttempts) {
		t.Fatalf("calls = %d, want %d", calls.Load(), fastRetry.MaxAttempts)
	}
}

// TestHardErrorsAreNotRetried: 4xx responses are final — retrying a bad
// request would just repeat it.
func TestHardErrorsAreNotRetried(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":"bad spec"}`))
	}))
	defer srv.Close()

	c := New(srv.URL)
	c.Retry = fastRetry
	_, err := c.SubmitRun(context.Background(), service.RunRequest{App: "nope", P: 2})
	var ae *apiError
	if !errors.As(err, &ae) || ae.Status != http.StatusBadRequest {
		t.Fatalf("want 400 apiError, got %v", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("calls = %d, want 1 (no retries on 4xx)", calls.Load())
	}
}

// TestRetrySleepsAreContextBounded: a canceled context cuts the backoff
// short instead of sleeping it out.
func TestRetrySleepsAreContextBounded(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	c := New(srv.URL)
	c.Retry = RetryPolicy{MaxAttempts: 3, BaseDelay: time.Hour, MaxDelay: time.Hour}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	_, err := c.SubmitRun(ctx, service.RunRequest{App: "ep", P: 2})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if since := time.Since(t0); since > 5*time.Second {
		t.Fatalf("backoff ignored ctx: slept %v", since)
	}
}

// TestRunToleratesPollBlips: Run keeps polling through a transient
// server hiccup — a run in flight is not abandoned because one status
// poll failed.
func TestRunToleratesPollBlips(t *testing.T) {
	var gets atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			json.NewEncoder(w).Encode(service.RunStatus{ID: "abc", State: service.StatePending})
			return
		}
		// Polls: every doOnce call fails until attempt 6 — deep enough
		// that one GetRun's whole retry budget (4 attempts) is exhausted
		// and Run's poll-failure tolerance has to absorb it.
		if gets.Add(1) <= 6 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		json.NewEncoder(w).Encode(doneStatus("abc"))
	}))
	defer srv.Close()

	c := New(srv.URL)
	c.Retry = fastRetry
	c.PollInterval = time.Millisecond
	st, err := c.Run(context.Background(), service.RunRequest{App: "ep", P: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != service.StateDone {
		t.Fatalf("state = %s, want done", st.State)
	}
}

// TestRunGivesUpAfterConsecutivePollFailures: an outage outlasting the
// tolerance budget surfaces the poll error instead of spinning forever.
func TestRunGivesUpAfterConsecutivePollFailures(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			json.NewEncoder(w).Encode(service.RunStatus{ID: "abc", State: service.StatePending})
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	c := New(srv.URL)
	c.Retry = RetryPolicy{MaxAttempts: 1, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond}
	c.PollInterval = time.Millisecond
	c.MaxPollFailures = 2
	_, err := c.Run(context.Background(), service.RunRequest{App: "ep", P: 2})
	var ae *apiError
	if !errors.As(err, &ae) || ae.Status != http.StatusServiceUnavailable {
		t.Fatalf("want the final 503 wrapped, got %v", err)
	}
}

// TestRunStopsOnCanceledState: a canceled job is terminal for Run.
func TestRunStopsOnCanceledState(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			json.NewEncoder(w).Encode(service.RunStatus{ID: "abc", State: service.StatePending})
			return
		}
		json.NewEncoder(w).Encode(service.RunStatus{ID: "abc", State: service.StateCanceled, Error: "canceled"})
	}))
	defer srv.Close()

	c := New(srv.URL)
	c.Retry = fastRetry
	c.PollInterval = time.Millisecond
	st, err := c.Run(context.Background(), service.RunRequest{App: "ep", P: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != service.StateCanceled {
		t.Fatalf("state = %s, want canceled", st.State)
	}
}

// TestParseRetryAfter: both RFC 9110 forms are honored, and anything
// malformed, negative, or already in the past degrades to "no hint" so
// the policy's own backoff applies — a bad header can neither stall the
// client nor stampede the server.
func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2025, 6, 1, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		header string
		want   time.Duration
	}{
		{"", 0},
		{"3", 3 * time.Second},
		{"0", 0},
		{"-5", 0},
		{"soon", 0},
		{"2.5", 0},
		{now.Add(90 * time.Second).Format(http.TimeFormat), 90 * time.Second},
		{now.Add(-time.Hour).Format(http.TimeFormat), 0},
		{"Sun, 32 Jun 2025 12:00:00 GMT", 0}, // unparseable date
	}
	for _, c := range cases {
		if got := parseRetryAfter(c.header, now); got != c.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", c.header, got, c.want)
		}
	}
}

// TestRetryHonorsHTTPDateHint: a Retry-After given as an HTTP-date
// (the form the seconds-only parser used to drop) reaches the backoff
// as a hint.
func TestRetryHonorsHTTPDateHint(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", time.Now().Add(time.Hour).UTC().Format(http.TimeFormat))
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"busy"}`))
			return
		}
		json.NewEncoder(w).Encode(doneStatus("abc"))
	}))
	defer srv.Close()

	c := New(srv.URL)
	c.Retry = fastRetry // MaxDelay 5ms clamps the hour-long hint, keeping the test fast
	t0 := time.Now()
	st, err := c.SubmitRun(context.Background(), service.RunRequest{App: "ep", P: 2})
	if err != nil || st.State != service.StateDone {
		t.Fatalf("st=%v err=%v", st, err)
	}
	// The hint was parsed (not treated as garbage) and clamped by
	// MaxDelay rather than slept in full.
	if since := time.Since(t0); since > 10*time.Second {
		t.Fatalf("hour-long hint escaped the MaxDelay clamp: %v", since)
	}
	if calls.Load() != 2 {
		t.Fatalf("calls = %d, want 2", calls.Load())
	}
}

// TestQuotaRejectionIsRetried: 429 (per-tenant quota) clears as the
// tenant's own work drains, so the client retries it like 503.
func TestQuotaRejectionIsRetried(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("X-Spasm-Tenant") != "alice" {
			t.Errorf("tenant header = %q, want alice", r.Header.Get("X-Spasm-Tenant"))
		}
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"service: tenant over admission quota"}`))
			return
		}
		json.NewEncoder(w).Encode(doneStatus("abc"))
	}))
	defer srv.Close()

	c := New(srv.URL)
	c.Retry = fastRetry
	c.Tenant = "alice"
	st, err := c.SubmitRun(context.Background(), service.RunRequest{App: "ep", P: 2})
	if err != nil || st.State != service.StateDone {
		t.Fatalf("st=%v err=%v", st, err)
	}
	if calls.Load() != 2 {
		t.Fatalf("calls = %d, want 2 (429 retried once)", calls.Load())
	}
}
