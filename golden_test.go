package spasm

// Golden-shape tests: the paper's qualitative findings, asserted against
// the simulator at test scale.  These are the end-to-end checks that the
// reproduction actually reproduces — each test names the paper claim it
// guards.

import (
	"math"
	"testing"
)

func goldenSession(t *testing.T) *Session {
	t.Helper()
	return NewSession(Options{Scale: Tiny, Procs: []int{4, 8, 16}})
}

func seriesValue(fr *FigureResult, kind Kind, idx int) float64 {
	for _, s := range fr.Series {
		if s.Machine == kind {
			return s.Points[idx].Value
		}
	}
	return math.NaN()
}

// Claim (section 6.1): "the latency overhead curves for the LogP-based
// machines display a trend very similar to the target machine" — CLogP's
// latency overhead stays within a small constant factor of the target's
// for every application.
func TestGoldenCLogPLatencyTracksTarget(t *testing.T) {
	s := goldenSession(t)
	for _, fig := range Figures() {
		if fig.Metric != LatencyOvh {
			continue
		}
		fr, err := s.Figure(fig)
		if err != nil {
			t.Fatal(err)
		}
		for i := range fr.Series[0].Points {
			cl := seriesValue(fr, CLogP, i)
			tgt := seriesValue(fr, Target, i)
			if tgt == 0 {
				continue
			}
			if r := cl / tgt; r < 0.5 || r > 4 {
				t.Errorf("%s p=%d: CLogP/Target latency = %.2f, outside [0.5, 4]",
					fig.ID(), fr.Series[0].Points[i].P, r)
			}
		}
	}
}

// Claim (section 6.2, Figure 1): ignoring locality multiplies FFT's
// latency overhead by about the items-per-block factor.  This needs the
// paper-scale workload: at Tiny scale synchronization traffic (identical
// on both machines) dilutes the data-reference factor.
func TestGoldenFFTLocalityFactor(t *testing.T) {
	s := NewSession(Options{Scale: Small, Procs: []int{4, 8, 16}})
	fig, _ := FigureByNumber(1)
	fr, err := s.Figure(fig)
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range fr.Series[0].Points {
		lp := seriesValue(fr, LogP, i)
		cl := seriesValue(fr, CLogP, i)
		if lp < 2*cl {
			t.Errorf("p=%d: LogP latency %.0f not >= 2x CLogP %.0f", pt.P, lp, cl)
		}
	}
}

// Claim (section 6.1): the g-gap contention estimate is pessimistic, and
// the pessimism grows as connectivity drops — the LogP-machine-to-target
// contention ratio on the mesh exceeds the ratio on the full network.
func TestGoldenGapPessimismGrowsWithLowerConnectivity(t *testing.T) {
	s := goldenSession(t)
	ratioAt := func(num int) float64 {
		fig, _ := FigureByNumber(num)
		fr, err := s.Figure(fig)
		if err != nil {
			t.Fatal(err)
		}
		last := len(fr.Series[0].Points) - 1
		return seriesValue(fr, CLogP, last) / seriesValue(fr, Target, last)
	}
	full := ratioAt(6) // IS on full: contention
	mesh := ratioAt(7) // IS on mesh: contention
	if mesh <= full {
		t.Errorf("gap pessimism on mesh (%.2fx) not above full (%.2fx)", mesh, full)
	}
	if mesh < 1 {
		t.Errorf("gap model not pessimistic on mesh: %.2fx", mesh)
	}
}

// Claim (Figures 10, 11): EP's communication locality makes the g
// estimate wildly pessimistic on the mesh — far worse than on the full
// network.
func TestGoldenEPMeshContentionPessimism(t *testing.T) {
	s := goldenSession(t)
	fig, _ := FigureByNumber(11)
	fr, err := s.Figure(fig)
	if err != nil {
		t.Fatal(err)
	}
	last := len(fr.Series[0].Points) - 1
	lp := seriesValue(fr, LogP, last)
	tgt := seriesValue(fr, Target, last)
	if lp < 3*tgt {
		t.Errorf("EP mesh: LogP contention %.0f not >= 3x target %.0f", lp, tgt)
	}
}

// Claim (Figure 12): EP's execution time agrees across all three
// machines (computation dominates).  Needs the paper-scale workload —
// the claim is about EP's high computation-to-communication ratio, which
// the Tiny problem size does not have.
func TestGoldenEPExecAgreement(t *testing.T) {
	s := NewSession(Options{Scale: Small, Procs: []int{4, 8}})
	fig, _ := FigureByNumber(12)
	fr, err := s.Figure(fig)
	if err != nil {
		t.Fatal(err)
	}
	// Check at modest p where communication is negligible.
	for i, pt := range fr.Series[0].Points {
		if pt.P > 8 {
			continue
		}
		lp := seriesValue(fr, LogP, i)
		cl := seriesValue(fr, CLogP, i)
		tgt := seriesValue(fr, Target, i)
		for _, v := range []float64{lp, cl} {
			if r := v / tgt; r < 0.7 || r > 1.5 {
				t.Errorf("EP p=%d: machine exec %.0f vs target %.0f (ratio %.2f)",
					pt.P, v, tgt, r)
			}
		}
	}
}

// Claim (Figures 15-18): for the dynamic applications, the plain LogP
// machine diverges sharply from the target at small p (every reference
// remote), while CLogP stays close.
func TestGoldenDynamicAppsLogPDivergence(t *testing.T) {
	s := goldenSession(t)
	for _, num := range []int{15, 16} {
		fig, _ := FigureByNumber(num)
		fr, err := s.Figure(fig)
		if err != nil {
			t.Fatal(err)
		}
		lp := seriesValue(fr, LogP, 0) // p=4
		cl := seriesValue(fr, CLogP, 0)
		tgt := seriesValue(fr, Target, 0)
		if lp < 1.5*tgt {
			t.Errorf("%s p=4: LogP exec %.0f not >= 1.5x target %.0f", fig.ID(), lp, tgt)
		}
		if cl > lp {
			t.Errorf("%s p=4: CLogP exec %.0f above LogP %.0f", fig.ID(), cl, lp)
		}
	}
}

// Claim (section 7, speed of simulation): the LogP machine is the most
// expensive to simulate (most network events); the cached abstractions
// are cheaper.
func TestGoldenSimulationCostOrdering(t *testing.T) {
	s := NewSession(Options{Scale: Tiny, Procs: []int{8}})
	rows, err := s.SimulationCost("full", 8)
	if err != nil {
		t.Fatal(err)
	}
	var logp, clogp uint64
	for _, r := range rows {
		switch r.Machine {
		case LogP:
			logp = r.Events
		case CLogP:
			clogp = r.Events
		}
	}
	if logp <= clogp {
		t.Errorf("LogP events %d not above CLogP %d", logp, clogp)
	}
}

// Claim (section 7 ablation): enforcing g only between identical
// communication events brings contention much closer to the target.
func TestGoldenAblationReducesPessimism(t *testing.T) {
	rows, err := GapAblation(Tiny, 1, []int{8, 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.PerClassGap >= r.CombinedGap {
			t.Errorf("p=%d: per-class %.0f not below combined %.0f", r.P, r.PerClassGap, r.CombinedGap)
		}
		// Closer to target: |perclass - target| < |combined - target|.
		if math.Abs(r.PerClassGap-r.Target) >= math.Abs(r.CombinedGap-r.Target) {
			t.Errorf("p=%d: per-class not closer to target (t=%.0f c=%.0f pc=%.0f)",
				r.P, r.Target, r.CombinedGap, r.PerClassGap)
		}
	}
}

// Claim (section 3.2): CLogP models the MINIMUM messages any
// invalidation protocol could achieve, so a protocol that produces
// fewer messages sits closer to it.  Berkeley's cache-to-cache supply
// produces less traffic than MSI's writeback-and-refetch on migratory
// data, so Berkeley's message count must sit at least as close to
// CLogP's as MSI's does.
func TestGoldenFancierProtocolAgreesCloser(t *testing.T) {
	msgs := func(proto Protocol) float64 {
		res, err := Run("cholesky", Tiny, 1, Config{
			Kind: Target, Topology: "full", P: 8, Protocol: proto,
		})
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.Stats.Messages())
	}
	clogp, err := Run("cholesky", Tiny, 1, Config{Kind: CLogP, Topology: "full", P: 8})
	if err != nil {
		t.Fatal(err)
	}
	base := float64(clogp.Stats.Messages())
	bk, msi := msgs(BerkeleyProtocol), msgs(MSIProtocol)
	if bk < base {
		t.Errorf("Berkeley messages %v below the CLogP minimum %v", bk, base)
	}
	if (bk - base) > (msi - base) {
		t.Errorf("Berkeley (%v) not closer to CLogP (%v) than MSI (%v)", bk, base, msi)
	}
}

// Claim (section 6.2): the number of network accesses on the CLogP
// machine — the locality abstraction — closely matches the target
// machine's data traffic, because the protocol state machines are
// identical; the difference is only the coherence-maintenance messages.
func TestGoldenLocalityAbstractionMessageAgreement(t *testing.T) {
	s := goldenSession(t)
	for _, name := range Apps() {
		tgt, err := s.Run(name, "full", Target, 8)
		if err != nil {
			t.Fatal(err)
		}
		cl, err := s.Run(name, "full", CLogP, 8)
		if err != nil {
			t.Fatal(err)
		}
		// CLogP carries a subset of the target's messages (coherence
		// actions are free), but must carry most of the data traffic.
		if cl.Messages() > tgt.Messages() {
			t.Errorf("%s: CLogP messages %d above target %d", name, cl.Messages(), tgt.Messages())
		}
		if cl.NetAccesses() == 0 && tgt.NetAccesses() > 0 {
			t.Errorf("%s: CLogP lost all network accesses", name)
		}
	}
}
