package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"spasm"
)

func fqJob(tenant string, n int, size int64) *Job {
	return &Job{id: fmt.Sprintf("%s-%d", tenant, n), tenant: tenant, bytes: size}
}

// TestFairQueueStride: with both tenants backlogged, dispatches follow
// the configured weights exactly (2:1 here), regardless of submission
// counts.
func TestFairQueueStride(t *testing.T) {
	fq := newFairQueue(Config{QueueDepth: 100, MaxTenants: 8,
		TenantWeights: map[string]int{"heavy": 2, "light": 1}})
	for i := 0; i < 30; i++ {
		if err := fq.push(fqJob("heavy", i, 0)); err != nil {
			t.Fatal(err)
		}
		if err := fq.push(fqJob("light", i, 0)); err != nil {
			t.Fatal(err)
		}
	}
	got := map[string]int{}
	for i := 0; i < 30; i++ {
		j := fq.pop()
		if j == nil {
			t.Fatalf("pop %d: empty queue with %d jobs left", i, fq.size)
		}
		got[j.tenant]++
	}
	if got["heavy"] != 20 || got["light"] != 10 {
		t.Fatalf("30 dispatches split %v, want heavy=20 light=10", got)
	}
}

// TestFairQueueRejoinNoCatchUp: a tenant that sat idle while another
// tenant consumed the queue does not get retroactive credit — after
// rejoining it shares per its weight, it does not monopolize.
func TestFairQueueRejoinNoCatchUp(t *testing.T) {
	fq := newFairQueue(Config{QueueDepth: 100, MaxTenants: 8})
	for i := 0; i < 20; i++ {
		fq.push(fqJob("busy", i, 0))
	}
	for i := 0; i < 10; i++ {
		fq.pop()
	}
	// "late" joins now; with equal weights the next dispatches alternate
	// instead of draining late's backlog first.
	for i := 0; i < 4; i++ {
		fq.push(fqJob("late", i, 0))
	}
	got := map[string]int{}
	for i := 0; i < 8; i++ {
		got[fq.pop().tenant]++
	}
	if got["late"] != 4 || got["busy"] != 4 {
		t.Fatalf("8 dispatches after rejoin split %v, want 4/4", got)
	}
}

func TestFairQueueQuotas(t *testing.T) {
	fq := newFairQueue(Config{QueueDepth: 100, MaxTenants: 8,
		TenantQuotaRuns: 2, TenantQuotaBytes: 100})
	if err := fq.push(fqJob("a", 0, 60)); err != nil {
		t.Fatal(err)
	}
	if err := fq.push(fqJob("a", 1, 60)); !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("byte-quota push: %v, want ErrTenantQuota", err)
	}
	if err := fq.push(fqJob("a", 2, 30)); err != nil {
		t.Fatal(err)
	}
	// Run quota (2) is now the binding constraint, even for a tiny job.
	if err := fq.push(fqJob("a", 3, 1)); !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("run-quota push: %v, want ErrTenantQuota", err)
	}
	// Other tenants are unaffected by a's saturation.
	if err := fq.push(fqJob("b", 0, 60)); err != nil {
		t.Fatalf("tenant b: %v", err)
	}
	// Dispatch frees bytes immediately, runs only at completion.
	j := fq.pop()
	if err := fq.push(fqJob(j.tenant, 4, 90)); !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("post-dispatch push: %v, want ErrTenantQuota (outstanding)", err)
	}
	fq.jobDone(j)
	// 30 bytes are still queued (job a-2), so 60 more fits the 100-byte
	// quota now that a run slot freed up.
	if err := fq.push(fqJob(j.tenant, 5, 60)); err != nil {
		t.Fatalf("post-completion push: %v", err)
	}
}

// TestFairQueueOverflowBucket: past MaxTenants distinct names, new
// tenants share one bucket — the tenant map cannot grow without bound.
func TestFairQueueOverflowBucket(t *testing.T) {
	fq := newFairQueue(Config{QueueDepth: 100, MaxTenants: 2})
	fq.push(fqJob("a", 0, 0))
	fq.push(fqJob("b", 0, 0))
	j := fqJob("mallory-1", 0, 0)
	if err := fq.push(j); err != nil {
		t.Fatal(err)
	}
	if j.tenant != overflowTenant {
		t.Fatalf("third tenant bucketed as %q, want %q", j.tenant, overflowTenant)
	}
	fq.push(fqJob("mallory-2", 0, 0))
	if len(fq.tenants) != 3 { // a, b, overflow
		t.Fatalf("tenant map has %d buckets, want 3", len(fq.tenants))
	}
	// remove (the cancellation path) finds the job through the rewritten
	// tenant name.
	before := fq.size
	fq.remove(j)
	if fq.size != before-1 {
		t.Fatalf("remove left size %d, want %d", fq.size, before-1)
	}
}

// TestProfileFlightSurvivesEviction pins the singleflight regression:
// a Profile request joining an in-flight computation must get the
// flight's result even when the LRU evicted the run's cache entry
// mid-derivation (previously it re-checked the cache after the flight
// closed and reported ErrUnknownRun despite a successful derivation).
func TestProfileFlightSurvivesEviction(t *testing.T) {
	svc := New(Config{Workers: 1, CacheSize: 1})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	defer svc.Shutdown(ctx)

	spec := spasm.Spec{App: "fft", Scale: spasm.Tiny, Machine: spasm.Target, Topology: "mesh", P: 4}
	j, _, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	id := j.ID()

	// Simulate a leader mid-derivation, then evict the entry under it.
	fl := &profFlight{done: make(chan struct{})}
	svc.mu.Lock()
	svc.profFlight[id] = fl
	svc.mu.Unlock()
	evict, _, err := svc.Submit(spasm.Spec{App: "fft", Scale: spasm.Tiny, Machine: spasm.Target, Topology: "mesh", P: 2})
	if err != nil {
		t.Fatal(err)
	}
	<-evict.Done()
	svc.mu.Lock()
	if _, stillCached := svc.cache.get(id, false); stillCached {
		svc.mu.Unlock()
		t.Fatal("entry not evicted; test setup needs a smaller cache")
	}
	svc.mu.Unlock()

	got := make(chan error, 1)
	var gotRaw []byte
	go func() {
		_, raw, err := svc.Profile(id)
		gotRaw = raw
		got <- err
	}()

	// Wait until the request has actually joined the flight (the
	// coalesced counter ticks just before it blocks), then resolve the
	// flight the way a leader does and check the waiter received it.
	for deadline := time.Now().Add(5 * time.Second); ; {
		svc.metrics.mu.Lock()
		joined := svc.metrics.profCoalesced > 0
		svc.metrics.mu.Unlock()
		if joined {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("Profile request never joined the in-flight computation")
		}
		time.Sleep(time.Millisecond)
	}
	want := []byte("profile-bytes")
	fl.raw = want
	svc.mu.Lock()
	delete(svc.profFlight, id)
	svc.mu.Unlock()
	close(fl.done)
	if err := <-got; err != nil {
		t.Fatalf("waiter after eviction: %v, want flight result", err)
	}
	if !bytes.Equal(gotRaw, want) {
		t.Fatalf("waiter got %q, want the flight's bytes", gotRaw)
	}
	svc.metrics.mu.Lock()
	coalesced := svc.metrics.profCoalesced
	svc.metrics.mu.Unlock()
	if coalesced != 1 {
		t.Fatalf("profCoalesced = %d, want 1", coalesced)
	}
}
