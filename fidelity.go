package spasm

import (
	"errors"

	"spasm/internal/app"
	"spasm/internal/flow"
	"spasm/internal/machine"
	"spasm/internal/sim"
	"spasm/internal/stats"
)

// Adaptive fidelity: a run starts on the cheap flow network tier and is
// redone on the detailed target machine the moment the flow model sees
// contention worth modeling per hop.
//
// The escalation signal is the bottleneck occupancy of each admitted
// flow (flow.Xmit.Occupancy): the fraction of the flow's most-loaded
// resource claimed by competitors.  While every flow is (nearly)
// uncontended the flow model's delivery times match the circuit-switched
// fabric closely and the run stays on the cheap tier; once sharing
// appears, per-hop link state starts to matter and the run restarts on
// the target machine.  A threshold of 0 trips on the very first flow —
// the escalated run is then exactly a detailed-tier run — and a
// threshold of 100 never trips (occupancy is strictly below 100).
//
// Escalation is restart-based, not live-migration: the flow attempt is
// cooperatively aborted (the same mechanism as RunControl timeouts) and
// the application re-runs from scratch on the detailed machine.
// Determinism is preserved — whether a spec escalates, and everything
// after it does, is a pure function of the spec.

// Escalation is the record of one adaptive-fidelity decision, attached
// to Result.Escalation by adaptive runs.
type Escalation = app.Escalation

// escalationMonitor is the app.Instrument that watches the flow tier's
// contention from inside a run.  It chains the flow net's Observer (so
// telemetry attached before it keeps working) and interrupts the engine
// on the first flow whose bottleneck occupancy reaches the threshold.
type escalationMonitor struct {
	threshold int
	eng       *sim.Engine
	tripped   bool
	at        sim.Time
	share     int
}

func (mon *escalationMonitor) Attach(cfg machine.Config, eng *sim.Engine, run *stats.Run, m machine.Machine) {
	fm, ok := m.(machine.Flowed)
	if !ok || fm.FlowNet() == nil {
		return
	}
	mon.eng = eng
	fn := fm.FlowNet()
	prev := fn.Observer
	fn.Observer = func(now sim.Time, x flow.Xmit, src, dst, bytes int) {
		if prev != nil {
			prev(now, x, src, dst, bytes)
		}
		if !mon.tripped && x.Occupancy() >= mon.threshold {
			mon.tripped = true
			mon.at = now
			mon.share = x.Share
			// Cooperative abort: the engine unwinds every process at its
			// next event dispatch, exactly as a RunControl timeout would.
			mon.eng.Interrupt()
		}
	}
}

func (mon *escalationMonitor) Finish(res *app.Result) {}

// runAdaptive executes an adaptive spec: a flow-tier attempt watched by
// an escalationMonitor, redone on the detailed target machine if the
// contention threshold trips.  Timeout and cancellation take precedence
// over escalation — a run aborted by its RunControl reports that error
// even if the threshold also fired.  Both the escalated and the
// untripped case record the decision on Result.Escalation.
func runAdaptive(spec Spec, pool *RunPool, ctl RunControl) (*Result, error) {
	spec = spec.Canonical()
	prog, err := newProgram(spec)
	if err != nil {
		return nil, err
	}
	mon := &escalationMonitor{threshold: spec.EscalatePct}
	res, err := app.RunPooledInstrumented(prog, spec.Config(), pool, ctl, mon)
	if err != nil {
		if errors.Is(err, ErrRunTimeout) || errors.Is(err, ErrRunCanceled) || !mon.tripped {
			return nil, err
		}
		// The abort is the monitor's own interrupt: fall through to the
		// detailed run.
	}
	if !mon.tripped {
		res.Escalation = &Escalation{
			From:         Flow,
			To:           Flow,
			ThresholdPct: spec.EscalatePct,
		}
		return res, nil
	}
	// Escalate: rebuild the program (the flow attempt consumed the first
	// instance's host-memory state) and rerun on the target machine.
	prog, err = newProgram(spec)
	if err != nil {
		return nil, err
	}
	cfg := spec.Config()
	cfg.Kind = machine.Target
	res, err = app.RunPooledControlled(prog, cfg, pool, ctl)
	if err != nil {
		return nil, err
	}
	res.Escalation = &Escalation{
		From:         Flow,
		To:           Target,
		ThresholdPct: spec.EscalatePct,
		Tripped:      true,
		At:           mon.at,
		Share:        mon.share,
	}
	return res, nil
}
