package service

import (
	"encoding/json"
	"fmt"

	"spasm"
	"spasm/internal/coherence"
	"spasm/internal/logp"
)

// RunRequest is the wire form of a run submission (POST /v1/runs).
// Omitted fields take the paper's defaults: scale "small", seed 1,
// machine "target", topology "full", port_mode "combined", protocol
// "berkeley".  App and p are mandatory.
type RunRequest struct {
	App      string `json:"app"`
	Scale    string `json:"scale,omitempty"`
	Seed     int64  `json:"seed,omitempty"`
	Machine  string `json:"machine,omitempty"`
	Topology string `json:"topology,omitempty"`
	P        int    `json:"p"`
	PortMode string `json:"port_mode,omitempty"`
	Protocol string `json:"protocol,omitempty"`

	// Adaptive requests the adaptive-fidelity protocol: machine must be
	// "flow", and the run escalates to the detailed tier when a flow's
	// occupancy reaches EscalatePct percent.  The result's "escalation"
	// field records the decision either way.
	Adaptive    bool `json:"adaptive,omitempty"`
	EscalatePct int  `json:"escalate_pct,omitempty"`

	// Workers requests conservative parallel host execution of the run
	// (bounded by spasm.MaxWorkers; 0 or 1 means sequential).  Results
	// are bit-identical either way, so Workers does not change the run's
	// content address: two requests differing only in workers share one
	// run ID and one cache entry.
	Workers int `json:"workers,omitempty"`
}

// Spec converts the wire request to a canonical run spec.
func (r RunRequest) Spec() (spasm.Spec, error) {
	spec := spasm.Spec{App: r.App, Seed: r.Seed, P: r.P, Topology: r.Topology,
		Adaptive: r.Adaptive, EscalatePct: r.EscalatePct, Workers: r.Workers}
	var err error
	if r.Scale == "" {
		spec.Scale = spasm.Small
	} else if spec.Scale, err = spasm.ParseScale(r.Scale); err != nil {
		return spasm.Spec{}, err
	}
	if r.Machine == "" {
		spec.Machine = spasm.Target
	} else if spec.Machine, err = spasm.ParseKind(r.Machine); err != nil {
		return spasm.Spec{}, err
	}
	if spec.PortMode, err = parsePortMode(r.PortMode); err != nil {
		return spasm.Spec{}, err
	}
	if r.Protocol != "" {
		if spec.Protocol, err = coherence.ParseProtocol(r.Protocol); err != nil {
			return spasm.Spec{}, err
		}
	}
	return spec.Canonical(), nil
}

// RequestFromSpec returns the canonical wire echo of a spec, with every
// field spelled out — the form the API reports back on job status.
func RequestFromSpec(s spasm.Spec) RunRequest {
	c := s.Canonical()
	return RunRequest{
		App:         c.App,
		Scale:       c.Scale.String(),
		Seed:        c.Seed,
		Machine:     c.Machine.String(),
		Topology:    c.Topology,
		P:           c.P,
		PortMode:    c.PortMode.String(),
		Protocol:    c.Protocol.String(),
		Adaptive:    c.Adaptive,
		EscalatePct: c.EscalatePct,
		Workers:     c.Workers,
	}
}

func parsePortMode(s string) (logp.PortMode, error) {
	switch s {
	case "", "combined":
		return logp.Combined, nil
	case "per-class", "perclass":
		return logp.PerClass, nil
	}
	return 0, fmt.Errorf("service: unknown port_mode %q (combined, per-class)", s)
}

// RunStatus is the wire form of a job's state (POST /v1/runs and
// GET /v1/runs/{id} responses).  Result is the deterministic RunDoc
// JSON (see internal/report), served byte-identically on every request
// for the same spec; it is set once the state is "done".
type RunStatus struct {
	ID     string          `json:"id"`
	State  State           `json:"state"`
	Spec   RunRequest      `json:"spec"`
	Cached bool            `json:"cached,omitempty"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// statusFromEntry renders a completed cache entry as a job status.
func statusFromEntry(e *entry, cached bool) RunStatus {
	st := RunStatus{ID: e.id, State: StateDone, Spec: e.req, Cached: cached, Error: e.err, Result: e.doc}
	switch {
	case e.canceled:
		st.State = StateCanceled
	case e.err != "":
		st.State = StateFailed
	}
	return st
}

// Health is the wire form of GET /healthz.
type Health struct {
	Status     string `json:"status"`
	Workers    int    `json:"workers"`
	QueueDepth int    `json:"queue_depth"`
}
