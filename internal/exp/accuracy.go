package exp

import (
	"math"

	"spasm/internal/machine"
)

// AccuracyRow summarizes one figure's abstraction error: how far each
// abstract machine's curve sits from the target machine's, measured as
// the geometric mean over the sweep of the per-point ratio
// abstraction/target.  A value of 1.0 is perfect; above 1 the
// abstraction is pessimistic, below 1 optimistic.  TrendAgrees reports
// whether the abstraction's curve moves in the same direction as the
// target's between every pair of consecutive sweep points — the paper's
// notion of "displaying a similar trend (shape of the curve)".
type AccuracyRow struct {
	Figure     Figure
	CLogPRatio float64
	LogPRatio  float64
	CLogPTrend bool
	LogPTrend  bool
}

// Accuracy computes the abstraction-error summary for a set of
// regenerated figures.
func Accuracy(frs []*FigureResult) []AccuracyRow {
	var out []AccuracyRow
	for _, fr := range frs {
		row := AccuracyRow{Figure: fr.Figure}
		target := seriesOf(fr, machine.Target)
		if target == nil {
			continue
		}
		if s := seriesOf(fr, machine.CLogP); s != nil {
			row.CLogPRatio = geoMeanRatio(s, target)
			row.CLogPTrend = trendAgrees(s, target)
		}
		if s := seriesOf(fr, machine.LogP); s != nil {
			row.LogPRatio = geoMeanRatio(s, target)
			row.LogPTrend = trendAgrees(s, target)
		}
		out = append(out, row)
	}
	return out
}

// AccuracySummary aggregates rows into one verdict per machine and
// metric class.
type AccuracySummary struct {
	Metric Metric
	// Figures counted.
	N int
	// Mean of the per-figure geometric-mean ratios.
	CLogPRatio float64
	LogPRatio  float64
	// Fraction of figures whose trend agrees with the target.
	CLogPTrendPct float64
	LogPTrendPct  float64
}

// Summarize groups accuracy rows by metric.
func Summarize(rows []AccuracyRow) []AccuracySummary {
	var out []AccuracySummary
	for _, m := range []Metric{LatencyOvh, ContentionOvh, ExecTime} {
		s := AccuracySummary{Metric: m}
		var cSum, lSum float64
		var cTrend, lTrend int
		for _, r := range rows {
			if r.Figure.Metric != m {
				continue
			}
			s.N++
			cSum += math.Log(r.CLogPRatio)
			lSum += math.Log(r.LogPRatio)
			if r.CLogPTrend {
				cTrend++
			}
			if r.LogPTrend {
				lTrend++
			}
		}
		if s.N == 0 {
			continue
		}
		s.CLogPRatio = math.Exp(cSum / float64(s.N))
		s.LogPRatio = math.Exp(lSum / float64(s.N))
		s.CLogPTrendPct = 100 * float64(cTrend) / float64(s.N)
		s.LogPTrendPct = 100 * float64(lTrend) / float64(s.N)
		out = append(out, s)
	}
	return out
}

func seriesOf(fr *FigureResult, kind machine.Kind) *Series {
	for i := range fr.Series {
		if fr.Series[i].Machine == kind {
			return &fr.Series[i]
		}
	}
	return nil
}

// geoMeanRatio returns exp(mean(log(a_i/b_i))) over sweep points where
// both values are positive.
func geoMeanRatio(a, b *Series) float64 {
	var sum float64
	n := 0
	for i := range a.Points {
		av, bv := a.Points[i].Value, b.Points[i].Value
		if av > 0 && bv > 0 {
			sum += math.Log(av / bv)
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return math.Exp(sum / float64(n))
}

// trendFlatTol is the relative change below which a segment counts as
// flat: flat segments agree with any direction, so a near-level stretch
// of one curve does not spuriously contradict the other.
const trendFlatTol = 0.05

// trendAgrees reports whether both curves move in the same direction
// between every pair of consecutive sweep points, treating sub-5%%
// relative moves as flat.
func trendAgrees(a, b *Series) bool {
	for i := 1; i < len(a.Points); i++ {
		da := relDelta(a.Points[i-1].Value, a.Points[i].Value)
		db := relDelta(b.Points[i-1].Value, b.Points[i].Value)
		if math.Abs(da) < trendFlatTol || math.Abs(db) < trendFlatTol {
			continue
		}
		if da*db < 0 {
			return false
		}
	}
	return true
}

func relDelta(prev, cur float64) float64 {
	if prev == 0 {
		if cur == 0 {
			return 0
		}
		return 1
	}
	return (cur - prev) / prev
}
