// Package trace records and replays shared-memory reference traces.
//
// Execution-driven simulation (what SPASM and this reproduction do) runs
// the application's control flow under simulated time; trace-driven
// simulation replays a previously captured reference stream.  The two
// agree for applications whose reference pattern is timing-independent
// (EP, FFT, IS) and diverge for dynamic ones (CHOLESKY's task schedule,
// lock acquisition orders), because a trace bakes in the schedule of the
// machine it was recorded on — the methodological distinction the
// authors examined in their companion work.  This package provides the
// apparatus to demonstrate that on any pair of machine models:
//
//	rec := trace.NewRecorder(machine)     // wrap any Machine
//	...run a program...                   // rec.Events holds the trace
//	prog := trace.Replay(rec.Trace(space))
//	...run prog on another machine...
//
// A trace carries the original run's address-space layout (every region
// with its placement policy), so the replay sees byte-identical homing.
// Traces serialize to a compact binary stream via Encode and Decode.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"spasm/internal/app"
	"spasm/internal/machine"
	"spasm/internal/mem"
	"spasm/internal/sim"
	"spasm/internal/stats"
)

// Event is one shared-memory reference with its (local-clock) issue and
// completion times.  The gap between one event's completion and the next
// event's issue is pure local computation, which a replay re-inserts;
// the access service time itself is re-priced by the replay machine.
type Event struct {
	Proc  int32
	Write bool
	Addr  mem.Addr
	At    sim.Time // issue time
	Done  sim.Time // completion time
}

// Region describes one allocation of the recorded address space, enough
// to reproduce it exactly.
type Region struct {
	Name     string
	N        int
	ElemSize int
	Policy   mem.Policy
	Node     int // home for Fixed placement
	Base     mem.Addr
}

// Trace is a recorded run: the reference stream plus the address-space
// layout needed to rebuild an identical Space for replay.
type Trace struct {
	P       int
	Regions []Region
	Events  []Event
}

// PerProc splits the events by issuing processor, preserving order.
func (t *Trace) PerProc() [][]Event {
	out := make([][]Event, t.P)
	for _, e := range t.Events {
		out[e.Proc] = append(out[e.Proc], e)
	}
	return out
}

// Recorder wraps a Machine and appends every reference to Events.
type Recorder struct {
	inner  machine.Machine
	Events []Event
}

// NewRecorder wraps m.
func NewRecorder(m machine.Machine) *Recorder { return &Recorder{inner: m} }

// Kind implements machine.Machine.
func (r *Recorder) Kind() machine.Kind { return r.inner.Kind() }

// P implements machine.Machine.
func (r *Recorder) P() int { return r.inner.P() }

// Read implements machine.Machine, logging the reference.
func (r *Recorder) Read(p *sim.Proc, st *stats.Proc, node int, addr mem.Addr) {
	e := Event{Proc: int32(node), Addr: addr, At: p.Now()}
	r.inner.Read(p, st, node, addr)
	e.Done = p.Now()
	r.Events = append(r.Events, e)
}

// Write implements machine.Machine, logging the reference.
func (r *Recorder) Write(p *sim.Proc, st *stats.Proc, node int, addr mem.Addr) {
	e := Event{Proc: int32(node), Write: true, Addr: addr, At: p.Now()}
	r.inner.Write(p, st, node, addr)
	e.Done = p.Now()
	r.Events = append(r.Events, e)
}

// Trace packages the recorded events together with the layout of the
// space the run allocated.
func (r *Recorder) Trace(space *mem.Space) *Trace {
	t := &Trace{P: r.inner.P(), Events: r.Events}
	for _, a := range space.Regions() {
		t.Regions = append(t.Regions, Region{
			Name:     a.Name,
			N:        a.N,
			ElemSize: a.ElemSize,
			Policy:   a.Policy,
			Node:     a.Node,
			Base:     a.Base,
		})
	}
	return t
}

// Binary format constants.
const (
	magic   = 0x53504153 // "SPAS"
	version = 2
	// recordBytes is the fixed on-disk size of one event.
	recordBytes = 4 + 1 + 8 + 8 + 8
)

// Encode serializes the trace.
func (t *Trace) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	head := make([]byte, 4+2+4+4+8)
	binary.LittleEndian.PutUint32(head[0:], magic)
	binary.LittleEndian.PutUint16(head[4:], version)
	binary.LittleEndian.PutUint32(head[6:], uint32(t.P))
	binary.LittleEndian.PutUint32(head[10:], uint32(len(t.Regions)))
	binary.LittleEndian.PutUint64(head[14:], uint64(len(t.Events)))
	if _, err := bw.Write(head); err != nil {
		return err
	}
	for _, r := range t.Regions {
		if err := writeRegion(bw, r); err != nil {
			return err
		}
	}
	rec := make([]byte, recordBytes)
	for _, e := range t.Events {
		binary.LittleEndian.PutUint32(rec[0:], uint32(e.Proc))
		rec[4] = 0
		if e.Write {
			rec[4] = 1
		}
		binary.LittleEndian.PutUint64(rec[5:], uint64(e.Addr))
		binary.LittleEndian.PutUint64(rec[13:], uint64(e.At))
		binary.LittleEndian.PutUint64(rec[21:], uint64(e.Done))
		if _, err := bw.Write(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeRegion(w io.Writer, r Region) error {
	name := []byte(r.Name)
	head := make([]byte, 2+4+4+4+4+8)
	binary.LittleEndian.PutUint16(head[0:], uint16(len(name)))
	binary.LittleEndian.PutUint32(head[2:], uint32(r.N))
	binary.LittleEndian.PutUint32(head[6:], uint32(r.ElemSize))
	binary.LittleEndian.PutUint32(head[10:], uint32(r.Policy))
	binary.LittleEndian.PutUint32(head[14:], uint32(r.Node))
	binary.LittleEndian.PutUint64(head[18:], uint64(r.Base))
	if _, err := w.Write(head); err != nil {
		return err
	}
	_, err := w.Write(name)
	return err
}

func readRegion(r io.Reader) (Region, error) {
	head := make([]byte, 2+4+4+4+4+8)
	if _, err := io.ReadFull(r, head); err != nil {
		return Region{}, err
	}
	reg := Region{
		N:        int(binary.LittleEndian.Uint32(head[2:])),
		ElemSize: int(binary.LittleEndian.Uint32(head[6:])),
		Policy:   mem.Policy(binary.LittleEndian.Uint32(head[10:])),
		Node:     int(binary.LittleEndian.Uint32(head[14:])),
		Base:     mem.Addr(binary.LittleEndian.Uint64(head[18:])),
	}
	name := make([]byte, binary.LittleEndian.Uint16(head[0:]))
	if _, err := io.ReadFull(r, name); err != nil {
		return Region{}, err
	}
	reg.Name = string(name)
	return reg, nil
}

// Decode deserializes a trace written by Encode.
func Decode(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	head := make([]byte, 4+2+4+4+8)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if binary.LittleEndian.Uint32(head[0:]) != magic {
		return nil, fmt.Errorf("trace: bad magic")
	}
	if v := binary.LittleEndian.Uint16(head[4:]); v != version {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	t := &Trace{P: int(binary.LittleEndian.Uint32(head[6:]))}
	nRegions := binary.LittleEndian.Uint32(head[10:])
	nEvents := binary.LittleEndian.Uint64(head[14:])
	for i := uint32(0); i < nRegions; i++ {
		reg, err := readRegion(br)
		if err != nil {
			return nil, fmt.Errorf("trace: reading region %d: %w", i, err)
		}
		t.Regions = append(t.Regions, reg)
	}
	// Cap the pre-allocation hint: the header's event count is
	// untrusted input, and a short stream will fail below anyway.
	capHint := nEvents
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	t.Events = make([]Event, 0, capHint)
	rec := make([]byte, recordBytes)
	for i := uint64(0); i < nEvents; i++ {
		if _, err := io.ReadFull(br, rec); err != nil {
			return nil, fmt.Errorf("trace: reading event %d: %w", i, err)
		}
		t.Events = append(t.Events, Event{
			Proc:  int32(binary.LittleEndian.Uint32(rec[0:])),
			Write: rec[4] == 1,
			Addr:  mem.Addr(binary.LittleEndian.Uint64(rec[5:])),
			At:    sim.Time(binary.LittleEndian.Uint64(rec[13:])),
			Done:  sim.Time(binary.LittleEndian.Uint64(rec[21:])),
		})
	}
	return t, nil
}

// replayProgram re-issues a recorded trace: each processor replays its
// own subsequence, inserting the recorded inter-reference gaps as
// compute time.  This is trace-driven simulation: the schedule of the
// recording run is baked in, which is precisely its limitation for
// dynamically scheduled applications.
type replayProgram struct {
	t      *Trace
	perPrc [][]Event
	issued []int
	setupE error
}

// Replay returns a Program that replays the trace.
func Replay(t *Trace) app.Program {
	return &replayProgram{t: t, perPrc: t.PerProc()}
}

// Name implements app.Program.
func (r *replayProgram) Name() string { return "trace-replay" }

// Setup recreates the recorded address space exactly: same regions, same
// placement policies, same bases — so every replayed reference has the
// same home node it had when recorded.
func (r *replayProgram) Setup(c *app.Ctx) {
	if c.P != r.t.P {
		r.setupE = fmt.Errorf("trace: replaying a %d-processor trace on %d processors", r.t.P, c.P)
		return
	}
	for _, reg := range r.t.Regions {
		var a *mem.Array
		if reg.Policy == mem.Fixed {
			a = c.Space.AllocAt(reg.Name, reg.N, reg.ElemSize, reg.Node)
		} else {
			a = c.Space.Alloc(reg.Name, reg.N, reg.ElemSize, reg.Policy)
		}
		if a.Base != reg.Base {
			r.setupE = fmt.Errorf("trace: region %q rebuilt at %#x, recorded at %#x",
				reg.Name, uint64(a.Base), uint64(reg.Base))
			return
		}
	}
	r.issued = make([]int, c.P)
}

// Body implements app.Program.
func (r *replayProgram) Body(p *app.Proc) {
	if r.setupE != nil || p.ID >= len(r.perPrc) {
		return
	}
	last := sim.Time(0)
	for _, e := range r.perPrc[p.ID] {
		// Re-insert only the pure-compute gap; the access itself is
		// re-priced by the machine the trace is replayed on.
		if gap := e.At - last; gap > 0 {
			p.ComputeTime(gap)
		}
		last = e.Done
		if e.Write {
			p.Write(e.Addr)
		} else {
			p.Read(e.Addr)
		}
		r.issued[p.ID]++
	}
}

// Check verifies every recorded event was re-issued.
func (r *replayProgram) Check() error {
	if r.setupE != nil {
		return r.setupE
	}
	total := 0
	for _, n := range r.issued {
		total += n
	}
	if total != len(r.t.Events) {
		return fmt.Errorf("trace: replayed %d of %d events", total, len(r.t.Events))
	}
	return nil
}
