package spasm

// Bit-for-bit determinism lock: a Tiny sweep of every application on
// every machine characterization must produce byte-identical report
// documents across runs AND across simulator-engineering changes.  The
// golden file was generated before the kernel fast-path work (PR 3) and
// guards that heap, routing, and directory optimizations never change a
// single simulated number.  Regenerate with SPASM_UPDATE=1 only when a
// change is *intended* to alter simulated results.

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"spasm/internal/report"
)

const runDocGoldenPath = "testdata/rundocs_tiny.golden.json"

// goldenRunDocs simulates the determinism corpus: the full Tiny suite on
// all machine kinds over the full network, plus the target machine on
// the cube and mesh (exercising every routing path).
func goldenRunDocs(t *testing.T) []report.RunDoc {
	t.Helper()
	var docs []report.RunDoc
	add := func(app string, kind Kind, topo string) {
		res, err := Run(app, Tiny, 1, Config{Kind: kind, Topology: topo, P: 8})
		if err != nil {
			t.Fatalf("%s on %v/%s: %v", app, kind, topo, err)
		}
		docs = append(docs, report.RunJSON(res))
	}
	for _, app := range Apps() {
		for _, kind := range Machines() {
			add(app, kind, "full")
		}
		add(app, Target, "cube")
		add(app, Target, "mesh")
	}
	return docs
}

func TestRunDocsBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full Tiny suite")
	}
	got, err := json.MarshalIndent(goldenRunDocs(t), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	if os.Getenv("SPASM_UPDATE") != "" {
		if err := os.MkdirAll(filepath.Dir(runDocGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(runDocGoldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", runDocGoldenPath, len(got))
		return
	}
	want, err := os.ReadFile(runDocGoldenPath)
	if err != nil {
		t.Fatalf("missing golden (run with SPASM_UPDATE=1 to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("RunDoc JSON diverged from golden %s (%d vs %d bytes); "+
			"simulated results are supposed to be bit-for-bit stable",
			runDocGoldenPath, len(got), len(want))
	}
}
