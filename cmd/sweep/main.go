// Command sweep runs the reproduction's sensitivity and extension
// studies, each grounded in a claim or proposal of the paper:
//
//	sweep -study protocol   # Berkeley vs MSI (section 7 insensitivity claim)
//	sweep -study cache      # cache-size vs miss rate (64KB working-set claim)
//	sweep -study adaptive   # history-based g (section 7 future work)
//	sweep -study leff       # effective L from measured message sizes (section 6.1)
//	sweep -study trace      # trace-driven vs execution-driven simulation
//	sweep -study bandwidth  # per-app communication demand (companion TR)
//	sweep -study tech       # link-bandwidth scaling vs abstraction accuracy
//	sweep -study fault      # degraded-link injection (abstraction blindness)
//	sweep -study topo       # abstraction accuracy across all five topologies
//	sweep -study placement  # blocked vs interleaved data placement
//	sweep -study mg         # out-of-suite validation (multigrid workload)
//	sweep -study all
//
// There is also a throughput utility outside the paper studies:
//
//	sweep -study batch                                  # apps x machines x -procs on the batch scheduler
//	sweep -study batch -points fft:mesh:target:8,...    # explicit points
//	sweep -study batch -parallel 8                      # worker count
//
// The batch study runs its points on spasm.RunMany — the bounded worker
// pool with pooled run contexts — and prints one row per point in input
// order.  Results are identical to running each point alone.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"spasm"
)

func main() {
	var (
		study    = flag.String("study", "all", "protocol, cache, adaptive, leff, or all")
		appName  = flag.String("app", "", "application for cache/adaptive/leff (defaults per study)")
		topo     = flag.String("topo", "", "topology (defaults per study)")
		scale    = flag.String("scale", "small", "problem scale: tiny, small, medium")
		seed     = flag.Int64("seed", 1, "synthetic-input seed")
		p        = flag.Int("p", 16, "processors for protocol/cache studies")
		procsStr = flag.String("procs", "2,4,8,16,32", "sweep for adaptive/leff studies")
		points   = flag.String("points", "", "batch study points as app:topo:machine:p, comma-separated (default: apps x machines x -procs on -topo)")
		parallel = flag.Int("parallel", 4, "concurrent simulations for the batch study")
	)
	flag.Parse()

	sc, err := spasm.ParseScale(*scale)
	if err != nil {
		fail(err)
	}
	procs, err := spasm.ParseProcs(*procsStr)
	if err != nil {
		fail(err)
	}

	run := map[string]bool{}
	if *study == "all" {
		for _, s := range []string{"protocol", "cache", "adaptive", "leff", "trace", "bandwidth", "tech", "fault", "topo", "placement", "mg"} {
			run[s] = true
		}
	} else {
		run[*study] = true
	}

	if run["protocol"] {
		topoOr := pick(*topo, "full")
		fmt.Printf("protocol sensitivity — target execution time, %s network, p=%d:\n", topoOr, *p)
		rows, err := spasm.ProtocolComparison(sc, *seed, topoOr, *p)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%-10s %13s %13s %13s %13s %8s %8s\n",
			"app", "berkeley_us", "msi_us", "update_us", "clogp_us", "msi/bk", "upd/bk")
		for _, r := range rows {
			fmt.Printf("%-10s %13.1f %13.1f %13.1f %13.1f %7.2fx %7.2fx\n",
				r.App, r.Berkeley, r.MSI, r.Update, r.CLogP,
				r.MSI/r.Berkeley, r.Update/r.Berkeley)
		}
		fmt.Println()
	}

	if run["cache"] {
		appOr := pick(*appName, "cg")
		topoOr := pick(*topo, "full")
		fmt.Printf("cache-size sweep — %s on target/%s, p=%d:\n", appOr, topoOr, *p)
		rows, err := spasm.CacheSweep(appOr, sc, *seed, topoOr, *p, []int{1, 2, 4, 8, 16, 32, 64, 128})
		if err != nil {
			fail(err)
		}
		fmt.Printf("%8s %12s %14s\n", "size_kb", "miss_rate", "exec_us")
		for _, r := range rows {
			fmt.Printf("%8d %12.4f %14.1f\n", r.SizeKB, r.MissRate, r.Exec)
		}
		fmt.Println()
	}

	if run["adaptive"] {
		appOr := pick(*appName, "ep")
		topoOr := pick(*topo, "mesh")
		fmt.Printf("adaptive g — %s on %s, contention overhead (us):\n", appOr, topoOr)
		rows, err := spasm.AdaptiveGapStudy(appOr, sc, *seed, topoOr, procs)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%6s %14s %14s %14s\n", "p", "target", "static_g", "adaptive_g")
		for _, r := range rows {
			fmt.Printf("%6d %14.1f %14.1f %14.1f\n", r.P, r.Target, r.Static, r.Adaptive)
		}
		fmt.Println()
	}

	if run["trace"] {
		topoOr := pick(*topo, "full")
		fmt.Printf("trace-driven vs execution-driven — recorded on clogp, replayed on target/%s, p=%d:\n", topoOr, *p)
		rows, err := spasm.TraceDrivenStudy(sc, *seed, topoOr, *p)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%-10s %14s %14s %10s %12s\n", "app", "exec_us", "trace_us", "ratio", "events")
		for _, r := range rows {
			fmt.Printf("%-10s %14.1f %14.1f %9.2fx %12d\n",
				r.App, r.ExecDriven, r.TraceDriven, r.TraceDriven/r.ExecDriven, r.Events)
		}
		fmt.Println()
	}

	if run["bandwidth"] {
		topoOr := pick(*topo, "full")
		fmt.Printf("bandwidth demand per processor — %s network, p=%d (links are 20 MB/s):\n", topoOr, *p)
		rows, err := spasm.BandwidthStudy(sc, *seed, topoOr, *p)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%-10s %16s %16s\n", "app", "true_mbps", "target_mbps")
		for _, r := range rows {
			fmt.Printf("%-10s %16.2f %16.2f\n", r.App, r.PerProcMBps, r.TargetMBps)
		}
		fmt.Println()
	}

	if run["tech"] {
		appOr := pick(*appName, "is")
		topoOr := pick(*topo, "mesh")
		fmt.Printf("technology scaling — %s on %s, p=%d:\n", appOr, topoOr, *p)
		rows, err := spasm.TechnologyStudy(appOr, sc, *seed, topoOr, *p, []float64{20, 40, 80, 160, 320})
		if err != nil {
			fail(err)
		}
		fmt.Printf("%10s %14s %14s %12s\n", "link_mbps", "target_us", "clogp_us", "clogp/target")
		for _, r := range rows {
			fmt.Printf("%10.0f %14.1f %14.1f %11.2fx\n", r.LinkMBps, r.TargetExec, r.CLogPExec, r.Ratio)
		}
		fmt.Println()
	}

	if run["fault"] {
		appOr := pick(*appName, "fft")
		fmt.Printf("degraded-link injection — %s on mesh, p=%d:\n", appOr, *p)
		rows, err := spasm.DegradedLinkStudy(appOr, sc, *seed, *p, []int{1, 2, 4, 8})
		if err != nil {
			fail(err)
		}
		fmt.Printf("%10s %14s %14s\n", "slowdown", "target_us", "clogp_us")
		for _, r := range rows {
			fmt.Printf("%9dx %14.1f %14.1f\n", r.Factor, r.TargetExec, r.CLogPExec)
		}
		fmt.Println("(the L/g abstraction cannot represent a single slow link)")
		fmt.Println()
	}

	if run["topo"] {
		appOr := pick(*appName, "is")
		fmt.Printf("topology comparison — %s, p=%d (clogp/target execution ratio):\n", appOr, *p)
		rows, err := spasm.TopologyStudy(appOr, sc, *seed, *p)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%8s %10s %14s %14s %12s\n", "topo", "g_us", "target_us", "clogp_us", "ratio")
		for _, r := range rows {
			fmt.Printf("%8s %10.3f %14.1f %14.1f %11.2fx\n",
				r.Topology, r.G.Micros(), r.TargetExec, r.CLogPExec, r.Ratio)
		}
		fmt.Println()
	}

	if run["placement"] {
		topoOr := pick(*topo, "cube")
		fmt.Printf("data placement — cg on target/%s, p=%d:\n", topoOr, *p)
		rows, err := spasm.PlacementStudy(sc, *seed, topoOr, *p)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%12s %14s %14s %12s\n", "placement", "exec_us", "latency_us", "misses")
		for _, r := range rows {
			fmt.Printf("%12v %14.1f %14.1f %12d\n", r.Placement, r.TargetExec, r.Latency, r.Misses)
		}
		fmt.Println()
	}

	if run["mg"] {
		topoOr := pick(*topo, "cube")
		fmt.Printf("out-of-suite validation — multigrid on %s:\n", topoOr)
		rows, err := spasm.ExtendedAppStudy("mg", sc, *seed, topoOr, procs)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%6s %14s %14s %14s %14s\n", "p", "target_us", "clogp_us", "logp_us", "lat clogp/tgt")
		for _, r := range rows {
			fmt.Printf("%6d %14.1f %14.1f %14.1f %13.2fx\n",
				r.P, r.TargetExec, r.CLogPExec, r.LogPExec, r.CLogPLatencyRatio)
		}
		fmt.Println()
	}

	if run["batch"] {
		pts, err := parsePoints(*points, pick(*topo, "full"), procs)
		if err != nil {
			fail(err)
		}
		fmt.Printf("batch sweep — %d points, %d workers:\n", len(pts), *parallel)
		runs, err := spasm.RunMany(spasm.Options{Scale: sc, Seed: *seed, Parallel: *parallel}, pts)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%-10s %8s %8s %6s %14s %10s %12s\n",
			"app", "topo", "machine", "p", "exec_us", "messages", "events")
		for i, r := range runs {
			pt := pts[i]
			fmt.Printf("%-10s %8s %8v %6d %14.1f %10d %12d\n",
				pt.App, pt.Topology, pt.Kind, pt.P, r.Total.Micros(), r.Messages(), r.SimEvents)
		}
		fmt.Println()
	}

	if run["leff"] {
		appOr := pick(*appName, "fft")
		topoOr := pick(*topo, "full")
		fmt.Printf("effective L — %s on %s, latency overhead (us):\n", appOr, topoOr)
		rows, err := spasm.EffectiveLStudy(appOr, sc, *seed, topoOr, procs)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%6s %12s %14s %14s %14s\n", "p", "mean_bytes", "target", "L=32B", "L=measured")
		for _, r := range rows {
			fmt.Printf("%6d %12.1f %14.1f %14.1f %14.1f\n",
				r.P, r.MeanMsgBytes, r.TargetLatency, r.L32Latency, r.EffLatency)
		}
		fmt.Println()
	}
}

// parsePoints turns "app:topo:machine:p,..." into batch points, or, when
// spec is empty, expands the default cross product of the application
// suite, the three networked machines, and the -procs sweep on topo.
func parsePoints(spec, topo string, procs []int) ([]spasm.BatchPoint, error) {
	if spec == "" {
		var pts []spasm.BatchPoint
		for _, app := range spasm.Apps() {
			for _, kind := range []spasm.Kind{spasm.LogP, spasm.CLogP, spasm.Target} {
				for _, p := range procs {
					pts = append(pts, spasm.BatchPoint{App: app, Topology: topo, Kind: kind, P: p})
				}
			}
		}
		return pts, nil
	}
	var pts []spasm.BatchPoint
	for _, field := range strings.Split(spec, ",") {
		parts := strings.Split(strings.TrimSpace(field), ":")
		if len(parts) != 4 {
			return nil, fmt.Errorf("bad point %q (want app:topo:machine:p)", field)
		}
		kind, err := spasm.ParseKind(parts[2])
		if err != nil {
			return nil, fmt.Errorf("point %q: %w", field, err)
		}
		p, err := strconv.Atoi(parts[3])
		if err != nil || p < 1 {
			return nil, fmt.Errorf("point %q: bad processor count %q", field, parts[3])
		}
		pts = append(pts, spasm.BatchPoint{App: parts[0], Topology: parts[1], Kind: kind, P: p})
	}
	return pts, nil
}

func pick(v, def string) string {
	if v == "" {
		return def
	}
	return v
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
