package spasm

import (
	"encoding/json"
	"testing"

	"spasm/internal/report"
)

// TestTinyStress re-runs a Tiny workload many times in one process,
// checking that every run produces identical results.  Its real value is
// under `go test -race`: the kernel's direct process-to-process dispatch
// handoff (a goroutine that blocks pops the next event and resumes its
// owner) is exactly the kind of code where a missed happens-before edge
// would surface as a data race on engine state, and twenty full
// simulations give the detector plenty of handoffs to watch.
func TestTinyStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	var first []byte
	for i := 0; i < 20; i++ {
		res, err := Run("fft", Tiny, 1, Config{Kind: Target, Topology: "mesh", P: 8})
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		doc, err := json.Marshal(report.RunJSON(res))
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if i == 0 {
			first = doc
			continue
		}
		if string(doc) != string(first) {
			t.Fatalf("run %d produced different results than run 0", i)
		}
	}
}
