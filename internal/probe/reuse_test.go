package probe_test

import (
	"bytes"
	"testing"

	"spasm/internal/app"
	"spasm/internal/apps"
	"spasm/internal/machine"
	"spasm/internal/probe"
)

// TestProfilerReuse checks that a profiler reused across runs with Reset
// produces byte-identical encodings to fresh profilers, and that a
// profile emitted before a Reset survives later reuse intact (Finish
// hands its sample slices to the profile, so reuse must not touch them).
func TestProfilerReuse(t *testing.T) {
	encode := func(p *probe.Profile) []byte {
		var buf bytes.Buffer
		if _, err := p.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	runWith := func(pr *probe.Profiler, tc struct {
		app  string
		kind machine.Kind
		topo string
		p    int
	}) *probe.Profile {
		prog, err := apps.New(tc.app, apps.Tiny, 1)
		if err != nil {
			t.Fatal(err)
		}
		cfg := machine.Config{Kind: tc.kind, Topology: tc.topo, P: tc.p}
		if _, err := app.RunInstrumented(prog, cfg, nil, pr); err != nil {
			t.Fatal(err)
		}
		return pr.Profile()
	}
	cases := []struct {
		app  string
		kind machine.Kind
		topo string
		p    int
	}{
		{"ep", machine.Target, "mesh", 4},
		{"fft", machine.LogP, "cube", 8},
		{"is", machine.Target, "full", 8},
	}

	shared := probe.New(probe.Config{})
	var kept []*probe.Profile
	var keptBytes [][]byte
	for pass := 0; pass < 2; pass++ {
		for i, tc := range cases {
			want := encode(runWith(probe.New(probe.Config{}), tc))
			if pass > 0 || i > 0 {
				shared.Reset()
			}
			got := runWith(shared, tc)
			if !bytes.Equal(encode(got), want) {
				t.Fatalf("pass %d: %s on %v/%s: reused profiler diverged from fresh",
					pass, tc.app, tc.kind, tc.topo)
			}
			kept = append(kept, got)
			keptBytes = append(keptBytes, encode(got))
		}
	}
	// Every profile emitted along the way must still encode to the bytes
	// it had when emitted — reuse must not alias into old profiles.
	for i, p := range kept {
		if !bytes.Equal(encode(p), keptBytes[i]) {
			t.Fatalf("profile %d was corrupted by later profiler reuse", i)
		}
	}
}
