package machine

import (
	"fmt"

	"spasm/internal/mem"
	"spasm/internal/sim"
	"spasm/internal/stats"
)

// Conformance checks that a Machine implementation obeys the semantic
// contract every machine characterization must satisfy, independent of
// its timing model:
//
//  1. accounting: every Read/Write increments the issuing processor's
//     reference counters;
//  2. progress: accesses complete in finite simulated time and never
//     move a processor's clock backwards;
//  3. determinism: identical access sequences produce identical
//     simulated times and statistics;
//  4. locality sanity: a reference to the issuing node's own partition
//     never costs more than the same reference made remotely (for
//     machines that distinguish the two).
//
// Tests call it with a factory so each check starts from a fresh
// machine; it returns the first violation found.
func Conformance(factory func() (Machine, *mem.Space, *mem.Array)) error {
	if err := confAccounting(factory); err != nil {
		return err
	}
	if err := confProgress(factory); err != nil {
		return err
	}
	if err := confDeterminism(factory); err != nil {
		return err
	}
	return confLocality(factory)
}

func confAccounting(factory func() (Machine, *mem.Space, *mem.Array)) error {
	m, _, arr := factory()
	e := sim.NewEngine()
	run := stats.NewRun(m.P())
	e.Spawn("conf", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			m.Read(p, &run.Procs[0], 0, arr.At(i))
		}
		for i := 0; i < 5; i++ {
			m.Write(p, &run.Procs[0], 0, arr.At(i))
		}
	})
	if err := e.Run(); err != nil {
		return fmt.Errorf("conformance/accounting: %w", err)
	}
	if run.Procs[0].Reads != 10 || run.Procs[0].Writes != 5 {
		return fmt.Errorf("conformance/accounting: reads=%d writes=%d, want 10/5",
			run.Procs[0].Reads, run.Procs[0].Writes)
	}
	return nil
}

func confProgress(factory func() (Machine, *mem.Space, *mem.Array)) error {
	m, _, arr := factory()
	e := sim.NewEngine()
	e.MaxTime = sim.Micros(1e9) // any access loop must finish well inside this
	run := stats.NewRun(m.P())
	var violation error
	e.Spawn("conf", func(p *sim.Proc) {
		last := p.Now()
		for i := 0; i < 200; i++ {
			node := i % m.P()
			m.Read(p, &run.Procs[node], node, arr.At(i%arr.N))
			if p.Now() < last {
				violation = fmt.Errorf("conformance/progress: clock moved backwards")
				return
			}
			last = p.Now()
		}
	})
	if err := e.Run(); err != nil {
		return fmt.Errorf("conformance/progress: %w", err)
	}
	return violation
}

func confDeterminism(factory func() (Machine, *mem.Space, *mem.Array)) error {
	trial := func() (sim.Time, uint64) {
		m, _, arr := factory()
		e := sim.NewEngine()
		run := stats.NewRun(m.P())
		e.Spawn("conf", func(p *sim.Proc) {
			for i := 0; i < 300; i++ {
				node := (i * 7) % m.P()
				if i%3 == 0 {
					m.Write(p, &run.Procs[node], node, arr.At((i*13)%arr.N))
				} else {
					m.Read(p, &run.Procs[node], node, arr.At((i*13)%arr.N))
				}
			}
		})
		if err := e.Run(); err != nil {
			return -1, 0
		}
		return e.Now(), run.Messages()
	}
	t1, m1 := trial()
	t2, m2 := trial()
	if t1 != t2 || m1 != m2 {
		return fmt.Errorf("conformance/determinism: %v/%d vs %v/%d", t1, m1, t2, m2)
	}
	return nil
}

func confLocality(factory func() (Machine, *mem.Space, *mem.Array)) error {
	cost := func(node, elem int) (sim.Time, error) {
		m, _, arr := factory()
		e := sim.NewEngine()
		run := stats.NewRun(m.P())
		var d sim.Time
		e.Spawn("conf", func(p *sim.Proc) {
			t0 := p.Now()
			m.Read(p, &run.Procs[node], node, arr.At(elem))
			d = p.Now() - t0
		})
		if err := e.Run(); err != nil {
			return 0, err
		}
		return d, nil
	}
	m, _, arr := factory()
	lo0, _ := arr.OwnerRange(0)
	local, err := cost(0, lo0)
	if err != nil {
		return fmt.Errorf("conformance/locality: %w", err)
	}
	remoteNode := m.P() - 1
	remote, err := cost(remoteNode, lo0)
	if err != nil {
		return fmt.Errorf("conformance/locality: %w", err)
	}
	if local > remote {
		return fmt.Errorf("conformance/locality: local read (%v) dearer than remote (%v)",
			local, remote)
	}
	return nil
}
