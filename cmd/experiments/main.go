// Command experiments regenerates the paper's evaluation: every numbered
// figure (1-20) as a table, chart and/or CSV, plus the textual
// experiments — the simulation-cost comparison, the g-discipline
// ablation, and the g-parameter table.
//
// Usage:
//
//	experiments                  # everything, tables + charts
//	experiments -fig 7           # one figure
//	experiments -jobs 8          # override the simulation parallelism
//
// The underlying simulations run -jobs at a time (default: GOMAXPROCS,
// i.e. every host core) on the batch scheduler, drawing reusable run
// contexts from the session's pool so a sweep pays machine construction
// once per configuration instead of once per run.  Each simulation is
// internally single-threaded and deterministic, so neither the job count
// nor context reuse changes a single simulated number — results are
// identical regardless of -jobs.
//
//	experiments -accuracy -format ""        # abstraction-accuracy dashboard
//	experiments -format csv -out results/   # CSV files per figure
//	experiments -speed -ablation -gtable    # only the textual experiments
//	experiments -app is -topo torus -metric contention   # ad-hoc figure
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"spasm"
)

func main() {
	var (
		figNum   = flag.Int("fig", 0, "figure number (0 = all)")
		scale    = flag.String("scale", "small", "problem scale: tiny, small, medium")
		procsStr = flag.String("procs", "2,4,8,16,32,64", "processor sweep")
		seed     = flag.Int64("seed", 1, "synthetic-input seed")
		format   = flag.String("format", "table,chart", "comma list of table, chart, csv")
		outDir   = flag.String("out", "", "write per-figure files to this directory")
		speed    = flag.Bool("speed", false, "run the simulation-cost comparison (S1)")
		fidelity = flag.Bool("fidelity", false, "run the network-fidelity comparison (flow vs logp vs detailed, S4)")
		ablation = flag.Bool("ablation", false, "run the g-discipline ablation (S2)")
		gtable   = flag.Bool("gtable", false, "print the g-parameter table (S3)")
		onlyText = flag.Bool("no-figures", false, "skip the numbered figures")
		jobs     = flag.Int("jobs", runtime.GOMAXPROCS(0), "concurrent simulations (results are identical regardless of job count)")
		workers  = flag.Int("workers", 0, "parallel host execution within each simulation (bit-identical; 0 or 1 = sequential)")
		accuracy = flag.Bool("accuracy", false, "print the abstraction-accuracy dashboard")
		adHocApp = flag.String("app", "", "ad-hoc figure: application (with -topo and -metric)")
		adHocTop = flag.String("topo", "mesh", "ad-hoc figure: topology")
		adHocMet = flag.String("metric", "contention", "ad-hoc figure: latency, contention or exec")
		profiled = flag.Bool("profile", false, "with -app: profile one target-machine run (largest -procs) instead of sweeping")
	)
	flag.Parse()

	sc, err := spasm.ParseScale(*scale)
	if err != nil {
		fail(err)
	}
	procs, err := spasm.ParseProcs(*procsStr)
	if err != nil {
		fail(err)
	}
	formats := map[string]bool{}
	for _, f := range strings.Split(*format, ",") {
		formats[strings.TrimSpace(f)] = true
	}

	s := spasm.NewSession(spasm.Options{Scale: sc, Procs: procs, Seed: *seed, Parallel: *jobs, RunWorkers: *workers})

	if *adHocApp != "" {
		if *profiled {
			p := procs[len(procs)-1]
			if err := emitProfile(*adHocApp, *adHocTop, p, sc, *seed, *outDir); err != nil {
				fail(err)
			}
			return
		}
		metric, err := spasm.ParseMetric(*adHocMet)
		if err != nil {
			fail(err)
		}
		fr, err := s.CustomFigure(*adHocApp, *adHocTop, metric)
		if err != nil {
			fail(err)
		}
		emit(fr, formats, *outDir)
		return
	}

	if !*onlyText {
		if *figNum != 0 {
			f, err := spasm.FigureByNumber(*figNum)
			if err != nil {
				fail(err)
			}
			fr, err := s.Figure(f)
			if err != nil {
				fail(err)
			}
			emit(fr, formats, *outDir)
		} else {
			frs, err := s.AllFigures()
			if err != nil {
				fail(err)
			}
			for _, fr := range frs {
				emit(fr, formats, *outDir)
			}
			if *accuracy {
				printAccuracy(frs)
			}
		}
	}

	if *gtable {
		printGapTable(procs)
	}
	if *ablation {
		if err := printAblation(sc, *seed, procs); err != nil {
			fail(err)
		}
	}
	if *speed {
		if err := printSpeed(s, procs); err != nil {
			fail(err)
		}
	}
	if *fidelity {
		if err := printFidelity(s, *adHocTop, procs); err != nil {
			fail(err)
		}
	}
}

func emit(fr *spasm.FigureResult, formats map[string]bool, outDir string) {
	if formats["table"] {
		fmt.Println(spasm.FigureTable(fr))
	}
	if formats["chart"] {
		fmt.Println(spasm.FigureChart(fr, 78, 22))
	}
	if formats["csv"] {
		csv := spasm.FigureCSV(fr)
		if outDir == "" {
			fmt.Print(csv)
		} else {
			if err := os.MkdirAll(outDir, 0o755); err != nil {
				fail(err)
			}
			path := filepath.Join(outDir, fr.Figure.ID()+".csv")
			if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
				fail(err)
			}
			fmt.Println("wrote", path)
		}
	}
}

// emitProfile runs one target-machine simulation with the probe
// attached and prints its per-epoch table; with -out set it also writes
// the CSV time series next to the figure CSVs.
func emitProfile(app, topo string, p int, sc spasm.Scale, seed int64, outDir string) error {
	cfg := spasm.Config{Kind: spasm.Target, Topology: topo, P: p}
	_, prof, err := spasm.RunProfiled(app, sc, seed, cfg)
	if err != nil {
		return err
	}
	fmt.Println(spasm.ProfileTable(prof))
	epoch, total := prof.Peak(spasm.Contention)
	fmt.Printf("peak contention: epoch %d (t=%v), %v summed over procs\n\n",
		epoch, prof.EpochStart(epoch), total)
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(outDir, fmt.Sprintf("profile_%s_%s_p%d.csv", app, topo, p))
		if err := os.WriteFile(path, []byte(spasm.ProfileCSV(prof)), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", path)
	}
	return nil
}

func printAccuracy(frs []*spasm.FigureResult) {
	rows := spasm.Accuracy(frs)
	fmt.Println("abstraction accuracy per figure (geometric-mean ratio vs target; 1.00 = exact):")
	fmt.Printf("%6s %-36s %12s %8s %12s %8s\n",
		"fig", "caption", "clogp", "trend", "logp", "trend")
	for _, r := range rows {
		fmt.Printf("%6s %-36s %11.2fx %8v %11.2fx %8v\n",
			r.Figure.ID(), r.Figure.Caption(), r.CLogPRatio, r.CLogPTrend,
			r.LogPRatio, r.LogPTrend)
	}
	fmt.Println()
	fmt.Println("summary by metric:")
	fmt.Printf("%-16s %4s %12s %10s %12s %10s\n",
		"metric", "figs", "clogp", "trend%", "logp", "trend%")
	for _, s := range spasm.Summarize(rows) {
		fmt.Printf("%-16s %4d %11.2fx %9.0f%% %11.2fx %9.0f%%\n",
			s.Metric, s.N, s.CLogPRatio, s.CLogPTrendPct, s.LogPRatio, s.LogPTrendPct)
	}
	fmt.Println()
}

func printGapTable(procs []int) {
	fmt.Println("g parameters from per-processor bisection bandwidth (section 5):")
	fmt.Printf("%6s %6s %10s\n", "topo", "p", "g_us")
	for _, row := range spasm.GapTable(procs) {
		fmt.Printf("%6s %6d %10.3f\n", row.Topology, row.P, row.G.Micros())
	}
	fmt.Println()
}

func printAblation(sc spasm.Scale, seed int64, procs []int) error {
	rows, err := spasm.GapAblation(sc, seed, procs)
	if err != nil {
		return err
	}
	fmt.Println("g-discipline ablation — FFT on cube, contention overhead (section 7):")
	fmt.Printf("%6s %14s %14s %14s\n", "p", "target_us", "combined_us", "perclass_us")
	for _, r := range rows {
		fmt.Printf("%6d %14.1f %14.1f %14.1f\n", r.P, r.Target, r.CombinedGap, r.PerClassGap)
	}
	fmt.Println()
	return nil
}

func printSpeed(s *spasm.Session, procs []int) error {
	p := procs[len(procs)-1]
	rows, err := s.SimulationCost("full", p)
	if err != nil {
		return err
	}
	fmt.Printf("simulation cost — full suite on the full network at p=%d (section 7):\n", p)
	fmt.Printf("%12s %14s %12s\n", "machine", "events", "wall")
	var target, clogp, logp float64
	for _, r := range rows {
		fmt.Printf("%12v %14d %12v\n", r.Machine, r.Events, r.Wall.Round(1000000))
		switch r.Machine {
		case spasm.Target:
			target = float64(r.Events)
		case spasm.CLogP:
			clogp = float64(r.Events)
		case spasm.LogP:
			logp = float64(r.Events)
		}
	}
	if target > 0 {
		fmt.Printf("event ratio: clogp/target = %.2f, logp/target = %.2f\n",
			clogp/target, logp/target)
	}
	fmt.Println()
	return nil
}

// printFidelity runs the network-fidelity comparison: every suite
// application on the flow, LogP, and detailed tiers at the largest
// sweep point, reporting each abstraction's execution-time error and
// the flow tier's model-event reduction.
func printFidelity(s *spasm.Session, topo string, procs []int) error {
	p := procs[len(procs)-1]
	rows, err := s.FidelityStudy(topo, p)
	if err != nil {
		return err
	}
	fmt.Printf("network fidelity — flow vs logp vs detailed on %s at p=%d:\n", topo, p)
	fmt.Printf("%10s %12s %12s %12s %9s %9s %10s\n",
		"app", "target_us", "flow_us", "logp_us", "flow_err", "logp_err", "evt_ratio")
	for _, r := range rows {
		fmt.Printf("%10s %12.1f %12.1f %12.1f %8.1f%% %8.1f%% %9.1fx\n",
			r.App, r.TargetUS, r.FlowUS, r.LogPUS, r.FlowErrPct, r.LogPErrPct, r.EventRatio)
	}
	fmt.Println()
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
