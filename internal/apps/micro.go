package apps

import (
	"fmt"

	"spasm/internal/app"
	"spasm/internal/mem"
)

// Synthetic microbenchmark workloads with precisely controllable
// communication patterns.  They are not part of the paper's five-app
// suite (and are deliberately not in the registry, so suite-wide
// experiments are unaffected); they exist to validate the network models
// against known traffic — uniform random (the assumption behind the
// analytical models of Agarwal and Dally that the paper's section 2
// contrasts with simulation), hot-spot (where those models break), and
// nearest-neighbour (maximum communication locality, the g parameter's
// worst case).

// Pattern selects a microbenchmark traffic pattern.
type Pattern int

const (
	// UniformPattern: every reference targets a uniformly random
	// element of the shared array (any node, including self).
	UniformPattern Pattern = iota
	// HotSpotPattern: a fraction of references target one hot block;
	// the rest are uniform.
	HotSpotPattern
	// NeighborPattern: every reference targets the ID-adjacent
	// processor's partition.
	NeighborPattern
)

func (p Pattern) String() string {
	switch p {
	case UniformPattern:
		return "uniform"
	case HotSpotPattern:
		return "hotspot"
	case NeighborPattern:
		return "neighbor"
	}
	return fmt.Sprintf("Pattern(%d)", int(p))
}

// Micro is a synthetic traffic generator.
type Micro struct {
	Pattern Pattern
	// Refs is the number of references each processor issues.
	Refs int
	// Think is the compute time in cycles between references,
	// controlling offered load.
	Think int64
	// WritePct is the percentage of references that are writes.
	WritePct int
	// HotPct is the percentage of references hitting the hot block
	// (HotSpotPattern only).
	HotPct int
	// Stride spaces consecutive targets (block units) so each
	// reference misses; 0 means random (pattern-dependent).
	Seed int64

	arr    *mem.Array
	hot    *mem.Array
	issued []int
}

// NewMicro returns a microbenchmark at a reasonable default size.
func NewMicro(pattern Pattern, refs int, think int64, seed int64) *Micro {
	return &Micro{
		Pattern:  pattern,
		Refs:     refs,
		Think:    think,
		WritePct: 20,
		HotPct:   25,
		Seed:     seed,
	}
}

// Name implements app.Program.
func (m *Micro) Name() string { return "micro-" + m.Pattern.String() }

// Setup allocates a large blocked array (so partition owners are
// meaningful) and the hot block.
func (m *Micro) Setup(c *app.Ctx) {
	// 512 blocks per node, 4 elements per block: large enough that
	// random references rarely hit in a 64 KB cache.
	m.arr = c.Space.Alloc("micro.data", c.P*2048, 8, mem.Blocked)
	m.hot = c.Space.AllocAt("micro.hot", 4, 8, 0)
	m.issued = make([]int, c.P)
}

// Body implements app.Program.
func (m *Micro) Body(p *app.Proc) {
	rng := newRng(m.Seed*1000 + int64(p.ID))
	defer putRng(rng)
	P := p.Ctx.P
	for i := 0; i < m.Refs; i++ {
		p.Compute(m.Think)
		var addr mem.Addr
		switch {
		case m.Pattern == HotSpotPattern && rng.Intn(100) < m.HotPct:
			addr = m.hot.At(rng.Intn(m.hot.N))
		case m.Pattern == NeighborPattern:
			lo, hi := m.arr.OwnerRange((p.ID + 1) % P)
			addr = m.arr.At(lo + rng.Intn(hi-lo))
		default:
			addr = m.arr.At(rng.Intn(m.arr.N))
		}
		if rng.Intn(100) < m.WritePct {
			p.Write(addr)
		} else {
			p.Read(addr)
		}
		m.issued[p.ID]++
	}
}

// Check verifies every processor issued its quota.
func (m *Micro) Check() error {
	for id, n := range m.issued {
		if n != m.Refs {
			return fmt.Errorf("micro: processor %d issued %d of %d references", id, n, m.Refs)
		}
	}
	return nil
}
