package network

import (
	"math/rand"
	"testing"
	"testing/quick"
)

var sizes = []int{2, 4, 8, 16, 32, 64}

func topologies(p int) []Topology {
	return []Topology{NewFull(p), NewCube(p), NewMesh(p)}
}

// routeIsValid checks that a route's links connect src to dst link by link.
func routeIsValid(t *testing.T, topo Topology, src, dst int) {
	t.Helper()
	route := topo.Route(src, dst)
	if len(route) != topo.Hops(src, dst) {
		t.Fatalf("%s(%d): route %d->%d has %d links, Hops says %d",
			topo.Name(), topo.P(), src, dst, len(route), topo.Hops(src, dst))
	}
	cur := src
	for _, l := range route {
		from, to := topo.LinkEnds(l)
		if from != cur {
			t.Fatalf("%s(%d): route %d->%d link %d starts at %d, expected %d",
				topo.Name(), topo.P(), src, dst, l, from, cur)
		}
		cur = to
	}
	if cur != dst {
		t.Fatalf("%s(%d): route %d->%d ends at %d", topo.Name(), topo.P(), src, dst, cur)
	}
}

func TestAllRoutesValid(t *testing.T) {
	for _, p := range sizes {
		for _, topo := range topologies(p) {
			for src := 0; src < p; src++ {
				for dst := 0; dst < p; dst++ {
					if src == dst {
						continue
					}
					routeIsValid(t, topo, src, dst)
				}
			}
		}
	}
}

func TestHopsWithinDiameter(t *testing.T) {
	for _, p := range sizes {
		for _, topo := range topologies(p) {
			maxSeen := 0
			for src := 0; src < p; src++ {
				for dst := 0; dst < p; dst++ {
					if src == dst {
						continue
					}
					h := topo.Hops(src, dst)
					if h < 1 || h > topo.Diameter() {
						t.Fatalf("%s(%d): hops(%d,%d) = %d, diameter %d",
							topo.Name(), p, src, dst, h, topo.Diameter())
					}
					if h > maxSeen {
						maxSeen = h
					}
				}
			}
			if maxSeen != topo.Diameter() {
				t.Errorf("%s(%d): max hops %d != diameter %d",
					topo.Name(), p, maxSeen, topo.Diameter())
			}
		}
	}
}

func TestFullProperties(t *testing.T) {
	f := NewFull(8)
	if f.Diameter() != 1 {
		t.Error("full diameter != 1")
	}
	if f.BisectionLinks() != 2*4*4 {
		t.Errorf("full(8) bisection = %d, want 32", f.BisectionLinks())
	}
	// distinct pairs use distinct links
	seen := map[int]bool{}
	for s := 0; s < 8; s++ {
		for d := 0; d < 8; d++ {
			if s == d {
				continue
			}
			r := f.Route(s, d)
			if len(r) != 1 || seen[r[0]] {
				t.Fatalf("full route %d->%d = %v reused", s, d, r)
			}
			seen[r[0]] = true
		}
	}
}

func TestCubeProperties(t *testing.T) {
	c := NewCube(16)
	if c.Dims() != 4 || c.Diameter() != 4 {
		t.Errorf("cube(16) dims=%d diameter=%d", c.Dims(), c.Diameter())
	}
	if c.BisectionLinks() != 16 {
		t.Errorf("cube(16) bisection = %d, want 16", c.BisectionLinks())
	}
	if c.Hops(0, 15) != 4 {
		t.Errorf("hops(0,15) = %d", c.Hops(0, 15))
	}
	if c.Hops(5, 4) != 1 {
		t.Errorf("hops(5,4) = %d", c.Hops(5, 4))
	}
	// e-cube: lowest differing dimension first
	r := c.Route(0, 6) // 0 -> 2 -> 6 fixing bit1 then bit2
	if len(r) != 2 {
		t.Fatalf("route(0,6) = %v", r)
	}
	_, mid := c.LinkEnds(r[0])
	if mid != 2 {
		t.Errorf("e-cube first hop to %d, want 2", mid)
	}
}

func TestMeshShapes(t *testing.T) {
	cases := []struct{ p, rows, cols int }{
		{2, 1, 2}, {4, 2, 2}, {8, 2, 4}, {16, 4, 4}, {32, 4, 8}, {64, 8, 8},
	}
	for _, c := range cases {
		m := NewMesh(c.p)
		if m.Rows() != c.rows || m.Cols() != c.cols {
			t.Errorf("mesh(%d) = %dx%d, want %dx%d", c.p, m.Rows(), m.Cols(), c.rows, c.cols)
		}
		if got := m.BisectionLinks(); got != 2*c.rows {
			t.Errorf("mesh(%d) bisection = %d, want %d", c.p, got, 2*c.rows)
		}
		if got := m.Diameter(); got != c.rows+c.cols-2 {
			t.Errorf("mesh(%d) diameter = %d", c.p, got)
		}
	}
}

func TestMeshXYRouting(t *testing.T) {
	m := NewMesh(16) // 4x4
	// 0 (0,0) -> 15 (3,3): east 3 then south 3
	r := m.Route(0, 15)
	if len(r) != 6 {
		t.Fatalf("route(0,15) len %d", len(r))
	}
	for i := 0; i < 3; i++ {
		if r[i]%4 != east {
			t.Errorf("hop %d not east", i)
		}
	}
	for i := 3; i < 6; i++ {
		if r[i]%4 != south {
			t.Errorf("hop %d not south", i)
		}
	}
}

func TestMeshCornerDegrees(t *testing.T) {
	m := NewMesh(16)
	// Corner node 0 should only have east and south outgoing links that
	// stay in the mesh; LinkEnds must panic on the others.
	mustPanicT(t, func() { m.LinkEnds(0*4 + west) })
	mustPanicT(t, func() { m.LinkEnds(0*4 + north) })
	if from, to := m.LinkEnds(0*4 + east); from != 0 || to != 1 {
		t.Errorf("east link of 0 = %d->%d", from, to)
	}
	if from, to := m.LinkEnds(0*4 + south); from != 0 || to != 4 {
		t.Errorf("south link of 0 = %d->%d", from, to)
	}
}

func TestNewByName(t *testing.T) {
	for _, name := range []string{"full", "cube", "mesh"} {
		topo, err := New(name, 8)
		if err != nil || topo.Name() != name {
			t.Errorf("New(%q) = %v, %v", name, topo, err)
		}
	}
	if _, err := New("omega", 8); err == nil {
		t.Error("New(omega) should fail")
	}
}

func TestBadPPanics(t *testing.T) {
	for _, p := range []int{0, 1, 3, 6, 100} {
		mustPanicT(t, func() { NewFull(p) })
		mustPanicT(t, func() { NewCube(p) })
		mustPanicT(t, func() { NewMesh(p) })
	}
}

func TestRouteSelfPanics(t *testing.T) {
	for _, topo := range topologies(8) {
		topo := topo
		mustPanicT(t, func() { topo.Route(3, 3) })
		mustPanicT(t, func() { topo.Route(-1, 3) })
		mustPanicT(t, func() { topo.Route(0, 8) })
	}
}

// Property: routes obey the triangle equality for dimension-ordered
// routing — hops(s,d) equals the coordinate distance, and every link id
// on any route is within NumLinks.
func TestRouteProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := sizes[rng.Intn(len(sizes))]
		for _, topo := range topologies(p) {
			src := rng.Intn(p)
			dst := rng.Intn(p)
			if src == dst {
				continue
			}
			for _, l := range topo.Route(src, dst) {
				if l < 0 || l >= topo.NumLinks() {
					return false
				}
				from, to := topo.LinkEnds(l)
				if from == to {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func mustPanicT(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}
