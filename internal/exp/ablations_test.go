package exp

import (
	"testing"

	"spasm/internal/apps"
	"spasm/internal/mem"
)

func TestTraceDrivenStudyRuns(t *testing.T) {
	rows, err := TraceDrivenStudy(apps.Tiny, 1, "full", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Events == 0 || r.ExecDriven <= 0 || r.TraceDriven <= 0 {
			t.Errorf("%s: degenerate row %+v", r.App, r)
		}
	}
}

func TestExtendedAppStudyMG(t *testing.T) {
	rows, err := ExtendedAppStudy("mg", apps.Tiny, 1, "cube", []int{4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.TargetExec <= 0 || r.CLogPExec <= 0 || r.LogPExec <= 0 {
			t.Errorf("p=%d: degenerate row %+v", r.P, r)
		}
		// The paper's accuracy result must extend to the hierarchical
		// workload: CLogP latency within a small factor of the target,
		// and LogP slower than CLogP (locality matters here too).
		if r.CLogPLatencyRatio < 0.5 || r.CLogPLatencyRatio > 4 {
			t.Errorf("p=%d: CLogP latency ratio %.2f outside [0.5, 4]", r.P, r.CLogPLatencyRatio)
		}
		if r.LogPExec <= r.CLogPExec {
			t.Errorf("p=%d: LogP exec %.0f not above CLogP %.0f", r.P, r.LogPExec, r.CLogPExec)
		}
	}
}

func TestTopologyStudy(t *testing.T) {
	rows, err := TopologyStudy("is", apps.Tiny, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	byTopo := map[string]TopologyRow{}
	for _, r := range rows {
		if r.TargetExec <= 0 || r.CLogPExec <= 0 || r.G <= 0 {
			t.Errorf("%s: degenerate row %+v", r.Topology, r)
		}
		byTopo[r.Topology] = r
	}
	// The paper's connectivity argument, extended: the full network's
	// abstraction ratio is the best of the five.
	for _, topo := range []string{"cube", "mesh", "ring", "torus"} {
		if byTopo["full"].Ratio > byTopo[topo].Ratio {
			t.Errorf("full ratio %.2f above %s ratio %.2f",
				byTopo["full"].Ratio, topo, byTopo[topo].Ratio)
		}
	}
}

func TestPlacementStudy(t *testing.T) {
	rows, err := PlacementStudy(apps.Tiny, 1, "cube", 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	blocked, inter := rows[0], rows[1]
	if blocked.Placement != mem.Blocked || inter.Placement != mem.Interleaved {
		t.Fatalf("row order %v %v", blocked.Placement, inter.Placement)
	}
	// Destroying the data-partition alignment must increase the
	// network traffic (latency overhead tracks message count).
	if inter.Latency <= blocked.Latency {
		t.Errorf("interleaved latency %.0f not above blocked %.0f",
			inter.Latency, blocked.Latency)
	}
	if inter.TargetExec <= blocked.TargetExec {
		t.Errorf("interleaved exec %.0f not above blocked %.0f",
			inter.TargetExec, blocked.TargetExec)
	}
}

func TestDegradedLinkStudy(t *testing.T) {
	rows, err := DegradedLinkStudy("fft", apps.Tiny, 1, 16, []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	healthy, degraded := rows[0], rows[1]
	// The detailed simulation must slow down behind the degraded link.
	if degraded.TargetExec <= healthy.TargetExec {
		t.Errorf("degraded link invisible to target: %.0f vs %.0f",
			degraded.TargetExec, healthy.TargetExec)
	}
	// The abstraction is structurally blind to a single slow link.
	if degraded.CLogPExec != healthy.CLogPExec {
		t.Errorf("abstraction changed without link information: %.0f vs %.0f",
			degraded.CLogPExec, healthy.CLogPExec)
	}
}

func TestTechnologyStudy(t *testing.T) {
	rows, err := TechnologyStudy("is", apps.Tiny, 1, "mesh", 8, []float64{20, 80, 320})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// Faster links => faster execution on both machines.
	for i := 1; i < len(rows); i++ {
		if rows[i].TargetExec >= rows[i-1].TargetExec {
			t.Errorf("target exec did not improve: %.0f -> %.0f at %g MB/s",
				rows[i-1].TargetExec, rows[i].TargetExec, rows[i].LinkMBps)
		}
		if rows[i].CLogPExec >= rows[i-1].CLogPExec {
			t.Errorf("clogp exec did not improve: %.0f -> %.0f at %g MB/s",
				rows[i-1].CLogPExec, rows[i].CLogPExec, rows[i].LinkMBps)
		}
	}
	// As network overheads shrink, the abstraction converges on the
	// target (ratio moves toward 1).
	first, last := rows[0].Ratio, rows[len(rows)-1].Ratio
	if dist(first) < dist(last) {
		t.Errorf("abstraction did not converge: ratio %.2f -> %.2f", first, last)
	}
}

func dist(r float64) float64 {
	if r < 1 {
		return 1 - r
	}
	return r - 1
}

func TestBandwidthStudy(t *testing.T) {
	rows, err := BandwidthStudy(apps.Tiny, 1, "full", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	byApp := map[string]BandwidthRow{}
	for _, r := range rows {
		if r.PerProcMBps < 0 || r.TargetMBps <= 0 {
			t.Errorf("%s: degenerate row %+v", r.App, r)
		}
		// The target carries coherence traffic on top of the true
		// communication, so its demand is at least comparable.
		if r.TargetMBps < r.PerProcMBps/4 {
			t.Errorf("%s: target demand %.2f far below true demand %.2f",
				r.App, r.TargetMBps, r.PerProcMBps)
		}
		byApp[r.App] = r
	}
	// EP must be the least bandwidth-hungry application in the suite.
	for _, other := range []string{"is", "cg", "fft", "cholesky"} {
		if byApp["ep"].PerProcMBps >= byApp[other].PerProcMBps {
			t.Errorf("ep demand %.3f not below %s demand %.3f",
				byApp["ep"].PerProcMBps, other, byApp[other].PerProcMBps)
		}
	}
}

func TestProtocolComparisonInsensitivity(t *testing.T) {
	rows, err := ProtocolComparison(apps.Tiny, 1, "full", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Berkeley <= 0 || r.MSI <= 0 || r.CLogP <= 0 {
			t.Errorf("%s: non-positive exec times %+v", r.App, r)
		}
		// The paper's claim (via Wood et al.): performance is not
		// very sensitive to the protocol.  Allow a generous band.
		ratio := r.MSI / r.Berkeley
		if ratio < 0.5 || ratio > 2.0 {
			t.Errorf("%s: MSI/Berkeley exec ratio %.2f outside [0.5, 2.0]", r.App, ratio)
		}
		if r.BerkeleyMsgs == 0 || r.MSIMsgs == 0 {
			t.Errorf("%s: zero traffic recorded", r.App)
		}
	}
}

func TestCacheSweepMissRateMonotone(t *testing.T) {
	rows, err := CacheSweep("cg", apps.Tiny, 1, "full", 4, []int{1, 4, 16, 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	// Miss rate must not increase with cache size (modulo tiny
	// timing-dependent sync noise; allow 5% slack).
	for i := 1; i < len(rows); i++ {
		if rows[i].MissRate > rows[i-1].MissRate*1.05 {
			t.Errorf("miss rate rose with cache size: %dKB %.4f -> %dKB %.4f",
				rows[i-1].SizeKB, rows[i-1].MissRate, rows[i].SizeKB, rows[i].MissRate)
		}
	}
	// A 1 KB cache must miss more than a 64 KB cache on CG.
	if rows[0].MissRate <= rows[len(rows)-1].MissRate {
		t.Errorf("no working-set effect: %.4f vs %.4f", rows[0].MissRate, rows[len(rows)-1].MissRate)
	}
}

func TestAdaptiveGapBetweenStaticAndZero(t *testing.T) {
	// EP on the mesh is the paper's worst case for the static g.  The
	// adaptive estimate must not exceed the static one, and should be
	// strictly below it once communication locality exists.
	rows, err := AdaptiveGapStudy("ep", apps.Tiny, 1, "mesh", []int{8, 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Adaptive > r.Static*1.01 {
			t.Errorf("p=%d: adaptive contention %.0f above static %.0f", r.P, r.Adaptive, r.Static)
		}
	}
	last := rows[len(rows)-1]
	if last.Adaptive >= last.Static {
		t.Errorf("adaptive g recovered no locality: %.0f vs %.0f", last.Adaptive, last.Static)
	}
}

func TestEffectiveLSeparatesCounteractingEffects(t *testing.T) {
	// Section 6.1 identifies two counteracting effects in L: pessimism
	// from pricing every message at 32 bytes, and optimism from not
	// carrying coherence traffic.  Deriving L from the target's
	// measured mean message size removes the first effect, so the
	// CLogP latency must drop below the fixed-L value — and, with the
	// size pessimism gone, the remaining difference from the target is
	// the coherence-traffic optimism (CLogP at or below the target).
	rows, err := EffectiveLStudy("fft", apps.Tiny, 1, "full", []int{8})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.MeanMsgBytes <= 0 || r.MeanMsgBytes > 32 {
		t.Errorf("mean message bytes = %.1f", r.MeanMsgBytes)
	}
	if r.EffLatency >= r.L32Latency {
		t.Errorf("effective L %.0f did not reduce the fixed-L latency %.0f",
			r.EffLatency, r.L32Latency)
	}
	if r.L32Latency <= r.TargetLatency {
		t.Errorf("fixed 32-byte L not pessimistic: %.0f vs target %.0f",
			r.L32Latency, r.TargetLatency)
	}
	if r.EffLatency > r.TargetLatency*1.05 {
		t.Errorf("size-corrected L still above target: %.0f vs %.0f",
			r.EffLatency, r.TargetLatency)
	}
}
