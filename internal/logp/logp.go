// Package logp implements the network abstraction of Culler et al.'s
// LogP model as the paper uses it: every message incurs a fixed latency
// L, and each processor may perform at most one network event (send or
// receive) every g time units, where g is derived from the per-processor
// bisection bandwidth of the network being abstracted.
//
// The o (overhead) parameter is insignificant on a shared-memory platform
// where messaging happens in hardware, and is omitted, following the
// paper.  The P parameter is carried by the machine configuration.
//
// Two gap-accounting disciplines are provided:
//
//   - Combined (the LogP definition): sends and receives at a node share
//     one port, so even a send immediately following a receive must wait
//     g.  The paper identifies this as a source of pessimism.
//   - PerClass (the paper's §7 ablation): the g gap is enforced only
//     between *identical* communication events — sends gap against
//     sends, receives against receives — which the authors found brings
//     the contention estimate much closer to the real network.
package logp

import (
	"fmt"

	"spasm/internal/network"
	"spasm/internal/sim"
)

// DefaultL is the paper's L parameter: the transmission time of a
// maximum-size 32-byte message on a 20 MB/s link, 1.6 microseconds.
const DefaultL = sim.Time(32) * sim.SerialByte

// PortMode selects the gap-accounting discipline.
type PortMode int

const (
	// Combined enforces g between any two network events at a node
	// (the strict LogP definition).
	Combined PortMode = iota
	// PerClass enforces g separately between sends and between
	// receives (the §7 ablation).
	PerClass
)

func (m PortMode) String() string {
	switch m {
	case Combined:
		return "combined"
	case PerClass:
		return "per-class"
	}
	return fmt.Sprintf("PortMode(%d)", int(m))
}

// GapFor computes the paper's g parameter for a topology: the time per
// maximum-size message divided by the per-processor share of the
// bisection bandwidth.  With the paper's constants this yields
// 3.2/p us (full), 1.6 us (cube) and 0.8*cols us (mesh).
func GapFor(t network.Topology, msgBytes int, byteTime sim.Time) sim.Time {
	msg := sim.Time(msgBytes) * byteTime
	return msg * sim.Time(t.P()) / sim.Time(t.BisectionLinks())
}

// Net is a LogP-abstracted network over P nodes.
type Net struct {
	L    sim.Time
	G    sim.Time
	Mode PortMode

	// Crosses, when non-nil, enables the history-based adaptive g the
	// paper proposes in section 7: g is derived from bisection
	// bandwidth under the assumption that *every* message crosses the
	// bisection, so the effective gap is scaled by the observed
	// fraction of traffic that actually does.  The predicate reports
	// whether a src->dst message crosses the bisection of the
	// topology g was derived from.
	Crosses func(src, dst int) bool

	// Port state, allocated by Mode: Combined uses the single last
	// array, PerClass the send/receive pair.  Allocating only what the
	// mode gates keeps the per-node footprint flat at large P (one port
	// array at 1024 nodes instead of three).
	p        int
	last     []sim.Time // Combined: last network event per node
	lastSend []sim.Time // PerClass ports
	lastRecv []sim.Time

	// Messages counts every message carried; Crossing counts those
	// that crossed the bisection (adaptive mode only).
	Messages uint64
	Crossing uint64

	// Observer, when non-nil, is invoked from Message for every message
	// the abstract network carries, with the requested departure time
	// and the resulting schedule.
	Observer func(now sim.Time, x Xmit, src, dst int)
}

// New returns a LogP network over p nodes with the given parameters.
func New(p int, l, g sim.Time, mode PortMode) *Net {
	if p < 1 {
		panic("logp: p < 1")
	}
	if l < 0 || g < 0 {
		panic("logp: negative L or g")
	}
	n := &Net{L: l, G: g, Mode: mode, p: p}
	if mode == Combined {
		n.last = make([]sim.Time, p)
	} else {
		n.lastSend = make([]sim.Time, p)
		n.lastRecv = make([]sim.Time, p)
	}
	n.stampPorts()
	return n
}

// stampPorts allows the first event at each node to happen at time zero.
func (n *Net) stampPorts() {
	for i := range n.last {
		n.last[i] = -n.G
	}
	for i := range n.lastSend {
		n.lastSend[i] = -n.G
		n.lastRecv[i] = -n.G
	}
}

// P returns the number of nodes.
func (n *Net) P() int { return n.p }

// Reset returns the net to its post-New state in place: every port slot
// re-stamped to -g (so the first event at each node may again happen at
// time zero), traffic counters zeroed, and no Observer.  L, G, Mode, and
// the Crosses predicate are configuration — derived from the machine
// and topology the pooled context is keyed by — and are left alone.
func (n *Net) Reset() {
	n.stampPorts()
	n.Messages = 0
	n.Crossing = 0
	n.Observer = nil
}

// adaptiveWarmup is how many messages the adaptive estimator observes
// before trusting its locality history.
const adaptiveWarmup = 32

// effectiveG returns the gap currently in force: the static g, or — in
// adaptive mode, once warmed up — g scaled by the observed fraction of
// bisection-crossing traffic.
func (n *Net) effectiveG() sim.Time {
	if n.Crosses == nil || n.Messages < adaptiveWarmup {
		return n.G
	}
	return sim.Time(uint64(n.G) * n.Crossing / n.Messages)
}

// gate returns the earliest time >= at that node may perform an event of
// the given class, and records the event.
func (n *Net) gate(node int, send bool, at, g sim.Time) sim.Time {
	var slot *sim.Time
	switch {
	case n.Mode == Combined:
		slot = &n.last[node]
	case send:
		slot = &n.lastSend[node]
	default:
		slot = &n.lastRecv[node]
	}
	ready := *slot + g
	if at > ready {
		ready = at
	}
	*slot = ready
	return ready
}

// Xmit describes one message on the abstract network.
type Xmit struct {
	SendAt  sim.Time // when the source's port admitted the send
	Arrive  sim.Time // SendAt + L
	Deliver sim.Time // when the destination's port admitted the receive
	// Latency is the contention-free component, always L.
	Latency sim.Time
	// Wait is the gap-induced stall at both endpoints; it is charged
	// to the contention overhead.
	Wait sim.Time
}

// Message transfers one message from src to dst, departing no earlier
// than now, and returns its schedule.  It does not block any process;
// callers advance their process to Deliver (or compose further legs).
func (n *Net) Message(now sim.Time, src, dst int) Xmit {
	if src == dst {
		panic(fmt.Sprintf("logp: message to self at node %d", src))
	}
	g := n.effectiveG()
	sendAt := n.gate(src, true, now, g)
	arrive := sendAt + n.L
	deliver := n.gate(dst, false, arrive, g)
	n.Messages++
	if n.Crosses != nil && n.Crosses(src, dst) {
		n.Crossing++
	}
	x := Xmit{
		SendAt:  sendAt,
		Arrive:  arrive,
		Deliver: deliver,
		Latency: n.L,
		Wait:    (sendAt - now) + (deliver - arrive),
	}
	if n.Observer != nil {
		n.Observer(now, x, src, dst)
	}
	return x
}
