// Command gparam prints the LogP g parameter the paper derives from
// per-processor bisection bandwidth for each network topology, and shows
// the closed forms (3.2/p us on full, 1.6 us on cube, 0.8*columns us on
// the mesh).
package main

import (
	"flag"
	"fmt"
	"os"

	"spasm"
)

func main() {
	procsStr := flag.String("procs", "2,4,8,16,32,64", "processor counts")
	flag.Parse()

	procs, err := spasm.ParseProcs(*procsStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gparam:", err)
		os.Exit(1)
	}

	fmt.Println("LogP g parameter (us) from per-processor bisection bandwidth")
	fmt.Println("L = 1.6 us for all topologies (32-byte message at 20 MB/s)")
	fmt.Println()
	fmt.Printf("%6s", "p")
	for _, topo := range []string{"full", "cube", "mesh"} {
		fmt.Printf(" %10s", topo)
	}
	fmt.Println()
	rows := spasm.GapTable(procs)
	byP := map[int]map[string]float64{}
	for _, r := range rows {
		if byP[r.P] == nil {
			byP[r.P] = map[string]float64{}
		}
		byP[r.P][r.Topology] = r.G.Micros()
	}
	for _, p := range procs {
		fmt.Printf("%6d", p)
		for _, topo := range []string{"full", "cube", "mesh"} {
			fmt.Printf(" %10.3f", byP[p][topo])
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("closed forms: g_full = 3.2/p, g_cube = 1.6, g_mesh = 0.8*columns")
}
