package trace

import (
	"bytes"
	"testing"

	"spasm/internal/app"
	"spasm/internal/apps"
	"spasm/internal/machine"
	"spasm/internal/mem"
	"spasm/internal/sim"
	"spasm/internal/stats"
)

// record runs an app on the given machine kind with a Recorder attached.
func record(t *testing.T, appName string, kind machine.Kind, p int) (*Trace, *app.Result) {
	t.Helper()
	prog, err := apps.New(appName, apps.Tiny, 1)
	if err != nil {
		t.Fatal(err)
	}
	var rec *Recorder
	res, err := app.RunWrapped(prog, machine.Config{Kind: kind, Topology: "full", P: p},
		func(m machine.Machine) machine.Machine {
			rec = NewRecorder(m)
			return rec
		})
	if err != nil {
		t.Fatal(err)
	}
	return rec.Trace(res.Space), res
}

func TestRecorderCapturesEveryReference(t *testing.T) {
	tr, res := record(t, "fft", machine.CLogP, 4)
	wantR := res.Stats.Count(func(q *stats.Proc) uint64 { return q.Reads })
	wantW := res.Stats.Count(func(q *stats.Proc) uint64 { return q.Writes })
	var gotR, gotW uint64
	for _, e := range tr.Events {
		if e.Write {
			gotW++
		} else {
			gotR++
		}
	}
	if gotR != wantR || gotW != wantW {
		t.Errorf("trace has %d/%d refs, run had %d/%d", gotR, gotW, wantR, wantW)
	}
}

func TestEventTimesMonotonePerProc(t *testing.T) {
	tr, _ := record(t, "is", machine.Target, 4)
	last := map[int32]sim.Time{}
	for _, e := range tr.Events {
		if e.At < last[e.Proc] {
			t.Fatalf("proc %d time went backwards: %v after %v", e.Proc, e.At, last[e.Proc])
		}
		last[e.Proc] = e.At
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	tr, _ := record(t, "ep", machine.CLogP, 4)
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.P != tr.P || len(got.Regions) != len(tr.Regions) || len(got.Events) != len(tr.Events) {
		t.Fatalf("header mismatch: %+v vs %+v", got, tr)
	}
	for i := range tr.Regions {
		if got.Regions[i] != tr.Regions[i] {
			t.Fatalf("region %d: %+v != %+v", i, got.Regions[i], tr.Regions[i])
		}
	}
	for i := range tr.Events {
		if got.Events[i] != tr.Events[i] {
			t.Fatalf("event %d: %+v != %+v", i, got.Events[i], tr.Events[i])
		}
	}
}

func TestReadFromRejectsGarbage(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("not a trace file at all......."))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Decode(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}

func TestDecodeRejectsEveryTruncation(t *testing.T) {
	tr, _ := record(t, "ep", machine.CLogP, 4)
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Every strict prefix must fail cleanly (no panic, no silent
	// short trace).  Stride to keep the test fast.
	for cut := 0; cut < len(full)-1; cut += 97 {
		if _, err := Decode(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d of %d accepted", cut, len(full))
		}
	}
}

func TestReplayReissuesAllEvents(t *testing.T) {
	tr, _ := record(t, "fft", machine.CLogP, 4)
	prog := Replay(tr)
	res, err := app.Run(prog, machine.Config{Kind: machine.CLogP, Topology: "full", P: 4})
	if err != nil {
		t.Fatal(err)
	}
	refs := res.Stats.Count(func(q *stats.Proc) uint64 { return q.Reads + q.Writes })
	if refs != uint64(len(tr.Events)) {
		t.Errorf("replay issued %d refs, trace has %d", refs, len(tr.Events))
	}
}

func TestReplayOnWrongPFails(t *testing.T) {
	tr, _ := record(t, "ep", machine.CLogP, 4)
	prog := Replay(tr)
	if _, err := app.Run(prog, machine.Config{Kind: machine.CLogP, Topology: "full", P: 8}); err == nil {
		t.Error("replay accepted wrong processor count")
	}
}

// TestTraceDrivenMatchesExecutionDrivenForStaticApp: for EP (static
// pattern) replaying the trace on the machine it was recorded on should
// produce a similar reference mix and a comparable execution time.
func TestTraceDrivenCloseForStaticApp(t *testing.T) {
	tr, orig := record(t, "ep", machine.CLogP, 4)
	res, err := app.Run(Replay(tr), machine.Config{Kind: machine.CLogP, Topology: "full", P: 4})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(res.Stats.Total) / float64(orig.Stats.Total)
	if ratio < 0.5 || ratio > 1.5 {
		t.Errorf("trace-driven exec %.0fus vs execution-driven %.0fus (ratio %.2f)",
			res.Stats.Total.Micros(), orig.Stats.Total.Micros(), ratio)
	}
}

func TestPerProcPreservesOrderAndCount(t *testing.T) {
	tr := &Trace{P: 2, Events: []Event{
		{Proc: 0, Addr: 1, At: 10},
		{Proc: 1, Addr: 2, At: 20},
		{Proc: 0, Addr: 3, At: 30},
	}}
	pp := tr.PerProc()
	if len(pp[0]) != 2 || len(pp[1]) != 1 {
		t.Fatalf("split %v", pp)
	}
	if pp[0][0].Addr != 1 || pp[0][1].Addr != 3 {
		t.Error("order not preserved")
	}
}

func TestEmptyTraceRoundTrip(t *testing.T) {
	tr := &Trace{P: 2, Regions: []Region{{Name: "x", N: 4, ElemSize: 8}}}
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil || len(got.Events) != 0 || got.P != 2 || len(got.Regions) != 1 {
		t.Errorf("empty round trip: %+v, %v", got, err)
	}
}

func TestReplayPreservesHoming(t *testing.T) {
	// The rebuilt space must home every recorded address identically,
	// so trace-driven runs see the same local/remote split.
	tr, orig := record(t, "is", machine.CLogP, 4)
	prog := Replay(tr)
	res, err := app.Run(prog, machine.Config{Kind: machine.CLogP, Topology: "full", P: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range tr.Events[:min(200, len(tr.Events))] {
		if orig.Space.Home(e.Addr) != res.Space.Home(e.Addr) {
			t.Fatalf("address %#x homed differently in replay", uint64(e.Addr))
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

var _ machine.Machine = (*Recorder)(nil)
var _ = mem.Addr(0)
