package network

import (
	"testing"

	"spasm/internal/sim"
)

// The fabric sits on the innermost simulation loop: every shared-memory
// miss and every message-passing send reserves a circuit.  These tests
// pin the zero-allocation property of that path so a regression (say, a
// route that escapes to the heap again) fails loudly instead of showing
// up as a 30% slowdown in a benchmark someone has to bisect.

func TestRouteZeroAllocs(t *testing.T) {
	const p = 64
	topos := []Topology{NewFull(p), NewCube(p), NewMesh(p), NewRing(p), NewTorus(p)}
	for _, topo := range topos {
		topo := topo
		t.Run(topo.Name(), func(t *testing.T) {
			var sink []int
			allocs := testing.AllocsPerRun(100, func() {
				for src := 0; src < p; src += 7 {
					for dst := 0; dst < p; dst += 5 {
						if src != dst {
							sink = topo.Route(src, dst)
						}
					}
				}
			})
			if allocs != 0 {
				t.Errorf("%s.Route allocates %.1f times per sweep; want 0", topo.Name(), allocs)
			}
			_ = sink
		})
	}
}

func TestReserveZeroAllocs(t *testing.T) {
	const p = 64
	for _, topo := range []Topology{NewFull(p), NewCube(p), NewMesh(p)} {
		topo := topo
		t.Run(topo.Name(), func(t *testing.T) {
			f := NewFabric(topo)
			now := sim.Time(0)
			allocs := testing.AllocsPerRun(100, func() {
				for src := 0; src < p; src += 7 {
					dst := (src + 13) % p
					x := f.Reserve(now, src, dst, 32)
					now = x.End
				}
			})
			if allocs != 0 {
				t.Errorf("Reserve on %s allocates %.1f times per sweep; want 0", topo.Name(), allocs)
			}
		})
	}
}

// TestReserveDegradedZeroAllocs covers the degraded-fabric path: the
// per-link factor array must not reintroduce allocations (the old
// map-based scan did not allocate either, but the array must stay that
// way as it evolves).
func TestReserveDegradedZeroAllocs(t *testing.T) {
	const p = 16
	topo := NewMesh(p)
	f := NewFabric(topo)
	f.Degrade(0, 4)
	now := sim.Time(0)
	allocs := testing.AllocsPerRun(100, func() {
		for src := 0; src < p; src++ {
			dst := (src + 3) % p
			x := f.Reserve(now, src, dst, 32)
			now = x.End
		}
	})
	if allocs != 0 {
		t.Errorf("Reserve on degraded fabric allocates %.1f times per sweep; want 0", allocs)
	}
}

// TestRouteTableMatchesCompute cross-checks every precomputed route
// against the compute-on-demand form it was built from, for all
// topologies at several sizes.
func TestRouteTableMatchesCompute(t *testing.T) {
	for _, p := range []int{2, 4, 8, 16, 64} {
		topos := []Topology{NewFull(p), NewCube(p), NewMesh(p), NewRing(p), NewTorus(p)}
		for _, topo := range topos {
			compute := topo.AppendRoute
			for src := 0; src < p; src++ {
				for dst := 0; dst < p; dst++ {
					if src == dst {
						continue
					}
					got := topo.Route(src, dst)
					want := compute(nil, src, dst)
					if len(got) != len(want) {
						t.Fatalf("%s(%d) route %d->%d: table %v != compute %v",
							topo.Name(), p, src, dst, got, want)
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("%s(%d) route %d->%d: table %v != compute %v",
								topo.Name(), p, src, dst, got, want)
						}
					}
				}
			}
		}
	}
}

// TestRouteTableAppendSafe verifies the cap-clipping contract: a caller
// that appends to a returned route must get a copy, not clobber the
// neighbouring route in the shared arena.
func TestRouteTableAppendSafe(t *testing.T) {
	m := NewMesh(16)
	r1 := m.Route(0, 5)
	neighbour := append([]int(nil), m.Route(0, 6)...)
	_ = append(r1, -1) // must copy, not write into the arena
	got := m.Route(0, 6)
	for i := range neighbour {
		if got[i] != neighbour[i] {
			t.Fatalf("append to route 0->5 clobbered route 0->6: %v != %v", got, neighbour)
		}
	}
}
