// Command trace records, inspects and replays shared-memory reference
// traces — the trace-driven counterpart to the simulator's native
// execution-driven mode.
//
//	trace record -app fft -machine clogp -topo full -p 8 -o fft.trace
//	trace info fft.trace
//	trace replay -machine target -topo mesh fft.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"spasm"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "info":
		info(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: trace record|info|replay [flags] [file]")
	os.Exit(2)
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	appName := fs.String("app", "fft", "application to record")
	machStr := fs.String("machine", "clogp", "machine to record on")
	topo := fs.String("topo", "full", "topology")
	p := fs.Int("p", 8, "processors")
	scale := fs.String("scale", "tiny", "problem scale")
	seed := fs.Int64("seed", 1, "input seed")
	out := fs.String("o", "app.trace", "output file")
	_ = fs.Parse(args)

	kind := mustKind(*machStr)
	sc := mustScale(*scale)
	tr, res, err := spasm.RecordTrace(*appName, sc, *seed, spasm.Config{
		Kind: kind, Topology: *topo, P: *p,
	})
	if err != nil {
		fail(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	if err := tr.Encode(f); err != nil {
		fail(err)
	}
	fmt.Printf("recorded %d events (%d regions) from %s on %v/%s p=%d -> %s\n",
		len(tr.Events), len(tr.Regions), *appName, kind, *topo, *p, *out)
	fmt.Printf("execution-driven time on the recording machine: %.1f us\n",
		res.Stats.Total.Micros())
}

func info(args []string) {
	if len(args) != 1 {
		usage()
	}
	tr := mustLoad(args[0])
	reads, writes := 0, 0
	for _, e := range tr.Events {
		if e.Write {
			writes++
		} else {
			reads++
		}
	}
	fmt.Printf("%s: p=%d, %d regions, %d events (%d reads, %d writes)\n",
		args[0], tr.P, len(tr.Regions), len(tr.Events), reads, writes)
	for _, r := range tr.Regions {
		fmt.Printf("  region %-16s n=%-8d elem=%dB policy=%v base=%#x\n",
			r.Name, r.N, r.ElemSize, r.Policy, uint64(r.Base))
	}
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	machStr := fs.String("machine", "target", "machine to replay on")
	topo := fs.String("topo", "full", "topology")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	tr := mustLoad(fs.Arg(0))
	kind := mustKind(*machStr)
	res, err := spasm.ReplayTrace(tr, spasm.Config{Kind: kind, Topology: *topo, P: tr.P})
	if err != nil {
		fail(err)
	}
	r := res.Stats
	fmt.Printf("trace-driven replay on %v/%s p=%d:\n", kind, *topo, tr.P)
	fmt.Printf("  execution time : %12.1f us\n", r.Total.Micros())
	fmt.Printf("  latency        : %12.1f us\n", r.Sum(spasm.Latency).Micros())
	fmt.Printf("  contention     : %12.1f us\n", r.Sum(spasm.Contention).Micros())
	fmt.Printf("  messages       : %12d\n", r.Messages())
}

func mustLoad(path string) *spasm.Trace {
	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	tr, err := spasm.DecodeTrace(f)
	if err != nil {
		fail(err)
	}
	return tr
}

func mustKind(s string) spasm.Kind {
	k, err := spasm.ParseKind(s)
	if err != nil {
		fail(err)
	}
	return k
}

func mustScale(s string) spasm.Scale {
	sc, err := spasm.ParseScale(s)
	if err != nil {
		fail(err)
	}
	return sc
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "trace:", err)
	os.Exit(1)
}
