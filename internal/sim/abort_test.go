package sim

import (
	"errors"
	"runtime"
	"testing"
	"time"
)

// allTerminated reports whether every process spawned on e has unwound.
func allTerminated(e *Engine) bool {
	for _, p := range e.procs {
		if !p.terminated {
			return false
		}
	}
	return true
}

// settleGoroutines waits for the goroutine count to come back to (near)
// base — process goroutines exit asynchronously after Run returns, so
// leak checks must allow the scheduler a moment.
func settleGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutine leak: %d live, want <= %d\n%s", runtime.NumGoroutine(), base, buf[:n])
}

// TestInterruptAbortsAndUnwinds: an interrupted run returns *AbortError,
// and every process goroutine — spinners with queued events and parked
// waiters alike — unwinds and exits.
func TestInterruptAbortsAndUnwinds(t *testing.T) {
	base := runtime.NumGoroutine()
	e := NewEngine()
	var q Queue
	for i := 0; i < 4; i++ {
		e.Spawn("spinner", func(p *Proc) {
			for {
				p.Hold(100)
			}
		})
	}
	for i := 0; i < 4; i++ {
		e.Spawn("waiter", func(p *Proc) { q.Wait(p) })
	}
	e.Interrupt()
	err := e.Run()
	var ab *AbortError
	if !errors.As(err, &ab) {
		t.Fatalf("want AbortError, got %v", err)
	}
	if !allTerminated(e) {
		t.Fatal("interrupted run left live processes")
	}
	settleGoroutines(t, base)
}

// TestInterruptConcurrentWithRun aborts from another goroutine while the
// run is in full flight — the production shape (a watchdog timer firing
// mid-simulation).
func TestInterruptConcurrentWithRun(t *testing.T) {
	base := runtime.NumGoroutine()
	e := NewEngine()
	for i := 0; i < 8; i++ {
		e.Spawn("spinner", func(p *Proc) {
			for {
				p.Hold(10)
			}
		})
	}
	go func() {
		time.Sleep(time.Millisecond)
		e.Interrupt()
	}()
	err := e.Run()
	var ab *AbortError
	if !errors.As(err, &ab) {
		t.Fatalf("want AbortError, got %v", err)
	}
	if !allTerminated(e) {
		t.Fatal("interrupted run left live processes")
	}
	settleGoroutines(t, base+1) // the interrupter itself may still be exiting
}

// TestDeadlockUnwindsGoroutines: a deadlocked run still reports
// *DeadlockError with the blocked-process list captured at detection,
// but its goroutines no longer stay parked forever.
func TestDeadlockUnwindsGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	e := NewEngine()
	var q Queue
	e.Spawn("stuck-a", func(p *Proc) { q.Wait(p) })
	e.Spawn("stuck-b", func(p *Proc) { q.Wait(p) })
	err := e.Run()
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("want DeadlockError, got %v", err)
	}
	if len(dl.Procs) != 2 {
		t.Fatalf("deadlock procs = %v, want both", dl.Procs)
	}
	if !allTerminated(e) {
		t.Fatal("deadlocked run left live processes")
	}
	settleGoroutines(t, base)
}

// TestPanicUnwindsGoroutines: a process panic fails the run with the
// panic error, and the surviving processes (parked and scheduled) are
// unwound rather than abandoned.
func TestPanicUnwindsGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	e := NewEngine()
	var q Queue
	e.Spawn("parked", func(p *Proc) { q.Wait(p) })
	e.Spawn("sleeper", func(p *Proc) { p.Hold(1e6) })
	e.Spawn("boom", func(p *Proc) {
		p.Hold(10)
		panic("kaboom")
	})
	err := e.Run()
	if err == nil || !allTerminated(e) {
		t.Fatalf("err=%v terminated=%v, want panic error with all processes unwound", err, allTerminated(e))
	}
	settleGoroutines(t, base)
}

// TestMaxTimeUnwindsGoroutines: the simulated-time watchdog keeps its
// *TimeLimitError identity and now also unwinds the runaway processes.
func TestMaxTimeUnwindsGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	e := NewEngine()
	e.MaxTime = 1000
	var q Queue
	e.Spawn("parked", func(p *Proc) { q.Wait(p) })
	e.Spawn("spinner", func(p *Proc) {
		for {
			p.Hold(100)
		}
	})
	err := e.Run()
	var tl *TimeLimitError
	if !errors.As(err, &tl) {
		t.Fatalf("want TimeLimitError, got %v", err)
	}
	if !allTerminated(e) {
		t.Fatal("timed-out run left live processes")
	}
	settleGoroutines(t, base)
}

// TestAbortSurvivesCleanupWakes: deferred cleanup in unwinding
// application frames (the lock-release idiom) may Wake peers the abort
// has already resumed; the run must still report *AbortError — the
// collateral "Wake of non-parked process" panic must neither escape nor
// replace the abort as the recorded failure.
func TestAbortSurvivesCleanupWakes(t *testing.T) {
	base := runtime.NumGoroutine()
	e := NewEngine()
	var q Queue
	procs := make([]*Proc, 0, 4)
	for i := 0; i < 4; i++ {
		p := e.Spawn("cleanup", func(p *Proc) {
			defer func() {
				// Release-style cleanup: wake every peer, whatever state
				// the abort left it in.
				for _, o := range procs {
					if o != p && !o.terminated {
						o.Wake()
					}
				}
			}()
			q.Wait(p)
		})
		procs = append(procs, p)
	}
	e.Interrupt()
	err := e.Run()
	var ab *AbortError
	if !errors.As(err, &ab) {
		t.Fatalf("want AbortError despite cleanup wakes, got %v", err)
	}
	if !allTerminated(e) {
		t.Fatal("run left live processes")
	}
	settleGoroutines(t, base)
}

// TestResetAfterInterrupt: an aborted engine resets to a clean state —
// the stop flag does not leak into the next run.
func TestResetAfterInterrupt(t *testing.T) {
	e := NewEngine()
	e.Spawn("spinner", func(p *Proc) {
		for {
			p.Hold(100)
		}
	})
	e.Interrupt()
	if err := e.Run(); err == nil {
		t.Fatal("interrupted run succeeded")
	}
	e.Reset()
	if e.Interrupted() {
		t.Fatal("Reset did not clear the stop flag")
	}
	ran := false
	e.Spawn("clean", func(p *Proc) {
		p.Hold(10)
		ran = true
	})
	if err := e.Run(); err != nil || !ran {
		t.Fatalf("post-abort run: err=%v ran=%v", err, ran)
	}
}

// TestInterruptAfterRunIsHarmless: interrupting an engine whose run has
// already completed must not poison anything (the watchdog race at the
// end of a successful run).
func TestInterruptAfterRunIsHarmless(t *testing.T) {
	e := NewEngine()
	e.Spawn("quick", func(p *Proc) { p.Hold(10) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	e.Interrupt() // late watchdog
	e.Reset()
	ok := false
	e.Spawn("next", func(p *Proc) { ok = true })
	if err := e.Run(); err != nil || !ok {
		t.Fatalf("run after late interrupt: err=%v ok=%v", err, ok)
	}
}
