package spasm

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"

	"spasm/internal/report"
)

// TestAdaptiveThresholdZeroMatchesDetailed is the adaptive-fidelity
// acceptance lock: with an escalation threshold of 0 the flow attempt
// trips on its very first flow, so the statistics the adaptive run
// reports must be byte-identical (as a RunDoc) to a plain detailed-tier
// run — the escalation record itself is the only permitted difference.
func TestAdaptiveThresholdZeroMatchesDetailed(t *testing.T) {
	spec := Spec{App: "fft", Scale: Tiny, Machine: Flow, Topology: "mesh", P: 8,
		Adaptive: true, EscalatePct: 0}
	adaptive, err := RunSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	esc := adaptive.Escalation
	if esc == nil || !esc.Tripped || esc.From != Flow || esc.To != Target {
		t.Fatalf("escalation record = %+v, want a tripped flow->target record", esc)
	}
	detailed, err := RunSpec(Spec{App: "fft", Scale: Tiny, Machine: Target, Topology: "mesh", P: 8})
	if err != nil {
		t.Fatal(err)
	}
	aDoc := report.RunJSON(adaptive)
	aDoc.Escalation = nil
	dDoc := report.RunJSON(detailed)
	a, _ := json.Marshal(aDoc)
	d, _ := json.Marshal(dDoc)
	if !bytes.Equal(a, d) {
		t.Fatalf("adaptive(threshold 0) diverged from detailed run\nadaptive: %s\ndetailed: %s", a, d)
	}
}

// TestAdaptiveThreshold100NeverEscalates: flow occupancy is strictly
// below 100%, so the run completes on the flow tier and records an
// untripped decision.
func TestAdaptiveThreshold100NeverEscalates(t *testing.T) {
	spec := Spec{App: "fft", Scale: Tiny, Machine: Flow, Topology: "mesh", P: 8,
		Adaptive: true, EscalatePct: 100}
	res, err := RunSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	esc := res.Escalation
	if esc == nil || esc.Tripped || esc.From != Flow || esc.To != Flow {
		t.Fatalf("escalation record = %+v, want an untripped flow record", esc)
	}
	if res.Config.Kind != Flow {
		t.Fatalf("run finished on %v, want flow", res.Config.Kind)
	}
	plain, err := RunSpec(Spec{App: "fft", Scale: Tiny, Machine: Flow, Topology: "mesh", P: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Total != plain.Stats.Total {
		t.Fatalf("untripped adaptive total %v differs from plain flow run %v",
			res.Stats.Total, plain.Stats.Total)
	}
}

// TestAdaptiveDeterministic: whether a spec escalates — and everything
// downstream of the decision — is a pure function of the spec.
func TestAdaptiveDeterministic(t *testing.T) {
	spec := Spec{App: "is", Scale: Tiny, Machine: Flow, Topology: "mesh", P: 8,
		Adaptive: true, EscalatePct: 50}
	a, err := RunSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(report.RunJSON(a))
	bj, _ := json.Marshal(report.RunJSON(b))
	if !bytes.Equal(aj, bj) {
		t.Fatalf("adaptive run not deterministic:\n%s\n%s", aj, bj)
	}
	if a.Escalation == nil || a.Escalation.Tripped != b.Escalation.Tripped {
		t.Fatal("escalation decision not deterministic")
	}
}

// TestAdaptivePooled: adaptive runs on a shared pool produce the same
// RunDoc as unpooled ones, including the escalation record (the pooled
// flow attempt is discarded on escalation, never reused half-run).
func TestAdaptivePooled(t *testing.T) {
	pool := NewRunPool(0)
	spec := Spec{App: "fft", Scale: Tiny, Machine: Flow, Topology: "mesh", P: 8,
		Adaptive: true, EscalatePct: 0}
	fresh, err := RunSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		pooled, err := RunSpecOn(spec, pool)
		if err != nil {
			t.Fatal(err)
		}
		fj, _ := json.Marshal(report.RunJSON(fresh))
		pj, _ := json.Marshal(report.RunJSON(pooled))
		if !bytes.Equal(fj, pj) {
			t.Fatalf("iteration %d: pooled adaptive RunDoc diverged\nfresh:  %s\npooled: %s", i, fj, pj)
		}
	}
}

// TestAdaptiveProfiled: the profiled adaptive path resolves the tier
// first and profiles the resolved run, carrying the escalation record.
func TestAdaptiveProfiled(t *testing.T) {
	res, prof, err := RunSpecProfiled(Spec{App: "fft", Scale: Tiny, Machine: Flow,
		Topology: "mesh", P: 8, Adaptive: true, EscalatePct: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Escalation == nil || !res.Escalation.Tripped {
		t.Fatalf("escalation record missing on profiled adaptive run: %+v", res.Escalation)
	}
	if prof.Machine != "target" {
		t.Fatalf("profile describes %q, want the escalated target run", prof.Machine)
	}
	if res.Config.Kind != Target {
		t.Fatalf("profiled result ran on %v, want target", res.Config.Kind)
	}
}

// TestFidelityStudyGolden is the determinism lock for the
// fidelity-comparison study: every number in it is a pure function of
// the specs, so the Tiny-scale rows must stay byte-identical across
// runs and simulator-engineering changes.  Regenerate with
// SPASM_UPDATE=1 only when a change is *intended* to alter simulated
// results.
func TestFidelityStudyGolden(t *testing.T) {
	const goldenPath = "testdata/fidelity_tiny.golden.json"
	s := NewSession(Options{Scale: Tiny})
	rows, err := s.FidelityStudy("mesh", 8)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	if os.Getenv("SPASM_UPDATE") != "" {
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", goldenPath, len(got))
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden (run with SPASM_UPDATE=1 to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("fidelity study diverged from golden %s\ngot:  %s\nwant: %s", goldenPath, got, want)
	}
}

// TestFidelityStudyRuns: the fidelity comparison produces one row per
// suite application with a positive event-reduction ratio.
func TestFidelityStudyRuns(t *testing.T) {
	s := NewSession(Options{Scale: Tiny})
	rows, err := s.FidelityStudy("mesh", 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Apps()) {
		t.Fatalf("rows = %d, want %d", len(rows), len(Apps()))
	}
	for _, r := range rows {
		if r.TargetUS <= 0 || r.FlowUS <= 0 || r.LogPUS <= 0 {
			t.Fatalf("%s: non-positive execution time: %+v", r.App, r)
		}
		if r.TargetNetEvents == 0 {
			t.Fatalf("%s: detailed run reported no model events", r.App)
		}
		if r.EventRatio <= 1 {
			t.Fatalf("%s: flow tier did not reduce model events (ratio %.2f)", r.App, r.EventRatio)
		}
	}
}
