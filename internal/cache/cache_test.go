package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"spasm/internal/mem"
)

func TestDefaultGeometry(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Sets() != 1024 {
		t.Errorf("default sets = %d, want 1024 (64KB / (32B * 2))", cfg.Sets())
	}
	c := New(cfg)
	if c.Config() != cfg {
		t.Error("Config() mismatch")
	}
}

func TestBadGeometryPanics(t *testing.T) {
	for _, cfg := range []Config{
		{0, 32, 2},
		{64 * 1024, 0, 2},
		{64 * 1024, 32, 0},
		{100, 32, 2},         // not divisible
		{96 * 32 * 2, 32, 2}, // 96 sets: not a power of two
	} {
		cfg := cfg
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for %+v", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestStateHelpers(t *testing.T) {
	if Invalid.Valid() || !UnOwned.Valid() {
		t.Error("Valid() wrong")
	}
	if UnOwned.Owned() || !OwnedShared.Owned() || !OwnedExclusive.Owned() {
		t.Error("Owned() wrong")
	}
	for s, want := range map[State]string{Invalid: "I", UnOwned: "V", OwnedShared: "SD", OwnedExclusive: "D"} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
	if State(9).String() == "" {
		t.Error("unknown state string empty")
	}
}

func TestMissThenHit(t *testing.T) {
	c := New(Config{SizeBytes: 256, BlockBytes: 32, Assoc: 2}) // 4 sets
	if s := c.Access(5); s != Invalid {
		t.Errorf("cold access = %v", s)
	}
	c.Insert(5, UnOwned)
	if s := c.Access(5); s != UnOwned {
		t.Errorf("after insert = %v", s)
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Errorf("hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(Config{SizeBytes: 128, BlockBytes: 32, Assoc: 2}) // 2 sets
	// Blocks 0, 2, 4 all map to set 0.
	c.Insert(0, UnOwned)
	c.Insert(2, UnOwned)
	c.Access(0) // 0 is now MRU; 2 is LRU
	v, ev := c.Insert(4, UnOwned)
	if !ev || v.Block != 2 {
		t.Errorf("evicted %+v (ev=%v), want block 2", v, ev)
	}
	if c.State(0) != UnOwned || c.State(2) != Invalid || c.State(4) != UnOwned {
		t.Error("post-eviction states wrong")
	}
	if c.Evictions != 1 {
		t.Errorf("evictions = %d", c.Evictions)
	}
}

func TestInsertPrefersInvalidSlot(t *testing.T) {
	c := New(Config{SizeBytes: 128, BlockBytes: 32, Assoc: 2})
	c.Insert(0, UnOwned)
	c.Insert(2, OwnedExclusive)
	c.Invalidate(0)
	if _, ev := c.Insert(4, UnOwned); ev {
		t.Error("evicted despite an invalid slot")
	}
	if c.State(2) != OwnedExclusive {
		t.Error("resident line disturbed")
	}
}

func TestVictimStateReported(t *testing.T) {
	c := New(Config{SizeBytes: 128, BlockBytes: 32, Assoc: 2})
	c.Insert(0, OwnedExclusive)
	c.Insert(2, UnOwned)
	c.Access(2) // make 0 the LRU
	v, ev := c.Insert(4, UnOwned)
	if !ev || v.State != OwnedExclusive || v.Block != 0 {
		t.Errorf("victim = %+v", v)
	}
}

func TestSetStateAndInvalidate(t *testing.T) {
	c := New(DefaultConfig())
	c.Insert(7, UnOwned)
	c.SetState(7, OwnedExclusive)
	if c.State(7) != OwnedExclusive {
		t.Error("SetState ineffective")
	}
	if s := c.Invalidate(7); s != OwnedExclusive {
		t.Errorf("Invalidate returned %v", s)
	}
	if s := c.Invalidate(7); s != Invalid {
		t.Errorf("double Invalidate returned %v", s)
	}
	if c.State(7) != Invalid {
		t.Error("block still resident")
	}
}

func TestPanicsOnMisuse(t *testing.T) {
	c := New(DefaultConfig())
	c.Insert(1, UnOwned)
	for _, f := range []func(){
		func() { c.Insert(1, UnOwned) },    // duplicate insert
		func() { c.Insert(2, Invalid) },    // invalid insert
		func() { c.SetState(99, UnOwned) }, // absent block
		func() { c.SetState(1, Invalid) },  // invalid via SetState
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestAccessDoesNotAllocate(t *testing.T) {
	c := New(DefaultConfig())
	c.Access(42)
	if c.Resident() != 0 {
		t.Error("Access allocated a line")
	}
}

func TestStateDoesNotTouchLRU(t *testing.T) {
	c := New(Config{SizeBytes: 128, BlockBytes: 32, Assoc: 2})
	c.Insert(0, UnOwned)
	c.Insert(2, UnOwned) // 0 is LRU
	c.State(0)           // must NOT promote 0
	v, _ := c.Insert(4, UnOwned)
	if v.Block != 0 {
		t.Errorf("State() touched LRU: victim %d", v.Block)
	}
}

func TestForEachAndResident(t *testing.T) {
	c := New(DefaultConfig())
	blocks := []mem.Block{1, 2, 3, 7} // distinct sets: no evictions
	for _, b := range blocks {
		c.Insert(b, UnOwned)
	}
	seen := map[mem.Block]bool{}
	c.ForEach(func(b mem.Block, s State) { seen[b] = true })
	if len(seen) != len(blocks) || c.Resident() != len(blocks) {
		t.Errorf("seen %v, resident %d", seen, c.Resident())
	}
}

// Property: a cache never holds two copies of the same block, never
// exceeds its associativity per set, and hits+misses equals accesses.
func TestCacheInvariantsProperty(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{SizeBytes: 512, BlockBytes: 32, Assoc: 2} // 8 sets
		c := New(cfg)
		accesses := uint64(0)
		for _, op := range ops {
			b := mem.Block(op % 64)
			switch rng.Intn(4) {
			case 0:
				accesses++
				if c.Access(b) == Invalid {
					c.Insert(b, UnOwned)
				}
			case 1:
				accesses++
				switch c.Access(b) {
				case Invalid:
					c.Insert(b, OwnedExclusive)
				default:
					c.SetState(b, OwnedExclusive)
				}
			case 2:
				c.Invalidate(b)
			default:
				accesses++
				c.Access(b)
			}
			// Invariant: no duplicate blocks.
			count := map[mem.Block]int{}
			c.ForEach(func(bb mem.Block, _ State) { count[bb]++ })
			for _, n := range count {
				if n > 1 {
					return false
				}
			}
			// Invariant: per-set occupancy <= associativity.
			perSet := map[uint64]int{}
			c.ForEach(func(bb mem.Block, _ State) { perSet[uint64(bb)%8]++ })
			for _, n := range perSet {
				if n > cfg.Assoc {
					return false
				}
			}
		}
		return c.Hits+c.Misses == accesses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: blocks mapping to different sets never evict each other.
func TestSetIsolationProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		c := New(Config{SizeBytes: 512, BlockBytes: 32, Assoc: 2})
		// Fill set 0 with blocks 0 and 8.
		c.Insert(0, UnOwned)
		c.Insert(8, UnOwned)
		for _, r := range raw {
			b := mem.Block(r%64 | 1) // odd blocks: never set 0 (8 sets)
			if uint64(b)%8 == 0 {
				continue
			}
			if c.State(b) == Invalid {
				c.Insert(b, UnOwned)
			}
		}
		return c.State(0) == UnOwned && c.State(8) == UnOwned
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
