// Package faults is a test-only fault-injection registry for the
// failure-domain hardening tests: chaos tests register handlers at named
// points in the service's execution (run execution, result marshaling,
// the worker loop) and production code Fires those points where a real
// fault would strike.
//
// The package is compiled into production binaries, so the disabled path
// is engineered to near-zero cost: Fire is a single atomic load when no
// handler is registered anywhere, and handlers are consulted under a
// read lock only after that load trips.  Handlers may return an error
// (injected failure), panic (injected crash), or sleep (injected stall /
// hang) — whatever failure mode the test is pinning.
package faults

import (
	"sync"
	"sync/atomic"
)

// Point names an injection site.  Production code fires these at the
// places where a real fault would surface.
type Point string

const (
	// RunExec fires in the service worker just before a job's
	// simulation executes; an error stands in for a failed run, a panic
	// for a crashed one, a sleep for a run that hangs.
	RunExec Point = "run-exec"
	// Marshal fires just before a finished run's document is
	// serialized; an error stands in for an unencodable result.
	Marshal Point = "marshal"
	// WorkerStall fires at the top of each worker-loop iteration,
	// before the worker commits to a job; a sleeping handler wedges the
	// worker, which is how the chaos tests pile up a queue to cancel.
	WorkerStall Point = "worker-stall"
)

// Handler is an injected fault.  Returning nil lets execution proceed;
// returning an error injects a failure at the point; panicking or
// sleeping injects the corresponding crash or stall.
type Handler func() error

var (
	active atomic.Int32 // number of registered handlers, the fast-path gate
	mu     sync.RWMutex
	table  = map[Point]Handler{}
)

// Set registers h at point p, replacing any previous handler, and
// returns a restore function that removes it.  Tests should defer the
// restore (or call Reset in cleanup).
func Set(p Point, h Handler) (restore func()) {
	mu.Lock()
	if _, had := table[p]; !had {
		active.Add(1)
	}
	table[p] = h
	mu.Unlock()
	return func() {
		mu.Lock()
		if _, had := table[p]; had {
			delete(table, p)
			active.Add(-1)
		}
		mu.Unlock()
	}
}

// Reset removes every registered handler.
func Reset() {
	mu.Lock()
	active.Add(-int32(len(table)))
	table = map[Point]Handler{}
	mu.Unlock()
}

// Fire consults the handler registered at p, if any.  With no handlers
// registered anywhere it is a single atomic load.
func Fire(p Point) error {
	if active.Load() == 0 {
		return nil
	}
	mu.RLock()
	h := table[p]
	mu.RUnlock()
	if h == nil {
		return nil
	}
	return h()
}
