// Package service turns the spasm simulator into a long-lived
// simulation-as-a-service daemon: an HTTP JSON API over a job queue, a
// bounded worker pool, and a content-addressed result cache.
//
// The design leans on one property of the simulator: a run is a
// deterministic function of its canonical spec (spasm.Spec).  That makes
// specs content addresses — the job ID is the spec's SHA-256 — and it
// makes results safe to cache forever:
//
//   - Submitting a spec whose result is cached returns the stored,
//     byte-identical statistics immediately (a cache hit).
//   - Submitting a spec that is already queued or running coalesces onto
//     the in-flight job instead of simulating twice.
//   - Otherwise the job is queued and executed by one of a fixed pool of
//     workers (default GOMAXPROCS — each simulation is internally
//     single-threaded, so that saturates the host without oversubscribing).
//
// Figure and sweep requests decompose into their underlying runs, which
// flow through the same queue and cache; repeating a figure request
// re-simulates nothing.
//
// Completed results are held in an LRU cache bounded by entry count and,
// when Config.Store is set, persisted to a disk-backed store below it:
// byte-determinism makes results permanent, so a restarted daemon warms
// from disk instead of re-simulating.  The pending queue is shared
// fairly across tenants (weighted stride scheduling with per-tenant
// admission quotas), and runs can be followed live over SSE.  Hits,
// misses and evictions are exported on /metrics along with queue depth,
// worker utilization and per-endpoint latency histograms.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"time"

	"sync"

	"spasm"
	"spasm/internal/faults"
	"spasm/internal/probe"
	"spasm/internal/report"
	"spasm/internal/service/store"
	"spasm/internal/stats"
)

// Config parameterizes a Server.
type Config struct {
	// Workers bounds simulation concurrency (default GOMAXPROCS;
	// each simulation is single-threaded, so this saturates the host).
	Workers int
	// CacheSize bounds the result cache, in entries (default 512).
	CacheSize int
	// QueueDepth bounds the pending-job queue (default 1024); Submit
	// fails with ErrQueueFull beyond it.
	QueueDepth int
	// RunTimeout bounds each job's wall-clock simulation time.  A run
	// past the deadline is aborted cooperatively (every simulated
	// process unwinds, nothing leaks) and the job fails with a timeout
	// error; its pooled run context is discarded rather than reused.
	// Zero (the default) means unbounded.
	RunTimeout time.Duration
	// NegativeCacheSize bounds the failed-result side cache, in entries
	// (default 64).  Failures are kept apart from successes so a burst
	// of bad specs cannot evict good results.
	NegativeCacheSize int
	// NegativeTTL is how long a cached failure is served before the
	// spec is retried (default 30s).  Deterministic failures come back
	// identical; failures caused by operational limits (timeouts) age
	// out and get a fresh chance.
	NegativeTTL time.Duration
	// Store, when set, is the durable result tier below the in-memory
	// LRU: completed runs (and their profiles) are written through to
	// it, and cache misses read through it before simulating.  Nil
	// (the default) keeps the daemon memory-only.
	Store *store.Store
	// MaxBodyBytes caps each request body (default 1 MiB); larger
	// submissions are rejected with HTTP 413.
	MaxBodyBytes int64
	// TenantWeights sets per-tenant fair-share weights (default 1 per
	// tenant): with a backlog, tenants receive worker dispatches in
	// proportion to weight.
	TenantWeights map[string]int
	// TenantQuotaRuns bounds one tenant's outstanding (queued plus
	// running) jobs; past it, submissions fail with ErrTenantQuota.
	// Zero (the default) means unlimited.
	TenantQuotaRuns int
	// TenantQuotaBytes bounds the sum of request-body bytes a tenant
	// may hold queued.  Zero (the default) means unlimited.
	TenantQuotaBytes int64
	// MaxTenants caps the distinct tenant buckets tracked (default
	// 256); further tenant names share one overflow bucket.
	MaxTenants int
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.CacheSize < 1 {
		c.CacheSize = 512
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 1024
	}
	if c.NegativeCacheSize < 1 {
		c.NegativeCacheSize = 64
	}
	if c.NegativeTTL <= 0 {
		c.NegativeTTL = 30 * time.Second
	}
	if c.MaxBodyBytes < 1 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxTenants < 1 {
		c.MaxTenants = 256
	}
	return c
}

// State is a job's lifecycle state.
type State string

// Job lifecycle states, as reported by the API.
const (
	StatePending State = "pending"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
	// StateCanceled marks a job dropped before execution because every
	// waiter abandoned it (see SubmitWaited).  Canceled outcomes are
	// never cached: they reflect client behaviour, not the spec.
	StateCanceled State = "canceled"
)

// Submission errors.
var (
	// ErrDraining is returned once Shutdown has begun.
	ErrDraining = errors.New("service: draining, not accepting jobs")
	// ErrQueueFull is returned when the pending queue is at capacity.
	ErrQueueFull = errors.New("service: job queue full")
	// ErrUnknownRun is returned by Profile for an id that is neither
	// active nor cached.
	ErrUnknownRun = errors.New("service: no such run")
	// ErrRunActive is returned by Profile while the run is still
	// pending or running.
	ErrRunActive = errors.New("service: run not complete yet")
)

// Job is one queued, running, or completed simulation.  Its ID is the
// content address of its spec, so identical submissions share a Job.
type Job struct {
	id   string
	spec spasm.Spec
	req  RunRequest

	// tenant and bytes drive fair-share admission: the tenant bucket
	// the job queues under, and the request-body weight charged against
	// that tenant's byte quota while the job is pending.
	tenant string
	bytes  int64

	// state and entry are guarded by the owning Server's mutex; entry
	// is also safely readable by anyone who has observed done closed.
	state State
	entry *entry
	done  chan struct{}

	// hub, when non-nil, is the job's live event log: it exists only if
	// a streaming client attached while the job was still pending, and
	// its presence at dispatch makes the worker run the instrumented
	// path that emits per-epoch events.  Set under the Server's mutex
	// before the job reaches StateRunning; never replaced afterwards.
	hub *streamHub

	// cached marks a job answered straight from a cache — positive,
	// negative, or the disk store — so the HTTP layer can report 200
	// instead of 202.
	cached bool
	// waiters and pinned drive pre-execution cancellation: waiters
	// counts the SubmitWaited registrations still attached, and pinned
	// marks a job with at least one plain Submit (poll-based clients
	// never release, so their jobs are never canceled).  A pending job
	// whose last waiter releases — and that is not pinned — is dropped
	// before it burns a worker.  Guarded by the Server's mutex.
	waiters int
	pinned  bool
}

// ID returns the job's content address (the spec's SHA-256).
func (j *Job) ID() string { return j.id }

// Done is closed when the job completes (done or failed).
func (j *Job) Done() <-chan struct{} { return j.done }

// closedChan is the pre-closed done channel shared by cache-hit jobs.
var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// Server owns the job queue, the worker pool, and the result cache.
// Create one with New, expose it with Handler, stop it with Shutdown.
type Server struct {
	cfg     Config
	metrics *Metrics
	store   *store.Store // nil without a durable tier

	mu         sync.Mutex
	cond       *sync.Cond      // signals workers on fq.push and on drain
	active     map[string]*Job // pending + running jobs by ID
	cache      *lru            // completed successes (also guarded by mu)
	neg        *negCache       // completed failures, bounded + TTL'd (also guarded by mu)
	fq         *fairQueue      // pending jobs, weighted-fair across tenants
	draining   bool
	profFlight map[string]*profFlight // in-flight profile computations by ID

	// pool holds reusable run contexts shared by the workers, so the
	// daemon amortizes machine construction across the jobs it executes;
	// its hit/miss/live counters are exported on /metrics.
	pool *spasm.RunPool

	workers sync.WaitGroup
}

// profFlight is one in-flight profile computation.  The leader fills
// the result fields before closing done, so waiters read their answer
// from the flight itself — never from the cache entry, which the LRU
// may have evicted while the computation ran.
type profFlight struct {
	done chan struct{}
	prof *probe.Profile
	raw  []byte
	err  error
}

// New starts a Server with cfg.Workers worker goroutines.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	idle := 2 * cfg.Workers
	if idle < 16 {
		idle = 16
	}
	s := &Server{
		cfg:        cfg,
		metrics:    newMetrics(time.Now(), cfg.Workers),
		store:      cfg.Store,
		active:     make(map[string]*Job),
		cache:      newLRU(cfg.CacheSize),
		neg:        newNegCache(cfg.NegativeCacheSize, cfg.NegativeTTL),
		fq:         newFairQueue(cfg),
		profFlight: make(map[string]*profFlight),
		pool:       spasm.NewRunPool(idle),
	}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s
}

// submitOpts carries the admission parameters of one submission.
type submitOpts struct {
	// tenant is the fair-share bucket ("" means DefaultTenant).
	tenant string
	// bytes is the request-body size charged against the tenant's byte
	// quota while the job is queued (0 for in-process submissions).
	bytes int64
	// pin marks a plain Submit: the job executes even if every waiter
	// departs.
	pin bool
	// stream creates the job's live event hub atomically with the job,
	// so the dispatching worker is guaranteed to see it and run the
	// instrumented path — a hub attached any later might miss the start.
	stream bool
}

// Submit registers a run for execution and returns its job plus whether
// the result was served from the (positive) cache.  An invalid spec
// fails immediately; an identical in-flight submission coalesces onto
// the existing job; a cached result — in memory or in the durable
// store — returns a completed job at once: successes report hit=true,
// remembered failures report hit=false with the job already failed and
// Job.cached set.  Jobs submitted this way are pinned: they execute
// even if every waiting client goes away (poll-based clients never
// signal departure).
func (s *Server) Submit(spec spasm.Spec) (job *Job, hit bool, err error) {
	return s.submit(spec, submitOpts{pin: true})
}

// SubmitWaited is Submit for clients that stay attached to the result:
// it registers the caller as a waiter and returns a release function
// the caller must invoke exactly once when it stops caring (normally
// deferred).  A pending job whose waiters all release — and that no
// plain Submit pinned — is canceled before it reaches a worker: its
// state becomes StateCanceled, Done closes, and nothing is cached.
// Jobs already running are never canceled (the simulation's cost is
// sunk; its deterministic result is worth keeping).
func (s *Server) SubmitWaited(spec spasm.Spec) (job *Job, hit bool, release func(), err error) {
	return s.submitWaited(spec, submitOpts{})
}

func (s *Server) submitWaited(spec spasm.Spec, opt submitOpts) (job *Job, hit bool, release func(), err error) {
	opt.pin = false
	j, hit, err := s.submit(spec, opt)
	if err != nil {
		return nil, false, nil, err
	}
	var once sync.Once
	return j, hit, func() { once.Do(func() { s.releaseWaiter(j) }) }, nil
}

func (s *Server) submit(spec spasm.Spec, opt submitOpts) (job *Job, hit bool, err error) {
	spec = spec.Canonical()
	if err := spec.Validate(); err != nil {
		return nil, false, &RequestError{Err: err}
	}
	if opt.tenant == "" {
		opt.tenant = DefaultTenant
	}
	id := spec.Hash()

	s.mu.Lock()
	if j, ok := s.active[id]; ok {
		if opt.pin {
			j.pinned = true
		} else {
			j.waiters++
		}
		if opt.stream && j.state == StatePending && j.hub == nil {
			j.hub = newStreamHub()
		}
		s.mu.Unlock()
		s.metrics.jobCoalesced()
		return j, false, nil
	}
	if e, ok := s.cache.get(id, true); ok {
		s.mu.Unlock()
		j := &Job{id: id, spec: spec, req: RequestFromSpec(spec), entry: e, done: closedChan, cached: true}
		j.state = StateDone
		return j, true, nil
	}
	if e, ok := s.storeLookupLocked(id); ok {
		// Durable tier hit: the run was computed by an earlier process.
		// The promoted entry serves exactly the bytes that process wrote,
		// and no worker is burned.
		s.mu.Unlock()
		j := &Job{id: id, spec: spec, req: RequestFromSpec(spec), entry: e, done: closedChan, cached: true}
		j.state = StateDone
		return j, true, nil
	}
	if e, ok := s.neg.get(id, time.Now(), true); ok {
		s.mu.Unlock()
		j := &Job{id: id, spec: spec, req: RequestFromSpec(spec), entry: e, done: closedChan, cached: true}
		j.state = StateFailed
		return j, false, nil
	}
	if s.draining {
		s.mu.Unlock()
		return nil, false, ErrDraining
	}
	j := &Job{id: id, spec: spec, req: RequestFromSpec(spec), state: StatePending,
		done: make(chan struct{}), tenant: opt.tenant, bytes: opt.bytes}
	if opt.pin {
		j.pinned = true
	} else {
		j.waiters = 1
	}
	if opt.stream {
		j.hub = newStreamHub()
	}
	if err := s.fq.push(j); err != nil {
		tenant := j.tenant
		s.mu.Unlock()
		if errors.Is(err, ErrTenantQuota) {
			s.metrics.tenantRejected(tenant)
		} else {
			s.metrics.jobRejected()
		}
		return nil, false, err
	}
	s.active[id] = j
	s.cond.Signal()
	s.mu.Unlock()
	s.metrics.jobSubmitted()
	s.metrics.tenantSubmitted(j.tenant)
	return j, false, nil
}

// storeLookupLocked reads id through the durable store, promoting a hit
// into the in-memory LRU.  Must be called with s.mu held (the disk read
// is one small file; simulations dwarf it).
func (s *Server) storeLookupLocked(id string) (*entry, bool) {
	if s.store == nil {
		return nil, false
	}
	rec, ok := s.store.Get(id)
	if !ok {
		return nil, false
	}
	var req RunRequest
	if err := json.Unmarshal(rec.Spec, &req); err != nil {
		return nil, false
	}
	e := &entry{id: id, req: req, doc: rec.Doc}
	if len(rec.Stats) > 0 {
		var st stats.Run
		if err := json.Unmarshal(rec.Stats, &st); err == nil {
			e.stats = &st
		}
	}
	s.cache.add(e)
	return e, true
}

// storeWrite persists a successful run record (and its profile, when
// one was materialized).  Runs on the worker goroutine, outside the
// server mutex — fsync is the slow part.  Store failures never fail the
// job: the result stays served from memory and the store's own error
// counter records the miss of durability.
func (s *Server) storeWrite(e *entry) {
	if s.store == nil || e.err != "" || len(e.doc) == 0 {
		return
	}
	rec := store.Record{ID: e.id, Doc: e.doc}
	if specJSON, err := json.Marshal(e.req); err == nil {
		rec.Spec = specJSON
	}
	if e.stats != nil {
		// Wall is host wall-clock — the one non-deterministic field — so
		// it is zeroed in the durable record to keep it spec-pure.
		st := *e.stats
		st.Wall = 0
		if stJSON, err := json.Marshal(&st); err == nil {
			rec.Stats = stJSON
		}
	}
	s.store.Put(rec)
	if len(e.profBytes) > 0 {
		s.store.PutProfile(e.id, e.profBytes)
	}
}

// releaseWaiter detaches one SubmitWaited (or stream) registration from
// j.  When the last waiter of an unpinned, still-pending job departs,
// the job is canceled in place: it leaves the active set and the fair
// queue (so a later identical submission starts fresh) and its Done
// closes.  Nothing is cached.
func (s *Server) releaseWaiter(j *Job) {
	s.mu.Lock()
	j.waiters--
	if j.waiters > 0 || j.pinned || j.state != StatePending {
		s.mu.Unlock()
		return
	}
	j.state = StateCanceled
	j.entry = &entry{id: j.id, req: j.req, err: "canceled: every waiter abandoned the job before execution", canceled: true}
	s.fq.remove(j)
	delete(s.active, j.id)
	hub, e := j.hub, j.entry
	s.mu.Unlock()
	close(j.done)
	if hub != nil {
		hub.publish(eventResult, statusFromEntry(e, false))
		hub.finish()
	}
	s.metrics.jobCanceled()
}

// nextJob blocks until a job is dispatchable or the drained queue shuts
// down.  Marking the job running happens under the same mutex as the
// dispatch itself, so waiter cancellation (which only touches
// StatePending jobs) can never race a worker pick-up.
func (s *Server) nextJob() (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if j := s.fq.pop(); j != nil {
			j.state = StateRunning
			return j, true
		}
		if s.draining {
			return nil, false
		}
		s.cond.Wait()
	}
}

// worker executes queued jobs until the queue drains at shutdown.
func (s *Server) worker() {
	defer s.workers.Done()
	for {
		job, ok := s.nextJob()
		if !ok {
			return
		}
		faults.Fire(faults.WorkerStall)
		s.metrics.workerBusy(1)
		s.execute(job)
		s.metrics.workerBusy(-1)
	}
}

// execute runs one dispatched job to completion.  Jobs with a live
// stream hub (and a non-adaptive spec) run the instrumented path: the
// probe's epoch emissions feed the hub as the simulation executes, and
// the finished profile is memoized so the first /profile request after
// a streamed run is free.  Everything else runs the plain path.
func (s *Server) execute(job *Job) {
	hub := job.hub
	if hub != nil {
		hub.publish(eventState, RunStatus{ID: job.id, State: StateRunning, Spec: job.req})
	}

	e := &entry{id: job.id, req: job.req}
	var res *spasm.Result
	var prof *probe.Profile
	var err error
	if hub != nil && !job.spec.Adaptive {
		res, prof, err = runSpecProfiledSafely(job.spec, s.pool, s.cfg.RunTimeout,
			func(ev probe.EpochEvent) {
				hub.publish(eventEpoch, streamEpoch(ev))
				s.metrics.streamEventEmitted()
			})
	} else {
		res, err = runSpecSafely(job.spec, s.pool, s.cfg.RunTimeout)
	}
	if err == nil && res.Escalation != nil && res.Escalation.Tripped {
		s.metrics.runEscalated()
	}
	if err == nil && res.Par != nil {
		s.metrics.runParallelOutcome(res.Par.Parallel)
	}
	if err == nil {
		if err = faults.Fire(faults.Marshal); err == nil {
			var doc []byte
			doc, err = json.Marshal(report.RunJSON(res))
			if err == nil {
				e.doc = doc
				e.stats = res.Stats
			}
		}
	}
	if err == nil && prof != nil {
		var buf bytes.Buffer
		if _, encErr := prof.Encode(&buf); encErr == nil {
			e.prof, e.profBytes = prof, buf.Bytes()
		}
	}
	timedOut := errors.Is(err, spasm.ErrRunTimeout)
	if err != nil {
		e.err = err.Error()
	}
	// Persist before publishing: once a client has seen "done", the
	// record survives an immediate restart.
	s.storeWrite(e)
	s.finish(job, e, timedOut)
}

// runSpecSafely shields the daemon from panicking simulations: invalid
// topology/processor combinations (and any future simulator bug) fail
// the one job — deterministically, so the failure is cacheable — rather
// than killing the server.  Runs execute on the server's context pool
// under the configured wall-clock deadline; pooled runs are bit-identical
// to fresh ones, and the RunDoc the worker stores is derived from the
// result's freshly allocated statistics, so nothing cached aliases
// pooled state.  A run that fails — aborted, panicked, or otherwise —
// discards its pooled context instead of returning it (half-finished
// simulation state never re-enters the pool).
func runSpecSafely(spec spasm.Spec, pool *spasm.RunPool, timeout time.Duration) (res *spasm.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("run panicked: %v", r)
		}
	}()
	if err := faults.Fire(faults.RunExec); err != nil {
		return nil, err
	}
	return spasm.RunSpecControlled(spec, pool, spasm.RunControl{Timeout: timeout})
}

// runSpecProfiledSafely is runSpecSafely on the instrumented path: the
// probe attaches to the run and onEpoch fires live as epochs close.
// Profiled results are bit-identical to plain ones (profiling does not
// perturb), so the cached RunDoc is the same either way.
func runSpecProfiledSafely(spec spasm.Spec, pool *spasm.RunPool, timeout time.Duration,
	onEpoch func(probe.EpochEvent)) (res *spasm.Result, prof *probe.Profile, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, prof, err = nil, nil, fmt.Errorf("run panicked: %v", r)
		}
	}()
	if err := faults.Fire(faults.RunExec); err != nil {
		return nil, nil, err
	}
	return spasm.RunSpecProfiledControlled(spec, pool,
		spasm.RunControl{Timeout: timeout}, spasm.ProfileConfig{OnEpoch: onEpoch})
}

// finish publishes a job's result: successes into the result cache,
// failures into the bounded negative cache, the job out of the active
// set and its tenant's run quota, and the outcome to anyone blocked on
// Done or subscribed to the stream.
func (s *Server) finish(job *Job, e *entry, timedOut bool) {
	s.mu.Lock()
	job.entry = e
	if e.err != "" {
		job.state = StateFailed
		s.neg.add(e, time.Now())
	} else {
		job.state = StateDone
		s.cache.add(e)
	}
	s.fq.jobDone(job)
	delete(s.active, job.id)
	s.mu.Unlock()
	close(job.done)
	if job.hub != nil {
		job.hub.publish(eventResult, statusFromEntry(e, false))
		job.hub.finish()
	}
	s.metrics.jobFinished(e.err == "", timedOut)
}

// Wait blocks until the job completes or ctx is cancelled, then returns
// its final status.
func (s *Server) Wait(ctx context.Context, j *Job) (RunStatus, error) {
	select {
	case <-j.done:
	case <-ctx.Done():
		return RunStatus{}, ctx.Err()
	}
	return statusFromEntry(j.entry, false), nil
}

// Status reports a job by ID: an active (pending/running) job, or a
// completed one still in the result cache (successes), the negative
// cache (unexpired failures), or the durable store.
func (s *Server) Status(id string) (RunStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.active[id]; ok {
		return RunStatus{ID: j.id, State: j.state, Spec: j.req}, true
	}
	if e, ok := s.cache.get(id, false); ok {
		return statusFromEntry(e, false), true
	}
	if e, ok := s.neg.get(id, time.Now(), false); ok {
		return statusFromEntry(e, false), true
	}
	if e, ok := s.storeLookupLocked(id); ok {
		return statusFromEntry(e, false), true
	}
	return RunStatus{}, false
}

// runStats submits a spec (deduplicated and cached like any other
// submission) and blocks for its statistics — the execution path behind
// figure and sweep requests, injected into exp.Session as its Runner.
// It registers as a releasable waiter: when the request's context dies
// before the job runs, the release lets the server cancel the pending
// work instead of simulating for nobody.
func (s *Server) runStats(ctx context.Context, spec spasm.Spec, tenant string) (*stats.Run, error) {
	j, _, release, err := s.submitWaited(spec, submitOpts{tenant: tenant})
	if err != nil {
		return nil, err
	}
	defer release()
	select {
	case <-j.done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	if j.entry.err != "" {
		return nil, fmt.Errorf("service: run %s: %s", j.id[:12], j.entry.err)
	}
	return j.entry.stats, nil
}

// Profile returns a completed run's time-resolved telemetry: the
// decoded profile and its canonical binary encoding (byte-identical on
// every call for the same spec).  The profile is computed on first
// request — by re-running the spec with the probe attached, which is
// sound because profiles are deterministic — and memoized on the run's
// cache entry (streamed runs arrive pre-memoized; the durable store
// warms it across restarts).  Concurrent requests for the same id
// coalesce onto one computation (singleflight): waiters block on the
// leader and read the flight's own result, so an LRU eviction racing
// the computation can neither lose the answer nor double-count the
// derivation.  It returns ErrUnknownRun for ids that are neither active
// nor cached, ErrRunActive while the run is still in flight, and the
// run's own error for failed runs.
func (s *Server) Profile(id string) (*probe.Profile, []byte, error) {
	// Each request is counted exactly once: a hit (memoized encoding was
	// already there), a miss (this request computed it), or coalesced
	// (waited on another request's computation).
	s.mu.Lock()
	if _, ok := s.active[id]; ok {
		s.mu.Unlock()
		return nil, nil, ErrRunActive
	}
	if fl, inFlight := s.profFlight[id]; inFlight {
		// Join the in-flight computation before consulting the cache:
		// the flight proves the run exists even if the LRU has since
		// evicted its entry, and the flight's own fields carry the answer.
		s.mu.Unlock()
		s.metrics.profileCoalesced()
		<-fl.done
		return fl.prof, fl.raw, fl.err
	}
	e, ok := s.cache.get(id, false)
	if !ok {
		e, ok = s.storeLookupLocked(id)
	}
	if ok && e.err == "" && e.prof == nil && s.store != nil {
		// The store may also hold the run's encoded profile (written by a
		// past process, or by this one before an eviction); decoding it
		// here turns the request into a cache hit instead of a re-run.
		if raw, hit := s.store.GetProfile(id); hit {
			if prof, err := probe.Decode(bytes.NewReader(raw)); err == nil {
				e.prof, e.profBytes = prof, raw
			}
		}
	}
	if !ok {
		if ne, negOK := s.neg.get(id, time.Now(), false); negOK {
			s.mu.Unlock()
			return nil, nil, fmt.Errorf("service: run %s failed: %s", id[:12], ne.err)
		}
		s.mu.Unlock()
		return nil, nil, ErrUnknownRun
	}
	if e.err != "" {
		s.mu.Unlock()
		return nil, nil, fmt.Errorf("service: run %s failed: %s", id[:12], e.err)
	}
	if e.prof != nil {
		prof, raw := e.prof, e.profBytes
		s.mu.Unlock()
		s.metrics.profileServed(true)
		return prof, raw, nil
	}
	fl := &profFlight{done: make(chan struct{})}
	s.profFlight[id] = fl
	req := e.req
	s.mu.Unlock()
	s.metrics.profileServed(false)

	fl.prof, fl.raw, fl.err = computeProfile(req)
	if fl.err == nil && s.store != nil {
		s.store.PutProfile(id, fl.raw)
	}

	// Memoize on the entry if it is still cached, then release the
	// flight so waiters can read the result.
	s.mu.Lock()
	if fl.err == nil {
		if e, ok := s.cache.get(id, false); ok && e.prof == nil {
			e.prof, e.profBytes = fl.prof, fl.raw
		}
	}
	delete(s.profFlight, id)
	s.mu.Unlock()
	close(fl.done)
	return fl.prof, fl.raw, fl.err
}

// computeProfile derives a run's profile from its request: re-run the
// spec instrumented, then encode the profile canonically.
func computeProfile(req RunRequest) (*probe.Profile, []byte, error) {
	spec, err := req.Spec()
	if err != nil {
		return nil, nil, err
	}
	prof, err := profileSpecSafely(spec)
	if err != nil {
		return nil, nil, err
	}
	var buf bytes.Buffer
	if _, err := prof.Encode(&buf); err != nil {
		return nil, nil, err
	}
	return prof, buf.Bytes(), nil
}

// profileSpecSafely shields the daemon from panicking instrumented runs,
// exactly like runSpecSafely does for plain runs.
func profileSpecSafely(spec spasm.Spec) (prof *probe.Profile, err error) {
	defer func() {
		if r := recover(); r != nil {
			prof, err = nil, fmt.Errorf("profiled run panicked: %v", r)
		}
	}()
	_, prof, err = spasm.RunSpecProfiled(spec)
	return prof, err
}

// QueueDepth reports the number of jobs waiting for a worker.
func (s *Server) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fq.size
}

// Shutdown stops accepting new jobs and drains the queue: every job
// already accepted — queued or in flight — completes before Shutdown
// returns (or ctx expires).  Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		s.cond.Broadcast()
	}
	s.mu.Unlock()
	drained := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// RequestError marks a client-side (HTTP 400) submission error.
type RequestError struct{ Err error }

func (e *RequestError) Error() string { return e.Err.Error() }
func (e *RequestError) Unwrap() error { return e.Err }
