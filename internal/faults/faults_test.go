package faults

import (
	"errors"
	"testing"
)

func TestDisabledIsNil(t *testing.T) {
	if err := Fire(RunExec); err != nil {
		t.Fatalf("no handler, got %v", err)
	}
}

func TestSetFireRestore(t *testing.T) {
	want := errors.New("boom")
	restore := Set(RunExec, func() error { return want })
	if err := Fire(RunExec); !errors.Is(err, want) {
		t.Fatalf("got %v", err)
	}
	if err := Fire(Marshal); err != nil {
		t.Fatalf("unregistered point fired: %v", err)
	}
	restore()
	if err := Fire(RunExec); err != nil {
		t.Fatalf("after restore: %v", err)
	}
	if active.Load() != 0 {
		t.Fatalf("active = %d after restore", active.Load())
	}
}

func TestSetReplacesWithoutLeakingCount(t *testing.T) {
	r1 := Set(Marshal, func() error { return errors.New("a") })
	r2 := Set(Marshal, func() error { return errors.New("b") })
	if got := Fire(Marshal); got == nil || got.Error() != "b" {
		t.Fatalf("replacement not in effect: %v", got)
	}
	if active.Load() != 1 {
		t.Fatalf("active = %d, want 1", active.Load())
	}
	r2()
	r1() // second restore of the same point is a no-op
	if active.Load() != 0 {
		t.Fatalf("active = %d after restores", active.Load())
	}
}

func TestReset(t *testing.T) {
	Set(RunExec, func() error { return errors.New("x") })
	Set(WorkerStall, func() error { return errors.New("y") })
	Reset()
	if active.Load() != 0 {
		t.Fatalf("active = %d after Reset", active.Load())
	}
	if Fire(RunExec) != nil || Fire(WorkerStall) != nil {
		t.Fatal("handlers survived Reset")
	}
}

func TestPanicPropagates(t *testing.T) {
	defer Reset()
	Set(RunExec, func() error { panic("injected crash") })
	defer func() {
		if recover() == nil {
			t.Fatal("panic swallowed")
		}
	}()
	Fire(RunExec)
}
