package sparse

import (
	"fmt"
	"math"
	"sort"
)

// Symbolic is the result of symbolic Cholesky factorization of a
// symmetric matrix: the fill-in-complete column structure of the factor
// L, the elimination tree, and the dependency counts that drive the
// dynamically scheduled numeric factorization (the SPLASH CHOLESKY task
// structure).
type Symbolic struct {
	N int
	// Struct[j] lists the row indices of the nonzeros of column j of
	// L, ascending, starting with the diagonal j itself.
	Struct [][]int
	// Parent is the elimination tree: Parent[j] is the first
	// off-diagonal row index in column j (-1 for a root).
	Parent []int
	// Deps[i] counts the columns j < i with L[i][j] != 0: the number
	// of cmod(i, j) updates column i must receive before its cdiv.
	Deps []int
	// ColPtr/NNZ give each column's offset in a packed CSC value
	// array of the factor.
	ColPtr []int
}

// SymbolicFactor computes the fill pattern of the Cholesky factor of a
// (pattern-)symmetric matrix: struct(L_j) = struct(A_{j:n,j}) united with
// struct(L_c) \ {c} for every elimination-tree child c of j.
func SymbolicFactor(a *CSR) *Symbolic {
	n := a.N
	s := &Symbolic{
		N:      n,
		Struct: make([][]int, n),
		Parent: make([]int, n),
		Deps:   make([]int, n),
		ColPtr: make([]int, n+1),
	}
	children := make([][]int, n)
	mark := make([]int, n)
	for i := range mark {
		mark[i] = -1
	}
	for j := 0; j < n; j++ {
		// Gather struct(A[j:, j]) — lower triangle of column j,
		// which by symmetry is row j's entries >= j.
		var rows []int
		mark[j] = j
		rows = append(rows, j)
		cols, _ := a.Row(j)
		for _, i := range cols {
			if i > j && mark[i] != j {
				mark[i] = j
				rows = append(rows, i)
			}
		}
		// Union in the children's structures (minus their diagonal).
		for _, c := range children[j] {
			for _, i := range s.Struct[c][1:] {
				if i > j && mark[i] != j {
					mark[i] = j
					rows = append(rows, i)
				}
			}
		}
		sort.Ints(rows)
		s.Struct[j] = rows
		if len(rows) > 1 {
			s.Parent[j] = rows[1]
			children[rows[1]] = append(children[rows[1]], j)
		} else {
			s.Parent[j] = -1
		}
		for _, i := range rows[1:] {
			s.Deps[i]++
		}
		s.ColPtr[j+1] = s.ColPtr[j] + len(rows)
	}
	return s
}

// NNZ returns the number of stored factor entries (including diagonals).
func (s *Symbolic) NNZ() int { return s.ColPtr[s.N] }

// Index returns the packed CSC index of L[i][j], which must be a stored
// entry of column j.
func (s *Symbolic) Index(i, j int) int {
	rows := s.Struct[j]
	k := sort.SearchInts(rows, i)
	if k == len(rows) || rows[k] != i {
		panic(fmt.Sprintf("sparse: L[%d][%d] not in symbolic structure", i, j))
	}
	return s.ColPtr[j] + k
}

// Factorize performs the host-side reference numeric factorization
// (sequential right-looking column Cholesky over the symbolic
// structure).  vals is the packed CSC value array, pre-loaded with A's
// lower triangle (zeros in fill positions); on return it holds L.
func (s *Symbolic) Factorize(vals []float64) error {
	if len(vals) != s.NNZ() {
		return fmt.Errorf("sparse: Factorize with %d values, want %d", len(vals), s.NNZ())
	}
	for j := 0; j < s.N; j++ {
		base := s.ColPtr[j]
		d := vals[base]
		if d <= 0 {
			return fmt.Errorf("sparse: non-positive pivot %g at column %d", d, j)
		}
		d = math.Sqrt(d)
		vals[base] = d
		rows := s.Struct[j]
		for k := 1; k < len(rows); k++ {
			vals[base+k] /= d
		}
		// cmod(i, j) for every i in struct(j): subtract the outer
		// product contribution from the remaining columns.
		for k := 1; k < len(rows); k++ {
			i := rows[k]
			lij := vals[base+k]
			for k2 := k; k2 < len(rows); k2++ {
				r := rows[k2]
				vals[s.Index(r, i)] -= lij * vals[base+k2]
			}
		}
	}
	return nil
}

// LoadLower fills a packed CSC value array with the lower triangle of a
// (value-)symmetric matrix, zeros in fill positions.
func (s *Symbolic) LoadLower(a *CSR) []float64 {
	vals := make([]float64, s.NNZ())
	for j := 0; j < s.N; j++ {
		for k, i := range s.Struct[j] {
			vals[s.ColPtr[j]+k] = a.At(i, j)
		}
	}
	return vals
}

// CheckFactor verifies that vals (a factor over s's structure) satisfies
// L Lᵀ = A within tol, returning the worst absolute deviation.
func (s *Symbolic) CheckFactor(a *CSR, vals []float64, tol float64) error {
	n := s.N
	// Reconstruct A' = L Lᵀ densely per row pair touched by A's pattern
	// plus the factor pattern (both must match A, fill included).
	l := make([]map[int]float64, n) // l[i][j] = L[i][j]
	for i := range l {
		l[i] = map[int]float64{}
	}
	for j := 0; j < n; j++ {
		for k, i := range s.Struct[j] {
			l[i][j] = vals[s.ColPtr[j]+k]
		}
	}
	dot := func(i, j int) float64 {
		var sum float64
		for k, v := range l[i] {
			if w, ok := l[j][k]; ok {
				sum += v * w
			}
		}
		return sum
	}
	var worst float64
	check := func(i, j int) error {
		d := math.Abs(dot(i, j) - a.At(i, j))
		if d > worst {
			worst = d
		}
		if d > tol {
			return fmt.Errorf("sparse: |(LLᵀ - A)[%d][%d]| = %g > %g", i, j, d, tol)
		}
		return nil
	}
	for i := 0; i < n; i++ {
		cols, _ := a.Row(i)
		for _, j := range cols {
			if j <= i {
				if err := check(i, j); err != nil {
					return err
				}
			}
		}
		// Fill positions must also reproduce A (i.e. zero).
		for j := range l[i] {
			if err := check(i, j); err != nil {
				return err
			}
		}
	}
	return nil
}
