// Package par holds the core data structures of the conservative
// parallel execution mode of the discrete-event kernel: span keys, the
// per-domain clock vector, the window release policy, and the domain
// partition helper.
//
// The parallel mode (internal/sim's parallel runner) overlaps the
// *bodies* of event spans — the stretches of host execution between one
// resumption of a simulated process and its next blocking point — while
// every touch of shared simulation state commits through an ordered
// gate.  The gate grants commit rights to the oldest incomplete span in
// (at, seq) order, which is exactly the order the sequential kernel
// dispatches events in, so a parallel run reproduces the sequential
// execution bit for bit.  This package is deliberately free of engine
// types (it deals in raw int64/uint64 keys) so the simulation kernel can
// depend on it without a cycle, and so the structures are testable in
// isolation.
package par

import "math"

// Key identifies one event span by its dispatch coordinates: the
// simulated timestamp and the engine-wide event sequence number that
// breaks timestamp ties.  Keys order identically to the sequential
// kernel's dispatch order.
type Key struct {
	At  int64
	Seq uint64
}

// Less reports whether k dispatches before o in (at, seq) order.
func (k Key) Less(o Key) bool {
	if k.At != o.At {
		return k.At < o.At
	}
	return k.Seq < o.Seq
}

// entry is one incomplete span tracked by the clock vector.
type entry struct {
	key Key
	id  int // owner tag (the engine uses the process index)
}

// domHeap is a min-heap of incomplete spans within one domain.
type domHeap struct {
	s []entry
}

func (h *domHeap) push(e entry) {
	h.s = append(h.s, e)
	s := h.s
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s[i].key.Less(s[parent].key) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *domHeap) popMin() entry {
	s := h.s
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = entry{}
	h.s = s[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && s[r].key.Less(s[l].key) {
			m = r
		}
		if !s[m].key.Less(s[i].key) {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	return top
}

// Clocks is the barrier-free clock vector of a parallel window: one
// min-heap of incomplete spans per domain.  The minimum over all
// domains is the oldest incomplete span — the only span the commit
// gate may grant — and each domain's own minimum is that domain's
// clock.  There is no barrier: domains insert and remove independently
// as spans are released and retired, and the global minimum is read on
// demand.
type Clocks struct {
	doms []domHeap
	size int
}

// NewClocks returns a clock vector over the given number of domains.
func NewClocks(domains int) *Clocks {
	if domains < 1 {
		domains = 1
	}
	return &Clocks{doms: make([]domHeap, domains)}
}

// Domains reports the width of the vector.
func (c *Clocks) Domains() int { return len(c.doms) }

// Size reports the number of incomplete spans across all domains.
func (c *Clocks) Size() int { return c.size }

// Insert records an incomplete span with the given key in dom.
func (c *Clocks) Insert(dom int, k Key, id int) {
	c.doms[dom].push(entry{key: k, id: id})
	c.size++
}

// RemoveMin retires dom's oldest incomplete span.  The parallel kernel
// only ever retires the *global* minimum (spans complete through the
// ordered gate, oldest first), which is necessarily also its domain's
// minimum.
func (c *Clocks) RemoveMin(dom int) {
	c.doms[dom].popMin()
	c.size--
}

// Min returns the oldest incomplete span across all domains and its
// owner tag.  ok is false when no span is incomplete.
func (c *Clocks) Min() (k Key, id int, ok bool) {
	for d := range c.doms {
		if len(c.doms[d].s) == 0 {
			continue
		}
		if e := c.doms[d].s[0]; !ok || e.key.Less(k) {
			k, id, ok = e.key, e.id, true
		}
	}
	return k, id, ok
}

// Clock reports dom's own clock: the key of its oldest incomplete span.
// ok is false when the domain has none.
func (c *Clocks) Clock(dom int) (Key, bool) {
	if len(c.doms[dom].s) == 0 {
		return Key{}, false
	}
	return c.doms[dom].s[0].key, true
}

// Reset empties the vector in place, keeping backing arrays.
func (c *Clocks) Reset() {
	for d := range c.doms {
		s := c.doms[d].s
		for i := range s {
			s[i] = entry{}
		}
		c.doms[d].s = s[:0]
	}
	c.size = 0
}

// HeadSet caches the earliest pending-event key of each domain's local
// event queue.  With per-domain queues there is no single heap top to
// consult: the release path instead reads the minimum over the cached
// heads, which is the same event a shared heap's top would be (each head
// is its domain's minimum, and the global minimum lives in some domain).
// The kernel refreshes a domain's entry after every mutation of that
// domain's queue, so Min is an O(domains) scan of hot, compact memory —
// mirroring Clocks.Min — instead of a pop/re-push on a shared structure.
type HeadSet struct {
	key  []Key
	live []bool
}

// NewHeadSet returns a head cache over the given number of domains.
func NewHeadSet(domains int) *HeadSet {
	if domains < 1 {
		domains = 1
	}
	return &HeadSet{key: make([]Key, domains), live: make([]bool, domains)}
}

// Width reports the number of domains the set covers.
func (h *HeadSet) Width() int { return len(h.key) }

// Set records k as dom's earliest pending key.
func (h *HeadSet) Set(dom int, k Key) {
	h.key[dom] = k
	h.live[dom] = true
}

// Clear marks dom as having no pending events.
func (h *HeadSet) Clear(dom int) {
	h.key[dom] = Key{}
	h.live[dom] = false
}

// Min returns the earliest cached head and its domain.  ok is false when
// every domain is empty.
func (h *HeadSet) Min() (k Key, dom int, ok bool) {
	for d := range h.key {
		if h.live[d] && (!ok || h.key[d].Less(k)) {
			k, dom, ok = h.key[d], d, true
		}
	}
	return k, dom, ok
}

// Reset clears every head in place.
func (h *HeadSet) Reset() {
	for d := range h.key {
		h.key[d] = Key{}
		h.live[d] = false
	}
}

// Horizon is the window bound derived from the oldest incomplete span's
// timestamp and the backend lookahead, saturating instead of wrapping.
func Horizon(minAt, lookahead int64) int64 {
	h := minAt + lookahead
	if lookahead > 0 && h < minAt {
		return math.MaxInt64
	}
	return h
}

// Policy is the release rule of a conservative window: how many spans
// may run at once and how far past the oldest incomplete span the
// window extends.
type Policy struct {
	// Workers bounds the number of concurrently released spans (the
	// worker-pool width); forced releases may exceed it.
	Workers int
	// Lookahead is the backend's minimum cross-domain interaction
	// latency: events within Lookahead of the oldest incomplete span
	// are safe to release.
	Lookahead int64
}

// Release decides whether the event at the head of the heap may be
// released into the window.  top is the head event's key; min is the
// oldest incomplete span (valid only when anyRunning); running counts
// incomplete spans.
//
// Three rules, in priority order:
//
//  1. Forced: an event older than the oldest incomplete span must be
//     released regardless of capacity — the gate cannot grant that
//     span's section until the older event's span exists and retires,
//     so withholding it would deadlock the window.
//  2. Idle: with nothing running, the head event is released
//     unconditionally (it is the global minimum; this is how a window
//     reopens).
//  3. Windowed: otherwise the event is released only while the worker
//     pool has capacity and the event lies within the lookahead horizon
//     of the oldest incomplete span.
func (p Policy) Release(top Key, min Key, anyRunning bool, running int) bool {
	if anyRunning && top.Less(min) {
		return true // forced: grant progress depends on it
	}
	if !anyRunning {
		return true // idle: reopen the window at the head event
	}
	if running >= p.Workers {
		return false
	}
	return top.At <= Horizon(min.At, p.Lookahead)
}

// Partition maps p processes onto at most d contiguous domains and
// returns the assignment function.  Contiguous ranges of process IDs
// are also contiguous regions of every supported topology (rows of the
// mesh/torus, arcs of the ring, subcubes of the hypercube), so the
// partition doubles as the topology-region grouping of fabric links:
// a link's endpoints map to the domains of its endpoint nodes.
func Partition(p, d int) func(int) int {
	if d > p {
		d = p
	}
	if d < 1 {
		d = 1
	}
	return func(id int) int {
		if id < 0 || id >= p {
			return 0
		}
		return id * d / p
	}
}
