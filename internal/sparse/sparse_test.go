package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRandomSPDStructure(t *testing.T) {
	m := RandomSPD(50, 3, 1)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if !m.IsSymmetric() {
		t.Error("matrix not symmetric")
	}
	// Diagonal dominance (implies SPD for symmetric matrices).
	for i := 0; i < m.N; i++ {
		cols, vals := m.Row(i)
		var diag, off float64
		for k, j := range cols {
			if j == i {
				diag = vals[k]
			} else {
				off += math.Abs(vals[k])
			}
		}
		if diag <= off {
			t.Fatalf("row %d not diagonally dominant: %g <= %g", i, diag, off)
		}
	}
}

func TestRandomSPDDeterministic(t *testing.T) {
	a := RandomSPD(30, 2, 42)
	b := RandomSPD(30, 2, 42)
	if a.NNZ() != b.NNZ() {
		t.Fatal("nondeterministic generator")
	}
	for k := range a.Val {
		if a.Val[k] != b.Val[k] || a.Col[k] != b.Col[k] {
			t.Fatal("nondeterministic generator values")
		}
	}
	c := RandomSPD(30, 2, 43)
	same := c.NNZ() == a.NNZ()
	if same {
		for k := range a.Val {
			if a.Val[k] != c.Val[k] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds gave identical matrices")
	}
}

func TestMulVecAndAt(t *testing.T) {
	// 2x2: [[2, -1], [-1, 2]]
	m := &CSR{N: 2, RowPtr: []int{0, 2, 4}, Col: []int{0, 1, 0, 1}, Val: []float64{2, -1, -1, 2}}
	if m.At(0, 1) != -1 || m.At(1, 1) != 2 || m.At(0, 0) != 2 {
		t.Error("At wrong")
	}
	y := make([]float64, 2)
	m.MulVec([]float64{1, 2}, y)
	if y[0] != 0 || y[1] != 3 {
		t.Errorf("MulVec = %v", y)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	m := RandomSPD(10, 1, 7)
	m.Col[0], m.Col[1] = m.Col[1], m.Col[0] // break sort order
	if err := m.Validate(); err == nil {
		t.Error("unsorted row accepted")
	}
}

func TestSymbolicTridiagonal(t *testing.T) {
	// Tridiagonal: no fill; struct(j) = {j, j+1}; parent chain.
	m := RandomSPD(10, 0, 3)
	s := SymbolicFactor(m)
	for j := 0; j < 9; j++ {
		if len(s.Struct[j]) != 2 || s.Struct[j][1] != j+1 {
			t.Fatalf("tridiagonal fill at column %d: %v", j, s.Struct[j])
		}
		if s.Parent[j] != j+1 {
			t.Fatalf("parent[%d] = %d", j, s.Parent[j])
		}
	}
	if s.Parent[9] != -1 {
		t.Error("last column should be a root")
	}
	if s.Deps[0] != 0 || s.Deps[5] != 1 {
		t.Errorf("deps = %v", s.Deps)
	}
}

func TestSymbolicContainsMatrixPattern(t *testing.T) {
	m := RandomSPD(40, 3, 11)
	s := SymbolicFactor(m)
	for i := 0; i < m.N; i++ {
		cols, _ := m.Row(i)
		for _, j := range cols {
			if j > i {
				continue
			}
			// A[i][j] nonzero with j <= i must appear in struct(j).
			found := false
			for _, r := range s.Struct[j] {
				if r == i {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("A[%d][%d] missing from factor structure", i, j)
			}
		}
	}
}

func TestFactorizeReproducesMatrix(t *testing.T) {
	for _, n := range []int{5, 20, 60} {
		m := RandomSPD(n, 2, int64(n))
		s := SymbolicFactor(m)
		vals := s.LoadLower(m)
		if err := s.Factorize(vals); err != nil {
			t.Fatal(err)
		}
		if err := s.CheckFactor(m, vals, 1e-8); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
}

func TestFactorizeRejectsWrongLength(t *testing.T) {
	m := RandomSPD(10, 1, 5)
	s := SymbolicFactor(m)
	if err := s.Factorize(make([]float64, 3)); err == nil {
		t.Error("wrong length accepted")
	}
}

func TestIndexPanicsOnNonEntry(t *testing.T) {
	m := RandomSPD(10, 0, 5) // tridiagonal
	s := SymbolicFactor(m)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	s.Index(9, 0) // L[9][0] is not in a tridiagonal structure
}

func TestResidualHelper(t *testing.T) {
	m := RandomSPD(5, 0, 9)
	x := []float64{1, 2, 3, 4, 5}
	b := make([]float64, 5)
	m.MulVec(x, b)
	if r := Residual(m, x, b); r != 0 {
		t.Errorf("residual of exact solution = %g", r)
	}
	b[2] += 1
	if r := Residual(m, x, b); r != 1 {
		t.Errorf("perturbed residual = %g, want 1", r)
	}
}

// Property: for random SPD matrices the numeric factorization always
// succeeds and reproduces A within tolerance; deps always sum to the
// strictly-sub-diagonal nonzero count of L.
func TestFactorizationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		extra := rng.Intn(4)
		m := RandomSPD(n, extra, seed)
		s := SymbolicFactor(m)
		sumDeps := 0
		for _, d := range s.Deps {
			sumDeps += d
		}
		if sumDeps != s.NNZ()-n {
			return false
		}
		vals := s.LoadLower(m)
		if err := s.Factorize(vals); err != nil {
			return false
		}
		return s.CheckFactor(m, vals, 1e-6) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
