package sim

// This file provides engine-level synchronization objects.  They cost no
// simulated resources themselves (no memory traffic, no network traffic):
// they exist to order processes and to measure waiting time.  Memory-
// traffic-generating synchronization (spin locks, flags, barriers built
// from shared variables) lives in internal/app and is layered on top of
// these primitives plus simulated memory accesses.
//
// Every touch of an object's shared fields happens inside an Ordered
// section so these primitives are safe (and bit-identical) under the
// parallel execution mode; in sequential mode Ordered is a direct call
// and the code below is exactly the pre-parallel implementation.
// Methods without a *Proc parameter (Queue.WakeOne/WakeAll/Remove,
// Semaphore.Release) must be called from inside an Ordered section of
// the calling process when a parallel run may be in flight.

// Queue is a FIFO wait queue of parked processes.
type Queue struct {
	waiters []*Proc
}

// Len reports the number of waiting processes.
func (q *Queue) Len() int { return len(q.waiters) }

// Wait parks the calling process on the queue until woken, and returns
// the simulated time spent waiting.  Deferred local time is materialized
// before the process becomes visible to wakers.
func (q *Queue) Wait(p *Proc) Time {
	p.FlushLag()
	t0 := p.Now()
	// Enqueue and park form one span (the grant persists from the
	// Ordered section through Park), so a waker can never observe the
	// process in the queue before it is parked.
	p.Ordered(func() { q.waiters = append(q.waiters, p) })
	p.Park()
	return p.Now() - t0
}

// WakeOne wakes the longest-waiting process, if any, and reports whether
// one was woken.
func (q *Queue) WakeOne() bool {
	if len(q.waiters) == 0 {
		return false
	}
	w := q.waiters[0]
	q.waiters = q.waiters[1:]
	w.Wake()
	return true
}

// WakeAll wakes every waiting process, in FIFO order, and returns how
// many were woken.
func (q *Queue) WakeAll() int {
	n := len(q.waiters)
	for _, w := range q.waiters {
		w.Wake()
	}
	q.waiters = q.waiters[:0]
	return n
}

// Remove drops p from the queue without waking it (used by primitives
// that implement timeouts or cancellation).  It reports whether p was
// queued.
func (q *Queue) Remove(p *Proc) bool {
	for i, w := range q.waiters {
		if w == p {
			q.waiters = append(q.waiters[:i], q.waiters[i+1:]...)
			return true
		}
	}
	return false
}

// Lock is a FIFO mutual-exclusion lock in simulated time.  Zero value is
// an unlocked lock.
type Lock struct {
	holder *Proc
	q      Queue
}

// Held reports whether the lock is currently held.
func (l *Lock) Held() bool { return l.holder != nil }

// Acquire takes the lock, parking the caller until it is available, and
// returns the simulated time spent waiting.  Ownership transfers
// directly to the longest waiter on Release, so acquisition is FIFO-fair
// and deterministic.
func (l *Lock) Acquire(p *Proc) Time {
	var taken, recursive bool
	p.Ordered(func() {
		switch l.holder {
		case nil:
			l.holder = p
			taken = true
		case p:
			recursive = true
		}
	})
	if recursive {
		panic("sim: recursive Lock.Acquire by " + p.Name)
	}
	if taken {
		return 0
	}
	// Contended: materialize deferred local time, re-check (the lock
	// may have been released while we flushed), then queue up.
	t0 := p.Now()
	p.FlushLag()
	p.Ordered(func() {
		if l.holder == nil {
			l.holder = p
			taken = true
			return
		}
		l.q.waiters = append(l.q.waiters, p)
	})
	if taken {
		return p.Now() - t0
	}
	p.Park()
	// Release transferred ownership to us before waking us.
	return p.Now() - t0
}

// Release hands the lock to the longest waiter, or unlocks it if none.
func (l *Lock) Release(p *Proc) {
	var bad bool
	p.Ordered(func() {
		if l.holder != p {
			bad = true
			return
		}
		if len(l.q.waiters) == 0 {
			l.holder = nil
			return
		}
		next := l.q.waiters[0]
		l.q.waiters = l.q.waiters[1:]
		l.holder = next
		next.Wake()
	})
	if bad {
		panic("sim: Lock.Release by non-holder " + p.Name)
	}
}

// Barrier synchronizes a fixed party of N processes in simulated time.
type Barrier struct {
	n       int
	arrived int
	q       Queue
}

// NewBarrier returns a barrier for n participants (n >= 1).
func NewBarrier(n int) *Barrier {
	if n < 1 {
		panic("sim: NewBarrier with n < 1")
	}
	return &Barrier{n: n}
}

// Arrive blocks until all n participants have arrived, then releases
// them all; it returns the simulated time the caller spent waiting.
// The barrier resets automatically and may be reused.
func (b *Barrier) Arrive(p *Proc) Time {
	var release bool
	p.Ordered(func() {
		b.arrived++
		if b.arrived == b.n {
			b.arrived = 0
			b.q.WakeAll()
			release = true
		}
	})
	if release {
		return 0
	}
	return b.q.Wait(p)
}

// Semaphore is a counting semaphore in simulated time.
type Semaphore struct {
	count int
	q     Queue
}

// NewSemaphore returns a semaphore with the given initial count.
func NewSemaphore(initial int) *Semaphore { return &Semaphore{count: initial} }

// Acquire decrements the count, parking the caller while it is zero.
// It returns the simulated time spent waiting.
func (s *Semaphore) Acquire(p *Proc) Time {
	var waited Time
	for {
		var got bool
		p.Ordered(func() {
			if s.count > 0 {
				s.count--
				got = true
			}
		})
		if got {
			return waited
		}
		waited += s.q.Wait(p)
	}
}

// Release increments the count and wakes one waiter, if any.
func (s *Semaphore) Release() {
	s.count++
	s.q.WakeOne()
}
