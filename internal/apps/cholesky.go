package apps

import (
	"fmt"
	"math"

	"spasm/internal/app"
	"spasm/internal/mem"
	"spasm/internal/sim"
	"spasm/internal/sparse"
	"spasm/internal/stats"
)

// Cholesky is the SPLASH sparse Cholesky factorization: right-looking
// column Cholesky (cdiv/cmod) over a symbolically factored random SPD
// matrix, with columns scheduled from a dynamically maintained queue of
// runnable tasks — the paper's fully dynamic application.  Which
// processor factors which column depends on simulated timing, so the
// reference pattern cannot be optimized statically; this drives the
// largest LogP-vs-target divergences in the paper (Figures 5, 9, 16,
// 18, 20).
type Cholesky struct {
	N     int
	Extra int
	Seed  int64

	a   *sparse.CSR
	sym *sparse.Symbolic

	// Shared data.
	lvals   *mem.Array // packed CSC factor values
	deps    *mem.Array // remaining-dependency counts per column
	qslots  *mem.Array // task-queue entries
	qhead   *mem.Array // head and tail indices
	qlock   *app.SpinLock
	colLock []*app.SpinLock // striped column locks
	stripes int

	// Host-side state.
	vals      []float64
	depCount  []int
	queue     []int
	head      int
	completed int
	idle      sim.Queue
	done      bool
	byProc    []int // columns factored per processor (load telemetry)
}

// NewCholesky returns a CHOLESKY instance at the given scale.
func NewCholesky(scale Scale, seed int64) app.Program {
	ch := &Cholesky{Extra: 2, Seed: seed}
	switch scale {
	case Tiny:
		ch.N = 48
	case Small:
		ch.N = 220
	default:
		ch.N = 600
	}
	return ch
}

func init() {
	register("cholesky", NewCholesky)
}

// Name implements app.Program.
func (h *Cholesky) Name() string { return "cholesky" }

// Setup generates the matrix, performs symbolic factorization, loads the
// lower triangle into the shared factor array, and seeds the task queue
// with the dependency-free columns.
func (h *Cholesky) Setup(c *app.Ctx) {
	h.a = sparse.RandomSPD(h.N, h.Extra, h.Seed)
	h.sym = sparse.SymbolicFactor(h.a)
	h.vals = h.sym.LoadLower(h.a)

	h.lvals = c.Space.Alloc("chol.lvals", h.sym.NNZ(), 8, mem.Blocked)
	h.deps = c.Space.Alloc("chol.deps", h.N, 8, mem.Blocked)
	h.qslots = c.Space.Alloc("chol.queue", h.N, 8, mem.Interleaved)
	h.qhead = c.Space.AllocAt("chol.qhead", 2, 8, 0)
	h.qlock = c.NewLock("chol.qlock", 0)
	h.stripes = min(16, c.P*2)
	for i := 0; i < h.stripes; i++ {
		h.colLock = append(h.colLock, c.NewLock(fmt.Sprintf("chol.clock%d", i), i%c.P))
	}

	h.depCount = append([]int(nil), h.sym.Deps...)
	for j := 0; j < h.N; j++ {
		if h.depCount[j] == 0 {
			h.queue = append(h.queue, j)
		}
	}
	h.byProc = make([]int, c.P)
}

// pop takes the next runnable column off the shared queue, or parks the
// processor until work (or completion) arrives.  It returns -1 when the
// factorization is finished.
func (h *Cholesky) pop(p *app.Proc) int {
	for {
		h.qlock.Lock(p)
		p.ReadElem(h.qhead, 0) // head index
		p.ReadElem(h.qhead, 1) // tail index
		if h.head < len(h.queue) {
			j := h.queue[h.head]
			p.ReadElem(h.qslots, h.head%h.N)
			h.head++
			p.WriteElem(h.qhead, 0)
			h.qlock.Unlock(p)
			return j
		}
		h.qlock.Unlock(p)
		var done bool
		p.S.Ordered(func() { done = h.done })
		if done {
			return -1
		}
		// Idle: wait for a push or for completion.  Flush deferred
		// local time and re-check done so a finish() during the
		// flush is not missed (the re-check and Wait's enqueue commit
		// through the ordered gate, so they are atomic against the
		// finishing processor's wake).
		p.S.FlushLag()
		p.S.Ordered(func() { done = h.done })
		if done {
			return -1
		}
		t0 := p.Now()
		h.idle.Wait(p.S)
		p.St.Add(stats.Sync, p.Now()-t0)
	}
}

// push appends a newly runnable column to the shared queue and wakes
// idle processors.
func (h *Cholesky) push(p *app.Proc, j int) {
	h.qlock.Lock(p)
	p.ReadElem(h.qhead, 1)
	h.queue = append(h.queue, j)
	p.WriteElem(h.qslots, (len(h.queue)-1)%h.N)
	p.WriteElem(h.qhead, 1)
	h.qlock.Unlock(p)
	p.S.Ordered(func() { h.idle.WakeAll() })
}

// finish marks the factorization complete and releases idle processors.
// The caller must hold the ordered-commit grant.
func (h *Cholesky) finish() {
	h.done = true
	h.idle.WakeAll()
}

// Body implements app.Program.
func (h *Cholesky) Body(p *app.Proc) {
	for {
		p.Phase("queue")
		j := h.pop(p)
		if j < 0 {
			return
		}
		h.factorColumn(p, j)
		h.byProc[p.ID]++
		// The completion count is shared across processors: commit it
		// through the ordered gate so the final increment (and the
		// finish it triggers) lands in dispatch order.
		p.S.Ordered(func() {
			h.completed++
			if h.completed == h.N {
				h.finish()
			}
		})
	}
}

// factorColumn performs cdiv(j) followed by cmod(i, j) for every
// affected column i, pushing columns whose dependencies drain to zero.
func (h *Cholesky) factorColumn(p *app.Proc, j int) {
	rows := h.sym.Struct[j]
	base := h.sym.ColPtr[j]

	// cdiv(j): scale column j by the square root of its pivot.  The
	// column's values are a consecutive slice of the factor array,
	// remote or local depending on which processor picked the task.
	p.Phase("cdiv")
	p.ReadRange(h.lvals, base, base+len(rows))
	d := h.vals[base]
	if d <= 0 {
		panic(fmt.Sprintf("cholesky: non-positive pivot %g at column %d", d, j))
	}
	h.vals[base] = math.Sqrt(d)
	for k := 1; k < len(rows); k++ {
		h.vals[base+k] /= h.vals[base]
	}
	p.Compute(SqrtCycles + int64(len(rows)-1)*FlopCycles)
	p.WriteRange(h.lvals, base, base+len(rows))

	// cmod(i, j) for each i in struct(j): subtract the scaled outer
	// product from column i under its stripe lock, then decrement its
	// dependency count.
	p.Phase("cmod")
	for k := 1; k < len(rows); k++ {
		i := rows[k]
		lk := h.colLock[i%h.stripes]
		lk.Lock(p)
		lij := h.vals[base+k]
		for k2 := k; k2 < len(rows); k2++ {
			r := rows[k2]
			idx := h.sym.Index(r, i)
			p.ReadElem(h.lvals, idx)
			h.vals[idx] -= lij * h.vals[base+k2]
			p.WriteElem(h.lvals, idx)
		}
		p.Compute(int64(len(rows)-k) * 2 * FlopCycles)

		p.ReadElem(h.deps, i)
		h.depCount[i]--
		ready := h.depCount[i] == 0
		p.WriteElem(h.deps, i)
		lk.Unlock(p)

		if ready {
			h.push(p, i)
		}
	}
}

// Check verifies L Lᵀ = A over the factored values.
func (h *Cholesky) Check() error {
	if h.completed != h.N {
		return fmt.Errorf("cholesky: %d of %d columns completed", h.completed, h.N)
	}
	total := 0
	for _, c := range h.byProc {
		total += c
	}
	if total != h.N {
		return fmt.Errorf("cholesky: per-processor counts sum to %d", total)
	}
	return h.sym.CheckFactor(h.a, h.vals, 1e-6)
}
