package flow

import (
	"testing"

	"spasm/internal/network"
	"spasm/internal/sim"
)

func newNet(t *testing.T, topo string, p int) *Net {
	t.Helper()
	tp, err := network.New(topo, p)
	if err != nil {
		t.Fatal(err)
	}
	return New(tp)
}

// An uncontended flow finishes at now + Startup + bytes*ByteTime, is
// reported as share 1 with zero wait, and costs zero recomputations —
// the fast path the event-reduction claim rests on.
func TestUncontendedFastPath(t *testing.T) {
	n := newNet(t, "mesh", 8)
	n.Startup = 10
	x := n.Transfer(100, 0, 3, 32)
	want := sim.Time(100) + 10 + 32*n.ByteTime
	if x.End != want {
		t.Fatalf("End = %v, want %v", x.End, want)
	}
	if x.Share != 1 || x.Wait != 0 || x.Occupancy() != 0 {
		t.Fatalf("uncontended flow reported share=%d wait=%v occ=%d", x.Share, x.Wait, x.Occupancy())
	}
	if n.Recomputes != 0 {
		t.Fatalf("fast path performed %d recomputations", n.Recomputes)
	}
}

// Two flows admitted on the same route at the same instant share the
// bottleneck: the second sees share 2 and takes twice the contention-free
// time over the overlap.
func TestEqualShareStretch(t *testing.T) {
	n := newNet(t, "mesh", 8)
	a := n.Transfer(0, 0, 1, 100)
	b := n.Transfer(0, 0, 1, 100)
	if a.Share != 1 {
		t.Fatalf("first flow share = %d, want 1", a.Share)
	}
	if b.Share != 2 {
		t.Fatalf("second flow share = %d, want 2", b.Share)
	}
	if b.Occupancy() != 50 {
		t.Fatalf("second flow occupancy = %d, want 50", b.Occupancy())
	}
	// The first flow's committed finish is not re-opened (arrival-committed
	// approximation); the second runs at 1/2 rate until a departs, then at
	// full rate.  100 byte-times at share 2 until a's end (covering half the
	// bytes), remainder at share 1.
	need := sim.Time(100) * n.ByteTime
	if a.End != need {
		t.Fatalf("first flow End = %v, want %v", a.End, need)
	}
	if b.End <= a.End || b.End > 2*need {
		t.Fatalf("second flow End = %v, want in (%v, %v]", b.End, a.End, 2*need)
	}
	if b.Wait != b.End-need {
		t.Fatalf("second flow Wait = %v, want %v", b.Wait, b.End-need)
	}
	if n.Recomputes == 0 {
		t.Fatal("contended admission performed no recomputations")
	}
}

// Disjoint routes do not interact: a flow between one pair of nodes does
// not stretch a flow between another pair that shares no links or ports.
func TestDisjointRoutesIndependent(t *testing.T) {
	n := newNet(t, "full", 8)
	n.Transfer(0, 0, 1, 1000)
	x := n.Transfer(0, 2, 3, 10)
	if x.Share != 1 || x.Wait != 0 {
		t.Fatalf("disjoint flow reported share=%d wait=%v", x.Share, x.Wait)
	}
}

// Endpoint ports are resources too: in a fully-connected topology two
// flows out of the same source share its injection port even though the
// point-to-point links differ.
func TestInjectionPortContention(t *testing.T) {
	n := newNet(t, "full", 8)
	n.Transfer(0, 0, 1, 1000)
	x := n.Transfer(0, 0, 2, 10)
	if x.Share != 2 {
		t.Fatalf("second flow from node 0 share = %d, want 2 (inj port shared)", x.Share)
	}
	if x.Bottleneck != n.InjID(0) {
		t.Fatalf("bottleneck = %d, want inj port %d", x.Bottleneck, n.InjID(0))
	}
}

// Settle prunes departed flows: after the floor passes a flow's end it no
// longer competes.
func TestSettlePrunes(t *testing.T) {
	n := newNet(t, "mesh", 8)
	a := n.Transfer(0, 0, 1, 100)
	n.Settle(a.End)
	x := n.Transfer(a.End, 0, 1, 100)
	if x.Share != 1 {
		t.Fatalf("flow after settle share = %d, want 1", x.Share)
	}
}

// The active-flow table never exceeds MaxFlows, and admissions remain
// deterministic as the bound retires earliest-ending flows.
func TestMaxFlowsBound(t *testing.T) {
	n := newNet(t, "mesh", 8)
	n.MaxFlows = 8
	for i := 0; i < 100; i++ {
		n.Transfer(sim.Time(i), i%8, (i+1)%8, 4+i%9)
		if len(n.flows) > n.MaxFlows {
			t.Fatalf("flow table grew to %d, bound %d", len(n.flows), n.MaxFlows)
		}
	}
}

// Reset returns the net to its post-New state: a replayed sequence is
// bit-identical to the first run.
func TestResetReplay(t *testing.T) {
	n := newNet(t, "cube", 8)
	drive := func() (sim.Time, uint64, uint64) {
		var sum sim.Time
		for i := 0; i < 200; i++ {
			src, dst := (i*3)%8, (i*5+1)%8
			if src == dst {
				dst = (dst + 1) % 8
			}
			x := n.Transfer(sim.Time(i*2), src, dst, 8+i%17)
			sum += x.End + sim.Time(x.Share)
		}
		return sum, n.Messages, n.Recomputes
	}
	s1, m1, r1 := drive()
	n.Reset()
	if n.Messages != 0 || n.Recomputes != 0 || len(n.flows) != 0 {
		t.Fatal("Reset left state behind")
	}
	s2, m2, r2 := drive()
	if s1 != s2 || m1 != m2 || r1 != r2 {
		t.Fatalf("replay diverged: %v/%d/%d vs %v/%d/%d", s1, m1, r1, s2, m2, r2)
	}
}

// Transfers are valid at times earlier than previously seen (processors'
// local clocks are not globally ordered); schedules stay monotone per
// flow and never deliver before admission plus latency.
func TestOutOfOrderAdmission(t *testing.T) {
	n := newNet(t, "mesh", 8)
	times := []sim.Time{100, 40, 70, 10, 90}
	for _, at := range times {
		x := n.Transfer(at, 1, 2, 16)
		if x.End < at+x.Latency {
			t.Fatalf("flow admitted at %v delivered at %v, before latency %v elapsed", at, x.End, x.Latency)
		}
	}
}
