package service

import (
	"fmt"
	"testing"
)

func TestLRUEviction(t *testing.T) {
	c := newLRU(2)
	for i := 0; i < 3; i++ {
		c.add(&entry{id: fmt.Sprintf("e%d", i)})
	}
	hits, misses, evictions, entries := c.counters()
	if entries != 2 || evictions != 1 {
		t.Fatalf("entries=%d evictions=%d, want 2/1", entries, evictions)
	}
	if _, ok := c.get("e0", true); ok {
		t.Fatal("oldest entry e0 survived eviction")
	}
	if _, ok := c.get("e2", true); !ok {
		t.Fatal("newest entry e2 evicted")
	}
	hits, misses, _, _ = c.counters()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", hits, misses)
	}
}

func TestLRURecencyOrder(t *testing.T) {
	c := newLRU(2)
	c.add(&entry{id: "a"})
	c.add(&entry{id: "b"})
	// Touch a so b becomes the eviction victim.
	if _, ok := c.get("a", false); !ok {
		t.Fatal("a missing")
	}
	c.add(&entry{id: "c"})
	if _, ok := c.get("a", false); !ok {
		t.Fatal("recently used entry a evicted")
	}
	if _, ok := c.get("b", false); ok {
		t.Fatal("least recently used entry b survived")
	}
	// Uncounted lookups must not move the counters.
	hits, misses, _, _ := c.counters()
	if hits != 0 || misses != 0 {
		t.Fatalf("uncounted lookups charged: hits=%d misses=%d", hits, misses)
	}
}

func TestLRURefreshDoesNotEvict(t *testing.T) {
	c := newLRU(2)
	c.add(&entry{id: "a"})
	c.add(&entry{id: "b"})
	if evicted := c.add(&entry{id: "a", err: "updated"}); evicted != 0 {
		t.Fatalf("refreshing a resident entry evicted %d", evicted)
	}
	e, ok := c.get("a", false)
	if !ok || e.err != "updated" {
		t.Fatalf("refresh lost: %+v ok=%v", e, ok)
	}
}
