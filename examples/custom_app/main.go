// custom_app shows how to write a new parallel application against the
// public Proc API and run it on every machine characterization.  The
// program is a 1-D Jacobi relaxation: each processor owns a contiguous
// slab of the grid and reads its neighbours' boundary cells each sweep —
// classic nearest-neighbour communication with strong locality.
//
//	go run ./examples/custom_app
package main

import (
	"fmt"
	"log"
	"math"

	"spasm"
)

// Jacobi is a 1-D three-point relaxation over a shared grid.
type Jacobi struct {
	N      int // grid cells
	Sweeps int

	grid *spasm.Array
	next *spasm.Array
	bar  *spasm.Barrier

	cur, nxt []float64
}

// Name implements spasm.Program.
func (j *Jacobi) Name() string { return "jacobi" }

// Setup allocates the two grids (blocked, so each processor's slab is
// local) and the sweep barrier, and initializes a step-function input.
func (j *Jacobi) Setup(c *spasm.Ctx) {
	j.grid = c.Space.Alloc("jacobi.grid", j.N, 8, spasm.Blocked)
	j.next = c.Space.Alloc("jacobi.next", j.N, 8, spasm.Blocked)
	j.bar = c.NewBarrier("jacobi.bar", c.P, 0)
	j.cur = make([]float64, j.N)
	j.nxt = make([]float64, j.N)
	for i := j.N / 2; i < j.N; i++ {
		j.cur[i] = 1
	}
}

// Body implements spasm.Program: each sweep reads the slab plus two halo
// cells (the neighbour reads are the only communication) and writes the
// relaxed values.
func (j *Jacobi) Body(p *spasm.Proc) {
	per := j.N / p.Ctx.P
	lo := p.ID * per
	hi := lo + per
	if p.ID == p.Ctx.P-1 {
		hi = j.N
	}
	for s := 0; s < j.Sweeps; s++ {
		src, dst := j.grid, j.next
		cur, nxt := j.cur, j.nxt
		if s%2 == 1 {
			src, dst = j.next, j.grid
			cur, nxt = j.nxt, j.cur
		}
		// Halo reads: the only remote references.
		if lo > 0 {
			p.ReadElem(src, lo-1)
		}
		if hi < j.N {
			p.ReadElem(src, hi)
		}
		p.ReadRange(src, lo, hi)
		for i := lo; i < hi; i++ {
			left, right := 0.0, 1.0
			if i > 0 {
				left = cur[i-1]
			}
			if i < j.N-1 {
				right = cur[i+1]
			}
			nxt[i] = 0.5 * (left + right)
		}
		p.Compute(int64(hi-lo) * 3)
		p.WriteRange(dst, lo, hi)
		j.bar.Arrive(p)
	}
}

// Check verifies the relaxation is converging toward the linear ramp.
func (j *Jacobi) Check() error {
	final := j.cur
	if j.Sweeps%2 == 1 {
		final = j.nxt
	}
	// After enough sweeps the interior must be monotone non-decreasing.
	for i := 1; i < j.N; i++ {
		if final[i]+1e-9 < final[i-1] {
			return fmt.Errorf("jacobi: not monotone at %d (%g > %g)", i, final[i-1], final[i])
		}
	}
	if math.IsNaN(final[j.N/2]) {
		return fmt.Errorf("jacobi: NaN in result")
	}
	return nil
}

func main() {
	fmt.Println("Custom application (1-D Jacobi) on all machine characterizations")
	fmt.Println()
	fmt.Printf("%-10s %14s %14s %14s %12s\n", "machine", "exec_us", "latency_us", "contention_us", "messages")
	for _, kind := range spasm.Machines() {
		prog := &Jacobi{N: 4096, Sweeps: 10}
		res, err := spasm.RunProgram(prog, spasm.Config{
			Kind: kind, Topology: "mesh", P: 16,
		})
		if err != nil {
			log.Fatal(err)
		}
		r := res.Stats
		fmt.Printf("%-10v %14.1f %14.1f %14.1f %12d\n",
			kind, r.Total.Micros(),
			r.Sum(spasm.Latency).Micros(),
			r.Sum(spasm.Contention).Micros(),
			r.Messages())
	}
	fmt.Println()
	fmt.Println("Nearest-neighbour halo exchange has strong locality: the cached")
	fmt.Println("machines only re-fetch the boundary blocks that ping-pong between")
	fmt.Println("neighbours each sweep, while the cache-less LogP machine pays a")
	fmt.Println("round trip for every halo probe, every sweep.")
}
