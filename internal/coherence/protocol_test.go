package coherence

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"spasm/internal/cache"
	"spasm/internal/mem"
	"spasm/internal/sim"
	"spasm/internal/stats"
)

func TestProtocolParsing(t *testing.T) {
	for _, p := range []Protocol{Berkeley, MSI} {
		got, err := ParseProtocol(p.String())
		if err != nil || got != p {
			t.Errorf("ParseProtocol(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParseProtocol("mesif"); err == nil {
		t.Error("unknown protocol accepted")
	}
	if Protocol(9).String() == "" {
		t.Error("unknown protocol name")
	}
}

func msiEngine(p int, tr Transport) (*Engine, *mem.Space, *mem.Array) {
	eng, space, arr := testEngine(p, tr)
	eng.Protocol = MSI
	return eng, space, arr
}

func TestMSIReadFromDirtyWritesBack(t *testing.T) {
	tr := &flatTransport{delay: 100}
	eng, space, arr := msiEngine(4, tr)
	lo, _ := arr.OwnerRange(2)
	addr := arr.At(lo) // home = 2
	drive(t, 4, func(p *sim.Proc, r *stats.Run) {
		eng.Write(p, &r.Procs[1], 1, addr) // node 1 dirty
		tr.log = nil
		eng.Read(p, &r.Procs[3], 3, addr)
	})
	// MSI: req -> fetch -> writeback to home -> memory supplies.
	if fmt.Sprint(tr.log) != "[read-req forward writeback data-reply]" {
		t.Errorf("MSI read-from-dirty classes = %v", tr.log)
	}
	b := space.BlockOf(addr)
	if s := eng.Cache(1).State(b); s != cache.UnOwned {
		t.Errorf("previous owner state = %v, want V (clean shared)", s)
	}
	if s := eng.Cache(3).State(b); s != cache.UnOwned {
		t.Errorf("requester state = %v, want V", s)
	}
	if err := eng.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestMSISecondReadServedByMemory(t *testing.T) {
	// After the first read forced a writeback, further readers are
	// served by memory with no owner involvement.
	tr := &flatTransport{delay: 100}
	eng, _, arr := msiEngine(4, tr)
	lo, _ := arr.OwnerRange(2)
	addr := arr.At(lo)
	drive(t, 4, func(p *sim.Proc, r *stats.Run) {
		eng.Write(p, &r.Procs[1], 1, addr)
		eng.Read(p, &r.Procs[3], 3, addr)
		tr.log = nil
		eng.Read(p, &r.Procs[0], 0, addr)
	})
	if fmt.Sprint(tr.log) != "[read-req data-reply]" {
		t.Errorf("memory-supplied read classes = %v", tr.log)
	}
}

func TestMSINeverCreatesSharedDirty(t *testing.T) {
	f := func(seed int64) bool {
		tr := &flatTransport{delay: 50}
		eng, _, arr := msiEngine(4, tr)
		rng := rand.New(rand.NewSource(seed))
		e := sim.NewEngine()
		run := stats.NewRun(4)
		e.Spawn("driver", func(p *sim.Proc) {
			for i := 0; i < 300; i++ {
				n := rng.Intn(4)
				idx := rng.Intn(arr.N)
				if rng.Intn(3) == 0 {
					eng.Write(p, &run.Procs[n], n, arr.At(idx))
				} else {
					eng.Read(p, &run.Procs[n], n, arr.At(idx))
				}
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		for n := 0; n < 4; n++ {
			bad := false
			eng.Cache(n).ForEach(func(b mem.Block, s cache.State) {
				if s == cache.OwnedShared {
					bad = true
				}
			})
			if bad {
				return false
			}
		}
		return eng.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestMSIWriteMissInvalidatesOwnerOnce(t *testing.T) {
	tr := &flatTransport{delay: 100}
	eng, space, arr := msiEngine(4, tr)
	lo, _ := arr.OwnerRange(0)
	addr := arr.At(lo) // home = 0
	run := drive(t, 4, func(p *sim.Proc, r *stats.Run) {
		eng.Write(p, &r.Procs[1], 1, addr) // 1 dirty
		tr.log = nil
		eng.Write(p, &r.Procs[2], 2, addr) // fetch-invalidate 1, then 2 dirty
	})
	// The owner must be invalidated in the fetch path, not again in
	// the sharer-invalidation loop: exactly one writeback, no inval
	// messages (1's sharer bit was cleared).
	if fmt.Sprint(tr.log) != "[write-req forward writeback data-reply]" {
		t.Errorf("MSI write-miss classes = %v", tr.log)
	}
	b := space.BlockOf(addr)
	if s := eng.Cache(1).State(b); s != cache.Invalid {
		t.Errorf("old owner state = %v", s)
	}
	if s := eng.Cache(2).State(b); s != cache.OwnedExclusive {
		t.Errorf("new owner state = %v", s)
	}
	if run.Procs[2].Invals != 1 {
		t.Errorf("invals = %d, want 1", run.Procs[2].Invals)
	}
}

// TestProtocolsSameHitMissBehaviorForPrivateData: for references with no
// sharing, Berkeley and MSI must behave identically.
func TestProtocolsSamePrivateBehavior(t *testing.T) {
	count := func(proto Protocol) uint64 {
		tr := &flatTransport{delay: 100}
		eng, _, arr := testEngine(4, tr)
		eng.Protocol = proto
		run := drive(t, 4, func(p *sim.Proc, r *stats.Run) {
			for n := 0; n < 4; n++ {
				lo, hi := arr.OwnerRange(n)
				for i := lo; i < hi && i < lo+20; i++ {
					eng.Write(p, &r.Procs[n], n, arr.At(i))
					eng.Read(p, &r.Procs[n], n, arr.At(i))
				}
			}
		})
		return run.Count(func(q *stats.Proc) uint64 { return q.Messages })
	}
	if b, m := count(Berkeley), count(MSI); b != m {
		t.Errorf("private-data traffic differs: berkeley=%d msi=%d", b, m)
	}
}

// TestProtocolTrafficDiffersUnderSharing: migratory sharing makes the
// two protocols take different message paths (Berkeley: cache-to-cache;
// MSI: writeback + memory supply) — the engine must actually be
// exercising two distinct protocols.
func TestProtocolTrafficDiffersUnderSharing(t *testing.T) {
	count := func(proto Protocol) string {
		tr := &flatTransport{delay: 100}
		eng, _, arr := testEngine(4, tr)
		eng.Protocol = proto
		drive(t, 4, func(p *sim.Proc, r *stats.Run) {
			lo, _ := arr.OwnerRange(3)
			addr := arr.At(lo)
			for turn := 0; turn < 6; turn++ {
				n := turn % 3
				eng.Read(p, &r.Procs[n], n, addr)
				eng.Write(p, &r.Procs[n], n, addr)
			}
		})
		return fmt.Sprint(tr.log)
	}
	if b, m := count(Berkeley), count(MSI); b == m {
		t.Error("Berkeley and MSI produced identical message sequences under migratory sharing")
	}
}
