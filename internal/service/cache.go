package service

import (
	"container/list"
	"encoding/json"
	"time"

	"spasm/internal/probe"
	"spasm/internal/stats"
)

// entry is one completed run in the content-addressed result cache: the
// canonical request, the deterministic JSON document served to clients
// (byte-identical on every hit), the decoded statistics for in-process
// consumers (figure assembly), and the error string for failed runs —
// failures are deterministic too, so they are cached alongside results.
//
// The run's time-resolved profile is materialized lazily: the first
// GET /v1/runs/{id}/profile re-executes the spec with the probe
// attached (profiles are deterministic, so this is safe) and memoizes
// the decoded profile plus its canonical encoding here, where it ages
// out together with the result it belongs to.
type entry struct {
	id    string
	req   RunRequest
	doc   json.RawMessage
	stats *stats.Run
	err   string
	// canceled marks a job dropped before execution because every
	// waiter abandoned it; canceled entries are never cached (the
	// outcome reflects client behaviour, not the spec).
	canceled bool

	prof      *probe.Profile
	profBytes []byte
}

// lru is a fixed-capacity least-recently-used cache of entries keyed by
// content address.  It is not self-locking: every method must be called
// with the owning Server's mutex held.
type lru struct {
	max  int
	ll   *list.List // front = most recently used; values are *entry
	byID map[string]*list.Element

	hits, misses, evictions uint64
}

func newLRU(max int) *lru {
	return &lru{max: max, ll: list.New(), byID: make(map[string]*list.Element)}
}

// get returns the entry for id, promoting it to most recently used.
// When count is true the lookup is charged to the hit/miss counters
// (the submit path); status polls pass false so they don't inflate the
// hit rate.
func (c *lru) get(id string, count bool) (*entry, bool) {
	el, ok := c.byID[id]
	if !ok {
		if count {
			c.misses++
		}
		return nil, false
	}
	if count {
		c.hits++
	}
	c.ll.MoveToFront(el)
	return el.Value.(*entry), true
}

// add inserts (or refreshes) an entry and evicts past capacity,
// returning how many entries were evicted.
func (c *lru) add(e *entry) (evicted int) {
	if el, ok := c.byID[e.id]; ok {
		el.Value = e
		c.ll.MoveToFront(el)
		return 0
	}
	c.byID[e.id] = c.ll.PushFront(e)
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byID, oldest.Value.(*entry).id)
		c.evictions++
		evicted++
	}
	return evicted
}

// counters reports the cache statistics exported on /metrics.
func (c *lru) counters() (hits, misses, evictions uint64, entries int) {
	return c.hits, c.misses, c.evictions, c.ll.Len()
}

// negCache is the bounded, TTL'd side cache for failed runs.  Failures
// are deterministic (a bad spec fails the same way every time), so they
// are worth remembering — but they must not displace successful results
// from the main LRU, and a failure caused by an operational limit (a
// run timeout under a deadline the operator later raises) must not be
// remembered forever.  Hence: a small separate capacity and an expiry.
// Like lru it is not self-locking; every method runs under the owning
// Server's mutex.
type negCache struct {
	max int
	ttl time.Duration
	ll  *list.List // front = newest; values are *negEntry
	byID map[string]*list.Element

	hits uint64
}

type negEntry struct {
	e   *entry
	exp time.Time
}

func newNegCache(max int, ttl time.Duration) *negCache {
	return &negCache{max: max, ttl: ttl, ll: list.New(), byID: make(map[string]*list.Element)}
}

// get returns the failed entry for id if present and unexpired (expired
// entries are dropped on sight).  When count is true the lookup charges
// the negative-hit counter (the submit path); status polls pass false.
func (c *negCache) get(id string, now time.Time, count bool) (*entry, bool) {
	el, ok := c.byID[id]
	if !ok {
		return nil, false
	}
	ne := el.Value.(*negEntry)
	if now.After(ne.exp) {
		c.ll.Remove(el)
		delete(c.byID, id)
		return nil, false
	}
	if count {
		c.hits++
	}
	return ne.e, true
}

// add inserts (or refreshes) a failed entry, restarting its TTL, and
// evicts the oldest entries past capacity.
func (c *negCache) add(e *entry, now time.Time) {
	if el, ok := c.byID[e.id]; ok {
		el.Value = &negEntry{e: e, exp: now.Add(c.ttl)}
		c.ll.MoveToFront(el)
		return
	}
	c.byID[e.id] = c.ll.PushFront(&negEntry{e: e, exp: now.Add(c.ttl)})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byID, oldest.Value.(*negEntry).e.id)
	}
}

// counters reports the negative-cache statistics exported on /metrics.
func (c *negCache) counters() (hits uint64, entries int) {
	return c.hits, c.ll.Len()
}
