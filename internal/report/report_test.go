package report

import (
	"strings"
	"testing"

	"spasm/internal/exp"
	"spasm/internal/machine"
)

// syntheticFigure builds a FigureResult without running simulations.
func syntheticFigure() *exp.FigureResult {
	fig, _ := exp.ByNumber(7) // IS on Mesh: Contention
	fr := &exp.FigureResult{Figure: fig}
	for i, kind := range []machine.Kind{machine.LogP, machine.CLogP, machine.Target} {
		s := exp.Series{Machine: kind}
		for j, p := range []int{2, 4, 8, 16} {
			s.Points = append(s.Points, exp.Point{
				P:     p,
				Value: float64((i + 1) * (j + 1) * 100),
			})
		}
		fr.Series = append(fr.Series, s)
	}
	return fr
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "demo", Headers: []string{"a", "bbbb"}}
	tb.Add(1, 2.5)
	tb.Add("xx", 100.0)
	out := tb.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "bbbb") {
		t.Errorf("missing title/header:\n%s", out)
	}
	if !strings.Contains(out, "2.5") || !strings.Contains(out, "100.0") {
		t.Errorf("missing float formatting:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("%d lines:\n%s", len(lines), out)
	}
}

func TestFigureTable(t *testing.T) {
	out := FigureTable(syntheticFigure()).String()
	for _, want := range []string{"Figure 7", "IS on Mesh: Contention", "LogP+Cache", "Target", "16"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestFigureCSV(t *testing.T) {
	out := FigureCSV(syntheticFigure())
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("%d CSV lines, want 5:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "figure,app,topology,metric,procs") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "7,is,mesh,contention,2,") {
		t.Errorf("row = %q", lines[1])
	}
	for _, l := range lines[1:] {
		if got := strings.Count(l, ","); got != 7 {
			t.Errorf("row %q has %d commas, want 7", l, got)
		}
	}
}

func TestChartRendering(t *testing.T) {
	out := Chart(syntheticFigure(), 72, 20)
	for _, want := range []string{"Figure 7", "T=Target", "L=LogP", "C=LogP+Cache", "procs"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// All three markers must appear in the plot area.
	for _, m := range []string{"T", "L", "C"} {
		if strings.Count(out, m) < 2 {
			t.Errorf("marker %s missing from chart:\n%s", m, out)
		}
	}
	// x labels present.
	if !strings.Contains(out, "16") {
		t.Errorf("missing x label:\n%s", out)
	}
}

func TestChartMinimumDimensions(t *testing.T) {
	out := Chart(syntheticFigure(), 1, 1) // clamped, must not panic
	if len(out) == 0 {
		t.Error("empty chart")
	}
}

func TestChartMonotoneSeriesOrdering(t *testing.T) {
	// The highest curve's marker (LogP here would be lowest... use
	// Target = 3x values) must appear above the lowest curve at the
	// last column.
	fr := syntheticFigure()
	out := Chart(fr, 72, 24)
	lines := strings.Split(out, "\n")
	rowOf := func(marker byte) int {
		for i, l := range lines {
			if strings.LastIndexByte(l, marker) > 20 {
				return i
			}
		}
		return -1
	}
	// Target has the largest values -> its marker appears on an
	// earlier (higher) line than LogP's (smallest values).
	if rt, rl := rowOf('T'), rowOf('L'); rt == -1 || rl == -1 || rt > rl {
		t.Errorf("series vertical order wrong: T at %d, L at %d\n%s", rt, rl, out)
	}
}

func TestEmptyFigure(t *testing.T) {
	fr := &exp.FigureResult{Figure: exp.Figures[0]}
	if out := FigureTable(fr).String(); out == "" {
		t.Error("empty table output")
	}
	if out := FigureCSV(fr); !strings.Contains(out, "figure,") {
		t.Error("empty CSV missing header")
	}
}
