package sim

import (
	"testing"
	"testing/quick"
)

func TestDeferAdvancesLocalClockOnly(t *testing.T) {
	e := NewEngine()
	e.Spawn("a", func(p *Proc) {
		p.Defer(100)
		if p.Now() != 100 {
			t.Errorf("local now = %v, want 100", p.Now())
		}
		if e.Now() != 0 {
			t.Errorf("global now = %v, want 0", e.Now())
		}
		if p.Lag() != 100 {
			t.Errorf("lag = %v", p.Lag())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDeferFoldsIntoNextHold(t *testing.T) {
	e := NewEngine()
	e.Spawn("a", func(p *Proc) {
		p.Defer(100)
		p.Hold(50) // one event, landing at 150
		if p.Now() != 150 || p.Lag() != 0 {
			t.Errorf("now = %v, lag = %v", p.Now(), p.Lag())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// start event + one combined hold event
	if e.Events != 2 {
		t.Errorf("events = %d, want 2", e.Events)
	}
}

func TestDeferCheaperThanHold(t *testing.T) {
	run := func(deferred bool) uint64 {
		e := NewEngine()
		e.Spawn("a", func(p *Proc) {
			for i := 0; i < 100; i++ {
				if deferred {
					p.Defer(10)
				} else {
					p.Hold(10)
				}
			}
			p.Hold(1)
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Events
	}
	if d, h := run(true), run(false); d >= h {
		t.Errorf("deferred events %d not below held events %d", d, h)
	}
}

func TestDeferSameTimingAsHold(t *testing.T) {
	run := func(deferred bool) Time {
		e := NewEngine()
		var end Time
		e.Spawn("a", func(p *Proc) {
			for i := 0; i < 50; i++ {
				if deferred {
					p.Defer(Time(i))
				} else {
					p.Hold(Time(i))
				}
			}
			end = p.Now()
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return end
	}
	if d, h := run(true), run(false); d != h {
		t.Errorf("deferred end %v != held end %v", d, h)
	}
}

func TestFlushLagMaterializes(t *testing.T) {
	e := NewEngine()
	e.Spawn("a", func(p *Proc) {
		p.Defer(70)
		p.FlushLag()
		if p.Lag() != 0 || e.Now() != 70 || p.Now() != 70 {
			t.Errorf("after flush: lag=%v global=%v local=%v", p.Lag(), e.Now(), p.Now())
		}
		p.FlushLag() // no-op
		if e.Events != 2 {
			t.Errorf("events = %d, want 2 (start + flush)", e.Events)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestHoldUntilClearsLag(t *testing.T) {
	e := NewEngine()
	e.Spawn("a", func(p *Proc) {
		p.Defer(100)
		p.HoldUntil(300)
		if p.Now() != 300 || p.Lag() != 0 {
			t.Errorf("now=%v lag=%v", p.Now(), p.Lag())
		}
		p.Defer(100)
		p.HoldUntil(350) // earlier than local 400: no-op
		if p.Now() != 400 {
			t.Errorf("now = %v, want 400", p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestQueueWaitFlushesBeforeEnqueue(t *testing.T) {
	// A lagging waiter must be woken reliably: Wait materializes the
	// lag before the process becomes visible to wakers.
	e := NewEngine()
	var q Queue
	woken := false
	e.Spawn("waiter", func(p *Proc) {
		p.Defer(500)
		q.Wait(p)
		woken = true
	})
	e.Spawn("waker", func(p *Proc) {
		p.Hold(1000)
		for q.WakeAll() == 0 {
			p.Hold(100)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !woken {
		t.Error("lagging waiter never woken")
	}
}

func TestLockAcquireWithLagIsFair(t *testing.T) {
	// A process with large deferred time contending for a lock must
	// not deadlock or double-acquire.
	e := NewEngine()
	var l Lock
	holds := 0
	for i := 0; i < 4; i++ {
		i := i
		e.Spawn("p", func(p *Proc) {
			p.Defer(Time(1000 * (i + 1)))
			l.Acquire(p)
			holds++
			p.Hold(10)
			l.Release(p)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if holds != 4 {
		t.Errorf("holds = %d", holds)
	}
}

// Property: interleaving Defer and Hold arbitrarily, the final local
// clock equals the sum of all durations, and lag is always non-negative.
func TestDeferHoldEquivalenceProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		e := NewEngine()
		ok := true
		e.Spawn("a", func(p *Proc) {
			var want Time
			for _, op := range ops {
				d := Time(op % 64)
				want += d
				if op%2 == 0 {
					p.Defer(d)
				} else {
					p.Hold(d)
				}
				if p.Now() != want || p.Lag() < 0 {
					ok = false
				}
			}
		})
		if err := e.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
