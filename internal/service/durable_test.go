package service_test

import (
	"bytes"
	"context"
	"testing"
	"time"

	"spasm/internal/service"
	"spasm/internal/service/client"
	"spasm/internal/service/store"
)

// TestStoreWarmRestart is the durability contract end to end: a run
// computed by one spasmd process is served by the next process from
// disk — cached, byte-identical, and without burning a worker.
func TestStoreWarmRestart(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	req := service.RunRequest{App: "fft", Scale: "tiny", Machine: "target", Topology: "mesh", P: 4}

	// First process: compute the run and its profile, both written
	// through to the store.
	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, c1 := newTestService(t, service.Config{Workers: 2, Store: st1})
	first, err := c1.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if first.State != service.StateDone || first.Cached {
		t.Fatalf("first run: state=%s cached=%v, want a fresh done run", first.State, first.Cached)
	}
	firstProf, err := c1.ProfileRaw(ctx, first.ID)
	if err != nil {
		t.Fatal(err)
	}

	// Second process: same directory, fresh memory.  The submission is
	// answered from disk outright.
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Stats().Entries == 0 {
		t.Fatal("reopened store is empty; nothing was persisted")
	}
	svc2, c2 := newTestService(t, service.Config{Workers: 2, Store: st2})
	second, err := c2.SubmitRun(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if second.State != service.StateDone || !second.Cached {
		t.Fatalf("restarted submit: state=%s cached=%v, want done from the store", second.State, second.Cached)
	}
	if !bytes.Equal(first.Result, second.Result) {
		t.Fatalf("result bytes differ across restart:\n%s\nvs\n%s", first.Result, second.Result)
	}
	secondProf, err := c2.ProfileRaw(ctx, first.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(firstProf, secondProf) {
		t.Fatal("profile bytes differ across restart")
	}

	// No worker ran: the second process never counted a submission or a
	// profile derivation — both were store hits.
	page := svc2.RenderMetrics()
	if v, ok := client.MetricValue(page, "spasmd_jobs_submitted_total"); !ok || v != 0 {
		t.Fatalf("spasmd_jobs_submitted_total = %v after restart, want 0 (no re-simulation)", v)
	}
	if v, ok := client.MetricValue(page, "spasmd_profile_cache_misses_total"); !ok || v != 0 {
		t.Fatalf("spasmd_profile_cache_misses_total = %v after restart, want 0", v)
	}
	if v, ok := client.MetricValue(page, "spasmd_store_hits_total"); !ok || v < 1 {
		t.Fatalf("spasmd_store_hits_total = %v after restart, want >= 1", v)
	}
}

// TestStoreStatusAfterRestart: GET /v1/runs/{id} also reads through the
// store, so a poll-based client can recover its run by ID after the
// daemon bounced.
func TestStoreStatusAfterRestart(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, c1 := newTestService(t, service.Config{Workers: 2, Store: st1})
	first, err := c1.Run(ctx, service.RunRequest{App: "fft", Scale: "tiny", Machine: "target", Topology: "mesh", P: 2})
	if err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, c2 := newTestService(t, service.Config{Workers: 2, Store: st2})
	got, err := c2.GetRun(ctx, first.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != service.StateDone || !bytes.Equal(got.Result, first.Result) {
		t.Fatalf("poll after restart: state=%s, result match=%v", got.State, bytes.Equal(got.Result, first.Result))
	}
}
