package coherence

import (
	"fmt"
	"testing"

	"spasm/internal/cache"
	"spasm/internal/mem"
	"spasm/internal/sim"
	"spasm/internal/stats"
)

// TestProtocolTransitionTable drives each protocol through the canonical
// sharing scenarios and asserts the exact resulting cache states on
// every node.  States: I = Invalid, V = UnOwned, SD = OwnedShared
// (Berkeley only), D = OwnedExclusive.
func TestProtocolTransitionTable(t *testing.T) {
	type op struct {
		node  int
		write bool
	}
	r := func(n int) op { return op{node: n} }
	w := func(n int) op { return op{node: n, write: true} }

	cases := []struct {
		name string
		ops  []op
		// expected states per protocol, nodes 1..3 (block homed at 0)
		berkeley string
		msi      string
		update   string
	}{
		{
			name:     "single read",
			ops:      []op{r(1)},
			berkeley: "V I I", msi: "V I I", update: "V I I",
		},
		{
			name:     "two readers",
			ops:      []op{r(1), r(2)},
			berkeley: "V V I", msi: "V V I", update: "V V I",
		},
		{
			name:     "cold write",
			ops:      []op{w(1)},
			berkeley: "D I I", msi: "D I I", update: "D I I",
		},
		{
			name:     "read then write (upgrade)",
			ops:      []op{r(1), w(1)},
			berkeley: "D I I", msi: "D I I", update: "D I I",
		},
		{
			name: "write invalidates/updates readers",
			ops:  []op{r(1), r(2), r(3), w(1)},
			// invalidation protocols kill the other copies; update
			// refreshes them in place.
			berkeley: "D I I", msi: "D I I", update: "V V V",
		},
		{
			name: "read from dirty",
			ops:  []op{w(1), r(2)},
			// Berkeley: owner supplies, keeps shared-dirty; MSI and
			// Update force a writeback and everyone is clean.
			berkeley: "SD V I", msi: "V V I", update: "V V I",
		},
		{
			name:     "migratory write-write",
			ops:      []op{w(1), w(2)},
			berkeley: "I D I", msi: "I D I", update: "V V I",
		},
		{
			name:     "dirty, read, write back by owner",
			ops:      []op{w(1), r(2), w(1)},
			berkeley: "D I I", msi: "D I I", update: "V V I",
		},
		{
			name:     "three-party migration",
			ops:      []op{w(1), w(2), w(3)},
			berkeley: "I I D", msi: "I I D", update: "V V V",
		},
	}

	protocols := []Protocol{Berkeley, MSI, Update}
	for _, tc := range cases {
		for _, proto := range protocols {
			proto := proto
			want := map[Protocol]string{Berkeley: tc.berkeley, MSI: tc.msi, Update: tc.update}[proto]
			t.Run(fmt.Sprintf("%s/%v", tc.name, proto), func(t *testing.T) {
				tr := &flatTransport{delay: 100}
				eng, space, arr := testEngine(4, tr)
				eng.Protocol = proto
				lo, _ := arr.OwnerRange(0)
				addr := arr.At(lo)
				drive(t, 4, func(p *sim.Proc, run *stats.Run) {
					for _, o := range tc.ops {
						if o.write {
							eng.Write(p, &run.Procs[o.node], o.node, addr)
						} else {
							eng.Read(p, &run.Procs[o.node], o.node, addr)
						}
					}
				})
				b := space.BlockOf(addr)
				got := fmt.Sprintf("%v %v %v",
					eng.Cache(1).State(b), eng.Cache(2).State(b), eng.Cache(3).State(b))
				if got != want {
					t.Errorf("states = %q, want %q", got, want)
				}
				if err := eng.CheckInvariants(); err != nil {
					t.Error(err)
				}
			})
		}
	}
}

// TestProtocolsSequentialConsistencyOrdering: on every protocol, a write
// completes only after all stale copies are gone (invalidation) or
// refreshed (update) — modeled as the writer's transaction spanning the
// coherence actions.  Verify the requester's clock advances past the
// message schedule on the priced transport.
func TestWriteBlocksForCoherenceActions(t *testing.T) {
	for _, proto := range Protocols() {
		tr := &flatTransport{delay: 100}
		eng, _, arr := testEngine(4, tr)
		eng.Protocol = proto
		lo, _ := arr.OwnerRange(0)
		addr := arr.At(lo)
		var freeHit, sharedWrite sim.Time
		drive(t, 4, func(p *sim.Proc, run *stats.Run) {
			eng.Write(p, &run.Procs[1], 1, addr)
			t0 := p.Now()
			eng.Write(p, &run.Procs[1], 1, addr) // exclusive: free
			freeHit = p.Now() - t0
			eng.Read(p, &run.Procs[2], 2, addr)
			eng.Read(p, &run.Procs[3], 3, addr)
			t0 = p.Now()
			eng.Write(p, &run.Procs[1], 1, addr) // must settle 2 and 3
			sharedWrite = p.Now() - t0
		})
		if sharedWrite <= freeHit {
			t.Errorf("%v: shared write (%v) not above exclusive hit (%v)",
				proto, sharedWrite, freeHit)
		}
	}
}

var _ = mem.Block(0)
var _ = cache.Invalid
