package network

import (
	"fmt"

	"spasm/internal/sim"
)

// Fabric adds timing and contention to a Topology.  Messages are
// circuit-switched: a message occupies its source's injection port, every
// link on its route, and its destination's ejection port from the moment
// the circuit is established until the last byte has been transmitted.
// With wormhole routing on serial links and negligible switching delay,
// the transmission occupies the circuit for bytes * ByteTime (+ an
// optional per-hop switch delay, zero by default as in the paper).
type Fabric struct {
	topo Topology

	// ByteTime is the per-byte transmission time of a serial link
	// (defaults to sim.SerialByte, i.e. 20 MB/s).
	ByteTime sim.Time
	// SwitchDelay is the per-hop circuit-establishment delay.  The
	// paper assumes it negligible and ignores it; it is configurable
	// for sensitivity studies.
	SwitchDelay sim.Time

	linkFree []sim.Time
	injFree  []sim.Time
	ejFree   []sim.Time

	// touched records the links whose linkFree entry has been written
	// since the last Reset, so Reset clears O(messages' footprint)
	// instead of sweeping all NumLinks entries — on the fully connected
	// topology that sweep is O(p²), which dominates pooled small runs at
	// large p.  A link is recorded the first time it leaves the zero
	// state; duplicates (possible only when a transmission ends at time
	// zero) merely clear twice.
	touched []int32

	// rc caches hot full routes above RouteTableMaxP, where the
	// topology serves Route from a shared scratch buffer instead of a
	// precomputed table (see routecache.go).  nil for table-backed p.
	rc *routeCache

	// slow holds the per-link slowdown factor for degraded links (fault
	// injection: a link that transmits N times slower than nominal).
	// It stays nil until the first Degrade call, keeping the factor scan
	// off the Reserve hot path for undamaged fabrics; once allocated it
	// is indexed by link id, so the scan is an array walk with no map
	// lookups.  Entries are 0 for healthy links, >= 1 for degraded ones.
	slow []int32

	// Observer, when non-nil, is invoked from Reserve for every message
	// the fabric carries: the requested departure time, the resulting
	// schedule, the endpoints and size, and the links of the route.
	// The route slice is only valid for the duration of the call.
	Observer func(now sim.Time, x Xmit, src, dst, bytes int, route []int)

	// Messages and Bytes count all traffic carried by the fabric.
	Messages uint64
	Bytes    uint64
	// HopEvents counts per-hop resource reservations: every message
	// books its route's links plus the two endpoint ports, so each
	// Reserve adds len(route)+2.  It is the detailed model's unit of
	// simulation work — the event count a per-hop network simulator
	// would dispatch — and the baseline the flow tier's event-reduction
	// claim is measured against.
	HopEvents uint64
}

// NewFabric returns a fabric over the given topology with the paper's
// link parameters (20 MB/s serial links, zero switching delay).
func NewFabric(t Topology) *Fabric {
	f := &Fabric{
		topo:     t,
		ByteTime: sim.SerialByte,
		linkFree: make([]sim.Time, t.NumLinks()),
		injFree:  make([]sim.Time, t.P()),
		ejFree:   make([]sim.Time, t.P()),
	}
	if t.P() > RouteTableMaxP {
		f.rc = newRouteCache(t)
	}
	return f
}

// routeFor returns the route Reserve prices: table-backed topologies
// answer directly; larger ones go through the fabric's route cache.
func (f *Fabric) routeFor(src, dst int) []int {
	if f.rc != nil {
		return f.rc.route(src, dst)
	}
	return f.topo.Route(src, dst)
}

// Topology returns the underlying topology.
func (f *Fabric) Topology() Topology { return f.topo }

// Reset returns the fabric to its post-NewFabric state in place: all
// link, injection, and ejection ports free at time zero, traffic counters
// zeroed, no Observer, and every link restored to nominal speed.  The
// per-resource availability arrays — and the Degrade factor array, if one
// was ever allocated — are cleared rather than reallocated, and the
// topology (with its precomputed route tables) is reused as-is, since it
// is immutable.  ByteTime and SwitchDelay are configuration of the pooled
// context and are left alone.
func (f *Fabric) Reset() {
	for _, l := range f.touched {
		f.linkFree[l] = 0
	}
	f.touched = f.touched[:0]
	for i := range f.injFree {
		f.injFree[i] = 0
	}
	for i := range f.ejFree {
		f.ejFree[i] = 0
	}
	for i := range f.slow {
		f.slow[i] = 0
	}
	f.Observer = nil
	f.Messages = 0
	f.Bytes = 0
	f.HopEvents = 0
}

// Degrade marks a directed link as transmitting factor times slower than
// nominal (factor >= 1): fault injection for studying what per-link
// detail the abstract network models cannot see.
func (f *Fabric) Degrade(link, factor int) {
	if link < 0 || link >= len(f.linkFree) {
		panic(fmt.Sprintf("network: Degrade of link %d out of range", link))
	}
	if factor < 1 {
		panic(fmt.Sprintf("network: Degrade factor %d < 1", factor))
	}
	if f.slow == nil {
		f.slow = make([]int32, len(f.linkFree))
	}
	f.slow[link] = int32(factor)
}

// Xmit is the result of reserving the fabric for one message.
type Xmit struct {
	Start sim.Time // when the circuit was established
	End   sim.Time // when the last byte arrived
	// Latency is the contention-free transmission time (End - Start).
	Latency sim.Time
	// Wait is the time the message waited for resources (Start - the
	// requested departure time); it is charged to contention.
	Wait sim.Time
}

// Reserve books the circuit for a message of the given size from src to
// dst, departing no earlier than now.  It updates resource availability
// and returns the transmission schedule; the caller is responsible for
// advancing its process to Xmit.End and for accounting.
func (f *Fabric) Reserve(now sim.Time, src, dst, bytes int) Xmit {
	if bytes <= 0 {
		panic(fmt.Sprintf("network: message of %d bytes", bytes))
	}
	route := f.routeFor(src, dst)
	dur := sim.Time(bytes)*f.ByteTime + sim.Time(len(route))*f.SwitchDelay
	if f.slow != nil {
		// A circuit is only as fast as its slowest link.
		worst := int32(1)
		for _, l := range route {
			if s := f.slow[l]; s > worst {
				worst = s
			}
		}
		dur *= sim.Time(worst)
	}

	start := now
	if t := f.injFree[src]; t > start {
		start = t
	}
	if t := f.ejFree[dst]; t > start {
		start = t
	}
	for _, l := range route {
		if t := f.linkFree[l]; t > start {
			start = t
		}
	}
	end := start + dur
	f.injFree[src] = end
	f.ejFree[dst] = end
	for _, l := range route {
		if f.linkFree[l] == 0 {
			f.touched = append(f.touched, int32(l))
		}
		f.linkFree[l] = end
	}
	f.Messages++
	f.Bytes += uint64(bytes)
	f.HopEvents += uint64(len(route)) + 2
	x := Xmit{Start: start, End: end, Latency: dur, Wait: start - now}
	if f.Observer != nil {
		f.Observer(now, x, src, dst, bytes, route)
	}
	return x
}

// Send transmits a message on behalf of process p, blocking it until the
// last byte arrives, and returns the transmission schedule.
func (f *Fabric) Send(p *sim.Proc, src, dst, bytes int) Xmit {
	x := f.Reserve(p.Now(), src, dst, bytes)
	p.HoldUntil(x.End)
	return x
}
