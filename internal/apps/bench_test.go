package apps

import (
	"testing"

	"spasm/internal/app"
	"spasm/internal/machine"
)

// benchApp measures one full execution-driven simulation of an
// application on the target machine at Tiny scale — the end-to-end cost
// of the simulator per workload.
func benchApp(b *testing.B, name string, kind machine.Kind) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		prog, err := New(name, Tiny, 1)
		if err != nil {
			b.Fatal(err)
		}
		res, err := app.Run(prog, machine.Config{Kind: kind, Topology: "mesh", P: 8})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(res.Stats.SimEvents), "sim_events")
			b.ReportMetric(res.Stats.Total.Micros(), "simulated_us")
		}
	}
}

func BenchmarkEPOnTarget(b *testing.B)       { benchApp(b, "ep", machine.Target) }
func BenchmarkFFTOnTarget(b *testing.B)      { benchApp(b, "fft", machine.Target) }
func BenchmarkISOnTarget(b *testing.B)       { benchApp(b, "is", machine.Target) }
func BenchmarkCGOnTarget(b *testing.B)       { benchApp(b, "cg", machine.Target) }
func BenchmarkCHOLESKYOnTarget(b *testing.B) { benchApp(b, "cholesky", machine.Target) }

func BenchmarkFFTOnCLogP(b *testing.B) { benchApp(b, "fft", machine.CLogP) }
func BenchmarkFFTOnLogP(b *testing.B)  { benchApp(b, "fft", machine.LogP) }
func BenchmarkFFTOnIdeal(b *testing.B) { benchApp(b, "fft", machine.Ideal) }
