package probe

import (
	"spasm/internal/sim"
	"spasm/internal/stats"
)

// EpochEvent is one incremental epoch emission: a per-epoch aggregate
// published while the run is still executing, the payload behind
// spasmd's live result streaming.
//
// Events are provisional in a way the finished Profile is not.  Two
// effects can revise an epoch after it was emitted: local-clock
// spreading may charge late-observed activity back into it, and an
// epoch-budget rescale merges adjacent epochs pairwise (after a rescale
// the already-covered timeline is re-emitted at the doubled epoch
// length, which is why every event carries its own EpochLen and Start).
// Live consumers should treat the stream as telemetry; the canonical
// record is the deterministic encoded Profile at run completion.
type EpochEvent struct {
	// Index is the epoch's index at the resolution current when the
	// event fired; Start = Index * EpochLen.
	Index    int
	EpochLen sim.Time
	Start    sim.Time

	// Buckets holds the epoch's overhead-bucket deltas summed over all
	// processors.
	Buckets [stats.NumBuckets]sim.Time

	// Event-counter deltas summed over all processors.
	Misses     uint64
	Invals     uint64
	Writebacks uint64
	Messages   uint64

	// LinkBusy and LinkPeak are the summed and single-busiest link
	// occupancy within the epoch (0 on machines without per-link
	// telemetry); NumLinks is the link id space for normalizing them.
	LinkBusy sim.Time
	LinkPeak sim.Time
	NumLinks int

	// Final marks events emitted while closing the run's tail (from
	// Finish rather than from a live boundary crossing).
	Final bool
}

// Utilization returns the epoch's mean and single-busiest-link
// utilization, both 0 without per-link telemetry.
func (e *EpochEvent) Utilization() (mean, max float64) {
	if e.NumLinks == 0 || e.EpochLen == 0 {
		return 0, 0
	}
	el := float64(e.EpochLen)
	return float64(e.LinkBusy) / (el * float64(e.NumLinks)), float64(e.LinkPeak) / el
}

// event renders epoch idx's accumulator as an EpochEvent.
func (pr *Profiler) event(idx int, final bool) EpochEvent {
	ev := EpochEvent{
		Index:    idx,
		EpochLen: pr.epochLen,
		Start:    sim.Time(idx) * pr.epochLen,
		NumLinks: pr.numLinks,
		Final:    final,
	}
	acc := &pr.epochs[idx]
	for i := range acc.procs {
		ps := &acc.procs[i]
		for b := range ps.Buckets {
			ev.Buckets[b] += ps.Buckets[b]
		}
		ev.Misses += ps.Misses
		ev.Invals += ps.Invals
		ev.Writebacks += ps.Writebacks
		ev.Messages += ps.Messages
	}
	for _, l := range acc.links {
		ev.LinkBusy += l.Busy
		if l.Busy > ev.LinkPeak {
			ev.LinkPeak = l.Busy
		}
	}
	return ev
}

// emitClosed fires the OnEpoch hook for every epoch below limit not yet
// emitted.  It runs synchronously on the simulation goroutine, so the
// hook must be cheap and must not re-enter the profiler.
func (pr *Profiler) emitClosed(limit int, final bool) {
	if pr.cfg.OnEpoch == nil {
		return
	}
	if limit > len(pr.epochs) {
		limit = len(pr.epochs)
	}
	for ; pr.emitted < limit; pr.emitted++ {
		pr.cfg.OnEpoch(pr.event(pr.emitted, final))
	}
}
