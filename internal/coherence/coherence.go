// Package coherence implements a sequentially consistent, fully-mapped,
// directory-based Berkeley (ownership) invalidation protocol over the
// private caches of a CC-NUMA machine.
//
// The same protocol engine drives both machine characterizations that
// have caches:
//
//   - The *target* machine prices every protocol message (requests,
//     forwards, data replies, invalidations, acks, grants, writebacks)
//     on the detailed network fabric.
//   - The *LogP+cache* machine maintains exactly the same cache and
//     directory state machine but prices only the messages that move
//     data the requester could not obtain locally; coherence-maintenance
//     messages are free.  This realizes the paper's "ideal coherent
//     cache": the minimum network traffic any invalidation protocol
//     could hope to achieve.
//
// Sharing one engine guarantees the two machines have identical hit/miss
// and invalidation behaviour, which is the premise of the paper's
// locality-abstraction comparison.
package coherence

import (
	"fmt"

	"spasm/internal/cache"
	"spasm/internal/mem"
	"spasm/internal/sim"
	"spasm/internal/stats"
)

// Class labels a protocol message for transport pricing.
type Class int

const (
	// ReadReq asks the home node for a readable copy (data will flow).
	ReadReq Class = iota
	// WriteReq asks the home node for an exclusive copy (data will flow).
	WriteReq
	// UpgradeReq asks for ownership of a block already cached
	// (no data flows — pure coherence).
	UpgradeReq
	// Forward relays a request from the home node to the current owner.
	Forward
	// DataReply carries a cache block to the requester.
	DataReply
	// Inval invalidates a sharer's copy (pure coherence).
	Inval
	// InvalAck acknowledges an invalidation (pure coherence).
	InvalAck
	// Grant tells the requester all invalidations completed
	// (pure coherence).
	Grant
	// Nack tells the home node a forwarded request missed (the owner
	// evicted the block while the forward was in flight).
	Nack
	// UpdateMsg carries a written value to a sharer under the
	// write-update protocol (pure coherence: the sharer's copy stays
	// valid).
	UpdateMsg
	// Writeback flushes an owned victim block to its home memory
	// (pure coherence: any protocol must preserve the data, but it is
	// not a response to a memory request).
	Writeback
)

var classNames = [...]string{
	"read-req", "write-req", "upgrade-req", "forward", "data-reply",
	"inval", "inval-ack", "grant", "nack", "update", "writeback",
}

func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// MovesData reports whether the message class is part of satisfying a
// memory request with remote data (as opposed to pure coherence
// maintenance).  The LogP+cache transport prices exactly these classes.
func (c Class) MovesData() bool {
	switch c {
	case ReadReq, WriteReq, Forward, DataReply:
		return true
	}
	return false
}

// Delivery is the transport's schedule for one protocol message.
type Delivery struct {
	At      sim.Time // when the message is available at the destination
	Latency sim.Time // contention-free transmission component
	Wait    sim.Time // contention component
	Sent    bool     // false if the transport absorbed the message for free
}

// Transport prices protocol messages.  Implementations must be
// monotone: At >= now.
type Transport interface {
	Message(now sim.Time, src, dst, bytes int, class Class) Delivery
}

// Costs carries the non-network cost parameters of the memory system.
type Costs struct {
	// CacheHit is the time to satisfy a reference from the cache.
	CacheHit sim.Time
	// Mem is the home-node DRAM access time for a block.
	Mem sim.Time
	// CtrlBytes is the size of a control message (requests, invals,
	// acks, grants, nacks).
	CtrlBytes int
	// DataBytes is the size of a data message: a full cache block plus
	// header, capped at the paper's 32-byte maximum message size.
	DataBytes int
}

// DefaultCosts returns the study's cost parameters: 1-cycle cache hits,
// 10-cycle (300 ns) DRAM, 8-byte control and 32-byte data messages.
func DefaultCosts() Costs {
	return Costs{
		CacheHit:  sim.Cycles(1),
		Mem:       sim.Cycles(10),
		CtrlBytes: 8,
		DataBytes: 32,
	}
}

// entry is a fully-mapped directory entry.  The sharing set is
// limited-pointer style (see sharers.go): up to inlineSharers node ids
// inline, overflowing to a bitset slot in the engine's arena.  gen is
// the engine generation the entry was last stamped for; entries from an
// earlier generation are logically pristine and re-initialized lazily
// by dirAt, which is what makes Engine.Reset O(1) in directory size.
type entry struct {
	owner int32                // cache owning the block (-1: memory is current)
	home  int32                // memoized home node of the block (-1: not yet computed)
	ovf   int32                // overflow bitset slot in Engine.ovfBits (-1: inline)
	gen   uint32               // engine generation this entry is valid for
	nsh   int16                // inline sharer count, or nshOverflow
	inline [inlineSharers]int16 // inline sharer ids, ascending
}

// Directory entries and their block locks live in fixed-size chunks
// indexed by block id rather than in maps: block ids are dense (the
// address space is compact from zero), so a chunked array gives O(1)
// lookups with no hashing and no per-entry allocation on the miss path.
// Chunks never move once allocated, which matters: the protocol holds
// *entry and *sim.Lock pointers across blocking operations, so the
// backing storage must be pointer-stable under growth.
const (
	dirChunkShift = 10 // blocks per chunk (1024)
	dirChunkSize  = 1 << dirChunkShift
	dirChunkMask  = dirChunkSize - 1
)

type dirChunk struct {
	entries [dirChunkSize]entry
	locks   [dirChunkSize]sim.Lock
}

// Engine is the coherence engine over P caches and their home memories.
type Engine struct {
	space  *mem.Space
	caches []*cache.Cache
	costs  Costs
	tr     Transport

	// Protocol selects the coherence protocol variant (Berkeley by
	// default, the paper's target).  Set it before the first access.
	Protocol Protocol

	dir []*dirChunk // chunked by block id; chunks allocated on first touch

	// gen is the engine's current generation.  A freshly allocated chunk
	// holds gen-0 entries; the engine starts at 1 and Reset bumps it, so
	// a stale entry is recognized (and re-stamped) by dirAt without ever
	// sweeping the directory.
	gen uint32

	// Overflow bitset arena for widely shared blocks: ovfBits[s] is one
	// slot of ovfWords uint64 words, ovfFree the recycled slot ids.
	ovfBits  [][]uint64
	ovfFree  []int32
	ovfWords int

	// snap is the sharer-snapshot scratch used by the invalidation and
	// update loops.  Safe as a single engine-wide buffer because no
	// coherence operation yields between taking a snapshot and finishing
	// its iteration, and snapshots never nest.
	snap []int32

	// Transactions counts misses serviced (reads + writes + upgrades).
	Transactions uint64
}

// NewEngine builds a coherence engine: one cache per node with the given
// geometry, directories at each block's home node, and the given message
// transport.
func NewEngine(space *mem.Space, cacheCfg cache.Config, costs Costs, tr Transport) *Engine {
	if space.P() > MaxP {
		// spec.Validate (machine.MaxPFor) rejects such configurations
		// before any engine is built; this is defense in depth.
		panic(fmt.Sprintf("coherence: %d nodes exceeds the coherent-machine limit of %d", space.P(), MaxP))
	}
	if cacheCfg.BlockBytes != space.BlockBytes() {
		panic(fmt.Sprintf("coherence: cache block %dB != space block %dB",
			cacheCfg.BlockBytes, space.BlockBytes()))
	}
	e := &Engine{
		space:    space,
		costs:    costs,
		tr:       tr,
		gen:      1,
		ovfWords: (space.P() + 63) / 64,
	}
	// Size the chunk index from the memory layout.  Applications allocate
	// in Setup, before the machine (and this engine) is built, so this
	// covers the whole footprint; chunkFor still grows the index if an
	// application allocates during its body.
	if sz := space.Size(); sz > 0 {
		nChunks := int(space.BlockOf(sz-1))>>dirChunkShift + 1
		e.dir = make([]*dirChunk, nChunks)
	}
	for i := 0; i < space.P(); i++ {
		e.caches = append(e.caches, cache.New(cacheCfg))
	}
	return e
}

// Reset rebinds the engine to space — typically the same *mem.Space
// after its own Reset and a fresh application Setup — and returns all
// coherence state to its post-NewEngine condition without reallocating
// the chunked directory.  Rather than sweeping every allocated chunk
// (O(directory size), which at 1024 procs dwarfs small runs), Reset
// bumps the engine generation: entries stamped for an older generation
// are logically pristine — dirAt re-initializes them (owner -1, no
// sharers, home -1, zeroed block lock) on first touch, so a re-stamped
// entry is indistinguishable from a first-touch one.  The home memo is
// thereby cleared too, which matters because the new run may lay out
// memory differently.  Overflow bitset slots all return to the freelist:
// any entry referencing one is stale by generation.  The chunk index is
// re-sized to cover the new footprint; chunks beyond it are kept
// (harmlessly — they are only reachable via block ids the new layout
// never produces, and their entries are stale).
//
// The transport, costs, protocol, and cache geometry are construction
// parameters of the pooled context and are deliberately left alone.
func (e *Engine) Reset(space *mem.Space) {
	if space.P() != len(e.caches) {
		panic(fmt.Sprintf("coherence: Reset with %d nodes, engine has %d caches",
			space.P(), len(e.caches)))
	}
	if bb := e.caches[0].Config().BlockBytes; bb != space.BlockBytes() {
		panic(fmt.Sprintf("coherence: Reset cache block %dB != space block %dB",
			bb, space.BlockBytes()))
	}
	e.space = space
	e.Transactions = 0
	for _, c := range e.caches {
		c.Reset()
	}
	e.gen++
	e.ovfFree = e.ovfFree[:0]
	for i := range e.ovfBits {
		e.ovfFree = append(e.ovfFree, int32(i))
	}
	if sz := space.Size(); sz > 0 {
		nChunks := int(space.BlockOf(sz-1))>>dirChunkShift + 1
		for len(e.dir) < nChunks {
			e.dir = append(e.dir, nil)
		}
	}
}

// Cache returns node n's cache (exposed for tests and statistics).
func (e *Engine) Cache(n int) *cache.Cache { return e.caches[n] }

// chunkFor returns block b's chunk, allocating it on first touch.
func (e *Engine) chunkFor(b mem.Block) *dirChunk {
	ci := int(b >> dirChunkShift)
	for ci >= len(e.dir) {
		e.dir = append(e.dir, nil)
	}
	ch := e.dir[ci]
	if ch == nil {
		// A zero chunk holds gen-0 entries; the engine generation is
		// always >= 1, so dirAt stamps each entry on first touch.
		ch = &dirChunk{}
		e.dir[ci] = ch
	}
	return ch
}

// dirAt returns block b's directory entry and lock, lazily
// re-initializing both if the entry is stale from an earlier generation
// (Reset bumps the generation instead of sweeping the directory).  Every
// mutating path must come through here — never index a chunk directly —
// or it would observe a previous run's state.
func (e *Engine) dirAt(b mem.Block) (*entry, *sim.Lock) {
	ch := e.chunkFor(b)
	i := b & dirChunkMask
	en := &ch.entries[i]
	if en.gen != e.gen {
		*en = entry{owner: -1, home: -1, ovf: -1, gen: e.gen}
		ch.locks[i] = sim.Lock{}
	}
	return en, &ch.locks[i]
}

func (e *Engine) entryFor(b mem.Block) *entry {
	en, _ := e.dirAt(b)
	return en
}

func (e *Engine) lockFor(b mem.Block) *sim.Lock {
	_, lk := e.dirAt(b)
	return lk
}

// lookup returns block b's directory entry without allocating, or nil if
// its chunk was never touched (or not touched this generation).
func (e *Engine) lookup(b mem.Block) *entry {
	ci := int(b >> dirChunkShift)
	if ci >= len(e.dir) || e.dir[ci] == nil {
		return nil
	}
	en := &e.dir[ci].entries[b&dirChunkMask]
	if en.gen != e.gen {
		return nil
	}
	return en
}

// homeOf returns (and memoizes) the home node of block b, replacing the
// binary search over memory regions on every miss with a one-time fill of
// the directory entry.
func (e *Engine) homeOf(b mem.Block, en *entry) int {
	if en.home < 0 {
		en.home = int32(e.space.Home(e.space.BlockBase(b)))
	}
	return int(en.home)
}

// send prices one message and accumulates its overheads into st.
func (e *Engine) send(st *stats.Proc, now sim.Time, src, dst, bytes int, class Class) sim.Time {
	d := e.tr.Message(now, src, dst, bytes, class)
	if d.Sent {
		st.Messages++
		st.NetBytes += uint64(bytes)
		st.Add(stats.Latency, d.Latency)
		st.Add(stats.Contention, d.Wait)
	}
	return d.At
}

// Read performs a shared-memory read by node n at addr on behalf of
// process p, blocking p for the full (sequentially consistent) duration.
func (e *Engine) Read(p *sim.Proc, st *stats.Proc, n int, addr mem.Addr) {
	st.Reads++
	b := e.space.BlockOf(addr)
	c := e.caches[n]
	if c.Access(b).Valid() {
		st.Hits++
		st.Add(stats.Memory, e.costs.CacheHit)
		p.Defer(e.costs.CacheHit)
		return
	}
	st.Misses++
	e.miss(p, st, n, b, false)
}

// Write performs a shared-memory write by node n at addr on behalf of
// process p.  Sequential consistency: p blocks until every stale copy
// has been invalidated and acknowledged.
func (e *Engine) Write(p *sim.Proc, st *stats.Proc, n int, addr mem.Addr) {
	st.Writes++
	b := e.space.BlockOf(addr)
	c := e.caches[n]
	s := c.Access(b)
	if s == cache.OwnedExclusive {
		st.Hits++
		st.Add(stats.Memory, e.costs.CacheHit)
		p.Defer(e.costs.CacheHit)
		return
	}
	if s.Valid() {
		st.Hits++ // data present; ownership must still be acquired
		if e.Protocol == Update {
			e.updateWrite(p, st, n, b)
		} else {
			e.upgrade(p, st, n, b)
		}
		return
	}
	st.Misses++
	if e.Protocol == Update {
		// Write-allocate under write-update: fetch a shared copy,
		// then propagate the write like a hit.
		e.miss(p, st, n, b, false)
		e.updateWrite(p, st, n, b)
		return
	}
	e.miss(p, st, n, b, true)
}

// miss services a read or write miss: obtain the block (from the owner's
// cache or home memory), for writes invalidate all other copies, fill the
// requester's cache, and update the directory.
func (e *Engine) miss(p *sim.Proc, st *stats.Proc, r int, b mem.Block, write bool) {
	lk := e.lockFor(b)
	if w := lk.Acquire(p); w > 0 {
		st.Add(stats.Contention, w) // directory serialization
	}
	defer lk.Release(p)
	e.Transactions++

	en := e.entryFor(b)
	h := e.homeOf(b, en)
	now := p.Now()
	msgs0 := st.Messages

	// Request leg to the home node.
	t := now
	if h != r {
		class := ReadReq
		if write {
			class = WriteReq
		}
		t = e.send(st, t, r, h, e.costs.CtrlBytes, class)
	}

	// Data leg: from the owning cache if one exists, else home memory.
	var tData sim.Time
	o := int(en.owner)
	if o >= 0 && o != r && e.caches[o].State(b).Owned() {
		switch e.Protocol {
		case MSI, Update:
			// Update also uses memory-current semantics: the dirty
			// (sole-copy) owner writes back and keeps a clean copy.
			tData = e.msiOwnerSupply(st, t, h, o, r, b, en, write)
		default:
			tData = e.berkeleyOwnerSupply(st, t, h, o, r, b, write)
		}
	} else {
		tData = e.memSupply(st, t, h, r)
	}

	// For writes, invalidate every other copy; the write completes only
	// after all acknowledgements (sequential consistency).
	tDone := tData
	if write {
		tAcks := e.invalidateSharers(st, t, h, r, b, en)
		if tAcks > t {
			// The home confirms completion once acks are in.
			if h != r {
				g := e.send(st, tAcks, h, r, e.costs.CtrlBytes, Grant)
				if g > tDone {
					tDone = g
				}
			} else if tAcks > tDone {
				tDone = tAcks
			}
		}
	}

	// Fill the requester's cache, writing back any displaced owned block.
	fill := cache.UnOwned
	if write {
		fill = cache.OwnedExclusive
	}
	tDone = e.fill(st, tDone, r, b, fill)

	// Directory update.
	if write {
		en.owner = int32(r)
		e.setSoleSharer(en, r)
	} else {
		e.addSharer(en, r)
	}

	if st.Messages > msgs0 {
		st.NetAccesses++
	}
	p.HoldUntil(tDone)
}

// upgrade services a write to a block the requester already caches in a
// non-exclusive state: pure coherence, no data movement.
func (e *Engine) upgrade(p *sim.Proc, st *stats.Proc, r int, b mem.Block) {
	lk := e.lockFor(b)
	if w := lk.Acquire(p); w > 0 {
		st.Add(stats.Contention, w)
	}
	defer lk.Release(p)
	e.Transactions++

	// The block may have been invalidated while we waited for the
	// directory: restart as a write miss (still under the lock).
	if !e.caches[r].State(b).Valid() {
		lk.Release(p)
		e.miss(p, st, r, b, true)
		lk.Acquire(p)
		return
	}

	en := e.entryFor(b)
	h := e.homeOf(b, en)
	now := p.Now()
	msgs0 := st.Messages

	t := now
	if h != r {
		t = e.send(st, t, r, h, e.costs.CtrlBytes, UpgradeReq)
	}
	tDone := t
	tAcks := e.invalidateSharers(st, t, h, r, b, en)
	if tAcks > t && h != r {
		tDone = e.send(st, tAcks, h, r, e.costs.CtrlBytes, Grant)
	} else if tAcks > tDone {
		tDone = tAcks
	}

	e.caches[r].SetState(b, cache.OwnedExclusive)
	en.owner = int32(r)
	e.setSoleSharer(en, r)

	if st.Messages > msgs0 {
		st.NetAccesses++
	}
	st.Add(stats.Memory, e.costs.CacheHit)
	tDone += e.costs.CacheHit
	p.HoldUntil(tDone)
}

// updateWrite services a write to a valid block under the write-update
// protocol.  With no other sharers the writer takes silent-at-the-cache
// exclusive ownership (one control round trip to the directory); with
// sharers the write is pushed through the home to every copy, which all
// stay valid — no one ever re-misses on this block, the protocol's
// defining property.
func (e *Engine) updateWrite(p *sim.Proc, st *stats.Proc, r int, b mem.Block) {
	lk := e.lockFor(b)
	if w := lk.Acquire(p); w > 0 {
		st.Add(stats.Contention, w)
	}
	defer lk.Release(p)
	e.Transactions++

	// The copy may have vanished while waiting (capacity eviction by
	// our own earlier transactions cannot happen here, but keep the
	// defensive re-check symmetrical with upgrade).
	if !e.caches[r].State(b).Valid() {
		lk.Release(p)
		e.miss(p, st, r, b, false)
		lk.Acquire(p)
	}
	e.updateWriteLocked(p, st, r, b)
}

// updateWriteLocked is updateWrite's body; the caller holds the block
// lock or accepts a fresh acquisition.
func (e *Engine) updateWriteLocked(p *sim.Proc, st *stats.Proc, r int, b mem.Block) {
	en := e.entryFor(b)
	h := e.homeOf(b, en)
	now := p.Now()
	msgs0 := st.Messages

	t := now
	if !e.hasOtherSharer(en, r) {
		// Sole copy: become exclusive after a directory round trip.
		if h != r {
			t = e.send(st, t, r, h, e.costs.CtrlBytes, UpgradeReq)
			t = e.send(st, t, h, r, e.costs.CtrlBytes, Grant)
		}
		if e.caches[r].State(b) != cache.OwnedExclusive {
			e.caches[r].SetState(b, cache.OwnedExclusive)
		}
		en.owner = int32(r)
		e.setSoleSharer(en, r)
	} else {
		// Write through to the home, then push the value to every
		// other sharer; all copies stay valid and memory is current.
		if h != r {
			t = e.send(st, t, r, h, e.costs.DataBytes, UpdateMsg)
		}
		st.Add(stats.Memory, e.costs.Mem)
		t += e.costs.Mem
		tAcks := t
		e.snap = e.appendSharers(e.snap[:0], en, r)
		for _, s32 := range e.snap {
			s := int(s32)
			if s == h {
				continue // the home's own cache is updated in place
			}
			if !e.caches[s].State(b).Valid() {
				// Stale sharer entry (silent eviction): clean it up.
				e.removeSharer(en, s)
				continue
			}
			tu := e.send(st, tAcks, h, s, e.costs.DataBytes, UpdateMsg)
			tAcks = e.send(st, tu, s, h, e.costs.CtrlBytes, InvalAck)
		}
		if tAcks > t {
			t = tAcks
		}
		if h != r && t > now {
			t = e.send(st, t, h, r, e.costs.CtrlBytes, Grant)
		}
		// The writer's copy stays a clean shared copy; memory owns.
		if e.caches[r].State(b) != cache.UnOwned {
			e.caches[r].SetState(b, cache.UnOwned)
		}
		en.owner = -1
	}

	if st.Messages > msgs0 {
		st.NetAccesses++
	}
	st.Add(stats.Memory, e.costs.CacheHit)
	t += e.costs.CacheHit
	p.HoldUntil(t)
}

// invalidateSharers sends invalidations from the home node to every
// sharer except the requester, sequentially (a blocking home
// controller), and returns the time the last acknowledgement reaches the
// home node.  Caches are invalidated as the messages arrive.
func (e *Engine) invalidateSharers(st *stats.Proc, t sim.Time, h, r int, b mem.Block, en *entry) sim.Time {
	tAcks := t
	e.snap = e.appendSharers(e.snap[:0], en, r)
	for _, s32 := range e.snap {
		s := int(s32)
		if s == h {
			// The home's own cache: invalidate locally, no traffic.
			e.caches[s].Invalidate(b)
			continue
		}
		ti := e.send(st, tAcks, h, s, e.costs.CtrlBytes, Inval)
		if e.caches[s].Invalidate(b).Valid() {
			st.Invals++
		}
		tAcks = e.send(st, ti, s, h, e.costs.CtrlBytes, InvalAck)
	}
	return tAcks
}

// berkeleyOwnerSupply models the Berkeley data leg: the owning cache
// supplies the block directly to the requester (forwarded via the home
// when the owner is a third node) and, on a read, keeps ownership in the
// shared-dirty state.  Memory is not updated.
func (e *Engine) berkeleyOwnerSupply(st *stats.Proc, t sim.Time, h, o, r int, b mem.Block, write bool) sim.Time {
	var tData sim.Time
	if o == h {
		// The home node's own cache owns the block.
		tData = t
		if r != h {
			tData = e.send(st, t, h, r, e.costs.DataBytes, DataReply)
		}
	} else {
		tf := e.send(st, t, h, o, e.costs.CtrlBytes, Forward)
		if e.caches[o].State(b).Owned() {
			tData = e.send(st, tf, o, r, e.costs.DataBytes, DataReply)
		} else {
			// The owner evicted the block while the forward was
			// in flight; it nacks and memory (now current after
			// the racing writeback) supplies.
			tn := e.send(st, tf, o, h, e.costs.CtrlBytes, Nack)
			return e.memSupply(st, tn, h, r)
		}
	}
	if !write {
		// Berkeley: the supplier keeps ownership, demoted to
		// shared-dirty.
		if e.caches[o].State(b) == cache.OwnedExclusive {
			e.caches[o].SetState(b, cache.OwnedShared)
		}
	}
	return tData
}

// msiOwnerSupply models the MSI data leg: the dirty owner writes the
// block back to its home (fetch or fetch-invalidate), memory becomes
// current, and the home supplies the requester.  On a read the previous
// owner keeps a clean shared copy; on a write it is invalidated here
// (and its sharer bit cleared so the invalidation loop skips it).
func (e *Engine) msiOwnerSupply(st *stats.Proc, t sim.Time, h, o, r int, b mem.Block, en *entry, write bool) sim.Time {
	if o != h {
		tf := e.send(st, t, h, o, e.costs.CtrlBytes, Forward)
		if e.caches[o].State(b).Owned() {
			t = e.send(st, tf, o, h, e.costs.DataBytes, Writeback)
			st.Writebacks++
		} else {
			// Raced with the owner's eviction writeback.
			t = e.send(st, tf, o, h, e.costs.CtrlBytes, Nack)
		}
	}
	if e.caches[o].State(b).Owned() {
		if write {
			e.caches[o].Invalidate(b)
			e.removeSharer(en, o)
			st.Invals++
		} else {
			e.caches[o].SetState(b, cache.UnOwned)
		}
	}
	en.owner = -1 // memory is current from here on
	return e.memSupply(st, t, h, r)
}

// memSupply models the home memory providing the block: a DRAM access at
// the home plus a data reply if the requester is remote.
func (e *Engine) memSupply(st *stats.Proc, t sim.Time, h, r int) sim.Time {
	st.Add(stats.Memory, e.costs.Mem)
	t += e.costs.Mem
	if h == r {
		return t
	}
	return e.send(st, t, h, r, e.costs.DataBytes, DataReply)
}

// fill inserts block b into cache r, handling victim writeback, and
// returns the completion time.
func (e *Engine) fill(st *stats.Proc, t sim.Time, r int, b mem.Block, s cache.State) sim.Time {
	v, evicted := e.caches[r].Insert(b, s)
	if !evicted {
		return t
	}
	ven := e.entryFor(v.Block)
	e.removeSharer(ven, r)
	if !v.State.Owned() {
		return t // clean victim: silent drop
	}
	// Owned victim: write the data back to its home memory.
	st.Writebacks++
	if ven.owner == int32(r) {
		ven.owner = -1 // memory becomes current
	}
	vh := e.homeOf(v.Block, ven)
	if vh != r {
		t = e.send(st, t, r, vh, e.costs.DataBytes, Writeback)
	}
	st.Add(stats.Memory, e.costs.Mem)
	return t + e.costs.Mem
}

// CheckInvariants verifies directory/cache consistency; tests call it
// after runs.  It returns the first violation found, or nil.
func (e *Engine) CheckInvariants() error {
	// 1. At most one cache holds a block in an owned state, and the
	//    directory's owner field matches it.
	owners := map[mem.Block]int{}
	for n, c := range e.caches {
		var err error
		n := n
		c.ForEach(func(b mem.Block, s cache.State) {
			if err != nil {
				return
			}
			if s.Owned() {
				if prev, dup := owners[b]; dup {
					err = fmt.Errorf("block %d owned by caches %d and %d", b, prev, n)
					return
				}
				owners[b] = n
				if en := e.lookup(b); en == nil || int(en.owner) != n {
					err = fmt.Errorf("block %d owned by cache %d but directory disagrees", b, n)
					return
				}
			}
			// 2. Every valid copy is covered by a directory sharer entry.
			if en := e.lookup(b); en == nil || !e.containsSharer(en, n) {
				err = fmt.Errorf("cache %d holds block %d without a directory sharer entry", n, b)
			}
		})
		if err != nil {
			return err
		}
	}
	// 3. An exclusively owned block has no other valid copies.
	for b, o := range owners {
		if e.caches[o].State(b) != cache.OwnedExclusive {
			continue
		}
		for n, c := range e.caches {
			if n != o && c.State(b).Valid() {
				return fmt.Errorf("block %d exclusive at %d but also valid at %d", b, o, n)
			}
		}
	}
	// 4. Directory owner fields point at caches that really own.
	for ci, ch := range e.dir {
		if ch == nil {
			continue
		}
		for i := range ch.entries {
			en := &ch.entries[i]
			if en.gen != e.gen || en.owner < 0 {
				continue // stale entries are logically pristine
			}
			b := mem.Block(ci<<dirChunkShift | i)
			o := int(en.owner)
			if !e.caches[o].State(b).Owned() {
				return fmt.Errorf("directory says %d owns block %d but its cache state is %v",
					o, b, e.caches[o].State(b))
			}
		}
	}
	return nil
}
