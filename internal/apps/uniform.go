package apps

import (
	"fmt"

	"spasm/internal/app"
	"spasm/internal/mem"
)

// Uniform is the uniform-random synthetic traffic workload: every
// processor issues a fixed quota of references, each targeting a
// uniformly random element of one blocked shared array, with a short
// compute burst between references.  It is the traffic assumption
// behind the analytical network models the paper's section 2 contrasts
// with simulation, packaged as an *extension* workload (NewExtended
// under the name "uniform") so large-P smoke runs and network-tier
// benchmarks have a cheap, deterministic driver whose cost scales with
// P alone — the shared array holds a fixed 256 elements per node, so
// even a 1024-processor instance sets up in a few megabytes.
//
// The reference stream is a pure function of (Seed, P, array size):
// Check replays each processor's PRNG stream on the host and compares
// an address-and-kind checksum, so a run whose traffic diverged from
// the deterministic schedule fails verification rather than merely
// producing different timing.
type Uniform struct {
	// Refs is the number of references each processor issues.
	Refs int
	// Think is the compute time in cycles between references.
	Think int64
	// WritePct is the percentage of references that are writes.
	WritePct int
	Seed     int64

	arr    *mem.Array
	issued []int
	sums   []uint64
}

// uniformElemsPerNode fixes the shared-array footprint at 256 elements
// (2 KB) per node regardless of scale: the workload exists to drive the
// network, not the memory system.
const uniformElemsPerNode = 256

// NewUniform returns the uniform-traffic workload at the given scale:
// the scale sets only the per-processor reference quota (128, 512,
// 2048), so simulated work grows linearly in P and scale.
func NewUniform(scale Scale, seed int64) app.Program {
	u := &Uniform{Think: 8, WritePct: 20, Seed: seed}
	switch scale {
	case Tiny:
		u.Refs = 128
	case Small:
		u.Refs = 512
	default:
		u.Refs = 2048
	}
	return u
}

// Name implements app.Program.
func (u *Uniform) Name() string { return "uniform" }

// Setup allocates the shared target array, blocked so a reference's
// home node is uniform over the machine.
func (u *Uniform) Setup(c *app.Ctx) {
	u.arr = c.Space.Alloc("uniform.data", c.P*uniformElemsPerNode, 8, mem.Blocked)
	u.issued = make([]int, c.P)
	u.sums = make([]uint64, c.P)
}

// stream replays processor id's deterministic reference stream, calling
// visit for every (element index, isWrite) pair.  Body and Check use
// the same generator, which is what makes the run verifiable.
func (u *Uniform) stream(id int, visit func(elem int, write bool)) {
	rng := newRng(u.Seed*1000 + int64(id))
	defer putRng(rng)
	for i := 0; i < u.Refs; i++ {
		elem := rng.Intn(u.arr.N)
		write := rng.Intn(100) < u.WritePct
		visit(elem, write)
	}
}

// Body implements app.Program.
func (u *Uniform) Body(p *app.Proc) {
	u.stream(p.ID, func(elem int, write bool) {
		p.Compute(u.Think)
		addr := u.arr.At(elem)
		if write {
			p.Write(addr)
		} else {
			p.Read(addr)
		}
		u.issued[p.ID]++
		u.sums[p.ID] += uint64(addr)*2 + b2u(write)
	})
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Check verifies every processor issued exactly its deterministic
// reference stream.
func (u *Uniform) Check() error {
	for id := range u.issued {
		if u.issued[id] != u.Refs {
			return fmt.Errorf("uniform: processor %d issued %d of %d references", id, u.issued[id], u.Refs)
		}
		var want uint64
		u.stream(id, func(elem int, write bool) {
			want += uint64(u.arr.At(elem))*2 + b2u(write)
		})
		if u.sums[id] != want {
			return fmt.Errorf("uniform: processor %d reference checksum %#x, want %#x", id, u.sums[id], want)
		}
	}
	return nil
}
