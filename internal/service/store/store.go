// Package store is spasmd's durable, content-addressed result store: a
// directory of records keyed by spec hash, each holding the canonical
// run request, the deterministic RunDoc JSON, and the run's statistics,
// with the run's encoded probe profile in a sibling file.
//
// The store exists because the simulator's determinism makes results
// permanent: a RunDoc is a pure function of its spec, so a record
// written by one spasmd process is byte-for-byte the record any future
// process would recompute.  Persisting it turns a restart from a cold
// cache into a warm one — the in-memory LRU stays the read-through
// front, and the disk is the tier below it.
//
// Durability discipline: every write goes to a temporary file in the
// record's own directory, is fsync'd, renamed over the final name, and
// the directory is fsync'd — so a crash leaves either the old record or
// the new one, never a torn file.  Reads validate the envelope (magic
// version, id echo) and treat any corruption as a miss, counted on the
// error counter, so a damaged file degrades to one re-simulation rather
// than a poisoned cache.
//
// The store is safe for concurrent use by one process.  It performs no
// locking against other processes: spasmd assumes it owns its store
// directory, the same way it owns its listen address.
package store

import (
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// envelopeVersion is bumped on any breaking change to the record
// layout; records carrying any other version are treated as misses.
const envelopeVersion = 1

// suffixes of the two files a record may own.
const (
	runSuffix  = ".run"
	profSuffix = ".prof"
)

// Record is one stored result: the raw JSON forms of the canonical
// request, the deterministic RunDoc, and the run statistics.  All three
// are opaque to the store — it round-trips bytes; the service owns the
// schemas.
type Record struct {
	ID    string          `json:"id"`
	Spec  json.RawMessage `json:"spec"`
	Doc   json.RawMessage `json:"doc"`
	Stats json.RawMessage `json:"stats,omitempty"`
}

// envelope is the on-disk form of a Record.
type envelope struct {
	V int `json:"v"`
	Record
}

// Stats is a snapshot of the store's counters.
type Stats struct {
	Hits    uint64 // Get calls answered from disk
	Misses  uint64 // Get calls with no (valid) record
	Writes  uint64 // records and profiles written
	Errors  uint64 // I/O or validation failures (reads and writes)
	Entries int    // run records on disk
	Bytes   int64  // total bytes of records and profiles
}

// Store is a disk-backed content-addressed result store rooted at one
// directory.  Methods are safe for concurrent use.
type Store struct {
	dir string

	mu      sync.Mutex
	hits    uint64
	misses  uint64
	writes  uint64
	errors  uint64
	entries int
	bytes   int64
}

// Open creates (if needed) and scans the store directory, returning a
// Store warmed with its entry and byte counts.  Leftover temporary
// files from an interrupted write are removed.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir}
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		name := d.Name()
		if strings.HasPrefix(name, tmpPrefix) {
			os.Remove(path) // torn write from a previous process
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return nil
		}
		s.bytes += info.Size()
		if strings.HasSuffix(name, runSuffix) {
			s.entries++
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: scanning %s: %w", dir, err)
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// tmpPrefix marks in-flight temporary files; Open sweeps leftovers.
const tmpPrefix = ".tmp-"

// validID reports whether id is a plausible content address (lowercase
// hex, bounded length) — the gate that keeps request-supplied ids from
// ever becoming path traversal.
func validID(id string) bool {
	if len(id) < 8 || len(id) > 128 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// path returns the final path for id with the given suffix, fanning
// records out over 256 subdirectories to keep directory scans flat.
func (s *Store) path(id, suffix string) string {
	return filepath.Join(s.dir, id[:2], id+suffix)
}

// Put durably writes a run record.  The write is atomic (temp + fsync +
// rename + directory fsync): a concurrent crash leaves either the prior
// record or this one.
func (s *Store) Put(rec Record) error {
	if !validID(rec.ID) {
		return s.fail(fmt.Errorf("store: invalid id %q", rec.ID))
	}
	if len(rec.Doc) == 0 {
		return s.fail(fmt.Errorf("store: record %s has no document", rec.ID[:8]))
	}
	data, err := json.Marshal(envelope{V: envelopeVersion, Record: rec})
	if err != nil {
		return s.fail(fmt.Errorf("store: encoding %s: %w", rec.ID[:8], err))
	}
	fresh, err := s.writeAtomic(s.path(rec.ID, runSuffix), data)
	if err != nil {
		return s.fail(err)
	}
	s.mu.Lock()
	s.writes++
	s.bytes += int64(len(data))
	if fresh {
		s.entries++
	}
	s.mu.Unlock()
	return nil
}

// Get returns the record for id.  Any failure — missing file, torn or
// corrupt envelope, id mismatch — reads as a miss; corruption is
// additionally counted on the error counter and the damaged file is
// removed so the next Put rewrites it cleanly.
func (s *Store) Get(id string) (Record, bool) {
	if !validID(id) {
		return Record{}, false
	}
	data, err := os.ReadFile(s.path(id, runSuffix))
	if err != nil {
		s.miss(false)
		return Record{}, false
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil || env.V != envelopeVersion || env.ID != id || len(env.Doc) == 0 {
		os.Remove(s.path(id, runSuffix))
		s.miss(true)
		return Record{}, false
	}
	s.mu.Lock()
	s.hits++
	s.mu.Unlock()
	return env.Record, true
}

// PutProfile durably writes a run's canonical encoded profile next to
// its record, with Put's atomicity.
func (s *Store) PutProfile(id string, raw []byte) error {
	if !validID(id) {
		return s.fail(fmt.Errorf("store: invalid id %q", id))
	}
	if len(raw) == 0 {
		return s.fail(fmt.Errorf("store: empty profile for %s", id[:8]))
	}
	if _, err := s.writeAtomic(s.path(id, profSuffix), raw); err != nil {
		return s.fail(err)
	}
	s.mu.Lock()
	s.writes++
	s.bytes += int64(len(raw))
	s.mu.Unlock()
	return nil
}

// GetProfile returns the stored encoded profile for id, if any.
func (s *Store) GetProfile(id string) ([]byte, bool) {
	if !validID(id) {
		return nil, false
	}
	raw, err := os.ReadFile(s.path(id, profSuffix))
	if err != nil || len(raw) == 0 {
		return nil, false
	}
	return raw, true
}

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{Hits: s.hits, Misses: s.misses, Writes: s.writes,
		Errors: s.errors, Entries: s.entries, Bytes: s.bytes}
}

func (s *Store) miss(corrupt bool) {
	s.mu.Lock()
	s.misses++
	if corrupt {
		s.errors++
	}
	s.mu.Unlock()
}

func (s *Store) fail(err error) error {
	s.mu.Lock()
	s.errors++
	s.mu.Unlock()
	return err
}

// writeAtomic writes data to path via a same-directory temp file with
// fsync on both the file and its directory, reporting whether the final
// path did not exist before (a fresh record rather than a rewrite).
func (s *Store) writeAtomic(path string, data []byte) (fresh bool, err error) {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return false, fmt.Errorf("store: %w", err)
	}
	_, statErr := os.Stat(path)
	fresh = os.IsNotExist(statErr)

	f, err := os.CreateTemp(dir, tmpPrefix+filepath.Base(path)+"-")
	if err != nil {
		return false, fmt.Errorf("store: %w", err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if _, err = f.Write(data); err != nil {
		return false, fmt.Errorf("store: writing %s: %w", tmp, err)
	}
	if err = f.Sync(); err != nil {
		return false, fmt.Errorf("store: fsync %s: %w", tmp, err)
	}
	if err = f.Close(); err != nil {
		return false, fmt.Errorf("store: closing %s: %w", tmp, err)
	}
	if err = os.Rename(tmp, path); err != nil {
		return false, fmt.Errorf("store: committing %s: %w", path, err)
	}
	// fsync the directory so the rename itself is durable.
	if d, derr := os.Open(dir); derr == nil {
		d.Sync()
		d.Close()
	}
	return fresh, nil
}
