package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"spasm"
	"spasm/internal/report"
	"spasm/internal/service"
	"spasm/internal/service/client"
)

func newTestService(t *testing.T, cfg service.Config) (*service.Server, *client.Client) {
	t.Helper()
	svc := service.New(cfg)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		if err := svc.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return svc, client.New(ts.URL)
}

// TestEndToEnd drives the full service loop over HTTP: submit a run,
// poll it to completion, check the statistics are byte-identical to a
// direct spasm.Run of the same spec, and check that an identical
// resubmission is a cache hit visible on /metrics.
func TestEndToEnd(t *testing.T) {
	_, cl := newTestService(t, service.Config{Workers: 2, CacheSize: 64})
	ctx := context.Background()

	req := service.RunRequest{App: "fft", Scale: "tiny", Machine: "target", Topology: "full", P: 4}
	st, err := cl.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != service.StateDone {
		t.Fatalf("run finished %s (%s)", st.State, st.Error)
	}

	// Byte-identical to a direct run of the same canonical spec.
	direct, err := spasm.RunSpec(spasm.Spec{
		App: "fft", Scale: spasm.Tiny, Seed: 1, Machine: spasm.Target, Topology: "full", P: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(report.RunJSON(direct))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(st.Result, want) {
		t.Fatalf("service result differs from direct run:\n  service %s\n  direct  %s", st.Result, want)
	}

	// An identical resubmission is served from the cache, immediately
	// done, byte-identical again.
	st2, err := cl.SubmitRun(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != service.StateDone || !st2.Cached {
		t.Fatalf("resubmission: state=%s cached=%v, want done/cached", st2.State, st2.Cached)
	}
	if st2.ID != st.ID {
		t.Fatalf("content addressing broken: IDs %s vs %s", st.ID, st2.ID)
	}
	if !bytes.Equal(st2.Result, want) {
		t.Fatalf("cached result not byte-identical")
	}

	page, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if hits, ok := client.MetricValue(page, "spasmd_cache_hits_total"); !ok || hits < 1 {
		t.Fatalf("cache hits = %v (present=%v), want >= 1\n%s", hits, ok, page)
	}
	if misses, ok := client.MetricValue(page, "spasmd_cache_misses_total"); !ok || misses < 1 {
		t.Fatalf("cache misses = %v (present=%v), want >= 1", misses, ok)
	}

	if h, err := cl.Healthz(ctx); err != nil || h.Status != "ok" {
		t.Fatalf("healthz: %+v, %v", h, err)
	}
}

// TestFigureEndpoint checks that a figure request decomposes into pooled
// runs and matches a direct experiment session, and that repeating it
// re-simulates nothing (every underlying run hits the cache).
func TestFigureEndpoint(t *testing.T) {
	_, cl := newTestService(t, service.Config{Workers: 4})
	ctx := context.Background()
	opts := client.SweepOpts{Scale: "tiny", Procs: []int{2, 4}}

	fig, err := cl.Figure(ctx, 7, opts) // IS on Mesh: Contention
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("got %d series, want 3 (logp, clogp, target)", len(fig.Series))
	}

	sess := spasm.NewSession(spasm.Options{Scale: spasm.Tiny, Procs: []int{2, 4}})
	f, err := spasm.FigureByNumber(7)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := sess.Figure(f)
	if err != nil {
		t.Fatal(err)
	}
	want := report.FigureJSON(fr)
	for i, s := range want.Series {
		for j, pt := range s.Points {
			got := fig.Series[i].Points[j]
			if got.P != pt.P || got.ValueUS != pt.ValueUS {
				t.Fatalf("series %s point %d: service (p=%d, %v), direct (p=%d, %v)",
					s.Machine, j, got.P, got.ValueUS, pt.P, pt.ValueUS)
			}
		}
	}

	before, _ := cl.Metrics(ctx)
	misses0, _ := client.MetricValue(before, "spasmd_cache_misses_total")
	if _, err := cl.Figure(ctx, 7, opts); err != nil {
		t.Fatal(err)
	}
	after, _ := cl.Metrics(ctx)
	misses1, _ := client.MetricValue(after, "spasmd_cache_misses_total")
	if misses1 != misses0 {
		t.Fatalf("repeated figure caused %v new cache misses, want 0", misses1-misses0)
	}
}

// TestSweepEndpoint exercises the ad-hoc sweep surface, including an
// extension workload on an extension topology.
func TestSweepEndpoint(t *testing.T) {
	_, cl := newTestService(t, service.Config{Workers: 4})
	fig, err := cl.Sweep(context.Background(), "mg", "torus", "exec",
		client.SweepOpts{Scale: "tiny", Procs: []int{2, 4}, Machines: []string{"logp", "target"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 || len(fig.Series[0].Points) != 2 {
		t.Fatalf("sweep shape: %d series x %d points, want 2x2", len(fig.Series), len(fig.Series[0].Points))
	}
	for _, s := range fig.Series {
		for _, pt := range s.Points {
			if pt.ValueUS <= 0 {
				t.Fatalf("machine %s p=%d: non-positive execution time %v", s.Machine, pt.P, pt.ValueUS)
			}
		}
	}
}

// TestValidation: malformed submissions are rejected with 400s, unknown
// runs with 404s.
func TestValidation(t *testing.T) {
	_, cl := newTestService(t, service.Config{Workers: 1})
	ctx := context.Background()
	for _, req := range []service.RunRequest{
		{App: "no-such-app", P: 2},
		{App: "fft", P: 0},
		{App: "fft", P: 2, Scale: "giant"},
		{App: "fft", P: 2, Machine: "quantum"},
	} {
		if _, err := cl.SubmitRun(ctx, req); err == nil {
			t.Fatalf("request %+v accepted, want 400", req)
		}
	}
	if _, err := cl.GetRun(ctx, "deadbeef"); err == nil {
		t.Fatal("unknown run ID returned a status, want 404")
	}
	if _, err := cl.Figure(ctx, 99, client.SweepOpts{}); err == nil {
		t.Fatal("figure 99 accepted, want 404")
	}
}

// TestFailedRunIsCached: a spec that fails deterministically (FFT needs
// enough data per processor) reports failed, and the failure itself is
// content-addressed so resubmission doesn't re-simulate.
func TestFailedRunIsCached(t *testing.T) {
	_, cl := newTestService(t, service.Config{Workers: 1})
	ctx := context.Background()
	req := service.RunRequest{App: "fft", Scale: "tiny", Machine: "target", P: 3} // the paper's platforms need a power-of-two p
	st, err := cl.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if st.State == service.StateDone {
		t.Skip("p=3 unexpectedly valid for fft/tiny; nothing to assert")
	}
	if st.Error == "" {
		t.Fatal("failed run carries no error")
	}
	st2, err := cl.SubmitRun(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != service.StateFailed || !st2.Cached {
		t.Fatalf("failed resubmission: state=%s cached=%v, want failed/cached", st2.State, st2.Cached)
	}
}

// TestConcurrentSubmissions hammers the queue from many goroutines with
// overlapping specs (run with -race in CI): every submission resolves,
// identical specs coalesce onto identical results, and only one
// simulation per distinct spec is ever executed.
func TestConcurrentSubmissions(t *testing.T) {
	svc, cl := newTestService(t, service.Config{Workers: 4, CacheSize: 64})
	ctx := context.Background()

	specs := []service.RunRequest{
		{App: "ep", Scale: "tiny", Machine: "logp", P: 2},
		{App: "ep", Scale: "tiny", Machine: "logp", P: 4},
		{App: "is", Scale: "tiny", Machine: "clogp", Topology: "mesh", P: 4},
		{App: "fft", Scale: "tiny", Machine: "target", Topology: "cube", P: 4},
	}
	const clients = 8
	results := make([][]*service.RunStatus, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				for _, req := range specs {
					st, err := cl.Run(ctx, req)
					if err != nil {
						t.Errorf("client %d: %v", c, err)
						return
					}
					results[c] = append(results[c], st)
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Identical specs produced byte-identical results everywhere.
	byID := map[string][]byte{}
	for _, rs := range results {
		for _, st := range rs {
			if st.State != service.StateDone {
				t.Fatalf("run %s: %s (%s)", st.ID, st.State, st.Error)
			}
			if prev, ok := byID[st.ID]; ok {
				if !bytes.Equal(prev, st.Result) {
					t.Fatalf("run %s: divergent results across clients", st.ID)
				}
			} else {
				byID[st.ID] = st.Result
			}
		}
	}
	if len(byID) != len(specs) {
		t.Fatalf("got %d distinct results, want %d", len(byID), len(specs))
	}

	// Coalescing + caching: exactly one simulation per distinct spec.
	page, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	done, _ := client.MetricValue(page, "spasmd_jobs_done_total")
	if int(done) != len(specs) {
		t.Fatalf("executed %v jobs for %d distinct specs (coalescing/cache broken)\n%s", done, len(specs), page)
	}
	if svc.QueueDepth() != 0 {
		t.Fatalf("queue not drained: depth %d", svc.QueueDepth())
	}
}

// TestShutdownDrains: jobs accepted before Shutdown complete; new
// submissions are refused while draining.
func TestShutdownDrains(t *testing.T) {
	svc := service.New(service.Config{Workers: 1})
	spec := spasm.Spec{App: "ep", Scale: spasm.Tiny, Machine: spasm.LogP, P: 2}
	j, _, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	select {
	case <-j.Done():
	default:
		t.Fatal("Shutdown returned before the accepted job completed")
	}
	st, err := svc.Wait(ctx, j)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != service.StateDone {
		t.Fatalf("drained job %s (%s), want done", st.State, st.Error)
	}
	if _, _, err := svc.Submit(spasm.Spec{App: "is", Scale: spasm.Tiny, Machine: spasm.LogP, P: 2}); err != service.ErrDraining {
		t.Fatalf("submission while draining: err=%v, want ErrDraining", err)
	}
	// A cached spec is still answerable during/after drain.
	if _, hit, err := svc.Submit(spec); err != nil || !hit {
		t.Fatalf("cached spec during drain: hit=%v err=%v, want hit", hit, err)
	}
}

// TestAdaptiveRunOverWire drives an adaptive-fidelity submission through
// the HTTP API: the wire fields survive the spec round trip, the RunDoc
// carries the escalation record, and the escalation shows up on
// /metrics as spasmd_runs_escalated_total.
func TestAdaptiveRunOverWire(t *testing.T) {
	_, cl := newTestService(t, service.Config{Workers: 1, CacheSize: 8})
	ctx := context.Background()

	req := service.RunRequest{App: "fft", Scale: "tiny", Machine: "flow",
		Topology: "mesh", P: 8, Adaptive: true, EscalatePct: 0}
	st, err := cl.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != service.StateDone {
		t.Fatalf("adaptive run finished %s (%s)", st.State, st.Error)
	}
	if !st.Spec.Adaptive || st.Spec.Machine != "flow" {
		t.Fatalf("spec echo lost the adaptive fields: %+v", st.Spec)
	}
	var doc report.RunDoc
	if err := json.Unmarshal(st.Result, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Escalation == nil || !doc.Escalation.Tripped ||
		doc.Escalation.From != "flow" || doc.Escalation.To != "target" {
		t.Fatalf("RunDoc escalation = %+v, want tripped flow->target", doc.Escalation)
	}

	page, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains([]byte(page), []byte("spasmd_runs_escalated_total 1")) {
		t.Fatalf("metrics page missing spasmd_runs_escalated_total 1:\n%s", page)
	}
}

// TestParallelRunOverWire drives the workers wire field end to end: a
// LogP run with workers executes on the parallel kernel, its RunDoc is
// byte-identical to a sequential run of the same spec (and carries no
// host block), the content address ignores workers, and the outcome
// shows up on /metrics.  A second run on the coherent target machine
// must land in the fallback counter instead.
func TestParallelRunOverWire(t *testing.T) {
	_, cl := newTestService(t, service.Config{Workers: 1, CacheSize: 16})
	ctx := context.Background()

	req := service.RunRequest{App: "fft", Scale: "tiny", Machine: "logp",
		Topology: "mesh", P: 8, Workers: 4}
	st, err := cl.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != service.StateDone {
		t.Fatalf("parallel run finished %s (%s)", st.State, st.Error)
	}
	seq := req
	seq.Workers = 0
	seqSpec, err := seq.Spec()
	if err != nil {
		t.Fatal(err)
	}
	parSpec, err := req.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if seqSpec.Hash() != parSpec.Hash() {
		t.Fatalf("workers changed the content address: %s vs %s", seqSpec.Hash(), parSpec.Hash())
	}
	direct, err := spasm.RunSpec(seqSpec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(report.RunJSON(direct))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(st.Result, want) {
		t.Fatalf("parallel RunDoc diverged from sequential:\nseq: %s\npar: %s", want, st.Result)
	}
	if bytes.Contains(st.Result, []byte(`"host"`)) {
		t.Fatalf("cached RunDoc leaked host-side measurements: %s", st.Result)
	}

	// The coherent target machine declines the parallel mode.
	fb := service.RunRequest{App: "fft", Scale: "tiny", Machine: "target", P: 8, Workers: 4}
	if st, err = cl.Run(ctx, fb); err != nil {
		t.Fatal(err)
	}
	if st.State != service.StateDone {
		t.Fatalf("fallback run finished %s (%s)", st.State, st.Error)
	}

	page, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains([]byte(page), []byte("spasmd_runs_parallel_total 1")) {
		t.Fatalf("metrics page missing spasmd_runs_parallel_total 1:\n%s", page)
	}
	if !bytes.Contains([]byte(page), []byte("spasmd_par_fallbacks_total 1")) {
		t.Fatalf("metrics page missing spasmd_par_fallbacks_total 1:\n%s", page)
	}
	if !bytes.Contains([]byte(page), []byte(`spasmd_pool_contexts_live{kind="logp"}`)) {
		t.Fatalf("metrics page missing per-kind pool gauges:\n%s", page)
	}

	// An over-limit worker count is rejected at validation.
	bad := service.RunRequest{App: "fft", Scale: "tiny", P: 8, Workers: spasm.MaxWorkers + 1}
	if _, err := cl.Run(ctx, bad); err == nil {
		t.Fatal("service accepted workers beyond the limit")
	}
}
