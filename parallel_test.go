package spasm

// Parallel-execution determinism lock: the conservative parallel kernel
// (Spec.Workers > 1) must produce byte-identical report documents to the
// sequential kernel — same events, same clocks, same statistics — for
// every application, machine kind, and topology it accelerates, and must
// fall back (visibly, via Result.Par) on the kinds it cannot.  This is
// the subsystem's non-negotiable contract: parallelism is an execution
// detail, never a source of divergence.

import (
	"bytes"
	"encoding/json"
	"errors"
	"runtime"
	"testing"
	"time"

	"spasm/internal/report"
)

// parallelCombos enumerates the (kind, topology) pairs the parallel
// kernel accelerates: the latency-bound machines across the full
// topology set, plus the ideal machine (which has no network at all).
func parallelCombos() []struct {
	kind Kind
	topo string
} {
	var combos []struct {
		kind Kind
		topo string
	}
	for _, kind := range []Kind{LogP, Flow} {
		for _, topo := range []string{"full", "cube", "mesh", "ring", "torus"} {
			combos = append(combos, struct {
				kind Kind
				topo string
			}{kind, topo})
		}
	}
	combos = append(combos, struct {
		kind Kind
		topo string
	}{Ideal, "full"})
	return combos
}

func TestParallelRunsBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full Tiny suite x machine/topology combos x worker counts")
	}
	pool := NewRunPool(0)
	for _, app := range Apps() {
		for _, c := range parallelCombos() {
			spec := Spec{App: app, Scale: Tiny, Machine: c.kind, Topology: c.topo, P: 8}
			seq, err := RunSpecControlled(spec, pool, RunControl{})
			if err != nil {
				t.Fatalf("sequential %s on %v/%s: %v", app, c.kind, c.topo, err)
			}
			want, err := json.Marshal(report.RunJSON(seq))
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 4} {
				pspec := spec
				pspec.Workers = workers
				par, err := RunSpecControlled(pspec, pool, RunControl{})
				if err != nil {
					t.Fatalf("parallel(%d) %s on %v/%s: %v", workers, app, c.kind, c.topo, err)
				}
				if par.Par == nil || !par.Par.Parallel {
					t.Fatalf("parallel(%d) %s on %v/%s did not run parallel: %+v",
						workers, app, c.kind, c.topo, par.Par)
				}
				got, err := json.Marshal(report.RunJSON(par))
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("parallel(%d) %s on %v/%s diverged from sequential\nseq: %s\npar: %s",
						workers, app, c.kind, c.topo, want, got)
				}
			}
		}
	}
}

// TestParallelFallbackBitIdentical locks the other half of the contract:
// machine kinds whose minimum cross-process latency is zero (the
// coherence-modelling Target and CLogP) decline the parallel mode, record
// why, and still produce byte-identical results through the sequential
// path they fall back to.
func TestParallelFallbackBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("Tiny suite on the coherent machines")
	}
	pool := NewRunPool(0)
	for _, app := range Apps() {
		for _, kind := range []Kind{Target, CLogP} {
			spec := Spec{App: app, Scale: Tiny, Machine: kind, P: 8}
			seq, err := RunSpecControlled(spec, pool, RunControl{})
			if err != nil {
				t.Fatalf("sequential %s on %v: %v", app, kind, err)
			}
			pspec := spec
			pspec.Workers = 4
			par, err := RunSpecControlled(pspec, pool, RunControl{})
			if err != nil {
				t.Fatalf("workers=4 %s on %v: %v", app, kind, err)
			}
			if par.Par == nil {
				t.Fatalf("%s on %v: Workers=4 run carries no parallel report", app, kind)
			}
			if par.Par.Parallel {
				t.Fatalf("%s on %v ran parallel; coherent machines must fall back", app, kind)
			}
			if par.Par.Fallback == "" {
				t.Fatalf("%s on %v fell back without recording a reason", app, kind)
			}
			want, _ := json.Marshal(report.RunJSON(seq))
			got, _ := json.Marshal(report.RunJSON(par))
			if !bytes.Equal(got, want) {
				t.Fatalf("fallback %s on %v diverged from sequential\nseq: %s\nfb:  %s",
					app, kind, want, got)
			}
		}
	}
}

// TestWorkersOutsideSpecIdentity asserts the content-address contract:
// Workers is an execution knob, not run identity — it must not perturb
// Key or Hash.
func TestWorkersOutsideSpecIdentity(t *testing.T) {
	base := Spec{App: "fft", Scale: Tiny, Machine: LogP, P: 8}
	with := base
	with.Workers = 8
	if base.Key() != with.Key() {
		t.Fatalf("Workers leaked into Spec.Key:\n%s\n%s", base.Key(), with.Key())
	}
	if base.Hash() != with.Hash() {
		t.Fatalf("Workers leaked into Spec.Hash")
	}
	neg := base
	neg.Workers = -3
	if neg.Canonical().Workers != 0 {
		t.Fatalf("Canonical did not clamp negative Workers: %d", neg.Canonical().Workers)
	}
	bad := base
	bad.Workers = MaxWorkers + 1
	if err := bad.Validate(); err == nil {
		t.Fatalf("Validate accepted Workers=%d", bad.Workers)
	}
}

// TestParallelAbortChaos interrupts parallel runs mid-window — by
// wall-clock timeout and by cancellation at varying points — and checks
// the failure-containment contract holds in parallel mode exactly as it
// does sequentially: every simulated-process goroutine unwinds (no
// leaks), the aborted run's pooled context is discarded rather than
// returned, and a subsequent clean run on the same pool still produces
// bit-identical results.  Run with -race, this is also the drain
// transition's data-race gauntlet.
func TestParallelAbortChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("repeated aborted runs")
	}
	base := runtime.NumGoroutine()
	pool := NewRunPool(0)
	spec := Spec{App: "cholesky", Scale: Tiny, Machine: LogP, Topology: "mesh", P: 8, Workers: 4}

	// Timeout sweep: deadlines from "immediately" to "well into the run"
	// catch the drain at different window depths.
	timeouts := 0
	for _, d := range []time.Duration{
		50 * time.Microsecond, 200 * time.Microsecond, time.Millisecond,
		5 * time.Millisecond, 20 * time.Millisecond,
	} {
		_, err := RunSpecControlled(spec, pool, RunControl{Timeout: d})
		switch {
		case err == nil: // deadline landed after completion
		case errors.Is(err, ErrRunTimeout):
			timeouts++
		default:
			t.Fatalf("timeout %v: unexpected error %v", d, err)
		}
	}
	if timeouts == 0 {
		t.Skip("no deadline fired before completion; host too slow to observe aborts")
	}

	// Cancellation mid-flight, raced from a second goroutine.
	cancels := 0
	for i := 0; i < 5; i++ {
		cancel := make(chan struct{})
		go func(delay time.Duration) {
			time.Sleep(delay)
			close(cancel)
		}(time.Duration(i) * 500 * time.Microsecond)
		_, err := RunSpecControlled(spec, pool, RunControl{Cancel: cancel})
		switch {
		case err == nil:
		case errors.Is(err, ErrRunCanceled):
			cancels++
		default:
			t.Fatalf("cancel %d: unexpected error %v", i, err)
		}
	}

	st := pool.Stats()
	if want := timeouts + cancels; st.Discarded < want {
		t.Fatalf("pool discarded %d contexts, want >= %d (one per aborted run)", st.Discarded, want)
	}

	// The pool must still serve clean, bit-identical runs after the abuse.
	seq := spec
	seq.Workers = 0
	want, err := RunSpecControlled(seq, nil, RunControl{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunSpecControlled(spec, pool, RunControl{})
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(report.RunJSON(want))
	gotJSON, _ := json.Marshal(report.RunJSON(got))
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatalf("post-chaos parallel run diverged\nseq: %s\npar: %s", wantJSON, gotJSON)
	}

	// Every simulated-process goroutine must be gone.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutine leak after parallel aborts: %d live, want <= %d\n%s",
		runtime.NumGoroutine(), base, buf[:n])
}
