package spasm

import (
	"errors"

	"spasm/internal/app"
	"spasm/internal/apps"
	"spasm/internal/exp"
	"spasm/internal/probe"
	"spasm/internal/runpool"
)

// Batched sweeps and pooled run contexts.
type (
	// BatchPoint is one sweep point for RunMany/Session.RunBatch: an
	// (application, topology, machine, P) combination at the batch's
	// scale and seed.
	BatchPoint = exp.BatchPoint
	// RunPool is a bounded freelist of reusable run contexts keyed by
	// machine configuration; runs on a pool skip machine construction
	// after the first run of each configuration while producing
	// bit-identical results.  Safe for concurrent use.
	RunPool = runpool.Pool
	// PoolStats is a snapshot of a pool's hit/miss/live counters.
	PoolStats = runpool.Stats
)

// NewRunPool returns a run-context pool retaining at most maxIdle idle
// contexts (a sensible default when maxIdle <= 0).
func NewRunPool(maxIdle int) *RunPool { return runpool.New(maxIdle) }

// RunMany executes a batch of sweep points on a bounded worker pool
// (Options.Parallel workers) with per-worker context reuse, returning
// statistics in input order.  Duplicate points are simulated once, and
// results are bit-identical to individual Run calls regardless of worker
// count.  It is the one-shot form of Session.RunBatch.
func RunMany(opt Options, points []BatchPoint) ([]*RunStats, error) {
	return exp.RunMany(opt, points)
}

// RunOn is Run on a pooled context: the simulation engine, address
// space, and machine are drawn from pool and reset in place instead of
// constructed, so repeated runs of one configuration amortize setup.
// The returned Result's Stats and Phases are freshly allocated and safe
// to keep; its Machine and Space reference pooled state and are only
// readable until the pool reuses the context.  A nil pool behaves like
// Run.
func RunOn(appName string, scale Scale, seed int64, cfg Config, pool *RunPool) (*Result, error) {
	prog, err := apps.New(appName, scale, seed)
	if err != nil {
		var extErr error
		prog, extErr = apps.NewExtended(appName, scale, seed)
		if extErr != nil {
			return nil, err
		}
	}
	return app.RunPooled(prog, cfg, pool)
}

// RunSpecOn is RunSpec on a pooled context, with RunOn's reuse and
// lifetime semantics.  It is the path the spasmd workers use, so the
// service amortizes construction across the jobs it executes.
func RunSpecOn(spec Spec, pool *RunPool) (*Result, error) {
	return RunSpecControlled(spec, pool, RunControl{})
}

// RunControl carries the failure-containment knobs of one run: a
// wall-clock Timeout and/or a Cancel channel, either of which aborts
// the run cooperatively (every simulated-process goroutine unwinds; no
// leaks).  The zero value means "run to completion" and costs nothing.
type RunControl = app.RunControl

// Failure-containment sentinels: match these with errors.Is to tell a
// bounded run's abort reason apart from a genuine simulation failure.
var (
	// ErrRunTimeout marks a run aborted by RunControl.Timeout.
	ErrRunTimeout = app.ErrRunTimeout
	// ErrRunCanceled marks a run aborted by RunControl.Cancel.
	ErrRunCanceled = app.ErrRunCanceled
)

// RunSpecControlled is RunSpecOn bounded by ctl.  An aborted or failed
// run discards its pooled context instead of returning it to the
// freelist — half-finished simulation state never re-enters the pool —
// so the only cost of an abort is one fresh construction on the next
// run of that configuration.
func RunSpecControlled(spec Spec, pool *RunPool, ctl RunControl) (*Result, error) {
	spec = spec.Canonical()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if ctl.Workers == 0 {
		// The spec's Workers knob reaches the engine through RunControl;
		// an explicit ctl.Workers wins over the spec's.
		ctl.Workers = spec.Workers
	}
	if spec.Adaptive {
		return runAdaptive(spec, pool, ctl)
	}
	prog, err := newProgram(spec)
	if err != nil {
		return nil, err
	}
	return app.RunPooledControlled(prog, spec.Config(), pool, ctl)
}

// ErrAdaptiveProfiled marks a profiled-controlled run rejected because
// the spec is adaptive: adaptive runs resolve their network tier by
// re-running, so a single live profile cannot describe them.  Resolve
// the tier first (RunSpecProfiled does) or pin the machine explicitly.
var ErrAdaptiveProfiled = errors.New("spasm: adaptive spec cannot be live-profiled; pin the machine tier")

// RunSpecProfiledControlled is RunSpecControlled with a telemetry
// profiler attached — the worker path behind spasmd's live run
// streaming: pc.OnEpoch fires for each profile epoch as it closes
// during the run.  Profiling inherits RunSpec's determinism and does
// not perturb the simulated execution, but it does hook the engine
// clock, which forces the sequential kernel even when ctl.Workers > 1.
// Adaptive specs are rejected with ErrAdaptiveProfiled.
func RunSpecProfiledControlled(spec Spec, pool *RunPool, ctl RunControl, pc ProfileConfig) (*Result, *Profile, error) {
	spec = spec.Canonical()
	if err := spec.Validate(); err != nil {
		return nil, nil, err
	}
	if spec.Adaptive {
		return nil, nil, ErrAdaptiveProfiled
	}
	if ctl.Workers == 0 {
		ctl.Workers = spec.Workers
	}
	prog, err := newProgram(spec)
	if err != nil {
		return nil, nil, err
	}
	pr := probe.New(pc)
	res, err := app.RunPooledInstrumented(prog, spec.Config(), pool, ctl, pr)
	if err != nil {
		return nil, nil, err
	}
	return res, pr.Profile(), nil
}
