package apps

import (
	"fmt"

	"spasm/internal/app"
	"spasm/internal/mem"
)

// IS is the NAS integer-sort kernel: rank N keys drawn from [0, K) by
// counting sort.  Its communication pattern is regular but heavy, and it
// uses locks for mutual exclusion while merging histograms — the
// combination behind the paper's Figures 4, 6, 7 and 14.
//
// Phases (barrier-separated):
//
//  1. local histogram of the processor's own key block (local reads);
//  2. lock-guarded merge of local histograms into the shared bucket
//     array, processors starting at staggered chunks;
//  3. prefix sum of the bucket array (the serial part, processor 0);
//  4. ranking: every key requires a read of its bucket's global offset —
//     scattered, communication-heavy reads — and a local rank write.
type IS struct {
	N    int // keys
	K    int // key range / buckets
	Seed int64

	chunks int // lock granularity for the merge phase

	// Shared data.
	keys   *mem.Array
	counts *mem.Array
	ranks  *mem.Array
	locks  []*app.SpinLock
	bars   []*app.Barrier

	// Host-side values.
	keyv    []int64
	hist    []int64   // shared histogram under simulated locks
	perHist [][]int64 // per-processor local histograms
	prefix  []int64
	rankv   []int64
	offset  [][]int64 // per-processor next rank per bucket
}

// NewIS returns an IS instance at the given scale.
func NewIS(scale Scale, seed int64) app.Program {
	is := &IS{Seed: seed}
	switch scale {
	case Tiny:
		is.N, is.K = 1<<9, 1<<6
	case Small:
		is.N, is.K = 1<<13, 1<<9
	default:
		is.N, is.K = 1<<15, 1<<10
	}
	return is
}

func init() {
	register("is", NewIS)
}

// Name implements app.Program.
func (s *IS) Name() string { return "is" }

// Setup allocates keys (blocked), the shared bucket array, rank output,
// merge locks and phase barriers, and generates the keys.
func (s *IS) Setup(c *app.Ctx) {
	s.chunks = min(16, c.P*2)
	s.keys = c.Space.Alloc("is.keys", s.N, 8, mem.Blocked)
	s.counts = c.Space.Alloc("is.counts", s.K, 8, mem.Blocked)
	s.ranks = c.Space.Alloc("is.ranks", s.N, 8, mem.Blocked)
	for i := 0; i < s.chunks; i++ {
		s.locks = append(s.locks, c.NewLock(fmt.Sprintf("is.lock%d", i), i%c.P))
	}
	for i := 0; i < 3; i++ {
		s.bars = append(s.bars, c.NewBarrier(fmt.Sprintf("is.bar%d", i), c.P, i%c.P))
	}
	rng := newRng(s.Seed)
	defer putRng(rng)
	s.keyv = make([]int64, s.N)
	for i := range s.keyv {
		// NAS IS keys are the average of four uniforms (roughly
		// Gaussian over the range); keep that shape.
		s.keyv[i] = int64((rng.Intn(s.K) + rng.Intn(s.K) + rng.Intn(s.K) + rng.Intn(s.K)) / 4)
	}
	s.hist = make([]int64, s.K)
	s.prefix = make([]int64, s.K)
	s.rankv = make([]int64, s.N)
	s.perHist = make([][]int64, c.P)
	s.offset = make([][]int64, c.P)
	for p := range s.perHist {
		s.perHist[p] = make([]int64, s.K)
		s.offset[p] = make([]int64, s.K)
	}
}

// Body implements app.Program.
func (s *IS) Body(p *app.Proc) {
	P := p.Ctx.P
	lo, hi := share(s.N, P, p.ID)

	// Phase 1: local histogram over the processor's own key block.
	p.Phase("histogram")
	p.ReadRange(s.keys, lo, hi)
	local := s.perHist[p.ID]
	for i := lo; i < hi; i++ {
		local[s.keyv[i]]++
	}
	p.Compute(int64(hi-lo) * (IntOpCycles + LoopCycles))

	// Phase 2: merge into the shared histogram, one lock-guarded chunk
	// at a time, starting at a staggered position to spread contention.
	p.Phase("merge")
	per := (s.K + s.chunks - 1) / s.chunks
	for c := 0; c < s.chunks; c++ {
		chunk := (c + p.ID) % s.chunks
		bLo := chunk * per
		bHi := min(bLo+per, s.K)
		s.locks[chunk].Lock(p)
		for b := bLo; b < bHi; b++ {
			if local[b] == 0 {
				continue
			}
			p.ReadElem(s.counts, b)
			s.hist[b] += local[b]
			p.Compute(IntOpCycles)
			p.WriteElem(s.counts, b)
		}
		s.locks[chunk].Unlock(p)
	}
	s.bars[0].Arrive(p)

	// Phase 3: prefix sum — the serial part, done by processor 0.
	p.Phase("prefix")
	if p.ID == 0 {
		var acc int64
		for b := 0; b < s.K; b++ {
			p.ReadElem(s.counts, b)
			s.prefix[b] = acc
			acc += s.hist[b]
			p.Compute(IntOpCycles)
			p.WriteElem(s.counts, b)
		}
		// Per-processor rank offsets (host bookkeeping mirroring
		// what each processor derives in phase 4).
		next := make([]int64, s.K)
		copy(next, s.prefix)
		for q := 0; q < P; q++ {
			for b := 0; b < s.K; b++ {
				s.offset[q][b] = next[b]
				next[b] += s.perHist[q][b]
			}
		}
	}
	s.bars[1].Arrive(p)

	// Phase 4: rank every local key — a scattered read of the bucket
	// offsets for each key, then a local rank write.
	p.Phase("rank")
	off := s.offset[p.ID]
	for i := lo; i < hi; i++ {
		b := s.keyv[i]
		p.ReadElem(s.counts, int(b))
		s.rankv[i] = off[b]
		off[b]++
		p.Compute(IntOpCycles + LoopCycles)
		p.WriteElem(s.ranks, i)
	}
	s.bars[2].Arrive(p)
}

// Check verifies that the ranks form a permutation that sorts the keys.
func (s *IS) Check() error {
	seen := make([]bool, s.N)
	sorted := make([]int64, s.N)
	for i, r := range s.rankv {
		if r < 0 || r >= int64(s.N) {
			return fmt.Errorf("is: rank %d of key %d out of range", r, i)
		}
		if seen[r] {
			return fmt.Errorf("is: duplicate rank %d", r)
		}
		seen[r] = true
		sorted[r] = s.keyv[i]
	}
	for i := 1; i < s.N; i++ {
		if sorted[i-1] > sorted[i] {
			return fmt.Errorf("is: keys not sorted at rank %d: %d > %d", i, sorted[i-1], sorted[i])
		}
	}
	return nil
}
