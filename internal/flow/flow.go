// Package flow is the simulator's coarsest network tier: traffic is
// modeled as bandwidth-sharing *flows* over the shared-capacity
// topology, in the style of Narses, instead of as per-message circuit
// reservations (the detailed fabric) or per-endpoint port gating (the
// LogP abstraction).
//
// A message from src to dst becomes one flow across the route's
// resources — the source injection port, every directed link on the
// deterministic route, and the destination ejection port.  Each
// resource's nominal capacity is one byte per ByteTime; flows crossing
// a shared resource divide its capacity equally, so a flow's delivery
// time is
//
//	startup + bytes/allocated_bw
//
// re-evaluated only when the bottleneck set changes — that is, at the
// committed arrival and departure times of the competing flows — never
// per hop.  An uncontended flow takes a constant-time fast path with no
// allocation work at all, which is where the orders-of-magnitude event
// reduction over the per-hop model comes from: the detailed fabric pays
// len(route)+2 resource events for every message regardless of load,
// while the flow tier pays allocation recomputations only where sharing
// actually occurs.
//
// The model is deliberately an approximation, in two documented ways:
//
//   - Allocation is *arrival-committed* equal-share max-min fairness: a
//     newly admitted flow is rate-limited by its most-loaded resource
//     (the bottleneck), walking the segments delimited by the committed
//     departures of its competitors, but the competitors' own committed
//     finish times are not re-opened.  This keeps every Transfer O(active
//     flows) with no global water-filling iteration, at the cost of
//     slightly optimistic service for flows admitted first.
//   - The active-flow table is bounded (MaxFlows): when processors'
//     local clocks run far ahead of the engine between synchronization
//     points, the earliest-ending flows beyond the bound are retired
//     early.  The bound is generous (4P+64) and deterministic, so runs
//     remain bit-reproducible.
//
// Everything in the package is integer arithmetic over sim.Time and a
// pure function of the Transfer call sequence: identical runs produce
// identical schedules, counters, and profiles.
package flow

import (
	"fmt"

	"spasm/internal/network"
	"spasm/internal/sim"
)

// Xmit describes one flow's schedule on the shared-capacity network.
type Xmit struct {
	Start sim.Time // admission time (the requested departure; no port gating)
	End   sim.Time // when the last byte arrived
	// Latency is the contention-free component: Startup + bytes*ByteTime.
	Latency sim.Time
	// Wait is the sharing-induced stretch (End - Start - Latency); it is
	// charged to the contention overhead.
	Wait sim.Time
	// Share is the number of flows (including this one) sharing the
	// bottleneck resource at admission; 1 means the flow was uncontended.
	Share int
	// Bottleneck is the id, in the net's resource space (see LinkSpace),
	// of the most-loaded resource on the flow's route at admission.
	Bottleneck int
}

// Occupancy returns the fraction of the bottleneck's nominal bandwidth
// claimed by competitors at admission, as an integer percentage in
// [0, 100): 0 for an uncontended flow, (k-1)*100/k for k-way sharing.
// It is the quantity adaptive-fidelity escalation thresholds on.
func (x Xmit) Occupancy() int {
	if x.Share <= 1 {
		return 0
	}
	return (x.Share - 1) * 100 / x.Share
}

// flowRec is one active flow: its occupancy window and the resources it
// crosses.  The links slice is owned by the record and recycled.
type flowRec struct {
	start, end sim.Time
	links      []int32
}

// Net is the flow-abstracted network over a topology.  Create with New;
// drive with Transfer; reuse across runs with Reset.
type Net struct {
	topo network.Topology

	// ByteTime is the per-byte transmission time of a nominal-capacity
	// resource (defaults to sim.SerialByte, i.e. 20 MB/s).
	ByteTime sim.Time
	// Startup is the per-flow fixed setup latency, independent of
	// sharing (default 0, matching the paper's negligible switch delay).
	Startup sim.Time
	// MaxFlows bounds the active-flow table (default 4P+64); see the
	// package comment for the retirement rule.
	MaxFlows int

	p      int
	nReal  int // directed links in the topology's id space
	nSpace int // nReal + 2P endpoint ports

	floor  sim.Time  // departures at or before this are settled (Settle)
	minEnd sim.Time  // earliest end among table entries (maxTime when empty)
	live   int       // table length after the last sweep (amortization base)
	flows  []flowRec // active-flow table, compact

	// Competitor index: per-resource singly linked lists threaded
	// through one entry arena.  resHead[id] is the first arena entry for
	// resource id (-1: none); each entry names a flow index and the next
	// entry, packed into eight bytes — the walk reads the flow's
	// committed end (immutable after admission) from the flow table,
	// which admissions keep hot anyway.  Entries are
	// pushed on commit (most-recent first) and the whole arena is
	// rebuilt whenever prune compacts the table; resTouched records
	// which head entries are non-empty so rebuilds and Reset clear
	// O(active footprint), not O(nSpace) — on the fully connected
	// topology nSpace is O(p²), and a dense [][]int32 index cost 24
	// bytes of header per resource besides.  Entries for flows that have
	// already ended linger until the next sweep — every reader filters
	// on end > t0, so they are invisible — but entries settled below the
	// floor are unlinked in place as walks encounter them, so long-dead
	// chains are not re-traversed between sweeps.  The index turns the
	// per-Transfer competitor search from O(table × route) into a walk
	// of the route's own lists.  Walk order does not affect results:
	// competitor sets are deduplicated, their count updates commute, and
	// allocate applies all equal-time boundaries together.
	resHead    []int32
	pool       []poolEnt
	resTouched []int32

	seen  []int64 // per-flow-index visit stamp for the epoch dedup below
	epoch int64   // bumped per Transfer; never reset (only equality matters)

	// Scratch state, sized to nSpace, cleared after every Transfer.
	onRoute []bool
	cnt     []int32
	ids     []int32    // the new flow's resource ids
	bounds  []sim.Time // prune's end-time selection scratch
	comp    []int32    // indices into flows of the route-crossing competitors

	// allocate's event-sweep arena: one reusable slice of boundary
	// records, sorted by time per admission.  A single struct array
	// keeps each boundary's fields on one cache line and sorts with an
	// inlined comparator — no sort.Interface indirection, no multi-array
	// swap.
	evs []segEvent

	// Messages and Bytes count all traffic carried.  Recomputes counts
	// allocation recomputations — one per contended admission (however
	// many committed-competitor segments its schedule walks internally),
	// none for the uncontended fast path — the tier's model-event
	// metric.  This is the flow analogue of the detailed fabric's
	// per-hop reservation count: one unit per model decision, with the
	// decision's internal bookkeeping uncounted on both sides.
	Messages   uint64
	Bytes      uint64
	Recomputes uint64

	// Observer, when non-nil, is invoked from Transfer for every flow
	// the network carries, with the requested departure time and the
	// resulting schedule.
	Observer func(now sim.Time, x Xmit, src, dst, bytes int)
}

// New returns a flow network over the given topology with the paper's
// link parameters.
func New(t network.Topology) *Net {
	p := t.P()
	nSpace := t.NumLinks() + 2*p
	n := &Net{
		topo:     t,
		ByteTime: sim.SerialByte,
		MaxFlows: 4*p + 64,
		p:        p,
		nReal:    t.NumLinks(),
		nSpace:   nSpace,
		minEnd:   maxTime,
		resHead:  make([]int32, nSpace),
		onRoute:  make([]bool, nSpace),
		cnt:      make([]int32, nSpace),
	}
	for i := range n.resHead {
		n.resHead[i] = -1
	}
	return n
}

// segEvent is one boundary of allocate's event sweep: at time t,
// competitor fi arrives (add) or departs on the new flow's route.
type segEvent struct {
	t   sim.Time
	fi  int32
	add bool
}

// poolEnt is one competitor-index arena entry: the named flow and the
// next entry on the same resource's list, packed into one 8-byte load.
// The flow's end time is read from the flow table (hot: every admission
// touches it) rather than copied here — at saturation the arena holds
// table x route entries, so every byte of entry width is megabytes of
// per-run allocation.
type poolEnt struct {
	flow int32
	next int32
}

// pushRes threads flow fi onto resource id's competitor list.
func (n *Net) pushRes(id, fi int32) {
	if n.resHead[id] < 0 {
		n.resTouched = append(n.resTouched, id)
	}
	n.pool = append(n.pool, poolEnt{flow: fi, next: n.resHead[id]})
	n.resHead[id] = int32(len(n.pool) - 1)
}

// clearRes empties the competitor index in O(touched resources).
func (n *Net) clearRes() {
	for _, id := range n.resTouched {
		n.resHead[id] = -1
	}
	n.resTouched = n.resTouched[:0]
	n.pool = n.pool[:0]
}

// P returns the number of nodes.
func (n *Net) P() int { return n.p }

// Topology returns the underlying topology.
func (n *Net) Topology() network.Topology { return n.topo }

// LinkSpace returns the size of the resource id space: the topology's
// directed links first, then the P injection ports, then the P ejection
// ports.  Telemetry (per-bottleneck samples) indexes into this space.
func (n *Net) LinkSpace() int { return n.nSpace }

// InjID and EjID return the resource ids of a node's endpoint ports.
func (n *Net) InjID(node int) int { return n.nReal + node }
func (n *Net) EjID(node int) int  { return n.nReal + n.p + node }

// Settle tells the network that no future Transfer will request a
// departure earlier than upTo (callers pass the engine's global clock —
// a lower bound on every processor's local clock).  Flows that ended at
// or before the floor can never compete again and are pruned.
func (n *Net) Settle(upTo sim.Time) {
	if upTo > n.floor {
		n.floor = upTo
	}
}

// Reset returns the net to its post-New state in place: the active-flow
// table emptied (record slices are kept for reuse), the settle floor
// rewound, traffic and recomputation counters zeroed, and no Observer.
// ByteTime, Startup and MaxFlows are configuration of the pooled
// context and are left alone.
func (n *Net) Reset() {
	for i := range n.flows {
		n.flows[i].start = 0
		n.flows[i].end = 0
		n.flows[i].links = n.flows[i].links[:0]
	}
	n.flows = n.flows[:0]
	n.clearRes()
	n.floor = 0
	n.minEnd = maxTime
	n.live = 0
	n.Messages = 0
	n.Bytes = 0
	n.Recomputes = 0
	n.Observer = nil
}

// maxTime is the empty-table sentinel for minEnd.
const maxTime = sim.Time(1)<<62 - 1

// prune drops settled flows, and — if the table is still over MaxFlows —
// retires the earliest-ending flows beyond the bound.  Compaction is
// order-preserving so the table contents stay a deterministic function
// of the call sequence.
//
// The O(table) sweep is amortized: it runs only when it would remove
// something (the floor passed the earliest entry's end) AND the table
// has grown well past the previous sweep's live count — or,
// unconditionally, when the table hits its MaxFlows bound.  Settled
// flows lingering between sweeps are invisible (every competitor check
// filters on end > t0 ≥ floor), and compaction always uses the
// *current* floor, so the live set — and hence which flows a full
// table evicts — is independent of when sweeps ran: deferral never
// changes a schedule.
func (n *Net) prune() {
	if len(n.flows) < n.MaxFlows &&
		(n.minEnd > n.floor || len(n.flows) < 2*n.live+16) {
		return
	}
	keep := n.flows[:0]
	for i := range n.flows {
		if n.flows[i].end <= n.floor {
			continue
		}
		if len(keep) < len(n.flows) {
			// Swap records (not copy) so evicted slots keep their link
			// slices for reuse.
			j := len(keep)
			n.flows[i], n.flows[j] = n.flows[j], n.flows[i]
		}
		keep = n.flows[:len(keep)+1]
	}
	tail := n.flows[len(keep):]
	for i := range tail {
		tail[i].links = tail[i].links[:0]
	}
	n.flows = keep
	if len(n.flows) >= n.MaxFlows {
		// Batch retirement: evict the earliest-ending eighth of the
		// table (at least one) in a single order-preserving pass, so a
		// saturated table pays one O(table) sweep per batch instead of
		// per admission.  Ties at the cutoff end break in table order —
		// deterministic, like everything else here.
		evict := n.MaxFlows/8 + 1
		n.bounds = n.bounds[:0]
		for i := range n.flows {
			n.bounds = append(n.bounds, n.flows[i].end)
		}
		// Only the cutoff value (and the tie count below it) matter, so a
		// partial selection replaces the former full sort: the cutoff and
		// tie count are order statistics, identical whichever algorithm
		// finds them, so eviction — and every schedule after it — is
		// unchanged.
		selectKth(n.bounds, evict-1)
		cut := n.bounds[evict-1]
		ties := evict
		for _, e := range n.bounds[:evict] {
			if e < cut {
				ties--
			}
		}
		n.bounds = n.bounds[:0]
		keep = n.flows[:0]
		for i := range n.flows {
			e := n.flows[i].end
			if e < cut || (e == cut && ties > 0) {
				if e == cut {
					ties--
				}
				continue
			}
			if len(keep) < len(n.flows) {
				j := len(keep)
				n.flows[i], n.flows[j] = n.flows[j], n.flows[i]
			}
			keep = n.flows[:len(keep)+1]
		}
		tail = n.flows[len(keep):]
		for i := range tail {
			tail[i].links = tail[i].links[:0]
		}
		n.flows = keep
	}
	n.minEnd = maxTime
	for i := range n.flows {
		if n.flows[i].end < n.minEnd {
			n.minEnd = n.flows[i].end
		}
	}
	n.live = len(n.flows)

	// Compaction moved records, so rebuild the competitor index.
	n.clearRes()
	for j := range n.flows {
		for _, id := range n.flows[j].links {
			n.pushRes(id, int32(j))
		}
	}
}

// Transfer carries one message of the given size from src to dst,
// departing no earlier than now, and returns its schedule.  It does not
// block any process; callers advance their process (usually on its
// local clock alone) to End.
func (n *Net) Transfer(now sim.Time, src, dst, bytes int) Xmit {
	if src == dst {
		panic(fmt.Sprintf("flow: transfer to self at node %d", src))
	}
	if bytes <= 0 {
		panic(fmt.Sprintf("flow: transfer of %d bytes", bytes))
	}
	n.prune()

	// Mark the new flow's resources: inj port, route links, ej port.
	n.ids = n.ids[:0]
	n.ids = append(n.ids, int32(n.InjID(src)))
	for _, l := range n.topo.Route(src, dst) {
		n.ids = append(n.ids, int32(l))
	}
	n.ids = append(n.ids, int32(n.EjID(dst)))
	for _, id := range n.ids {
		n.onRoute[id] = true
	}

	need := sim.Time(bytes) * n.ByteTime
	t0 := now + n.Startup

	// Collect the route-crossing competitors whose committed windows end
	// after admission.  A crosser only *contends* if its window opens
	// before the new flow's unstretched finish, t0+need: if every crosser
	// starts at or after that, the admission segment runs at full rate
	// and the flow is done before any of them arrive, so the uncontended
	// fast path is exact.  (Crossers that open later still feed the
	// allocation walk, since an admission stretched by an earlier
	// competitor can run into them.)
	n.comp = n.comp[:0]
	contended := false
	if len(n.seen) <= len(n.flows) {
		n.seen = append(n.seen, make([]int64, len(n.flows)+1-len(n.seen))...)
	}
	n.epoch++
	floor := n.floor
	for _, rid := range n.ids {
		prev := int32(-1)
		for e := n.resHead[rid]; e >= 0; {
			ent := &n.pool[e]
			nxt := ent.next
			fi := ent.flow
			fend := n.flows[fi].end
			if fend <= floor {
				// Settled for good (no future departure can precede the
				// floor): unlink so no later walk re-traverses it.  The
				// arena slot itself is reclaimed at the next rebuild.
				if prev < 0 {
					n.resHead[rid] = nxt
				} else {
					n.pool[prev].next = nxt
				}
				e = nxt
				continue
			}
			if fend > t0 {
				if n.seen[fi] != n.epoch {
					n.seen[fi] = n.epoch
					n.comp = append(n.comp, fi)
				}
			}
			prev = e
			e = nxt
		}
	}
	for _, ci := range n.comp {
		if n.flows[ci].start < t0+need {
			contended = true
			break
		}
	}

	var end sim.Time
	share, bottleneck := 1, int(n.ids[0])
	if !contended {
		// Fast path: sole user of every route resource until done.
		end = t0 + need
	} else {
		end, share, bottleneck = n.allocate(t0, need)
	}

	// Commit the new flow, recycling a retired record's slice if one is
	// available past the live prefix.
	var rec flowRec
	if cap(n.flows) > len(n.flows) {
		rec = n.flows[:len(n.flows)+1][len(n.flows)]
		rec.links = rec.links[:0]
	}
	rec.start, rec.end = now, end
	rec.links = append(rec.links, n.ids...)
	n.flows = append(n.flows[:len(n.flows)], rec)
	recIdx := int32(len(n.flows) - 1)
	for _, id := range n.ids {
		n.pushRes(id, recIdx)
	}
	if end < n.minEnd {
		n.minEnd = end
	}

	for _, id := range n.ids {
		n.onRoute[id] = false
	}

	n.Messages++
	n.Bytes += uint64(bytes)
	x := Xmit{
		Start:      now,
		End:        end,
		Latency:    n.Startup + need,
		Wait:       end - t0 - need,
		Share:      share,
		Bottleneck: bottleneck,
	}
	if n.Observer != nil {
		n.Observer(now, x, src, dst, bytes)
	}
	return x
}

// allocate walks the contended admission: within each segment between
// committed competitor arrivals/departures the new flow receives an
// equal share of its bottleneck resource, 1/k of nominal capacity with
// k-1 competitors there, so covering need units of contention-free
// transmission consumes need*k units of wall time.  The whole walk is
// one allocation recomputation — one model event — regardless of how
// many segments it spans.  It returns the finish time plus the share
// count and bottleneck resource of the admission segment.
//
// The walk is an incremental event sweep: per-route-resource competitor
// counts are seeded with the flows active at admission, then each
// boundary applies that competitor's arrival (+1 on its route-shared
// resources) or departure (-1), and only the route itself is rescanned
// for the new maximum.  Total cost is O(competitors·route + E log E +
// segments·route) instead of recounting every competitor per segment.
// The bottleneck on a tie is the first resource in route order with the
// maximal count.
func (n *Net) allocate(t0, need sim.Time) (end sim.Time, share, bottleneck int) {
	n.Recomputes++
	n.evs = n.evs[:0]
	for _, ci := range n.comp {
		f := &n.flows[ci]
		if f.start <= t0 {
			// Active for the admission segment.
			for _, id := range f.links {
				if n.onRoute[id] {
					n.cnt[id]++
				}
			}
		} else {
			n.evs = append(n.evs, segEvent{t: f.start, fi: ci, add: true})
		}
		// comp is prefiltered on end > t0, so every departure is a
		// future boundary.
		n.evs = append(n.evs, segEvent{t: f.end, fi: ci})
	}
	// The boundaries form a min-heap on t rather than a fully sorted run:
	// the sweep usually terminates within the first few segments (small
	// messages finish long before most committed departures), so heapify
	// at O(E) plus a log-cost pop per boundary actually crossed beats
	// paying E log E to sort boundaries the walk never reaches.  Equal
	// times may pop in any order: all events at one boundary are applied
	// before the next segment's counts are read, and adds/removes commute.
	evs := n.evs
	for i := len(evs)/2 - 1; i >= 0; i-- {
		siftDown(evs, i)
	}

	t := t0
	remaining := need
	for seg := 0; ; seg++ {
		// k = 1 (the new flow) + the heaviest per-resource competitor
		// count over the route during [t, next boundary).
		k := sim.Time(1)
		bn := int(n.ids[0])
		for _, id := range n.ids {
			if c := sim.Time(n.cnt[id]) + 1; c > k {
				k = c
				bn = int(id)
			}
		}
		if seg == 0 {
			share, bottleneck = int(k), bn
		}
		if len(evs) == 0 {
			// Past the last committed boundary nothing changes again.
			end = t + remaining*k
			break
		}
		next := evs[0].t
		if remaining*k <= next-t {
			end = t + remaining*k
			break
		}
		// Integer floor: under-credit the partial progress; the loss is
		// deterministic and at most k-1 byte-times per segment.
		remaining -= (next - t) / k
		t = next
		for len(evs) > 0 && evs[0].t == next {
			f := &n.flows[evs[0].fi]
			if evs[0].add {
				for _, id := range f.links {
					if n.onRoute[id] {
						n.cnt[id]++
					}
				}
			} else {
				for _, id := range f.links {
					if n.onRoute[id] {
						n.cnt[id]--
					}
				}
			}
			last := len(evs) - 1
			evs[0] = evs[last]
			evs = evs[:last]
			siftDown(evs, 0)
		}
	}
	for _, id := range n.ids {
		n.cnt[id] = 0
	}
	return end, share, bottleneck
}

// siftDown restores the min-heap-on-t property of evs for the subtree
// rooted at i.  Ties are not broken: equal-time boundaries commute (see
// allocate), so the heap needs no secondary key.
func siftDown(evs []segEvent, i int) {
	for {
		c := 2*i + 1
		if c >= len(evs) {
			return
		}
		if r := c + 1; r < len(evs) && evs[r].t < evs[c].t {
			c = r
		}
		if evs[i].t <= evs[c].t {
			return
		}
		evs[i], evs[c] = evs[c], evs[i]
		i = c
	}
}

// selectKth partially orders s so s[k] is the k-th smallest value
// (0-based) with every earlier element at most s[k] and every later one
// at least s[k]: a deterministic in-place quickselect with
// median-of-three pivoting.  prune uses it to find the eviction cutoff
// in O(n) expected time instead of sorting the whole scratch.
func selectKth(s []sim.Time, k int) {
	lo, hi := 0, len(s)-1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < s[lo] {
			s[mid], s[lo] = s[lo], s[mid]
		}
		if s[hi] < s[lo] {
			s[hi], s[lo] = s[lo], s[hi]
		}
		if s[hi] < s[mid] {
			s[hi], s[mid] = s[mid], s[hi]
		}
		p := s[mid]
		i, j := lo, hi
		for i <= j {
			for s[i] < p {
				i++
			}
			for s[j] > p {
				j--
			}
			if i <= j {
				s[i], s[j] = s[j], s[i]
				i++
				j--
			}
		}
		switch {
		case k <= j:
			hi = j
		case k >= i:
			lo = i
		default:
			return
		}
	}
}
