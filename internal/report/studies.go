package report

import (
	"fmt"
	"strings"

	"spasm/internal/app"
	"spasm/internal/exp"
	"spasm/internal/stats"
)

// Markdown renders the table as GitHub-flavoured markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat(" --- |", len(t.Headers)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}

// CostTable renders a simulation-cost comparison.
func CostTable(rows []exp.CostRow) *Table {
	t := &Table{
		Title:   "Simulation cost by machine characterization",
		Headers: []string{"machine", "events", "wall"},
	}
	for _, r := range rows {
		name, _ := machineLabel(r.Machine)
		t.Add(name, r.Events, r.Wall.String())
	}
	return t
}

// AblationTable renders the gap-discipline ablation.
func AblationTable(rows []exp.AblationRow) *Table {
	t := &Table{
		Title:   "g-discipline ablation — FFT on cube, contention (us)",
		Headers: []string{"procs", "target", "combined", "per-class"},
	}
	for _, r := range rows {
		t.Add(r.P, r.Target, r.CombinedGap, r.PerClassGap)
	}
	return t
}

// GapParamTable renders the g-parameter table.
func GapParamTable(rows []exp.GapRow) *Table {
	t := &Table{
		Title:   "g parameters from per-processor bisection bandwidth (us)",
		Headers: []string{"topology", "procs", "g_us"},
	}
	for _, r := range rows {
		t.Add(r.Topology, r.P, fmt.Sprintf("%.3f", r.G.Micros()))
	}
	return t
}

// SpeedupTable renders a scalability curve.
func SpeedupTable(app string, rows []exp.SpeedupRow) *Table {
	t := &Table{
		Title:   fmt.Sprintf("Scalability of %s (ideal-machine baseline)", app),
		Headers: []string{"procs", "exec_us", "ideal_us", "speedup", "algo_speedup", "efficiency"},
	}
	for _, r := range rows {
		t.Add(r.P, r.Exec, r.IdealExec,
			fmt.Sprintf("%.2fx", r.Speedup),
			fmt.Sprintf("%.2fx", r.AlgorithmicSpeedup),
			fmt.Sprintf("%.0f%%", 100*r.Efficiency))
	}
	return t
}

// PhaseTable renders a run's per-phase overhead separation — SPASM's
// answer to "which part of the program causes the contention".
func PhaseTable(pp *app.PhaseProfile) *Table {
	t := &Table{
		Title: "Per-phase overhead separation (sums across processors, us)",
		Headers: []string{"phase", "visits", "wall_us", "compute", "memory",
			"latency", "contention", "sync"},
	}
	for _, ps := range pp.Phases() {
		t.Add(ps.Name, ps.Visits,
			ps.Wall.Micros(),
			ps.Time[stats.Compute].Micros(),
			ps.Time[stats.Memory].Micros(),
			ps.Time[stats.Latency].Micros(),
			ps.Time[stats.Contention].Micros(),
			ps.Time[stats.Sync].Micros())
	}
	return t
}

// ProtocolTable renders the coherence-protocol comparison.
func ProtocolTable(rows []exp.ProtocolRow) *Table {
	t := &Table{
		Title:   "Coherence-protocol sensitivity (target execution time, us)",
		Headers: []string{"app", "berkeley", "msi", "update", "clogp", "msi/berkeley"},
	}
	for _, r := range rows {
		ratio := 0.0
		if r.Berkeley > 0 {
			ratio = r.MSI / r.Berkeley
		}
		t.Add(r.App, r.Berkeley, r.MSI, r.Update, r.CLogP, fmt.Sprintf("%.2fx", ratio))
	}
	return t
}
