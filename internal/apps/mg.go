package apps

import (
	"fmt"
	"math"

	"spasm/internal/app"
	"spasm/internal/mem"
)

// MG is a geometric multigrid solver for the 1-D Poisson problem
// -u” = f, in the style of the NAS MG kernel: V-cycles of weighted
// Jacobi smoothing with restriction and prolongation across a hierarchy
// of grids.  It is an *extension* workload (not part of the paper's
// suite; see NewExtended): its communication is hierarchical —
// nearest-neighbour halo exchange at every level, with participation
// shrinking toward the coarse grids until the coarsest solve is serial —
// a locality structure none of the paper's five applications has.
type MG struct {
	N      int // fine-grid interior points (2^k - 1, so grids nest)
	Cycles int // V-cycles
	Pre    int // pre-smoothing sweeps
	Post   int // post-smoothing sweeps
	Seed   int64

	levels int
	h2     []float64 // h^2 per level

	// Shared arrays per level.
	ua, fa, ra []*mem.Array

	// Host values per level.
	u, f, r [][]float64

	bars []*app.Barrier

	residual0 float64
	residualN float64
}

// NewMG returns an MG instance at the given scale.
func NewMG(scale Scale, seed int64) app.Program {
	mg := &MG{Cycles: 4, Pre: 2, Post: 2, Seed: seed}
	// Interior point counts are 2^k - 1 so the Dirichlet grids nest
	// exactly under standard coarsening.
	switch scale {
	case Tiny:
		mg.N = 255
	case Small:
		mg.N = 2047
	default:
		mg.N = 8191
	}
	return mg
}

// Name implements app.Program.
func (m *MG) Name() string { return "mg" }

// Setup builds the grid hierarchy (down to 8 points), allocates the
// per-level shared arrays blocked across processors, and generates a
// smooth random right-hand side.
func (m *MG) Setup(c *app.Ctx) {
	if n := m.N + 1; m.N < 15 || n&(n-1) != 0 {
		panic(fmt.Sprintf("mg: N=%d must be 2^k-1 with k >= 4 so the grids nest", m.N))
	}
	m.levels = 1
	for n := m.N; n > 7; n = (n - 1) / 2 {
		m.levels++
	}
	rng := newRng(m.Seed)
	defer putRng(rng)
	n := m.N
	h := 1.0 / float64(m.N+1)
	for l := 0; l < m.levels; l++ {
		m.ua = append(m.ua, c.Space.Alloc(fmt.Sprintf("mg.u%d", l), n, 8, mem.Blocked))
		m.fa = append(m.fa, c.Space.Alloc(fmt.Sprintf("mg.f%d", l), n, 8, mem.Blocked))
		m.ra = append(m.ra, c.Space.Alloc(fmt.Sprintf("mg.r%d", l), n, 8, mem.Blocked))
		m.u = append(m.u, make([]float64, n))
		m.f = append(m.f, make([]float64, n))
		m.r = append(m.r, make([]float64, n))
		m.h2 = append(m.h2, h*h)
		h *= 2 // the coarse spacing is exactly twice the fine spacing
		n = (n - 1) / 2
	}
	for i := range m.f[0] {
		x := float64(i+1) / float64(m.N+1)
		m.f[0][i] = math.Sin(3*math.Pi*x) + rng.Float64()*0.1
	}
	// Enough barriers for every stage of every cycle, reused round-robin.
	nb := 4 * m.levels
	for i := 0; i < nb; i++ {
		m.bars = append(m.bars, c.NewBarrier(fmt.Sprintf("mg.bar%d", i), c.P, i%c.P))
	}
	m.residual0 = m.hostResidualNorm()
}

// hostResidualNorm computes ||f - A u|| on the fine grid (host-side).
func (m *MG) hostResidualNorm() float64 {
	n := m.N
	u, f := m.u[0], m.f[0]
	h2 := m.h2[0]
	var sum float64
	for i := 0; i < n; i++ {
		left, right := 0.0, 0.0
		if i > 0 {
			left = u[i-1]
		}
		if i < n-1 {
			right = u[i+1]
		}
		res := f[i] - (2*u[i]-left-right)/h2
		sum += res * res
	}
	return math.Sqrt(sum)
}

// Body implements app.Program.
func (m *MG) Body(p *app.Proc) {
	for cyc := 0; cyc < m.Cycles; cyc++ {
		m.vcycle(p, 0)
	}
	if p.ID == 0 {
		m.residualN = m.hostResidualNorm()
	}
}

// vcycle runs one V-cycle at the given level.
func (m *MG) vcycle(p *app.Proc, l int) {
	n := len(m.u[l])
	if l == m.levels-1 {
		// Coarsest level: processor 0 relaxes to convergence while
		// the others wait — the serial bottom of the V.
		p.Phase("mg-coarse")
		if p.ID == 0 {
			for it := 0; it < 50; it++ {
				m.smoothRange(p, l, 0, n)
			}
		}
		m.barrier(p, l, 0)
		return
	}

	p.Phase("mg-smooth")
	for s := 0; s < m.Pre; s++ {
		m.smoothSlab(p, l)
		m.barrier(p, l, 1)
	}

	// Residual, then restriction to the coarse grid.
	p.Phase("mg-restrict")
	m.residualSlab(p, l)
	m.barrier(p, l, 2)
	m.restrictSlab(p, l)
	m.barrier(p, l, 3)

	m.vcycle(p, l+1)

	// Prolongate the coarse correction and post-smooth.
	p.Phase("mg-prolongate")
	m.prolongateSlab(p, l)
	m.barrier(p, l, 0)
	p.Phase("mg-smooth")
	for s := 0; s < m.Post; s++ {
		m.smoothSlab(p, l)
		m.barrier(p, l, 1)
	}
}

// barrier synchronizes via the level/stage-specific barrier so every
// processor always meets at the same object.
func (m *MG) barrier(p *app.Proc, level, stage int) {
	m.bars[(4*level+stage)%len(m.bars)].Arrive(p)
}

// slab returns this processor's range at a level.
func (m *MG) slab(p *app.Proc, l int) (int, int) {
	return share(len(m.u[l]), p.Ctx.P, p.ID)
}

// smoothSlab applies one weighted-Jacobi sweep over the processor's slab
// (halo reads at the edges are the level's communication).
func (m *MG) smoothSlab(p *app.Proc, l int) {
	lo, hi := m.slab(p, l)
	m.smoothRange(p, l, lo, hi)
}

func (m *MG) smoothRange(p *app.Proc, l, lo, hi int) {
	if lo >= hi {
		return
	}
	n := len(m.u[l])
	u, f := m.u[l], m.f[l]
	h2 := m.h2[l]
	const omega = 2.0 / 3.0

	// Halo reads.
	if lo > 0 {
		p.ReadElem(m.ua[l], lo-1)
	}
	if hi < n {
		p.ReadElem(m.ua[l], hi)
	}
	p.ReadRange(m.ua[l], lo, hi)
	p.ReadRange(m.fa[l], lo, hi)
	// Jacobi needs the old values; copy then update.
	old := append([]float64(nil), u...)
	for i := lo; i < hi; i++ {
		left, right := 0.0, 0.0
		if i > 0 {
			left = old[i-1]
		}
		if i < n-1 {
			right = old[i+1]
		}
		jac := (left + right + h2*f[i]) / 2
		u[i] = (1-omega)*old[i] + omega*jac
	}
	p.Compute(int64(hi-lo) * 5 * FlopCycles)
	p.WriteRange(m.ua[l], lo, hi)
}

// residualSlab computes r = f - A u over the slab.
func (m *MG) residualSlab(p *app.Proc, l int) {
	lo, hi := m.slab(p, l)
	if lo >= hi {
		return
	}
	n := len(m.u[l])
	u, f, r := m.u[l], m.f[l], m.r[l]
	h2 := m.h2[l]
	if lo > 0 {
		p.ReadElem(m.ua[l], lo-1)
	}
	if hi < n {
		p.ReadElem(m.ua[l], hi)
	}
	p.ReadRange(m.ua[l], lo, hi)
	p.ReadRange(m.fa[l], lo, hi)
	for i := lo; i < hi; i++ {
		left, right := 0.0, 0.0
		if i > 0 {
			left = u[i-1]
		}
		if i < n-1 {
			right = u[i+1]
		}
		r[i] = f[i] - (2*u[i]-left-right)/h2
	}
	p.Compute(int64(hi-lo) * 5 * FlopCycles)
	p.WriteRange(m.ra[l], lo, hi)
}

// restrictSlab builds the coarse right-hand side by full weighting of
// the fine residual, and zeroes the coarse solution guess.  The coarse
// slab owner reads fine-grid points that may live on another processor —
// the hierarchy's cross-level communication.
func (m *MG) restrictSlab(p *app.Proc, l int) {
	lo, hi := m.slab(p, l+1)
	fineN := len(m.u[l])
	rf := m.r[l]
	fc, uc := m.f[l+1], m.u[l+1]
	for i := lo; i < hi; i++ {
		fi := 2*i + 1
		p.ReadElem(m.ra[l], fi)
		sum := 2 * rf[fi]
		if fi > 0 {
			p.ReadElem(m.ra[l], fi-1)
			sum += rf[fi-1]
		}
		if fi < fineN-1 {
			p.ReadElem(m.ra[l], fi+1)
			sum += rf[fi+1]
		}
		fc[i] = sum / 4
		uc[i] = 0
		p.WriteElem(m.fa[l+1], i)
		p.WriteElem(m.ua[l+1], i)
	}
	p.Compute(int64(hi-lo) * 4 * FlopCycles)
}

// prolongateSlab interpolates the coarse correction back onto the
// processor's fine slab and adds it to u.
func (m *MG) prolongateSlab(p *app.Proc, l int) {
	lo, hi := m.slab(p, l)
	coarseN := len(m.u[l+1])
	uf, uc := m.u[l], m.u[l+1]
	for i := lo; i < hi; i++ {
		var corr float64
		if i%2 == 1 {
			ci := (i - 1) / 2
			p.ReadElem(m.ua[l+1], ci)
			corr = uc[ci]
		} else {
			left, right := 0.0, 0.0
			if ci := i/2 - 1; ci >= 0 {
				p.ReadElem(m.ua[l+1], ci)
				left = uc[ci]
			}
			if ci := i / 2; ci < coarseN {
				p.ReadElem(m.ua[l+1], ci)
				right = uc[ci]
			}
			corr = (left + right) / 2
		}
		uf[i] += corr
		p.WriteElem(m.ua[l], i)
	}
	p.Compute(int64(hi-lo) * 3 * FlopCycles)
}

// Check verifies the V-cycles actually converged.
func (m *MG) Check() error {
	if m.residual0 <= 0 {
		return fmt.Errorf("mg: empty initial residual")
	}
	reduction := m.residual0 / m.residualN
	want := math.Pow(3, float64(m.Cycles)) // >= 3x per V-cycle
	if reduction < want {
		return fmt.Errorf("mg: residual reduced only %.1fx over %d cycles (want >= %.0fx)",
			reduction, m.Cycles, want)
	}
	return nil
}
