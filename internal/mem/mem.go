// Package mem models the globally shared, physically distributed address
// space of a CC-NUMA machine: a 64-bit address space carved into
// cache-block-sized units, each with a *home node* that holds its backing
// memory and (on the target machine) its directory entry.
//
// Applications allocate named arrays with a placement policy; the
// resulting Array hands out addresses that the machine models consume.
// No data values are stored here — the simulator is execution-driven at
// the *reference* level, as SPASM was: application data lives in ordinary
// Go memory, while this package supplies the addresses those references
// would touch.
package mem

import (
	"fmt"
	"sort"
)

// Addr is a byte address in the simulated shared address space.
type Addr uint64

// Block identifies a cache-block-sized unit of the address space.
type Block uint64

// DefaultBlockBytes is the cache block size fixed by the paper's
// architectural characterization (32-byte blocks, 4 double words).
const DefaultBlockBytes = 32

// Policy describes how an array's blocks are assigned home nodes.
type Policy int

const (
	// Blocked splits the array into P contiguous chunks; chunk i is
	// homed at (and local to) node i.  This is the natural layout for
	// the data-parallel applications in the study, where each
	// processor's partition fits in its local memory.
	Blocked Policy = iota
	// Interleaved assigns consecutive blocks round-robin across nodes,
	// spreading hot-spot structures.
	Interleaved
	// Fixed homes the whole array at a single node (lock words, shared
	// counters, task-queue heads).
	Fixed
)

func (p Policy) String() string {
	switch p {
	case Blocked:
		return "blocked"
	case Interleaved:
		return "interleaved"
	case Fixed:
		return "fixed"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Space is a shared address space distributed across P home nodes.
type Space struct {
	p          int
	blockBytes int
	blockShift uint
	next       Addr
	regions    []*Array

	// homes memoizes the home node per block (-1: not yet computed).
	// Every block belongs to exactly one home — arrays are block-aligned
	// and Blocked chunks are padded to block boundaries — so the memo is
	// sound, and it takes the binary search over regions off the
	// per-reference hot path of the cache-less machine models.
	homes []int16
}

// NewSpace returns an empty address space distributed over p nodes with
// the given cache-block size (which must be a power of two).
func NewSpace(p, blockBytes int) *Space {
	if p < 1 {
		panic("mem: NewSpace with p < 1")
	}
	if blockBytes <= 0 || blockBytes&(blockBytes-1) != 0 {
		panic(fmt.Sprintf("mem: block size %d not a power of two", blockBytes))
	}
	shift := uint(0)
	for 1<<shift != blockBytes {
		shift++
	}
	return &Space{p: p, blockBytes: blockBytes, blockShift: shift}
}

// Reset returns the space to its post-NewSpace(p, blockBytes) state while
// keeping the backing arrays of the region list and the per-block home
// memo, so a pooled space re-runs an application setup without
// reallocating them.  Retained region slots are cleared (no stale *Array
// stays reachable) and the home memo is re-stamped to -1 over its full
// length: the memo is a pure function of the region list, so a re-stamped
// memo recomputes exactly the values a fresh space would.
func (s *Space) Reset(p, blockBytes int) {
	if p < 1 {
		panic("mem: Reset with p < 1")
	}
	if blockBytes <= 0 || blockBytes&(blockBytes-1) != 0 {
		panic(fmt.Sprintf("mem: block size %d not a power of two", blockBytes))
	}
	shift := uint(0)
	for 1<<shift != blockBytes {
		shift++
	}
	s.p = p
	s.blockBytes = blockBytes
	s.blockShift = shift
	s.next = 0
	for i := range s.regions {
		s.regions[i] = nil
	}
	s.regions = s.regions[:0]
	for i := range s.homes {
		s.homes[i] = -1
	}
}

// P returns the number of home nodes.
func (s *Space) P() int { return s.p }

// BlockBytes returns the cache-block size of the space.
func (s *Space) BlockBytes() int { return s.blockBytes }

// BlockOf returns the block containing addr.
func (s *Space) BlockOf(a Addr) Block { return Block(a >> s.blockShift) }

// BlockBase returns the first address of block b.
func (s *Space) BlockBase(b Block) Addr { return Addr(b) << s.blockShift }

// Size returns the total allocated bytes.
func (s *Space) Size() Addr { return s.next }

// Alloc allocates a named array of n elements of elemSize bytes with the
// given placement policy (Blocked or Interleaved).  The base is
// block-aligned, and for Blocked placement each node's chunk is padded to
// a block boundary so no block ever spans two homes.
func (s *Space) Alloc(name string, n, elemSize int, policy Policy) *Array {
	if policy == Fixed {
		panic("mem: use AllocAt for Fixed placement")
	}
	return s.alloc(name, n, elemSize, policy, 0)
}

// AllocAt allocates a named array homed entirely at the given node.
func (s *Space) AllocAt(name string, n, elemSize, node int) *Array {
	if node < 0 || node >= s.p {
		panic(fmt.Sprintf("mem: AllocAt node %d out of range [0,%d)", node, s.p))
	}
	return s.alloc(name, n, elemSize, Fixed, node)
}

func (s *Space) alloc(name string, n, elemSize int, policy Policy, node int) *Array {
	if n < 0 || elemSize <= 0 {
		panic(fmt.Sprintf("mem: bad Alloc(%q, n=%d, elemSize=%d)", name, n, elemSize))
	}
	a := &Array{
		space:    s,
		Name:     name,
		Base:     s.next,
		N:        n,
		ElemSize: elemSize,
		Policy:   policy,
		Node:     node,
	}
	bytes := Addr(n) * Addr(elemSize)
	if policy == Blocked {
		// Pad each node's chunk to a block multiple so chunk
		// boundaries coincide with block boundaries.
		per := (bytes + Addr(s.p) - 1) / Addr(s.p)
		per = s.roundUp(per)
		a.chunk = per
		bytes = per * Addr(s.p)
	}
	a.Bytes = s.roundUp(bytes)
	s.next += a.Bytes
	s.regions = append(s.regions, a)
	return a
}

func (s *Space) roundUp(b Addr) Addr {
	mask := Addr(s.blockBytes - 1)
	return (b + mask) &^ mask
}

// Home returns the home node of addr.  It panics on an address outside
// any allocated region: referencing unallocated memory is always an
// application bug.  Results are memoized per block, so repeated
// references resolve with a single array load.
func (s *Space) Home(a Addr) int {
	b := int(a >> s.blockShift)
	if b < len(s.homes) {
		if h := s.homes[b]; h >= 0 {
			return int(h)
		}
	} else if a < s.next {
		// The memo table lags allocation; grow it to cover the space.
		grown := make([]int16, int(s.next>>s.blockShift)+1)
		copy(grown, s.homes)
		for i := len(s.homes); i < len(grown); i++ {
			grown[i] = -1
		}
		s.homes = grown
	}
	r := s.Region(a)
	if r == nil {
		panic(fmt.Sprintf("mem: Home of unallocated address %#x", uint64(a)))
	}
	h := r.home(a)
	if b < len(s.homes) && h <= 0x7fff {
		s.homes[b] = int16(h)
	}
	return h
}

// FreezeHomes precomputes the home of every allocated block, filling the
// per-block memo table eagerly.  After it returns, Home performs no
// writes for in-range addresses, making concurrent Home lookups safe —
// the parallel execution mode calls it once before releasing spans, since
// address-to-home resolution happens in span bodies outside any ordered
// section.
func (s *Space) FreezeHomes() {
	if s.next == 0 {
		return
	}
	// One probe grows the memo table to cover the whole space.
	s.Home(s.next - 1)
	for _, r := range s.regions {
		for a := r.Base; a < r.Base+r.Bytes; a += Addr(s.blockBytes) {
			s.Home(a)
		}
	}
}

// Region returns the array containing addr, or nil.
func (s *Space) Region(a Addr) *Array {
	i := sort.Search(len(s.regions), func(i int) bool {
		return s.regions[i].Base+s.regions[i].Bytes > a
	})
	if i < len(s.regions) && a >= s.regions[i].Base {
		return s.regions[i]
	}
	return nil
}

// Regions returns all allocated arrays in allocation (= address) order.
func (s *Space) Regions() []*Array { return s.regions }

// Array is a contiguous allocation in a Space.
type Array struct {
	space    *Space
	Name     string
	Base     Addr
	N        int
	ElemSize int
	Bytes    Addr
	Policy   Policy
	Node     int  // home node for Fixed placement
	chunk    Addr // bytes per node for Blocked placement
}

// At returns the address of element i.
func (a *Array) At(i int) Addr {
	if i < 0 || i >= a.N {
		panic(fmt.Sprintf("mem: %s[%d] out of range [0,%d)", a.Name, i, a.N))
	}
	return a.Base + Addr(i)*Addr(a.ElemSize)
}

// home computes the home node for an address within the array.
func (a *Array) home(addr Addr) int {
	off := addr - a.Base
	switch a.Policy {
	case Blocked:
		n := int(off / a.chunk)
		if n >= a.space.p {
			n = a.space.p - 1
		}
		return n
	case Interleaved:
		return int((off >> a.space.blockShift) % Addr(a.space.p))
	default: // Fixed
		return a.Node
	}
}

// HomeOf returns the home node of element i.
func (a *Array) HomeOf(i int) int { return a.home(a.At(i)) }

// OwnerRange returns the half-open element range [lo, hi) homed at node
// for a Blocked array: the elements that node's processor can touch
// without network traffic.  It panics for other policies.
func (a *Array) OwnerRange(node int) (lo, hi int) {
	if a.Policy != Blocked {
		panic("mem: OwnerRange on non-Blocked array " + a.Name)
	}
	loB := a.Base + Addr(node)*a.chunk
	hiB := loB + a.chunk
	lo = int((loB - a.Base + Addr(a.ElemSize) - 1) / Addr(a.ElemSize))
	hi = int((hiB - a.Base + Addr(a.ElemSize) - 1) / Addr(a.ElemSize))
	if hi > a.N {
		hi = a.N
	}
	if lo > a.N {
		lo = a.N
	}
	return lo, hi
}
