package report

import (
	"strings"
	"testing"
	"time"

	"spasm/internal/exp"
	"spasm/internal/machine"
	"spasm/internal/sim"
)

func TestMarkdownTable(t *testing.T) {
	tb := &Table{Title: "demo", Headers: []string{"a", "b"}}
	tb.Add(1, 2.5)
	out := tb.Markdown()
	for _, want := range []string{"**demo**", "| a | b |", "| --- | --- |", "| 1 | 2.5 |"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestCostTable(t *testing.T) {
	rows := []exp.CostRow{
		{Machine: machine.LogP, Events: 100, Wall: time.Second},
		{Machine: machine.Target, Events: 50, Wall: time.Millisecond},
	}
	out := CostTable(rows).String()
	for _, want := range []string{"LogP", "Target", "100", "1s"} {
		if !strings.Contains(out, want) {
			t.Errorf("cost table missing %q:\n%s", want, out)
		}
	}
}

func TestAblationAndGapTables(t *testing.T) {
	ab := AblationTable([]exp.AblationRow{{P: 8, Target: 1, CombinedGap: 2, PerClassGap: 1.5}}).String()
	if !strings.Contains(ab, "per-class") || !strings.Contains(ab, "8") {
		t.Errorf("ablation table:\n%s", ab)
	}
	gp := GapParamTable([]exp.GapRow{{Topology: "mesh", P: 16, G: sim.Micros(3.2)}}).String()
	if !strings.Contains(gp, "3.200") {
		t.Errorf("gap table:\n%s", gp)
	}
}

func TestSpeedupTable(t *testing.T) {
	rows := []exp.SpeedupRow{{P: 4, Exec: 100, IdealExec: 50, Speedup: 2, AlgorithmicSpeedup: 4, Efficiency: 0.5}}
	out := SpeedupTable("cg", rows).String()
	for _, want := range []string{"cg", "2.00x", "4.00x", "50%"} {
		if !strings.Contains(out, want) {
			t.Errorf("speedup table missing %q:\n%s", want, out)
		}
	}
}

func TestProtocolTable(t *testing.T) {
	rows := []exp.ProtocolRow{{App: "is", Berkeley: 100, MSI: 120, CLogP: 90}}
	out := ProtocolTable(rows).String()
	if !strings.Contains(out, "1.20x") || !strings.Contains(out, "is") {
		t.Errorf("protocol table:\n%s", out)
	}
}
