// Package sim provides a deterministic, process-oriented discrete-event
// simulation engine in the style of the CSIM library used by the original
// SPASM simulator.  Simulated processes are ordinary Go functions running
// in goroutines; exactly one process runs at a time, under the control of
// the engine, so process code may freely manipulate shared simulator
// state without locking.  Event ordering is fully deterministic: events
// with equal timestamps fire in scheduling order.
package sim

import (
	"fmt"
	"math"
)

// Time is a point (or span) of simulated time.
//
// The unit is chosen so that every quantity appearing in the HPCA'95
// paper is an exact integer:
//
//	1 microsecond            = 660 units
//	1 CPU cycle at 33 MHz    =  20 units (30.303 ns)
//	1 byte on a 20 MB/s link =  33 units (50 ns)
//	LogP L = 1.6 us          = 1056 units
//
// Using integers keeps the simulation exactly reproducible and immune to
// floating-point accumulation error.
type Time int64

// Conversion constants for Time.
const (
	// UnitsPerMicro is the number of Time units in one microsecond.
	UnitsPerMicro Time = 660
	// Cycle is one CPU cycle of the baseline 33 MHz SPARC processor
	// fixed by the paper's architectural characterization.
	Cycle Time = 20
	// SerialByte is the transmission time of one byte on the paper's
	// 20 MB/s serial (1-bit wide) unidirectional link.
	SerialByte Time = 33
	// Forever is a sentinel meaning "no deadline"; it is larger than
	// any reachable simulation time.
	Forever Time = math.MaxInt64 / 4
)

// Micros converts a duration in microseconds to Time, rounding to the
// nearest unit.
func Micros(us float64) Time {
	return Time(math.Round(us * float64(UnitsPerMicro)))
}

// Cycles converts a cycle count of the baseline 33 MHz processor to Time.
func Cycles(n int64) Time { return Time(n) * Cycle }

// Micros reports t in microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(UnitsPerMicro) }

// Cycles reports t in whole 33 MHz CPU cycles (truncating).
func (t Time) Cycles() int64 { return int64(t / Cycle) }

// String formats t as microseconds, e.g. "1.600us".
func (t Time) String() string {
	return fmt.Sprintf("%.3fus", t.Micros())
}

func maxTime(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}
