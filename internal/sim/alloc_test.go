package sim

import (
	"fmt"
	"runtime"
	"testing"
)

// TestEventDispatchAllocBudget pins the steady-state allocation cost of
// the kernel: at most one allocation per dispatched event, amortized
// over a long run.  The concrete-typed heap should make the real number
// near zero (occasional slice growth only); the budget of 1 leaves room
// for the runtime without letting interface boxing or per-event
// closures creep back in.
func TestEventDispatchAllocBudget(t *testing.T) {
	const holds = 2000
	run := func() uint64 {
		e := NewEngine()
		for i := 0; i < 4; i++ {
			e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				for j := 0; j < holds; j++ {
					p.Hold(1)
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Events
	}
	run() // warm up the runtime (goroutine stacks, timer state)

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	events := run()
	runtime.ReadMemStats(&after)

	perEvent := float64(after.Mallocs-before.Mallocs) / float64(events)
	if perEvent > 1 {
		t.Errorf("dispatch allocates %.2f objects/event over %d events; budget is 1",
			perEvent, events)
	}
}

// TestQueueRetainsNoProcsAfterRun guards the memory-pin fix: after Run
// drains, neither the heap's backing array nor the same-timestamp FIFO
// may still reference a *Proc.  A retained reference would pin the
// process (and transitively its closure and goroutine allocations) for
// the lifetime of the engine — a real leak for long-lived services that
// keep engines around after inspecting results.
func TestQueueRetainsNoProcsAfterRun(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 64; i++ {
		i := i
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for j := 0; j < 50; j++ {
				p.Hold(Time(1 + (i+j)%7))
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	full := e.heap.s[:cap(e.heap.s)]
	for i := range full {
		if full[i].p != nil {
			t.Errorf("heap backing slot %d still references proc %q after Run",
				i, full[i].p.Name)
		}
	}
	nowFull := e.nowQ[:cap(e.nowQ)]
	for i := range nowFull {
		if nowFull[i].p != nil {
			t.Errorf("nowQ backing slot %d still references proc %q after Run",
				i, nowFull[i].p.Name)
		}
	}
}

// TestHandoffStress exercises the direct process-to-process dispatch
// handoff under churn: many engines, wake storms through queues, and
// same-timestamp scheduling.  Run it under -race to check the run-token
// discipline (engine state is only ever touched by the goroutine that
// holds the token).
func TestHandoffStress(t *testing.T) {
	for round := 0; round < 20; round++ {
		e := NewEngine()
		var q Queue
		const workers = 16
		for i := 0; i < workers; i++ {
			i := i
			e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
				for j := 0; j < 30; j++ {
					switch (i + j) % 3 {
					case 0:
						p.Hold(Time(1 + j%5))
					case 1:
						q.Wait(p)
					default:
						p.Defer(2)
						p.Yield()
						for q.WakeOne() {
						}
					}
				}
				for q.WakeOne() {
				}
			})
		}
		// A closer that periodically drains the queue until every worker
		// has terminated, so no round ends in a (deliberate) deadlock.
		e.Spawn("closer", func(p *Proc) {
			for e.nLive > 1 {
				p.Hold(1000)
				q.WakeAll()
			}
		})
		if err := e.Run(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}
