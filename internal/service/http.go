package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"spasm"
	"spasm/internal/exp"
	"spasm/internal/machine"
	"spasm/internal/report"
	"spasm/internal/stats"
)

// Handler returns the service's HTTP API:
//
//	POST /v1/runs                submit a run (RunRequest); 202 pending, 200 on cache hit
//	                             (?stream=1 upgrades the response to the run's SSE feed)
//	GET  /v1/runs/{id}           poll a run by content address
//	GET  /v1/runs/{id}/stream    follow a run live over Server-Sent Events
//	GET  /v1/runs/{id}/profile   time-resolved telemetry (?format=json|csv|bin)
//	GET  /v1/figures/{n}         regenerate paper figure n (blocks; runs are cached)
//	GET  /v1/sweeps              ad-hoc sweep: ?app=&topo=&metric=&procs=&scale=&seed=
//	GET  /healthz                liveness (503 once draining)
//	GET  /metrics                Prometheus-style counters and latency histograms
//
// Submissions may carry an X-Spasm-Tenant header naming their fair-share
// bucket; absent or unusable names fall to the default tenant.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.instrument("/v1/runs", s.handleSubmit))
	mux.HandleFunc("GET /v1/runs/{id}", s.instrument("/v1/runs/{id}", s.handleGetRun))
	mux.HandleFunc("GET /v1/runs/{id}/stream", s.instrument("/v1/runs/{id}/stream", s.handleStream))
	mux.HandleFunc("GET /v1/runs/{id}/profile", s.instrument("/v1/runs/{id}/profile", s.handleProfile))
	mux.HandleFunc("GET /v1/figures/{n}", s.instrument("/v1/figures/{n}", s.handleFigure))
	mux.HandleFunc("GET /v1/sweeps", s.instrument("/v1/sweeps", s.handleSweep))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// instrument wraps a handler with the per-endpoint latency histogram.
func (s *Server) instrument(path string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		h(w, r)
		s.metrics.observe(path, time.Since(t0))
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(b)
	w.Write([]byte("\n"))
}

type errorDoc struct {
	Error string `json:"error"`
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorDoc{Error: err.Error()})
}

// writeUnavailable maps back-pressure errors to 503 with a Retry-After
// hint: queue-full is transient (retry almost immediately), draining
// means this instance is going away (give the balancer time to notice).
func writeUnavailable(w http.ResponseWriter, err error) {
	retry := "1"
	if errors.Is(err, ErrDraining) {
		retry = "5"
	}
	w.Header().Set("Retry-After", retry)
	writeErr(w, http.StatusServiceUnavailable, err)
}

// submitStatus maps a submission outcome to its HTTP form.
func (s *Server) submitStatus(w http.ResponseWriter, j *Job, hit bool, err error) {
	switch {
	case err == nil:
	case errors.Is(err, ErrDraining), errors.Is(err, ErrQueueFull):
		writeUnavailable(w, err)
		return
	case errors.Is(err, ErrTenantQuota):
		// The tenant (not the service) is saturated: 429, and retry as
		// soon as some of its own work drains.
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests, err)
		return
	default:
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	// j.cached covers both cache flavours: positive hits (hit=true) and
	// remembered failures served from the negative cache (hit=false but
	// the job is already failed) — both are answered outright with 200.
	if hit || j.cached {
		writeJSON(w, http.StatusOK, statusFromEntry(j.entry, true))
		return
	}
	s.mu.Lock()
	st := RunStatus{ID: j.id, State: j.state, Spec: j.req}
	if j.entry != nil {
		st = statusFromEntry(j.entry, false)
	}
	s.mu.Unlock()
	w.Header().Set("Location", "/v1/runs/"+j.id)
	writeJSON(w, http.StatusAccepted, st)
}

// tenantOf extracts the request's fair-share bucket from the
// X-Spasm-Tenant header.  Names are restricted to a filesystem- and
// metrics-label-safe alphabet and a sane length; anything else falls to
// the default tenant rather than erroring (a tenant header is a hint,
// not a credential).
func tenantOf(r *http.Request) string {
	name := r.Header.Get("X-Spasm-Tenant")
	if name == "" || len(name) > 64 {
		return DefaultTenant
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '-' || c == '_' {
			continue
		}
		return DefaultTenant
	}
	return name
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.metrics.bodyTooLarge()
			writeErr(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body over %d bytes", mbe.Limit))
			return
		}
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	var req RunRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	spec, err := req.Spec()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	opt := submitOpts{tenant: tenantOf(r), bytes: int64(len(body))}
	if r.URL.Query().Get("stream") != "" {
		// Streaming submission: the response is the run's SSE feed, and
		// the subscription holds the job alive exactly as long as the
		// client stays connected.
		opt.stream = true
		j, _, release, err := s.submitWaited(spec, opt)
		if err != nil {
			s.submitStatus(w, nil, false, err)
			return
		}
		defer release()
		s.serveStream(w, r, j)
		return
	}
	opt.pin = true
	j, hit, err := s.submit(spec, opt)
	s.submitStatus(w, j, hit, err)
}

func (s *Server) handleGetRun(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := s.Status(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no such run %q", id))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleProfile serves a completed run's time-resolved telemetry.
// The default form is the deterministic JSON document; ?format=csv
// renders one row per epoch and ?format=bin streams the canonical
// compact binary encoding (byte-identical for identical specs).
func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	prof, raw, err := s.Profile(id)
	switch {
	case err == nil:
	case errors.Is(err, ErrUnknownRun):
		writeErr(w, http.StatusNotFound, fmt.Errorf("no such run %q", id))
		return
	case errors.Is(err, ErrRunActive):
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusConflict, err)
		return
	default:
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	switch r.URL.Query().Get("format") {
	case "", "json":
		writeJSON(w, http.StatusOK, report.ProfileJSON(prof))
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
		io.WriteString(w, report.ProfileCSV(prof))
	case "bin":
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(raw)
	default:
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf("unknown format %q (json, csv, bin)", r.URL.Query().Get("format")))
	}
}

// sweepOptions parses the query parameters shared by the figure and
// sweep endpoints into session options backed by the server's pool.
func (s *Server) sweepOptions(r *http.Request) (exp.Options, error) {
	opt := exp.Options{Parallel: s.cfg.Workers}
	q := r.URL.Query()
	var err error
	if v := q.Get("scale"); v != "" {
		if opt.Scale, err = spasm.ParseScale(v); err != nil {
			return opt, err
		}
	} else {
		opt.Scale = spasm.Small
	}
	if v := q.Get("seed"); v != "" {
		if opt.Seed, err = strconv.ParseInt(v, 10, 64); err != nil {
			return opt, fmt.Errorf("bad seed %q", v)
		}
	}
	if v := q.Get("procs"); v != "" {
		if opt.Procs, err = spasm.ParseProcs(v); err != nil {
			return opt, err
		}
	}
	if v := q.Get("machines"); v != "" {
		var kinds []machine.Kind
		for _, name := range splitComma(v) {
			k, err := spasm.ParseKind(name)
			if err != nil {
				return opt, err
			}
			kinds = append(kinds, k)
		}
		opt.Machines = kinds
	}
	return opt, nil
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

// figureResult regenerates a figure through the job queue: every
// (machine, p) point is submitted as a content-addressed run job (so
// points already cached cost nothing and duplicates coalesce), then an
// exp.Session assembles the curves from the pooled results.
func (s *Server) figureResult(r *http.Request, fig exp.Figure, opt exp.Options) (*exp.FigureResult, error) {
	ctx := r.Context()
	tenant := tenantOf(r)
	opt = opt.WithDefaults()
	spec := func(kind machine.Kind, p int) spasm.Spec {
		return spasm.Spec{
			App: fig.App, Scale: opt.Scale, Seed: opt.Seed,
			Machine: kind, Topology: fig.Topology, P: p,
			PortMode: opt.PortMode,
		}
	}
	// Pre-submit every point so the pool works them concurrently.  The
	// submissions are releasable waiters, all released when the figure
	// request finishes: if the client disconnects (or one point errors
	// the request out) before a point runs, the server cancels it
	// instead of simulating for nobody.
	var releases []func()
	defer func() {
		for _, r := range releases {
			r()
		}
	}()
	for _, kind := range opt.Machines {
		for _, p := range opt.Procs {
			_, _, release, err := s.submitWaited(spec(kind, p), submitOpts{tenant: tenant})
			if err != nil {
				return nil, err
			}
			releases = append(releases, release)
		}
	}
	// ...then let the session collect them in figure order.
	opt.Runner = func(appName, topo string, kind machine.Kind, p int) (*stats.Run, error) {
		return s.runStats(ctx, spasm.Spec{
			App: appName, Scale: opt.Scale, Seed: opt.Seed,
			Machine: kind, Topology: topo, P: p,
			PortMode: opt.PortMode,
		}, tenant)
	}
	return exp.NewSession(opt).Figure(fig)
}

// writeFigure maps figure/sweep errors onto HTTP statuses and writes
// the figure document.
func writeFigure(w http.ResponseWriter, fr *exp.FigureResult, err error) {
	if err != nil {
		var reqErr *RequestError
		switch {
		case errors.As(err, &reqErr):
			writeErr(w, http.StatusBadRequest, err)
		case errors.Is(err, ErrDraining), errors.Is(err, ErrQueueFull):
			writeUnavailable(w, err)
		case errors.Is(err, ErrTenantQuota):
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusTooManyRequests, err)
		default:
			writeErr(w, http.StatusInternalServerError, err)
		}
		return
	}
	writeJSON(w, http.StatusOK, report.FigureJSON(fr))
}

func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	n, err := strconv.Atoi(r.PathValue("n"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad figure number %q", r.PathValue("n")))
		return
	}
	fig, err := exp.ByNumber(n)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	opt, err := s.sweepOptions(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	fr, err := s.figureResult(r, fig, opt)
	writeFigure(w, fr, err)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	app := q.Get("app")
	if app == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("sweep needs ?app="))
		return
	}
	topo := q.Get("topo")
	if topo == "" {
		topo = "mesh"
	}
	metricName := q.Get("metric")
	if metricName == "" {
		metricName = "exec"
	}
	metric, err := spasm.ParseMetric(metricName)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	opt, err := s.sweepOptions(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	fr, err := s.figureResult(r, exp.Figure{Num: 0, App: app, Topology: topo, Metric: metric}, opt)
	writeFigure(w, fr, err)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	h := Health{Status: "ok", Workers: s.cfg.Workers, QueueDepth: s.QueueDepth()}
	status := http.StatusOK
	if draining {
		h.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	io.WriteString(w, s.RenderMetrics())
}
