// Package cache implements the private per-node cache of the paper's
// architectural characterization: 64 KB, 2-way set-associative, 32-byte
// blocks, with the line states of the Berkeley ownership protocol.
//
// The same cache array serves both the target machine (where protocol
// actions cost network messages) and the LogP+cache machine (where the
// state machine is maintained but coherence actions are free), so the two
// machines have *identical* hit/miss behaviour by construction — exactly
// the property the paper's locality abstraction relies on.
package cache

import (
	"fmt"

	"spasm/internal/mem"
)

// State is a Berkeley-protocol cache-line state.
type State uint8

const (
	// Invalid: the line holds no valid copy.
	Invalid State = iota
	// UnOwned (Berkeley "Valid"): a clean shared copy; memory or some
	// owner holds the authoritative value.
	UnOwned
	// OwnedShared (Berkeley "Shared-Dirty"): this cache owns the
	// block — it must supply data and write back on eviction — but
	// other caches may hold UnOwned copies.
	OwnedShared
	// OwnedExclusive (Berkeley "Dirty"): this cache owns the only
	// copy and may write without any coherence action.
	OwnedExclusive
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case UnOwned:
		return "V"
	case OwnedShared:
		return "SD"
	case OwnedExclusive:
		return "D"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Owned reports whether the state carries ownership (the obligation to
// supply data and write back on eviction).
func (s State) Owned() bool { return s == OwnedShared || s == OwnedExclusive }

// Valid reports whether the state holds a readable copy.
func (s State) Valid() bool { return s != Invalid }

// Config describes cache geometry.
type Config struct {
	SizeBytes  int // total capacity
	BlockBytes int // line size
	Assoc      int // set associativity
}

// DefaultConfig is the paper's cache: 64 KB, 2-way, 32-byte blocks.
func DefaultConfig() Config {
	return Config{SizeBytes: 64 * 1024, BlockBytes: 32, Assoc: 2}
}

// Sets returns the number of sets implied by the configuration.
func (c Config) Sets() int { return c.SizeBytes / (c.BlockBytes * c.Assoc) }

func (c Config) validate() {
	if c.SizeBytes <= 0 || c.BlockBytes <= 0 || c.Assoc <= 0 {
		panic(fmt.Sprintf("cache: non-positive geometry %+v", c))
	}
	sets := c.Sets()
	if sets*c.BlockBytes*c.Assoc != c.SizeBytes {
		panic(fmt.Sprintf("cache: size %d not divisible into %d-way sets of %d-byte blocks",
			c.SizeBytes, c.Assoc, c.BlockBytes))
	}
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: %d sets is not a power of two", sets))
	}
}

type line struct {
	block mem.Block
	state State
	used  uint64 // LRU timestamp
}

// Cache is one node's private cache.  Lines are stored as one flat array
// in set-major order: set s occupies lines[s*assoc : (s+1)*assoc].  The
// flat layout drops the per-set slice headers of a [][]line and keeps a
// set's lines contiguous, so a lookup is one bounds-checked subslice of a
// single allocation.
type Cache struct {
	cfg     Config
	lines   []line
	assoc   uint64
	setMask uint64
	clock   uint64

	// Statistics.
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// New returns an empty cache with the given geometry.
func New(cfg Config) *Cache {
	cfg.validate()
	n := cfg.Sets()
	return &Cache{
		cfg:     cfg,
		lines:   make([]line, n*cfg.Assoc),
		assoc:   uint64(cfg.Assoc),
		setMask: uint64(n - 1),
	}
}

// Reset returns the cache to its post-New state in place: every line
// Invalid with a zero tag and LRU stamp, the LRU clock and all statistics
// at zero.  The flat line array — the bulk of a machine's construction
// cost — is kept and cleared rather than reallocated, and a cleared line
// is indistinguishable from a freshly made one, so a reset cache replays
// a reference stream with the exact hit/miss/eviction sequence of a
// fresh cache.
func (c *Cache) Reset() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
	c.clock = 0
	c.Hits = 0
	c.Misses = 0
	c.Evictions = 0
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

func (c *Cache) set(b mem.Block) []line {
	i := (uint64(b) & c.setMask) * c.assoc
	return c.lines[i : i+c.assoc]
}

func (c *Cache) find(b mem.Block) *line {
	set := c.set(b)
	for i := range set {
		if set[i].state != Invalid && set[i].block == b {
			return &set[i]
		}
	}
	return nil
}

// State returns the state of block b (Invalid if not cached).  It does
// not touch LRU state.
func (c *Cache) State(b mem.Block) State {
	if l := c.find(b); l != nil {
		return l.state
	}
	return Invalid
}

// Access looks up block b for a reference, updating LRU order and
// hit/miss statistics.  It returns the current state (Invalid on a miss).
func (c *Cache) Access(b mem.Block) State {
	if l := c.find(b); l != nil {
		c.clock++
		l.used = c.clock
		c.Hits++
		return l.state
	}
	c.Misses++
	return Invalid
}

// Victim describes a block displaced by Insert.
type Victim struct {
	Block mem.Block
	State State
}

// Insert fills block b with the given state (which must be valid),
// evicting the LRU line of the set if necessary.  It returns the evicted
// block, if any.  Inserting a block that is already present panics:
// callers must use SetState for state changes.
func (c *Cache) Insert(b mem.Block, s State) (victim Victim, evicted bool) {
	if s == Invalid {
		panic("cache: Insert with Invalid state")
	}
	if c.find(b) != nil {
		panic(fmt.Sprintf("cache: Insert of resident block %d", b))
	}
	set := c.set(b)
	slot := -1
	for i := range set {
		if set[i].state == Invalid {
			slot = i
			break
		}
	}
	if slot < 0 {
		slot = 0
		for i := 1; i < len(set); i++ {
			if set[i].used < set[slot].used {
				slot = i
			}
		}
		victim = Victim{Block: set[slot].block, State: set[slot].state}
		evicted = true
		c.Evictions++
	}
	c.clock++
	set[slot] = line{block: b, state: s, used: c.clock}
	return victim, evicted
}

// SetState changes the state of a resident block; it panics if the block
// is not resident or the new state is Invalid (use Invalidate).
func (c *Cache) SetState(b mem.Block, s State) {
	if s == Invalid {
		panic("cache: SetState to Invalid; use Invalidate")
	}
	l := c.find(b)
	if l == nil {
		panic(fmt.Sprintf("cache: SetState of absent block %d", b))
	}
	l.state = s
}

// Invalidate removes block b, returning its previous state (Invalid if
// it was not resident — invalidations of already-evicted blocks are
// normal under a directory with stale sharer bits).
func (c *Cache) Invalidate(b mem.Block) State {
	l := c.find(b)
	if l == nil {
		return Invalid
	}
	s := l.state
	l.state = Invalid
	return s
}

// ForEach calls fn for every valid line, in set order.
func (c *Cache) ForEach(fn func(b mem.Block, s State)) {
	for i := range c.lines {
		if c.lines[i].state != Invalid {
			fn(c.lines[i].block, c.lines[i].state)
		}
	}
}

// Resident returns the number of valid lines.
func (c *Cache) Resident() int {
	n := 0
	c.ForEach(func(mem.Block, State) { n++ })
	return n
}
