// Package logp implements the network abstraction of Culler et al.'s
// LogP model as the paper uses it: every message incurs a fixed latency
// L, and each processor may perform at most one network event (send or
// receive) every g time units, where g is derived from the per-processor
// bisection bandwidth of the network being abstracted.
//
// The o (overhead) parameter is insignificant on a shared-memory platform
// where messaging happens in hardware, and is omitted, following the
// paper.  The P parameter is carried by the machine configuration.
//
// Two gap-accounting disciplines are provided:
//
//   - Combined (the LogP definition): sends and receives at a node share
//     one port, so even a send immediately following a receive must wait
//     g.  The paper identifies this as a source of pessimism.
//   - PerClass (the paper's §7 ablation): the g gap is enforced only
//     between *identical* communication events — sends gap against
//     sends, receives against receives — which the authors found brings
//     the contention estimate much closer to the real network.
package logp

import (
	"fmt"
	"sync"

	"spasm/internal/network"
	"spasm/internal/sim"
)

// DefaultL is the paper's L parameter: the transmission time of a
// maximum-size 32-byte message on a 20 MB/s link, 1.6 microseconds.
const DefaultL = sim.Time(32) * sim.SerialByte

// PortMode selects the gap-accounting discipline.
type PortMode int

const (
	// Combined enforces g between any two network events at a node
	// (the strict LogP definition).
	Combined PortMode = iota
	// PerClass enforces g separately between sends and between
	// receives (the §7 ablation).
	PerClass
)

func (m PortMode) String() string {
	switch m {
	case Combined:
		return "combined"
	case PerClass:
		return "per-class"
	}
	return fmt.Sprintf("PortMode(%d)", int(m))
}

// GapFor computes the paper's g parameter for a topology: the time per
// maximum-size message divided by the per-processor share of the
// bisection bandwidth.  With the paper's constants this yields
// 3.2/p us (full), 1.6 us (cube) and 0.8*cols us (mesh).
func GapFor(t network.Topology, msgBytes int, byteTime sim.Time) sim.Time {
	msg := sim.Time(msgBytes) * byteTime
	return msg * sim.Time(t.P()) / sim.Time(t.BisectionLinks())
}

// Net is a LogP-abstracted network over P nodes.
type Net struct {
	L    sim.Time
	G    sim.Time
	Mode PortMode

	// Crosses, when non-nil, enables the history-based adaptive g the
	// paper proposes in section 7: g is derived from bisection
	// bandwidth under the assumption that *every* message crosses the
	// bisection, so the effective gap is scaled by the observed
	// fraction of traffic that actually does.  The predicate reports
	// whether a src->dst message crosses the bisection of the
	// topology g was derived from.
	Crosses func(src, dst int) bool

	// Port state, allocated by Mode: Combined uses the single last
	// array, PerClass the send/receive pair.  Allocating only what the
	// mode gates keeps the per-node footprint flat at large P (one port
	// array at 1024 nodes instead of three).
	//
	// Slots are initialized lazily: a node's ports are valid only while
	// stamp[node] == gen.  gate re-stamps a node to -g on first touch
	// after a Reset, which makes Reset O(1) instead of O(p) — at large P
	// a pooled net is reset far more often than most nodes communicate.
	p        int
	last     []sim.Time // Combined: last network event per node
	lastSend []sim.Time // PerClass ports
	lastRecv []sim.Time
	stamp    []uint32 // port-validity generation per node
	gen      uint32   // current generation (never 0 while live)

	// Messages counts every message carried; Crossing counts those
	// that crossed the bisection (adaptive mode only).
	Messages uint64
	Crossing uint64

	// Observer, when non-nil, is invoked from Message for every message
	// the abstract network carries, with the requested departure time
	// and the resulting schedule.
	Observer func(now sim.Time, x Xmit, src, dst int)
}

// New returns a LogP network over p nodes with the given parameters.
func New(p int, l, g sim.Time, mode PortMode) *Net {
	if p < 1 {
		panic("logp: p < 1")
	}
	if l < 0 || g < 0 {
		panic("logp: negative L or g")
	}
	n := &Net{L: l, G: g, Mode: mode, p: p, gen: 1}
	if mode == Combined {
		n.last = acquirePorts(p)
	} else {
		n.lastSend = acquirePorts(p)
		n.lastRecv = acquirePorts(p)
	}
	n.stamp = acquireStamps(p)
	return n
}

// portFree recycles the large per-node arrays across Net lifetimes: a
// pooled run context that is discarded (idle-cap overflow, failed run)
// hands its arrays back through Release, and the replacement context's
// New picks them up instead of allocating p (or 2p) fresh slots.  The
// freelists are bounded; arrays that do not fit are left to the GC.
var portFree struct {
	sync.Mutex
	ports  [][]sim.Time
	stamps [][]uint32
}

// portFreeCap bounds each freelist: enough for a few discarded contexts
// in flight (a PerClass net holds two port arrays) without pinning
// arbitrarily many large arrays.
const portFreeCap = 8

// acquirePorts returns an uninitialized length-p port array, recycled
// when one large enough is available.  Contents are arbitrary: port
// slots are only read after gate's lazy re-stamp writes them.
func acquirePorts(p int) []sim.Time {
	portFree.Lock()
	for i := len(portFree.ports) - 1; i >= 0; i-- {
		if s := portFree.ports[i]; cap(s) >= p {
			last := len(portFree.ports) - 1
			portFree.ports[i] = portFree.ports[last]
			portFree.ports[last] = nil
			portFree.ports = portFree.ports[:last]
			portFree.Unlock()
			return s[:p]
		}
	}
	portFree.Unlock()
	return make([]sim.Time, p)
}

// acquireStamps returns a zeroed length-p stamp array.  Zero never
// equals a live generation (gen starts at 1 and skips 0 on wrap), so a
// cleared stamp marks every node's ports uninitialized.
func acquireStamps(p int) []uint32 {
	portFree.Lock()
	for i := len(portFree.stamps) - 1; i >= 0; i-- {
		if s := portFree.stamps[i]; cap(s) >= p {
			last := len(portFree.stamps) - 1
			portFree.stamps[i] = portFree.stamps[last]
			portFree.stamps[last] = nil
			portFree.stamps = portFree.stamps[:last]
			portFree.Unlock()
			s = s[:p]
			for j := range s {
				s[j] = 0
			}
			return s
		}
	}
	portFree.Unlock()
	return make([]uint32, p)
}

// Release returns the net's per-node arrays to the package freelist and
// detaches them.  Call it when the net is being discarded for good (a
// dropped pool context); the traffic counters stay readable, but any
// further Message or Reset panics.  Release is idempotent.
func (n *Net) Release() {
	if n.stamp == nil {
		return
	}
	portFree.Lock()
	for _, s := range [][]sim.Time{n.last, n.lastSend, n.lastRecv} {
		if s != nil && len(portFree.ports) < portFreeCap {
			portFree.ports = append(portFree.ports, s)
		}
	}
	if len(portFree.stamps) < portFreeCap {
		portFree.stamps = append(portFree.stamps, n.stamp)
	}
	portFree.Unlock()
	n.last, n.lastSend, n.lastRecv, n.stamp = nil, nil, nil, nil
}

// P returns the number of nodes.
func (n *Net) P() int { return n.p }

// Reset returns the net to its post-New state in place: every node's
// ports again admit their first event at time zero, traffic counters are
// zeroed, and the Observer is dropped.  L, G, Mode, and the Crosses
// predicate are configuration — derived from the machine and topology
// the pooled context is keyed by — and are left alone.
//
// Reset is O(1): it bumps the port-validity generation, invalidating
// every stamp at once; gate lazily re-initializes a node's slots on its
// first event of the new run.  Only on uint32 wraparound (once per 2^32
// resets) does it pay an O(p) stamp clear, to keep a stamp left over
// from four billion runs ago from reading as current.
func (n *Net) Reset() {
	n.gen++
	if n.gen == 0 {
		for i := range n.stamp {
			n.stamp[i] = 0
		}
		n.gen = 1
	}
	n.Messages = 0
	n.Crossing = 0
	n.Observer = nil
}

// adaptiveWarmup is how many messages the adaptive estimator observes
// before trusting its locality history.
const adaptiveWarmup = 32

// effectiveG returns the gap currently in force: the static g, or — in
// adaptive mode, once warmed up — g scaled by the observed fraction of
// bisection-crossing traffic.
func (n *Net) effectiveG() sim.Time {
	if n.Crosses == nil || n.Messages < adaptiveWarmup {
		return n.G
	}
	return sim.Time(uint64(n.G) * n.Crossing / n.Messages)
}

// gate returns the earliest time >= at that node may perform an event of
// the given class, and records the event.  A node whose stamp predates
// the current generation has its ports initialized here to -g (the
// static G, as New stamped them), so its first event may happen at time
// zero.
func (n *Net) gate(node int, send bool, at, g sim.Time) sim.Time {
	if n.stamp[node] != n.gen {
		n.stamp[node] = n.gen
		if n.Mode == Combined {
			n.last[node] = -n.G
		} else {
			n.lastSend[node] = -n.G
			n.lastRecv[node] = -n.G
		}
	}
	var slot *sim.Time
	switch {
	case n.Mode == Combined:
		slot = &n.last[node]
	case send:
		slot = &n.lastSend[node]
	default:
		slot = &n.lastRecv[node]
	}
	ready := *slot + g
	if at > ready {
		ready = at
	}
	*slot = ready
	return ready
}

// Xmit describes one message on the abstract network.
type Xmit struct {
	SendAt  sim.Time // when the source's port admitted the send
	Arrive  sim.Time // SendAt + L
	Deliver sim.Time // when the destination's port admitted the receive
	// Latency is the contention-free component, always L.
	Latency sim.Time
	// Wait is the gap-induced stall at both endpoints; it is charged
	// to the contention overhead.
	Wait sim.Time
}

// Message transfers one message from src to dst, departing no earlier
// than now, and returns its schedule.  It does not block any process;
// callers advance their process to Deliver (or compose further legs).
func (n *Net) Message(now sim.Time, src, dst int) Xmit {
	if src == dst {
		panic(fmt.Sprintf("logp: message to self at node %d", src))
	}
	g := n.effectiveG()
	sendAt := n.gate(src, true, now, g)
	arrive := sendAt + n.L
	deliver := n.gate(dst, false, arrive, g)
	n.Messages++
	if n.Crosses != nil && n.Crosses(src, dst) {
		n.Crossing++
	}
	x := Xmit{
		SendAt:  sendAt,
		Arrive:  arrive,
		Deliver: deliver,
		Latency: n.L,
		Wait:    (sendAt - now) + (deliver - arrive),
	}
	if n.Observer != nil {
		n.Observer(now, x, src, dst)
	}
	return x
}
