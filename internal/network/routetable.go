package network

// Route-table precomputation.  The topologies of the study are small
// (the coherence directory caps machines at 64 nodes) and their routing
// is deterministic, so every route can be materialized once at
// construction into a single contiguous arena.  Route then becomes two
// array loads and a slice header — zero allocations per call — which
// takes per-message route building off the fabric's hot path entirely.
//
// Above routeTableMaxP nodes the table would cost O(p² · diameter)
// memory, so construction falls back to computing routes on demand
// (Route then allocates; the detailed fabric never runs that large).

// routeTableMaxP bounds precomputation: tables exist only for p values
// up to this limit (the paper sweeps p ≤ 64; 128 leaves headroom for
// scaling studies while keeping the largest table around a megabyte).
const routeTableMaxP = 128

// routeTable holds every src→dst route of a topology, concatenated into
// one arena slice with (p·p+1) offsets.
type routeTable struct {
	p     int
	off   []int32
	arena []int
}

// appendRouter is the compute form of a topology's routing function:
// append the links of the src→dst route to buf and return the extended
// slice.  Each topology keeps its original routing logic in this form;
// the table is built from it and Route serves from the table.
type appendRouter func(buf []int, src, dst int) []int

// buildRouteTable materializes all p·(p-1) routes of a topology, or
// returns nil when p exceeds routeTableMaxP.
func buildRouteTable(p int, route appendRouter) *routeTable {
	if p > routeTableMaxP {
		return nil
	}
	rt := &routeTable{p: p, off: make([]int32, p*p+1)}
	for src := 0; src < p; src++ {
		for dst := 0; dst < p; dst++ {
			if src != dst {
				rt.arena = route(rt.arena, src, dst)
			}
			rt.off[src*p+dst+1] = int32(len(rt.arena))
		}
	}
	return rt
}

// route returns the precomputed src→dst route.  The slice aliases the
// shared arena with its capacity clipped, so an append by the caller
// copies instead of clobbering the neighbouring route; callers must not
// modify elements in place.
func (rt *routeTable) route(src, dst int) []int {
	i := src*rt.p + dst
	lo, hi := rt.off[i], rt.off[i+1]
	return rt.arena[lo:hi:hi]
}
