package machine

import (
	"spasm/internal/par"
	"spasm/internal/sim"
)

// ParPlan is a machine's domain/lookahead plan for the conservative
// parallel execution mode: how processes partition into clock-vector
// domains and how far ahead of the oldest incomplete span the release
// window may reach.  The lookahead is derived from the backend's minimum
// cross-domain interaction latency; it is purely a throughput knob — the
// kernel's ordered commit gate alone guarantees bit-identical results —
// so a generous bound costs nothing in correctness (see internal/sim's
// parallel mode).
type ParPlan struct {
	// Domains is the clock-vector width (0 when Fallback is set).
	Domains int
	// DomainOf maps a process ID to its domain.
	DomainOf func(procID int) int
	// Lookahead is the release-window depth in simulated time.
	Lookahead sim.Time
	// Fallback, when non-empty, says why this machine kind cannot run in
	// windowed mode and must use the sequential kernel.
	Fallback string
}

// ParPlanFor derives the parallel plan for a machine configuration and
// worker count.  Per kind:
//
//   - Ideal: processes interact only through synchronization objects, so
//     the effective lookahead is unbounded.
//   - LogP: every cross-node interaction is a network round trip costing
//     at least the latency parameter L, so L is the minimum cross-domain
//     link latency.
//   - Flow: the cheapest cross-node message is the control packet,
//     CtrlBytes at the link byte time.
//   - Target, CLogP: the coherence engine interleaves directory locking
//     and protocol messages *inside* a single access — zero-latency
//     interactions between spans — so the lookahead collapses and the
//     run falls back to the sequential kernel.
//
// Domains partition process IDs contiguously (par.Partition), which
// groups fabric links by topology region: a contiguous ID range is a
// row block of the mesh/torus, an arc of the ring, or a subcube of the
// hypercube, and a link belongs to the domain of its endpoint nodes.
func ParPlanFor(cfg Config, workers int) ParPlan {
	cfg = cfg.withDefaults()
	var look sim.Time
	switch cfg.Kind {
	case Ideal:
		look = 1 << 60 // no cross-domain interactions at all
	case LogP:
		look = cfg.L
	case Flow:
		look = sim.Time(cfg.Costs.CtrlBytes) * cfg.LinkByteTime
	case Target, CLogP:
		return ParPlan{Fallback: "zero-lookahead inline coherence"}
	default:
		return ParPlan{Fallback: "unknown machine kind"}
	}
	if look <= 0 {
		return ParPlan{Fallback: "zero-lookahead"}
	}
	d := workers
	if cfg.P > 0 && d > cfg.P {
		d = cfg.P
	}
	if d < 1 {
		d = 1
	}
	return ParPlan{
		Domains:   d,
		DomainOf:  par.Partition(cfg.P, d),
		Lookahead: look,
	}
}
