// Package stats implements SPASM's separation of parallel-system
// overheads: for each simulated processor it accumulates where simulated
// time went (compute, memory, network latency, network contention,
// synchronization) and counts the events (references, misses, messages)
// that the paper's analysis relies on.
//
// The separation rule follows the paper exactly: the time a message would
// take on a contention-free network is charged to the *latency* bucket;
// any additional time the message spends waiting (for links on the target
// machine, for the g-gap on the LogP machines) is charged to the
// *contention* bucket.
package stats

import (
	"fmt"
	"time"

	"spasm/internal/sim"
)

// Bucket labels one of the time categories SPASM separates.
type Bucket int

const (
	// Compute is time spent executing instructions that do not touch
	// shared memory (the "executed at native speed" portion of an
	// execution-driven simulation).
	Compute Bucket = iota
	// Memory is time spent in the local memory hierarchy: cache hits,
	// cache fills, and local (home-node) memory accesses.
	Memory
	// Latency is contention-free message transmission time — the
	// network overhead the LogP L parameter abstracts.
	Latency
	// Contention is time messages spend waiting: for links on the
	// target machine, or induced by the g-gap on LogP machines.
	Contention
	// Sync is time spent blocked in synchronization (spinning or
	// parked at locks, flags, and barriers), excluding the memory and
	// network time of the synchronization references themselves.
	Sync
	// NumBuckets is the number of time buckets.
	NumBuckets
)

var bucketNames = [NumBuckets]string{"compute", "memory", "latency", "contention", "sync"}

func (b Bucket) String() string {
	if b < 0 || b >= NumBuckets {
		return fmt.Sprintf("Bucket(%d)", int(b))
	}
	return bucketNames[b]
}

// Proc accumulates the overheads and event counts of one simulated
// processor.
type Proc struct {
	ID     int
	Time   [NumBuckets]sim.Time
	Finish sim.Time // simulated time at which the processor completed

	Reads       uint64 // shared-memory read references
	Writes      uint64 // shared-memory write references
	Hits        uint64 // cache hits (machines with caches)
	Misses      uint64 // cache misses (machines with caches)
	Messages    uint64 // network messages sent on this processor's behalf
	NetBytes    uint64 // total bytes in those messages
	NetAccesses uint64 // references that crossed the network
	Invals      uint64 // invalidation messages caused (target machine)
	Writebacks  uint64 // writeback messages caused (target machine)
	LockOps     uint64 // lock acquisitions completed
	BarrierOps  uint64 // barrier episodes completed
}

// Add charges d units of simulated time to bucket b.
func (p *Proc) Add(b Bucket, d sim.Time) {
	if d < 0 {
		panic(fmt.Sprintf("stats: negative charge %v to %v", d, b))
	}
	p.Time[b] += d
}

// Busy returns the total time accounted across all buckets.
func (p *Proc) Busy() sim.Time {
	var t sim.Time
	for _, v := range p.Time {
		t += v
	}
	return t
}

// Run aggregates one simulation run.
type Run struct {
	Procs []Proc

	// Total is the simulated execution time: the maximum of the
	// individual processors' finish times, exactly as SPASM reports it.
	Total sim.Time
	// SimEvents is the number of discrete events the engine
	// dispatched; it is the machine-independent measure of how
	// expensive the simulation itself was.
	SimEvents uint64
	// NetEvents is the network model's own unit of work, as reported by
	// the machine's network backend: per-hop resource reservations on
	// the detailed fabric, per-message port gatings on the LogP tiers,
	// bandwidth-allocation recomputations on the flow tier.  Zero on
	// machines without a network backend.  It is the axis the fidelity
	// comparison's event-reduction claim is measured on.
	NetEvents uint64
	// Wall is the host wall-clock duration of the simulation, the
	// paper's "speed of simulation" metric.
	Wall time.Duration
}

// EventsPerSec returns the host-side simulation rate — dispatched engine
// events per wall-clock second — or 0 when no wall time was recorded.
// It is the throughput axis parallel execution is measured on.
func (r *Run) EventsPerSec() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.SimEvents) / r.Wall.Seconds()
}

// NewRun returns a Run with p processor slots.
func NewRun(p int) *Run {
	r := &Run{Procs: make([]Proc, p)}
	for i := range r.Procs {
		r.Procs[i].ID = i
	}
	return r
}

// P returns the number of processors in the run.
func (r *Run) P() int { return len(r.Procs) }

// Finish records processor id finishing at time t and folds it into
// Total.
func (r *Run) Finish(id int, t sim.Time) {
	r.Procs[id].Finish = t
	if t > r.Total {
		r.Total = t
	}
}

// Sum returns the sum over processors of bucket b.
func (r *Run) Sum(b Bucket) sim.Time {
	var t sim.Time
	for i := range r.Procs {
		t += r.Procs[i].Time[b]
	}
	return t
}

// Mean returns the per-processor mean of bucket b.
func (r *Run) Mean(b Bucket) sim.Time {
	if len(r.Procs) == 0 {
		return 0
	}
	return r.Sum(b) / sim.Time(len(r.Procs))
}

// Max returns the per-processor maximum of bucket b.
func (r *Run) Max(b Bucket) sim.Time {
	var m sim.Time
	for i := range r.Procs {
		if v := r.Procs[i].Time[b]; v > m {
			m = v
		}
	}
	return m
}

// Count sums a per-processor counter selected by f.
func (r *Run) Count(f func(*Proc) uint64) uint64 {
	var n uint64
	for i := range r.Procs {
		n += f(&r.Procs[i])
	}
	return n
}

// Messages returns the total network messages in the run.
func (r *Run) Messages() uint64 { return r.Count(func(p *Proc) uint64 { return p.Messages }) }

// NetAccesses returns the total network-crossing references in the run.
func (r *Run) NetAccesses() uint64 { return r.Count(func(p *Proc) uint64 { return p.NetAccesses }) }

// String summarizes the run in one line.
func (r *Run) String() string {
	return fmt.Sprintf("p=%d total=%v latency=%v contention=%v sync=%v msgs=%d",
		len(r.Procs), r.Total, r.Sum(Latency), r.Sum(Contention), r.Sum(Sync), r.Messages())
}
