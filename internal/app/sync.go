package app

import (
	"spasm/internal/mem"
	"spasm/internal/sim"
	"spasm/internal/stats"
)

// Synchronization objects built from simulated shared memory.
//
// A SpinLock is a test-test&set lock: waiters re-read the lock word (a
// cache hit while the holder keeps it, per Anderson's analysis cited by
// the paper) and attempt the set only when it appears free.  A Flag is
// the condition-variable idiom the paper's EP uses: spin-read a shared
// word until a producer writes it.  On the machines with caches, a
// waiter pays the network only for its first read (the miss) and the
// read after the producer's invalidating write — exactly the behaviour
// the paper describes; on the cache-less LogP machine every probe of a
// remotely homed word crosses the network.
//
// To keep simulation cost bounded, a waiter spins SpinRounds times and
// then parks until the releasing/setting processor's write, which also
// wakes parked waiters to re-probe.  The probes issued are the
// references the machine models price; parking itself is free and its
// duration is charged to the Sync bucket.

// Spin-wait tuning shared by all synchronization objects.
const (
	// SpinRounds is how many probe rounds a waiter performs before
	// parking.
	SpinRounds = 4
	// SpinCost is the loop overhead (compare + branch) per probe
	// round, in cycles.
	SpinCost = 8
)

// wordSize is the size of a synchronization variable in bytes.
const wordSize = 8

// SpinLock is a test-test&set mutual-exclusion lock on a shared word.
type SpinLock struct {
	Name string
	addr mem.Addr

	held  bool
	owner int
	q     sim.Queue
}

// NewLock allocates a lock word homed at the given node.
func (c *Ctx) NewLock(name string, home int) *SpinLock {
	arr := c.Space.AllocAt(name, 1, wordSize, home)
	return &SpinLock{Name: name, addr: arr.At(0), owner: -1}
}

// Addr returns the lock word's address (the traffic target).
func (l *SpinLock) Addr() mem.Addr { return l.addr }

// Held reports whether the lock is currently held.
func (l *SpinLock) Held() bool { return l.held }

// Lock acquires the lock.  Every probe and the winning test&set issue
// real shared-memory references; waiting time beyond those references is
// charged to Sync.
func (l *SpinLock) Lock(p *Proc) {
	p.S.FlushLag() // materialize local time before competing for the lock
	spins := 0
	for {
		p.Read(l.addr) // test
		var won bool
		p.S.Ordered(func() {
			if !l.held {
				// The set half of the test&set: claim the word.
				l.held = true
				l.owner = p.ID
				won = true
			}
		})
		if won {
			// Pay the write that makes the claim globally visible.
			p.Write(l.addr)
			p.St.LockOps++
			return
		}
		if spins < SpinRounds {
			spins++
			p.spin(SpinCost)
			continue
		}
		// Park until the holder's release.  Materialize local time
		// first and re-check: a release during the flush must not be
		// missed (the re-check and Wait's enqueue are one span, so they
		// are atomic against the releaser's sections).
		p.S.FlushLag()
		var held bool
		p.S.Ordered(func() { held = l.held })
		if held {
			t0 := p.Now()
			l.q.Wait(p.S)
			p.St.Add(stats.Sync, p.Now()-t0)
		}
		spins = 0
	}
}

// Unlock releases the lock with an invalidating write of the lock word
// and wakes any parked waiters to re-contend.
func (l *SpinLock) Unlock(p *Proc) {
	p.S.FlushLag()
	var bad bool
	p.S.Ordered(func() {
		if !l.held || l.owner != p.ID {
			bad = true
			return
		}
		l.held = false
		l.owner = -1
	})
	if bad {
		panic("app: Unlock of lock not held by " + p.S.Name)
	}
	p.Write(l.addr)
	p.S.Ordered(func() { l.q.WakeAll() })
}

// Flag is a one-word condition variable: consumers wait for a producer's
// write, the paper's EP signalling idiom.
type Flag struct {
	Name string
	addr mem.Addr

	set bool
	q   sim.Queue
}

// NewFlag allocates a flag word homed at the given node.
func (c *Ctx) NewFlag(name string, home int) *Flag {
	arr := c.Space.AllocAt(name, 1, wordSize, home)
	return &Flag{Name: name, addr: arr.At(0)}
}

// Addr returns the flag word's address.
func (f *Flag) Addr() mem.Addr { return f.addr }

// IsSet reports the flag's current value without issuing a reference.
func (f *Flag) IsSet() bool { return f.set }

// Wait spins (then parks) until the flag is set.  The first probe and
// the probe after the setter's invalidation are the network-visible
// references on the cached machines.
func (f *Flag) Wait(p *Proc) {
	p.S.FlushLag() // materialize local time before sampling the flag
	spins := 0
	for {
		p.Read(f.addr)
		var set bool
		p.S.Ordered(func() { set = f.set })
		if set {
			return
		}
		if spins < SpinRounds {
			spins++
			p.spin(SpinCost)
			continue
		}
		// Flush-then-recheck so a Set during the flush is not missed.
		p.S.FlushLag()
		p.S.Ordered(func() { set = f.set })
		if !set {
			t0 := p.Now()
			f.q.Wait(p.S)
			p.St.Add(stats.Sync, p.Now()-t0)
		}
		spins = 0
	}
}

// Set raises the flag with an invalidating write and wakes waiters.
func (f *Flag) Set(p *Proc) {
	p.S.FlushLag()
	p.S.Ordered(func() { f.set = true })
	p.Write(f.addr)
	p.S.Ordered(func() { f.q.WakeAll() })
}

// Clear lowers the flag (for reuse across phases).
func (f *Flag) Clear(p *Proc) {
	p.S.FlushLag()
	p.S.Ordered(func() { f.set = false })
	p.Write(f.addr)
}

// Barrier is a centralized sense-reversing barrier: a lock-protected
// arrival counter plus a release word all waiters spin on — the standard
// shared-memory barrier of the era, with all of its O(P) traffic.
type Barrier struct {
	Name string
	n    int

	lock      *SpinLock
	countAddr mem.Addr
	flagAddr  mem.Addr

	count int
	sense bool
	q     sim.Queue
}

// NewBarrier allocates a barrier for n participants with its counter and
// release word homed at the given node.
func (c *Ctx) NewBarrier(name string, n, home int) *Barrier {
	arr := c.Space.AllocAt(name, 2, wordSize, home)
	return &Barrier{
		Name:      name,
		n:         n,
		lock:      c.NewLock(name+".lock", home),
		countAddr: arr.At(0),
		flagAddr:  arr.At(1),
	}
}

// Arrive synchronizes the calling processor with the other n-1.
func (b *Barrier) Arrive(p *Proc) {
	p.S.FlushLag() // arrival order is defined by materialized local time
	var my bool
	p.S.Ordered(func() { my = !b.sense })

	b.lock.Lock(p)
	p.Read(b.countAddr)
	var last bool
	p.S.Ordered(func() {
		b.count++
		last = b.count == b.n
	})
	p.Write(b.countAddr)
	b.lock.Unlock(p)

	if last {
		p.S.Ordered(func() {
			b.count = 0
			b.sense = my
		})
		p.Write(b.flagAddr) // release write invalidates all spinners
		p.S.Ordered(func() { b.q.WakeAll() })
		p.St.BarrierOps++
		return
	}
	spins := 0
	for {
		p.Read(b.flagAddr)
		var released bool
		p.S.Ordered(func() { released = b.sense == my })
		if released {
			break
		}
		if spins < SpinRounds {
			spins++
			p.spin(SpinCost)
			continue
		}
		// Flush-then-recheck so a release during the flush is not
		// missed.
		p.S.FlushLag()
		p.S.Ordered(func() { released = b.sense == my })
		if !released {
			t0 := p.Now()
			b.q.Wait(p.S)
			p.St.Add(stats.Sync, p.Now()-t0)
		}
		spins = 0
	}
	p.St.BarrierOps++
}
