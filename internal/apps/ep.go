package apps

import (
	"fmt"
	"math"

	"spasm/internal/app"
	"spasm/internal/mem"
)

// EP is the NAS "embarrassingly parallel" kernel: each processor
// generates Gaussian deviates by the Marsaglia polar method and tallies
// them into ten annulus bins.  Communication happens only at the end: a
// lock-guarded accumulation of the global tallies, followed by the
// paper's condition-variable chain (each processor waits on a flag set
// by its predecessor, scans the global sums, and signals its successor),
// and a final barrier.
//
// EP has the suite's highest computation-to-communication ratio and
// strong communication locality (neighbour flags homed at the
// neighbour), making it the showcase for the g-parameter's pessimism
// (paper Figures 10 and 11).
type EP struct {
	// Pairs is the number of uniform pairs to draw.
	Pairs int
	// PairCycles is the instruction cost charged per pair (NAS EP
	// spends ~100 FLOPs per accepted pair on logs and square roots).
	PairCycles int64
	Seed       int64

	// Shared data.
	gsums *mem.Array // 10 bin counts + 2 coordinate sums
	lock  *app.SpinLock
	flags []*app.Flag
	bar   *app.Barrier

	// Host-side results.
	bins    [10]int64 // accumulated through the simulated merge
	sx, sy  float64
	wantBin [10]int64 // independently computed oracle
	wantSx  float64
	wantSy  float64
	checked int // processors that scanned the final sums
}

// NewEP returns an EP instance at the given scale.
func NewEP(scale Scale, seed int64) app.Program {
	ep := &EP{PairCycles: 120, Seed: seed}
	switch scale {
	case Tiny:
		ep.Pairs = 1 << 8
	case Small:
		ep.Pairs = 1 << 14
	default:
		ep.Pairs = 1 << 17
	}
	return ep
}

func init() {
	register("ep", NewEP)
}

// Name implements app.Program.
func (e *EP) Name() string { return "ep" }

// Setup allocates the global sums, the merge lock, the signalling chain
// flags (flag i homed at node i, so signalling is neighbour-local), and
// the final barrier.
func (e *EP) Setup(c *app.Ctx) {
	e.gsums = c.Space.AllocAt("ep.gsums", 12, 8, 0)
	e.lock = c.NewLock("ep.lock", 0)
	e.flags = make([]*app.Flag, c.P)
	for i := 0; i < c.P; i++ {
		e.flags[i] = c.NewFlag(fmt.Sprintf("ep.flag%d", i), i)
	}
	e.bar = c.NewBarrier("ep.bar", c.P, 0)

	// Oracle: the whole computation, sequentially.
	for p := 0; p < c.P; p++ {
		lo, hi := share(e.Pairs, c.P, p)
		bins, sx, sy := e.tally(p, hi-lo)
		for b := range bins {
			e.wantBin[b] += bins[b]
		}
		e.wantSx += sx
		e.wantSy += sy
	}
}

// tally generates n Gaussian pairs for processor id and returns its bin
// counts and coordinate sums.  Each processor uses an independent seeded
// stream, as NAS EP prescribes.
func (e *EP) tally(id, n int) (bins [10]int64, sx, sy float64) {
	rng := newRng(e.Seed*1000 + int64(id))
	defer putRng(rng)
	for k := 0; k < n; k++ {
		x := 2*rng.Float64() - 1
		y := 2*rng.Float64() - 1
		t := x*x + y*y
		if t > 1 || t == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(t) / t)
		gx, gy := x*f, y*f
		sx += gx
		sy += gy
		l := int(math.Max(math.Abs(gx), math.Abs(gy)))
		if l > 9 {
			l = 9
		}
		bins[l]++
	}
	return bins, sx, sy
}

// Body implements app.Program.
func (e *EP) Body(p *app.Proc) {
	lo, hi := share(e.Pairs, p.Ctx.P, p.ID)

	// Generation phase: pure computation on private data.
	p.Phase("generate")
	n := hi - lo
	const batch = 64
	for done := 0; done < n; done += batch {
		b := min(batch, n-done)
		p.Compute(int64(b) * e.PairCycles)
	}
	bins, sx, sy := e.tally(p.ID, n)

	// Merge phase: lock-guarded read-modify-write of the 12 global
	// words.
	p.Phase("merge")
	e.lock.Lock(p)
	for i := 0; i < 12; i++ {
		p.ReadElem(e.gsums, i)
		p.Compute(IntOpCycles)
		p.WriteElem(e.gsums, i)
	}
	for b := range bins {
		e.bins[b] += bins[b]
	}
	e.sx += sx
	e.sy += sy
	e.lock.Unlock(p)

	// Verification chain: processor i waits for its predecessor's
	// signal, scans the global sums, then signals its successor — the
	// paper's condition-variable idiom.
	p.Phase("chain")
	if p.ID == 0 {
		e.flags[0].Set(p)
	} else {
		e.flags[p.ID-1].Wait(p)
		for i := 0; i < 12; i++ {
			p.ReadElem(e.gsums, i)
		}
		e.checked++
		if p.ID < p.Ctx.P-1 {
			e.flags[p.ID].Set(p)
		}
	}
	e.bar.Arrive(p)
}

// Check verifies the merged tallies against the sequential oracle.
func (e *EP) Check() error {
	if e.bins != e.wantBin {
		return fmt.Errorf("ep: bins %v != oracle %v", e.bins, e.wantBin)
	}
	if math.Abs(e.sx-e.wantSx) > 1e-9 || math.Abs(e.sy-e.wantSy) > 1e-9 {
		return fmt.Errorf("ep: sums (%g,%g) != oracle (%g,%g)", e.sx, e.sy, e.wantSx, e.wantSy)
	}
	if want := len(e.flags) - 1; e.checked != want && len(e.flags) > 1 {
		return fmt.Errorf("ep: %d processors scanned, want %d", e.checked, want)
	}
	return nil
}
