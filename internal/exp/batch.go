package exp

import (
	"sync"

	"spasm/internal/app"
	"spasm/internal/apps"
	"spasm/internal/machine"
	"spasm/internal/runpool"
	"spasm/internal/stats"
)

// BatchPoint is one sweep point for RunBatch/RunMany: an (application,
// topology, machine, P) combination at the session's scale and seed.
type BatchPoint struct {
	App      string
	Topology string
	Kind     machine.Kind
	P        int
}

func (b BatchPoint) key() runKey { return runKey{b.App, b.Topology, b.Kind, b.P} }

// RunBatch executes a set of sweep points on a bounded worker pool
// (Options.Parallel workers; 1 when unset) and returns their statistics
// in input order: out[i] is the result for points[i], whatever order the
// workers finished in.  Duplicate points and points already in the
// session cache are simulated once.  Workers draw run contexts from the
// session's shared pool (internal/runpool) — each context belongs to one
// worker between checkout and return, so a sweep pays machine
// construction roughly once per configuration, not once per run, and
// the pool's idle cap bounds peak memory on sweeps spanning many
// configurations.
//
// Every simulation is single-threaded and a pure function of its
// combination, so results are bit-identical regardless of worker count
// or scheduling.  All points are attempted even after a failure; the
// returned error is the first failing point's, in batch order, and
// successful results are still cached in the session.
func (s *Session) RunBatch(points []BatchPoint) ([]*stats.Run, error) {
	out := make([]*stats.Run, len(points))

	// Resolve session-cache hits and dedupe the remainder, keeping
	// first-appearance order so error selection is deterministic.
	type job struct {
		pt  BatchPoint
		dst []int // positions in out to fill
	}
	var jobs []*job
	index := map[runKey]*job{}
	for i, pt := range points {
		k := pt.key()
		if r, ok := s.lookup(k.String()); ok {
			out[i] = r
			continue
		}
		j, ok := index[k]
		if !ok {
			j = &job{pt: pt}
			index[k] = j
			jobs = append(jobs, j)
		}
		j.dst = append(j.dst, i)
	}
	if len(jobs) == 0 {
		return out, nil
	}

	workers := s.opt.Parallel
	if workers < 1 {
		workers = 1
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	results := make([]*stats.Run, len(jobs))
	errs := make([]error, len(jobs))
	work := make(chan int, len(jobs))
	for j := range jobs {
		work <- j
	}
	close(work)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pool := s.pool
			if s.opt.Runner != nil {
				pool = nil // the Runner executes elsewhere
			}
			for j := range work {
				pt := jobs[j].pt
				r, err := s.simulate(pt.App, pt.Topology, pt.Kind, pt.P, pool)
				if err != nil {
					errs[j] = err
					continue
				}
				results[j] = r
				s.store(pt.key().String(), r)
			}
		}()
	}
	wg.Wait()

	for j, jb := range jobs {
		if errs[j] != nil {
			return out, errs[j]
		}
		for _, i := range jb.dst {
			out[i] = results[j]
		}
	}
	return out, nil
}

// RunMany executes the sweep points in a fresh session with the given
// options and returns their statistics in input order — the one-shot
// form of Session.RunBatch for callers without a session to share.
func RunMany(opt Options, points []BatchPoint) ([]*stats.Run, error) {
	return NewSession(opt).RunBatch(points)
}

// simulate executes one combination, bypassing the session cache.  With
// a Runner injected (the service layer) the combination is delegated to
// it; otherwise the program is built and run locally — on pooled
// contexts when pool is non-nil, fresh ones when it is nil.
func (s *Session) simulate(appName, topo string, kind machine.Kind, p int, pool *runpool.Pool) (*stats.Run, error) {
	if s.opt.Runner != nil {
		return s.opt.Runner(appName, topo, kind, p)
	}
	prog, err := apps.New(appName, s.opt.Scale, s.opt.Seed)
	if err != nil {
		// Ad-hoc figures may sweep the extension workloads too.
		var extErr error
		prog, extErr = apps.NewExtended(appName, s.opt.Scale, s.opt.Seed)
		if extErr != nil {
			return nil, err
		}
	}
	res, err := app.RunPooledControlled(prog, machine.Config{
		Kind:     kind,
		Topology: topo,
		P:        p,
		PortMode: s.opt.PortMode,
	}, pool, app.RunControl{Timeout: s.opt.RunTimeout, Workers: s.opt.RunWorkers})
	if err != nil {
		return nil, err
	}
	return res.Stats, nil
}
