package spasm

// The acceptance runs for the large-P work: a 1024-processor flow-tier
// run and a 256-processor coherent Target run must complete cleanly —
// no directory panic, no route-table cliff, no per-message allocation
// blow-up — and produce self-consistent statistics.  The uniform
// synthetic-traffic workload drives them: its cost is linear in P and
// its Check replays the deterministic reference stream, so completion
// implies the traffic was exactly the scheduled traffic.

import (
	"bytes"
	"encoding/json"
	"testing"

	"spasm/internal/report"
	"spasm/internal/stats"
)

func TestFlow1024Procs(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-processor run")
	}
	res, err := RunExtended("uniform", Tiny, 1, Config{Kind: Flow, Topology: "torus", P: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Total <= 0 {
		t.Fatalf("run completed with non-positive total %v", res.Stats.Total)
	}
	if res.Stats.NetAccesses() == 0 {
		t.Fatal("1024-processor run carried no network traffic")
	}
	if got := len(res.Stats.Procs); got != 1024 {
		t.Fatalf("statistics cover %d processors, want 1024", got)
	}
}

func TestTarget256Procs(t *testing.T) {
	if testing.Short() {
		t.Skip("256-processor coherent run")
	}
	res, err := RunExtended("uniform", Tiny, 1, Config{Kind: Target, Topology: "mesh", P: 256})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Total <= 0 {
		t.Fatalf("run completed with non-positive total %v", res.Stats.Total)
	}
	// A coherent run at this scale must have exercised the directory:
	// uniform writes to shared blocks force invalidations.
	if res.Stats.Count(func(q *stats.Proc) uint64 { return q.Invals }) == 0 {
		t.Fatal("coherent 256-processor run produced no invalidations")
	}
}

// TestFlow1024PooledIdentical locks pooled reuse at the scale the
// large-P allocation work targets: a 1024-processor flow-tier run on a
// reused context — whose second pass rides the flow arena, the pooled
// reference PRNGs, and the ladder event queue all in their post-reset
// state — must produce a RunDoc byte-identical to a fresh run's.
func TestFlow1024PooledIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("three 1024-processor runs")
	}
	cfg := Config{Kind: Flow, Topology: "torus", P: 1024}
	fresh, err := RunExtended("uniform", Tiny, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(report.RunJSON(fresh))
	if err != nil {
		t.Fatal(err)
	}
	pool := NewRunPool(0)
	for pass := 0; pass < 2; pass++ {
		pooled, err := RunOn("uniform", Tiny, 1, cfg, pool)
		if err != nil {
			t.Fatalf("pooled pass %d: %v", pass, err)
		}
		got, err := json.Marshal(report.RunJSON(pooled))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("pooled pass %d diverged from fresh run\nfresh:  %s\npooled: %s", pass, want, got)
		}
	}
	if st := pool.Stats(); st.Hits != 1 {
		t.Fatalf("second pooled pass did not reuse the context (stats %+v)", st)
	}
}

// TestFlow256ProcsParallelIdentical drives a 256-processor flow-tier
// spec through the parallel-workers path: the conservative kernel must
// stay bit-identical to the sequential one at large P.
func TestFlow256ProcsParallelIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("256-processor runs")
	}
	seq, err := RunSpec(Spec{App: "uniform", Machine: Flow, Topology: "mesh", P: 256})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunSpec(Spec{App: "uniform", Machine: Flow, Topology: "mesh", P: 256, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Stats.Total != par.Stats.Total || seq.Stats.Messages() != par.Stats.Messages() {
		t.Fatalf("parallel run diverged: %v/%d vs %v/%d",
			par.Stats.Total, par.Stats.Messages(), seq.Stats.Total, seq.Stats.Messages())
	}
}
