package apps

import (
	"fmt"
	"math"

	"spasm/internal/app"
	"spasm/internal/mem"
	"spasm/internal/sparse"
)

// CG is the NAS conjugate-gradient kernel: iterations of sparse
// matrix-vector product, dot-product reductions, and vector updates on a
// random SPD matrix.  Rows are statically partitioned, but the reference
// pattern into the direction vector follows the matrix's sparsity — the
// data-dependent, compile-time-unknowable communication the paper
// contrasts with EP/FFT/IS (Figures 2, 15, 17, 19).
type CG struct {
	N     int // matrix order
	Extra int // random off-diagonals per row
	Iters int
	Seed  int64
	// Placement lays out the shared vectors and matrix values:
	// Blocked (default) aligns data with the static row partition;
	// Interleaved destroys that alignment, for the
	// placement-sensitivity study.
	Placement mem.Policy

	a *sparse.CSR

	// Shared arrays.
	aval *mem.Array // matrix values (and, by proxy, column indices)
	xv   *mem.Array // solution estimate
	rv   *mem.Array // residual
	pv   *mem.Array // search direction
	qv   *mem.Array // A*p
	acc  *mem.Array // per-iteration reduction accumulators
	lock *app.SpinLock
	bars []*app.Barrier

	// Host-side values.  The per-iteration dot products are indexed by
	// iteration so no processor ever needs to reset a shared scalar.
	x, r, pd, q, b []float64
	dotPQ, dotRR   []float64
	rho0           float64
	initialRes     float64
}

// NewCG returns a CG instance at the given scale.
func NewCG(scale Scale, seed int64) app.Program {
	cg := &CG{Extra: 3, Iters: 4, Seed: seed}
	switch scale {
	case Tiny:
		cg.N = 64
	case Small:
		cg.N = 512
	default:
		cg.N = 1500
	}
	return cg
}

func init() {
	register("cg", NewCG)
}

// Name implements app.Program.
func (g *CG) Name() string { return "cg" }

// Setup generates the matrix, allocates the shared arrays blocked by
// row, and initializes the CG state: x = 0, r = p = b with b = A*ones.
func (g *CG) Setup(c *app.Ctx) {
	g.a = sparse.RandomSPD(g.N, g.Extra, g.Seed)
	g.aval = c.Space.Alloc("cg.aval", g.a.NNZ(), 8, g.Placement)
	g.xv = c.Space.Alloc("cg.x", g.N, 8, g.Placement)
	g.rv = c.Space.Alloc("cg.r", g.N, 8, g.Placement)
	g.pv = c.Space.Alloc("cg.p", g.N, 8, g.Placement)
	g.qv = c.Space.Alloc("cg.q", g.N, 8, g.Placement)
	g.acc = c.Space.AllocAt("cg.acc", 2*g.Iters, 8, 0)
	g.lock = c.NewLock("cg.lock", 0)
	for i := 0; i < 3*g.Iters; i++ {
		g.bars = append(g.bars, c.NewBarrier(fmt.Sprintf("cg.bar%d", i), c.P, i%c.P))
	}

	ones := make([]float64, g.N)
	for i := range ones {
		ones[i] = 1
	}
	g.b = make([]float64, g.N)
	g.a.MulVec(ones, g.b)
	g.x = make([]float64, g.N)
	g.r = append([]float64(nil), g.b...)
	g.pd = append([]float64(nil), g.b...)
	g.q = make([]float64, g.N)
	g.dotPQ = make([]float64, g.Iters)
	g.dotRR = make([]float64, g.Iters)
	for _, v := range g.r {
		g.rho0 += v * v
	}
	g.initialRes = math.Sqrt(g.rho0)
}

// Body implements app.Program.
func (g *CG) Body(p *app.Proc) {
	P := p.Ctx.P
	lo, hi := share(g.N, P, p.ID)
	rho := g.rho0

	for it := 0; it < g.Iters; it++ {
		// q = A p over this processor's rows: matrix entries are
		// local consecutive reads; p[col] is the irregular,
		// possibly-remote read stream dictated by the sparsity.
		p.Phase("matvec")
		for i := lo; i < hi; i++ {
			cols, vals := g.a.Row(i)
			rp := g.a.RowPtr[i]
			p.ReadRange(g.aval, rp, rp+len(cols))
			var s float64
			for k, j := range cols {
				p.ReadElem(g.pv, j)
				s += vals[k] * g.pd[j]
			}
			p.Compute(int64(len(cols)) * 2 * FlopCycles)
			g.q[i] = s
			p.WriteElem(g.qv, i)
		}

		// Reduce p·q: local partial, then a lock-guarded global add.
		p.Phase("reduce")
		var part float64
		for i := lo; i < hi; i++ {
			p.ReadElem(g.pv, i)
			p.ReadElem(g.qv, i)
			part += g.pd[i] * g.q[i]
		}
		p.Compute(int64(hi-lo) * 2 * FlopCycles)
		g.lock.Lock(p)
		p.ReadElem(g.acc, 2*it)
		g.dotPQ[it] += part
		p.WriteElem(g.acc, 2*it)
		g.lock.Unlock(p)
		g.bars[3*it].Arrive(p)
		p.ReadElem(g.acc, 2*it)
		alpha := rho / g.dotPQ[it]

		// x += alpha p; r -= alpha q; partial r·r — all local rows.
		p.Phase("update")
		part = 0
		for i := lo; i < hi; i++ {
			p.ReadElem(g.xv, i)
			p.ReadElem(g.pv, i)
			g.x[i] += alpha * g.pd[i]
			p.WriteElem(g.xv, i)
			p.ReadElem(g.rv, i)
			p.ReadElem(g.qv, i)
			g.r[i] -= alpha * g.q[i]
			p.WriteElem(g.rv, i)
			part += g.r[i] * g.r[i]
		}
		p.Compute(int64(hi-lo) * 6 * FlopCycles)
		g.lock.Lock(p)
		p.ReadElem(g.acc, 2*it+1)
		g.dotRR[it] += part
		p.WriteElem(g.acc, 2*it+1)
		g.lock.Unlock(p)
		g.bars[3*it+1].Arrive(p)
		p.ReadElem(g.acc, 2*it+1)
		beta := g.dotRR[it] / rho
		rho = g.dotRR[it]

		// p = r + beta p — local; barrier before the next mat-vec
		// reads the updated direction vector.
		for i := lo; i < hi; i++ {
			p.ReadElem(g.rv, i)
			p.ReadElem(g.pv, i)
			g.pd[i] = g.r[i] + beta*g.pd[i]
			p.WriteElem(g.pv, i)
		}
		p.Compute(int64(hi-lo) * 2 * FlopCycles)
		g.bars[3*it+2].Arrive(p)
	}
}

// Check verifies that the simulated iterations reduced the residual and
// that the internal residual vector matches b - A*x.
func (g *CG) Check() error {
	res := sparse.Residual(g.a, g.x, g.b)
	if res >= g.initialRes/2 {
		return fmt.Errorf("cg: residual %g did not halve from %g", res, g.initialRes)
	}
	ax := make([]float64, g.N)
	g.a.MulVec(g.x, ax)
	for i := range ax {
		if math.Abs(g.b[i]-ax[i]-g.r[i]) > 1e-6*(1+math.Abs(g.r[i])) {
			return fmt.Errorf("cg: internal residual diverges from b-Ax at %d", i)
		}
	}
	return nil
}
