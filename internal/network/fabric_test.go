package network

import (
	"testing"
	"testing/quick"

	"spasm/internal/sim"
)

func TestXmitBasicTiming(t *testing.T) {
	f := NewFabric(NewFull(4))
	x := f.Reserve(0, 0, 1, 32)
	if x.Start != 0 || x.Latency != 32*sim.SerialByte || x.Wait != 0 {
		t.Errorf("idle xmit = %+v", x)
	}
	if x.End != sim.Micros(1.6) {
		t.Errorf("32-byte message end = %v, want 1.6us", x.End)
	}
}

func TestSameLinkSerializes(t *testing.T) {
	f := NewFabric(NewFull(4))
	x1 := f.Reserve(0, 0, 1, 32)
	x2 := f.Reserve(0, 0, 1, 32) // same pair, same link
	if x2.Start != x1.End {
		t.Errorf("second message starts at %v, want %v", x2.Start, x1.End)
	}
	if x2.Wait != x1.Latency {
		t.Errorf("second message waited %v, want %v", x2.Wait, x1.Latency)
	}
}

func TestInjectionPortSerializes(t *testing.T) {
	// Distinct destinations from the same source contend for the
	// source injection port even on the fully connected network.
	f := NewFabric(NewFull(4))
	x1 := f.Reserve(0, 0, 1, 32)
	x2 := f.Reserve(0, 0, 2, 32)
	if x2.Start != x1.End {
		t.Errorf("injection not serialized: %+v after %+v", x2, x1)
	}
}

func TestEjectionPortSerializes(t *testing.T) {
	// Distinct sources to the same destination contend for the
	// destination ejection port (hot-spot contention on full network).
	f := NewFabric(NewFull(4))
	x1 := f.Reserve(0, 1, 3, 32)
	x2 := f.Reserve(0, 2, 3, 32)
	if x2.Start != x1.End {
		t.Errorf("ejection not serialized: %+v after %+v", x2, x1)
	}
}

func TestDisjointPathsParallel(t *testing.T) {
	f := NewFabric(NewFull(4))
	x1 := f.Reserve(0, 0, 1, 32)
	x2 := f.Reserve(0, 2, 3, 32)
	if x2.Start != 0 || x2.Wait != 0 {
		t.Errorf("disjoint transfer delayed: %+v", x2)
	}
	_ = x1
}

func TestMeshSharedLinkContention(t *testing.T) {
	m := NewMesh(16) // 4x4, XY routing
	f := NewFabric(m)
	// 0->3 uses east links of row 0; 1->2 shares the link 1->2.
	x1 := f.Reserve(0, 0, 3, 32)
	x2 := f.Reserve(0, 1, 2, 32)
	if x2.Wait == 0 {
		t.Error("overlapping mesh routes did not contend")
	}
	_ = x1
}

func TestCircuitHeldWholeDuration(t *testing.T) {
	// Circuit switching: a long message holds all its links for the
	// full transmission, so a later message sharing ANY link waits for
	// the whole transfer.
	m := NewMesh(16)
	f := NewFabric(m)
	x1 := f.Reserve(0, 0, 3, 32) // holds links (0,1),(1,2),(2,3) until 1.6us
	x2 := f.Reserve(100, 2, 3, 8)
	if x2.Start != x1.End {
		t.Errorf("later message entered a held circuit: %+v vs %+v", x2, x1)
	}
}

func TestSwitchDelayCharged(t *testing.T) {
	c := NewCube(8)
	f := NewFabric(c)
	f.SwitchDelay = 10
	x := f.Reserve(0, 0, 7, 8) // 3 hops
	want := 8*sim.SerialByte + 3*10
	if x.Latency != want {
		t.Errorf("latency = %v, want %v", x.Latency, want)
	}
}

func TestFabricCounters(t *testing.T) {
	f := NewFabric(NewFull(4))
	f.Reserve(0, 0, 1, 32)
	f.Reserve(0, 1, 2, 8)
	if f.Messages != 2 || f.Bytes != 40 {
		t.Errorf("messages=%d bytes=%d", f.Messages, f.Bytes)
	}
}

func TestSendBlocksProcess(t *testing.T) {
	e := sim.NewEngine()
	f := NewFabric(NewFull(4))
	e.Spawn("sender", func(p *sim.Proc) {
		x := f.Send(p, 0, 1, 32)
		if p.Now() != x.End {
			t.Errorf("process at %v after send ending %v", p.Now(), x.End)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDegradedLinkSlowsCircuit(t *testing.T) {
	m := NewMesh(16)
	f := NewFabric(m)
	healthy := f.Reserve(0, 0, 3, 32)
	f.Degrade(m.Route(0, 3)[1], 4) // second east link on the path
	slow := f.Reserve(healthy.End, 0, 3, 32)
	if slow.Latency != 4*healthy.Latency {
		t.Errorf("degraded latency %v, want 4x %v", slow.Latency, healthy.Latency)
	}
	// A route avoiding the degraded link is unaffected.
	other := f.Reserve(slow.End, 4, 7, 32)
	if other.Latency != healthy.Latency {
		t.Errorf("unaffected route latency %v", other.Latency)
	}
}

func TestDegradeValidation(t *testing.T) {
	f := NewFabric(NewFull(4))
	mustPanicT(t, func() { f.Degrade(-1, 2) })
	mustPanicT(t, func() { f.Degrade(10000, 2) })
	mustPanicT(t, func() { f.Degrade(1, 0) })
}

func TestZeroByteMessagePanics(t *testing.T) {
	f := NewFabric(NewFull(4))
	mustPanicT(t, func() { f.Reserve(0, 0, 1, 0) })
}

// Property: a reservation never starts before the requested time, never
// waits negative time, and resource free-times are monotone per resource.
func TestReserveProperty(t *testing.T) {
	f := func(msgs []struct {
		Now  uint16
		S, D uint8
		B    uint8
	}) bool {
		fab := NewFabric(NewMesh(16))
		var now sim.Time
		for _, m := range msgs {
			now += sim.Time(m.Now) // issue times non-decreasing, as in a real run
			src := int(m.S) % 16
			dst := int(m.D) % 16
			if src == dst {
				continue
			}
			bytes := int(m.B)%32 + 1
			x := fab.Reserve(now, src, dst, bytes)
			if x.Start < now || x.Wait != x.Start-now || x.End != x.Start+x.Latency {
				return false
			}
			if x.Latency != sim.Time(bytes)*sim.SerialByte {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
