package app

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"spasm/internal/machine"
	"spasm/internal/mem"
	"spasm/internal/runpool"
	"spasm/internal/sim"
	"spasm/internal/stats"
)

// Failure-containment sentinels: how a controlled run reports that it
// was stopped rather than finished.  Both wrap the engine's cooperative
// abort, so by the time either is returned every simulated-process
// goroutine has unwound — a stopped run leaks nothing.
var (
	// ErrRunTimeout marks a run aborted by RunControl.Timeout.
	ErrRunTimeout = errors.New("run exceeded its wall-clock timeout")
	// ErrRunCanceled marks a run aborted by RunControl.Cancel.
	ErrRunCanceled = errors.New("run canceled")
)

// RunControl carries the failure-containment knobs of one run.  The
// zero value means "run to completion" and costs nothing — the watchdog
// goroutine only exists when a knob is set.
type RunControl struct {
	// Timeout bounds the run's wall-clock execution; past it the engine
	// is interrupted and the run fails with ErrRunTimeout.
	Timeout time.Duration
	// Cancel, when non-nil, aborts the run with ErrRunCanceled once the
	// channel is closed.
	Cancel <-chan struct{}
	// Workers > 1 requests the conservative parallel execution mode:
	// span bodies overlap on up to Workers goroutines while all shared
	// state commits in sequential dispatch order, so results are
	// bit-identical to a sequential run.  The engine falls back to the
	// sequential kernel when the machine or instrumentation is
	// incompatible (see Result.Par).  0 or 1 means sequential.
	Workers int
}

func (c RunControl) enabled() bool { return c.Timeout > 0 || c.Cancel != nil }

// Ctx is the shared context of one program run: the address space the
// program allocates into, the machine it runs on, and the statistics it
// accumulates.  Programs allocate their shared data and synchronization
// objects in Setup and keep references to them for Body.
type Ctx struct {
	P     int
	Space *mem.Space
	M     machine.Machine
	Run   *stats.Run
	Eng   *sim.Engine
	// Phases holds the per-phase overhead profile, populated when the
	// program marks phase boundaries with Proc.Phase.
	Phases *PhaseProfile
}

// Program is a parallel application.  Setup runs once (unsimulated) to
// allocate shared data; Body runs once per simulated processor, in
// parallel in simulated time.  Check, if non-nil, verifies the computed
// result after the run (the execution-driven applications compute real
// values in host memory alongside their simulated references).
type Program interface {
	// Name identifies the application ("ep", "is", "fft", "cg",
	// "cholesky", ...).
	Name() string
	// Setup allocates shared arrays and synchronization objects.
	Setup(c *Ctx)
	// Body is the per-processor program.
	Body(p *Proc)
	// Check validates the application's computed results; it returns
	// an error describing the first inconsistency.
	Check() error
}

// Result bundles a run's statistics with its configuration, the machine
// it ran on, and the address space it allocated (for post-run
// inspection: invariant checks, network counters, trace metadata).
type Result struct {
	Program string
	Config  machine.Config
	Stats   *stats.Run
	Machine machine.Machine
	Space   *mem.Space
	// Phases is the per-phase overhead profile (empty unless the
	// program marks phases).
	Phases *PhaseProfile
	// Escalation records an adaptive-fidelity decision, when the run was
	// made through an adaptive runner (nil otherwise): which network tier
	// the run started on, whether the contention threshold tripped, and
	// which tier produced the statistics this Result carries.
	Escalation *Escalation
	// Par reports the parallel-execution outcome when RunControl.Workers
	// requested it (nil otherwise): whether the run actually executed in
	// windowed parallel mode, or why it fell back to the sequential
	// kernel.  Either way the statistics are identical.
	Par *sim.ParReport
}

// Escalation is the record of one adaptive-fidelity decision.  A run
// that starts on the flow tier watches the bottleneck occupancy of every
// flow it admits; when the occupancy reaches ThresholdPct the run is
// abandoned and redone on the detailed target machine, so the cheap
// model is trusted exactly while it sees no contention worth modeling
// per hop.
type Escalation struct {
	// From and To are the network tiers the run started and finished on;
	// they are equal when the threshold never tripped.
	From, To machine.Kind
	// ThresholdPct is the bottleneck-occupancy percentage that arms the
	// escalation: 0 trips on the first flow admitted, 100 never trips
	// (flow occupancy is strictly below 100).
	ThresholdPct int
	// Tripped reports whether the threshold fired.
	Tripped bool
	// At is the simulated time of the first threshold crossing (0 when
	// the run never tripped).
	At sim.Time
	// Share is the bottleneck share count that crossed the threshold.
	Share int
}

// Instrument observes one run from the inside.  Attach is called after
// the machine is built but before any process is spawned; Finish is
// called once the simulation has completed successfully, with the final
// result.  Implementations (the telemetry profiler in internal/probe
// above all) hook the engine clock and the machine's network from
// Attach; everything an Instrument records must be a function of the
// run's configuration alone, so instrumented runs stay deterministic.
type Instrument interface {
	Attach(cfg machine.Config, eng *sim.Engine, run *stats.Run, m machine.Machine)
	Finish(res *Result)
}

// Run executes prog on a machine built from cfg with cfg.P processors
// and returns the accumulated statistics.  The simulation is
// deterministic: identical programs and configurations produce identical
// results.
func Run(prog Program, cfg machine.Config) (*Result, error) {
	return RunInstrumented(prog, cfg, nil, nil)
}

// RunWrapped is Run with a machine decorator: wrap (if non-nil) receives
// the configured machine and returns the machine the program actually
// drives — the hook used by trace recording and other instrumentation.
func RunWrapped(prog Program, cfg machine.Config, wrap func(machine.Machine) machine.Machine) (*Result, error) {
	return RunInstrumented(prog, cfg, wrap, nil)
}

// RunInstrumented is RunWrapped with an attached Instrument.  The
// instrument observes the *underlying* machine (before wrap), so a
// decorator like the trace recorder does not hide the network from it.
func RunInstrumented(prog Program, cfg machine.Config, wrap func(machine.Machine) machine.Machine, inst Instrument) (*Result, error) {
	if cfg.P < 1 {
		return nil, fmt.Errorf("app: run with P=%d", cfg.P)
	}
	blockBytes := cfg.Cache.BlockBytes
	if blockBytes == 0 {
		blockBytes = mem.DefaultBlockBytes
	}
	space := mem.NewSpace(cfg.P, blockBytes)
	eng := sim.NewEngine()
	bind := func() (machine.Machine, error) { return machine.New(cfg, space) }
	return runOn(prog, cfg, space, eng, bind, wrap, inst, RunControl{})
}

// RunControlled is Run bounded by ctl: the watchdog interrupts the
// engine on timeout or cancellation, and the run fails with
// ErrRunTimeout or ErrRunCanceled (wrapped with the run's identity).
func RunControlled(prog Program, cfg machine.Config, ctl RunControl) (*Result, error) {
	if cfg.P < 1 {
		return nil, fmt.Errorf("app: run with P=%d", cfg.P)
	}
	blockBytes := cfg.Cache.BlockBytes
	if blockBytes == 0 {
		blockBytes = mem.DefaultBlockBytes
	}
	space := mem.NewSpace(cfg.P, blockBytes)
	eng := sim.NewEngine()
	bind := func() (machine.Machine, error) { return machine.New(cfg, space) }
	return runOn(prog, cfg, space, eng, bind, nil, nil, ctl)
}

// RunPooled is Run on a pooled context: the engine, address space, and
// machine come from pool (reset in place) instead of being constructed,
// so a sweep pays machine construction once per configuration.  Results
// are bit-for-bit identical to Run's.  The returned Result's Machine and
// Space reference pooled state: they stay readable only until the pool
// hands the same context to another run, while Result.Stats and
// Result.Phases are freshly allocated and safe to keep.  A nil pool
// falls back to Run.
func RunPooled(prog Program, cfg machine.Config, pool *runpool.Pool) (*Result, error) {
	return RunPooledControlled(prog, cfg, pool, RunControl{})
}

// RunPooledControlled is RunPooled bounded by ctl.  Its pool discipline
// differs from RunPooled's on failure: a context whose run did not
// complete cleanly — aborted, panicked, deadlocked, or failed its result
// check — is Discarded rather than returned to the freelist, because the
// reset invariants the pool relies on (docs/INTERNALS.md §9) are only
// established for state a run finished with.  Successful runs Put their
// context back as usual.
func RunPooledControlled(prog Program, cfg machine.Config, pool *runpool.Pool, ctl RunControl) (*Result, error) {
	return RunPooledInstrumented(prog, cfg, pool, ctl, nil)
}

// RunPooledInstrumented is RunPooledControlled with an attached
// Instrument (the hook the adaptive-fidelity runner uses to watch the
// flow tier's contention from inside a pooled run).  A nil pool falls
// back to a fresh, unpooled run with the same instrument and control.
func RunPooledInstrumented(prog Program, cfg machine.Config, pool *runpool.Pool, ctl RunControl, inst Instrument) (*Result, error) {
	if pool == nil {
		if cfg.P < 1 {
			return nil, fmt.Errorf("app: run with P=%d", cfg.P)
		}
		blockBytes := cfg.Cache.BlockBytes
		if blockBytes == 0 {
			blockBytes = mem.DefaultBlockBytes
		}
		space := mem.NewSpace(cfg.P, blockBytes)
		eng := sim.NewEngine()
		bind := func() (machine.Machine, error) { return machine.New(cfg, space) }
		return runOn(prog, cfg, space, eng, bind, nil, inst, ctl)
	}
	ctx, err := pool.Get(cfg)
	if err != nil {
		return nil, err
	}
	res, err := runOn(prog, cfg, ctx.Space, ctx.Eng, ctx.Bind, nil, inst, ctl)
	if err != nil {
		pool.Discard(ctx)
		return nil, err
	}
	pool.Put(ctx)
	return res, nil
}

// runOn is the shared run core: set up the program in space, bind the
// machine (construction for fresh runs, an in-place reset for pooled
// ones — deferred until after Setup because the coherence directory is
// sized from the space footprint), spawn one process per node, and drive
// the event loop to completion.
//
// When ctl is enabled, a watchdog goroutine interrupts the engine on
// timeout or cancellation; the resulting cooperative abort unwinds every
// process goroutine and the run fails with ErrRunTimeout or
// ErrRunCanceled.  The watchdog is joined before runOn returns, so a
// late Interrupt can never poison a subsequent run on the same (pooled)
// engine.
func runOn(prog Program, cfg machine.Config, space *mem.Space, eng *sim.Engine,
	bind func() (machine.Machine, error),
	wrap func(machine.Machine) machine.Machine, inst Instrument, ctl RunControl) (*Result, error) {
	run := stats.NewRun(cfg.P)
	ctx := &Ctx{P: cfg.P, Space: space, Run: run, Eng: eng, Phases: newPhaseProfile()}

	if err := setupSafely(prog, ctx); err != nil {
		return nil, err
	}

	m, err := bind()
	if err != nil {
		return nil, err
	}
	base := m // the underlying machine: instruments and the network
	// backend readout see it even when a decorator wraps the run.
	if inst != nil {
		inst.Attach(cfg, eng, run, m)
	}
	if wrap != nil {
		m = wrap(m)
	}
	ctx.M = m

	for i := 0; i < cfg.P; i++ {
		i := i
		eng.Spawn(fmt.Sprintf("%s/p%d", prog.Name(), i), func(sp *sim.Proc) {
			p := &Proc{ID: i, S: sp, M: m, St: &run.Procs[i], Ctx: ctx}
			prog.Body(p)
			p.closePhase()
			// The run totals are shared: commit them in dispatch order.
			sp.Ordered(func() { run.Finish(i, sp.Now()) })
		})
	}

	if ctl.Workers > 1 {
		// Arm the conservative parallel mode.  The engine still decides
		// at Run time (probes set Tick, watchdogs set MaxTime, small
		// machines have too few processes); machine decorators observe
		// call order, which windowed execution does not preserve outside
		// ordered sections, so they force the sequential kernel.
		if wrap != nil {
			eng.ForceSequential("machine-decorator")
		}
		plan := machine.ParPlanFor(cfg, ctl.Workers)
		if plan.Fallback != "" {
			eng.ForceSequential(plan.Fallback)
		}
		eng.SetParallel(ctl.Workers, plan.Lookahead, plan.DomainOf)
		if eng.WillRunParallel() {
			// Span bodies resolve homes outside ordered sections; freeze
			// the memo so those lookups are read-only.
			space.FreezeHomes()
		}
	}

	var timedOut, wasCanceled atomic.Bool
	if ctl.enabled() {
		watch := make(chan struct{})
		watchDone := make(chan struct{})
		var timer <-chan time.Time
		var stop func() bool
		if ctl.Timeout > 0 {
			tm := time.NewTimer(ctl.Timeout)
			timer = tm.C
			stop = tm.Stop
		}
		go func() {
			defer close(watchDone)
			select {
			case <-timer:
				timedOut.Store(true)
				eng.Interrupt()
			case <-ctl.Cancel:
				wasCanceled.Store(true)
				eng.Interrupt()
			case <-watch:
			}
		}()
		defer func() {
			close(watch)
			<-watchDone
			if stop != nil {
				stop()
			}
		}()
	}

	t0 := time.Now()
	if err := eng.Run(); err != nil {
		var ab *sim.AbortError
		if errors.As(err, &ab) {
			switch {
			case timedOut.Load():
				err = fmt.Errorf("%w after %v (simulated time %v)", ErrRunTimeout, ctl.Timeout, ab.At)
			case wasCanceled.Load():
				err = fmt.Errorf("%w (simulated time %v)", ErrRunCanceled, ab.At)
			}
		}
		return nil, fmt.Errorf("app: %s on %v/%s p=%d: %w",
			prog.Name(), cfg.Kind, cfg.Topology, cfg.P, err)
	}
	run.Wall = time.Since(t0)
	run.SimEvents = eng.Events
	if b, ok := base.(machine.Backend); ok {
		if net := b.Network(); net != nil {
			run.NetEvents = net.Stats().ModelEvents
		}
	}

	if err := prog.Check(); err != nil {
		return nil, fmt.Errorf("app: %s result check failed: %w", prog.Name(), err)
	}
	res := &Result{
		Program: prog.Name(),
		Config:  cfg,
		Stats:   run,
		Machine: m,
		Space:   space,
		Phases:  ctx.Phases,
	}
	if rep := eng.ParReport(); rep.Requested > 1 {
		res.Par = &rep
	}
	if inst != nil {
		inst.Finish(res)
	}
	return res, nil
}

// setupSafely runs prog.Setup, converting panics (bad sizes, invalid
// parameters) into errors so a misconfigured program fails its run
// rather than the whole process.
func setupSafely(prog Program, ctx *Ctx) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("app: %s setup panicked: %v", prog.Name(), r)
		}
	}()
	prog.Setup(ctx)
	return nil
}
