package exp

import (
	"math"
	"testing"

	"spasm/internal/apps"
	"spasm/internal/machine"
)

func syntheticResult(num int, target, clogp, logp []float64) *FigureResult {
	fig, _ := ByNumber(num)
	fr := &FigureResult{Figure: fig}
	add := func(kind machine.Kind, vals []float64) {
		s := Series{Machine: kind}
		for i, v := range vals {
			s.Points = append(s.Points, Point{P: 1 << (i + 1), Value: v})
		}
		fr.Series = append(fr.Series, s)
	}
	add(machine.LogP, logp)
	add(machine.CLogP, clogp)
	add(machine.Target, target)
	return fr
}

func TestAccuracyRatios(t *testing.T) {
	fr := syntheticResult(1,
		[]float64{100, 200}, // target
		[]float64{200, 400}, // clogp: exactly 2x
		[]float64{400, 800}, // logp: exactly 4x
	)
	rows := Accuracy([]*FigureResult{fr})
	if len(rows) != 1 {
		t.Fatalf("%d rows", len(rows))
	}
	if math.Abs(rows[0].CLogPRatio-2) > 1e-12 || math.Abs(rows[0].LogPRatio-4) > 1e-12 {
		t.Errorf("ratios = %+v", rows[0])
	}
	if !rows[0].CLogPTrend || !rows[0].LogPTrend {
		t.Error("parallel curves must agree in trend")
	}
}

func TestAccuracyTrendDisagreement(t *testing.T) {
	fr := syntheticResult(10,
		[]float64{100, 200, 300}, // target rising
		[]float64{100, 150, 200}, // clogp rising: agrees
		[]float64{300, 200, 100}, // logp falling: disagrees
	)
	rows := Accuracy([]*FigureResult{fr})
	if !rows[0].CLogPTrend {
		t.Error("rising clogp marked disagreeing")
	}
	if rows[0].LogPTrend {
		t.Error("falling logp marked agreeing")
	}
}

func TestSummarizeGroupsByMetric(t *testing.T) {
	frs := []*FigureResult{
		syntheticResult(1, []float64{100}, []float64{200}, []float64{400}),  // latency
		syntheticResult(2, []float64{100}, []float64{50}, []float64{100}),   // latency
		syntheticResult(6, []float64{100}, []float64{300}, []float64{300}),  // contention
		syntheticResult(12, []float64{100}, []float64{110}, []float64{120}), // exec
	}
	sums := Summarize(Accuracy(frs))
	if len(sums) != 3 {
		t.Fatalf("%d summaries", len(sums))
	}
	for _, s := range sums {
		switch s.Metric {
		case LatencyOvh:
			if s.N != 2 {
				t.Errorf("latency N = %d", s.N)
			}
			// geometric mean of 2 and 0.5 = 1.
			if math.Abs(s.CLogPRatio-1) > 1e-12 {
				t.Errorf("latency clogp ratio = %v", s.CLogPRatio)
			}
		case ContentionOvh:
			if s.N != 1 || math.Abs(s.CLogPRatio-3) > 1e-12 {
				t.Errorf("contention summary %+v", s)
			}
		case ExecTime:
			if s.N != 1 || s.CLogPTrendPct != 100 {
				t.Errorf("exec summary %+v", s)
			}
		}
	}
}

// TestAccuracyEndToEnd computes the dashboard on real tiny-scale runs
// and asserts the paper's headline: the locality abstraction (CLogP) is
// uniformly more accurate than ignoring locality (LogP) on latency.
func TestAccuracyEndToEnd(t *testing.T) {
	s := NewSession(Options{Scale: apps.Tiny, Procs: []int{4, 8}, Parallel: 4})
	frs, err := s.AllFigures()
	if err != nil {
		t.Fatal(err)
	}
	sums := Summarize(Accuracy(frs))
	for _, sum := range sums {
		if sum.Metric != LatencyOvh {
			continue
		}
		cErr := math.Abs(math.Log(sum.CLogPRatio))
		lErr := math.Abs(math.Log(sum.LogPRatio))
		if cErr >= lErr {
			t.Errorf("latency: CLogP error %.3f not below LogP %.3f", cErr, lErr)
		}
		if sum.CLogPTrendPct < 80 {
			t.Errorf("CLogP latency trend agreement only %.0f%%", sum.CLogPTrendPct)
		}
	}
}
