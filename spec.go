package spasm

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"spasm/internal/app"
	"spasm/internal/apps"
	"spasm/internal/machine"
	"spasm/internal/network"
	"spasm/internal/probe"
)

// Spec is the canonical description of one simulation run: the
// application, its scale and input seed, and the machine
// characterization it runs on.  A run is a deterministic function of its
// Spec — identical specs produce identical statistics — which is what
// makes specs content-addressable: Key and Hash give every semantically
// identical spec the same identity, so caches, trace/replay tooling and
// the spasmd service can all name runs by content.
//
// The zero value of every optional field means "the paper's default"
// (Topology "full", Seed 1, PortMode Combined, Protocol Berkeley);
// Canonical makes the defaults explicit.  App and P are mandatory.
type Spec struct {
	// App names the application ("cg", "cholesky", "ep", "fft", "is",
	// or an extension workload such as "mg").
	App string
	// Scale selects the problem size (Tiny, Small, Medium).
	Scale Scale
	// Seed varies the synthetic inputs (0 means the paper's seed, 1).
	Seed int64
	// Machine selects the characterization (Ideal, LogP, CLogP, Target).
	Machine Kind
	// Topology names the network ("" means "full"; also "cube", "mesh",
	// and the extension topologies "ring" and "torus").
	Topology string
	// P is the number of processors (mandatory, >= 1).
	P int
	// PortMode selects the LogP g-gap discipline (default Combined).
	PortMode PortMode
	// Protocol selects the coherence protocol (default Berkeley).
	Protocol Protocol
	// Adaptive arms fidelity escalation: the run starts on the flow
	// network tier (Machine must be Flow) and is redone on the detailed
	// target machine if any flow's bottleneck occupancy reaches
	// EscalatePct.  The decision is recorded on the Result (and in the
	// spasmd RunDoc).
	Adaptive bool
	// EscalatePct is the bottleneck-occupancy percentage (0-100) that
	// triggers escalation: 0 escalates on the first flow admitted, 100
	// never escalates.  Meaningful only with Adaptive.
	EscalatePct int
	// Workers requests conservative parallel host execution: the
	// simulation runs its processes on up to Workers OS threads behind an
	// ordered commit gate that keeps results bit-identical to the
	// sequential kernel (0 or 1 means sequential).  Because results are
	// identical by construction, Workers is an execution knob, not part of
	// the run's identity: it is excluded from Key and Hash, and two specs
	// differing only in Workers share one content address.  Machine kinds
	// whose minimum cross-process latency is zero (Target, CLogP) fall
	// back to the sequential kernel; the decision is recorded on
	// Result.Par.
	Workers int
}

// Canonical returns the spec with every defaulted field made explicit.
// Two specs that differ only in whether defaults are spelled out have
// the same canonical form, and therefore the same Key and Hash.
func (s Spec) Canonical() Spec {
	if s.Topology == "" {
		s.Topology = "full"
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if !s.Adaptive {
		// EscalatePct is meaningless without Adaptive; zeroing it keeps
		// semantically identical specs on one key.
		s.EscalatePct = 0
	}
	if s.Workers < 0 {
		// Negative worker counts mean the same thing as 0: sequential.
		s.Workers = 0
	}
	return s
}

// Validate checks every enumerated field of the spec against its set of
// known values, reporting the valid choices for any it rejects;
// topology/processor-count compatibility (e.g. the cube needing a power
// of two) is checked when the run is built.
func (s Spec) Validate() error {
	if s.App == "" {
		return fmt.Errorf("spasm: spec has no application (have %v + %v)", Apps(), ExtendedApps())
	}
	if !knownApp(s.App) {
		return fmt.Errorf("spasm: unknown application %q (have %v + %v)", s.App, Apps(), ExtendedApps())
	}
	if s.Scale < Tiny || s.Scale > Medium {
		return fmt.Errorf("spasm: unknown scale %v (have tiny, small, medium)", s.Scale)
	}
	if !knownKind(s.Machine) {
		return fmt.Errorf("spasm: unknown machine %v (have %v)", s.Machine, machine.Kinds())
	}
	if topo := s.Canonical().Topology; !knownTopology(topo) {
		return fmt.Errorf("spasm: unknown topology %q (have %v)", topo, network.Names())
	}
	if s.P < 1 {
		return fmt.Errorf("spasm: spec needs P >= 1, got %d", s.P)
	}
	if max := machine.MaxPFor(s.Machine); s.P > max {
		return fmt.Errorf("spasm: P=%d exceeds the %v machine's limit of %d processors",
			s.P, s.Machine, max)
	}
	if s.PortMode != CombinedGap && s.PortMode != PerClassGap {
		return fmt.Errorf("spasm: unknown port mode %v (have combined, per-class)", s.PortMode)
	}
	if s.Protocol < BerkeleyProtocol || s.Protocol > UpdateProtocol {
		return fmt.Errorf("spasm: unknown protocol %v (have berkeley, msi, update)", s.Protocol)
	}
	if s.EscalatePct < 0 || s.EscalatePct > 100 {
		return fmt.Errorf("spasm: escalation threshold %d%% outside 0-100", s.EscalatePct)
	}
	if s.Adaptive && s.Machine != Flow {
		return fmt.Errorf("spasm: adaptive fidelity starts on the flow tier; spec has machine %v (want %v)",
			s.Machine, Flow)
	}
	if s.Workers > MaxWorkers {
		return fmt.Errorf("spasm: %d workers exceeds the limit of %d", s.Workers, MaxWorkers)
	}
	return nil
}

// MaxWorkers bounds Spec.Workers (and the spasmd wire field): worker
// counts beyond any plausible core count are rejected rather than
// silently spawning an absurd goroutine release window.
const MaxWorkers = 256

func knownKind(k Kind) bool {
	for _, v := range machine.Kinds() {
		if v == k {
			return true
		}
	}
	return false
}

func knownTopology(name string) bool {
	for _, n := range network.Names() {
		if n == name {
			return true
		}
	}
	return false
}

func knownApp(name string) bool {
	for _, n := range apps.Names() {
		if n == name {
			return true
		}
	}
	for _, n := range apps.ExtendedNames() {
		if n == name {
			return true
		}
	}
	return false
}

// Key returns the spec's canonical string form: a fixed field order with
// all defaults made explicit, so any two semantically identical specs —
// however they were constructed — yield byte-identical keys.  It is
// stable across processes and releases of this package, making it safe
// to persist (result caches, trace archives, replay manifests).
func (s Spec) Key() string {
	c := s.Canonical()
	return fmt.Sprintf("app=%s scale=%v seed=%d machine=%v topo=%s p=%d port=%v proto=%v adaptive=%t esc=%d",
		c.App, c.Scale, c.Seed, c.Machine, c.Topology, c.P, c.PortMode, c.Protocol,
		c.Adaptive, c.EscalatePct)
}

// Hash returns the hex SHA-256 of Key — the spec's content address.
// The spasmd service uses it as the run ID.
func (s Spec) Hash() string {
	sum := sha256.Sum256([]byte(s.Key()))
	return hex.EncodeToString(sum[:])
}

// Config returns the machine configuration the spec describes.
func (s Spec) Config() Config {
	c := s.Canonical()
	return Config{
		Kind:     c.Machine,
		Topology: c.Topology,
		P:        c.P,
		PortMode: c.PortMode,
		Protocol: c.Protocol,
	}
}

// RunSpec builds and simulates the run a canonical spec describes.  It
// is equivalent to Run (or RunExtended, for extension workloads) with
// the spec's fields, and exists so that everything content-addressed by
// Spec.Key — the spasmd result cache above all — executes runs through
// one canonical path.
func RunSpec(spec Spec) (*Result, error) {
	return RunSpecControlled(spec, nil, RunControl{})
}

// newProgram builds the program a spec names, trying the paper suite
// first and the extension workloads second.
func newProgram(spec Spec) (app.Program, error) {
	prog, err := apps.New(spec.App, spec.Scale, spec.Seed)
	if err != nil {
		var extErr error
		prog, extErr = apps.NewExtended(spec.App, spec.Scale, spec.Seed)
		if extErr != nil {
			return nil, err
		}
	}
	return prog, nil
}

// RunSpecProfiled is RunSpec with a telemetry profiler attached; it is
// the canonical path behind the spasmd /v1/runs/{id}/profile endpoint.
// Profiles inherit RunSpec's determinism: the same spec always yields a
// byte-identical encoded profile.  An adaptive spec resolves its network
// tier first (the flow attempt, escalating on the contention threshold
// exactly as RunSpec does) and the resolved tier's run is the one
// profiled, so the profile always describes the run whose statistics
// are returned.
func RunSpecProfiled(spec Spec) (*Result, *Profile, error) {
	spec = spec.Canonical()
	if err := spec.Validate(); err != nil {
		return nil, nil, err
	}
	if spec.Adaptive {
		res, err := RunSpec(spec)
		if err != nil {
			return nil, nil, err
		}
		resolved := spec
		resolved.Adaptive = false
		resolved.EscalatePct = 0
		resolved.Machine = res.Config.Kind
		prof, err := profileSpec(resolved)
		if err != nil {
			return nil, nil, err
		}
		// Identical specs yield identical runs, so the profiled rerun's
		// statistics match the adaptive run's; the escalation record is
		// carried over onto the profiled result.
		prof.res.Escalation = res.Escalation
		return prof.res, prof.profile, nil
	}
	prog, err := newProgram(spec)
	if err != nil {
		return nil, nil, err
	}
	pr := probe.New(probe.Config{})
	res, err := app.RunInstrumented(prog, spec.Config(), nil, pr)
	if err != nil {
		return nil, nil, err
	}
	return res, pr.Profile(), nil
}

// profiledRun pairs a run with its telemetry profile.
type profiledRun struct {
	res     *Result
	profile *Profile
}

// profileSpec runs a non-adaptive spec with a profiler attached.
func profileSpec(spec Spec) (profiledRun, error) {
	prog, err := newProgram(spec)
	if err != nil {
		return profiledRun{}, err
	}
	pr := probe.New(probe.Config{})
	res, err := app.RunInstrumented(prog, spec.Config(), nil, pr)
	if err != nil {
		return profiledRun{}, err
	}
	return profiledRun{res, pr.Profile()}, nil
}
