// Package analytic implements the kind of closed-form queueing model of
// interconnection-network contention that the paper's related-work
// section contrasts with execution-driven simulation (Agarwal, "Limits
// on Interconnection Network Performance"; Dally, "Performance analysis
// of k-ary n-cube interconnection networks").
//
// The model treats every network resource — a node's injection port,
// each directed link, the destination's ejection port — as an M/D/1
// queue under uniform random traffic, and predicts the mean waiting time
// a message accumulates across its route.  Such models are useful
// exactly as far as their assumptions hold: the accompanying experiment
// validates the prediction against the detailed simulated network for
// uniform traffic and shows it collapsing for hot-spot traffic — the
// paper's argument for application-driven simulation in one picture.
package analytic

import (
	"fmt"

	"spasm/internal/network"
	"spasm/internal/sim"
)

// MeanRouteLength returns the average number of links on a route between
// distinct nodes, exactly (by enumeration).
func MeanRouteLength(t network.Topology) float64 {
	p := t.P()
	total := 0
	for s := 0; s < p; s++ {
		for d := 0; d < p; d++ {
			if s != d {
				total += t.Hops(s, d)
			}
		}
	}
	return float64(total) / float64(p*(p-1))
}

// UsedLinks returns the number of distinct directed links that appear on
// at least one route (on the mesh, edge nodes have fewer usable links
// than the id space suggests).
func UsedLinks(t network.Topology) int {
	p := t.P()
	seen := map[int]bool{}
	for s := 0; s < p; s++ {
		for d := 0; d < p; d++ {
			if s == d {
				continue
			}
			for _, l := range t.Route(s, d) {
				seen[l] = true
			}
		}
	}
	return len(seen)
}

// Load describes the offered traffic for a prediction.
type Load struct {
	// Rate is each node's message injection rate, in messages per
	// unit of simulated time.
	Rate float64
	// Service is the mean message service (transmission) time.
	Service sim.Time
}

// Prediction is the model's output.
type Prediction struct {
	// MeanRoute is the average hop count under uniform traffic.
	MeanRoute float64
	// PortRho and LinkRho are the utilizations of a node port and of
	// a link.
	PortRho float64
	LinkRho float64
	// WaitPerMessage is the predicted mean total waiting (contention)
	// time per message.
	WaitPerMessage float64
	// Saturated reports that some resource's utilization reached 1,
	// where the open queueing model has no finite solution.
	Saturated bool
}

// md1Wait returns the M/D/1 mean waiting time for utilization rho and
// deterministic service time s.
func md1Wait(rho float64, s float64) float64 {
	return rho * s / (2 * (1 - rho))
}

// Predict applies the model to uniform random traffic on t.
func Predict(t network.Topology, load Load) (Prediction, error) {
	if load.Rate <= 0 || load.Service <= 0 {
		return Prediction{}, fmt.Errorf("analytic: non-positive load %+v", load)
	}
	s := float64(load.Service)
	pr := Prediction{MeanRoute: MeanRouteLength(t)}

	// Ports: every message occupies its source injection port and its
	// destination ejection port for one service time.  Under uniform
	// traffic each node also *receives* at rate Rate, so both port
	// classes see the same utilization.
	pr.PortRho = load.Rate * s
	// Links: total link-visits per unit time = P * Rate * MeanRoute,
	// spread over the links that routes actually use.
	links := float64(UsedLinks(t))
	pr.LinkRho = float64(t.P()) * load.Rate * pr.MeanRoute * s / links

	if pr.PortRho >= 1 || pr.LinkRho >= 1 {
		pr.Saturated = true
		return pr, nil
	}
	pr.WaitPerMessage = 2*md1Wait(pr.PortRho, s) + pr.MeanRoute*md1Wait(pr.LinkRho, s)
	return pr, nil
}
