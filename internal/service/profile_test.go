package service_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"spasm"
	"spasm/internal/service"
	"spasm/internal/service/client"
)

// TestProfileEndpoint drives GET /v1/runs/{id}/profile end to end: a
// completed run serves its profile in all three formats, the binary
// form is byte-identical across fetches and matches a direct
// RunSpecProfiled encoding, and the second request is a memoization hit
// visible on /metrics.
func TestProfileEndpoint(t *testing.T) {
	_, cl := newTestService(t, service.Config{Workers: 2, CacheSize: 64})
	ctx := context.Background()

	req := service.RunRequest{App: "ep", Scale: "tiny", Machine: "target", Topology: "mesh", P: 4}
	st, err := cl.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != service.StateDone {
		t.Fatalf("run finished %s (%s)", st.State, st.Error)
	}

	// First fetch computes the profile; the JSON document must carry
	// the run's identity and a plausible epoch series.
	doc, err := cl.Profile(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if doc.App != "ep" || doc.Machine != "target" || doc.P != 4 {
		t.Fatalf("profile identity wrong: %+v", doc)
	}
	if len(doc.Epochs) == 0 {
		t.Fatal("profile has no epochs")
	}

	// The binary form is byte-identical across fetches, and identical
	// to profiling the same spec directly.
	raw1, err := cl.ProfileRaw(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	raw2, err := cl.ProfileRaw(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw1, raw2) {
		t.Fatal("binary profile not byte-identical across fetches")
	}
	_, direct, err := spasm.RunSpecProfiled(spasm.Spec{
		App: "ep", Scale: spasm.Tiny, Seed: 1, Machine: spasm.Target, Topology: "mesh", P: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := direct.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw1, buf.Bytes()) {
		t.Fatalf("served profile differs from direct encoding (%d vs %d bytes)",
			len(raw1), buf.Len())
	}
	if dec, err := spasm.DecodeProfile(bytes.NewReader(raw1)); err != nil {
		t.Fatal(err)
	} else if dec.App != "ep" || len(dec.Epochs) != len(doc.Epochs) {
		t.Fatalf("decoded binary profile inconsistent with JSON document")
	}

	// The CSV format serves with its content type and a header row.
	resp, err := http.Get(cl.BaseURL + "/v1/runs/" + st.ID + "/profile?format=csv")
	if err != nil {
		t.Fatal(err)
	}
	csv, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/csv" {
		t.Errorf("csv content type %q", ct)
	}
	if !strings.HasPrefix(string(csv), "epoch,start_us") {
		t.Errorf("csv missing header: %.60s", csv)
	}

	// Only the first request computed; the rest were memoization hits.
	page, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := client.MetricValue(page, "spasmd_profile_cache_misses_total"); !ok || v != 1 {
		t.Errorf("spasmd_profile_cache_misses_total = %v, want 1", v)
	}
	if v, ok := client.MetricValue(page, "spasmd_profile_cache_hits_total"); !ok || v < 3 {
		t.Errorf("spasmd_profile_cache_hits_total = %v, want >= 3", v)
	}
}

// TestProfileErrors covers the endpoint's failure surface: unknown ids,
// bad formats, and failed runs.
func TestProfileErrors(t *testing.T) {
	svc, cl := newTestService(t, service.Config{Workers: 1, CacheSize: 16})
	ctx := context.Background()

	if _, err := cl.Profile(ctx, strings.Repeat("0", 64)); !isStatus(err, http.StatusNotFound) {
		t.Errorf("unknown id: got %v, want 404", err)
	}

	// A run that fails deterministically serves 422 from its cached
	// failure (the paper's platforms need a power-of-two p).
	st, err := cl.Run(ctx, service.RunRequest{
		App: "fft", Scale: "tiny", Machine: "target", P: 3})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != service.StateFailed {
		t.Skipf("p=3 unexpectedly valid for fft/tiny; nothing to assert")
	}
	if _, err := cl.Profile(ctx, st.ID); !isStatus(err, http.StatusUnprocessableEntity) {
		t.Errorf("failed run: got %v, want 422", err)
	}

	// Bad ?format= on a good run is a 400.
	good, err := cl.Run(ctx, service.RunRequest{
		App: "ep", Scale: "tiny", Machine: "logp", Topology: "full", P: 2})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(cl.BaseURL + "/v1/runs/" + good.ID + "/profile?format=xml")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("format=xml: HTTP %d, want 400", resp.StatusCode)
	}

	// Server-side API: an in-flight id reports ErrRunActive (the tiny
	// run may already have completed, in which case success is legal —
	// but any error must be ErrRunActive).
	block, _, err := svc.Submit(spasm.Spec{
		App: "ep", Scale: spasm.Tiny, Seed: 99, Machine: spasm.Target, Topology: "full", P: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.Profile(block.ID()); err != nil && !errors.Is(err, service.ErrRunActive) {
		t.Errorf("in-flight profile: %v, want ErrRunActive or success", err)
	}
	<-block.Done()

	// Server-side API: an unknown id is ErrUnknownRun.
	if _, _, err := svc.Profile("deadbeef"); !errors.Is(err, service.ErrUnknownRun) {
		t.Errorf("unknown id via API: %v, want ErrUnknownRun", err)
	}
}

// TestRetryAfterAndRejectionMetrics checks the back-pressure headers:
// 503s carry Retry-After, and queue-full rejections are counted.
func TestRetryAfterAndRejectionMetrics(t *testing.T) {
	svc := service.New(service.Config{Workers: 1, QueueDepth: 1, CacheSize: 4})
	// Fill the single-slot queue with slow-ish jobs until one bounces.
	var rejected bool
	for i := 0; i < 64 && !rejected; i++ {
		_, _, err := svc.Submit(spasm.Spec{
			App: "fft", Scale: spasm.Tiny, Seed: int64(i + 1),
			Machine: spasm.Target, Topology: "full", P: 8})
		if errors.Is(err, service.ErrQueueFull) {
			rejected = true
		} else if err != nil {
			t.Fatal(err)
		}
	}
	page := svc.RenderMetrics()
	if v, ok := client.MetricValue(page, "spasmd_jobs_rejected_total"); rejected && (!ok || v < 1) {
		t.Errorf("spasmd_jobs_rejected_total = %v after a rejection, want >= 1", v)
	}
	if !rejected {
		t.Log("queue never filled; rejection counter not exercised")
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// Draining: POST /v1/runs answers 503 with the drain Retry-After.
	h := svc.Handler()
	req := httptest.NewRequest(http.MethodPost, "/v1/runs",
		strings.NewReader(`{"app":"ep","scale":"tiny","machine":"logp","topology":"full","p":2,"seed":12345}`))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining submit: HTTP %d, want 503", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "5" {
		t.Errorf("draining Retry-After = %q, want \"5\"", ra)
	}
}

// isStatus reports whether err is a client API error carrying the given
// HTTP status (the client formats them as "spasmd: HTTP <code>: ...").
func isStatus(err error, status int) bool {
	return err != nil && strings.Contains(err.Error(), fmt.Sprintf("HTTP %d", status))
}
