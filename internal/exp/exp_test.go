package exp

import (
	"errors"
	"strings"
	"testing"
	"time"

	"spasm/internal/app"
	"spasm/internal/apps"
	"spasm/internal/logp"
	"spasm/internal/machine"
	"spasm/internal/sim"
)

func tinySession() *Session {
	return NewSession(Options{Scale: apps.Tiny, Procs: []int{2, 4}})
}

func TestFigureRegistryComplete(t *testing.T) {
	if len(Figures) != 20 {
		t.Fatalf("%d figures, want 20", len(Figures))
	}
	for i, f := range Figures {
		if f.Num != i+1 {
			t.Errorf("figure %d out of order", f.Num)
		}
		if f.ID() == "" || f.Caption() == "" {
			t.Errorf("figure %d missing id/caption", f.Num)
		}
	}
	// Spot-check captions against the paper.
	checks := map[int]string{
		1:  "FFT on Full: Latency",
		7:  "IS on Mesh: Contention",
		11: "EP on Mesh: Contention",
		18: "CHOLESKY on Mesh: Execution Time",
	}
	for n, want := range checks {
		f, err := ByNumber(n)
		if err != nil || f.Caption() != want {
			t.Errorf("figure %d caption = %q, want %q", n, f.Caption(), want)
		}
	}
	if _, err := ByNumber(21); err == nil {
		t.Error("figure 21 should not exist")
	}
}

func TestEveryAppAndTopologyAppears(t *testing.T) {
	appsSeen := map[string]bool{}
	toposSeen := map[string]bool{}
	for _, f := range Figures {
		appsSeen[f.App] = true
		toposSeen[f.Topology] = true
	}
	for _, a := range []string{"ep", "is", "fft", "cg", "cholesky"} {
		if !appsSeen[a] {
			t.Errorf("app %s in no figure", a)
		}
	}
	for _, topo := range []string{"full", "cube", "mesh"} {
		if !toposSeen[topo] {
			t.Errorf("topology %s in no figure", topo)
		}
	}
}

func TestSessionCaching(t *testing.T) {
	s := tinySession()
	a, err := s.Run("ep", "full", machine.CLogP, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Run("ep", "full", machine.CLogP, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("cache miss on identical run")
	}
	c, err := s.Run("ep", "full", machine.CLogP, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different P hit the same cache entry")
	}
}

func TestFigureSweep(t *testing.T) {
	s := tinySession()
	fig, _ := ByNumber(3) // EP on full, latency — the cheapest app
	fr, err := s.Figure(fig)
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.Series) != 3 {
		t.Fatalf("%d series, want 3", len(fr.Series))
	}
	for _, series := range fr.Series {
		if len(series.Points) != 2 {
			t.Fatalf("%d points, want 2", len(series.Points))
		}
		for _, pt := range series.Points {
			if pt.Value < 0 || pt.Run == nil {
				t.Errorf("bad point %+v", pt)
			}
		}
	}
}

func TestValueExtraction(t *testing.T) {
	s := tinySession()
	r, err := s.Run("is", "full", machine.Target, 4)
	if err != nil {
		t.Fatal(err)
	}
	if Value(ExecTime, r) <= 0 {
		t.Error("exec time not positive")
	}
	if Value(LatencyOvh, r) <= 0 {
		t.Error("IS on target has zero latency overhead")
	}
	if got := Value(ExecTime, r); got != r.Total.Micros() {
		t.Errorf("exec value %v != total %v", got, r.Total.Micros())
	}
}

func TestMetricNames(t *testing.T) {
	if ExecTime.String() != "execution time" || LatencyOvh.String() != "latency" ||
		ContentionOvh.String() != "contention" {
		t.Error("metric names wrong")
	}
	if !strings.Contains(Metric(9).String(), "9") {
		t.Error("unknown metric name")
	}
}

func TestGapTableMatchesPaper(t *testing.T) {
	rows := GapTable([]int{16, 64})
	want := map[string]map[int]sim.Time{
		"full": {16: sim.Micros(0.2), 64: sim.Micros(0.05)},
		"cube": {16: sim.Micros(1.6), 64: sim.Micros(1.6)},
		"mesh": {16: sim.Micros(3.2), 64: sim.Micros(6.4)},
	}
	seen := 0
	for _, r := range rows {
		if w, ok := want[r.Topology][r.P]; ok {
			seen++
			if r.G != w {
				t.Errorf("g(%s, %d) = %v, want %v", r.Topology, r.P, r.G, w)
			}
		}
	}
	if seen != 6 {
		t.Errorf("gap table missing entries: %d of 6", seen)
	}
}

func TestSimulationCost(t *testing.T) {
	s := NewSession(Options{Scale: apps.Tiny, Procs: []int{4}})
	rows, err := s.SimulationCost("full", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Events == 0 {
			t.Errorf("%v: zero events", r.Machine)
		}
	}
}

func TestGapAblationShape(t *testing.T) {
	rows, err := GapAblation(apps.Tiny, 1, []int{4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		// The per-class discipline can only reduce gap-induced
		// contention relative to the combined port.
		if r.PerClassGap > r.CombinedGap {
			t.Errorf("p=%d: per-class %v > combined %v", r.P, r.PerClassGap, r.CombinedGap)
		}
	}
}

func TestMessageCounts(t *testing.T) {
	s := tinySession()
	counts, err := s.MessageCounts("fft", "full", 4)
	if err != nil {
		t.Fatal(err)
	}
	if counts[machine.LogP] <= counts[machine.CLogP] {
		t.Errorf("LogP messages %d not above CLogP %d (no locality abstraction?)",
			counts[machine.LogP], counts[machine.CLogP])
	}
}

func TestPortModePlumbing(t *testing.T) {
	com := NewSession(Options{Scale: apps.Tiny, Procs: []int{4},
		Machines: []machine.Kind{machine.LogP}, PortMode: logp.Combined})
	per := NewSession(Options{Scale: apps.Tiny, Procs: []int{4},
		Machines: []machine.Kind{machine.LogP}, PortMode: logp.PerClass})
	a, err := com.Run("is", "mesh", machine.LogP, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := per.Run("is", "mesh", machine.LogP, 4)
	if err != nil {
		t.Fatal(err)
	}
	if Value(ContentionOvh, a) < Value(ContentionOvh, b) {
		t.Errorf("combined contention %v below per-class %v",
			Value(ContentionOvh, a), Value(ContentionOvh, b))
	}
}

func TestParallelPrefetchIdenticalResults(t *testing.T) {
	serial := NewSession(Options{Scale: apps.Tiny, Procs: []int{2, 4}})
	parallel := NewSession(Options{Scale: apps.Tiny, Procs: []int{2, 4}, Parallel: 8})
	a, err := serial.AllFigures()
	if err != nil {
		t.Fatal(err)
	}
	b, err := parallel.AllFigures()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for si := range a[i].Series {
			for pi := range a[i].Series[si].Points {
				av := a[i].Series[si].Points[pi].Value
				bv := b[i].Series[si].Points[pi].Value
				if av != bv {
					t.Fatalf("%s series %d point %d: %v != %v",
						a[i].Figure.ID(), si, pi, av, bv)
				}
			}
		}
	}
}

func TestSpeedupStudy(t *testing.T) {
	s := NewSession(Options{Scale: apps.Tiny, Procs: []int{2, 4}})
	rows, err := s.Speedup("cg", "full", machine.Target, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Speedup <= 0 || r.Efficiency <= 0 {
			t.Errorf("degenerate row %+v", r)
		}
		// Real speedup cannot beat algorithmic speedup.
		if r.Speedup > r.AlgorithmicSpeedup*1.001 {
			t.Errorf("p=%d: speedup %.2f above algorithmic %.2f",
				r.P, r.Speedup, r.AlgorithmicSpeedup)
		}
		// Algorithmic speedup is bounded by P.
		if r.AlgorithmicSpeedup > float64(r.P)*1.001 {
			t.Errorf("p=%d: algorithmic speedup %.2f above P", r.P, r.AlgorithmicSpeedup)
		}
	}
	// EP (compute-bound) must scale better than IS (communication-
	// bound) on the target machine.
	epRows, err := s.Speedup("ep", "full", machine.Target, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	isRows, err := s.Speedup("is", "full", machine.Target, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	if epRows[0].Efficiency <= isRows[0].Efficiency {
		t.Errorf("EP efficiency %.2f not above IS %.2f",
			epRows[0].Efficiency, isRows[0].Efficiency)
	}
}

func TestCustomFigure(t *testing.T) {
	s := tinySession()
	fr, err := s.CustomFigure("is", "torus", ContentionOvh)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Figure.ID() != "custom" {
		t.Errorf("id = %q", fr.Figure.ID())
	}
	if fr.Figure.Caption() != "IS on Torus: Contention" {
		t.Errorf("caption = %q", fr.Figure.Caption())
	}
	if len(fr.Series) != 3 || len(fr.Series[0].Points) != 2 {
		t.Fatalf("series %d, points %d", len(fr.Series), len(fr.Series[0].Points))
	}
	// Extension workloads sweep too.
	fr2, err := s.CustomFigure("mg", "ring", ExecTime)
	if err != nil {
		t.Fatal(err)
	}
	if fr2.Figure.Caption() != "MG on Ring: Execution Time" {
		t.Errorf("caption = %q", fr2.Figure.Caption())
	}
	if _, err := s.CustomFigure("bogus", "ring", ExecTime); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestParseMetric(t *testing.T) {
	for name, want := range map[string]Metric{
		"latency": LatencyOvh, "contention": ContentionOvh,
		"exec": ExecTime, "execution": ExecTime,
	} {
		got, err := ParseMetric(name)
		if err != nil || got != want {
			t.Errorf("ParseMetric(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseMetric("speedup"); err == nil {
		t.Error("bad metric accepted")
	}
}

func TestUnknownAppError(t *testing.T) {
	s := tinySession()
	if _, err := s.Run("nope", "full", machine.Target, 2); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestRunTimeoutOption(t *testing.T) {
	// A 1ns deadline has expired before the event loop polls the stop
	// flag for the first time, so every simulation aborts — and the
	// failure carries the timeout sentinel, not a generic error.
	s := NewSession(Options{Scale: apps.Tiny, Procs: []int{4}, RunTimeout: time.Nanosecond})
	_, err := s.Run("ep", "full", machine.Target, 4)
	if !errors.Is(err, app.ErrRunTimeout) {
		t.Fatalf("want ErrRunTimeout, got %v", err)
	}
	// The same session still completes unbounded work: the aborted
	// run's pooled context was discarded, not recycled mid-flight.
	s2 := NewSession(Options{Scale: apps.Tiny, Procs: []int{4}})
	if _, err := s2.Run("ep", "full", machine.Target, 4); err != nil {
		t.Fatal(err)
	}
}
