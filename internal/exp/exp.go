// Package exp defines the paper's experiments — one entry per figure of
// the evaluation section, plus the section-7 ablation and the
// simulation-cost comparison — and runs the processor sweeps that
// regenerate them.
//
// A Session caches runs, because one (application, topology, machine, P)
// simulation feeds several figures (e.g. IS on the full network appears
// in the latency, contention and execution-time figures).
package exp

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"spasm/internal/apps"
	"spasm/internal/logp"
	"spasm/internal/machine"
	"spasm/internal/runpool"
	"spasm/internal/sim"
	"spasm/internal/stats"
)

// Metric selects what a figure plots.
type Metric int

const (
	// ExecTime is the simulated execution time (max processor finish).
	ExecTime Metric = iota
	// LatencyOvh is the summed contention-free message-transmission
	// overhead — the quantity the LogP L parameter abstracts.
	LatencyOvh
	// ContentionOvh is the summed waiting overhead — links on the
	// target, the g-gap on the LogP machines.
	ContentionOvh
)

func (m Metric) String() string {
	switch m {
	case ExecTime:
		return "execution time"
	case LatencyOvh:
		return "latency"
	case ContentionOvh:
		return "contention"
	}
	return fmt.Sprintf("Metric(%d)", int(m))
}

// Figure describes one paper figure: an application, a topology and a
// metric, plotted for the three machines across the processor sweep.
type Figure struct {
	Num      int
	App      string
	Topology string
	Metric   Metric
}

// ID returns the figure's stable identifier, e.g. "fig07" ("custom"
// for ad-hoc figures built with Session.CustomFigure).
func (f Figure) ID() string {
	if f.Num == 0 {
		return "custom"
	}
	return fmt.Sprintf("fig%02d", f.Num)
}

// Caption reproduces the paper's caption, e.g. "IS on Mesh: Contention".
func (f Figure) Caption() string {
	topo := map[string]string{
		"full": "Full", "cube": "Cube", "mesh": "Mesh",
		"ring": "Ring", "torus": "Torus",
	}[f.Topology]
	if topo == "" {
		topo = f.Topology
	}
	metric := map[Metric]string{
		ExecTime: "Execution Time", LatencyOvh: "Latency", ContentionOvh: "Contention",
	}[f.Metric]
	appName := map[string]string{
		"ep": "EP", "is": "IS", "fft": "FFT", "cg": "CG", "cholesky": "CHOLESKY",
	}[f.App]
	if appName == "" {
		appName = strings.ToUpper(f.App)
	}
	return fmt.Sprintf("%s on %s: %s", appName, topo, metric)
}

// Figures lists the paper's twenty evaluation figures in order.
var Figures = []Figure{
	{1, "fft", "full", LatencyOvh},
	{2, "cg", "full", LatencyOvh},
	{3, "ep", "full", LatencyOvh},
	{4, "is", "full", LatencyOvh},
	{5, "cholesky", "full", LatencyOvh},
	{6, "is", "full", ContentionOvh},
	{7, "is", "mesh", ContentionOvh},
	{8, "fft", "cube", ContentionOvh},
	{9, "cholesky", "full", ContentionOvh},
	{10, "ep", "full", ContentionOvh},
	{11, "ep", "mesh", ContentionOvh},
	{12, "ep", "full", ExecTime},
	{13, "fft", "mesh", ExecTime},
	{14, "is", "full", ExecTime},
	{15, "cg", "full", ExecTime},
	{16, "cholesky", "full", ExecTime},
	{17, "cg", "mesh", ExecTime},
	{18, "cholesky", "mesh", ExecTime},
	{19, "cg", "mesh", ContentionOvh},
	{20, "cholesky", "mesh", ContentionOvh},
}

// ByNumber returns figure n (1-20).
func ByNumber(n int) (Figure, error) {
	for _, f := range Figures {
		if f.Num == n {
			return f, nil
		}
	}
	return Figure{}, fmt.Errorf("exp: no figure %d", n)
}

// Options configures a Session.
type Options struct {
	// Scale selects problem sizes (default apps.Small).
	Scale apps.Scale
	// Procs is the processor sweep (default 2..64 in powers of two,
	// capped so every app fits, e.g. FFT needs R >= P).
	Procs []int
	// Seed varies the synthetic inputs (default 1).
	Seed int64
	// Machines are the characterizations compared (default LogP,
	// CLogP, Target — the paper's three).
	Machines []machine.Kind
	// PortMode is the g-gap discipline for the LogP machines
	// (default Combined; PerClass reproduces the section-7 ablation).
	PortMode logp.PortMode
	// Parallel is the number of simulations run concurrently on the
	// host (each simulation is single-threaded and independent, so
	// this is pure speedup; results are identical).  Default 1.
	Parallel int
	// RunWorkers asks each *individual* simulation to execute on the
	// conservative parallel kernel with this many workers (results stay
	// bit-identical; machine kinds without lookahead fall back to the
	// sequential kernel).  It is orthogonal to Parallel, which runs whole
	// simulations concurrently: Parallel spreads a sweep across cores,
	// RunWorkers spreads one large run.  Default 0 (sequential).
	RunWorkers int
	// RunTimeout bounds each underlying simulation's wall-clock
	// execution; a run past the deadline is aborted cooperatively and
	// fails with app.ErrRunTimeout, its pooled context discarded.  Zero
	// (the default) means unbounded.  Ignored when Runner is set — a
	// delegated runner enforces its own deadline.
	RunTimeout time.Duration
	// Runner, if non-nil, executes the session's underlying
	// simulations in place of the session building and running the
	// program itself.  It must return statistics equivalent to a
	// direct run of the same combination at the session's scale and
	// seed.  The service layer injects its content-addressed result
	// cache and bounded worker pool here, so figure and sweep requests
	// share one execution path with single-run requests.
	Runner func(appName, topo string, kind machine.Kind, p int) (*stats.Run, error)
}

// WithDefaults returns the options with unset fields filled in — the
// form a Session actually runs with.  Exported so callers that expand
// work themselves (the service layer pre-submitting sweep points to its
// pool) see the same sweep and machine lists the session will use.
func (o Options) WithDefaults() Options {
	if o.Procs == nil {
		o.Procs = []int{2, 4, 8, 16, 32, 64}
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Machines == nil {
		o.Machines = []machine.Kind{machine.LogP, machine.CLogP, machine.Target}
	}
	return o
}

// Point is one sweep sample.
type Point struct {
	P     int
	Value float64 // the figure's metric, in microseconds
	Run   *stats.Run
}

// Series is one machine's curve across the processor sweep.
type Series struct {
	Machine machine.Kind
	Points  []Point
}

// FigureResult is a regenerated figure.
type FigureResult struct {
	Figure Figure
	Series []Series
}

// Value extracts a figure metric from a run, in microseconds.
func Value(m Metric, r *stats.Run) float64 {
	switch m {
	case ExecTime:
		return r.Total.Micros()
	case LatencyOvh:
		return sim.Time(r.Sum(stats.Latency)).Micros()
	case ContentionOvh:
		return sim.Time(r.Sum(stats.Contention)).Micros()
	}
	panic(fmt.Sprintf("exp: bad metric %d", m))
}

// Session runs experiments with run caching.  With Options.Parallel > 1
// the cache is safe for the session's own worker pool.
type Session struct {
	opt   Options
	mu    sync.Mutex
	cache map[string]*stats.Run

	// pool holds reusable run contexts for the session's lifetime, so a
	// figure sweep pays machine construction once per configuration
	// rather than once per run.  It is safe for the session's worker
	// pool; its idle cap bounds retained memory.
	pool *runpool.Pool
}

// NewSession returns a Session with the given options.
func NewSession(opt Options) *Session {
	return &Session{
		opt:   opt.WithDefaults(),
		cache: map[string]*stats.Run{},
		pool:  runpool.New(0),
	}
}

// Options returns the session's (defaulted) options.
func (s *Session) Options() Options { return s.opt }

type runKey struct {
	app  string
	topo string
	kind machine.Kind
	p    int
}

func (k runKey) String() string {
	return fmt.Sprintf("%s/%s/%v/%d", k.app, k.topo, k.kind, k.p)
}

func (s *Session) lookup(key string) (*stats.Run, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.cache[key]
	return r, ok
}

func (s *Session) store(key string, r *stats.Run) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cache[key] = r
}

// Run simulates one (application, topology, machine, P) combination,
// returning a cached result if it already ran.
func (s *Session) Run(appName, topo string, kind machine.Kind, p int) (*stats.Run, error) {
	key := runKey{appName, topo, kind, p}.String()
	if r, ok := s.lookup(key); ok {
		return r, nil
	}
	r, err := s.simulate(appName, topo, kind, p, s.pool)
	if err != nil {
		return nil, err
	}
	s.store(key, r)
	return r, nil
}

// Prefetch runs the given combinations on the batch scheduler (up to
// Options.Parallel workers on the session's context pool) and fills
// the cache; the first error in key order is returned.  Each simulation
// is internally single-threaded and fully deterministic, so parallel
// prefetching changes wall time only.
func (s *Session) Prefetch(keys []runKey) error {
	pts := make([]BatchPoint, len(keys))
	for i, k := range keys {
		pts[i] = BatchPoint{App: k.app, Topology: k.topo, Kind: k.kind, P: k.p}
	}
	_, err := s.RunBatch(pts)
	return err
}

// Figure regenerates one paper figure.
func (s *Session) Figure(fig Figure) (*FigureResult, error) {
	out := &FigureResult{Figure: fig}
	for _, kind := range s.opt.Machines {
		series := Series{Machine: kind}
		for _, p := range s.opt.Procs {
			r, err := s.Run(fig.App, fig.Topology, kind, p)
			if err != nil {
				return nil, fmt.Errorf("%s (p=%d, %v): %w", fig.ID(), p, kind, err)
			}
			series.Points = append(series.Points, Point{P: p, Value: Value(fig.Metric, r), Run: r})
		}
		out.Series = append(out.Series, series)
	}
	return out, nil
}

// CustomFigure sweeps an arbitrary (application, topology, metric)
// combination — including the extension topologies — and returns it in
// figure form so the standard table/chart/CSV renderers apply.  The
// figure number is 0, marking it as ad hoc.
func (s *Session) CustomFigure(appName, topo string, metric Metric) (*FigureResult, error) {
	return s.Figure(Figure{Num: 0, App: appName, Topology: topo, Metric: metric})
}

// ParseMetric converts "latency", "contention" or "exec" to a Metric.
func ParseMetric(name string) (Metric, error) {
	switch name {
	case "latency":
		return LatencyOvh, nil
	case "contention":
		return ContentionOvh, nil
	case "exec", "execution":
		return ExecTime, nil
	}
	return 0, fmt.Errorf("exp: unknown metric %q (latency, contention, exec)", name)
}

// AllFigures regenerates every paper figure, prefetching the underlying
// runs concurrently when Options.Parallel > 1.
func (s *Session) AllFigures() ([]*FigureResult, error) {
	seen := map[runKey]bool{}
	var keys []runKey
	for _, fig := range Figures {
		for _, kind := range s.opt.Machines {
			for _, p := range s.opt.Procs {
				k := runKey{fig.App, fig.Topology, kind, p}
				if !seen[k] {
					seen[k] = true
					keys = append(keys, k)
				}
			}
		}
	}
	if err := s.Prefetch(keys); err != nil {
		return nil, err
	}
	var out []*FigureResult
	for _, fig := range Figures {
		fr, err := s.Figure(fig)
		if err != nil {
			return nil, err
		}
		out = append(out, fr)
	}
	return out, nil
}
