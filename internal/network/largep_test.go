package network

import (
	"testing"

	"spasm/internal/sim"
)

// Large-P routing: above RouteTableMaxP there is no precomputed table —
// Route computes into the topology's scratch buffer and the fabric
// fronts it with a bounded route cache.  These tests pin three
// properties of that path: it agrees with the AppendRoute oracle, it
// never allocates per message, and the cache cannot return a wrong
// route even under heavy eviction.

// largeTopos builds all five topologies at p.
func largeTopos(p int) []Topology {
	return []Topology{NewFull(p), NewCube(p), NewMesh(p), NewRing(p), NewTorus(p)}
}

// TestLargePRouteMatchesOracle cross-checks Route against the
// AppendRoute oracle for every topology at and above the table limit.
// p=128 exercises the last table-backed size, 256 and 1024 the scratch
// path; pairs are strided to keep the sweep fast at p=1024.
func TestLargePRouteMatchesOracle(t *testing.T) {
	for _, p := range []int{128, 256, 1024} {
		for _, topo := range largeTopos(p) {
			stride := 1
			if p > 128 {
				stride = p / 64
			}
			for src := 0; src < p; src += stride {
				for dst := 0; dst < p; dst += stride + 1 {
					if src == dst {
						continue
					}
					got := topo.Route(src, dst)
					want := topo.AppendRoute(nil, src, dst)
					if len(got) != len(want) {
						t.Fatalf("%s(%d) route %d->%d: Route %v != oracle %v",
							topo.Name(), p, src, dst, got, want)
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("%s(%d) route %d->%d: Route %v != oracle %v",
								topo.Name(), p, src, dst, got, want)
						}
					}
					// The route must also be link-consistent: a walk
					// over LinkEnds from src arrives at dst.
					cur := src
					for _, l := range got {
						from, to := topo.LinkEnds(l)
						if from != cur {
							t.Fatalf("%s(%d) route %d->%d: link %d starts at %d, not %d",
								topo.Name(), p, src, dst, l, from, cur)
						}
						cur = to
					}
					if cur != dst {
						t.Fatalf("%s(%d) route %d->%d ends at %d", topo.Name(), p, src, dst, cur)
					}
				}
			}
		}
	}
}

// TestLargePRouteZeroAllocs pins the scratch path: Route above
// RouteTableMaxP must not allocate per call at any p.
func TestLargePRouteZeroAllocs(t *testing.T) {
	for _, p := range []int{256, 1024} {
		for _, topo := range largeTopos(p) {
			topo := topo
			var sink []int
			allocs := testing.AllocsPerRun(100, func() {
				for src := 0; src < p; src += 61 {
					dst := (src + p/2 + 1) % p
					sink = topo.Route(src, dst)
				}
			})
			if allocs != 0 {
				t.Errorf("%s(%d).Route allocates %.1f times per sweep; want 0",
					topo.Name(), p, allocs)
			}
			_ = sink
		}
	}
}

// TestLargePReserveZeroAllocs pins the fabric's large-P hot path: with
// the route cache in front of on-demand routing, Reserve must stay
// allocation-free per message at p=256 and p=1024 (the warm-up pass
// populates the cache and the touched-link list; steady state repeats
// the same working set, as coherence traffic does).
func TestLargePReserveZeroAllocs(t *testing.T) {
	for _, p := range []int{256, 1024} {
		for _, mk := range []func(int) Topology{
			func(p int) Topology { return NewCube(p) },
			func(p int) Topology { return NewMesh(p) },
			func(p int) Topology { return NewTorus(p) },
		} {
			topo := mk(p)
			f := NewFabric(topo)
			now := sim.Time(0)
			allocs := testing.AllocsPerRun(100, func() {
				for src := 0; src < p; src += 17 {
					dst := (src + 13) % p
					x := f.Reserve(now, src, dst, 32)
					now = x.End
				}
			})
			if allocs != 0 {
				t.Errorf("Reserve on %s(%d) allocates %.1f times per sweep; want 0",
					topo.Name(), p, allocs)
			}
		}
	}
}

// TestRouteCacheMatchesCompute drives a route cache far past its
// capacity so every set sees evictions, checking each returned route
// against the oracle (including immediate re-lookups, which must hit).
func TestRouteCacheMatchesCompute(t *testing.T) {
	const p = 256
	topo := NewTorus(p)
	rc := newRouteCache(topo)
	check := func(src, dst int) {
		got := rc.route(src, dst)
		want := topo.AppendRoute(nil, src, dst)
		if len(got) != len(want) {
			t.Fatalf("cache route %d->%d: %v != oracle %v", src, dst, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("cache route %d->%d: %v != oracle %v", src, dst, got, want)
			}
		}
	}
	// p*p/4 distinct pairs >> routeCacheSets*routeCacheWays slots.
	for src := 0; src < p; src += 2 {
		for dst := 0; dst < p; dst += 2 {
			if src == dst {
				continue
			}
			check(src, dst)
			check(src, dst) // immediate re-lookup: served from the slot
		}
	}
}

// TestFabricLargePMatchesSmallPattern verifies the cached-route fabric
// produces exactly the schedules the table-backed fabric logic would:
// the same message sequence on the same topology must yield identical
// Xmit schedules whether routes come from the cache or the oracle.
func TestFabricLargePMatchesSmallPattern(t *testing.T) {
	const p = 256
	run := func(f *Fabric) []Xmit {
		var out []Xmit
		now := sim.Time(0)
		for i := 0; i < 4*p; i++ {
			src := (i * 7) % p
			dst := (src + i%11 + 1) % p
			if src == dst {
				continue
			}
			x := f.Reserve(now, src, dst, 32)
			out = append(out, x)
			now = x.Start + 1
		}
		return out
	}
	cached := run(NewFabric(NewMesh(p)))
	// A fabric with the cache knocked out routes via topology scratch.
	plain := NewFabric(NewMesh(p))
	plain.rc = nil
	want := run(plain)
	if len(cached) != len(want) {
		t.Fatalf("schedule counts differ: %d != %d", len(cached), len(want))
	}
	for i := range cached {
		if cached[i] != want[i] {
			t.Fatalf("schedule %d differs: cached %+v != plain %+v", i, cached[i], want[i])
		}
	}
}
