// Package report renders experiment results as fixed-width tables, CSV,
// and terminal line charts — the textual equivalent of the paper's
// figures.
package report

import (
	"fmt"
	"strings"

	"spasm/internal/exp"
	"spasm/internal/machine"
)

// Table is a simple fixed-width text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// Add appends a row; values are formatted with %v.
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2) + "\n")
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// figureLabel names a figure for titles: the paper number, or "Ad-hoc
// figure" for CustomFigure results.
func figureLabel(f exp.Figure) string {
	if f.Num == 0 {
		return "Ad-hoc figure"
	}
	return fmt.Sprintf("Figure %d", f.Num)
}

// machineLabel gives each machine its display name and chart marker.
func machineLabel(k machine.Kind) (name string, marker byte) {
	switch k {
	case machine.Target:
		return "Target", 'T'
	case machine.LogP:
		return "LogP", 'L'
	case machine.CLogP:
		return "LogP+Cache", 'C'
	default:
		return "Ideal", 'I'
	}
}

// FigureTable renders a figure's sweep as a table: one row per processor
// count, one column per machine.
func FigureTable(fr *exp.FigureResult) *Table {
	t := &Table{
		Title:   fmt.Sprintf("%s — %s (values in us)", figureLabel(fr.Figure), fr.Figure.Caption()),
		Headers: []string{"procs"},
	}
	for _, s := range fr.Series {
		name, _ := machineLabel(s.Machine)
		t.Headers = append(t.Headers, name)
	}
	if len(fr.Series) == 0 {
		return t
	}
	for i, pt := range fr.Series[0].Points {
		row := []interface{}{pt.P}
		for _, s := range fr.Series {
			row = append(row, s.Points[i].Value)
		}
		t.Add(row...)
	}
	return t
}

// FigureCSV renders a figure's sweep as CSV with a header row.
func FigureCSV(fr *exp.FigureResult) string {
	var b strings.Builder
	b.WriteString("figure,app,topology,metric,procs")
	for _, s := range fr.Series {
		name, _ := machineLabel(s.Machine)
		fmt.Fprintf(&b, ",%s_us", strings.ReplaceAll(strings.ToLower(name), "+", ""))
	}
	b.WriteByte('\n')
	if len(fr.Series) == 0 {
		return b.String()
	}
	for i, pt := range fr.Series[0].Points {
		fmt.Fprintf(&b, "%d,%s,%s,%s,%d",
			fr.Figure.Num, fr.Figure.App, fr.Figure.Topology, fr.Figure.Metric, pt.P)
		for _, s := range fr.Series {
			fmt.Fprintf(&b, ",%.3f", s.Points[i].Value)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
