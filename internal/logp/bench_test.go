package logp

import (
	"testing"

	"spasm/internal/sim"
)

// BenchmarkMessage measures abstract-network message accounting.
func BenchmarkMessage(b *testing.B) {
	for _, mode := range []PortMode{Combined, PerClass} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			n := New(64, DefaultL, sim.Micros(1.6), mode)
			now := sim.Time(0)
			for i := 0; i < b.N; i++ {
				src := i % 64
				dst := (i*7 + 1) % 64
				if src == dst {
					dst = (dst + 1) % 64
				}
				x := n.Message(now, src, dst)
				now = x.SendAt
			}
		})
	}
}
