package network

// routeCache is a bounded set-associative cache of full routes, used by
// the detailed fabric above RouteTableMaxP where the complete route
// table would cost O(p² · diameter) memory.  Coherence traffic is
// heavily skewed — a node talks mostly to the homes of the blocks it
// touches — so a few thousand hot (src, dst) pairs cover the vast
// majority of messages, and a miss only costs recomputing one route
// into the victim slot's preallocated buffer: zero allocations per
// message, hit or miss.
//
// Replacement is LRU within each set, tracked by a monotone access
// tick.  Everything about the cache is a deterministic function of the
// message sequence, and a cached route equals the computed route by
// construction, so the cache cannot perturb simulation results — which
// is also why it never needs resetting between runs of the same
// topology.
const (
	routeCacheSets = 512
	routeCacheWays = 4
)

type routeCacheSlot struct {
	key  int64 // src*p + dst, -1 when empty
	tick uint64
	buf  []int // the route, in a buffer of capacity Diameter()
}

type routeCache struct {
	topo  Topology
	slots []routeCacheSlot // routeCacheSets * routeCacheWays, set-major
	tick  uint64
}

func newRouteCache(t Topology) *routeCache {
	rc := &routeCache{
		topo:  t,
		slots: make([]routeCacheSlot, routeCacheSets*routeCacheWays),
	}
	d := t.Diameter()
	for i := range rc.slots {
		rc.slots[i].key = -1
		rc.slots[i].buf = make([]int, 0, d)
	}
	return rc
}

// route returns the src→dst route from the cache, computing it into the
// least-recently-used slot of its set on a miss.  The returned slice
// aliases the slot's buffer with its capacity clipped: callers must not
// modify it, and it is only valid until a later route call evicts the
// slot — the fabric consumes each route within one Reserve call.
func (rc *routeCache) route(src, dst int) []int {
	key := int64(src)*int64(rc.topo.P()) + int64(dst)
	// Multiplicative hash spreads the (src-major) key space over the
	// sets so one node's fan-out doesn't pile into one set.
	set := int((uint64(key) * 0x9E3779B97F4A7C15 >> 32) & (routeCacheSets - 1))
	base := set * routeCacheWays
	rc.tick++
	victim := base
	for i := base; i < base+routeCacheWays; i++ {
		s := &rc.slots[i]
		if s.key == key {
			s.tick = rc.tick
			n := len(s.buf)
			return s.buf[:n:n]
		}
		if s.tick < rc.slots[victim].tick {
			victim = i
		}
	}
	s := &rc.slots[victim]
	s.key = key
	s.tick = rc.tick
	s.buf = rc.topo.AppendRoute(s.buf[:0], src, dst)
	n := len(s.buf)
	return s.buf[:n:n]
}
