// Package app is the framework parallel applications are written
// against: a per-processor Proc API of compute blocks and shared-memory
// references, synchronization objects built from *simulated shared
// memory* (so their traffic is visible to every machine model, exactly
// as the traffic of the original instrumented binaries was visible to
// SPASM), and a runner that executes a Program on a configured machine.
//
// A Program's Body is ordinary Go code: its control flow may depend on
// simulated time (dynamic task queues, lock acquisition order), which is
// what makes the simulation execution-driven rather than trace-driven.
package app

import (
	"spasm/internal/machine"
	"spasm/internal/mem"
	"spasm/internal/sim"
	"spasm/internal/stats"
)

// Proc is one application processor: the handle through which a
// Program's Body interacts with the simulated machine.
type Proc struct {
	// ID is the processor number, 0..P-1.
	ID int
	// S is the underlying simulation process.
	S *sim.Proc
	// M is the machine the program is running on.
	M machine.Machine
	// St accumulates this processor's overheads.
	St *stats.Proc
	// Ctx is the shared program context.
	Ctx *Ctx

	// Phase-profiling state (see Phase).
	phase     string
	phaseT0   sim.Time
	phaseSnap [stats.NumBuckets]sim.Time
}

// Compute models the execution of n instruction cycles that touch no
// shared memory (private data, register work, loop control) — the part
// of the program an execution-driven simulator runs at native speed and
// charges wholesale.
// Deferred local-clock accumulation makes this cheap: no engine event is
// scheduled until the processor next interacts with shared state.
func (p *Proc) Compute(n int64) {
	if n <= 0 {
		return
	}
	d := sim.Cycles(n)
	p.St.Add(stats.Compute, d)
	p.S.Defer(d)
}

// ComputeTime charges an exact simulated duration of local computation
// (used by trace replay, where inter-reference gaps are recorded as
// durations rather than cycle counts).
func (p *Proc) ComputeTime(d sim.Time) {
	if d <= 0 {
		return
	}
	p.St.Add(stats.Compute, d)
	p.S.Defer(d)
}

// spin burns n cycles charged to synchronization overhead (busy-wait
// loop iterations).
func (p *Proc) spin(n int64) {
	d := sim.Cycles(n)
	p.St.Add(stats.Sync, d)
	p.S.Hold(d)
}

// Read issues a shared-memory read at addr.
func (p *Proc) Read(addr mem.Addr) { p.M.Read(p.S, p.St, p.ID, addr) }

// Write issues a shared-memory write at addr.
func (p *Proc) Write(addr mem.Addr) { p.M.Write(p.S, p.St, p.ID, addr) }

// ReadElem reads element i of arr.
func (p *Proc) ReadElem(arr *mem.Array, i int) { p.Read(arr.At(i)) }

// WriteElem writes element i of arr.
func (p *Proc) WriteElem(arr *mem.Array, i int) { p.Write(arr.At(i)) }

// ReadRange reads elements [lo, hi) of arr in order — the sequential
// scan whose spatial locality caches exploit.
func (p *Proc) ReadRange(arr *mem.Array, lo, hi int) {
	for i := lo; i < hi; i++ {
		p.Read(arr.At(i))
	}
}

// WriteRange writes elements [lo, hi) of arr in order.
func (p *Proc) WriteRange(arr *mem.Array, lo, hi int) {
	for i := lo; i < hi; i++ {
		p.Write(arr.At(i))
	}
}

// Now returns the current simulated time.
func (p *Proc) Now() sim.Time { return p.S.Now() }
