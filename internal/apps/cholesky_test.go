package apps

import (
	"fmt"
	"testing"

	"spasm/internal/app"
	"spasm/internal/machine"
	"spasm/internal/stats"
)

func runChol(t *testing.T, kind machine.Kind, p, n int) (*Cholesky, *stats.Run) {
	t.Helper()
	ch := &Cholesky{N: n, Extra: 2, Seed: 1}
	res, err := app.Run(ch, machine.Config{Kind: kind, Topology: "full", P: p})
	if err != nil {
		t.Fatal(err)
	}
	return ch, res.Stats
}

func TestCholeskyFactorsOnEveryMachine(t *testing.T) {
	// Check() verifies L*L^T = A; the factor values depend on the
	// timing-driven cmod order, so passing on all machines shows the
	// dynamic scheduling is robust under every timing model.
	for _, kind := range machine.Kinds() {
		runChol(t, kind, 4, 40)
	}
}

func TestCholeskyAllColumnsExactlyOnce(t *testing.T) {
	ch, _ := runChol(t, machine.Target, 4, 48)
	if ch.completed != ch.N {
		t.Errorf("completed %d of %d", ch.completed, ch.N)
	}
	total := 0
	for _, c := range ch.byProc {
		total += c
	}
	if total != ch.N {
		t.Errorf("byProc sums to %d", total)
	}
}

func TestCholeskyScheduleIsTimingDependent(t *testing.T) {
	// The defining property of the dynamic application: different
	// machines assign different columns to different processors.
	assign := func(kind machine.Kind) string {
		ch, _ := runChol(t, kind, 4, 48)
		return fmt.Sprint(ch.byProc)
	}
	a := assign(machine.Target)
	b := assign(machine.LogP)
	if a == b {
		t.Logf("warning: identical schedules on target and LogP (possible but unlikely): %s", a)
	}
	// Determinism: the same machine reproduces its schedule exactly.
	if a != assign(machine.Target) {
		t.Error("schedule not deterministic on the target machine")
	}
}

func TestCholeskyQueueTrafficVisible(t *testing.T) {
	_, run := runChol(t, machine.Target, 4, 48)
	if ops := run.Count(func(q *stats.Proc) uint64 { return q.LockOps }); ops == 0 {
		t.Error("task queue acquired no locks")
	}
	if run.Messages() == 0 {
		t.Error("no network traffic from factorization")
	}
}

func TestCholeskySingleProcessorSequential(t *testing.T) {
	ch, _ := runChol(t, machine.Ideal, 1, 40)
	if ch.byProc[0] != ch.N {
		t.Errorf("single processor factored %d of %d", ch.byProc[0], ch.N)
	}
}

func TestCholeskyIdleTimeChargedWhenStarved(t *testing.T) {
	// With many processors and a small matrix, the elimination tree's
	// critical path starves some processors: sync time must appear.
	_, run := runChol(t, machine.Target, 8, 32)
	if run.Sum(stats.Sync) == 0 {
		t.Error("no idle/sync time despite starvation-prone configuration")
	}
}

func TestCholeskyWorkGrowsWithMatrix(t *testing.T) {
	_, small := runChol(t, machine.Ideal, 4, 32)
	_, large := runChol(t, machine.Ideal, 4, 96)
	if large.Total <= small.Total {
		t.Errorf("larger matrix not slower: %v vs %v", large.Total, small.Total)
	}
}
