package spasm

import (
	"encoding/json"
	"sync"
	"testing"

	"spasm/internal/report"
	"spasm/internal/stats"
)

// TestTinyStress re-runs a Tiny workload many times in one process,
// checking that every run produces identical results.  Its real value is
// under `go test -race`: the kernel's direct process-to-process dispatch
// handoff (a goroutine that blocks pops the next event and resumes its
// owner) is exactly the kind of code where a missed happens-before edge
// would surface as a data race on engine state, and twenty full
// simulations give the detector plenty of handoffs to watch.
func TestTinyStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	var first []byte
	for i := 0; i < 20; i++ {
		res, err := Run("fft", Tiny, 1, Config{Kind: Target, Topology: "mesh", P: 8})
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		doc, err := json.Marshal(report.RunJSON(res))
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if i == 0 {
			first = doc
			continue
		}
		if string(doc) != string(first) {
			t.Fatalf("run %d produced different results than run 0", i)
		}
	}
}

// TestRunBatchStress hammers the batch scheduler under -race: several
// goroutines run overlapping batches — full of duplicate points — on
// sessions with multi-worker pools, while a shared RunPool serves
// concurrent RunOn calls for the same configurations.  Every result must
// match the sequential fresh-context reference exactly.
func TestRunBatchStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	points := []BatchPoint{
		{App: "fft", Topology: "mesh", Kind: Target, P: 8},
		{App: "is", Topology: "full", Kind: CLogP, P: 4},
		{App: "ep", Topology: "cube", Kind: LogP, P: 8},
		{App: "fft", Topology: "mesh", Kind: Target, P: 8}, // duplicate
		{App: "cg", Topology: "full", Kind: Target, P: 4},
		{App: "is", Topology: "full", Kind: CLogP, P: 4}, // duplicate
	}
	want := make([][]byte, len(points))
	for i, pt := range points {
		res, err := Run(pt.App, Tiny, 1, Config{Kind: pt.Kind, Topology: pt.Topology, P: pt.P})
		if err != nil {
			t.Fatal(err)
		}
		doc, err := json.Marshal(statsDoc(pt, res.Stats))
		if err != nil {
			t.Fatal(err)
		}
		want[i] = doc
	}

	shared := NewRunPool(0)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 4; g++ {
		// Batch runners: separate sessions so nothing is served from a
		// session cache shared between goroutines.
		wg.Add(1)
		go func() {
			defer wg.Done()
			runs, err := RunMany(Options{Scale: Tiny, Parallel: 3}, points)
			if err != nil {
				errs <- err
				return
			}
			for i, r := range runs {
				doc, err := json.Marshal(statsDoc(points[i], r))
				if err != nil {
					errs <- err
					return
				}
				if string(doc) != string(want[i]) {
					errs <- &batchMismatch{i: i}
					return
				}
			}
		}()
		// Pool hammerers: concurrent identical configurations against one
		// shared pool.
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				pt := points[(g+i)%len(points)]
				res, err := RunOn(pt.App, Tiny, 1, Config{Kind: pt.Kind, Topology: pt.Topology, P: pt.P}, shared)
				if err != nil {
					errs <- err
					return
				}
				doc, err := json.Marshal(statsDoc(pt, res.Stats))
				if err != nil {
					errs <- err
					return
				}
				if string(doc) != string(want[(g+i)%len(points)]) {
					errs <- &batchMismatch{i: (g + i) % len(points)}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type batchMismatch struct{ i int }

func (e *batchMismatch) Error() string {
	return "batch point produced different results than the fresh reference"
}

// statsDoc projects a run's statistics into the deterministic RunDoc
// form for comparison (RunBatch returns stats only, so the doc is built
// from the point's identity plus the stats), mirroring report.RunJSON
// field for field.
func statsDoc(pt BatchPoint, r *RunStats) report.RunDoc {
	doc := report.RunDoc{
		Program:      pt.App,
		Machine:      pt.Kind.String(),
		Topology:     pt.Topology,
		P:            r.P(),
		TotalUS:      r.Total.Micros(),
		ComputeUS:    Time(r.Sum(stats.Compute)).Micros(),
		MemoryUS:     Time(r.Sum(stats.Memory)).Micros(),
		LatencyUS:    Time(r.Sum(stats.Latency)).Micros(),
		ContentionUS: Time(r.Sum(stats.Contention)).Micros(),
		SyncUS:       Time(r.Sum(stats.Sync)).Micros(),
		Reads:        r.Count(func(p *stats.Proc) uint64 { return p.Reads }),
		Writes:       r.Count(func(p *stats.Proc) uint64 { return p.Writes }),
		Hits:         r.Count(func(p *stats.Proc) uint64 { return p.Hits }),
		Misses:       r.Count(func(p *stats.Proc) uint64 { return p.Misses }),
		Messages:     r.Messages(),
		NetBytes:     r.Count(func(p *stats.Proc) uint64 { return p.NetBytes }),
		SimEvents:    r.SimEvents,
	}
	for i := range r.Procs {
		p := &r.Procs[i]
		doc.Procs = append(doc.Procs, report.ProcDoc{
			ID:       p.ID,
			FinishUS: p.Finish.Micros(),
			BusyUS:   p.Busy().Micros(),
		})
	}
	return doc
}
