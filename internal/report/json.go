package report

import (
	"spasm/internal/app"
	"spasm/internal/exp"
	"spasm/internal/stats"
)

// RunDoc is the JSON form of one run's statistics, used by the spasmd
// API and its result cache.  It is fully deterministic: everything in it
// is a function of the run's Spec, so re-encoding an identical run
// yields byte-identical JSON.  Host-side measurements (wall-clock time)
// are deliberately excluded — they vary run to run and would break both
// byte-identity and cache semantics.
type RunDoc struct {
	Program  string  `json:"program"`
	Machine  string  `json:"machine"`
	Topology string  `json:"topology"`
	P        int     `json:"p"`
	TotalUS  float64 `json:"total_us"`

	ComputeUS    float64 `json:"compute_us"`
	MemoryUS     float64 `json:"memory_us"`
	LatencyUS    float64 `json:"latency_us"`
	ContentionUS float64 `json:"contention_us"`
	SyncUS       float64 `json:"sync_us"`

	Reads     uint64 `json:"reads"`
	Writes    uint64 `json:"writes"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Messages  uint64 `json:"messages"`
	NetBytes  uint64 `json:"net_bytes"`
	SimEvents uint64 `json:"sim_events"`
	// NetModelEvents is the network model's own unit of work: per-hop
	// reservations (detailed), port gatings (LogP tiers), allocation
	// recomputations (flow).
	NetModelEvents uint64 `json:"net_model_events"`

	// Escalation records the adaptive-fidelity decision of a run made
	// through an adaptive spec; absent otherwise.
	Escalation *EscalationDoc `json:"escalation,omitempty"`

	// Host carries the run's host-side (non-deterministic) measurements.
	// RunJSON never sets it — the spasmd result cache and the determinism
	// goldens stay byte-identical — callers that want it (cmd/spasm
	// -json) attach it with AttachHost after conversion.
	Host *HostDoc `json:"host,omitempty"`

	Procs []ProcDoc `json:"procs"`
}

// HostDoc is the host-side measurement block of a RunDoc: wall-clock
// cost and simulation rate, plus the parallel-execution outcome when the
// run requested one.  Everything here varies run to run; it is excluded
// from cached and golden documents by construction (see RunDoc.Host).
type HostDoc struct {
	WallMS       float64 `json:"wall_ms"`
	EventsPerSec float64 `json:"events_per_sec"`
	// Workers is the requested parallel worker count (0 when the run
	// never asked for parallel execution).
	Workers int `json:"workers,omitempty"`
	// Parallel reports whether the windowed parallel kernel actually ran.
	Parallel bool `json:"parallel,omitempty"`
	// Fallback is the reason a requested parallel run used the
	// sequential kernel instead (empty when Parallel or never requested).
	Fallback string `json:"fallback,omitempty"`
}

// AttachHost fills doc.Host from the result's host-side measurements.
func AttachHost(doc *RunDoc, res *app.Result) {
	h := &HostDoc{
		WallMS:       float64(res.Stats.Wall.Microseconds()) / 1e3,
		EventsPerSec: res.Stats.EventsPerSec(),
	}
	if par := res.Par; par != nil {
		h.Workers = par.Requested
		h.Parallel = par.Parallel
		h.Fallback = par.Fallback
	}
	doc.Host = h
}

// EscalationDoc is the JSON form of one adaptive-fidelity decision.
type EscalationDoc struct {
	From         string  `json:"from"`
	To           string  `json:"to"`
	ThresholdPct int     `json:"threshold_pct"`
	Tripped      bool    `json:"tripped"`
	AtUS         float64 `json:"at_us"`
	Share        int     `json:"share"`
}

// ProcDoc is one processor's summary within a RunDoc.
type ProcDoc struct {
	ID       int     `json:"id"`
	FinishUS float64 `json:"finish_us"`
	BusyUS   float64 `json:"busy_us"`
}

// RunJSON converts a run result to its deterministic JSON document form.
func RunJSON(res *app.Result) RunDoc {
	r := res.Stats
	topo := res.Config.Topology
	if topo == "" {
		topo = "full"
	}
	doc := RunDoc{
		Program:        res.Program,
		Machine:        res.Config.Kind.String(),
		Topology:       topo,
		P:              r.P(),
		TotalUS:        r.Total.Micros(),
		ComputeUS:      r.Sum(stats.Compute).Micros(),
		MemoryUS:       r.Sum(stats.Memory).Micros(),
		LatencyUS:      r.Sum(stats.Latency).Micros(),
		ContentionUS:   r.Sum(stats.Contention).Micros(),
		SyncUS:         r.Sum(stats.Sync).Micros(),
		Reads:          r.Count(func(p *stats.Proc) uint64 { return p.Reads }),
		Writes:         r.Count(func(p *stats.Proc) uint64 { return p.Writes }),
		Hits:           r.Count(func(p *stats.Proc) uint64 { return p.Hits }),
		Misses:         r.Count(func(p *stats.Proc) uint64 { return p.Misses }),
		Messages:       r.Messages(),
		NetBytes:       r.Count(func(p *stats.Proc) uint64 { return p.NetBytes }),
		SimEvents:      r.SimEvents,
		NetModelEvents: r.NetEvents,
	}
	if esc := res.Escalation; esc != nil {
		doc.Escalation = &EscalationDoc{
			From:         esc.From.String(),
			To:           esc.To.String(),
			ThresholdPct: esc.ThresholdPct,
			Tripped:      esc.Tripped,
			AtUS:         esc.At.Micros(),
			Share:        esc.Share,
		}
	}
	for i := range r.Procs {
		p := &r.Procs[i]
		doc.Procs = append(doc.Procs, ProcDoc{
			ID:       p.ID,
			FinishUS: p.Finish.Micros(),
			BusyUS:   p.Busy().Micros(),
		})
	}
	return doc
}

// FigureDoc is the JSON form of a regenerated figure (paper figure or
// ad-hoc sweep) for the spasmd API.
type FigureDoc struct {
	Num      int         `json:"figure"`
	App      string      `json:"app"`
	Topology string      `json:"topology"`
	Metric   string      `json:"metric"`
	Caption  string      `json:"caption"`
	Series   []SeriesDoc `json:"series"`
}

// SeriesDoc is one machine's curve within a FigureDoc.
type SeriesDoc struct {
	Machine string     `json:"machine"`
	Points  []PointDoc `json:"points"`
}

// PointDoc is one sweep sample within a SeriesDoc.
type PointDoc struct {
	P       int     `json:"p"`
	ValueUS float64 `json:"value_us"`
}

// FigureJSON converts a figure result to its JSON document form.
func FigureJSON(fr *exp.FigureResult) FigureDoc {
	doc := FigureDoc{
		Num:      fr.Figure.Num,
		App:      fr.Figure.App,
		Topology: fr.Figure.Topology,
		Metric:   fr.Figure.Metric.String(),
		Caption:  fr.Figure.Caption(),
	}
	for _, s := range fr.Series {
		sd := SeriesDoc{Machine: s.Machine.String()}
		for _, pt := range s.Points {
			sd.Points = append(sd.Points, PointDoc{P: pt.P, ValueUS: pt.Value})
		}
		doc.Series = append(doc.Series, sd)
	}
	return doc
}
