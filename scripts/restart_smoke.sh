#!/usr/bin/env bash
# Restart-durability smoke test: a run computed by one spasmd process
# must be served by the next process from the durable store — answered
# "cached": true, byte-identical, and without re-simulating.  This is
# the black-box twin of TestStoreWarmRestart, exercising the real
# binary, real signals, and a real on-disk store.
set -euo pipefail
cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
STORE="$WORK/store"
ADDR=127.0.0.1:8399
BASE="http://$ADDR"
SPEC='{"app":"uniform","scale":"tiny","machine":"flow","topology":"torus","p":256}'
PID=""

cleanup() {
    [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

jsonfield() { # jsonfield FIELD < doc : prints doc[FIELD] (scalars raw, objects canonical)
    python3 -c '
import json, sys
v = json.load(sys.stdin).get(sys.argv[1])
print(json.dumps(v, sort_keys=True) if isinstance(v, (dict, list)) else v)
' "$1"
}

start() {
    ./spasmd.smoke -addr "$ADDR" -store "$STORE" &
    PID=$!
    for _ in $(seq 1 100); do
        if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then return; fi
        sleep 0.1
    done
    echo "FAIL: spasmd never became healthy" >&2
    exit 1
}

stop() { # graceful: SIGTERM drains accepted work and flushes the store
    kill -TERM "$PID"
    wait "$PID" 2>/dev/null || true
    PID=""
}

go build -o spasmd.smoke ./cmd/spasmd
trap 'cleanup; rm -f spasmd.smoke' EXIT

echo "== first process: compute the run"
start
ID=$(curl -fsS -X POST "$BASE/v1/runs" -d "$SPEC" | jsonfield id)
for _ in $(seq 1 300); do
    STATE=$(curl -fsS "$BASE/v1/runs/$ID" | jsonfield state)
    [ "$STATE" = done ] && break
    [ "$STATE" = failed ] && { echo "FAIL: run failed" >&2; exit 1; }
    sleep 0.1
done
[ "$STATE" = done ] || { echo "FAIL: run never completed (state=$STATE)" >&2; exit 1; }
curl -fsS "$BASE/v1/runs/$ID" | jsonfield result > "$WORK/first.result"
stop

echo "== second process: same store, fresh memory"
start
curl -fsS -X POST "$BASE/v1/runs" -d "$SPEC" > "$WORK/second.json"

CACHED=$(jsonfield cached < "$WORK/second.json")
STATE=$(jsonfield state < "$WORK/second.json")
if [ "$CACHED" != True ] || [ "$STATE" != done ]; then
    echo "FAIL: restarted submit not served from the store (state=$STATE cached=$CACHED)" >&2
    exit 1
fi
jsonfield result < "$WORK/second.json" > "$WORK/second.result"
cmp "$WORK/first.result" "$WORK/second.result" || {
    echo "FAIL: result differs across restart" >&2
    exit 1
}

METRICS=$(curl -fsS "$BASE/metrics")
SUBMITTED=$(printf '%s\n' "$METRICS" | awk '$1 == "spasmd_jobs_submitted_total" {print $2}')
STORE_HITS=$(printf '%s\n' "$METRICS" | awk '$1 == "spasmd_store_hits_total" {print $2}')
if [ "$SUBMITTED" != 0 ]; then
    echo "FAIL: restarted process re-simulated (jobs_submitted_total=$SUBMITTED)" >&2
    exit 1
fi
if [ "${STORE_HITS:-0}" -lt 1 ]; then
    echo "FAIL: no store hit recorded (store_hits=$STORE_HITS)" >&2
    exit 1
fi
stop

echo "OK: restart served the run cached, byte-identical, without re-simulation"
