package sim

import (
	"math"
	"slices"
)

// The kernel's pending-event structure is pluggable: small runs use the
// concrete-typed binary heap (eventHeap, engine.go), large runs the
// ladder queue below.  Both pop events in exactly the same total
// (at, seq) order — the queue changes only *how* that order is produced,
// never the order itself — so the selection is invisible to results.
//
// Selection: Run picks the ladder up front when the run spawns at least
// ladderProcs processes; schedule escalates mid-run when the heap
// backlog exceeds ladderPending events.  Both thresholds are deliberate
// underestimates of where the heap's O(log n) starts to matter: the
// ladder is never worse than the heap by more than a small constant, so
// a premature escalation costs little, while a missed one costs log n
// per event across tens of thousands of events.
const (
	// ladderProcs: a run with at least this many processes selects the
	// ladder queue at Run (per domain-local queue in parallel mode:
	// procs/domains).
	ladderProcs = 256
	// ladderPending: a heap backlog beyond this escalates mid-run.
	ladderPending = 4096
	// ladderSpread: buckets at most this large are sorted straight into
	// the bottom run instead of spawning another rung.
	ladderSpread = 64
	// ladderBuckets: bucket count of a freshly spawned rung.
	ladderBuckets = 64
	// ladderMaxRungs bounds rung recursion; a bucket that would exceed
	// it is sorted directly, trading one large sort for unbounded depth.
	ladderMaxRungs = 8
)

// minTime is the pristine ladder's top threshold: every push lands in
// the unsorted top until the first consumption spreads it.
const minTime = Time(math.MinInt64)

// eventQueue is the pluggable pending-event structure of the kernel.
type eventQueue interface {
	push(ev event)
	// pop removes and returns the earliest event in (at, seq) order.
	// Call only when len() > 0.
	pop() event
	// peek returns the earliest event without removing it, or nil when
	// the queue is empty.  The pointer is valid only until the next
	// mutation (a peek may reorganize internal structure, but never
	// changes contents).
	peek() *event
	len() int
	// reset empties the queue in place, clearing every retained slot so
	// no *Proc stays reachable, while keeping backing arrays for pooled
	// reuse.
	reset()
}

func (h *eventHeap) peek() *event {
	if len(h.s) == 0 {
		return nil
	}
	return &h.s[0]
}

func (h *eventHeap) reset() {
	for i := range h.s {
		h.s[i] = event{}
	}
	h.s = h.s[:0]
}

// ladderQueue is a calendar-style priority queue (a ladder queue in the
// Tang/Perumalla sense) with O(1) amortized push and pop: an unsorted
// "top" catches far-future events, a stack of "rungs" — bucket arrays of
// geometrically decreasing width — partitions time as consumption
// approaches, and a small sorted "bottom" run is what pop actually
// drains.  Every event is touched a bounded number of times (append on
// push, one move per rung level it descends, one sort in a
// ladderSpread-bounded bucket), so the per-event cost stays flat as the
// pending-event count grows — unlike the heap's O(log n) sift.
//
// Ordering proof sketch (see docs/INTERNALS.md §13): the structures
// partition simulated time into disjoint intervals that are increasing
// in time order — bottom < rungs[last] < ... < rungs[0] < top — and pop
// consumes only from the sorted bottom.  A push either lands in the
// interval its timestamp belongs to, or (below every rung's consumption
// point) is sorted into the bottom run directly; within a bucket, events
// are ordered by a full (at, seq) sort when the bucket reaches the
// bottom.  Same-timestamp events therefore pop in seq order — exactly
// the FIFO order the engine's nowQ fast path produces — and the total
// pop order equals the heap's.
type ladderQueue struct {
	n int // total pending events

	// bot is the sorted bottom run, ascending (at, seq), consumed from
	// botHead.  The slack left of botHead doubles as an O(1) landing
	// slot for pushes that precede every remaining bottom event.
	bot     []event
	botHead int

	// rungs[0] is the outermost (widest, latest) rung; the last entry is
	// the innermost, currently being consumed.  Retired rungs keep their
	// bucket arrays in the slice's capacity for reuse.
	rungs []ladderRung

	// top is the unsorted catch-all for events at or past topStart;
	// topMin/topMax are maintained on push and are meaningful only while
	// top is non-empty.
	top      []event
	topStart Time
	topMin   Time
	topMax   Time
}

// ladderRung is one bucket array: bucket i spans
// [start+i*width, start+(i+1)*width).  Buckets before cur are empty
// (already consumed or spread); n counts events in the rest.
type ladderRung struct {
	start Time
	width Time
	cur   int
	n     int
	bkt   [][]event
}

// curStart is the rung's consumption point: events at or past it still
// route into this rung, earlier ones belong to inner structures.
func (r *ladderRung) curStart() Time { return r.start + Time(r.cur)*r.width }

func (l *ladderQueue) len() int { return l.n }

func (l *ladderQueue) push(ev event) {
	l.n++
	if ev.at >= l.topStart {
		if len(l.top) == 0 {
			l.topMin, l.topMax = ev.at, ev.at
		} else if ev.at < l.topMin {
			l.topMin = ev.at
		} else if ev.at > l.topMax {
			l.topMax = ev.at
		}
		l.top = append(l.top, ev)
		return
	}
	// The rungs' live intervals decrease in time from rungs[0] down, so
	// the first rung whose consumption point the event has not passed is
	// the one it belongs to.
	for i := range l.rungs {
		r := &l.rungs[i]
		if ev.at >= r.curStart() {
			idx := int((ev.at - r.start) / r.width)
			if idx >= len(r.bkt) {
				idx = len(r.bkt) - 1
			}
			r.bkt[idx] = append(r.bkt[idx], ev)
			r.n++
			return
		}
	}
	l.insertBottom(ev)
}

// insertBottom places ev into the sorted bottom run.  The engine's seq
// counter is globally monotone, so a push always sorts after every
// queued event with the same timestamp; the binary search below honors
// full (at, seq) order regardless.
func (l *ladderQueue) insertBottom(ev event) {
	lo, hi := l.botHead, len(l.bot)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if less(&ev, &l.bot[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo == l.botHead && l.botHead > 0 {
		// Precedes every remaining bottom event: reuse the consumed slot
		// to its left instead of shifting the run.
		l.botHead--
		l.bot[l.botHead] = ev
		return
	}
	l.bot = append(l.bot, event{})
	copy(l.bot[lo+1:], l.bot[lo:])
	l.bot[lo] = ev
}

func (l *ladderQueue) pop() event {
	if l.botHead == len(l.bot) {
		l.surface()
	}
	ev := l.bot[l.botHead]
	l.bot[l.botHead] = event{} // no stale *Proc reference
	l.botHead++
	l.n--
	if l.botHead == len(l.bot) {
		l.bot = l.bot[:0]
		l.botHead = 0
	}
	return ev
}

func (l *ladderQueue) peek() *event {
	if l.n == 0 {
		return nil
	}
	if l.botHead == len(l.bot) {
		l.surface()
	}
	return &l.bot[l.botHead]
}

// surface refills the empty bottom run from the innermost rung (or, with
// no rungs, by spreading the top), so that the earliest pending events
// become a sorted run.  Buckets small enough — or too fine to split
// further — are sorted straight into the bottom; larger ones spawn a
// finer rung.
func (l *ladderQueue) surface() {
	for l.botHead == len(l.bot) {
		l.bot = l.bot[:0]
		l.botHead = 0
		if len(l.rungs) > 0 {
			ri := len(l.rungs) - 1
			r := &l.rungs[ri]
			if r.n == 0 {
				// Exhausted: retire the rung (its bucket arrays stay in
				// the slice capacity for the next spawn).
				l.rungs = l.rungs[:ri]
				continue
			}
			for len(r.bkt[r.cur]) == 0 {
				r.cur++
			}
			b := r.bkt[r.cur]
			if len(b) <= ladderSpread || r.width <= 1 || len(l.rungs) >= ladderMaxRungs {
				l.bot = append(l.bot, b...)
				clearEvents(b)
				r.bkt[r.cur] = b[:0]
				r.n -= len(l.bot)
				r.cur++
				sortEvents(l.bot)
				continue
			}
			l.spread(ri)
			continue
		}
		if len(l.top) > 0 {
			l.spreadTop()
			continue
		}
		return // empty queue
	}
}

// spread spawns a finer rung from bucket cur of rung ri.
func (l *ladderQueue) spread(ri int) {
	r := &l.rungs[ri]
	b := r.bkt[r.cur]
	start := r.curStart()
	width := (r.width + ladderBuckets - 1) / ladderBuckets
	if width < 1 {
		width = 1
	}
	nb := int((r.width + width - 1) / width)
	r.bkt[r.cur] = b[:0]
	r.n -= len(b)
	r.cur++
	nr := l.addRung(start, width, nb) // may grow l.rungs: r is dead now
	for _, ev := range b {
		idx := int((ev.at - start) / width)
		if idx >= len(nr.bkt) {
			idx = len(nr.bkt) - 1
		}
		nr.bkt[idx] = append(nr.bkt[idx], ev)
	}
	nr.n = len(b)
	clearEvents(b)
}

// spreadTop converts the unsorted top into rung 0 and re-arms the top
// for events past the spread range.
func (l *ladderQueue) spreadTop() {
	span := l.topMax - l.topMin + 1
	width := (span + ladderBuckets - 1) / ladderBuckets
	if width < 1 {
		width = 1
	}
	nb := int((span + width - 1) / width)
	nr := l.addRung(l.topMin, width, nb)
	for _, ev := range l.top {
		idx := int((ev.at - nr.start) / nr.width)
		if idx >= len(nr.bkt) {
			idx = len(nr.bkt) - 1
		}
		nr.bkt[idx] = append(nr.bkt[idx], ev)
	}
	nr.n = len(l.top)
	l.topStart = nr.start + nr.width*Time(nb)
	clearEvents(l.top)
	l.top = l.top[:0]
}

// addRung pushes a fresh rung, reviving a retired rung's bucket arrays
// when the slice capacity holds one.
func (l *ladderQueue) addRung(start, width Time, nb int) *ladderRung {
	if n := len(l.rungs); n < cap(l.rungs) {
		l.rungs = l.rungs[:n+1]
	} else {
		l.rungs = append(l.rungs, ladderRung{})
	}
	r := &l.rungs[len(l.rungs)-1]
	r.start, r.width, r.cur, r.n = start, width, 0, 0
	if cap(r.bkt) >= nb {
		r.bkt = r.bkt[:nb]
	} else {
		r.bkt = r.bkt[:cap(r.bkt)]
		for len(r.bkt) < nb {
			r.bkt = append(r.bkt, nil)
		}
	}
	for i := range r.bkt {
		if r.bkt[i] != nil {
			r.bkt[i] = r.bkt[i][:0]
		}
	}
	return r
}

func (l *ladderQueue) reset() {
	clearEvents(l.bot)
	l.bot = l.bot[:0]
	l.botHead = 0
	for i := range l.rungs {
		r := &l.rungs[i]
		for j := range r.bkt {
			clearEvents(r.bkt[j])
			r.bkt[j] = r.bkt[j][:0]
		}
		r.cur, r.n = 0, 0
	}
	l.rungs = l.rungs[:0]
	clearEvents(l.top)
	l.top = l.top[:0]
	l.topStart = minTime
	l.n = 0
}

func clearEvents(s []event) {
	for i := range s {
		s[i] = event{}
	}
}

// sortEvents orders a bucket by the kernel's total (at, seq) order.
func sortEvents(s []event) {
	slices.SortFunc(s, func(a, b event) int {
		switch {
		case a.at != b.at:
			if a.at < b.at {
				return -1
			}
			return 1
		case a.seq < b.seq:
			return -1
		case a.seq > b.seq:
			return 1
		}
		return 0
	})
}

// escalate switches the sequential pending queue from the binary heap to
// the ladder queue, migrating any queued events.  The pop order is
// unchanged — both structures produce the same total (at, seq) order —
// so escalation is invisible to results.
func (e *Engine) escalate() {
	for i := range e.heap.s {
		e.lad.push(e.heap.s[i])
		e.heap.s[i] = event{}
	}
	e.heap.s = e.heap.s[:0]
	e.q = &e.lad
}
