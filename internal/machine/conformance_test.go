package machine

import (
	"testing"

	"spasm/internal/mem"
)

// TestAllMachinesConform runs the conformance suite over every machine
// kind, every topology, and every coherence protocol variant.
func TestAllMachinesConform(t *testing.T) {
	type variant struct {
		name string
		cfg  Config
	}
	var variants []variant
	for _, kind := range Kinds() {
		for _, topo := range []string{"full", "cube", "mesh", "ring", "torus"} {
			variants = append(variants, variant{
				name: kind.String() + "/" + topo,
				cfg:  Config{Kind: kind, Topology: topo},
			})
		}
	}
	variants = append(variants,
		variant{"target/msi", Config{Kind: Target, Topology: "cube", Protocol: 1}},
		variant{"target/update", Config{Kind: Target, Topology: "cube", Protocol: 2}},
		variant{"clogp/adaptive", Config{Kind: CLogP, Topology: "mesh", AdaptiveG: true}},
		variant{"logp/perclass", Config{Kind: LogP, Topology: "mesh", PortMode: 1}},
		variant{"target/fastlinks", Config{Kind: Target, Topology: "mesh", LinkByteTime: 4}},
	)
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			factory := func() (Machine, *mem.Space, *mem.Array) {
				s := mem.NewSpace(8, 32)
				a := s.Alloc("conf", 8*64, 8, mem.Blocked)
				cfg := v.cfg
				cfg.P = 8
				m, err := New(cfg, s)
				if err != nil {
					t.Fatal(err)
				}
				return m, s, a
			}
			if err := Conformance(factory); err != nil {
				t.Error(err)
			}
		})
	}
}
