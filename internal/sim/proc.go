package sim

import "fmt"

// Proc is a simulated process.  Its methods must be called only from
// within the process's own function (the engine guarantees one process
// runs at a time, so this is naturally the case).
//
// Each process carries a *local clock* that may run ahead of the global
// event clock: purely local work (instruction blocks, cache hits) is
// accumulated with Defer and folded into the next real event, exactly as
// an execution-driven simulator runs local instructions at native speed
// and schedules only the shared events.  Now always reports the local
// clock, so timing is unaffected; only the number of engine events (and
// hence the cost of simulation) changes.
type Proc struct {
	ID   int
	Name string

	eng        *Engine
	resume     chan struct{}
	parked     bool
	terminated bool
	gen        uint64 // generation counter; events with an older gen are stale
	lag        Time   // local clock advance not yet materialized
	sched      Time   // latest scheduled resumption (see Horizon)

	// Parallel-mode span state (see parallel.go).  at/spanSeq are the
	// (at, seq) release key of the process's current span; dom is its
	// clock-vector domain; gate carries grant handoffs; granted/wantGate
	// implement the ordered commit gate's handoff protocol.
	at       Time
	spanSeq  uint64
	dom      int
	gate     chan struct{}
	granted  bool
	wantGate bool
}

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Now reports the process's local simulated time (the global event time
// plus any deferred local work).  In parallel mode the span's dispatch
// time stands in for the global clock: it is exactly what the sequential
// kernel's clock reads while this process runs.
func (p *Proc) Now() Time {
	if p.eng.par != nil {
		return p.at + p.lag
	}
	return p.eng.now + p.lag
}

// Horizon reports how far the process has progressed along its own
// timeline: its local clock, or its latest scheduled resumption if that
// lies further out.  A process that flushed deferred work (or holds
// until a future wakeup) has already accounted the simulated time up to
// that event even though Now still reports the global clock — telemetry
// probes use Horizon to place such charges in the right sampling epoch.
func (p *Proc) Horizon() Time {
	if n := p.Now(); n > p.sched {
		return n
	}
	return p.sched
}

// block dispatches the next event and waits to be resumed.  When the
// next event belongs to p itself, advance returns with the run token
// still here and block returns immediately — no goroutine handoff.
//
// If the run began aborting while p was blocked, the resumption is the
// process's last: block panics with abortSignal so the goroutine
// unwinds out of the application code and terminates (Spawn's handler
// recognizes the signal), instead of running on inside a dead
// simulation.
func (p *Proc) block() {
	if p.eng.advance(p) {
		if p.eng.aborting {
			panic(abortSignal{})
		}
		return
	}
	<-p.resume
	if p.eng.aborting {
		panic(abortSignal{})
	}
}

// Defer advances the process's local clock by d without scheduling an
// engine event.  The deferred time is folded into the next Hold, Park or
// Yield.  Use it for work that cannot interact with other processes.
func (p *Proc) Defer(d Time) {
	if d > 0 {
		p.lag += d
	}
}

// Lag returns the process's deferred local time (exposed for tests).
func (p *Proc) Lag() Time { return p.lag }

// FlushLag materializes any deferred local time as a real event,
// advancing the global clock to the process's local clock.  Synchroniz-
// ation objects call it BEFORE inserting the process into a wait queue:
// a process must never sit in a waiter list while it still owes the
// engine a flush event, or a waker could try to Wake it mid-flush.
func (p *Proc) FlushLag() {
	if p.lag > 0 {
		d := p.lag
		p.lag = 0
		if p.eng.par != nil {
			p.parHold(p.at + d)
			return
		}
		p.eng.schedule(p.eng.now+d, p)
		p.block()
	}
}

// Hold advances the process's local activity by d units of simulated
// time: the process sleeps and other processes run in the interim.  Any
// deferred local time is folded into the same event.  A non-positive d
// still flushes deferred time.
func (p *Proc) Hold(d Time) {
	if d < 0 {
		d = 0
	}
	if d+p.lag <= 0 {
		return
	}
	if p.eng.par != nil {
		at := p.at + p.lag + d
		p.lag = 0
		p.parHold(at)
		return
	}
	at := p.eng.now + p.lag + d
	p.lag = 0
	p.eng.schedule(at, p)
	p.block()
}

// HoldUntil sleeps until absolute local time t (no-op if t <= Now()).
func (p *Proc) HoldUntil(t Time) {
	if t <= p.Now() {
		return
	}
	p.lag = 0
	if p.eng.par != nil {
		p.parHold(t)
		return
	}
	p.eng.schedule(t, p)
	p.block()
}

// Park blocks the process indefinitely; some other process must Wake it.
// Callers that enqueue the process on a wait list must FlushLag before
// enqueueing (see Queue.Wait); Park itself must not flush, because by
// the time it runs the process may already be visible to wakers.
func (p *Proc) Park() {
	e := p.eng
	if e.par != nil {
		// Parking ends the span: the parked flag is release bookkeeping,
		// so committing it is the span's final global section.
		p.enterGate()
		e.parMu.Lock()
		p.parked = true
		e.parMu.Unlock()
		if p.parEnd() {
			<-p.resume
			if e.aborting {
				panic(abortSignal{})
			}
			return
		}
		// Retiring this span drained the run out of parallel mode
		// (interrupt, or a deadlock about to be diagnosed); rejoin the
		// sequential dispatch loop, which unwinds or ends the run.
		p.block()
		return
	}
	p.parked = true
	p.block()
}

// Wake schedules a parked process to resume at the current simulated
// time.  Waking a process that is not parked panics: that is always a
// bookkeeping bug in a synchronization object — except while the run is
// aborting, when Wake is a no-op: the engine has already scheduled every
// parked process for its final unwind resumption, and deferred cleanup
// in unwinding application frames (lock releases, barrier exits) may
// legitimately try to wake peers that are no longer parked.
func (p *Proc) Wake() {
	e := p.eng
	if e.par != nil {
		// The waker holds the commit grant (wakes happen inside Ordered
		// sections of synchronization objects), so e.now — the waker's
		// span time — is stable, and the heap push serializes under the
		// gate mutex.  A parallel run is never aborting (the engine
		// leaves parallel mode before any unwind begins).
		e.parMu.Lock()
		if !p.parked {
			e.parMu.Unlock()
			panic(fmt.Sprintf("sim: Wake of non-parked process %q", p.Name))
		}
		e.parScheduleLocked(e.now, p)
		e.parMu.Unlock()
		return
	}
	if e.aborting {
		return
	}
	if !p.parked {
		panic(fmt.Sprintf("sim: Wake of non-parked process %q", p.Name))
	}
	e.schedule(e.now, p)
}

// Yield reschedules the process at its current local time behind any
// other process already scheduled there, giving them a chance to run.
func (p *Proc) Yield() {
	if p.eng.par != nil {
		at := p.at + p.lag
		p.lag = 0
		p.parHold(at)
		return
	}
	at := p.eng.now + p.lag
	p.lag = 0
	p.eng.schedule(at, p)
	p.block()
}
