package runpool

import (
	"testing"

	"spasm/internal/machine"
)

func TestGetPutReuse(t *testing.T) {
	p := New(0)
	cfg := machine.Config{Kind: machine.Target, Topology: "mesh", P: 8}

	c1, err := p.Get(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c1.Eng == nil || c1.Space == nil {
		t.Fatal("fresh context missing engine or space")
	}
	if c1.Space.P() != 8 {
		t.Fatalf("space built for P=%d, want 8", c1.Space.P())
	}
	p.Put(c1)

	// Same canonical configuration gets the same context back.
	c2, err := p.Get(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c2 != c1 {
		t.Fatal("idle context was not reused for an identical configuration")
	}
	p.Put(c2)

	// A different key must not share contexts.
	c3, err := p.Get(machine.Config{Kind: machine.Target, Topology: "cube", P: 8})
	if err != nil {
		t.Fatal(err)
	}
	if c3 == c1 {
		t.Fatal("contexts shared across distinct configuration keys")
	}
	p.Put(c3)

	st := p.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Live != 2 {
		t.Fatalf("stats %+v, want hits 1, misses 2, live 2", st)
	}
}

func TestCanonicalKeying(t *testing.T) {
	p := New(0)
	// Zero-value cost/network fields canonicalize to the defaults, so an
	// explicit-default configuration must hit the same pool slot.
	implicit := machine.Config{Kind: machine.LogP, Topology: "full", P: 4}
	explicit := implicit.Canonical()

	c1, err := p.Get(implicit)
	if err != nil {
		t.Fatal(err)
	}
	p.Put(c1)
	c2, err := p.Get(explicit)
	if err != nil {
		t.Fatal(err)
	}
	if c2 != c1 {
		t.Fatal("canonically equal configurations mapped to different pool keys")
	}
}

func TestIdleCap(t *testing.T) {
	p := New(2)
	cfg := machine.Config{Kind: machine.Ideal, P: 2}
	var ctxs []*Ctx
	for i := 0; i < 4; i++ {
		c, err := p.Get(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ctxs = append(ctxs, c)
	}
	for _, c := range ctxs {
		p.Put(c)
	}
	st := p.Stats()
	if st.Live != 2 {
		t.Fatalf("idle cap 2 retained %d live contexts", st.Live)
	}

	// The retained contexts drain before anything new is built.
	for i := 0; i < 2; i++ {
		if _, err := p.Get(cfg); err != nil {
			t.Fatal(err)
		}
	}
	if st := p.Stats(); st.Hits != 2 {
		t.Fatalf("draining the freelist recorded %d hits, want 2", st.Hits)
	}
}

func TestGetRejectsInvalidP(t *testing.T) {
	if _, err := New(0).Get(machine.Config{Kind: machine.Ideal}); err == nil {
		t.Fatal("Get accepted a configuration with no processors")
	}
}

// TestDiscard: a discarded context leaves the pool entirely — it is not
// reusable, and the live count drops so leak checks see it gone.
func TestDiscard(t *testing.T) {
	p := New(0)
	cfg := machine.Config{Kind: machine.Target, Topology: "mesh", P: 4}
	c1, err := p.Get(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.Discard(c1)
	if st := p.Stats(); st.Live != 0 || st.Discarded != 1 {
		t.Fatalf("after discard: %+v, want live 0, discarded 1", st)
	}
	c2, err := p.Get(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c2 == c1 {
		t.Fatal("discarded context came back out of the pool")
	}
	p.Put(c2)
	p.Discard(nil) // harmless
}

// TestDiscardReleasesMachine: a context leaving the pool for good — by
// explicit Discard or by idle-cap overflow on Put — must release its
// machine's recyclable resources, after which the machine can never be
// rebound (the context is gone; a rebind would observe freed arrays).
func TestDiscardReleasesMachine(t *testing.T) {
	cfg := machine.Config{Kind: machine.LogP, Topology: "full", P: 4}
	bindOnce := func(c *Ctx) {
		t.Helper()
		if _, err := c.Bind(); err != nil {
			t.Fatal(err)
		}
	}

	p := New(1)
	c1, err := p.Get(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bindOnce(c1)
	p.Discard(c1)
	if _, err := c1.Bind(); err == nil {
		t.Fatal("Bind succeeded on a discarded context's machine")
	}

	// Idle-cap overflow on Put is the other exit path.
	c2, err := p.Get(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c3, err := p.Get(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bindOnce(c2)
	bindOnce(c3)
	p.Put(c2) // retained (cap 1)
	p.Put(c3) // overflow: dropped and released
	if _, err := c3.Bind(); err == nil {
		t.Fatal("Bind succeeded on an overflow-dropped context's machine")
	}
	c4, err := p.Get(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c4 != c2 {
		t.Fatal("retained context was not the one handed back")
	}
	bindOnce(c4) // the retained context must still bind fine
}

// TestStatsByKind: a pool serving two machine kinds reports their
// populations apart, and the per-kind counters reconcile with the
// aggregate.
func TestStatsByKind(t *testing.T) {
	p := New(0)
	flow := machine.Config{Kind: machine.Flow, Topology: "mesh", P: 4}
	target := machine.Config{Kind: machine.Target, Topology: "mesh", P: 4}
	cf, err := p.Get(flow)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := p.Get(target)
	if err != nil {
		t.Fatal(err)
	}
	p.Put(cf)
	p.Discard(ct)
	cf2, err := p.Get(flow) // hit
	if err != nil {
		t.Fatal(err)
	}
	p.Put(cf2)

	by := p.StatsByKind()
	fs, ts := by[machine.Flow.String()], by[machine.Target.String()]
	if fs.Hits != 1 || fs.Misses != 1 || fs.Live != 1 || fs.Discarded != 0 {
		t.Fatalf("flow kind stats %+v, want hits 1, misses 1, live 1", fs)
	}
	if ts.Hits != 0 || ts.Misses != 1 || ts.Live != 0 || ts.Discarded != 1 {
		t.Fatalf("target kind stats %+v, want misses 1, discarded 1", ts)
	}
	agg := p.Stats()
	var hits, misses uint64
	var live, disc int
	for _, s := range by {
		hits += s.Hits
		misses += s.Misses
		live += s.Live
		disc += s.Discarded
	}
	if hits != agg.Hits || misses != agg.Misses || live != agg.Live || disc != agg.Discarded {
		t.Fatalf("per-kind stats %v do not reconcile with aggregate %+v", by, agg)
	}
}
