package service

import (
	"fmt"
	"testing"
	"time"
)

func TestLRUEviction(t *testing.T) {
	c := newLRU(2)
	for i := 0; i < 3; i++ {
		c.add(&entry{id: fmt.Sprintf("e%d", i)})
	}
	hits, misses, evictions, entries := c.counters()
	if entries != 2 || evictions != 1 {
		t.Fatalf("entries=%d evictions=%d, want 2/1", entries, evictions)
	}
	if _, ok := c.get("e0", true); ok {
		t.Fatal("oldest entry e0 survived eviction")
	}
	if _, ok := c.get("e2", true); !ok {
		t.Fatal("newest entry e2 evicted")
	}
	hits, misses, _, _ = c.counters()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", hits, misses)
	}
}

func TestLRURecencyOrder(t *testing.T) {
	c := newLRU(2)
	c.add(&entry{id: "a"})
	c.add(&entry{id: "b"})
	// Touch a so b becomes the eviction victim.
	if _, ok := c.get("a", false); !ok {
		t.Fatal("a missing")
	}
	c.add(&entry{id: "c"})
	if _, ok := c.get("a", false); !ok {
		t.Fatal("recently used entry a evicted")
	}
	if _, ok := c.get("b", false); ok {
		t.Fatal("least recently used entry b survived")
	}
	// Uncounted lookups must not move the counters.
	hits, misses, _, _ := c.counters()
	if hits != 0 || misses != 0 {
		t.Fatalf("uncounted lookups charged: hits=%d misses=%d", hits, misses)
	}
}

func TestLRURefreshDoesNotEvict(t *testing.T) {
	c := newLRU(2)
	c.add(&entry{id: "a"})
	c.add(&entry{id: "b"})
	if evicted := c.add(&entry{id: "a", err: "updated"}); evicted != 0 {
		t.Fatalf("refreshing a resident entry evicted %d", evicted)
	}
	e, ok := c.get("a", false)
	if !ok || e.err != "updated" {
		t.Fatalf("refresh lost: %+v ok=%v", e, ok)
	}
}

func TestNegCacheTTL(t *testing.T) {
	c := newNegCache(4, time.Second)
	now := time.Unix(100, 0)
	c.add(&entry{id: "bad", err: "boom"}, now)
	if e, ok := c.get("bad", now.Add(500*time.Millisecond), true); !ok || e.err != "boom" {
		t.Fatalf("unexpired entry missing: %+v ok=%v", e, ok)
	}
	if _, ok := c.get("bad", now.Add(2*time.Second), true); ok {
		t.Fatal("expired entry served")
	}
	// The expired entry was dropped on sight, not just hidden.
	if _, entries := c.counters(); entries != 0 {
		t.Fatalf("entries = %d after expiry, want 0", entries)
	}
	if hits, _ := c.counters(); hits != 1 {
		t.Fatalf("hits = %d, want 1 (expired lookup must not count)", hits)
	}
}

func TestNegCacheBounded(t *testing.T) {
	c := newNegCache(2, time.Minute)
	now := time.Unix(100, 0)
	for i := 0; i < 3; i++ {
		c.add(&entry{id: fmt.Sprintf("f%d", i), err: "x"}, now)
	}
	if _, entries := c.counters(); entries != 2 {
		t.Fatalf("entries = %d, want 2 (bounded)", entries)
	}
	if _, ok := c.get("f0", now, false); ok {
		t.Fatal("oldest failure survived the bound")
	}
	if _, ok := c.get("f2", now, false); !ok {
		t.Fatal("newest failure evicted")
	}
}

func TestNegCacheRefreshRestartsTTL(t *testing.T) {
	c := newNegCache(4, time.Second)
	t0 := time.Unix(100, 0)
	c.add(&entry{id: "bad", err: "first"}, t0)
	// Re-adding at t0+900ms restarts the clock; at t0+1.5s the entry is
	// still alive (and carries the refreshed error).
	c.add(&entry{id: "bad", err: "second"}, t0.Add(900*time.Millisecond))
	e, ok := c.get("bad", t0.Add(1500*time.Millisecond), false)
	if !ok || e.err != "second" {
		t.Fatalf("refreshed entry: %+v ok=%v", e, ok)
	}
}
