package service

import (
	"errors"
	"sort"
)

// DefaultTenant is the bucket for requests that carry no tenant header.
const DefaultTenant = "default"

// ErrTenantQuota is returned when a submission would push its tenant
// past a per-tenant admission quota (outstanding runs or queued bytes).
// Unlike ErrQueueFull it indicts one tenant, not the service: other
// tenants keep submitting normally, and the rejected tenant is admitted
// again as soon as its own work drains.
var ErrTenantQuota = errors.New("service: tenant over admission quota")

// strideUnit is the stride numerator: a tenant of weight w advances its
// pass by strideUnit/w per job scheduled, so relative throughput is
// proportional to weight.
const strideUnit = 1 << 20

// tenantQueue is one tenant's admission state: its FIFO of pending jobs
// plus the accounting the quotas and the scheduler need.
type tenantQueue struct {
	name   string
	weight int
	// pass is the tenant's stride-scheduling virtual time; the pending
	// tenant with the smallest pass runs next.
	pass uint64
	jobs []*Job
	// queuedBytes is the request-body weight of the tenant's pending
	// jobs (charged at enqueue, credited at dispatch or cancellation).
	queuedBytes int64
	// outstanding counts the tenant's admitted-but-unfinished jobs —
	// pending and running — the unit the run quota bounds.
	outstanding int
}

// fairQueue is the pending-job queue: per-tenant FIFOs scheduled by
// stride (weighted fair sharing), bounded globally by depth and
// per-tenant by the run/byte quotas.  Like the caches it is not
// self-locking — every method runs under the owning Server's mutex.
//
// The scheduling invariant: over any interval in which two tenants both
// stay backlogged, the jobs dispatched to each are proportional to
// their weights, regardless of how many requests either submits.  A
// tenant arriving after an idle period starts at the queue's current
// pass floor, so it cannot claim "catch-up" service for time it was
// absent.
type fairQueue struct {
	depth      int
	weights    map[string]int
	quotaRuns  int
	quotaBytes int64
	maxTenants int

	tenants map[string]*tenantQueue
	size    int
	// base is the pass floor: the pass of the most recently scheduled
	// tenant, inherited by tenants joining (or rejoining) the queue.
	base uint64
}

func newFairQueue(cfg Config) *fairQueue {
	return &fairQueue{
		depth:      cfg.QueueDepth,
		weights:    cfg.TenantWeights,
		quotaRuns:  cfg.TenantQuotaRuns,
		quotaBytes: cfg.TenantQuotaBytes,
		maxTenants: cfg.MaxTenants,
		tenants:    make(map[string]*tenantQueue),
	}
}

// bucket returns (creating if needed) the queue for tenant.  Beyond
// MaxTenants distinct names, further tenants share one overflow bucket:
// an attacker minting a tenant per request gets one tenant's share, not
// an unbounded map.
func (q *fairQueue) bucket(tenant string) *tenantQueue {
	if t, ok := q.tenants[tenant]; ok {
		return t
	}
	if len(q.tenants) >= q.maxTenants {
		if t, ok := q.tenants[overflowTenant]; ok {
			return t
		}
		tenant = overflowTenant
	}
	w := q.weights[tenant]
	if w < 1 {
		w = 1
	}
	t := &tenantQueue{name: tenant, weight: w, pass: q.base}
	q.tenants[tenant] = t
	return t
}

// overflowTenant aggregates tenants past the MaxTenants cap.
const overflowTenant = "~overflow"

// push admits j (whose tenant and bytes fields are set) or rejects it
// with ErrQueueFull / ErrTenantQuota.
func (q *fairQueue) push(j *Job) error {
	if q.size >= q.depth {
		return ErrQueueFull
	}
	t := q.bucket(j.tenant)
	j.tenant = t.name // overflow rewrite, so later accounting finds the bucket
	if q.quotaRuns > 0 && t.outstanding >= q.quotaRuns {
		return ErrTenantQuota
	}
	if q.quotaBytes > 0 && j.bytes > 0 && t.queuedBytes+j.bytes > q.quotaBytes {
		return ErrTenantQuota
	}
	if len(t.jobs) == 0 && t.pass < q.base {
		// Rejoining after an idle stretch: no retroactive credit.
		t.pass = q.base
	}
	t.jobs = append(t.jobs, j)
	t.queuedBytes += j.bytes
	t.outstanding++
	q.size++
	return nil
}

// pop dispatches the next job under stride scheduling — the pending
// tenant with the smallest pass, ties broken by name so dispatch order
// is deterministic — or nil when nothing is pending.
func (q *fairQueue) pop() *Job {
	var best *tenantQueue
	for _, t := range q.tenants {
		if len(t.jobs) == 0 {
			continue
		}
		if best == nil || t.pass < best.pass ||
			(t.pass == best.pass && t.name < best.name) {
			best = t
		}
	}
	if best == nil {
		return nil
	}
	j := best.jobs[0]
	best.jobs = best.jobs[1:]
	if len(best.jobs) == 0 {
		best.jobs = nil
	}
	best.queuedBytes -= j.bytes
	q.size--
	q.base = best.pass
	best.pass += strideUnit / uint64(best.weight)
	return j
}

// remove deletes a still-pending job (the waiter-cancellation path),
// crediting its queue accounting as if it had never been admitted.
func (q *fairQueue) remove(j *Job) {
	t, ok := q.tenants[j.tenant]
	if !ok {
		return
	}
	for i, pending := range t.jobs {
		if pending == j {
			t.jobs = append(t.jobs[:i], t.jobs[i+1:]...)
			t.queuedBytes -= j.bytes
			t.outstanding--
			q.size--
			return
		}
	}
}

// jobDone credits a dispatched job's completion against its tenant's
// run quota.
func (q *fairQueue) jobDone(j *Job) {
	if t, ok := q.tenants[j.tenant]; ok {
		t.outstanding--
	}
}

// queuedByTenant snapshots each tenant's pending-job count for the
// metrics page (tenants with no queued work are omitted), sorted by
// name.
func (q *fairQueue) queuedByTenant() []tenantDepth {
	var out []tenantDepth
	for name, t := range q.tenants {
		if len(t.jobs) > 0 {
			out = append(out, tenantDepth{name, len(t.jobs)})
		}
	}
	sort.Slice(out, func(i, k int) bool { return out[i].name < out[k].name })
	return out
}

type tenantDepth struct {
	name  string
	depth int
}
