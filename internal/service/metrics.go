package service

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// latencyBounds are the per-endpoint histogram bucket upper bounds, in
// seconds.  Simulations span ~milliseconds (tiny scale) to minutes
// (medium-scale figures), so the buckets are decades.
var latencyBounds = [...]float64{0.001, 0.01, 0.1, 1, 10, 60}

// histogram is a fixed-bucket latency histogram (counts per bound, plus
// the +Inf bucket implied by n).
type histogram struct {
	counts [len(latencyBounds)]uint64
	sum    float64 // seconds
	n      uint64
}

func (h *histogram) observe(seconds float64) {
	h.sum += seconds
	h.n++
	for i, b := range latencyBounds {
		if seconds <= b {
			h.counts[i]++
		}
	}
}

// Metrics aggregates the service's operational counters.  The cache and
// queue counters live with their owners; Metrics covers jobs, workers
// and HTTP latency.
type Metrics struct {
	start   time.Time
	workers int

	mu            sync.Mutex
	submitted     uint64
	coalesced     uint64
	done          uint64
	failed        uint64
	canceled      uint64 // jobs dropped before execution (all waiters gone)
	escalated     uint64 // adaptive runs that tripped onto the detailed tier
	runsParallel  uint64 // runs executed on the windowed parallel kernel
	parFallbacks  uint64 // runs that requested parallel but fell back to sequential
	timeouts      uint64 // failed jobs whose failure was the run deadline
	rejected      uint64 // submissions bounced with ErrQueueFull
	profHits      uint64 // profiles served from the memoized encoding
	profMiss      uint64 // profiles computed on demand
	profCoalesced uint64 // profile requests that waited on an in-flight computation
	bodyLimited   uint64 // requests rejected 413 by the body-size cap
	streamsOpened uint64 // SSE stream subscriptions accepted
	streamsActive int    // SSE streams currently connected
	streamEvents  uint64 // epoch events published to stream hubs
	busy          int
	byPath        map[string]*histogram
	byTenant      map[string]*tenantCounters
}

// tenantCounters is one tenant's admission tally.
type tenantCounters struct {
	submitted uint64
	rejected  uint64 // submissions bounced with ErrTenantQuota
}

func newMetrics(start time.Time, workers int) *Metrics {
	return &Metrics{start: start, workers: workers,
		byPath:   make(map[string]*histogram),
		byTenant: make(map[string]*tenantCounters),
	}
}

func (m *Metrics) jobSubmitted() {
	m.mu.Lock()
	m.submitted++
	m.mu.Unlock()
}

func (m *Metrics) jobCoalesced() {
	m.mu.Lock()
	m.coalesced++
	m.mu.Unlock()
}

func (m *Metrics) jobFinished(ok, timedOut bool) {
	m.mu.Lock()
	if ok {
		m.done++
	} else {
		m.failed++
		if timedOut {
			m.timeouts++
		}
	}
	m.mu.Unlock()
}

func (m *Metrics) jobCanceled() {
	m.mu.Lock()
	m.canceled++
	m.mu.Unlock()
}

func (m *Metrics) runEscalated() {
	m.mu.Lock()
	m.escalated++
	m.mu.Unlock()
}

// runParallelOutcome records one run that requested parallel execution:
// either it ran on the windowed kernel or it fell back to sequential.
func (m *Metrics) runParallelOutcome(parallel bool) {
	m.mu.Lock()
	if parallel {
		m.runsParallel++
	} else {
		m.parFallbacks++
	}
	m.mu.Unlock()
}

func (m *Metrics) jobRejected() {
	m.mu.Lock()
	m.rejected++
	m.mu.Unlock()
}

func (m *Metrics) profileServed(hit bool) {
	m.mu.Lock()
	if hit {
		m.profHits++
	} else {
		m.profMiss++
	}
	m.mu.Unlock()
}

func (m *Metrics) profileCoalesced() {
	m.mu.Lock()
	m.profCoalesced++
	m.mu.Unlock()
}

func (m *Metrics) bodyTooLarge() {
	m.mu.Lock()
	m.bodyLimited++
	m.mu.Unlock()
}

// streamOpen tracks the SSE subscription gauge; delta +1 also counts
// toward the cumulative streams-started total.
func (m *Metrics) streamOpen(delta int) {
	m.mu.Lock()
	m.streamsActive += delta
	if delta > 0 {
		m.streamsOpened++
	}
	m.mu.Unlock()
}

func (m *Metrics) streamEventEmitted() {
	m.mu.Lock()
	m.streamEvents++
	m.mu.Unlock()
}

func (m *Metrics) tenant(name string) *tenantCounters {
	t := m.byTenant[name]
	if t == nil {
		t = &tenantCounters{}
		m.byTenant[name] = t
	}
	return t
}

func (m *Metrics) tenantSubmitted(name string) {
	m.mu.Lock()
	m.tenant(name).submitted++
	m.mu.Unlock()
}

func (m *Metrics) tenantRejected(name string) {
	m.mu.Lock()
	m.tenant(name).rejected++
	m.mu.Unlock()
}

func (m *Metrics) workerBusy(delta int) {
	m.mu.Lock()
	m.busy += delta
	m.mu.Unlock()
}

func (m *Metrics) observe(path string, d time.Duration) {
	m.mu.Lock()
	h := m.byPath[path]
	if h == nil {
		h = &histogram{}
		m.byPath[path] = h
	}
	h.observe(d.Seconds())
	m.mu.Unlock()
}

// render writes the metrics in the Prometheus text exposition format.
// Cache, queue, and pool figures are passed in by the Server, which owns
// them.
func (m *Metrics) render(b *strings.Builder, queueDepth int, hits, misses, evictions uint64, entries int, negHits uint64, negEntries int, pool poolStats, poolKinds map[string]poolStats, st storeCounters, tenantQueued []tenantDepth) {
	m.mu.Lock()
	defer m.mu.Unlock()
	fmt.Fprintf(b, "spasmd_uptime_seconds %.3f\n", time.Since(m.start).Seconds())
	fmt.Fprintf(b, "spasmd_workers %d\n", m.workers)
	fmt.Fprintf(b, "spasmd_workers_busy %d\n", m.busy)
	fmt.Fprintf(b, "spasmd_queue_depth %d\n", queueDepth)
	fmt.Fprintf(b, "spasmd_jobs_submitted_total %d\n", m.submitted)
	// runs_coalesced is the canonical name; jobs_coalesced is kept as an
	// alias of the same counter for dashboards built against PR 1.
	fmt.Fprintf(b, "spasmd_runs_coalesced_total %d\n", m.coalesced)
	fmt.Fprintf(b, "spasmd_jobs_coalesced_total %d\n", m.coalesced)
	fmt.Fprintf(b, "spasmd_jobs_done_total %d\n", m.done)
	fmt.Fprintf(b, "spasmd_jobs_failed_total %d\n", m.failed)
	fmt.Fprintf(b, "spasmd_jobs_canceled_total %d\n", m.canceled)
	fmt.Fprintf(b, "spasmd_jobs_timeout_total %d\n", m.timeouts)
	fmt.Fprintf(b, "spasmd_jobs_rejected_total %d\n", m.rejected)
	// Adaptive-fidelity runs that tripped their escalation threshold and
	// were rerun on the detailed tier.
	fmt.Fprintf(b, "spasmd_runs_escalated_total %d\n", m.escalated)
	// Parallel-execution outcomes: runs that asked for workers > 1 and ran
	// on the windowed kernel, vs ones that fell back to the sequential
	// kernel (no lookahead, probes attached, ...).
	fmt.Fprintf(b, "spasmd_runs_parallel_total %d\n", m.runsParallel)
	fmt.Fprintf(b, "spasmd_par_fallbacks_total %d\n", m.parFallbacks)
	fmt.Fprintf(b, "spasmd_profile_cache_hits_total %d\n", m.profHits)
	fmt.Fprintf(b, "spasmd_profile_cache_misses_total %d\n", m.profMiss)
	fmt.Fprintf(b, "spasmd_profiles_coalesced_total %d\n", m.profCoalesced)
	fmt.Fprintf(b, "spasmd_cache_hits_total %d\n", hits)
	fmt.Fprintf(b, "spasmd_cache_misses_total %d\n", misses)
	fmt.Fprintf(b, "spasmd_cache_evictions_total %d\n", evictions)
	fmt.Fprintf(b, "spasmd_cache_entries %d\n", entries)
	// negative_hits counts submissions answered a remembered failure —
	// distinct from cache_hits, which stays a successes-only counter.
	fmt.Fprintf(b, "spasmd_cache_negative_hits_total %d\n", negHits)
	fmt.Fprintf(b, "spasmd_cache_negative_entries %d\n", negEntries)
	if st.Enabled {
		// Durable result store: disk tier below the in-memory LRU.
		fmt.Fprintf(b, "spasmd_store_hits_total %d\n", st.Hits)
		fmt.Fprintf(b, "spasmd_store_misses_total %d\n", st.Misses)
		fmt.Fprintf(b, "spasmd_store_writes_total %d\n", st.Writes)
		fmt.Fprintf(b, "spasmd_store_errors_total %d\n", st.Errors)
		fmt.Fprintf(b, "spasmd_store_entries %d\n", st.Entries)
		fmt.Fprintf(b, "spasmd_store_bytes %d\n", st.Bytes)
	}
	fmt.Fprintf(b, "spasmd_body_too_large_total %d\n", m.bodyLimited)
	fmt.Fprintf(b, "spasmd_streams_started_total %d\n", m.streamsOpened)
	fmt.Fprintf(b, "spasmd_streams_active %d\n", m.streamsActive)
	fmt.Fprintf(b, "spasmd_stream_events_total %d\n", m.streamEvents)
	tenants := make([]string, 0, len(m.byTenant))
	for t := range m.byTenant {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	for _, t := range tenants {
		tc := m.byTenant[t]
		fmt.Fprintf(b, "spasmd_tenant_submitted_total{tenant=%q} %d\n", t, tc.submitted)
		fmt.Fprintf(b, "spasmd_tenant_rejected_total{tenant=%q} %d\n", t, tc.rejected)
	}
	for _, td := range tenantQueued {
		fmt.Fprintf(b, "spasmd_tenant_queued{tenant=%q} %d\n", td.name, td.depth)
	}
	fmt.Fprintf(b, "spasmd_pool_hits_total %d\n", pool.Hits)
	fmt.Fprintf(b, "spasmd_pool_misses_total %d\n", pool.Misses)
	fmt.Fprintf(b, "spasmd_pool_contexts_live %d\n", pool.Live)
	fmt.Fprintf(b, "spasmd_pool_contexts_discarded_total %d\n", pool.Discarded)
	// Per-machine-kind breakdown of the same counters, so a pool serving
	// an adaptive workload shows its flow-tier and detailed populations
	// apart.
	kinds := make([]string, 0, len(poolKinds))
	for k := range poolKinds {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		ks := poolKinds[k]
		fmt.Fprintf(b, "spasmd_pool_hits_total{kind=%q} %d\n", k, ks.Hits)
		fmt.Fprintf(b, "spasmd_pool_misses_total{kind=%q} %d\n", k, ks.Misses)
		fmt.Fprintf(b, "spasmd_pool_contexts_live{kind=%q} %d\n", k, ks.Live)
		fmt.Fprintf(b, "spasmd_pool_contexts_discarded_total{kind=%q} %d\n", k, ks.Discarded)
	}

	paths := make([]string, 0, len(m.byPath))
	for p := range m.byPath {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		h := m.byPath[p]
		fmt.Fprintf(b, "spasmd_http_requests_total{path=%q} %d\n", p, h.n)
		fmt.Fprintf(b, "spasmd_http_request_duration_seconds_sum{path=%q} %.6f\n", p, h.sum)
		for i, bound := range latencyBounds {
			fmt.Fprintf(b, "spasmd_http_request_duration_seconds_bucket{path=%q,le=\"%g\"} %d\n", p, bound, h.counts[i])
		}
		fmt.Fprintf(b, "spasmd_http_request_duration_seconds_bucket{path=%q,le=\"+Inf\"} %d\n", p, h.n)
	}
}

// poolStats mirrors the run-context pool's counters for rendering
// without importing the pool type here.
type poolStats struct {
	Hits, Misses    uint64
	Live, Discarded int
}

// storeCounters mirrors the durable store's counters for rendering
// without importing the store type here.  Enabled is false when the
// daemon runs memory-only, which suppresses the store lines entirely.
type storeCounters struct {
	Enabled                      bool
	Hits, Misses, Writes, Errors uint64
	Entries                      int
	Bytes                        int64
}

// Render returns the full metrics page; the Server method gathers the
// cache, queue, and pool numbers under the locks that own them.
func (s *Server) RenderMetrics() string {
	s.mu.Lock()
	hits, misses, evictions, entries := s.cache.counters()
	negHits, negEntries := s.neg.counters()
	tenantQueued := s.fq.queuedByTenant()
	s.mu.Unlock()
	ps := s.pool.Stats()
	byKind := make(map[string]poolStats)
	for k, ks := range s.pool.StatsByKind() {
		byKind[k] = poolStats{Hits: ks.Hits, Misses: ks.Misses, Live: ks.Live, Discarded: ks.Discarded}
	}
	var st storeCounters
	if s.store != nil {
		ss := s.store.Stats()
		st = storeCounters{Enabled: true, Hits: ss.Hits, Misses: ss.Misses,
			Writes: ss.Writes, Errors: ss.Errors, Entries: ss.Entries, Bytes: ss.Bytes}
	}
	var b strings.Builder
	s.metrics.render(&b, s.QueueDepth(), hits, misses, evictions, entries, negHits, negEntries,
		poolStats{Hits: ps.Hits, Misses: ps.Misses, Live: ps.Live, Discarded: ps.Discarded}, byKind,
		st, tenantQueued)
	return b.String()
}
