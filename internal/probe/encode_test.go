package probe_test

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"spasm"
	"spasm/internal/probe"
)

// goldenSpec is the fixed run behind the golden profile encoding.
func goldenSpec() (string, spasm.Scale, int64, spasm.Config) {
	return "ep", spasm.Tiny, 1, spasm.Config{Kind: spasm.Target, Topology: "mesh", P: 4}
}

func encodeProfile(t *testing.T, p *probe.Profile) []byte {
	t.Helper()
	var buf bytes.Buffer
	n, err := p.Encode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != buf.Len() {
		t.Fatalf("Encode reported %d bytes, wrote %d", n, buf.Len())
	}
	return buf.Bytes()
}

// TestEncodeDeterministic runs the same spec twice, independently, and
// requires byte-identical encoded profiles.
func TestEncodeDeterministic(t *testing.T) {
	app, sc, seed, cfg := goldenSpec()
	_, p1, err := spasm.RunProfiled(app, sc, seed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, p2, err := spasm.RunProfiled(app, sc, seed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b1, b2 := encodeProfile(t, p1), encodeProfile(t, p2)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("independent runs encoded differently (%d vs %d bytes)", len(b1), len(b2))
	}
}

// TestEncodeRoundTrip checks that Encode → Decode → Encode is lossless,
// both structurally and byte-for-byte.
func TestEncodeRoundTrip(t *testing.T) {
	app, sc, seed, cfg := goldenSpec()
	_, p, err := spasm.RunProfiled(app, sc, seed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	enc := encodeProfile(t, p)
	dec, err := probe.Decode(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, dec) {
		t.Fatal("decoded profile differs from the original")
	}
	if re := encodeProfile(t, dec); !bytes.Equal(enc, re) {
		t.Fatal("re-encoding a decoded profile changed the bytes")
	}
}

// TestEncodeGolden pins the canonical encoding against a checked-in
// golden file, so accidental format or simulation changes surface as a
// test failure.  Regenerate with -update after an intentional change.
var update = os.Getenv("UPDATE_GOLDEN") != ""

func TestEncodeGolden(t *testing.T) {
	app, sc, seed, cfg := goldenSpec()
	_, p, err := spasm.RunProfiled(app, sc, seed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	enc := encodeProfile(t, p)
	path := filepath.Join("testdata", "ep_tiny_p4_target.sprf")
	if update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, enc, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (set UPDATE_GOLDEN=1 to regenerate)", err)
	}
	if !bytes.Equal(enc, want) {
		t.Fatalf("encoding diverged from golden file %s: got %d bytes, want %d "+
			"(set UPDATE_GOLDEN=1 to regenerate after an intentional change)",
			path, len(enc), len(want))
	}
}

// TestDecodeRejectsGarbage checks the decoder's sanity limits.
func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := probe.Decode(bytes.NewReader([]byte("not a profile"))); err == nil {
		t.Fatal("Decode accepted garbage")
	}
	if _, err := probe.Decode(bytes.NewReader(nil)); err == nil {
		t.Fatal("Decode accepted an empty stream")
	}
}
