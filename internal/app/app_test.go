package app

import (
	"fmt"
	"testing"

	"spasm/internal/machine"
	"spasm/internal/mem"
	"spasm/internal/sim"
	"spasm/internal/stats"
)

// testProg is a configurable Program for framework tests.
type testProg struct {
	name  string
	setup func(*Ctx)
	body  func(*Proc)
	check func() error
}

func (t *testProg) Name() string { return t.name }
func (t *testProg) Setup(c *Ctx) { t.setup(c) }
func (t *testProg) Body(p *Proc) { t.body(p) }
func (t *testProg) Check() error {
	if t.check != nil {
		return t.check()
	}
	return nil
}

func runProg(t *testing.T, p int, kind machine.Kind, setup func(*Ctx), body func(*Proc)) *stats.Run {
	t.Helper()
	prog := &testProg{name: "test", setup: setup, body: body}
	res, err := Run(prog, machine.Config{Kind: kind, Topology: "full", P: p})
	if err != nil {
		t.Fatal(err)
	}
	return res.Stats
}

func TestComputeChargesComputeBucket(t *testing.T) {
	run := runProg(t, 2, machine.Ideal,
		func(c *Ctx) {},
		func(p *Proc) { p.Compute(100) })
	for i := range run.Procs {
		if run.Procs[i].Time[stats.Compute] != sim.Cycles(100) {
			t.Errorf("proc %d compute = %v", i, run.Procs[i].Time[stats.Compute])
		}
	}
	if run.Total != sim.Cycles(100) {
		t.Errorf("total = %v", run.Total)
	}
}

func TestComputeNonPositiveNoop(t *testing.T) {
	run := runProg(t, 1, machine.Ideal,
		func(c *Ctx) {},
		func(p *Proc) { p.Compute(0); p.Compute(-5) })
	if run.Total != 0 {
		t.Errorf("total = %v", run.Total)
	}
}

func TestReadWriteRangesIssueReferences(t *testing.T) {
	var arr *mem.Array
	run := runProg(t, 2, machine.Ideal,
		func(c *Ctx) { arr = c.Space.Alloc("x", 32, 8, mem.Blocked) },
		func(p *Proc) {
			if p.ID == 0 {
				p.ReadRange(arr, 0, 10)
				p.WriteRange(arr, 10, 15)
				p.ReadElem(arr, 0)
				p.WriteElem(arr, 1)
			}
		})
	st := &run.Procs[0]
	if st.Reads != 11 || st.Writes != 6 {
		t.Errorf("reads=%d writes=%d", st.Reads, st.Writes)
	}
}

func TestSpinLockMutualExclusion(t *testing.T) {
	var (
		lock    *SpinLock
		inside  int
		maxSeen int
		total   int
	)
	runProg(t, 8, machine.Target,
		func(c *Ctx) { lock = c.NewLock("l", 0) },
		func(p *Proc) {
			for i := 0; i < 5; i++ {
				lock.Lock(p)
				inside++
				if inside > maxSeen {
					maxSeen = inside
				}
				total++
				p.Compute(50)
				inside--
				lock.Unlock(p)
				p.Compute(20)
			}
		})
	if maxSeen != 1 {
		t.Errorf("mutual exclusion violated: %d inside", maxSeen)
	}
	if total != 40 {
		t.Errorf("critical sections = %d, want 40", total)
	}
	if lock.Held() {
		t.Error("lock left held")
	}
}

func TestSpinLockCountsOps(t *testing.T) {
	var lock *SpinLock
	run := runProg(t, 4, machine.CLogP,
		func(c *Ctx) { lock = c.NewLock("l", 0) },
		func(p *Proc) {
			lock.Lock(p)
			p.Compute(10)
			lock.Unlock(p)
		})
	if got := run.Count(func(q *stats.Proc) uint64 { return q.LockOps }); got != 4 {
		t.Errorf("lock ops = %d", got)
	}
}

func TestLockGeneratesNetworkTraffic(t *testing.T) {
	// Lock words homed at node 0: remote contenders must produce
	// network traffic on every machine with a network.
	for _, kind := range []machine.Kind{machine.LogP, machine.CLogP, machine.Target} {
		var lock *SpinLock
		run := runProg(t, 4, kind,
			func(c *Ctx) { lock = c.NewLock("l", 0) },
			func(p *Proc) {
				lock.Lock(p)
				p.Compute(10)
				lock.Unlock(p)
			})
		if run.Messages() == 0 {
			t.Errorf("%v: lock traffic invisible to the network", kind)
		}
	}
}

func TestUnlockByNonHolderFailsRun(t *testing.T) {
	prog := &testProg{
		name:  "bad-unlock",
		setup: func(*Ctx) {},
		body: func(p *Proc) {
			l := p.Ctx.NewLock("l", p.ID)
			l.Unlock(p)
		},
	}
	if _, err := Run(prog, machine.Config{Kind: machine.Ideal, P: 2}); err == nil {
		t.Error("misuse panic not surfaced as run error")
	}
}

func TestFlagSignalling(t *testing.T) {
	var (
		flag  *Flag
		order []int
	)
	runProg(t, 2, machine.Target,
		func(c *Ctx) { flag = c.NewFlag("f", 0) },
		func(p *Proc) {
			if p.ID == 0 {
				p.Compute(1000)
				order = append(order, 0)
				flag.Set(p)
			} else {
				flag.Wait(p)
				order = append(order, 1)
			}
		})
	if fmt.Sprint(order) != "[0 1]" {
		t.Errorf("order = %v", order)
	}
	if !flag.IsSet() {
		t.Error("flag not set")
	}
}

func TestFlagWaiterSyncTimeCharged(t *testing.T) {
	var flag *Flag
	run := runProg(t, 2, machine.Ideal,
		func(c *Ctx) { flag = c.NewFlag("f", 0) },
		func(p *Proc) {
			if p.ID == 0 {
				p.Compute(100000)
				flag.Set(p)
			} else {
				flag.Wait(p)
			}
		})
	if run.Procs[1].Time[stats.Sync] == 0 {
		t.Error("waiter charged no sync time")
	}
	if run.Procs[0].Time[stats.Sync] != 0 {
		t.Error("setter charged sync time")
	}
}

func TestFlagNetworkAccessesMatchPaperPattern(t *testing.T) {
	// On CLogP the waiter pays the network for its first probe (cold
	// miss) and the probe after the setter's invalidation — NOT for
	// the spin probes in between.  On LogP every probe of the remotely
	// homed flag crosses the network.
	count := func(kind machine.Kind) uint64 {
		var flag *Flag
		run := runProg(t, 2, kind,
			func(c *Ctx) { flag = c.NewFlag("f", 0) },
			func(p *Proc) {
				if p.ID == 0 {
					p.Compute(5000)
					flag.Set(p)
				} else {
					flag.Wait(p) // waiter is node 1: flag is remote
				}
			})
		return run.Procs[1].NetAccesses
	}
	clogp, logpN := count(machine.CLogP), count(machine.LogP)
	if clogp != 2 {
		t.Errorf("CLogP waiter net accesses = %d, want 2 (first and last probe)", clogp)
	}
	if logpN <= clogp {
		t.Errorf("LogP waiter net accesses = %d, want > %d (every probe)", logpN, clogp)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	var (
		bar     *Barrier
		arrived [4]sim.Time
		left    [4]sim.Time
	)
	runProg(t, 4, machine.Target,
		func(c *Ctx) { bar = c.NewBarrier("b", 4, 0) },
		func(p *Proc) {
			p.Compute(int64(1000 * (p.ID + 1)))
			arrived[p.ID] = p.Now()
			bar.Arrive(p)
			left[p.ID] = p.Now()
		})
	// No one may leave before the last arrival.
	var lastArrive sim.Time
	for _, a := range arrived {
		if a > lastArrive {
			lastArrive = a
		}
	}
	for i, l := range left {
		if l < lastArrive {
			t.Errorf("proc %d left at %v before last arrival %v", i, l, lastArrive)
		}
	}
}

func TestBarrierReusableAcrossPhases(t *testing.T) {
	const rounds = 5
	var bar *Barrier
	counts := make([]int, rounds)
	runProg(t, 4, machine.CLogP,
		func(c *Ctx) { bar = c.NewBarrier("b", 4, 0) },
		func(p *Proc) {
			for r := 0; r < rounds; r++ {
				p.Compute(int64(100 * (p.ID + 1)))
				bar.Arrive(p)
				counts[r]++ // safe: cooperative scheduling
				bar.Arrive(p)
			}
		})
	for r, c := range counts {
		if c != 4 {
			t.Errorf("round %d count = %d", r, c)
		}
	}
}

func TestBarrierOpsCounted(t *testing.T) {
	var bar *Barrier
	run := runProg(t, 4, machine.Ideal,
		func(c *Ctx) { bar = c.NewBarrier("b", 4, 0) },
		func(p *Proc) {
			bar.Arrive(p)
			bar.Arrive(p)
		})
	if got := run.Count(func(q *stats.Proc) uint64 { return q.BarrierOps }); got != 8 {
		t.Errorf("barrier ops = %d", got)
	}
}

func TestRunDeterminism(t *testing.T) {
	make_ := func() *stats.Run {
		var lock *SpinLock
		var bar *Barrier
		var arr *mem.Array
		return runProg(t, 8, machine.Target,
			func(c *Ctx) {
				lock = c.NewLock("l", 0)
				bar = c.NewBarrier("b", 8, 1)
				arr = c.Space.Alloc("x", 256, 8, mem.Blocked)
			},
			func(p *Proc) {
				for i := 0; i < 3; i++ {
					lo, hi := arr.OwnerRange((p.ID + 1) % 8)
					p.ReadRange(arr, lo, hi)
					lock.Lock(p)
					p.Compute(25)
					lock.Unlock(p)
					bar.Arrive(p)
				}
			})
	}
	a, b := make_(), make_()
	if a.Total != b.Total || a.Messages() != b.Messages() ||
		a.Sum(stats.Contention) != b.Sum(stats.Contention) {
		t.Errorf("nondeterministic runs:\n%v\n%v", a, b)
	}
}

func TestRunRecordsMeta(t *testing.T) {
	run := runProg(t, 2, machine.Ideal, func(c *Ctx) {}, func(p *Proc) { p.Compute(10) })
	if run.SimEvents == 0 {
		t.Error("no sim events recorded")
	}
}

func TestRunPropagatesCheckError(t *testing.T) {
	prog := &testProg{
		name:  "bad",
		setup: func(*Ctx) {},
		body:  func(*Proc) {},
		check: func() error { return fmt.Errorf("wrong answer") },
	}
	if _, err := Run(prog, machine.Config{Kind: machine.Ideal, P: 2}); err == nil {
		t.Error("check error not propagated")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	prog := &testProg{name: "x", setup: func(*Ctx) {}, body: func(*Proc) {}}
	if _, err := Run(prog, machine.Config{Kind: machine.Ideal, P: 0}); err == nil {
		t.Error("P=0 accepted")
	}
	if _, err := Run(prog, machine.Config{Kind: machine.Target, Topology: "nope", P: 2}); err == nil {
		t.Error("bad topology accepted")
	}
}
