package logp

import (
	"testing"
	"testing/quick"

	"spasm/internal/network"
	"spasm/internal/sim"
)

func TestDefaultL(t *testing.T) {
	if DefaultL != sim.Micros(1.6) {
		t.Errorf("DefaultL = %v, want 1.6us", DefaultL)
	}
}

// TestGapMatchesPaper checks the g values quoted in section 5 of the
// paper: 3.2/p us (full), 1.6 us (cube), 0.8*px us (mesh).
func TestGapMatchesPaper(t *testing.T) {
	for _, p := range []int{2, 4, 8, 16, 32, 64} {
		full := GapFor(network.NewFull(p), 32, sim.SerialByte)
		if want := sim.Micros(3.2 / float64(p)); full != want {
			t.Errorf("g(full,%d) = %v, want %v", p, full, want)
		}
		cube := GapFor(network.NewCube(p), 32, sim.SerialByte)
		if want := sim.Micros(1.6); cube != want {
			t.Errorf("g(cube,%d) = %v, want %v", p, cube, want)
		}
		m := network.NewMesh(p)
		mesh := GapFor(m, 32, sim.SerialByte)
		if want := sim.Micros(0.8 * float64(m.Cols())); mesh != want {
			t.Errorf("g(mesh,%d) = %v, want %v", p, mesh, want)
		}
	}
}

func TestGapOrdering(t *testing.T) {
	// For p >= 8 the paper's parameters order full < cube < mesh.
	for _, p := range []int{8, 16, 32, 64} {
		full := GapFor(network.NewFull(p), 32, sim.SerialByte)
		cube := GapFor(network.NewCube(p), 32, sim.SerialByte)
		mesh := GapFor(network.NewMesh(p), 32, sim.SerialByte)
		if !(full < cube && cube < mesh) {
			t.Errorf("p=%d: g not ordered: full=%v cube=%v mesh=%v", p, full, cube, mesh)
		}
	}
}

func TestFirstMessageUndelayed(t *testing.T) {
	n := New(4, DefaultL, sim.Micros(1.6), Combined)
	x := n.Message(0, 0, 1)
	if x.SendAt != 0 || x.Wait != 0 {
		t.Errorf("first message delayed: %+v", x)
	}
	if x.Deliver != DefaultL {
		t.Errorf("deliver = %v, want %v", x.Deliver, DefaultL)
	}
}

func TestSenderGapEnforced(t *testing.T) {
	g := sim.Micros(1.6)
	n := New(4, DefaultL, g, Combined)
	n.Message(0, 0, 1)
	x := n.Message(100, 0, 2) // issued only 100 units after the first send
	if x.SendAt != g {
		t.Errorf("second send at %v, want %v", x.SendAt, g)
	}
	if x.Wait != g-100+0 {
		t.Errorf("wait = %v, want %v", x.Wait, g-100)
	}
}

func TestReceiverGapEnforced(t *testing.T) {
	g := sim.Micros(1.6)
	n := New(4, DefaultL, g, Combined)
	n.Message(0, 1, 0) // node 0 receives at L
	x := n.Message(0, 2, 0)
	arrive := x.SendAt + DefaultL
	wantDeliver := DefaultL + g // first receive at L, next no sooner than L+g
	if x.Deliver != wantDeliver {
		t.Errorf("deliver = %v, want %v", x.Deliver, wantDeliver)
	}
	if x.Wait != x.Deliver-arrive {
		t.Errorf("wait accounting wrong: %+v", x)
	}
}

func TestCombinedPortCouplesSendAndReceive(t *testing.T) {
	// Strict LogP: a node that just received cannot send for g.
	g := sim.Micros(1.6)
	n := New(4, DefaultL, g, Combined)
	x1 := n.Message(0, 1, 0) // node 0 receives at L
	x2 := n.Message(x1.Deliver, 0, 1)
	if x2.SendAt != x1.Deliver+g {
		t.Errorf("send after receive at %v, want %v", x2.SendAt, x1.Deliver+g)
	}
}

func TestPerClassPortsDecouple(t *testing.T) {
	// The ablation: a send right after a receive is NOT gapped.
	g := sim.Micros(1.6)
	n := New(4, DefaultL, g, PerClass)
	x1 := n.Message(0, 1, 0)
	x2 := n.Message(x1.Deliver, 0, 1)
	if x2.SendAt != x1.Deliver {
		t.Errorf("per-class send delayed: %v, want %v", x2.SendAt, x1.Deliver)
	}
	// ... but two sends still gap.
	x3 := n.Message(x2.SendAt, 0, 2)
	if x3.SendAt != x2.SendAt+g {
		t.Errorf("per-class send-send gap: %v, want %v", x3.SendAt, x2.SendAt+g)
	}
}

func TestPerClassLessPessimistic(t *testing.T) {
	// Over a request-reply workload the PerClass discipline must never
	// accumulate more wait time than Combined.
	run := func(mode PortMode) sim.Time {
		n := New(4, DefaultL, sim.Micros(1.6), mode)
		var wait sim.Time
		now := sim.Time(0)
		for i := 0; i < 50; i++ {
			req := n.Message(now, 0, 1)
			rep := n.Message(req.Deliver, 1, 0)
			wait += req.Wait + rep.Wait
			now = rep.Deliver + 10
		}
		return wait
	}
	if run(PerClass) > run(Combined) {
		t.Error("PerClass accumulated more contention than Combined")
	}
}

func TestMessageCounting(t *testing.T) {
	n := New(2, DefaultL, 0, Combined)
	for i := 0; i < 5; i++ {
		n.Message(sim.Time(i*10000), 0, 1)
	}
	if n.Messages != 5 {
		t.Errorf("Messages = %d", n.Messages)
	}
}

func TestZeroGap(t *testing.T) {
	n := New(2, DefaultL, 0, Combined)
	x1 := n.Message(0, 0, 1)
	x2 := n.Message(0, 0, 1)
	if x1.Wait != 0 || x2.Wait != 0 {
		t.Error("zero-g network produced contention")
	}
}

func TestSelfMessagePanics(t *testing.T) {
	n := New(2, DefaultL, 0, Combined)
	defer func() {
		if recover() == nil {
			t.Error("no panic on self message")
		}
	}()
	n.Message(0, 1, 1)
}

func TestValidation(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, DefaultL, 0, Combined) },
		func() { New(2, -1, 0, Combined) },
		func() { New(2, DefaultL, -1, Combined) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
	if Combined.String() != "combined" || PerClass.String() != "per-class" {
		t.Error("PortMode strings")
	}
	if PortMode(7).String() == "" {
		t.Error("unknown PortMode string")
	}
}

// Property: consecutive events of the gapped class at one node are always
// at least g apart, and Wait is exactly the sum of endpoint stalls.
func TestGapInvariantProperty(t *testing.T) {
	f := func(steps []uint8, gRaw uint16) bool {
		g := sim.Time(gRaw)
		n := New(4, DefaultL, g, Combined)
		var lastEvent [4]sim.Time
		for i := range lastEvent {
			lastEvent[i] = -g
		}
		now := sim.Time(0)
		for _, s := range steps {
			src := int(s) % 4
			dst := (src + 1 + int(s/8)%3) % 4
			if src == dst {
				continue
			}
			x := n.Message(now, src, dst)
			if x.SendAt < now || x.SendAt < lastEvent[src]+g {
				return false
			}
			if x.Deliver < x.SendAt+DefaultL || x.Deliver < lastEvent[dst]+g {
				return false
			}
			if x.Wait != (x.SendAt-now)+(x.Deliver-x.Arrive) {
				return false
			}
			lastEvent[src] = x.SendAt
			if x.Deliver > lastEvent[dst] {
				lastEvent[dst] = x.Deliver
			}
			now += sim.Time(s) // non-decreasing issue times
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// traffic drives a fixed message pattern and returns every schedule, for
// comparing a reset or recycled net against a fresh one.
func traffic(n *Net) []Xmit {
	var out []Xmit
	now := sim.Time(0)
	for i := 0; i < 40; i++ {
		src := i % n.P()
		dst := (src + 1 + i%3) % n.P()
		if src == dst {
			continue
		}
		x := n.Message(now, src, dst)
		out = append(out, x)
		now += sim.Time(i%5) * 100
	}
	return out
}

// TestResetIdentity: a reset net must schedule exactly like a fresh one
// in both port modes — the O(1) generation-bump reset may leave stale
// values in the port arrays, but gate's lazy re-stamp must hide them.
func TestResetIdentity(t *testing.T) {
	for _, mode := range []PortMode{Combined, PerClass} {
		g := sim.Micros(1.6)
		n := New(8, DefaultL, g, mode)
		want := traffic(n)
		for round := 0; round < 3; round++ {
			n.Reset()
			if n.Messages != 0 || n.Crossing != 0 || n.Observer != nil {
				t.Fatalf("%v round %d: counters survived Reset", mode, round)
			}
			got := traffic(n)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%v round %d message %d: got %+v, want %+v",
						mode, round, i, got[i], want[i])
				}
			}
		}
	}
}

// TestResetGenerationWraparound: a net whose generation counter wraps
// must not mistake four-billion-run-old stamps for current ones.
func TestResetGenerationWraparound(t *testing.T) {
	n := New(4, DefaultL, sim.Micros(1.6), Combined)
	want := traffic(n) // stamps nodes at gen 1
	n.gen = ^uint32(0) // force the wrap on the next Reset
	n.Reset()
	if n.gen != 1 {
		t.Fatalf("gen after wraparound = %d, want 1", n.gen)
	}
	got := traffic(n) // gen 1 again: only a cleared stamp array keeps this fresh
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("message %d after wraparound: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestReleaseRecycles: arrays released by one net must be picked up by
// the next New of compatible size, and the recycled net must behave
// exactly like one over fresh arrays despite the arbitrary contents the
// freelist hands back.
func TestReleaseRecycles(t *testing.T) {
	const p = 64
	fresh := New(p, DefaultL, sim.Micros(1.6), PerClass)
	want := traffic(fresh)

	donor := New(p, DefaultL, sim.Micros(1.6), PerClass)
	traffic(donor) // dirty the arrays
	donor.Release()
	if donor.last != nil || donor.lastSend != nil || donor.lastRecv != nil || donor.stamp != nil {
		t.Fatal("Release left arrays attached")
	}
	donor.Release() // idempotent

	reborn := New(p, DefaultL, sim.Micros(1.6), PerClass)
	if cap(reborn.lastSend) < p || cap(reborn.stamp) < p {
		t.Fatal("recycled net under-sized")
	}
	got := traffic(reborn)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("recycled net message %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}
