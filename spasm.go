// Package spasm is a Go reproduction of the simulation study in
// "Abstracting Network Characteristics and Locality Properties of
// Parallel Systems" (Sivasubramaniam, Singla, Ramachandran,
// Venkateswaran; HPCA 1995): an execution-driven simulator in the style
// of SPASM that runs a suite of parallel applications on interchangeable
// machine characterizations of a CC-NUMA multiprocessor —
//
//   - Target: per-node Berkeley-coherent caches over a detailed
//     circuit-switched wormhole network (fully connected, hypercube or
//     2-D mesh);
//   - LogP: no caches, the network abstracted by the LogP L and g
//     parameters;
//   - LogP+Cache (CLogP): the LogP network plus an ideal coherent cache
//     whose coherence actions cost nothing;
//   - Flow: no caches, the network abstracted as bandwidth-sharing
//     flows with max-min fair allocation (the coarsest network tier;
//     the starting point of adaptive fidelity escalation);
//   - Ideal: a PRAM-like machine for the ideal-time metric.
//
// SPASM-style overhead separation (compute / memory / latency /
// contention / synchronization) is measured for every run, and the
// experiment layer regenerates all twenty figures of the paper's
// evaluation plus its textual experiments (simulation cost, the
// g-discipline ablation, and the g-parameter table).
//
// # Quick start
//
//	res, err := spasm.Run("fft", spasm.Small, 1, spasm.Config{
//		Kind:     spasm.Target,
//		Topology: "mesh",
//		P:        16,
//	})
//	if err != nil { ... }
//	fmt.Println(res.Stats)
//
// To regenerate a paper figure:
//
//	s := spasm.NewSession(spasm.Options{})
//	fig, _ := spasm.FigureByNumber(7) // IS on Mesh: Contention
//	fr, err := s.Figure(fig)
//	fmt.Println(spasm.FigureChart(fr, 78, 22))
//
// Custom applications implement the Program interface against the Proc
// API (Compute, Read, Write, locks, flags, barriers); see
// examples/custom_app.
//
// Long-running or abandoned simulations can be contained with
// RunSpecControlled and RunControl: a wall-clock Timeout or a Cancel
// channel cooperatively aborts the run (ErrRunTimeout, ErrRunCanceled),
// unwinding every simulated-process goroutine before returning.
package spasm

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"spasm/internal/app"
	"spasm/internal/apps"
	"spasm/internal/coherence"
	"spasm/internal/exp"
	"spasm/internal/logp"
	"spasm/internal/machine"
	"spasm/internal/mem"
	"spasm/internal/probe"
	"spasm/internal/report"
	"spasm/internal/sim"
	"spasm/internal/stats"
	"spasm/internal/trace"
)

// Core configuration and result types.
type (
	// Config selects and parameterizes a machine characterization.
	Config = machine.Config
	// Kind identifies a machine characterization.
	Kind = machine.Kind
	// Result is one run's statistics plus its configuration.
	Result = app.Result
	// RunStats is the per-run, per-processor overhead breakdown.
	RunStats = stats.Run
	// ProcStats is one processor's overhead and event counters.
	ProcStats = stats.Proc
	// Bucket labels one overhead category.
	Bucket = stats.Bucket
	// Time is simulated time (660 units per microsecond).
	Time = sim.Time
)

// Machine characterizations.
const (
	Ideal  = machine.Ideal
	Flow   = machine.Flow
	LogP   = machine.LogP
	CLogP  = machine.CLogP
	Target = machine.Target
)

// Overhead buckets.
const (
	Compute    = stats.Compute
	Memory     = stats.Memory
	Latency    = stats.Latency
	Contention = stats.Contention
	Sync       = stats.Sync
)

// Application-authoring API (see examples/custom_app).
type (
	// Program is a parallel application runnable on any machine.
	Program = app.Program
	// Proc is the per-processor handle a Program's Body uses.
	Proc = app.Proc
	// Ctx is the shared context a Program allocates into.
	Ctx = app.Ctx
	// SpinLock is a test-test&set lock on simulated shared memory.
	SpinLock = app.SpinLock
	// Flag is a shared-memory condition variable.
	Flag = app.Flag
	// Barrier is a centralized sense-reversing barrier.
	Barrier = app.Barrier
	// PhaseProfile is a run's per-phase overhead separation.
	PhaseProfile = app.PhaseProfile
	// PhaseStats aggregates the overheads of one named phase.
	PhaseStats = app.PhaseStats
	// Array is a shared-memory allocation.
	Array = mem.Array
	// Addr is a simulated shared-memory address.
	Addr = mem.Addr
)

// Placement policies for shared arrays.
const (
	Blocked     = mem.Blocked
	Interleaved = mem.Interleaved
)

// Workload scales.
type Scale = apps.Scale

const (
	Tiny   = apps.Tiny
	Small  = apps.Small
	Medium = apps.Medium
)

// Experiment layer.
type (
	// Options configures an experiment Session.
	Options = exp.Options
	// Session runs sweeps with caching.
	Session = exp.Session
	// Figure identifies one paper figure.
	Figure = exp.Figure
	// FigureResult is a regenerated figure.
	FigureResult = exp.FigureResult
	// Metric selects what a figure plots.
	Metric = exp.Metric
	// CostRow reports a machine's simulation cost.
	CostRow = exp.CostRow
	// AblationRow is one point of the g-discipline ablation.
	AblationRow = exp.AblationRow
	// GapRow is one entry of the g-parameter table.
	GapRow = exp.GapRow
	// PortMode selects the LogP gap discipline.
	PortMode = logp.PortMode
)

// Gap disciplines and figure metrics.
const (
	CombinedGap = logp.Combined
	PerClassGap = logp.PerClass

	ExecTime      = exp.ExecTime
	LatencyOvh    = exp.LatencyOvh
	ContentionOvh = exp.ContentionOvh
)

// Apps lists the available applications ("cg", "cholesky", "ep", "fft",
// "is").
func Apps() []string { return apps.Names() }

// ExtendedApps lists the extension workloads beyond the paper's suite
// (currently "mg", a hierarchical multigrid solver).
func ExtendedApps() []string { return apps.ExtendedNames() }

// RunExtended builds and simulates a named extension workload.
func RunExtended(appName string, scale Scale, seed int64, cfg Config) (*Result, error) {
	prog, err := apps.NewExtended(appName, scale, seed)
	if err != nil {
		return nil, err
	}
	return app.Run(prog, cfg)
}

// Machines lists the machine characterizations in comparison order.
func Machines() []Kind { return machine.Kinds() }

// Figures lists the paper's twenty evaluation figures.
func Figures() []Figure { return exp.Figures }

// FigureByNumber returns paper figure n (1-20).
func FigureByNumber(n int) (Figure, error) { return exp.ByNumber(n) }

// ParseMetric converts "latency", "contention" or "exec" to a Metric.
func ParseMetric(name string) (Metric, error) { return exp.ParseMetric(name) }

// Run builds the named application at the given scale and seed and
// simulates it on the configured machine.
func Run(appName string, scale Scale, seed int64, cfg Config) (*Result, error) {
	prog, err := apps.New(appName, scale, seed)
	if err != nil {
		return nil, err
	}
	return app.Run(prog, cfg)
}

// RunProgram simulates a user-supplied Program on the configured machine.
func RunProgram(prog Program, cfg Config) (*Result, error) {
	return app.Run(prog, cfg)
}

// NewSession returns an experiment session.
func NewSession(opt Options) *Session { return exp.NewSession(opt) }

// GapTable computes the paper's g parameters for the given processor
// counts on all three topologies.
func GapTable(procs []int) []GapRow { return exp.GapTable(procs) }

// GapAblation reproduces the section-7 gap-discipline experiment (FFT on
// the cube).
func GapAblation(scale Scale, seed int64, procs []int) ([]AblationRow, error) {
	return exp.GapAblation(scale, seed, procs)
}

// FigureTable renders a regenerated figure as a fixed-width table.
func FigureTable(fr *FigureResult) string { return report.FigureTable(fr).String() }

// FigureCSV renders a regenerated figure as CSV.
func FigureCSV(fr *FigureResult) string { return report.FigureCSV(fr) }

// FigureChart renders a regenerated figure as an ASCII line chart.
func FigureChart(fr *FigureResult, width, height int) string {
	return report.Chart(fr, width, height)
}

// PhaseReport renders a run's per-phase overhead separation (populated
// when the program marks phases with Proc.Phase; the bundled suite does).
func PhaseReport(res *Result) string {
	return report.PhaseTable(res.Phases).String()
}

// Micros converts microseconds to simulated Time.
func Micros(us float64) Time { return sim.Micros(us) }

// ParseKind converts a machine name ("ideal", "flow", "logp", "clogp",
// "target") to its Kind.
func ParseKind(s string) (Kind, error) { return machine.ParseKind(s) }

// MaxPFor reports the largest processor count a machine kind supports;
// Spec.Validate rejects specs beyond it.  The coherent machines (Target,
// CLogP) are bounded by the directory's sharing-set representation at
// 1024 nodes; the abstract tiers reach 65536 and the ideal machine a
// million.
func MaxPFor(k Kind) int { return machine.MaxPFor(k) }

// ParseScale converts a scale name ("tiny", "small", "medium") to its
// Scale.
func ParseScale(s string) (Scale, error) { return apps.ParseScale(s) }

// ParseProcs parses a comma-separated processor sweep like "2,4,8,16".
func ParseProcs(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("spasm: bad processor count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("spasm: empty processor sweep")
	}
	return out, nil
}

// Coherence protocols for the cached machines.
type Protocol = coherence.Protocol

const (
	// BerkeleyProtocol is the paper's ownership protocol (default).
	BerkeleyProtocol = coherence.Berkeley
	// MSIProtocol is the plain three-state variant used by the
	// protocol-sensitivity study.
	MSIProtocol = coherence.MSI
	// UpdateProtocol is the Firefly-style write-update variant.
	UpdateProtocol = coherence.Update
)

// Extension studies (each grounded in a paper claim or proposal; see
// the exp package documentation).
type (
	// ProtocolRow compares Berkeley and MSI execution for one app.
	ProtocolRow = exp.ProtocolRow
	// CacheRow is one point of the cache-size sweep.
	CacheRow = exp.CacheRow
	// AdaptiveRow is one point of the adaptive-g study.
	AdaptiveRow = exp.AdaptiveRow
	// LRow is one point of the effective-L study.
	LRow = exp.LRow
	// TraceRow compares trace-driven and execution-driven simulation.
	TraceRow = exp.TraceRow
	// SpeedupRow is one point of a scalability curve.
	SpeedupRow = exp.SpeedupRow
	// BandwidthRow characterizes one application's bandwidth demand.
	BandwidthRow = exp.BandwidthRow
	// TechRow is one point of the technology-scaling study.
	TechRow = exp.TechRow
	// FaultRow is one point of the degraded-link study.
	FaultRow = exp.FaultRow
	// TopologyRow is one point of the extended-topology comparison.
	TopologyRow = exp.TopologyRow
	// PlacementRow is one point of the data-placement study.
	PlacementRow = exp.PlacementRow
	// ExtendedAppRow is one point of the out-of-suite validation.
	ExtendedAppRow = exp.ExtendedAppRow
	// FidelityRow compares the flow, LogP and detailed network tiers
	// for one application (Session.FidelityStudy).
	FidelityRow = exp.FidelityRow
	// AccuracyRow summarizes one figure's abstraction error.
	AccuracyRow = exp.AccuracyRow
	// AccuracySummary aggregates abstraction error by metric.
	AccuracySummary = exp.AccuracySummary
)

// ProtocolComparison runs the suite under both coherence protocols
// (section 7's protocol-insensitivity claim).
func ProtocolComparison(scale Scale, seed int64, topo string, p int) ([]ProtocolRow, error) {
	return exp.ProtocolComparison(scale, seed, topo, p)
}

// CacheSweep sweeps the target machine's cache size for one application
// (the 64 KB working-set claim the paper cites).
func CacheSweep(appName string, scale Scale, seed int64, topo string, p int, sizesKB []int) ([]CacheRow, error) {
	return exp.CacheSweep(appName, scale, seed, topo, p, sizesKB)
}

// AdaptiveGapStudy evaluates the paper's proposed history-based g
// estimation (section 7 future work).
func AdaptiveGapStudy(appName string, scale Scale, seed int64, topo string, procs []int) ([]AdaptiveRow, error) {
	return exp.AdaptiveGapStudy(appName, scale, seed, topo, procs)
}

// EffectiveLStudy re-derives L from measured mean message size,
// separating the L parameter's two counteracting inaccuracies
// (section 6.1).
func EffectiveLStudy(appName string, scale Scale, seed int64, topo string, procs []int) ([]LRow, error) {
	return exp.EffectiveLStudy(appName, scale, seed, topo, procs)
}

// TraceDrivenStudy contrasts trace-driven against execution-driven
// simulation across the application suite.
func TraceDrivenStudy(scale Scale, seed int64, topo string, p int) ([]TraceRow, error) {
	return exp.TraceDrivenStudy(scale, seed, topo, p)
}

// BandwidthStudy measures each application's per-processor communication
// demand (the authors' bandwidth-characterization companion study).
func BandwidthStudy(scale Scale, seed int64, topo string, p int) ([]BandwidthRow, error) {
	return exp.BandwidthStudy(scale, seed, topo, p)
}

// TechnologyStudy scales the link bandwidth (with L and g re-derived)
// and tracks how the ideal-cache abstraction's accuracy moves.
func TechnologyStudy(appName string, scale Scale, seed int64, topo string, p int, mbps []float64) ([]TechRow, error) {
	return exp.TechnologyStudy(appName, scale, seed, topo, p, mbps)
}

// DegradedLinkStudy injects a slow mesh link and contrasts the detailed
// network (which sees it) against the L/g abstraction (which cannot).
func DegradedLinkStudy(appName string, scale Scale, seed int64, p int, factors []int) ([]FaultRow, error) {
	return exp.DegradedLinkStudy(appName, scale, seed, p, factors)
}

// TopologyStudy compares the abstraction's accuracy across all five
// topologies, including the extension ring and torus.
func TopologyStudy(appName string, scale Scale, seed int64, p int) ([]TopologyRow, error) {
	return exp.TopologyStudy(appName, scale, seed, p)
}

// PlacementStudy contrasts blocked against interleaved data placement
// for CG on the target machine.
func PlacementStudy(scale Scale, seed int64, topo string, p int) ([]PlacementRow, error) {
	return exp.PlacementStudy(scale, seed, topo, p)
}

// ExtendedAppStudy runs an extension workload through the paper's
// machine comparison — an out-of-sample test of the abstractions.
func ExtendedAppStudy(appName string, scale Scale, seed int64, topo string, procs []int) ([]ExtendedAppRow, error) {
	return exp.ExtendedAppStudy(appName, scale, seed, topo, procs)
}

// Accuracy summarizes each figure's abstraction error (the geometric
// mean abstraction/target ratio and trend agreement).
func Accuracy(frs []*FigureResult) []AccuracyRow { return exp.Accuracy(frs) }

// Summarize aggregates accuracy rows by figure metric — the
// reproduction's one-screen dashboard.
func Summarize(rows []AccuracyRow) []AccuracySummary { return exp.Summarize(rows) }

// Time-resolved telemetry (see internal/probe): a profile samples, per
// simulated-time epoch, the per-processor overhead-bucket deltas, the
// per-link occupancy of the detailed fabric, and message-delay
// histograms.
type (
	// Profile is a run's time-resolved telemetry.
	Profile = probe.Profile
	// ProfileEpoch is one sampling interval of a Profile.
	ProfileEpoch = probe.Epoch
	// ProfileConfig parameterizes profiling (epoch length and budget,
	// plus the OnEpoch live-streaming hook).
	ProfileConfig = probe.Config
	// ProfileEpochEvent is one incremental epoch emission from the
	// ProfileConfig.OnEpoch hook.
	ProfileEpochEvent = probe.EpochEvent
)

// RunProfiled runs the named application like Run with a telemetry
// profiler attached, returning the run result and its profile.  The
// profile is deterministic: identical specs yield byte-identical
// encodings (Profile.Encode).  Profiling does not perturb the simulated
// execution — the result is identical to an unprofiled run's.
func RunProfiled(appName string, scale Scale, seed int64, cfg Config) (*Result, *Profile, error) {
	return RunProfiledConfig(appName, scale, seed, cfg, ProfileConfig{})
}

// RunProfiledConfig is RunProfiled with explicit profiler parameters.
func RunProfiledConfig(appName string, scale Scale, seed int64, cfg Config, pc ProfileConfig) (*Result, *Profile, error) {
	prog, err := apps.New(appName, scale, seed)
	if err != nil {
		var extErr error
		prog, extErr = apps.NewExtended(appName, scale, seed)
		if extErr != nil {
			return nil, nil, err
		}
	}
	pr := probe.New(pc)
	res, err := app.RunInstrumented(prog, cfg, nil, pr)
	if err != nil {
		return nil, nil, err
	}
	return res, pr.Profile(), nil
}

// DecodeProfile reads a profile serialized with Profile.Encode.
func DecodeProfile(r io.Reader) (*Profile, error) { return probe.Decode(r) }

// ProfileCSV renders a profile as CSV, one row per epoch.
func ProfileCSV(p *Profile) string { return report.ProfileCSV(p) }

// ProfileTable renders a profile as a fixed-width table.
func ProfileTable(p *Profile) string { return report.ProfileTable(p).String() }

// Trace recording and replay (execution-driven vs trace-driven
// methodology).
type Trace = trace.Trace

// RecordTrace runs the named application with a reference-trace recorder
// attached and returns the trace alongside the run result.
func RecordTrace(appName string, scale Scale, seed int64, cfg Config) (*Trace, *Result, error) {
	prog, err := apps.New(appName, scale, seed)
	if err != nil {
		return nil, nil, err
	}
	var rec *trace.Recorder
	res, err := app.RunWrapped(prog, cfg, func(m machine.Machine) machine.Machine {
		rec = trace.NewRecorder(m)
		return rec
	})
	if err != nil {
		return nil, nil, err
	}
	return rec.Trace(res.Space), res, nil
}

// ReplayTrace replays a recorded trace on the configured machine
// (trace-driven simulation).
func ReplayTrace(t *Trace, cfg Config) (*Result, error) {
	return app.Run(trace.Replay(t), cfg)
}

// DecodeTrace reads a trace serialized with Trace.Encode.
func DecodeTrace(r io.Reader) (*Trace, error) { return trace.Decode(r) }
