package coherence

import (
	"testing"

	"spasm/internal/cache"
	"spasm/internal/mem"
	"spasm/internal/sim"
	"spasm/internal/stats"
)

// BenchmarkReadMissRemote measures a full directory read transaction
// (request + memory + data reply) through the engine.
func BenchmarkReadMissRemote(b *testing.B) {
	tr := &flatTransport{delay: 100}
	space := mem.NewSpace(8, 32)
	arr := space.Alloc("x", 1<<16, 8, mem.Blocked)
	eng := NewEngine(space, cache.DefaultConfig(), DefaultCosts(), tr)
	e := sim.NewEngine()
	run := stats.NewRun(8)
	e.Spawn("driver", func(p *sim.Proc) {
		lo, hi := arr.OwnerRange(5)
		span := hi - lo
		for i := 0; i < b.N; i++ {
			// Stride by a block so every access misses.
			idx := lo + (i*4)%span
			eng.Read(p, &run.Procs[0], 0, arr.At(idx))
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkWriteUpgrade measures the invalidation path: two sharers, one
// upgrades, re-share, repeat.
func BenchmarkWriteUpgrade(b *testing.B) {
	tr := &flatTransport{delay: 100}
	space := mem.NewSpace(4, 32)
	arr := space.Alloc("x", 64, 8, mem.Blocked)
	eng := NewEngine(space, cache.DefaultConfig(), DefaultCosts(), tr)
	e := sim.NewEngine()
	run := stats.NewRun(4)
	e.Spawn("driver", func(p *sim.Proc) {
		a := arr.At(0)
		for i := 0; i < b.N; i++ {
			eng.Read(p, &run.Procs[1], 1, a)
			eng.Read(p, &run.Procs[2], 2, a)
			eng.Write(p, &run.Procs[1], 1, a) // invalidates 2
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkHitPath measures the cache-hit fast path through the engine.
func BenchmarkHitPath(b *testing.B) {
	tr := &flatTransport{delay: 100}
	space := mem.NewSpace(4, 32)
	arr := space.Alloc("x", 64, 8, mem.Blocked)
	eng := NewEngine(space, cache.DefaultConfig(), DefaultCosts(), tr)
	e := sim.NewEngine()
	run := stats.NewRun(4)
	e.Spawn("driver", func(p *sim.Proc) {
		a := arr.At(0)
		eng.Read(p, &run.Procs[0], 0, a)
		for i := 0; i < b.N; i++ {
			eng.Read(p, &run.Procs[0], 0, a)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
