package network

// Route-table precomputation.  The topologies of the study are small
// (the paper sweeps p ≤ 64) and their routing is deterministic, so every
// route can be materialized once at construction into a single
// contiguous arena.  Route then becomes two array loads and a slice
// header — zero allocations per call — which takes per-message route
// building off the fabric's hot path entirely.
//
// Above RouteTableMaxP nodes the table would cost O(p² · diameter)
// memory, so construction instead preallocates a diameter-sized scratch
// buffer per topology and Route computes each route on demand into it —
// still zero allocations per call, at the price of the returned slice
// being valid only until the next Route call (see Topology.Route).  The
// detailed fabric additionally keeps a small set-associative cache of
// hot full routes (routecache.go) in front of this path.

// RouteTableMaxP bounds precomputation: tables exist only for p values
// up to this limit (128 leaves headroom for scaling studies while
// keeping the largest table around a megabyte).  Larger machines use the
// on-demand scratch path.
const RouteTableMaxP = 128

// routeTable holds every src→dst route of a topology, concatenated into
// one arena slice with (p·p+1) offsets.
type routeTable struct {
	p     int
	off   []int32
	arena []int
}

// appendRouter is the compute form of a topology's routing function:
// append the links of the src→dst route to buf and return the extended
// slice.  Each topology exposes its routing logic in this form as
// AppendRoute; the table is built from it and Route serves from the
// table (or, at large p, computes through it into reusable scratch).
type appendRouter func(buf []int, src, dst int) []int

// buildRouteTable materializes all p·(p-1) routes of a topology, or
// returns nil when p exceeds RouteTableMaxP.
func buildRouteTable(p int, route appendRouter) *routeTable {
	if p > RouteTableMaxP {
		return nil
	}
	rt := &routeTable{p: p, off: make([]int32, p*p+1)}
	for src := 0; src < p; src++ {
		for dst := 0; dst < p; dst++ {
			if src != dst {
				rt.arena = route(rt.arena, src, dst)
			}
			rt.off[src*p+dst+1] = int32(len(rt.arena))
		}
	}
	return rt
}

// route returns the precomputed src→dst route.  The slice aliases the
// shared arena with its capacity clipped, so an append by the caller
// copies instead of clobbering the neighbouring route; callers must not
// modify elements in place.
func (rt *routeTable) route(src, dst int) []int {
	i := src*rt.p + dst
	lo, hi := rt.off[i], rt.off[i+1]
	return rt.arena[lo:hi:hi]
}
