package apps

import (
	"fmt"
	"testing"

	"spasm/internal/app"
	"spasm/internal/machine"
	"spasm/internal/stats"
)

// run executes the named app at Tiny scale and fails the test on any
// error (including the app's own result Check).
func run(t *testing.T, name string, kind machine.Kind, topo string, p int) *stats.Run {
	t.Helper()
	prog, err := New(name, Tiny, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := app.Run(prog, machine.Config{Kind: kind, Topology: topo, P: p})
	if err != nil {
		t.Fatal(err)
	}
	return res.Stats
}

func TestRegistry(t *testing.T) {
	names := Names()
	want := []string{"cg", "cholesky", "ep", "fft", "is"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Errorf("Names() = %v, want %v", names, want)
	}
	if _, err := New("nope", Tiny, 1); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestScaleParsing(t *testing.T) {
	for _, s := range []Scale{Tiny, Small, Medium} {
		got, err := ParseScale(s.String())
		if err != nil || got != s {
			t.Errorf("ParseScale(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Error("bad scale accepted")
	}
	if Scale(9).String() == "" {
		t.Error("unknown scale name")
	}
}

func TestShareCoversExactly(t *testing.T) {
	for _, n := range []int{0, 1, 7, 64, 100} {
		for _, p := range []int{1, 2, 4, 8, 64} {
			covered := 0
			prevHi := 0
			for id := 0; id < p; id++ {
				lo, hi := share(n, p, id)
				if lo != prevHi {
					t.Fatalf("share(%d,%d,%d) gap: lo=%d prevHi=%d", n, p, id, lo, prevHi)
				}
				covered += hi - lo
				prevHi = hi
			}
			if covered != n || prevHi != n {
				t.Fatalf("share(%d,%d) covers %d", n, p, covered)
			}
		}
	}
}

// TestAllAppsAllMachines runs the full application suite on every
// machine kind — the execution-driven equivalence check: results must be
// correct regardless of the architectural model.
func TestAllAppsAllMachines(t *testing.T) {
	for _, name := range Names() {
		for _, kind := range machine.Kinds() {
			name, kind := name, kind
			t.Run(fmt.Sprintf("%s/%v", name, kind), func(t *testing.T) {
				run(t, name, kind, "full", 4)
			})
		}
	}
}

// TestAllAppsAllTopologies exercises the target machine's three networks.
func TestAllAppsAllTopologies(t *testing.T) {
	for _, name := range Names() {
		for _, topo := range []string{"full", "cube", "mesh"} {
			name, topo := name, topo
			t.Run(fmt.Sprintf("%s/%s", name, topo), func(t *testing.T) {
				run(t, name, machine.Target, topo, 8)
			})
		}
	}
}

func TestAppsSingleProcessor(t *testing.T) {
	// Degenerate single-processor runs must still be correct.
	for _, name := range Names() {
		if name == "fft" {
			// fft requires R >= P which holds; included below.
		}
		run(t, name, machine.Ideal, "full", 1)
	}
}

func TestAppsDeterministicAcrossRuns(t *testing.T) {
	for _, name := range Names() {
		a := run(t, name, machine.Target, "mesh", 4)
		b := run(t, name, machine.Target, "mesh", 4)
		if a.Total != b.Total || a.Messages() != b.Messages() {
			t.Errorf("%s nondeterministic: %v vs %v / %d vs %d msgs",
				name, a.Total, b.Total, a.Messages(), b.Messages())
		}
	}
}

// TestStaticAppsSameMissesAcrossNetworks: for the static applications the
// number of network-visible references on the CLogP machine is a
// property of the reference stream, not the network, so it must be
// identical across topologies (the paper: "the number of messages
// generated on the network due to non-local references in an application
// is the same regardless of the network topology").
func TestStaticAppsSameMissesAcrossNetworks(t *testing.T) {
	for _, name := range []string{"ep", "fft"} {
		var base uint64
		for i, topo := range []string{"full", "cube", "mesh"} {
			r := run(t, name, machine.CLogP, topo, 4)
			misses := r.Count(func(p *stats.Proc) uint64 { return p.Misses })
			if i == 0 {
				base = misses
				continue
			}
			// Data misses are topology-independent; only the
			// timing-dependent synchronization probes may differ,
			// and only slightly.
			lo, hi := base*98/100, base*102/100
			if misses < lo || misses > hi {
				t.Errorf("%s: misses on %s = %d, on full = %d (out of 2%% band)",
					name, topo, misses, base)
			}
		}
	}
}

// TestComputeToCommunicationOrdering checks the suite spans the spectrum
// the paper describes: EP has the highest compute-to-communication
// ratio, IS more communication than FFT.
func TestComputeToCommunicationOrdering(t *testing.T) {
	ratio := func(name string) float64 {
		r := run(t, name, machine.CLogP, "full", 4)
		msgs := r.Messages()
		if msgs == 0 {
			return 1e18
		}
		return float64(r.Sum(stats.Compute)) / float64(msgs)
	}
	ep, fft, is := ratio("ep"), ratio("fft"), ratio("is")
	if !(ep > fft) {
		t.Errorf("compute/comm: ep=%.0f should exceed fft=%.0f", ep, fft)
	}
	if !(fft > is) {
		t.Errorf("compute/comm: fft=%.0f should exceed is=%.0f", fft, is)
	}
}

// TestFFTSpatialLocalityLatencyGap reproduces the Figure 1 mechanism at
// unit-test scale: LogP's latency overhead for FFT is close to 4x the
// CLogP machine's, because the cached machines fetch four 8-byte items
// per 32-byte block.
func TestFFTSpatialLocalityLatencyGap(t *testing.T) {
	logp := run(t, "fft", machine.LogP, "full", 4)
	clogp := run(t, "fft", machine.CLogP, "full", 4)
	l := float64(logp.Sum(stats.Latency))
	c := float64(clogp.Sum(stats.Latency))
	if l < 2.5*c {
		t.Errorf("LogP latency %.0f not >= 2.5x CLogP %.0f", l, c)
	}
}

// TestCholeskyDynamicLoadBalancing checks the task queue actually spreads
// columns across processors.
func TestCholeskyDynamicLoadBalancing(t *testing.T) {
	prog, err := New("cholesky", Tiny, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := app.Run(prog, machine.Config{Kind: machine.Target, Topology: "full", P: 4})
	if err != nil {
		t.Fatal(err)
	}
	ch := prog.(*Cholesky)
	busy := 0
	for _, n := range ch.byProc {
		if n > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Errorf("only %d processors factored columns: %v", busy, ch.byProc)
	}
	_ = res
}

// TestTargetInvariantsAfterApps runs every app on the target machine and
// checks the coherence invariants afterwards.
func TestTargetInvariantsAfterApps(t *testing.T) {
	for _, name := range Names() {
		prog, err := New(name, Tiny, 1)
		if err != nil {
			t.Fatal(err)
		}
		cfg := machine.Config{Kind: machine.Target, Topology: "cube", P: 4}
		res, err := app.Run(prog, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := res.Machine.(machine.Coherent).Engine().CheckInvariants(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestDifferentSeedsDifferentWork(t *testing.T) {
	totals := map[string]bool{}
	for seed := int64(1); seed <= 3; seed++ {
		prog, _ := New("cg", Tiny, seed)
		res, err := app.Run(prog, machine.Config{Kind: machine.CLogP, Topology: "full", P: 4})
		if err != nil {
			t.Fatal(err)
		}
		totals[fmt.Sprint(res.Stats.Total)] = true
	}
	if len(totals) < 2 {
		t.Error("seeds do not vary the workload")
	}
}
