// Package network models the target machine's interconnection networks:
// the fully connected network, the binary hypercube, and the 2-D mesh of
// the paper's architectural characterization.  All three use serial
// (1-bit wide) unidirectional links of 20 MB/s; messages are
// circuit-switched with wormhole routing, and switching delay is
// negligible (ignored), exactly as in the paper.
//
// The Fabric type implements the contention model: a message reserves its
// source injection port, every link on its deterministic route, and its
// destination ejection port for the duration of the transmission.  Time
// spent waiting for those resources is the *contention* overhead; the
// transmission time itself is the *latency* overhead.
package network

import (
	"fmt"
	"math/bits"
)

// Topology describes a point-to-point interconnection network over P
// nodes with deterministic routing.
type Topology interface {
	// Name identifies the topology family: "full", "cube" or "mesh".
	Name() string
	// P returns the number of nodes.
	P() int
	// NumLinks returns the size of the directed-link id space (some
	// ids may be unused on irregular topologies).
	NumLinks() int
	// Route returns the directed links a message from src to dst
	// traverses, in order.  src must differ from dst.  The returned
	// slice may alias a precomputed route table shared by all callers
	// (p <= RouteTableMaxP) or the topology's reusable scratch buffer
	// (larger p); it must not be modified in place, and above
	// RouteTableMaxP it is only valid until the next Route call on the
	// same topology — callers that hold routes across calls must copy,
	// or use AppendRoute with their own buffer.
	Route(src, dst int) []int
	// AppendRoute appends the links of the src→dst route to buf and
	// returns the extended slice: the allocation-free routing primitive
	// Route itself is built on.  A route is never longer than
	// Diameter(), so a buffer with that capacity never grows.
	AppendRoute(buf []int, src, dst int) []int
	// LinkEnds returns the endpoints of directed link id.
	LinkEnds(id int) (from, to int)
	// Hops returns the routing distance from src to dst.
	Hops(src, dst int) int
	// Diameter returns the maximum routing distance.
	Diameter() int
	// BisectionLinks returns the number of directed links crossing the
	// network bisection, counting both directions.  It is the quantity
	// the paper's g-parameter derivation uses.
	BisectionLinks() int
	// CrossesBisection reports whether a message from src to dst
	// crosses the bisection cut used by BisectionLinks.  The adaptive
	// g estimator uses it to measure an application's communication
	// locality.
	CrossesBisection(src, dst int) bool
}

// checkP validates a processor count for the paper's platforms: a power
// of two, at least 2.
func checkP(p int) {
	if p < 2 || p&(p-1) != 0 {
		panic(fmt.Sprintf("network: p = %d must be a power of two >= 2", p))
	}
}

// Full is the fully connected network: two serial links (one per
// direction) between every pair of nodes.
type Full struct {
	p       int
	rt      *routeTable
	scratch []int
}

// NewFull returns a fully connected network over p nodes.
func NewFull(p int) *Full {
	checkP(p)
	f := &Full{p: p}
	f.rt = buildRouteTable(p, f.AppendRoute)
	if f.rt == nil {
		f.scratch = make([]int, 0, f.Diameter())
	}
	return f
}

func (f *Full) Name() string  { return "full" }
func (f *Full) P() int        { return f.p }
func (f *Full) NumLinks() int { return f.p * f.p }

// AppendRoute: the direct link src→dst.
func (f *Full) AppendRoute(buf []int, src, dst int) []int {
	return append(buf, src*f.p+dst)
}

func (f *Full) Route(src, dst int) []int {
	f.check(src, dst)
	if f.rt != nil {
		return f.rt.route(src, dst)
	}
	f.scratch = f.AppendRoute(f.scratch[:0], src, dst)
	return f.scratch
}

func (f *Full) LinkEnds(id int) (from, to int) { return id / f.p, id % f.p }
func (f *Full) Hops(src, dst int) int          { f.check(src, dst); return 1 }
func (f *Full) Diameter() int                  { return 1 }

// BisectionLinks counts the links between the two halves in both
// directions: 2 * (p/2)^2.
func (f *Full) BisectionLinks() int { return 2 * (f.p / 2) * (f.p / 2) }

// CrossesBisection splits the node set at p/2.
func (f *Full) CrossesBisection(src, dst int) bool {
	return (src < f.p/2) != (dst < f.p/2)
}

func (f *Full) check(src, dst int) {
	if src < 0 || src >= f.p || dst < 0 || dst >= f.p || src == dst {
		panic(fmt.Sprintf("network: bad route %d -> %d on full(%d)", src, dst, f.p))
	}
}

// Cube is the binary hypercube: each edge of the cube has a link in each
// direction, and routing is dimension-ordered (e-cube).
type Cube struct {
	p       int
	dims    int
	rt      *routeTable
	scratch []int
}

// NewCube returns a binary hypercube over p = 2^k nodes.
func NewCube(p int) *Cube {
	checkP(p)
	c := &Cube{p: p, dims: bits.TrailingZeros(uint(p))}
	c.rt = buildRouteTable(p, c.AppendRoute)
	if c.rt == nil {
		c.scratch = make([]int, 0, c.Diameter())
	}
	return c
}

func (c *Cube) Name() string  { return "cube" }
func (c *Cube) P() int        { return c.p }
func (c *Cube) Dims() int     { return c.dims }
func (c *Cube) NumLinks() int { return c.p * c.dims }

// AppendRoute applies e-cube routing: correct differing address bits
// from least to most significant.  Link node*dims+d runs from node to
// node^(1<<d).
func (c *Cube) AppendRoute(buf []int, src, dst int) []int {
	cur := src
	for d := 0; d < c.dims; d++ {
		if (cur^dst)&(1<<d) != 0 {
			buf = append(buf, cur*c.dims+d)
			cur ^= 1 << d
		}
	}
	return buf
}

// Route returns the e-cube route from the precomputed table (or the
// scratch buffer at large p).
func (c *Cube) Route(src, dst int) []int {
	c.check(src, dst)
	if c.rt != nil {
		return c.rt.route(src, dst)
	}
	c.scratch = c.AppendRoute(c.scratch[:0], src, dst)
	return c.scratch
}

func (c *Cube) LinkEnds(id int) (from, to int) {
	from = id / c.dims
	d := id % c.dims
	return from, from ^ (1 << d)
}

func (c *Cube) Hops(src, dst int) int {
	c.check(src, dst)
	return bits.OnesCount(uint(src ^ dst))
}

func (c *Cube) Diameter() int { return c.dims }

// BisectionLinks: splitting on the most significant address bit cuts one
// link per node, i.e. p directed links counting both directions.
func (c *Cube) BisectionLinks() int { return c.p }

// CrossesBisection splits on the most significant address bit.
func (c *Cube) CrossesBisection(src, dst int) bool {
	msb := c.p / 2
	return (src&msb != 0) != (dst&msb != 0)
}

func (c *Cube) check(src, dst int) {
	if src < 0 || src >= c.p || dst < 0 || dst >= c.p || src == dst {
		panic(fmt.Sprintf("network: bad route %d -> %d on cube(%d)", src, dst, c.p))
	}
}

// Mesh is the 2-D mesh of the paper (the Intel Touchstone Delta shape):
// nodes in the interior have North/South/East/West neighbours; edges and
// corners have fewer.  For p an even power of two the mesh is square;
// otherwise it has twice as many columns as rows.  Routing is X-first
// (along the row to the destination column, then along the column).
type Mesh struct {
	p, rows, cols int
	rt            *routeTable
	scratch       []int
}

// Directions for mesh link ids: link id = node*4 + direction.
const (
	east = iota
	west
	north
	south
)

// NewMesh returns the 2-D mesh over p = 2^k nodes with the paper's
// aspect-ratio rule.
func NewMesh(p int) *Mesh {
	checkP(p)
	k := bits.TrailingZeros(uint(p))
	var rows, cols int
	if k%2 == 0 {
		rows = 1 << (k / 2)
		cols = rows
	} else {
		rows = 1 << ((k - 1) / 2)
		cols = 2 * rows
	}
	m := &Mesh{p: p, rows: rows, cols: cols}
	m.rt = buildRouteTable(p, m.AppendRoute)
	if m.rt == nil {
		m.scratch = make([]int, 0, m.Diameter())
	}
	return m
}

func (m *Mesh) Name() string  { return "mesh" }
func (m *Mesh) P() int        { return m.p }
func (m *Mesh) Rows() int     { return m.rows }
func (m *Mesh) Cols() int     { return m.cols }
func (m *Mesh) NumLinks() int { return m.p * 4 }

func (m *Mesh) node(r, c int) int       { return r*m.cols + c }
func (m *Mesh) coords(n int) (r, c int) { return n / m.cols, n % m.cols }

// AppendRoute is X-first dimension-ordered: travel east/west to the
// target column, then north/south to the target row.
func (m *Mesh) AppendRoute(buf []int, src, dst int) []int {
	sr, sc := m.coords(src)
	dr, dc := m.coords(dst)
	r, c := sr, sc
	for c < dc {
		buf = append(buf, m.node(r, c)*4+east)
		c++
	}
	for c > dc {
		buf = append(buf, m.node(r, c)*4+west)
		c--
	}
	for r < dr {
		buf = append(buf, m.node(r, c)*4+south)
		r++
	}
	for r > dr {
		buf = append(buf, m.node(r, c)*4+north)
		r--
	}
	return buf
}

// Route returns the X-first route from the precomputed table (or the
// scratch buffer at large p).
func (m *Mesh) Route(src, dst int) []int {
	m.check(src, dst)
	if m.rt != nil {
		return m.rt.route(src, dst)
	}
	m.scratch = m.AppendRoute(m.scratch[:0], src, dst)
	return m.scratch
}

func (m *Mesh) LinkEnds(id int) (from, to int) {
	from = id / 4
	r, c := m.coords(from)
	switch id % 4 {
	case east:
		c++
	case west:
		c--
	case north:
		r--
	default:
		r++
	}
	if r < 0 || r >= m.rows || c < 0 || c >= m.cols {
		panic(fmt.Sprintf("network: link %d leaves the mesh", id))
	}
	return from, m.node(r, c)
}

func (m *Mesh) Hops(src, dst int) int {
	m.check(src, dst)
	sr, sc := m.coords(src)
	dr, dc := m.coords(dst)
	return abs(sr-dr) + abs(sc-dc)
}

func (m *Mesh) Diameter() int { return m.rows - 1 + m.cols - 1 }

// BisectionLinks: cutting between the two column halves severs one link
// per row in each direction: 2 * rows.
func (m *Mesh) BisectionLinks() int { return 2 * m.rows }

// CrossesBisection splits between the two column halves.
func (m *Mesh) CrossesBisection(src, dst int) bool {
	_, sc := m.coords(src)
	_, dc := m.coords(dst)
	return (sc < m.cols/2) != (dc < m.cols/2)
}

func (m *Mesh) check(src, dst int) {
	if src < 0 || src >= m.p || dst < 0 || dst >= m.p || src == dst {
		panic(fmt.Sprintf("network: bad route %d -> %d on mesh(%d)", src, dst, m.p))
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// New returns the named topology over p nodes: the paper's "full",
// "cube" and "mesh", plus the extension topologies "ring" and "torus".
func New(name string, p int) (Topology, error) {
	switch name {
	case "full":
		return NewFull(p), nil
	case "cube":
		return NewCube(p), nil
	case "mesh":
		return NewMesh(p), nil
	case "ring":
		return NewRing(p), nil
	case "torus":
		return NewTorus(p), nil
	}
	return nil, fmt.Errorf("network: unknown topology %q", name)
}

// Names lists the available topologies, the paper's three first.
func Names() []string { return []string{"full", "cube", "mesh", "ring", "torus"} }
