// Command benchdiff records and gates simulator benchmark performance.
//
// It runs the root-package benchmarks at a pinned iteration count (so two
// runs on the same machine do comparable amounts of work), parses the
// standard `go test -bench` output, and either records the result as a
// baseline or compares against a committed baseline and exits non-zero on
// gross regressions.
//
// Usage:
//
//	go run ./cmd/benchdiff -record          # write BENCH_baseline.json
//	go run ./cmd/benchdiff                  # compare, fail on >50% ns/op or allocs/op regression
//	go run ./cmd/benchdiff -threshold 2.0   # looser time gate
//	go run ./cmd/benchdiff -alloc-threshold 0   # disable the allocation gate
//	go run ./cmd/benchdiff -baseline BENCH_pr9.json -bench BenchmarkLargeP
//	                                        # the large-P memory-regression gate
//	go run ./cmd/benchdiff -events-threshold 0.67
//	                                        # also gate events_per_sec throughput (lower is worse)
//
// A benchmark missing from the baseline fails the comparison (it would
// pass every gate vacuously), as does a missing events_per_sec metric on
// either side while -events-threshold is armed.
//
// The gate is deliberately loose (shared CI runners are noisy); its job is
// to catch the "accidentally quadratic" class of regression, not 5% drift.
// Tighten -threshold for quiet dedicated hardware.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
)

// Result is one benchmark's measurement.
type Result struct {
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// Metrics carries the benchmark's custom b.ReportMetric values by
	// unit name (e.g. "events_per_sec", "sim_events") — everything on
	// the result line beyond the standard ns/op, B/op, allocs/op.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Baseline is the committed benchmark record.
type Baseline struct {
	// Note documents what state of the tree the numbers describe.
	Note string `json:"note,omitempty"`
	// CPU is the benchmarking host's CPU string, for sanity-checking
	// that a comparison is running on comparable hardware.
	CPU string `json:"cpu,omitempty"`
	// Benchtime is the pinned -benchtime the numbers were taken at.
	Benchtime string `json:"benchtime"`
	// Benchmarks maps benchmark name (e.g.
	// "BenchmarkSimulationCost/target") to its measurement.
	Benchmarks map[string]Result `json:"benchmarks"`
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_baseline.json", "baseline file to read or write")
		record       = flag.Bool("record", false, "record a new baseline instead of comparing")
		bench        = flag.String("bench", "BenchmarkSimulationCost", "benchmark pattern to run")
		benchtime    = flag.String("benchtime", "10x", "pinned -benchtime (use Nx forms for comparability)")
		pkg          = flag.String("pkg", ".", "package to benchmark")
		threshold    = flag.Float64("threshold", 1.5, "fail when current ns/op exceeds baseline * threshold")
		allocGate    = flag.Float64("alloc-threshold", 1.5, "fail when current allocs/op exceeds baseline * alloc-threshold (0 disables)")
		bytesGate    = flag.Float64("bytes-threshold", 1.5, "fail when current B/op exceeds baseline * bytes-threshold (0 disables)")
		eventsGate   = flag.Float64("events-threshold", 0, "fail when current events_per_sec drops below baseline * events-threshold (0 disables; lower is worse)")
		note         = flag.String("note", "", "note stored with a recorded baseline")
	)
	flag.Parse()

	results, cpu, err := runBench(*bench, *benchtime, *pkg)
	if err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark results matched %q", *bench))
	}

	if *record {
		b := Baseline{Note: *note, CPU: cpu, Benchtime: *benchtime, Benchmarks: results}
		out, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			fatal(err)
		}
		out = append(out, '\n')
		if err := os.WriteFile(*baselinePath, out, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("recorded %d benchmarks to %s\n", len(results), *baselinePath)
		return
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal(fmt.Errorf("reading baseline (run with -record to create): %w", err))
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal(fmt.Errorf("parsing %s: %w", *baselinePath, err))
	}
	if base.CPU != "" && cpu != "" && base.CPU != cpu {
		fmt.Printf("note: baseline CPU %q != current CPU %q; treat ratios with care\n", base.CPU, cpu)
	}

	failed := false
	for name, cur := range results {
		b, ok := base.Benchmarks[name]
		if !ok {
			// A benchmark with no baseline entry would otherwise pass every
			// gate vacuously — a renamed benchmark (or a stale baseline)
			// silently disarms the gate it was supposed to feed.
			fmt.Printf("%-40s %12.0f ns/op  MISSING: no entry in %s\n", name, cur.NsPerOp, *baselinePath)
			failed = true
			continue
		}
		ratio := cur.NsPerOp / b.NsPerOp
		verdict := "ok"
		if ratio > *threshold {
			verdict = "REGRESSION"
			failed = true
		}
		// Allocation counts are near-deterministic, so the same
		// multiplicative gate catches accidental per-event allocations
		// that noisy ns/op would hide on shared runners.
		allocNote := ""
		if *allocGate > 0 && b.AllocsPerOp > 0 && cur.AllocsPerOp > 0 {
			aratio := float64(cur.AllocsPerOp) / float64(b.AllocsPerOp)
			allocNote = fmt.Sprintf("  allocs %.2fx", aratio)
			if aratio > *allocGate {
				verdict = "ALLOC REGRESSION"
				failed = true
			}
		}
		// B/op gates peak-memory growth the allocation *count* can miss:
		// a single huge slice per run (say a route table reappearing at
		// large P) is one alloc but gigabytes.
		if *bytesGate > 0 && b.BytesPerOp > 0 && cur.BytesPerOp > 0 {
			bratio := float64(cur.BytesPerOp) / float64(b.BytesPerOp)
			allocNote += fmt.Sprintf("  bytes %.2fx", bratio)
			if bratio > *bytesGate {
				verdict = "BYTES REGRESSION"
				failed = true
			}
		}
		// Event throughput gates the opposite direction: events_per_sec is
		// a rate, so a regression is a *drop* below baseline * threshold.
		// With the gate armed, a side missing the metric is itself a
		// failure — comparing against nothing proves nothing.
		if *eventsGate > 0 {
			const metric = "events_per_sec"
			bv, bok := b.Metrics[metric]
			cv, cok := cur.Metrics[metric]
			switch {
			case !bok:
				allocNote += fmt.Sprintf("  MISSING baseline metric %s", metric)
				failed = true
			case !cok:
				allocNote += fmt.Sprintf("  MISSING current metric %s", metric)
				failed = true
			default:
				eratio := cv / bv
				allocNote += fmt.Sprintf("  events %.2fx", eratio)
				if eratio < *eventsGate {
					verdict = "THROUGHPUT REGRESSION"
					failed = true
				}
			}
		}
		fmt.Printf("%-40s %12.0f ns/op  baseline %12.0f  ratio %.2fx%s  %s\n",
			name, cur.NsPerOp, b.NsPerOp, ratio, allocNote, verdict)
	}
	if failed {
		fmt.Printf("FAIL: regressed past the gate (ns/op > %.2fx, allocs/op > %.2fx, B/op > %.2fx, or events_per_sec < %.2fx) vs %s\n",
			*threshold, *allocGate, *bytesGate, *eventsGate, *baselinePath)
		os.Exit(1)
	}
	fmt.Println("PASS: no benchmark regressed past the gate")
}

// runBench executes `go test -bench` and parses its output.  Repeated
// runs of the same benchmark (from -count) keep the fastest ns/op, which
// is the stablest statistic on noisy shared runners.
func runBench(pattern, benchtime, pkg string) (map[string]Result, string, error) {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", pattern, "-benchmem", "-benchtime", benchtime, pkg)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, "", fmt.Errorf("go test -bench: %w", err)
	}
	results := make(map[string]Result)
	var cpu string
	sc := bufio.NewScanner(strings.NewReader(string(out)))
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "cpu: "); ok {
			cpu = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		r, name, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		if prev, seen := results[name]; !seen || r.NsPerOp < prev.NsPerOp {
			results[name] = r
		}
	}
	return results, cpu, sc.Err()
}

// parseBenchLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkSimulationCost/target-8   10   12319607 ns/op   23872 sim_events   2676159 B/op   3721 allocs/op
func parseBenchLine(line string) (Result, string, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, "", false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix so baselines survive core-count changes.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, "", false
	}
	r := Result{Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			r.NsPerOp, err = strconv.ParseFloat(val, 64)
			if err != nil {
				return Result{}, "", false
			}
		case "B/op":
			r.BytesPerOp, _ = strconv.ParseInt(val, 10, 64)
		case "allocs/op":
			r.AllocsPerOp, _ = strconv.ParseInt(val, 10, 64)
		default:
			// Custom b.ReportMetric units (events_per_sec, sim_events, ...).
			if f, err := strconv.ParseFloat(val, 64); err == nil {
				if r.Metrics == nil {
					r.Metrics = make(map[string]float64)
				}
				r.Metrics[unit] = f
			}
		}
	}
	if r.NsPerOp == 0 {
		return Result{}, "", false
	}
	return r, name, true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
