package cache

import (
	"testing"

	"spasm/internal/mem"
)

// BenchmarkHit measures the lookup fast path on a resident block.
func BenchmarkHit(b *testing.B) {
	c := New(DefaultConfig())
	c.Insert(42, UnOwned)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(42)
	}
}

// BenchmarkMissFill measures the miss + insert path with evictions, over
// a working set twice the cache size.
func BenchmarkMissFill(b *testing.B) {
	c := New(DefaultConfig())
	sets := c.Config().Sets()
	span := mem.Block(sets * c.Config().Assoc * 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk := mem.Block(i*97) % span
		if c.Access(blk) == Invalid {
			c.Insert(blk, UnOwned)
		}
	}
}

// BenchmarkInvalidate measures the invalidation path.
func BenchmarkInvalidate(b *testing.B) {
	c := New(DefaultConfig())
	for i := 0; i < b.N; i++ {
		c.Insert(mem.Block(i%1024), OwnedExclusive)
		c.Invalidate(mem.Block(i % 1024))
	}
}
