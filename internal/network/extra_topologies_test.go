package network

import (
	"testing"
	"testing/quick"
)

func extraTopologies(p int) []Topology {
	return []Topology{NewRing(p), NewTorus(p)}
}

func TestExtraRoutesValid(t *testing.T) {
	for _, p := range sizes {
		for _, topo := range extraTopologies(p) {
			for src := 0; src < p; src++ {
				for dst := 0; dst < p; dst++ {
					if src == dst {
						continue
					}
					routeIsValid(t, topo, src, dst)
				}
			}
		}
	}
}

func TestExtraHopsWithinDiameter(t *testing.T) {
	for _, p := range sizes {
		for _, topo := range extraTopologies(p) {
			maxSeen := 0
			for src := 0; src < p; src++ {
				for dst := 0; dst < p; dst++ {
					if src == dst {
						continue
					}
					h := topo.Hops(src, dst)
					if h < 1 || h > topo.Diameter() {
						t.Fatalf("%s(%d): hops(%d,%d) = %d, diameter %d",
							topo.Name(), p, src, dst, h, topo.Diameter())
					}
					if h > maxSeen {
						maxSeen = h
					}
				}
			}
			if maxSeen != topo.Diameter() {
				t.Errorf("%s(%d): max hops %d != diameter %d",
					topo.Name(), p, maxSeen, topo.Diameter())
			}
		}
	}
}

func TestRingProperties(t *testing.T) {
	r := NewRing(8)
	if r.Diameter() != 4 {
		t.Errorf("diameter = %d", r.Diameter())
	}
	if r.Hops(0, 1) != 1 || r.Hops(0, 7) != 1 || r.Hops(0, 4) != 4 {
		t.Error("ring hops wrong")
	}
	// Shorter-way routing: 0 -> 6 goes counter-clockwise (2 hops).
	route := r.Route(0, 6)
	if len(route) != 2 || route[0]%2 != ccw {
		t.Errorf("route(0,6) = %v", route)
	}
	if r.BisectionLinks() != 4 {
		t.Errorf("bisection = %d", r.BisectionLinks())
	}
	if !r.CrossesBisection(0, 4) || r.CrossesBisection(0, 1) {
		t.Error("ring bisection predicate wrong")
	}
}

func TestRingOfTwo(t *testing.T) {
	r := NewRing(2)
	if r.BisectionLinks() != 2 || r.Diameter() != 1 {
		t.Errorf("ring(2): bisection %d diameter %d", r.BisectionLinks(), r.Diameter())
	}
	routeIsValid(t, r, 0, 1)
	routeIsValid(t, r, 1, 0)
}

func TestTorusProperties(t *testing.T) {
	tor := NewTorus(16) // 4x4
	if tor.Rows() != 4 || tor.Cols() != 4 {
		t.Fatalf("torus(16) = %dx%d", tor.Rows(), tor.Cols())
	}
	if tor.Diameter() != 4 {
		t.Errorf("diameter = %d", tor.Diameter())
	}
	// Wraparound shortens the mesh's corner-to-corner route.
	m := NewMesh(16)
	if tor.Hops(0, 15) >= m.Hops(0, 15) {
		t.Errorf("torus hops %d not below mesh %d", tor.Hops(0, 15), m.Hops(0, 15))
	}
	if tor.Hops(0, 3) != 1 { // wraps west
		t.Errorf("hops(0,3) = %d", tor.Hops(0, 3))
	}
	if tor.BisectionLinks() != 16 { // 4 * rows
		t.Errorf("bisection = %d", tor.BisectionLinks())
	}
}

func TestTorusDegenerateTwoColumns(t *testing.T) {
	tor := NewTorus(4) // 2x2: wrap and cut coincide
	if tor.BisectionLinks() != 4 {
		t.Errorf("torus(4) bisection = %d", tor.BisectionLinks())
	}
	for s := 0; s < 4; s++ {
		for d := 0; d < 4; d++ {
			if s != d {
				routeIsValid(t, tor, s, d)
			}
		}
	}
}

func TestTorusMeanRouteShorterThanMesh(t *testing.T) {
	// The torus's whole point: wraparound halves average distance.
	for _, p := range []int{16, 64} {
		tor, m := NewTorus(p), NewMesh(p)
		sum := func(topo Topology) int {
			total := 0
			for s := 0; s < p; s++ {
				for d := 0; d < p; d++ {
					if s != d {
						total += topo.Hops(s, d)
					}
				}
			}
			return total
		}
		if sum(tor) >= sum(m) {
			t.Errorf("p=%d: torus total distance not below mesh", p)
		}
	}
}

func TestNewExtendedNames(t *testing.T) {
	for _, name := range Names() {
		topo, err := New(name, 8)
		if err != nil || topo.Name() != name {
			t.Errorf("New(%q) = %v, %v", name, topo, err)
		}
	}
	if len(Names()) != 5 {
		t.Errorf("Names() = %v", Names())
	}
}

func TestExtraBadInputsPanic(t *testing.T) {
	mustPanicT(t, func() { NewRing(3) })
	mustPanicT(t, func() { NewTorus(0) })
	r := NewRing(8)
	mustPanicT(t, func() { r.Route(2, 2) })
	tor := NewTorus(8)
	mustPanicT(t, func() { tor.Route(-1, 2) })
}

// Property: torus routes never exceed (cols/2 + rows/2) links and ring
// routes never exceed p/2.
func TestExtraRouteBoundsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		p := sizes[int(seed%uint64(len(sizes)))]
		r := NewRing(p)
		tor := NewTorus(p)
		for s := 0; s < p; s++ {
			d := (s + 1 + int((seed>>3)%uint64(p-1))) % p
			if d == s {
				continue
			}
			if len(r.Route(s, d)) > p/2 {
				return false
			}
			if len(tor.Route(s, d)) > tor.Rows()/2+tor.Cols()/2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
