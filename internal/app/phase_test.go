package app

import (
	"fmt"
	"testing"

	"spasm/internal/machine"
	"spasm/internal/mem"
	"spasm/internal/sim"
	"spasm/internal/stats"
)

func runPhased(t *testing.T, p int, kind machine.Kind, setup func(*Ctx), body func(*Proc)) *Result {
	t.Helper()
	prog := &testProg{name: "phased", setup: setup, body: body}
	res, err := Run(prog, machine.Config{Kind: kind, Topology: "full", P: p})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPhaseAttributionBasic(t *testing.T) {
	res := runPhased(t, 2, machine.Ideal,
		func(c *Ctx) {},
		func(p *Proc) {
			p.Phase("a")
			p.Compute(100)
			p.Phase("b")
			p.Compute(300)
		})
	pp := res.Phases
	if got := pp.Names(); fmt.Sprint(got) != "[a b]" {
		t.Fatalf("phases = %v", got)
	}
	a, b := pp.Get("a"), pp.Get("b")
	if a.Time[stats.Compute] != 2*100*20 { // 2 procs x 100 cycles x 20 units
		t.Errorf("phase a compute = %v", a.Time[stats.Compute])
	}
	if b.Time[stats.Compute] != 2*300*20 {
		t.Errorf("phase b compute = %v", b.Time[stats.Compute])
	}
	if a.Visits != 2 || b.Visits != 2 {
		t.Errorf("visits a=%d b=%d", a.Visits, b.Visits)
	}
}

func TestPhaseWallCoversBody(t *testing.T) {
	res := runPhased(t, 4, machine.Ideal,
		func(c *Ctx) {},
		func(p *Proc) {
			p.Phase("only")
			p.Compute(int64(100 * (p.ID + 1)))
		})
	// Total wall across phases = sum of per-proc elapsed times.
	want := sim.Time((100 + 200 + 300 + 400) * 20)
	if got := res.Phases.TotalWall(); got != want {
		t.Errorf("total wall = %v, want %v", got, want)
	}
}

func TestPhaseReentry(t *testing.T) {
	res := runPhased(t, 1, machine.Ideal,
		func(c *Ctx) {},
		func(p *Proc) {
			for i := 0; i < 3; i++ {
				p.Phase("loop")
				p.Compute(10)
				p.Phase("other")
				p.Compute(5)
			}
		})
	l := res.Phases.Get("loop")
	if l.Visits != 3 || l.Time[stats.Compute] != 3*10*20 {
		t.Errorf("loop phase %+v", l)
	}
}

func TestNoPhasesNoProfile(t *testing.T) {
	res := runPhased(t, 2, machine.Ideal,
		func(c *Ctx) {},
		func(p *Proc) { p.Compute(10) })
	if len(res.Phases.Names()) != 0 {
		t.Errorf("unexpected phases %v", res.Phases.Names())
	}
	if res.Phases.TotalWall() != 0 {
		t.Error("wall time without phases")
	}
}

func TestPhaseCapturesNetworkOverheads(t *testing.T) {
	var arr *mem.Array
	res := runPhased(t, 4, machine.Target,
		func(c *Ctx) { arr = c.Space.Alloc("x", 256, 8, mem.Blocked) },
		func(p *Proc) {
			p.Phase("local")
			lo, hi := arr.OwnerRange(p.ID)
			p.ReadRange(arr, lo, hi)
			p.Phase("remote")
			lo, hi = arr.OwnerRange((p.ID + 1) % 4)
			p.ReadRange(arr, lo, hi)
		})
	local := res.Phases.Get("local")
	remote := res.Phases.Get("remote")
	if local.Time[stats.Latency] != 0 {
		t.Errorf("local phase has latency %v", local.Time[stats.Latency])
	}
	if remote.Time[stats.Latency] == 0 {
		t.Error("remote phase has no latency")
	}
	// SortedByBucket puts the remote phase first for latency.
	if top := res.Phases.SortedByBucket(stats.Latency)[0]; top.Name != "remote" {
		t.Errorf("top latency phase = %s", top.Name)
	}
}
