package probe

import "testing"

// The link budget bounds per-epoch telemetry memory at large P: a
// 1024-node full topology has a million directed links, and the probe
// must not hold a sample per link per epoch.  These tests pin the
// folding semantics.

// TestLinkBudgetFoldsOverflow checks that the first `budget` distinct
// ids get individual samples and everything after folds into the
// overflow aggregate at ovfID.
func TestLinkBudgetFoldsOverflow(t *testing.T) {
	const budget, ovfID = 4, 100
	e := &epochAcc{}
	for id := 0; id < 10; id++ {
		e.link(id, budget, ovfID).Messages++
	}
	if len(e.links) != budget+1 {
		t.Fatalf("held %d samples; want %d individual + 1 overflow", len(e.links), budget)
	}
	for id := 0; id < budget; id++ {
		l := e.links[id]
		if l == nil || l.Messages != 1 {
			t.Errorf("link %d: want individual sample with 1 message, got %+v", id, l)
		}
	}
	ovf := e.links[ovfID]
	if ovf == nil || ovf.Messages != 10-budget {
		t.Errorf("overflow: want %d folded messages, got %+v", 10-budget, ovf)
	}
	// Ids already held keep accumulating individually even over budget.
	e.link(2, budget, ovfID).Messages++
	if e.links[2].Messages != 2 {
		t.Errorf("held id stopped accumulating: %+v", e.links[2])
	}
}

// TestLinkBudgetOverflowAlwaysAdmitted checks the aggregate itself is
// never refused, even when the epoch is exactly at budget.
func TestLinkBudgetOverflowAlwaysAdmitted(t *testing.T) {
	const budget, ovfID = 2, 50
	e := &epochAcc{}
	e.link(7, budget, ovfID).Messages++
	e.link(8, budget, ovfID).Messages++
	l := e.link(9, budget, ovfID) // over budget: folds to ovfID
	if l.Link != ovfID {
		t.Fatalf("over-budget id landed on link %d; want overflow %d", l.Link, ovfID)
	}
	if len(e.links) != budget+1 {
		t.Fatalf("held %d samples; want budget %d + overflow", len(e.links), budget)
	}
}

// TestMergeUnderBudgetDeterministic checks that merging two epochs whose
// union exceeds the budget keeps the lowest ids (ascending fold order),
// independent of map iteration order.
func TestMergeUnderBudgetDeterministic(t *testing.T) {
	const budget, ovfID = 3, 1000
	for trial := 0; trial < 8; trial++ {
		a := &epochAcc{}
		b := &epochAcc{}
		for _, id := range []int{5, 1, 9} {
			a.link(id, budget, ovfID).Messages++
		}
		for _, id := range []int{7, 3, 2, 8} {
			b.link(id, budget, ovfID).Messages++
		}
		a.merge(b, budget, ovfID)
		// a already holds {1,5,9}; b's ids fold in ascending order
		// {2,3,7,8}, all over budget, so all land in the overflow.
		if ovf := a.links[ovfID]; ovf == nil || ovf.Messages != 4 {
			t.Fatalf("trial %d: overflow %+v; want 4 folded messages", trial, a.links[ovfID])
		}
		for _, id := range []int{1, 5, 9} {
			if l := a.links[id]; l == nil || l.Messages != 1 {
				t.Fatalf("trial %d: pre-held id %d lost: %+v", trial, id, l)
			}
		}
	}
}
