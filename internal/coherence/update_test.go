package coherence

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"spasm/internal/cache"
	"spasm/internal/mem"
	"spasm/internal/sim"
	"spasm/internal/stats"
)

func updateEngine(p int, tr Transport) (*Engine, *mem.Space, *mem.Array) {
	eng, space, arr := testEngine(p, tr)
	eng.Protocol = Update
	return eng, space, arr
}

func TestUpdateProtocolParsing(t *testing.T) {
	got, err := ParseProtocol("update")
	if err != nil || got != Update {
		t.Errorf("ParseProtocol(update) = %v, %v", got, err)
	}
	if len(Protocols()) != 3 {
		t.Errorf("Protocols() = %v", Protocols())
	}
	if UpdateMsg.String() != "update" {
		t.Errorf("class name %q", UpdateMsg.String())
	}
	if UpdateMsg.MovesData() {
		t.Error("UpdateMsg must be coherence-maintenance (free on CLogP)")
	}
}

func TestUpdateSharersStayValid(t *testing.T) {
	// The defining property: after a write to a shared block, every
	// copy remains readable with NO further network traffic.
	tr := &flatTransport{delay: 100}
	eng, space, arr := updateEngine(4, tr)
	lo, _ := arr.OwnerRange(0)
	addr := arr.At(lo)
	run := drive(t, 4, func(p *sim.Proc, r *stats.Run) {
		eng.Read(p, &r.Procs[1], 1, addr)
		eng.Read(p, &r.Procs[2], 2, addr)
		eng.Write(p, &r.Procs[1], 1, addr) // update, not invalidate
		tr.log = nil
		eng.Read(p, &r.Procs[2], 2, addr) // must be a silent hit
	})
	if len(tr.log) != 0 {
		t.Errorf("post-update read cost messages: %v", tr.log)
	}
	b := space.BlockOf(addr)
	for _, n := range []int{1, 2} {
		if s := eng.Cache(n).State(b); s != cache.UnOwned {
			t.Errorf("cache %d state = %v, want V", n, s)
		}
	}
	if run.Procs[2].Hits != 1 {
		t.Errorf("reader hits = %d", run.Procs[2].Hits)
	}
	if err := eng.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestUpdateSharedWriteSendsUpdates(t *testing.T) {
	tr := &flatTransport{delay: 100}
	eng, _, arr := updateEngine(4, tr)
	lo, _ := arr.OwnerRange(0)
	addr := arr.At(lo) // home 0
	drive(t, 4, func(p *sim.Proc, r *stats.Run) {
		eng.Read(p, &r.Procs[1], 1, addr)
		eng.Read(p, &r.Procs[2], 2, addr)
		eng.Read(p, &r.Procs[3], 3, addr)
		tr.log = nil
		eng.Write(p, &r.Procs[1], 1, addr)
	})
	// write-through to home, updates to sharers 2 and 3 (+acks), grant.
	want := "[update update inval-ack update inval-ack grant]"
	if fmt.Sprint(tr.log) != want {
		t.Errorf("update-write classes = %v, want %s", tr.log, want)
	}
}

func TestUpdateSoleCopyBecomesExclusive(t *testing.T) {
	tr := &flatTransport{delay: 100}
	eng, space, arr := updateEngine(4, tr)
	lo, _ := arr.OwnerRange(2)
	addr := arr.At(lo)
	run := drive(t, 4, func(p *sim.Proc, r *stats.Run) {
		eng.Read(p, &r.Procs[0], 0, addr)
		eng.Write(p, &r.Procs[0], 0, addr) // sole sharer: exclusive upgrade
		tr.log = nil
		for i := 0; i < 5; i++ {
			eng.Write(p, &r.Procs[0], 0, addr) // private writes: free
		}
	})
	if len(tr.log) != 0 {
		t.Errorf("private writes cost messages: %v", tr.log)
	}
	b := space.BlockOf(addr)
	if s := eng.Cache(0).State(b); s != cache.OwnedExclusive {
		t.Errorf("sole writer state = %v", s)
	}
	if run.Procs[0].Hits != 6 {
		t.Errorf("hits = %d", run.Procs[0].Hits)
	}
}

func TestUpdateWriteMissAllocatesAndUpdates(t *testing.T) {
	tr := &flatTransport{delay: 100}
	eng, _, arr := updateEngine(4, tr)
	lo, _ := arr.OwnerRange(0)
	addr := arr.At(lo)
	drive(t, 4, func(p *sim.Proc, r *stats.Run) {
		eng.Read(p, &r.Procs[2], 2, addr) // sharer
		tr.log = nil
		eng.Write(p, &r.Procs[3], 3, addr) // miss: fetch + update
	})
	// fetch: read-req + data-reply; then write-through + update + ack + grant
	want := "[read-req data-reply update update inval-ack grant]"
	if fmt.Sprint(tr.log) != want {
		t.Errorf("write-miss classes = %v, want %s", tr.log, want)
	}
}

func TestUpdateNeverSharedDirtyAndInvariantsHold(t *testing.T) {
	f := func(seed int64) bool {
		tr := &flatTransport{delay: 50}
		eng, _, arr := updateEngine(4, tr)
		rng := rand.New(rand.NewSource(seed))
		e := sim.NewEngine()
		run := stats.NewRun(4)
		e.Spawn("driver", func(p *sim.Proc) {
			for i := 0; i < 300; i++ {
				n := rng.Intn(4)
				idx := rng.Intn(arr.N)
				if rng.Intn(3) == 0 {
					eng.Write(p, &run.Procs[n], n, arr.At(idx))
				} else {
					eng.Read(p, &run.Procs[n], n, arr.At(idx))
				}
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		for n := 0; n < 4; n++ {
			bad := false
			eng.Cache(n).ForEach(func(b mem.Block, s cache.State) {
				if s == cache.OwnedShared {
					bad = true
				}
			})
			if bad {
				return false
			}
		}
		return eng.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestUpdateVsInvalidateTradeoff: producer-consumer sharing favours
// update (consumers never re-miss); private write bursts favour
// invalidate.  Check both directions of the classic trade-off.
func TestUpdateVsInvalidateTradeoff(t *testing.T) {
	producerConsumer := func(proto Protocol) uint64 {
		tr := &flatTransport{delay: 100}
		eng, _, arr := testEngine(4, tr)
		eng.Protocol = proto
		run := drive(t, 4, func(p *sim.Proc, r *stats.Run) {
			lo, _ := arr.OwnerRange(0)
			addr := arr.At(lo)
			for round := 0; round < 10; round++ {
				eng.Write(p, &r.Procs[0], 0, addr) // producer
				for c := 1; c < 4; c++ {
					eng.Read(p, &r.Procs[c], c, addr) // consumers
				}
			}
		})
		return run.Count(func(q *stats.Proc) uint64 { return q.Misses })
	}
	if u, b := producerConsumer(Update), producerConsumer(Berkeley); u >= b {
		t.Errorf("producer-consumer: update misses %d not below berkeley %d", u, b)
	}
}
