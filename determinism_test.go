package spasm

// Bit-for-bit determinism lock: a Tiny sweep of every application on
// every machine characterization must produce byte-identical report
// documents across runs AND across simulator-engineering changes.  The
// golden file was generated before the kernel fast-path work (PR 3) and
// guards that heap, routing, and directory optimizations never change a
// single simulated number.  Regenerate with SPASM_UPDATE=1 only when a
// change is *intended* to alter simulated results.

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"spasm/internal/report"
)

const runDocGoldenPath = "testdata/rundocs_tiny.golden.json"

// goldenRunDocs simulates the determinism corpus: the full Tiny suite on
// all machine kinds over the full network, plus the target machine on
// the cube and mesh (exercising every routing path).
func goldenRunDocs(t *testing.T) []report.RunDoc {
	t.Helper()
	var docs []report.RunDoc
	add := func(app string, kind Kind, topo string) {
		res, err := Run(app, Tiny, 1, Config{Kind: kind, Topology: topo, P: 8})
		if err != nil {
			t.Fatalf("%s on %v/%s: %v", app, kind, topo, err)
		}
		docs = append(docs, report.RunJSON(res))
	}
	for _, app := range Apps() {
		for _, kind := range Machines() {
			add(app, kind, "full")
		}
		add(app, Target, "cube")
		add(app, Target, "mesh")
	}
	return docs
}

// TestPooledRunsBitIdentical is the pooling determinism lock: every
// combination of the Tiny suite across the three networked machines and
// all five topologies must produce byte-identical RunDoc JSON whether it
// runs on fresh state or on one shared, repeatedly reused context pool.
// One pool serves ALL combinations, so each context is rebound across
// different applications — i.e. across different memory layouts — which
// is exactly the reuse the reset invariants (docs/INTERNALS.md) must
// survive.
func TestPooledRunsBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full Tiny suite x 5 topologies, twice")
	}
	pool := NewRunPool(0)
	kinds := []Kind{Flow, LogP, CLogP, Target}
	topos := []string{"full", "cube", "mesh", "ring", "torus"}
	// Two passes over the whole corpus: the second pass reuses contexts
	// warmed by the first, so every single run of it exercises reset.
	for pass := 0; pass < 2; pass++ {
		for _, app := range Apps() {
			for _, kind := range kinds {
				for _, topo := range topos {
					cfg := Config{Kind: kind, Topology: topo, P: 8}
					fresh, err := Run(app, Tiny, 1, cfg)
					if err != nil {
						t.Fatalf("fresh %s on %v/%s: %v", app, kind, topo, err)
					}
					pooled, err := RunOn(app, Tiny, 1, cfg, pool)
					if err != nil {
						t.Fatalf("pooled %s on %v/%s: %v", app, kind, topo, err)
					}
					want, err := json.Marshal(report.RunJSON(fresh))
					if err != nil {
						t.Fatal(err)
					}
					got, err := json.Marshal(report.RunJSON(pooled))
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(got, want) {
						t.Fatalf("pass %d: %s on %v/%s: pooled RunDoc diverged from fresh\nfresh:  %s\npooled: %s",
							pass, app, kind, topo, want, got)
					}
				}
			}
		}
	}
	if st := pool.Stats(); st.Hits == 0 {
		t.Fatalf("pool reported no reuse (stats %+v); the test exercised nothing", st)
	}
}

func TestRunDocsBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full Tiny suite")
	}
	got, err := json.MarshalIndent(goldenRunDocs(t), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	if os.Getenv("SPASM_UPDATE") != "" {
		if err := os.MkdirAll(filepath.Dir(runDocGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(runDocGoldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", runDocGoldenPath, len(got))
		return
	}
	want, err := os.ReadFile(runDocGoldenPath)
	if err != nil {
		t.Fatalf("missing golden (run with SPASM_UPDATE=1 to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("RunDoc JSON diverged from golden %s (%d vs %d bytes); "+
			"simulated results are supposed to be bit-for-bit stable",
			runDocGoldenPath, len(got), len(want))
	}
}
