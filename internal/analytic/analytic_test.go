package analytic

import (
	"testing"

	"spasm/internal/app"
	"spasm/internal/apps"
	"spasm/internal/machine"
	"spasm/internal/network"
	"spasm/internal/sim"
	"spasm/internal/stats"
)

func TestMeanRouteLengthExactValues(t *testing.T) {
	if got := MeanRouteLength(network.NewFull(8)); got != 1 {
		t.Errorf("full mean route = %v", got)
	}
	// Hypercube over p=2^k: mean Hamming distance between distinct
	// nodes = k * 2^(k-1) / (2^k - 1).
	if got, want := MeanRouteLength(network.NewCube(8)), 3.0*4/7; !close(got, want) {
		t.Errorf("cube(8) mean route = %v, want %v", got, want)
	}
	// 2x2 mesh: routes of length 1 (4 ordered pairs) and 2 (2 pairs x
	// 2 directions... enumerate: pairs (0,3),(3,0),(1,2),(2,1) have
	// length 2, the other 8 have length 1) -> (8*1 + 4*2)/12 = 4/3.
	if got, want := MeanRouteLength(network.NewMesh(4)), 4.0/3; !close(got, want) {
		t.Errorf("mesh(4) mean route = %v, want %v", got, want)
	}
}

func TestUsedLinks(t *testing.T) {
	if got := UsedLinks(network.NewFull(4)); got != 12 { // ordered pairs
		t.Errorf("full(4) used links = %d", got)
	}
	if got := UsedLinks(network.NewCube(8)); got != 24 { // p * dims
		t.Errorf("cube(8) used links = %d", got)
	}
	// 2x2 mesh: 4 undirected edges = 8 directed links, all used.
	if got := UsedLinks(network.NewMesh(4)); got != 8 {
		t.Errorf("mesh(4) used links = %d", got)
	}
}

func TestPredictValidation(t *testing.T) {
	if _, err := Predict(network.NewCube(8), Load{Rate: 0, Service: 10}); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := Predict(network.NewCube(8), Load{Rate: 0.1, Service: 0}); err == nil {
		t.Error("zero service accepted")
	}
}

func TestPredictSaturation(t *testing.T) {
	pr, err := Predict(network.NewMesh(16), Load{Rate: 1, Service: sim.Micros(1.6)})
	if err != nil {
		t.Fatal(err)
	}
	if !pr.Saturated {
		t.Errorf("absurd load not saturated: %+v", pr)
	}
}

func TestPredictMonotoneInLoad(t *testing.T) {
	topo := network.NewCube(16)
	var prev float64
	for i, rate := range []float64{1e-5, 2e-5, 4e-5, 8e-5} {
		pr, err := Predict(topo, Load{Rate: rate, Service: sim.Micros(1.6)})
		if err != nil {
			t.Fatal(err)
		}
		if pr.Saturated {
			t.Fatalf("saturated at rate %v", rate)
		}
		if i > 0 && pr.WaitPerMessage <= prev {
			t.Errorf("wait not increasing with load: %v after %v", pr.WaitPerMessage, prev)
		}
		prev = pr.WaitPerMessage
	}
}

// measure runs a microbenchmark on the detailed target network and
// returns the per-message offered rate, mean service time, and measured
// mean waiting per message.
func measure(t *testing.T, pattern apps.Pattern, think int64, topo string, p int) (Load, float64) {
	t.Helper()
	prog := apps.NewMicro(pattern, 400, think, 1)
	res, err := app.Run(prog, machine.Config{Kind: machine.Target, Topology: topo, P: p})
	if err != nil {
		t.Fatal(err)
	}
	r := res.Stats
	msgs := float64(r.Messages())
	bytes := float64(r.Count(func(q *stats.Proc) uint64 { return q.NetBytes }))
	dur := float64(r.Total)
	load := Load{
		Rate:    msgs / float64(p) / dur,
		Service: sim.Time(bytes / msgs * float64(sim.SerialByte)),
	}
	waitPerMsg := float64(r.Sum(stats.Contention)) / msgs
	return load, waitPerMsg
}

// TestModelTracksUniformTraffic: for the traffic that satisfies its
// assumptions, the queueing model predicts the simulated contention
// within a small factor.
func TestModelTracksUniformTraffic(t *testing.T) {
	topoName := "cube"
	load, measured := measure(t, apps.UniformPattern, 200, topoName, 8)
	topo, _ := network.New(topoName, 8)
	pr, err := Predict(topo, load)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Saturated {
		t.Fatalf("model saturated at measured load %+v", load)
	}
	ratio := measured / pr.WaitPerMessage
	if ratio < 0.2 || ratio > 5 {
		t.Errorf("uniform traffic: measured wait %v vs predicted %v (ratio %.2f)",
			measured, pr.WaitPerMessage, ratio)
	}
}

// TestModelBreaksOnHotSpot: hot-spot traffic violates the uniformity
// assumption, and the model must underpredict badly — the paper's
// argument for application-driven evaluation.
func TestModelBreaksOnHotSpot(t *testing.T) {
	topoName := "cube"
	uLoad, uMeasured := measure(t, apps.UniformPattern, 200, topoName, 8)
	hLoad, hMeasured := measure(t, apps.HotSpotPattern, 200, topoName, 8)
	topo, _ := network.New(topoName, 8)
	uPred, err := Predict(topo, uLoad)
	if err != nil {
		t.Fatal(err)
	}
	hPred, err := Predict(topo, hLoad)
	if err != nil {
		t.Fatal(err)
	}
	uErr := uMeasured / uPred.WaitPerMessage
	hErr := 10.0
	if !hPred.Saturated {
		hErr = hMeasured / hPred.WaitPerMessage
	}
	if hErr <= uErr {
		t.Errorf("model error on hot-spot (%.2fx) not above uniform (%.2fx)", hErr, uErr)
	}
}

func TestPatternNames(t *testing.T) {
	for p, want := range map[apps.Pattern]string{
		apps.UniformPattern:  "uniform",
		apps.HotSpotPattern:  "hotspot",
		apps.NeighborPattern: "neighbor",
	} {
		if p.String() != want {
			t.Errorf("pattern %d name %q", p, p.String())
		}
	}
}

func close(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}
