package apps

import (
	"sort"
	"testing"

	"spasm/internal/app"
	"spasm/internal/machine"
	"spasm/internal/stats"
)

func runIS(t *testing.T, kind machine.Kind, p, n, k int) (*IS, *stats.Run) {
	t.Helper()
	is := &IS{N: n, K: k, Seed: 1}
	res, err := app.Run(is, machine.Config{Kind: kind, Topology: "full", P: p})
	if err != nil {
		t.Fatal(err)
	}
	return is, res.Stats
}

func TestISSortsOnEveryMachine(t *testing.T) {
	for _, kind := range machine.Kinds() {
		runIS(t, kind, 4, 512, 64)
	}
}

func TestISRanksAreStableSort(t *testing.T) {
	is, _ := runIS(t, machine.Ideal, 4, 1024, 32)
	// Reconstruct the permutation and verify it equals a stable sort
	// by key value.
	type kv struct {
		key  int64
		rank int64
	}
	items := make([]kv, is.N)
	for i := range items {
		items[i] = kv{is.keyv[i], is.rankv[i]}
	}
	sorted := append([]kv(nil), items...)
	sort.SliceStable(sorted, func(a, b int) bool { return sorted[a].key < sorted[b].key })
	for want, it := range sorted {
		if it.rank != int64(want) {
			t.Fatalf("stable-sort position %d has rank %d", want, it.rank)
		}
	}
}

func TestISKeyDistributionRoughlyGaussian(t *testing.T) {
	is, _ := runIS(t, machine.Ideal, 2, 4096, 256)
	// Average-of-four-uniforms: the middle half of the range must
	// hold clearly more than half the keys.
	mid := 0
	for _, k := range is.keyv {
		if k >= 64 && k < 192 {
			mid++
		}
	}
	if mid < len(is.keyv)*60/100 {
		t.Errorf("only %d/%d keys in the middle half", mid, len(is.keyv))
	}
}

func TestISUsesLocks(t *testing.T) {
	_, run := runIS(t, machine.Target, 4, 512, 64)
	if ops := run.Count(func(q *stats.Proc) uint64 { return q.LockOps }); ops == 0 {
		t.Error("IS acquired no locks")
	}
}

func TestISRankingPhaseCommunicates(t *testing.T) {
	// Phase 4's scattered offset reads are the communication-heavy
	// part: on the cache-less machine, IS must produce far more
	// network accesses than on the cached one.
	_, lp := runIS(t, machine.LogP, 4, 1024, 128)
	_, cl := runIS(t, machine.CLogP, 4, 1024, 128)
	if lp.NetAccesses() < 2*cl.NetAccesses() {
		t.Errorf("LogP accesses %d not >= 2x CLogP %d", lp.NetAccesses(), cl.NetAccesses())
	}
}

func TestISSerialPrefixPhase(t *testing.T) {
	// Processor 0 performs the prefix sum; its reference count must
	// exceed the others' by about K reads+writes.
	_, run := runIS(t, machine.Ideal, 4, 512, 128)
	p0 := run.Procs[0].Reads + run.Procs[0].Writes
	p1 := run.Procs[1].Reads + run.Procs[1].Writes
	if p0 <= p1 {
		t.Errorf("prefix phase invisible: p0 refs %d <= p1 refs %d", p0, p1)
	}
}
