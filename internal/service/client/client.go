// Package client is a small Go client for the spasmd HTTP API
// (internal/service).  It submits runs, polls them to completion,
// fetches figures and sweeps, and reads the metrics page — the same
// surface the end-to-end tests and examples/service_client exercise.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"spasm/internal/report"
	"spasm/internal/service"
)

// RetryPolicy bounds the client's transparent retries.  Retries are
// safe for every spasmd endpoint: the API is content-addressed and
// idempotent (resubmitting a spec coalesces or hits the cache), so a
// request that failed in transit can always be replayed.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per request (default 4;
	// 1 disables retrying).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 50ms);
	// subsequent delays double, with up to 50% random jitter so a
	// thundering herd of clients decorrelates.
	BaseDelay time.Duration
	// MaxDelay caps each backoff step, including server Retry-After
	// hints (default 2s).
	MaxDelay time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	return p
}

// delay computes the backoff before retry number attempt (0-based),
// honoring the server's Retry-After hint when one came back.
func (p RetryPolicy) delay(attempt int, hint time.Duration) time.Duration {
	d := p.BaseDelay << attempt
	if hint > 0 {
		d = hint
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	// Up to 50% additive jitter; never below the base so a hinted delay
	// stays at least as long as asked.
	return d + time.Duration(rand.Int63n(int64(d)/2+1))
}

// Client talks to one spasmd instance.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8347".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// PollInterval paces Run's status polling (default 25ms).
	PollInterval time.Duration
	// Retry bounds the transparent retrying of transient failures —
	// transport errors and HTTP 503 back-pressure.  The zero value
	// retries with the defaults; set MaxAttempts to 1 to disable.
	Retry RetryPolicy
	// MaxPollFailures is how many consecutive transient GetRun failures
	// Run tolerates before giving up (default 3).  Each poll already
	// retries per Retry, so this guards against outages longer than one
	// request's backoff budget.
	MaxPollFailures int
	// Tenant, when set, is sent as the X-Spasm-Tenant header on every
	// request, naming the fair-share bucket submissions queue under.
	Tenant string
}

// New returns a client for the server at base.
func New(base string) *Client {
	return &Client{BaseURL: strings.TrimRight(base, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// apiError is the decoded {"error": ...} body of a failed request.
type apiError struct {
	Status     int
	Msg        string
	RetryAfter time.Duration // parsed Retry-After hint, 0 if absent
}

func (e *apiError) Error() string {
	return fmt.Sprintf("spasmd: HTTP %d: %s", e.Status, e.Msg)
}

// transient reports whether err is worth retrying: a transport-level
// failure (connection refused/reset, broken pipe) or the server's own
// 503 back-pressure.  Context expiry and hard API errors (4xx) are
// final.
func transient(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var ae *apiError
	if errors.As(err, &ae) {
		// 503 is service back-pressure; 429 is this tenant's own quota.
		// Both come with Retry-After and clear on their own.
		return ae.Status == http.StatusServiceUnavailable || ae.Status == http.StatusTooManyRequests
	}
	return true // transport error
}

// retryAfterHint extracts the server's Retry-After suggestion, if any.
func retryAfterHint(err error) time.Duration {
	var ae *apiError
	if errors.As(err, &ae) {
		return ae.RetryAfter
	}
	return 0
}

// doRaw issues one request per attempt — the body is pre-marshaled so
// every attempt replays identical bytes — retrying transient failures
// per the client's RetryPolicy with context-bounded sleeps.  It returns
// the raw response body; non-2xx responses become *apiError values.
func (c *Client) doRaw(ctx context.Context, method, path string, body []byte) ([]byte, error) {
	policy := c.Retry.withDefaults()
	var lastErr error
	for attempt := 0; attempt < policy.MaxAttempts; attempt++ {
		if attempt > 0 {
			t := time.NewTimer(policy.delay(attempt-1, retryAfterHint(lastErr)))
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			}
		}
		data, err := c.doOnce(ctx, method, path, body)
		if err == nil {
			return data, nil
		}
		lastErr = err
		if !transient(err) {
			return nil, err
		}
	}
	return nil, lastErr
}

func (c *Client) doOnce(ctx context.Context, method, path string, body []byte) ([]byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.Tenant != "" {
		req.Header.Set("X-Spasm-Tenant", c.Tenant)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		ae := &apiError{Status: resp.StatusCode, Msg: strings.TrimSpace(string(data))}
		var ed struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &ed) == nil && ed.Error != "" {
			ae.Msg = ed.Error
		}
		ae.RetryAfter = parseRetryAfter(resp.Header.Get("Retry-After"), time.Now())
		return nil, ae
	}
	return data, nil
}

// parseRetryAfter parses a Retry-After header in either RFC 9110 form:
// delay-seconds or an HTTP-date.  Garbage, negative delays, and dates
// already in the past yield 0, which the retry policy treats as "no
// hint" and falls back to its own backoff — a malformed or hostile
// header can neither stall the client nor make it hammer the server.
func parseRetryAfter(h string, now time.Time) time.Duration {
	if h == "" {
		return 0
	}
	if secs, err := strconv.Atoi(h); err == nil {
		if secs <= 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(h); err == nil {
		if d := t.Sub(now); d > 0 {
			return d
		}
	}
	return 0
}

// do issues a request (with retries) and decodes the JSON response into
// out (unless out is nil).
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var b []byte
	if body != nil {
		var err error
		if b, err = json.Marshal(body); err != nil {
			return err
		}
	}
	data, err := c.doRaw(ctx, method, path, b)
	if err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// SubmitRun submits a run without waiting for it.
func (c *Client) SubmitRun(ctx context.Context, req service.RunRequest) (*service.RunStatus, error) {
	var st service.RunStatus
	if err := c.do(ctx, http.MethodPost, "/v1/runs", req, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// GetRun polls a run by ID.
func (c *Client) GetRun(ctx context.Context, id string) (*service.RunStatus, error) {
	var st service.RunStatus
	if err := c.do(ctx, http.MethodGet, "/v1/runs/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Run submits a run and polls until it reaches a terminal state — done,
// failed, or canceled — or ctx ends.  A transient poll failure (server
// briefly unreachable, 503 back-pressure past the per-request retry
// budget) does not abandon the run: up to MaxPollFailures consecutive
// failed polls are tolerated before the last error is returned, and any
// successful poll resets the count.  The job keeps running server-side
// either way — a poll-based client that returns early can always poll
// again by ID.
func (c *Client) Run(ctx context.Context, req service.RunRequest) (*service.RunStatus, error) {
	st, err := c.SubmitRun(ctx, req)
	if err != nil {
		return nil, err
	}
	interval := c.PollInterval
	if interval <= 0 {
		interval = 25 * time.Millisecond
	}
	maxFail := c.MaxPollFailures
	if maxFail < 1 {
		maxFail = 3
	}
	id, failures := st.ID, 0
	for !terminal(st.State) {
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(interval):
		}
		next, err := c.GetRun(ctx, id)
		if err != nil {
			if !transient(err) {
				return nil, err
			}
			if failures++; failures >= maxFail {
				return nil, fmt.Errorf("client: %d consecutive poll failures for run %s: %w", failures, id, err)
			}
			continue
		}
		st, failures = next, 0
	}
	return st, nil
}

func terminal(s service.State) bool {
	return s == service.StateDone || s == service.StateFailed || s == service.StateCanceled
}

// StreamEvent is one event from a run's SSE feed: Event is "state",
// "epoch", or "result"; Data is the event's JSON payload.  "epoch"
// events are provisional live telemetry (a profile rescale re-emits the
// covered timeline at a coarser resolution); the "result" event carries
// the terminal RunStatus.
type StreamEvent struct {
	Event string
	Data  json.RawMessage
}

// RunStream submits a run and follows it live: the server executes the
// run instrumented and streams profile epochs as they close, and
// onEvent (when non-nil) observes every event in order.  A non-nil
// error from onEvent abandons the stream and is returned; the server
// then cancels the job if nobody else wants it.  The returned status is
// the terminal "result" event.  Unlike Run, a stream is not replayable
// mid-flight, so there are no transparent retries — but resubmitting is
// always safe (the run coalesces or hits the cache).
func (c *Client) RunStream(ctx context.Context, req service.RunRequest, onEvent func(StreamEvent) error) (*service.RunStatus, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	return c.stream(ctx, http.MethodPost, "/v1/runs?stream=1", body, onEvent)
}

// Stream attaches to an existing run's SSE feed by ID.  A run that is
// already complete (cached in memory or in the durable store) yields
// its single "result" event immediately; a pending run submitted with
// streaming yields live epochs.
func (c *Client) Stream(ctx context.Context, id string, onEvent func(StreamEvent) error) (*service.RunStatus, error) {
	return c.stream(ctx, http.MethodGet, "/v1/runs/"+id+"/stream", nil, onEvent)
}

func (c *Client) stream(ctx context.Context, method, path string, body []byte, onEvent func(StreamEvent) error) (*service.RunStatus, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set("Accept", "text/event-stream")
	if c.Tenant != "" {
		req.Header.Set("X-Spasm-Tenant", c.Tenant)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		ae := &apiError{Status: resp.StatusCode, Msg: strings.TrimSpace(string(data))}
		var ed struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &ed) == nil && ed.Error != "" {
			ae.Msg = ed.Error
		}
		ae.RetryAfter = parseRetryAfter(resp.Header.Get("Retry-After"), time.Now())
		return nil, ae
	}

	var final *service.RunStatus
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	var ev StreamEvent
	flush := func() error {
		if ev.Event == "" && ev.Data == nil {
			return nil
		}
		if ev.Event == "result" {
			st := &service.RunStatus{}
			if err := json.Unmarshal(ev.Data, st); err == nil {
				final = st
			}
		}
		var cbErr error
		if onEvent != nil {
			cbErr = onEvent(ev)
		}
		ev = StreamEvent{}
		return cbErr
	}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if err := flush(); err != nil {
				return final, err
			}
		case strings.HasPrefix(line, ":"):
			// keep-alive comment
		case strings.HasPrefix(line, "event:"):
			ev.Event = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			ev.Data = append(ev.Data, strings.TrimSpace(strings.TrimPrefix(line, "data:"))...)
		}
	}
	if err := flush(); err != nil {
		return final, err
	}
	if err := sc.Err(); err != nil {
		return final, err
	}
	if final == nil {
		return nil, errors.New("client: stream ended without a result event")
	}
	return final, nil
}

// DecodeResult unpacks a completed run's statistics document.
func DecodeResult(st *service.RunStatus) (*report.RunDoc, error) {
	if st.State != service.StateDone {
		return nil, fmt.Errorf("client: run %s is %s (%s)", st.ID, st.State, st.Error)
	}
	var doc report.RunDoc
	if err := json.Unmarshal(st.Result, &doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

// Profile fetches a completed run's time-resolved telemetry as the
// JSON profile document.  The server materializes the profile on first
// request and serves the memoized copy afterwards; a run still in
// flight yields HTTP 409 (with a Retry-After hint) as an *apiError.
func (c *Client) Profile(ctx context.Context, id string) (*report.ProfileDoc, error) {
	var doc report.ProfileDoc
	if err := c.do(ctx, http.MethodGet, "/v1/runs/"+id+"/profile", nil, &doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

// ProfileRaw fetches a completed run's profile in its canonical compact
// binary encoding — byte-identical across requests and across servers
// for the same spec.  Decode it with spasm.DecodeProfile.
func (c *Client) ProfileRaw(ctx context.Context, id string) ([]byte, error) {
	return c.doRaw(ctx, http.MethodGet, "/v1/runs/"+id+"/profile?format=bin", nil)
}

// SweepOpts narrows a figure or sweep request; zero values mean the
// server's defaults (scale small, seed 1, procs 2..64, the paper's
// three machines).
type SweepOpts struct {
	Procs    []int
	Scale    string
	Seed     int64
	Machines []string
}

func (o SweepOpts) query() url.Values {
	q := url.Values{}
	if len(o.Procs) > 0 {
		strs := make([]string, len(o.Procs))
		for i, p := range o.Procs {
			strs[i] = strconv.Itoa(p)
		}
		q.Set("procs", strings.Join(strs, ","))
	}
	if o.Scale != "" {
		q.Set("scale", o.Scale)
	}
	if o.Seed != 0 {
		q.Set("seed", strconv.FormatInt(o.Seed, 10))
	}
	if len(o.Machines) > 0 {
		q.Set("machines", strings.Join(o.Machines, ","))
	}
	return q
}

// Figure regenerates paper figure n on the server.
func (c *Client) Figure(ctx context.Context, n int, opts SweepOpts) (*report.FigureDoc, error) {
	q := opts.query()
	path := fmt.Sprintf("/v1/figures/%d", n)
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var doc report.FigureDoc
	if err := c.do(ctx, http.MethodGet, path, nil, &doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

// Sweep runs an ad-hoc (application, topology, metric) sweep.
func (c *Client) Sweep(ctx context.Context, app, topo, metric string, opts SweepOpts) (*report.FigureDoc, error) {
	q := opts.query()
	q.Set("app", app)
	q.Set("topo", topo)
	q.Set("metric", metric)
	var doc report.FigureDoc
	if err := c.do(ctx, http.MethodGet, "/v1/sweeps?"+q.Encode(), nil, &doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

// Healthz checks server liveness.
func (c *Client) Healthz(ctx context.Context) (*service.Health, error) {
	var h service.Health
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &h); err != nil {
		return nil, err
	}
	return &h, nil
}

// Metrics fetches the raw metrics page.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	data, err := c.doRaw(ctx, http.MethodGet, "/metrics", nil)
	if err != nil {
		return "", err
	}
	return string(data), nil
}

// MetricValue extracts an un-labelled counter or gauge from a metrics
// page, e.g. MetricValue(page, "spasmd_cache_hits_total").
func MetricValue(page, name string) (float64, bool) {
	for _, line := range strings.Split(page, "\n") {
		rest, ok := strings.CutPrefix(line, name+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			return 0, false
		}
		return v, true
	}
	return 0, false
}
