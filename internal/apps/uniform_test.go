package apps

import (
	"testing"

	"spasm/internal/app"
	"spasm/internal/machine"
)

func runUniform(t *testing.T, kind machine.Kind, topo string, p int, scale Scale, seed int64) *app.Result {
	t.Helper()
	res, err := app.Run(NewUniform(scale, seed), machine.Config{Kind: kind, Topology: topo, P: p})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestUniformExtendedRegistry(t *testing.T) {
	prog, err := NewExtended("uniform", Tiny, 1)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Name() != "uniform" {
		t.Errorf("name = %q", prog.Name())
	}
	for _, suite := range Names() {
		if suite == "uniform" {
			t.Error("uniform leaked into the paper suite")
		}
	}
}

func TestUniformRunsOnEveryMachine(t *testing.T) {
	// Check() replays the deterministic reference stream, so a clean run
	// on each machine kind proves the issued traffic matched it.
	for _, kind := range machine.Kinds() {
		runUniform(t, kind, "mesh", 8, Tiny, 1)
	}
}

func TestUniformDeterministic(t *testing.T) {
	a := runUniform(t, machine.Flow, "torus", 16, Tiny, 3)
	b := runUniform(t, machine.Flow, "torus", 16, Tiny, 3)
	if a.Stats.Total != b.Stats.Total {
		t.Fatalf("identical specs diverged: %v != %v", a.Stats.Total, b.Stats.Total)
	}
	c := runUniform(t, machine.Flow, "torus", 16, Tiny, 4)
	if c.Stats.Total == a.Stats.Total && c.Stats.Messages() == a.Stats.Messages() {
		t.Error("seed change did not vary the traffic")
	}
}

func TestUniformScalesQuota(t *testing.T) {
	tiny := NewUniform(Tiny, 1).(*Uniform)
	small := NewUniform(Small, 1).(*Uniform)
	medium := NewUniform(Medium, 1).(*Uniform)
	if !(tiny.Refs < small.Refs && small.Refs < medium.Refs) {
		t.Fatalf("reference quotas not increasing: %d, %d, %d", tiny.Refs, small.Refs, medium.Refs)
	}
}

func TestUniformChecksumCatchesDivergence(t *testing.T) {
	u := NewUniform(Tiny, 1).(*Uniform)
	if _, err := app.Run(u, machine.Config{Kind: machine.Ideal, P: 4}); err != nil {
		t.Fatal(err)
	}
	u.sums[2]++ // corrupt one processor's observed stream
	if err := u.Check(); err == nil {
		t.Error("corrupted checksum passed verification")
	}
}

func TestUniformCommunicates(t *testing.T) {
	res := runUniform(t, machine.LogP, "full", 8, Tiny, 1)
	if res.Stats.NetAccesses() == 0 {
		t.Error("uniform traffic produced no network accesses")
	}
}
