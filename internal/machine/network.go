package machine

import (
	"fmt"

	"spasm/internal/flow"
	"spasm/internal/logp"
	"spasm/internal/network"
	"spasm/internal/sim"
)

// Network is the uniform interface over the simulator's network
// backends — the detailed circuit-switched fabric, the LogP L/g
// abstraction, and the flow-based bandwidth-sharing tier.  The machine
// characterizations drive their backends through concrete types on the
// hot paths (the devirtualized calls the event-kernel benchmarks pin),
// but every backend is also reachable behind this one seam: the
// conformance suite exercises all registered tiers through it, run
// results read model-cost counters through it, and tooling can swap
// tiers without knowing which machine wraps them.
type Network interface {
	// P reports the number of nodes.
	P() int
	// Reset returns the backend to its post-construction state in place
	// (the runpool rebind contract, docs/INTERNALS.md §9).
	Reset()
	// Settle tells the backend no future Xfer departs earlier than upTo
	// (a lower bound from the engine's global clock).  Backends that
	// keep no time-windowed state treat it as a no-op.
	Settle(upTo sim.Time)
	// Xfer carries one message of the given size from src to dst,
	// departing no earlier than now, and returns its schedule.
	Xfer(now sim.Time, src, dst, bytes int) NetDelivery
	// Stats reports the backend's cumulative traffic and model cost.
	Stats() NetStats
}

// NetDelivery is one message's schedule as a Network backend reports it.
type NetDelivery struct {
	// At is when the message is fully delivered.
	At sim.Time
	// Latency is the contention-free component of the transfer.
	Latency sim.Time
	// Wait is the contention-induced component (resource waiting,
	// port-gap stalls, or bandwidth-sharing stretch).
	Wait sim.Time
}

// NetStats summarizes a backend's cumulative traffic and model cost.
type NetStats struct {
	// Messages and Bytes count the traffic carried.
	Messages uint64
	Bytes    uint64
	// ModelEvents is the backend's own unit of simulation work: per-hop
	// resource reservations on the detailed fabric (len(route)+2 per
	// message), endpoint port gatings on the LogP net (2 per message),
	// and allocation recomputations on the flow tier (none for
	// uncontended flows).  It is the event-count axis of the fidelity
	// comparison.
	ModelEvents uint64
}

// fabricNet adapts the detailed fabric to the Network interface.
type fabricNet struct{ fab *network.Fabric }

func (a fabricNet) P() int               { return a.fab.Topology().P() }
func (a fabricNet) Reset()               { a.fab.Reset() }
func (a fabricNet) Settle(upTo sim.Time) {}

func (a fabricNet) Xfer(now sim.Time, src, dst, bytes int) NetDelivery {
	x := a.fab.Reserve(now, src, dst, bytes)
	return NetDelivery{At: x.End, Latency: x.Latency, Wait: x.Wait}
}

func (a fabricNet) Stats() NetStats {
	return NetStats{Messages: a.fab.Messages, Bytes: a.fab.Bytes, ModelEvents: a.fab.HopEvents}
}

// logpNet adapts the LogP abstraction to the Network interface.  The
// LogP model prices every message at L regardless of size, so bytes is
// accounted but does not affect timing.
type logpNet struct {
	net   *logp.Net
	bytes uint64
}

func (a *logpNet) P() int               { return a.net.P() }
func (a *logpNet) Reset()               { a.net.Reset(); a.bytes = 0 }
func (a *logpNet) Settle(upTo sim.Time) {}

func (a *logpNet) Xfer(now sim.Time, src, dst, bytes int) NetDelivery {
	x := a.net.Message(now, src, dst)
	a.bytes += uint64(bytes)
	return NetDelivery{At: x.Deliver, Latency: x.Latency, Wait: x.Wait}
}

func (a *logpNet) Stats() NetStats {
	// Two port gatings (send and receive) per message.
	return NetStats{Messages: a.net.Messages, Bytes: a.bytes, ModelEvents: 2 * a.net.Messages}
}

// flowNet adapts the flow tier to the Network interface.
type flowNet struct{ net *flow.Net }

func (a flowNet) P() int               { return a.net.P() }
func (a flowNet) Reset()               { a.net.Reset() }
func (a flowNet) Settle(upTo sim.Time) { a.net.Settle(upTo) }

func (a flowNet) Xfer(now sim.Time, src, dst, bytes int) NetDelivery {
	x := a.net.Transfer(now, src, dst, bytes)
	return NetDelivery{At: x.End, Latency: x.Latency, Wait: x.Wait}
}

func (a flowNet) Stats() NetStats {
	return NetStats{Messages: a.net.Messages, Bytes: a.net.Bytes, ModelEvents: a.net.Recomputes}
}

// Backend is implemented by machines that carry a network backend,
// exposing it through the uniform Network interface.  Machines without
// one (Ideal) do not implement it.
type Backend interface {
	Network() Network
}

// NetworkTier is one registered network backend, constructible on its
// own for conformance checks and tooling.
type NetworkTier struct {
	// Name identifies the tier: "detailed", "logp" or "flow".
	Name string
	// New builds the tier over the named topology with the paper's
	// default parameters.
	New func(topoName string, p int) (Network, error)
}

// NetworkTiers lists every registered network backend in increasing
// level of detail: the flow tier, the LogP abstraction, the detailed
// fabric.  The conformance suite runs all of them through the same
// invariant checks.
func NetworkTiers() []NetworkTier {
	return []NetworkTier{
		{Name: "flow", New: func(topoName string, p int) (Network, error) {
			t, err := network.New(topoName, p)
			if err != nil {
				return nil, err
			}
			return flowNet{net: flow.New(t)}, nil
		}},
		{Name: "logp", New: func(topoName string, p int) (Network, error) {
			t, err := network.New(topoName, p)
			if err != nil {
				return nil, err
			}
			g := logp.GapFor(t, 32, sim.SerialByte)
			return &logpNet{net: logp.New(p, logp.DefaultL, g, logp.Combined)}, nil
		}},
		{Name: "detailed", New: func(topoName string, p int) (Network, error) {
			t, err := network.New(topoName, p)
			if err != nil {
				return nil, err
			}
			return fabricNet{fab: network.NewFabric(t)}, nil
		}},
	}
}

// NetworkTierByName returns the named registered tier.
func NetworkTierByName(name string) (NetworkTier, error) {
	for _, t := range NetworkTiers() {
		if t.Name == name {
			return t, nil
		}
	}
	var names []string
	for _, t := range NetworkTiers() {
		names = append(names, t.Name)
	}
	return NetworkTier{}, fmt.Errorf("machine: unknown network tier %q (have %v)", name, names)
}
