// Package machine assembles the paper's four simulated machine
// characterizations from the substrate packages:
//
//   - Target: CC-NUMA with per-node Berkeley-coherent caches and a
//     detailed circuit-switched wormhole network (full, cube or mesh).
//   - LogP: no caches; every non-local reference crosses a network
//     abstracted by the LogP L and g parameters.
//   - CLogP ("LogP+cache"): the LogP network plus an ideal coherent
//     cache at each node — coherence state is maintained exactly but
//     coherence actions are free.
//   - Ideal: a PRAM-like machine with unit-cost conflict-free memory,
//     used to measure the ideal (purely algorithmic) execution time.
//
// All four implement the Machine interface, so one application binary
// runs unmodified on any of them — the essence of execution-driven
// simulation with interchangeable architectural models.
package machine

import (
	"fmt"

	"spasm/internal/cache"
	"spasm/internal/coherence"
	"spasm/internal/flow"
	"spasm/internal/logp"
	"spasm/internal/mem"
	"spasm/internal/network"
	"spasm/internal/sim"
	"spasm/internal/stats"
)

// Kind identifies a machine characterization.
type Kind int

const (
	// Ideal is the PRAM-like machine behind SPASM's ideal-time metric.
	Ideal Kind = iota
	// LogP is the cache-less machine with the L/g network abstraction.
	LogP
	// CLogP is the LogP machine augmented with the ideal coherent cache.
	CLogP
	// Target is the detailed CC-NUMA machine.
	Target
	// Flow is the cache-less machine with the flow-based
	// bandwidth-sharing network abstraction — the coarsest network tier.
	Flow
)

var kindNames = [...]string{"ideal", "logp", "clogp", "target", "flow"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind converts a name ("ideal", "flow", "logp", "clogp",
// "target") to Kind.
func ParseKind(s string) (Kind, error) {
	for i, n := range kindNames {
		if n == s {
			return Kind(i), nil
		}
	}
	return 0, fmt.Errorf("machine: unknown kind %q (have %v)", s, kindNames)
}

// Kinds lists all machine kinds in comparison order, coarsest
// abstraction first.
func Kinds() []Kind { return []Kind{Ideal, Flow, LogP, CLogP, Target} }

// Machine is a simulated memory system: the only interface applications
// see, so the same program drives every characterization.
type Machine interface {
	// Kind reports which characterization this is.
	Kind() Kind
	// P reports the number of processing nodes.
	P() int
	// Read simulates a shared-memory read by node at addr on behalf of
	// process p, blocking p for the sequentially consistent duration
	// and accounting overheads into st.
	Read(p *sim.Proc, st *stats.Proc, node int, addr mem.Addr)
	// Write simulates a shared-memory write, like Read.
	Write(p *sim.Proc, st *stats.Proc, node int, addr mem.Addr)
}

// Config selects and parameterizes a machine.
type Config struct {
	Kind     Kind
	P        int
	Topology string // "full", "cube" or "mesh"
	// Cache geometry for Target and CLogP; zero value means the
	// paper's 64 KB 2-way 32 B cache.
	Cache cache.Config
	// Costs are the non-network cost parameters; zero value means
	// coherence.DefaultCosts.
	Costs coherence.Costs
	// L overrides the LogP latency parameter (0 means the paper's
	// 1.6 us).
	L sim.Time
	// G overrides the LogP gap (0 means: derive from the topology's
	// bisection bandwidth exactly as the paper does).
	G sim.Time
	// PortMode selects the g-gap discipline for LogP machines.
	PortMode logp.PortMode
	// AdaptiveG enables the history-based g estimation the paper
	// proposes in section 7: the gap is scaled by the observed
	// fraction of traffic that actually crosses the bisection.
	AdaptiveG bool
	// SwitchDelay is the per-hop delay on the target fabric (paper: 0).
	SwitchDelay sim.Time
	// LinkByteTime is the per-byte link transmission time (0 means
	// the paper's 20 MB/s serial links).  It scales the detailed
	// fabric, the default L, and the bisection-derived g together —
	// the technology-scaling knob.
	LinkByteTime sim.Time
	// Protocol selects the coherence protocol for the cached machines
	// (Berkeley by default, the paper's target; MSI for the
	// protocol-sensitivity experiment).
	Protocol coherence.Protocol
}

// Canonical returns the configuration with every defaulted field made
// explicit (topology name, cache geometry, costs, link speed, L).  Two
// configurations that build identical machines canonicalize to the same
// value, which is what makes Config usable as a pooling key: runpool
// keys contexts by Canonical() so `Topology: ""` and `Topology: "full"`
// share a context.  Canonical does not fill P — a machine cannot be
// pooled without knowing its node count.
func (c Config) Canonical() Config { return c.withDefaults() }

// withDefaults fills zero fields with the paper's parameters.
func (c Config) withDefaults() Config {
	if c.Topology == "" {
		c.Topology = "full"
	}
	if c.Cache == (cache.Config{}) {
		c.Cache = cache.DefaultConfig()
	}
	if c.Costs == (coherence.Costs{}) {
		c.Costs = coherence.DefaultCosts()
	}
	if c.LinkByteTime == 0 {
		c.LinkByteTime = sim.SerialByte
	}
	if c.L == 0 {
		c.L = sim.Time(c.Costs.DataBytes) * c.LinkByteTime
	}
	return c
}

// New builds the configured machine over the given address space.
func New(cfg Config, space *mem.Space) (Machine, error) {
	cfg = cfg.withDefaults()
	if cfg.P == 0 {
		cfg.P = space.P()
	}
	if cfg.P != space.P() {
		return nil, fmt.Errorf("machine: config P=%d but space has %d nodes", cfg.P, space.P())
	}
	if max := MaxPFor(cfg.Kind); max > 0 && cfg.P > max {
		return nil, fmt.Errorf("machine: P=%d exceeds the %v machine's limit of %d processors",
			cfg.P, cfg.Kind, max)
	}
	switch cfg.Kind {
	case Ideal:
		return &ideal{p: cfg.P, unit: cfg.Costs.CacheHit}, nil
	case LogP, CLogP:
		topo, err := network.New(cfg.Topology, cfg.P)
		if err != nil {
			return nil, err
		}
		g := cfg.G
		if g == 0 {
			g = logp.GapFor(topo, cfg.Costs.DataBytes, cfg.LinkByteTime)
		}
		net := logp.New(cfg.P, cfg.L, g, cfg.PortMode)
		if cfg.AdaptiveG {
			net.Crosses = topo.CrossesBisection
		}
		if cfg.Kind == LogP {
			return &logpMachine{space: space, net: net, costs: cfg.Costs}, nil
		}
		tr := &clogpTransport{net: net}
		eng := coherence.NewEngine(space, cfg.Cache, cfg.Costs, tr)
		eng.Protocol = cfg.Protocol
		return &cachedMachine{kind: CLogP, space: space, eng: eng, net: net}, nil
	case Flow:
		topo, err := network.New(cfg.Topology, cfg.P)
		if err != nil {
			return nil, err
		}
		net := flow.New(topo)
		net.ByteTime = cfg.LinkByteTime
		return &flowMachine{space: space, net: net, costs: cfg.Costs}, nil
	case Target:
		topo, err := network.New(cfg.Topology, cfg.P)
		if err != nil {
			return nil, err
		}
		fab := network.NewFabric(topo)
		fab.ByteTime = cfg.LinkByteTime
		fab.SwitchDelay = cfg.SwitchDelay
		tr := &targetTransport{fab: fab}
		eng := coherence.NewEngine(space, cfg.Cache, cfg.Costs, tr)
		eng.Protocol = cfg.Protocol
		return &cachedMachine{kind: Target, space: space, eng: eng, fab: fab}, nil
	}
	return nil, fmt.Errorf("machine: unknown kind %d", cfg.Kind)
}

// ideal is the PRAM-like machine: unit-cost, conflict-free memory.
type ideal struct {
	p    int
	unit sim.Time
}

func (m *ideal) Kind() Kind { return Ideal }
func (m *ideal) P() int     { return m.p }

func (m *ideal) Read(p *sim.Proc, st *stats.Proc, node int, addr mem.Addr) {
	st.Reads++
	st.Add(stats.Memory, m.unit)
	p.Defer(m.unit)
}

func (m *ideal) Write(p *sim.Proc, st *stats.Proc, node int, addr mem.Addr) {
	st.Writes++
	st.Add(stats.Memory, m.unit)
	p.Defer(m.unit)
}

// logpMachine is the cache-less LogP machine: local references cost a
// memory access; every non-local reference is a request/reply round trip
// on the abstract network, as on a NUMA machine without caches.
type logpMachine struct {
	space *mem.Space
	net   *logp.Net
	costs coherence.Costs
}

func (m *logpMachine) Kind() Kind { return LogP }
func (m *logpMachine) P() int     { return m.net.P() }

// Net exposes the abstract network (for parameter inspection in tools).
func (m *logpMachine) Net() *logp.Net { return m.net }

// ReleaseResources hands the LogP port arrays back to their package
// freelist when the machine is dropped for good (see Reusable.Release).
func (m *logpMachine) ReleaseResources() { m.net.Release() }

func (m *logpMachine) access(p *sim.Proc, st *stats.Proc, node int, addr mem.Addr) {
	home := m.space.Home(addr)
	if home == node {
		st.Add(stats.Memory, m.costs.Mem)
		p.Defer(m.costs.Mem)
		return
	}
	now := p.Now()
	// The abstract network's port calendars are shared state: book the
	// round trip inside an ordered section so parallel runs issue
	// messages in exactly the sequential dispatch order.
	var req, rep logp.Xmit
	p.Ordered(func() {
		req = m.net.Message(now, node, home)
		rep = m.net.Message(req.Deliver+m.costs.Mem, home, node)
	})
	st.Messages += 2
	st.NetBytes += uint64(m.costs.CtrlBytes + m.costs.DataBytes)
	st.NetAccesses++
	st.Add(stats.Latency, req.Latency+rep.Latency)
	st.Add(stats.Contention, req.Wait+rep.Wait)
	st.Add(stats.Memory, m.costs.Mem)
	p.HoldUntil(rep.Deliver)
}

func (m *logpMachine) Read(p *sim.Proc, st *stats.Proc, node int, addr mem.Addr) {
	st.Reads++
	m.access(p, st, node, addr)
}

func (m *logpMachine) Write(p *sim.Proc, st *stats.Proc, node int, addr mem.Addr) {
	st.Writes++
	m.access(p, st, node, addr)
}

// flowMachine is the cache-less flow-abstracted machine: like the LogP
// machine, every non-local reference is a request/reply round trip, but
// the network prices messages by bandwidth sharing (internal/flow) and
// the processor advances on its *local clock alone* — a remote access
// costs no engine event, which is where the flow tier's simulator-event
// reduction comes from.  Delivery times can therefore be computed out of
// global-time order across processors; that is safe because the flow
// model is a pure function of its call sequence and the call sequence
// is fixed by the engine's deterministic scheduling, not by network
// state.
type flowMachine struct {
	space *mem.Space
	net   *flow.Net
	costs coherence.Costs
}

func (m *flowMachine) Kind() Kind { return Flow }
func (m *flowMachine) P() int     { return m.net.P() }

// FlowNet exposes the flow network (for telemetry and escalation).
func (m *flowMachine) FlowNet() *flow.Net { return m.net }

func (m *flowMachine) access(p *sim.Proc, st *stats.Proc, node int, addr mem.Addr) {
	home := m.space.Home(addr)
	if home == node {
		st.Add(stats.Memory, m.costs.Mem)
		p.Defer(m.costs.Mem)
		return
	}
	// The flow model is shared state and a pure function of its call
	// sequence, so the whole settle-and-transfer exchange runs as one
	// ordered section: parallel runs replay the sequential call order.
	now := p.Now()
	var req, rep flow.Xmit
	p.Ordered(func() {
		// The engine clock bounds every processor's local clock from
		// below, so flows settled before it can never compete again.
		m.net.Settle(p.Engine().Now())
		req = m.net.Transfer(now, node, home, m.costs.CtrlBytes)
		rep = m.net.Transfer(req.End+m.costs.Mem, home, node, m.costs.DataBytes)
	})
	st.Messages += 2
	st.NetBytes += uint64(m.costs.CtrlBytes + m.costs.DataBytes)
	st.NetAccesses++
	st.Add(stats.Latency, req.Latency+rep.Latency)
	st.Add(stats.Contention, req.Wait+rep.Wait)
	st.Add(stats.Memory, m.costs.Mem)
	p.Defer(rep.End - now)
}

func (m *flowMachine) Read(p *sim.Proc, st *stats.Proc, node int, addr mem.Addr) {
	st.Reads++
	m.access(p, st, node, addr)
}

func (m *flowMachine) Write(p *sim.Proc, st *stats.Proc, node int, addr mem.Addr) {
	st.Writes++
	m.access(p, st, node, addr)
}

// Coherent is implemented by machines with caches (Target and CLogP),
// exposing their coherence engine for invariant checks and inspection.
type Coherent interface {
	Engine() *coherence.Engine
}

// Networked is implemented by the Target machine, exposing its detailed
// fabric (for fault injection and traffic inspection).
type Networked interface {
	Fabric() *network.Fabric
}

// Abstracted is implemented by machines carrying a LogP-abstracted
// network (LogP and CLogP), exposing it for parameter inspection and
// instrumentation.  Implementations may return nil (the Target machine's
// cached wrapper satisfies the interface but has no abstract network).
type Abstracted interface {
	Net() *logp.Net
}

// Flowed is implemented by the Flow machine, exposing its
// bandwidth-sharing network for telemetry and adaptive-fidelity
// escalation.
type Flowed interface {
	FlowNet() *flow.Net
}

// Network exposes the flow machine's backend behind the uniform seam.
func (m *flowMachine) Network() Network { return flowNet{net: m.net} }

// Network exposes the LogP machine's backend behind the uniform seam.
func (m *logpMachine) Network() Network { return &logpNet{net: m.net} }

// Network exposes a cached machine's backend behind the uniform seam:
// the detailed fabric for Target, the LogP net for CLogP.
func (m *cachedMachine) Network() Network {
	if m.fab != nil {
		return fabricNet{fab: m.fab}
	}
	if m.net != nil {
		return &logpNet{net: m.net}
	}
	return nil
}

// cachedMachine wraps the shared coherence engine for Target and CLogP.
type cachedMachine struct {
	kind  Kind
	space *mem.Space
	eng   *coherence.Engine
	fab   *network.Fabric // Target only
	net   *logp.Net       // CLogP only
}

func (m *cachedMachine) Kind() Kind { return m.kind }
func (m *cachedMachine) P() int     { return m.space.P() }

// Engine exposes the coherence engine (for invariant checks in tests).
func (m *cachedMachine) Engine() *coherence.Engine { return m.eng }

// Fabric exposes the detailed network of a Target machine (nil otherwise).
func (m *cachedMachine) Fabric() *network.Fabric { return m.fab }

// Net exposes the abstract network of a CLogP machine (nil otherwise).
func (m *cachedMachine) Net() *logp.Net { return m.net }

// ReleaseResources hands a CLogP machine's port arrays back to their
// package freelist when the machine is dropped for good.
func (m *cachedMachine) ReleaseResources() {
	if m.net != nil {
		m.net.Release()
	}
}

func (m *cachedMachine) Read(p *sim.Proc, st *stats.Proc, node int, addr mem.Addr) {
	m.eng.Read(p, st, node, addr)
}

func (m *cachedMachine) Write(p *sim.Proc, st *stats.Proc, node int, addr mem.Addr) {
	m.eng.Write(p, st, node, addr)
}

// targetTransport prices every protocol message on the detailed fabric.
type targetTransport struct {
	fab *network.Fabric
}

func (t *targetTransport) Message(now sim.Time, src, dst, bytes int, class coherence.Class) coherence.Delivery {
	x := t.fab.Reserve(now, src, dst, bytes)
	return coherence.Delivery{At: x.End, Latency: x.Latency, Wait: x.Wait, Sent: true}
}

// clogpTransport prices only data-moving messages on the LogP network;
// coherence-maintenance messages are absorbed for free — the ideal
// coherent cache.
type clogpTransport struct {
	net *logp.Net
}

func (t *clogpTransport) Message(now sim.Time, src, dst, bytes int, class coherence.Class) coherence.Delivery {
	if !class.MovesData() {
		return coherence.Delivery{At: now}
	}
	x := t.net.Message(now, src, dst)
	return coherence.Delivery{At: x.Deliver, Latency: x.Latency, Wait: x.Wait, Sent: true}
}
