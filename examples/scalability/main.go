// scalability reproduces the kind of overhead-separated speedup study
// SPASM was originally built for: how far an application scales on the
// detailed target machine, how much of the loss is algorithmic (visible
// on the ideal PRAM-like machine) versus architectural, and how the
// abstractions would have predicted it.
//
//	go run ./examples/scalability
package main

import (
	"fmt"
	"log"

	"spasm"
)

func main() {
	const appName = "cg"
	procs := []int{2, 4, 8, 16, 32}
	s := spasm.NewSession(spasm.Options{Scale: spasm.Small, Procs: procs})

	fmt.Printf("Scalability of %s on the 2-D mesh (ideal-machine baseline)\n\n", appName)
	fmt.Printf("%6s %12s %12s %10s %10s %12s\n",
		"procs", "exec_us", "ideal_us", "speedup", "algo-spd", "efficiency")

	rows, err := s.Speedup(appName, "mesh", spasm.Target, procs)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		fmt.Printf("%6d %12.1f %12.1f %9.2fx %9.2fx %11.0f%%\n",
			r.P, r.Exec, r.IdealExec, r.Speedup, r.AlgorithmicSpeedup, 100*r.Efficiency)
	}

	fmt.Println()
	fmt.Println("Predicted speedup at each sweep point, by machine abstraction:")
	fmt.Printf("%6s %10s %10s %10s\n", "procs", "LogP", "LogP+Cache", "Target")
	for _, p := range procs {
		fmt.Printf("%6d", p)
		for _, kind := range []spasm.Kind{spasm.LogP, spasm.CLogP, spasm.Target} {
			rows, err := s.Speedup(appName, "mesh", kind, []int{p})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %9.2fx", rows[0].Speedup)
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("The gap between algorithmic and real speedup is the architectural")
	fmt.Println("overhead SPASM separates; the gap between the LogP column and the")
	fmt.Println("Target column is the cost of ignoring locality when predicting it.")
}
