package sim

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"spasm/internal/par"
)

// event is a scheduled resumption of a process.
type event struct {
	at  Time
	seq uint64 // creation order; breaks timestamp ties deterministically
	gen uint64 // p.gen at schedule time; a mismatch at pop marks it stale
	p   *Proc
}

// eventHeap is a concrete-typed min-heap of events ordered by (at, seq).
// Compared with container/heap it avoids the interface{} boxing
// allocation on every push and pop, and it clears popped slots so a
// drained queue does not pin *Proc values (and their goroutine stacks)
// in memory.
type eventHeap struct {
	s []event
}

func (h *eventHeap) len() int { return len(h.s) }

// less orders events by (at, seq): earliest first, FIFO within a tick.
func less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h *eventHeap) push(ev event) {
	h.s = append(h.s, ev)
	s := h.s
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !less(&s[i], &s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	s := h.s
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // clear the vacated slot: no stale *Proc reference
	h.s = s[:n]
	// Sift the relocated element down.
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && less(&s[r], &s[l]) {
			m = r
		}
		if !less(&s[m], &s[i]) {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	return top
}

// Engine is a deterministic discrete-event simulation kernel.  Create one
// with NewEngine, add processes with Spawn, then call Run.
//
// An Engine is not safe for concurrent use; all interaction happens either
// before Run or from within simulated processes (which the engine runs one
// at a time).
type Engine struct {
	now Time
	seq uint64

	// q is the active pending-event queue.  Small runs use the binary
	// heap; runs past the ladder thresholds use the ladder queue (see
	// queue.go).  Both pop in the same total (at, seq) order, so the
	// choice never affects results.  Both backing structures live on the
	// engine so pooled reuse reallocates neither.
	q    eventQueue
	heap eventHeap
	lad  ladderQueue

	// nowQ is the same-timestamp fast path: events scheduled at the
	// current simulated time bypass the heap entirely and are dispatched
	// FIFO, which is exactly their (at, seq) order — every event already
	// in the heap with the same timestamp predates them in seq (it was
	// pushed before the clock advanced here), and the heap can gain no
	// new events at the current time while nowQ drains.  Wake storms
	// (barrier releases, lock convoys) and process starts all hit this
	// path.
	nowQ    []event
	nowHead int

	done    chan error // buffered(1): run result, signalled once
	nLive   int        // spawned but not yet terminated processes
	procs   []*Proc
	running *Proc
	failure error // first process panic, converted to a run error

	// stop is the cooperative abort flag, the only engine state that may
	// be touched from outside the simulation (see Interrupt).  It is
	// polled at every dispatch, so an interrupted run aborts within one
	// event.
	stop atomic.Bool
	// aborting marks the unwind phase: the run's outcome is decided and
	// every remaining process is being resumed one final time so it can
	// unwind (panic with abortSignal) and terminate.  Unwinding instead
	// of abandoning parked goroutines is what makes failed runs — panics,
	// deadlocks, time limits, aborts — leak no goroutines.
	aborting bool
	abortErr error // the run result recorded when the unwind began

	// Events counts every event dispatched by Run.  It is the
	// simulator-cost metric used by the paper's "speed of simulation"
	// comparison (more simulated events = slower simulation).
	Events uint64

	// MaxTime, when positive, aborts Run with a *TimeLimitError once
	// the simulated clock passes it — a watchdog against runaway
	// simulations (livelocked spin loops, mis-sized workloads).
	MaxTime Time

	// Tick, when non-nil, is invoked from the dispatch path every time
	// the simulated clock is about to advance to a strictly later value,
	// with the new time.  It runs before the advancing event dispatches,
	// so all state mutations recorded so far happened at or before the
	// previous clock value — the hook telemetry probes use to close
	// sampling epochs.  Tick must not call back into the engine.
	Tick func(now Time)

	// Parallel-mode configuration and per-run outcome (see SetParallel
	// and parallel.go).  par is non-nil exactly while a parallel Run is
	// in flight; everything else is per-run configuration or reporting,
	// cleared by Reset like Tick and MaxTime.
	pworkers int
	plook    Time
	pdomOf   func(procID int) int
	pforce   string // caller-imposed fallback reason (ForceSequential)
	par      *parGate
	// parMu protects all engine state while par != nil (heap, seq, now,
	// clock vector, per-process release bookkeeping).  Sequential mode
	// never touches it.
	parMu   sync.Mutex
	parRan  bool
	pfall   string // why a requested parallel run executed sequentially
	parDoms int
	parWin  uint64
	parRel  uint64
	parSec  uint64
	parPeak int

	// Per-domain event queues of the parallel mode (see parallel.go):
	// domain-local scheduling mutates only pq[dom], and window release
	// scans the parHeads cache — one key per domain — instead of popping
	// a single shared structure.  pqn counts events across all domain
	// queues (including stale ones not yet discarded); pqHeaps/pqLads
	// are the reusable backing stores the pq slots point into.
	pq       []eventQueue
	pqn      int
	parHeads *par.HeadSet
	pqHeaps  []eventHeap
	pqLads   []ladderQueue
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	e := &Engine{done: make(chan error, 1)}
	e.q = &e.heap
	e.lad.topStart = minTime
	return e
}

// Reset returns the engine to its post-NewEngine state while keeping the
// backing arrays of the event heap, the same-timestamp FIFO, and the
// process table, so a pooled engine re-runs without reallocating them.
// All retained slots are cleared so no *Proc (and hence no goroutine
// stack) from the previous run stays reachable.  The per-run hooks
// (Tick, MaxTime) are cleared too: they are configuration of one run,
// not of the engine.
//
// Reset must not be called while Run is in flight.  A failed run
// (deadlock, panic, time limit, Interrupt) unwinds every process
// goroutine before Run returns, so nothing from the old run survives —
// but its mid-flight machine and address-space state may, which is why
// pooled contexts whose run did not complete cleanly are discarded
// rather than reset (see internal/runpool.Pool.Discard).
func (e *Engine) Reset() {
	e.heap.reset()
	e.lad.reset()
	e.q = &e.heap
	for i := range e.nowQ {
		e.nowQ[i] = event{}
	}
	e.nowQ = e.nowQ[:0]
	e.nowHead = 0
	for i := range e.procs {
		e.procs[i] = nil
	}
	e.procs = e.procs[:0]
	e.now = 0
	e.seq = 0
	e.nLive = 0
	e.running = nil
	e.failure = nil
	e.Events = 0
	e.MaxTime = 0
	e.Tick = nil
	e.stop.Store(false)
	e.aborting = false
	e.abortErr = nil
	// Parallel-mode configuration and outcome are per-run state.  par is
	// nil whenever Run is not in flight, but clear it anyway.
	e.pworkers = 0
	e.plook = 0
	e.pdomOf = nil
	e.pforce = ""
	e.par = nil
	e.parRan = false
	e.pfall = ""
	e.parDoms = 0
	e.parWin = 0
	e.parRel = 0
	e.parSec = 0
	e.parPeak = 0
	// Per-domain queues: the backing stores are cleared directly (the pq
	// interface slots alias them), so no event — and no *Proc — survives
	// pooled reuse.
	for i := range e.pqHeaps {
		e.pqHeaps[i].reset()
	}
	for i := range e.pqLads {
		e.pqLads[i].reset()
	}
	e.pqn = 0
	if e.parHeads != nil {
		e.parHeads.Reset()
	}
	// The done channel may hold an unread result if the previous run was
	// abandoned; a fresh channel is cheaper than reasoning about drains.
	e.done = make(chan error, 1)
}

// Interrupt requests a cooperative abort of the in-flight Run.  It is
// the only Engine method safe to call from another goroutine while Run
// executes: it sets an atomic flag the dispatch loop polls, so the run
// aborts at the next event.  The engine then wakes every remaining
// process once so its goroutine can unwind and terminate — an aborted
// Run returns an *AbortError only after all process goroutines have
// exited, leaking none.  Interrupting an engine whose Run has already
// returned is a harmless no-op (Reset clears the flag).
func (e *Engine) Interrupt() { e.stop.Store(true) }

// Interrupted reports whether an abort has been requested.
func (e *Engine) Interrupted() bool { return e.stop.Load() }

// Now reports the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Procs returns the processes spawned on the engine, in spawn order.
func (e *Engine) Procs() []*Proc { return e.procs }

// schedule enqueues a resumption of p at time at (>= now).  Bumping
// p.gen invalidates any earlier pending event for p at push time: a
// stale wakeup is recognized by its generation mismatch when popped, so
// the queue never needs scanning.  In parallel mode scheduling goes to
// the per-domain queues instead, under the gate mutex (see
// parScheduleLocked).
func (e *Engine) schedule(at Time, p *Proc) {
	if e.par != nil {
		e.parMu.Lock()
		e.parScheduleLocked(at, p)
		e.parMu.Unlock()
		return
	}
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past: %v < now %v", at, e.now))
	}
	if at > p.sched {
		p.sched = at
	}
	e.seq++
	p.gen++
	ev := event{at: at, seq: e.seq, gen: p.gen, p: p}
	if at == e.now {
		e.nowQ = append(e.nowQ, ev)
	} else {
		e.q.push(ev)
		if e.q == &e.heap && e.heap.len() >= ladderPending {
			e.escalate() // backlog outgrew the heap mid-run
		}
	}
}

// next pops the next event in (at, seq) order, merging the queue with
// the same-timestamp FIFO.  Queue entries at the current time always
// predate nowQ entries (see the nowQ field comment), so they drain
// first.
func (e *Engine) next() (event, bool) {
	if top := e.q.peek(); top != nil && top.at == e.now {
		return e.q.pop(), true
	}
	if e.nowHead < len(e.nowQ) {
		ev := e.nowQ[e.nowHead]
		e.nowQ[e.nowHead] = event{} // no stale *Proc reference
		e.nowHead++
		if e.nowHead == len(e.nowQ) {
			e.nowQ = e.nowQ[:0]
			e.nowHead = 0
		}
		return ev, true
	}
	if e.q.len() > 0 {
		return e.q.pop(), true
	}
	return event{}, false
}

// advance dispatches the next runnable event.  It is called by the
// goroutine that currently holds the run token — a process that has just
// scheduled its own resumption, parked, or terminated (or Run itself to
// prime the first dispatch) — so engine state is only ever touched by
// one goroutine at a time.  It returns true when the dispatched event
// belongs to cur, in which case control simply stays on the calling
// goroutine with no channel handoff at all; otherwise it either resumes
// the target process (one channel send) or ends the run.
func (e *Engine) advance(cur *Proc) bool {
	if !e.aborting && e.stop.Load() {
		e.beginAbort(&AbortError{At: e.now})
	}
	for {
		ev, ok := e.next()
		if !ok {
			if !e.aborting && e.nLive > 0 {
				// Deadlock: record it, then unwind the blocked processes
				// instead of abandoning their goroutines.
				e.beginAbort(e.deadlock())
				continue
			}
			e.endRun(e.runResult())
			return false
		}
		if ev.gen != ev.p.gen {
			continue // stale wakeup, superseded at push time
		}
		if ev.at > e.now {
			if e.Tick != nil && !e.aborting {
				e.Tick(ev.at)
			}
			e.now = ev.at
			if !e.aborting && e.MaxTime > 0 && e.now > e.MaxTime {
				e.beginAbort(&TimeLimitError{Limit: e.MaxTime, At: e.now})
			}
		}
		e.Events++
		p := ev.p
		p.parked = false
		e.running = p
		if p == cur {
			return true // same-process dispatch: no handoff
		}
		p.resume <- struct{}{}
		return false
	}
}

// beginAbort starts the unwind phase: the run's outcome (reason, or the
// first process failure) is fixed, and every parked process is scheduled
// one last wakeup so its goroutine can unwind.  Processes waiting on
// their own queued events need no help — dispatch reaches them — and
// once aborting is set, any resumed process panics with abortSignal
// inside block() before it can touch application state again.  The run
// ends when the queue drains with every process terminated.
func (e *Engine) beginAbort(reason error) {
	e.aborting = true
	if e.abortErr == nil && reason != nil {
		e.abortErr = reason
	}
	for _, p := range e.procs {
		if !p.terminated && p.parked {
			e.schedule(e.now, p)
		}
	}
}

// endRun publishes the run result.  The done channel is buffered so the
// publisher (possibly Run's own goroutine, when no process was ever
// spawned) never blocks.
func (e *Engine) endRun(err error) {
	e.running = nil
	e.done <- err
}

// runResult classifies a finished run: the first process failure wins,
// then the recorded abort reason (interrupt, time limit, or deadlock),
// then success.
func (e *Engine) runResult() error {
	if e.failure != nil {
		return e.failure
	}
	if e.abortErr != nil {
		return e.abortErr
	}
	if e.nLive > 0 {
		return e.deadlock()
	}
	return nil
}

// Spawn creates a simulated process executing fn and schedules it to start
// at the current simulation time.  It may be called before Run or from
// inside a running process.  The returned Proc is also passed to fn.
func (e *Engine) Spawn(name string, fn func(*Proc)) *Proc {
	p := &Proc{
		Name: name,
		eng:  e,
		// resume is buffered: in parallel mode a retiring span can
		// release its own next event (or a peer's) before the owning
		// goroutine reaches its receive, and the sender must not block
		// under the gate mutex.  The generation discipline guarantees at
		// most one live token per process in either mode.
		resume: make(chan struct{}, 1),
		gate:   make(chan struct{}, 1),
	}
	if e.par != nil {
		// Mid-run spawn from a granted section: serialize the table
		// bookkeeping with the gate (parSignalLocked indexes e.procs).
		e.parMu.Lock()
		p.ID = len(e.procs)
		if p.dom = e.pdomOf(p.ID); p.dom < 0 || p.dom >= e.parDoms {
			p.dom = 0
		}
		e.procs = append(e.procs, p)
		e.nLive++
		e.parMu.Unlock()
	} else {
		p.ID = len(e.procs)
		e.procs = append(e.procs, p)
		e.nLive++
	}
	go func() {
		<-p.resume // wait for the engine to dispatch our start event
		defer func() {
			r := recover()
			// e.par is stable here: it can only transition to nil while
			// no span is incomplete, and this process's current span is.
			// (On the abortSignal unwind path e.par is already nil, with
			// the transition ordered before our final resumption.)
			if e.par != nil {
				e.parTerminate(p, r)
				return
			}
			if r != nil {
				// Panics raised after the abort began are collateral of
				// the unwind (cleanup defers running against torn-down
				// state), not independent failures: recording them would
				// mask the abort's own error.
				if _, unwind := r.(abortSignal); !unwind && !e.aborting && e.failure == nil {
					e.failure = fmt.Errorf("sim: process %q panicked at %v: %v", p.Name, e.now, r)
				}
			}
			p.terminated = true
			p.gen++ // any still-queued wakeup for p is now stale
			e.nLive--
			if e.failure != nil && !e.aborting {
				// A panic fails the run, but the remaining processes are
				// unwound — not abandoned — before Run reports it.
				e.beginAbort(nil)
			}
			e.advance(p) // pass the run token on; goroutine exits
		}()
		if !e.aborting {
			fn(p)
		}
	}()
	// In parallel mode the caller is a granted section, so e.now is
	// stable and schedule serializes the heap push through the gate.
	e.schedule(e.now, p)
	return p
}

// Run dispatches events until none remain.  It returns a *DeadlockError
// if processes are still alive (parked forever) when the event queue
// drains, and nil when every process has terminated.
//
// Run itself only primes the first dispatch and waits for the result:
// after the first handoff, dispatching happens on the process goroutines
// themselves — the goroutine that blocks or terminates picks the next
// event and resumes its owner directly, so each engine event costs at
// most one channel handoff (zero when a process's next event is its
// own).
func (e *Engine) Run() error {
	if e.pworkers > 1 {
		if why := e.parFallback(); why != "" {
			e.pfall = why // requested but incompatible: run sequentially
		} else {
			return e.runParallel()
		}
	}
	if e.q == &e.heap && len(e.procs) >= ladderProcs {
		e.escalate() // large-P run: start on the ladder queue
	}
	e.advance(nil)
	return <-e.done
}

func (e *Engine) deadlock() *DeadlockError {
	var stuck []string
	for _, p := range e.procs {
		if !p.terminated {
			stuck = append(stuck, p.Name)
		}
	}
	sort.Strings(stuck)
	return &DeadlockError{At: e.now, Procs: stuck}
}

// DeadlockError reports that the event queue drained while processes were
// still blocked, i.e. the simulated program deadlocked.
type DeadlockError struct {
	At    Time     // simulation time at which progress stopped
	Procs []string // names of the blocked processes
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at %v: blocked processes: %s",
		d.At, strings.Join(d.Procs, ", "))
}

// TimeLimitError reports that the simulation exceeded Engine.MaxTime.
type TimeLimitError struct {
	Limit Time
	At    Time
}

func (t *TimeLimitError) Error() string {
	return fmt.Sprintf("sim: simulated time %v exceeded the %v limit", t.At, t.Limit)
}

// AbortError reports that the run was aborted by Interrupt — the
// cooperative cancellation path used for wall-clock run timeouts and
// abandoned jobs.  By the time Run returns it, every process goroutine
// has unwound and exited.
type AbortError struct {
	// At is the simulated time at which the abort was observed.
	At Time
}

func (a *AbortError) Error() string {
	return fmt.Sprintf("sim: run aborted at %v", a.At)
}

// abortSignal is the panic value used to unwind process goroutines once
// a run is aborting.  It is recovered (and recognized) by Spawn's
// termination handler and never escapes the engine.
type abortSignal struct{}
