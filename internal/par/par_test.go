package par

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestKeyLess(t *testing.T) {
	cases := []struct {
		a, b Key
		want bool
	}{
		{Key{1, 0}, Key{2, 0}, true},
		{Key{2, 0}, Key{1, 5}, false},
		{Key{1, 1}, Key{1, 2}, true},
		{Key{1, 2}, Key{1, 2}, false},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.want {
			t.Errorf("Less(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// TestClocksMinAgainstReference drives a randomized insert/remove-min
// sequence and checks the vector's global minimum against a flat sorted
// reference at every step.
func TestClocksMinAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const domains = 4
	c := NewClocks(domains)
	type ref struct {
		key Key
		dom int
	}
	var live []ref
	seq := uint64(0)
	for step := 0; step < 2000; step++ {
		if len(live) == 0 || rng.Intn(3) != 0 {
			seq++
			k := Key{At: int64(rng.Intn(50)), Seq: seq}
			d := rng.Intn(domains)
			c.Insert(d, k, int(seq))
			live = append(live, ref{k, d})
		} else {
			// Remove the global minimum, as the gate does.
			sort.Slice(live, func(i, j int) bool { return live[i].key.Less(live[j].key) })
			min := live[0]
			c.RemoveMin(min.dom)
			live = live[1:]
		}
		if c.Size() != len(live) {
			t.Fatalf("step %d: size %d, want %d", step, c.Size(), len(live))
		}
		gotK, _, ok := c.Min()
		if len(live) == 0 {
			if ok {
				t.Fatalf("step %d: Min reported %v on empty vector", step, gotK)
			}
			continue
		}
		wantK := live[0].key
		for _, r := range live[1:] {
			if r.key.Less(wantK) {
				wantK = r.key
			}
		}
		if !ok || gotK != wantK {
			t.Fatalf("step %d: Min = %v (ok=%v), want %v", step, gotK, ok, wantK)
		}
	}
}

func TestClocksPerDomainClock(t *testing.T) {
	c := NewClocks(2)
	if _, ok := c.Clock(0); ok {
		t.Fatal("empty domain reported a clock")
	}
	c.Insert(0, Key{10, 1}, 0)
	c.Insert(0, Key{5, 2}, 1)
	c.Insert(1, Key{7, 3}, 2)
	if k, ok := c.Clock(0); !ok || k != (Key{5, 2}) {
		t.Fatalf("domain 0 clock = %v, want {5 2}", k)
	}
	if k, ok := c.Clock(1); !ok || k != (Key{7, 3}) {
		t.Fatalf("domain 1 clock = %v, want {7 3}", k)
	}
	if k, id, ok := c.Min(); !ok || k != (Key{5, 2}) || id != 1 {
		t.Fatalf("global min = %v id=%d, want {5 2} id=1", k, id)
	}
	c.Reset()
	if c.Size() != 0 {
		t.Fatalf("size after Reset = %d", c.Size())
	}
	if _, _, ok := c.Min(); ok {
		t.Fatal("Min reported a span after Reset")
	}
}

func TestHorizonSaturates(t *testing.T) {
	if h := Horizon(10, 5); h != 15 {
		t.Fatalf("Horizon(10,5) = %d", h)
	}
	if h := Horizon(math.MaxInt64-2, 100); h != math.MaxInt64 {
		t.Fatalf("Horizon near overflow = %d, want MaxInt64", h)
	}
}

func TestPolicyRelease(t *testing.T) {
	pol := Policy{Workers: 2, Lookahead: 10}
	min := Key{At: 100, Seq: 50}

	// Forced: older than the oldest incomplete span, even at capacity.
	if !pol.Release(Key{90, 10}, min, true, 2) {
		t.Error("event older than the window minimum must be forced out")
	}
	// Idle: nothing running releases unconditionally.
	if !pol.Release(Key{1000, 99}, Key{}, false, 0) {
		t.Error("idle window must release the head event")
	}
	// Windowed: inside horizon with capacity.
	if !pol.Release(Key{105, 60}, min, true, 1) {
		t.Error("in-horizon event with capacity must release")
	}
	// At capacity, not forced: hold.
	if pol.Release(Key{105, 60}, min, true, 2) {
		t.Error("in-horizon event must wait when the pool is full")
	}
	// Beyond horizon: hold.
	if pol.Release(Key{111, 60}, min, true, 1) {
		t.Error("event beyond the lookahead horizon must wait")
	}
	// Zero lookahead degenerates to same-timestamp batching.
	tight := Policy{Workers: 4, Lookahead: 0}
	if !tight.Release(Key{100, 60}, min, true, 1) {
		t.Error("same-timestamp event must release under zero lookahead")
	}
	if tight.Release(Key{101, 60}, min, true, 1) {
		t.Error("later event must wait under zero lookahead")
	}
}

func TestPartition(t *testing.T) {
	domOf := Partition(8, 4)
	want := []int{0, 0, 1, 1, 2, 2, 3, 3}
	for id, w := range want {
		if got := domOf(id); got != w {
			t.Errorf("Partition(8,4)(%d) = %d, want %d", id, got, w)
		}
	}
	// More domains than procs clamps; ranges stay contiguous and cover
	// all domains up to p.
	domOf = Partition(3, 8)
	seen := map[int]bool{}
	prev := -1
	for id := 0; id < 3; id++ {
		d := domOf(id)
		if d < prev {
			t.Fatalf("partition not monotone at %d", id)
		}
		prev = d
		seen[d] = true
	}
	if len(seen) != 3 {
		t.Fatalf("Partition(3,8) used %d domains, want 3", len(seen))
	}
	if domOf(-1) != 0 || domOf(99) != 0 {
		t.Fatal("out-of-range ids must map to domain 0")
	}
}
