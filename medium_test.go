package spasm

import (
	"os"
	"testing"
)

// TestMediumScaleLightApps always exercises the Medium problem sizes for
// the cheaper applications, so the largest configurations documented in
// the README are continuously verified.
func TestMediumScaleLightApps(t *testing.T) {
	if testing.Short() {
		t.Skip("medium scale skipped in -short mode")
	}
	for _, name := range []string{"ep", "fft"} {
		res, err := Run(name, Medium, 1, Config{Kind: CLogP, Topology: "cube", P: 16})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Stats.Total <= 0 {
			t.Errorf("%s: empty run", name)
		}
	}
}

// TestFullSweepDashboardBands regenerates the complete small-scale
// evaluation (the EXPERIMENTS.md configuration) and asserts the
// documented accuracy-dashboard bands; enable with SPASM_LONG=1
// (~40 s).
func TestFullSweepDashboardBands(t *testing.T) {
	if os.Getenv("SPASM_LONG") == "" {
		t.Skip("set SPASM_LONG=1 to regenerate the full small-scale evaluation")
	}
	s := NewSession(Options{Scale: Small, Parallel: 8})
	frs, err := s.AllFigures()
	if err != nil {
		t.Fatal(err)
	}
	for _, sum := range Summarize(Accuracy(frs)) {
		switch sum.Metric {
		case LatencyOvh:
			if sum.CLogPRatio < 1.1 || sum.CLogPRatio > 1.8 {
				t.Errorf("latency CLogP ratio %.2f outside the documented [1.1, 1.8]", sum.CLogPRatio)
			}
			if sum.CLogPTrendPct != 100 {
				t.Errorf("latency CLogP trend agreement %.0f%%, documented 100%%", sum.CLogPTrendPct)
			}
			if sum.LogPRatio < 3.5 {
				t.Errorf("LogP latency ratio %.2f below the documented ~4.9x band", sum.LogPRatio)
			}
		case ContentionOvh:
			if sum.CLogPRatio < 1.5 || sum.CLogPRatio > 4.5 {
				t.Errorf("contention CLogP ratio %.2f outside [1.5, 4.5]", sum.CLogPRatio)
			}
		case ExecTime:
			if sum.LogPTrendPct > 60 {
				t.Errorf("LogP exec trend agreement %.0f%% — the paper's shape-loss finding weakened", sum.LogPTrendPct)
			}
			if sum.CLogPTrendPct < sum.LogPTrendPct {
				t.Error("CLogP exec trends worse than LogP")
			}
		}
	}
}

// TestMediumScaleHeavyApps runs the expensive Medium configurations;
// enable with SPASM_LONG=1 (several seconds per app).
func TestMediumScaleHeavyApps(t *testing.T) {
	if os.Getenv("SPASM_LONG") == "" {
		t.Skip("set SPASM_LONG=1 to run the heavy medium-scale smoke tests")
	}
	for _, name := range []string{"is", "cg", "cholesky"} {
		for _, kind := range []Kind{Target, CLogP} {
			res, err := Run(name, Medium, 1, Config{Kind: kind, Topology: "mesh", P: 16})
			if err != nil {
				t.Fatalf("%s on %v: %v", name, kind, err)
			}
			if res.Stats.Total <= 0 {
				t.Errorf("%s on %v: empty run", name, kind)
			}
		}
	}
}
