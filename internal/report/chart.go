package report

import (
	"fmt"
	"math"
	"strings"

	"spasm/internal/exp"
)

// Chart renders a figure as an ASCII line chart: the x axis is the
// processor sweep (log scale, as in the paper), the y axis the metric in
// microseconds.  Each machine's curve is drawn with its marker letter
// (T = Target, L = LogP, C = LogP+Cache) joined by light line segments.
func Chart(fr *exp.FigureResult, width, height int) string {
	if width < 30 {
		width = 30
	}
	if height < 8 {
		height = 8
	}
	const margin = 10 // room for y labels
	plotW := width - margin - 1
	plotH := height - 3 // room for x axis + labels + legend

	// Value range across all series (y starts at zero, as the paper's
	// overhead figures do).
	var ymax float64
	for _, s := range fr.Series {
		for _, pt := range s.Points {
			if pt.Value > ymax {
				ymax = pt.Value
			}
		}
	}
	if ymax <= 0 {
		ymax = 1
	}

	grid := make([][]byte, plotH)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", plotW))
	}

	n := 0
	if len(fr.Series) > 0 {
		n = len(fr.Series[0].Points)
	}
	xAt := func(i int) int {
		if n <= 1 {
			return 0
		}
		return i * (plotW - 1) / (n - 1)
	}
	yAt := func(v float64) int {
		r := plotH - 1 - int(math.Round(v/ymax*float64(plotH-1)))
		if r < 0 {
			r = 0
		}
		if r >= plotH {
			r = plotH - 1
		}
		return r
	}

	// Draw each series: segments first, then markers on top.
	for _, s := range fr.Series {
		_, marker := machineLabel(s.Machine)
		for i := 1; i < len(s.Points); i++ {
			x0, y0 := xAt(i-1), yAt(s.Points[i-1].Value)
			x1, y1 := xAt(i), yAt(s.Points[i].Value)
			drawSegment(grid, x0, y0, x1, y1, segmentChar(y0, y1))
		}
		for i, pt := range s.Points {
			grid[yAt(pt.Value)][xAt(i)] = marker
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", figureLabel(fr.Figure), fr.Figure.Caption())
	for r := 0; r < plotH; r++ {
		var label string
		switch r {
		case 0:
			label = trimNum(ymax)
		case plotH - 1:
			label = "0"
		case plotH / 2:
			label = trimNum(ymax / 2)
		}
		fmt.Fprintf(&b, "%8s |%s\n", label, string(grid[r]))
	}
	b.WriteString(strings.Repeat(" ", 9) + "+" + strings.Repeat("-", plotW) + "\n")
	// x labels at each sweep position.
	xlab := []byte(strings.Repeat(" ", plotW))
	for i := 0; i < n; i++ {
		lab := fmt.Sprint(fr.Series[0].Points[i].P)
		x := xAt(i)
		if x+len(lab) > plotW { // keep the last label fully visible
			x = plotW - len(lab)
		}
		for k := 0; k < len(lab); k++ {
			xlab[x+k] = lab[k]
		}
	}
	b.WriteString(strings.Repeat(" ", 10) + string(xlab) + "\n")
	// Legend.
	var legend []string
	for _, s := range fr.Series {
		name, marker := machineLabel(s.Machine)
		legend = append(legend, fmt.Sprintf("%c=%s", marker, name))
	}
	b.WriteString(strings.Repeat(" ", 10) + "procs   [" + strings.Join(legend, "  ") + "]  (us)\n")
	return b.String()
}

func trimNum(v float64) string {
	if v >= 1000 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.1f", v)
}

func segmentChar(y0, y1 int) byte {
	switch {
	case y0 == y1:
		return '-'
	case y1 < y0:
		return '/'
	default:
		return '\\'
	}
}

// drawSegment joins two grid points with a crude Bresenham line, leaving
// existing markers intact.
func drawSegment(grid [][]byte, x0, y0, x1, y1 int, ch byte) {
	dx := abs(x1 - x0)
	dy := -abs(y1 - y0)
	sx, sy := 1, 1
	if x0 > x1 {
		sx = -1
	}
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	x, y := x0, y0
	for {
		if y >= 0 && y < len(grid) && x >= 0 && x < len(grid[0]) && grid[y][x] == ' ' {
			grid[y][x] = ch
		}
		if x == x1 && y == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x += sx
		}
		if e2 <= dx {
			err += dx
			y += sy
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
