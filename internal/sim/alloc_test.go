package sim

import (
	"fmt"
	"runtime"
	"testing"
)

// TestEventDispatchAllocBudget pins the steady-state allocation cost of
// the kernel: at most one allocation per dispatched event, amortized
// over a long run.  The concrete-typed heap should make the real number
// near zero (occasional slice growth only); the budget of 1 leaves room
// for the runtime without letting interface boxing or per-event
// closures creep back in.
func TestEventDispatchAllocBudget(t *testing.T) {
	const holds = 2000
	run := func() uint64 {
		e := NewEngine()
		for i := 0; i < 4; i++ {
			e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				for j := 0; j < holds; j++ {
					p.Hold(1)
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Events
	}
	run() // warm up the runtime (goroutine stacks, timer state)

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	events := run()
	runtime.ReadMemStats(&after)

	perEvent := float64(after.Mallocs-before.Mallocs) / float64(events)
	if perEvent > 1 {
		t.Errorf("dispatch allocates %.2f objects/event over %d events; budget is 1",
			perEvent, events)
	}
}

// scanRetained reports every backing slot — including slots beyond the
// live length, up to capacity — of the engine's event structures that
// still references a *Proc: the heap, the same-timestamp FIFO, the
// ladder queue (bottom run, rung buckets, top), and the per-domain
// parallel queues' backing stores.
func scanRetained(t *testing.T, e *Engine, when string) {
	t.Helper()
	check := func(where string, s []event) {
		full := s[:cap(s)]
		for i := range full {
			if full[i].p != nil {
				t.Errorf("%s: %s backing slot %d still references proc %q",
					when, where, i, full[i].p.Name)
			}
		}
	}
	checkLadder := func(where string, l *ladderQueue) {
		check(where+" bottom", l.bot)
		check(where+" top", l.top)
		rungs := l.rungs[:cap(l.rungs)]
		for ri := range rungs {
			bkt := rungs[ri].bkt[:cap(rungs[ri].bkt)]
			for bi := range bkt {
				check(fmt.Sprintf("%s rung %d bucket %d", where, ri, bi), bkt[bi])
			}
		}
	}
	check("heap", e.heap.s)
	check("nowQ", e.nowQ)
	checkLadder("ladder", &e.lad)
	for i := range e.pqHeaps {
		check(fmt.Sprintf("domain heap %d", i), e.pqHeaps[i].s)
	}
	for i := range e.pqLads {
		checkLadder(fmt.Sprintf("domain ladder %d", i), &e.pqLads[i])
	}
}

// TestQueueRetainsNoProcsAfterRun guards the memory-pin fix: after Run
// drains, none of the event structures' backing arrays — heap,
// same-timestamp FIFO, or any part of the ladder queue — may still
// reference a *Proc.  A retained reference would pin the process (and
// transitively its closure and goroutine allocations) for the lifetime
// of the engine — a real leak for long-lived services that keep engines
// around after inspecting results.  The large round crosses the
// ladderProcs threshold so the ladder queue's slots are exercised too.
func TestQueueRetainsNoProcsAfterRun(t *testing.T) {
	for _, procs := range []int{64, ladderProcs} {
		e := NewEngine()
		for i := 0; i < procs; i++ {
			i := i
			e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				for j := 0; j < 50; j++ {
					p.Hold(Time(1 + (i+j)%7))
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		if procs >= ladderProcs && e.q != &e.lad {
			t.Fatalf("%d-proc run did not select the ladder queue", procs)
		}
		scanRetained(t, e, fmt.Sprintf("after %d-proc run", procs))
		e.Reset()
		scanRetained(t, e, fmt.Sprintf("after %d-proc run + Reset", procs))
	}
}

// TestHandoffStress exercises the direct process-to-process dispatch
// handoff under churn: many engines, wake storms through queues, and
// same-timestamp scheduling.  Run it under -race to check the run-token
// discipline (engine state is only ever touched by the goroutine that
// holds the token).
func TestHandoffStress(t *testing.T) {
	for round := 0; round < 20; round++ {
		e := NewEngine()
		var q Queue
		const workers = 16
		for i := 0; i < workers; i++ {
			i := i
			e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
				for j := 0; j < 30; j++ {
					switch (i + j) % 3 {
					case 0:
						p.Hold(Time(1 + j%5))
					case 1:
						q.Wait(p)
					default:
						p.Defer(2)
						p.Yield()
						for q.WakeOne() {
						}
					}
				}
				for q.WakeOne() {
				}
			})
		}
		// A closer that periodically drains the queue until every worker
		// has terminated, so no round ends in a (deliberate) deadlock.
		e.Spawn("closer", func(p *Proc) {
			for e.nLive > 1 {
				p.Hold(1000)
				q.WakeAll()
			}
		})
		if err := e.Run(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}
