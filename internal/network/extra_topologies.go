package network

import "fmt"

// Extension topologies beyond the paper's three: the unidirectional
// ring and the 2-D torus (the k-ary n-cube family analysed by Dally,
// whom the paper cites).  They slot into every experiment — the g
// derivation from bisection bandwidth, the detailed fabric, and the
// adaptive-g bisection predicate — so the abstraction-accuracy questions
// can be asked of networks the paper did not measure.

// Ring is a bidirectional ring: each node links to both neighbours, and
// messages take the shorter way around (ties go clockwise).
type Ring struct {
	p       int
	rt      *routeTable
	scratch []int
}

// NewRing returns a bidirectional ring over p nodes.
func NewRing(p int) *Ring {
	checkP(p)
	r := &Ring{p: p}
	r.rt = buildRouteTable(p, r.AppendRoute)
	if r.rt == nil {
		r.scratch = make([]int, 0, r.Diameter())
	}
	return r
}

// Ring link ids: node*2 is the clockwise link (to node+1), node*2+1 the
// counter-clockwise link (to node-1).
const (
	cw = iota
	ccw
)

func (r *Ring) Name() string  { return "ring" }
func (r *Ring) P() int        { return r.p }
func (r *Ring) NumLinks() int { return r.p * 2 }

func (r *Ring) check(src, dst int) {
	if src < 0 || src >= r.p || dst < 0 || dst >= r.p || src == dst {
		panic(fmt.Sprintf("network: bad route %d -> %d on ring(%d)", src, dst, r.p))
	}
}

// AppendRoute takes the shorter direction around the ring.
func (r *Ring) AppendRoute(buf []int, src, dst int) []int {
	fwd := (dst - src + r.p) % r.p
	if fwd <= r.p-fwd { // clockwise (ties clockwise)
		for n := src; n != dst; n = (n + 1) % r.p {
			buf = append(buf, n*2+cw)
		}
	} else {
		for n := src; n != dst; n = (n - 1 + r.p) % r.p {
			buf = append(buf, n*2+ccw)
		}
	}
	return buf
}

// Route returns the shorter-way route from the precomputed table (or
// the scratch buffer at large p).
func (r *Ring) Route(src, dst int) []int {
	r.check(src, dst)
	if r.rt != nil {
		return r.rt.route(src, dst)
	}
	r.scratch = r.AppendRoute(r.scratch[:0], src, dst)
	return r.scratch
}

func (r *Ring) LinkEnds(id int) (from, to int) {
	from = id / 2
	if id%2 == cw {
		return from, (from + 1) % r.p
	}
	return from, (from - 1 + r.p) % r.p
}

func (r *Ring) Hops(src, dst int) int {
	r.check(src, dst)
	fwd := (dst - src + r.p) % r.p
	if fwd <= r.p-fwd {
		return fwd
	}
	return r.p - fwd
}

func (r *Ring) Diameter() int { return r.p / 2 }

// BisectionLinks: cutting the ring in half severs two edges, each with a
// link per direction.
func (r *Ring) BisectionLinks() int {
	if r.p == 2 {
		return 2
	}
	return 4
}

// CrossesBisection splits the node set at p/2.
func (r *Ring) CrossesBisection(src, dst int) bool {
	return (src < r.p/2) != (dst < r.p/2)
}

// Torus is the 2-D torus: the paper's mesh with wraparound links, the
// canonical k-ary 2-cube.  Routing is dimension-ordered, taking the
// shorter way around each dimension.
type Torus struct {
	p, rows, cols int
	rt            *routeTable
	scratch       []int
}

// NewTorus returns a 2-D torus over p = 2^k nodes with the same aspect
// ratio rule as the mesh.
func NewTorus(p int) *Torus {
	m := NewMesh(p)
	t := &Torus{p: p, rows: m.Rows(), cols: m.Cols()}
	t.rt = buildRouteTable(p, t.AppendRoute)
	if t.rt == nil {
		t.scratch = make([]int, 0, t.Diameter())
	}
	return t
}

func (t *Torus) Name() string  { return "torus" }
func (t *Torus) P() int        { return t.p }
func (t *Torus) Rows() int     { return t.rows }
func (t *Torus) Cols() int     { return t.cols }
func (t *Torus) NumLinks() int { return t.p * 4 }

func (t *Torus) node(r, c int) int       { return r*t.cols + c }
func (t *Torus) coords(n int) (r, c int) { return n / t.cols, n % t.cols }

func (t *Torus) check(src, dst int) {
	if src < 0 || src >= t.p || dst < 0 || dst >= t.p || src == dst {
		panic(fmt.Sprintf("network: bad route %d -> %d on torus(%d)", src, dst, t.p))
	}
}

// shorter returns the signed step (+1/-1) and distance for the shorter
// way from a to b modulo n (ties positive).
func shorter(a, b, n int) (step, dist int) {
	fwd := (b - a + n) % n
	if fwd <= n-fwd {
		return 1, fwd
	}
	return -1, n - fwd
}

// AppendRoute is X-first dimension-ordered with wraparound.
func (t *Torus) AppendRoute(buf []int, src, dst int) []int {
	sr, sc := t.coords(src)
	dr, dc := t.coords(dst)
	r, c := sr, sc
	if step, dist := shorter(sc, dc, t.cols); dist > 0 {
		for i := 0; i < dist; i++ {
			if step > 0 {
				buf = append(buf, t.node(r, c)*4+east)
				c = (c + 1) % t.cols
			} else {
				buf = append(buf, t.node(r, c)*4+west)
				c = (c - 1 + t.cols) % t.cols
			}
		}
	}
	if step, dist := shorter(sr, dr, t.rows); dist > 0 {
		for i := 0; i < dist; i++ {
			if step > 0 {
				buf = append(buf, t.node(r, c)*4+south)
				r = (r + 1) % t.rows
			} else {
				buf = append(buf, t.node(r, c)*4+north)
				r = (r - 1 + t.rows) % t.rows
			}
		}
	}
	return buf
}

// Route returns the dimension-ordered route from the precomputed table
// (or the scratch buffer at large p).
func (t *Torus) Route(src, dst int) []int {
	t.check(src, dst)
	if t.rt != nil {
		return t.rt.route(src, dst)
	}
	t.scratch = t.AppendRoute(t.scratch[:0], src, dst)
	return t.scratch
}

func (t *Torus) LinkEnds(id int) (from, to int) {
	from = id / 4
	r, c := t.coords(from)
	switch id % 4 {
	case east:
		c = (c + 1) % t.cols
	case west:
		c = (c - 1 + t.cols) % t.cols
	case north:
		r = (r - 1 + t.rows) % t.rows
	default:
		r = (r + 1) % t.rows
	}
	return from, t.node(r, c)
}

func (t *Torus) Hops(src, dst int) int {
	t.check(src, dst)
	sr, sc := t.coords(src)
	dr, dc := t.coords(dst)
	_, dx := shorter(sc, dc, t.cols)
	_, dy := shorter(sr, dr, t.rows)
	return dx + dy
}

func (t *Torus) Diameter() int { return t.rows/2 + t.cols/2 }

// BisectionLinks: the vertical cut through the column halves severs two
// column boundaries (the cut itself and the wraparound), each crossed by
// one link per row per direction: 4 * rows.  A 1-row torus degenerates
// to a ring.
func (t *Torus) BisectionLinks() int {
	if t.cols == 2 {
		// The cut and the wraparound are the same pair of columns;
		// count each directed link once.
		return 2 * t.rows
	}
	return 4 * t.rows
}

// CrossesBisection splits between the two column halves.
func (t *Torus) CrossesBisection(src, dst int) bool {
	_, sc := t.coords(src)
	_, dc := t.coords(dst)
	return (sc < t.cols/2) != (dc < t.cols/2)
}
