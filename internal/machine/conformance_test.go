package machine

import (
	"testing"

	"spasm/internal/mem"
	"spasm/internal/sim"
)

// TestAllMachinesConform runs the conformance suite over every machine
// kind, every topology, and every coherence protocol variant.
func TestAllMachinesConform(t *testing.T) {
	type variant struct {
		name string
		cfg  Config
	}
	var variants []variant
	for _, kind := range Kinds() {
		for _, topo := range []string{"full", "cube", "mesh", "ring", "torus"} {
			variants = append(variants, variant{
				name: kind.String() + "/" + topo,
				cfg:  Config{Kind: kind, Topology: topo},
			})
		}
	}
	variants = append(variants,
		variant{"target/msi", Config{Kind: Target, Topology: "cube", Protocol: 1}},
		variant{"target/update", Config{Kind: Target, Topology: "cube", Protocol: 2}},
		variant{"clogp/adaptive", Config{Kind: CLogP, Topology: "mesh", AdaptiveG: true}},
		variant{"logp/perclass", Config{Kind: LogP, Topology: "mesh", PortMode: 1}},
		variant{"target/fastlinks", Config{Kind: Target, Topology: "mesh", LinkByteTime: 4}},
	)
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			factory := func() (Machine, *mem.Space, *mem.Array) {
				s := mem.NewSpace(8, 32)
				a := s.Alloc("conf", 8*64, 8, mem.Blocked)
				cfg := v.cfg
				cfg.P = 8
				m, err := New(cfg, s)
				if err != nil {
					t.Fatal(err)
				}
				return m, s, a
			}
			if err := Conformance(factory); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestNetworkTiersConform runs every registered network backend —
// detailed, logp, flow — through the same invariant checks (message
// conservation, monotone delivery, deterministic replay x2 plus a
// post-Reset replay), on every topology.
func TestNetworkTiersConform(t *testing.T) {
	for _, tier := range NetworkTiers() {
		for _, topo := range []string{"full", "cube", "mesh", "ring", "torus"} {
			tier, topo := tier, topo
			t.Run(tier.Name+"/"+topo, func(t *testing.T) {
				if err := NetworkConformance(tier, topo, 8); err != nil {
					t.Error(err)
				}
			})
		}
	}
}

// TestLargePConformance re-runs the conformance battery at P=256 — past
// the precomputed-route-table limit, so the coherent machines exercise
// the route cache and the sparse directory's overflow representation,
// and each abstract tier its large-P port/flow state.  The mesh keeps
// the detailed fabric's link count linear in P.
func TestLargePConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("256-processor battery")
	}
	const p = 256
	for _, kind := range []Kind{Ideal, Flow, LogP, CLogP, Target} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			factory := func() (Machine, *mem.Space, *mem.Array) {
				s := mem.NewSpace(p, 32)
				a := s.Alloc("conf", p*64, 8, mem.Blocked)
				m, err := New(Config{Kind: kind, Topology: "mesh", P: p}, s)
				if err != nil {
					t.Fatal(err)
				}
				return m, s, a
			}
			if err := Conformance(factory); err != nil {
				t.Error(err)
			}
		})
	}
	for _, tier := range NetworkTiers() {
		tier := tier
		t.Run("net/"+tier.Name, func(t *testing.T) {
			if err := NetworkConformance(tier, "mesh", p); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestNetworkTierByName: the registry resolves every registered name
// and rejects unknown ones with the valid list.
func TestNetworkTierByName(t *testing.T) {
	for _, tier := range NetworkTiers() {
		got, err := NetworkTierByName(tier.Name)
		if err != nil || got.Name != tier.Name {
			t.Fatalf("NetworkTierByName(%q) = %v, %v", tier.Name, got.Name, err)
		}
	}
	if _, err := NetworkTierByName("carrier-pigeon"); err == nil {
		t.Fatal("unknown tier accepted")
	}
}

// TestFlowRebindClearsState: rebinding a pooled flow machine must clear
// the active-flow table — a leaked flow from the previous run would
// alias into the next run's bandwidth allocation.  The same access
// sequence is driven on a fresh machine and a rebound one; their
// delivery schedules must be identical (the TestProfilerReuse-style
// aliasing check for the flow backend).
func TestFlowRebindClearsState(t *testing.T) {
	drive := func(m Machine, s *mem.Space, a *mem.Array) string {
		fm := m.(Flowed).FlowNet()
		var log string
		for i := 0; i < 40; i++ {
			dst := (i*3 + 1) % 8
			if dst == 0 {
				dst = 1
			}
			x := fm.Transfer(sim.Time(i*10), 0, dst, 16)
			log += x.End.String() + ","
		}
		return log
	}
	setup := func() (*mem.Space, *mem.Array) {
		s := mem.NewSpace(8, 32)
		a := s.Alloc("conf", 8*64, 8, mem.Blocked)
		return s, a
	}
	s1, a1 := setup()
	fresh, err := New(Config{Kind: Flow, Topology: "mesh", P: 8}, s1)
	if err != nil {
		t.Fatal(err)
	}
	want := drive(fresh, s1, a1)

	r := NewReusable(Config{Kind: Flow, Topology: "mesh"})
	s2, a2 := setup()
	m, err := r.Bind(s2)
	if err != nil {
		t.Fatal(err)
	}
	if got := drive(m, s2, a2); got != want {
		t.Fatalf("first pooled run diverged:\n got %s\nwant %s", got, want)
	}
	// Rebind without the run in between having been "clean": the flow
	// table still holds the previous run's flows until Reset clears it.
	s3, a3 := setup()
	m, err = r.Bind(s3)
	if err != nil {
		t.Fatal(err)
	}
	if got := drive(m, s3, a3); got != want {
		t.Fatalf("rebound run diverged from fresh:\n got %s\nwant %s", got, want)
	}
}
