package trace

import (
	"bytes"
	"testing"

	"spasm/internal/mem"
	"spasm/internal/sim"
)

// FuzzDecode feeds arbitrary bytes to the trace decoder: it must never
// panic, and anything it accepts must round-trip through Encode.
func FuzzDecode(f *testing.F) {
	// Seed with a valid trace and a few mutations.
	valid := &Trace{
		P: 2,
		Regions: []Region{
			{Name: "x", N: 8, ElemSize: 8, Policy: mem.Blocked},
		},
		Events: []Event{
			{Proc: 0, Addr: 0, At: 10, Done: 12},
			{Proc: 1, Write: true, Addr: 8, At: 20, Done: 25},
		},
	}
	var buf bytes.Buffer
	if err := valid.Encode(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("SPAS"))
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever decoded must re-encode and decode to the same
		// thing.
		var out bytes.Buffer
		if err := tr.Encode(&out); err != nil {
			t.Fatalf("re-encode of accepted trace failed: %v", err)
		}
		tr2, err := Decode(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if tr2.P != tr.P || len(tr2.Events) != len(tr.Events) || len(tr2.Regions) != len(tr.Regions) {
			t.Fatalf("round-trip mismatch: %+v vs %+v", tr2, tr)
		}
	})
}

var _ = sim.Time(0)
