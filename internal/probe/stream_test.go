package probe_test

import (
	"bytes"
	"testing"

	"spasm"
)

// TestOnEpochStreamsLiveEvents checks the incremental emission hook: a
// profiled run fires OnEpoch for epochs as they close (not just at
// Finish), the tail arrives as Final events reaching the profile's last
// epoch, and — the non-perturbation half — the finished encoded profile
// is byte-identical to one produced without the hook.
func TestOnEpochStreamsLiveEvents(t *testing.T) {
	cfg := spasm.Config{Kind: spasm.Target, Topology: "mesh", P: 8}

	_, plain, err := spasm.RunProfiledConfig("fft", spasm.Tiny, 1, cfg, spasm.ProfileConfig{})
	if err != nil {
		t.Fatal(err)
	}

	var events []spasm.ProfileEpochEvent
	_, hooked, err := spasm.RunProfiledConfig("fft", spasm.Tiny, 1, cfg,
		spasm.ProfileConfig{OnEpoch: func(ev spasm.ProfileEpochEvent) {
			events = append(events, ev)
		}})
	if err != nil {
		t.Fatal(err)
	}

	var live int
	for _, ev := range events {
		if !ev.Final {
			live++
		}
	}
	if live < 2 {
		t.Errorf("only %d live (non-Final) epoch events; want >= 2", live)
	}
	if len(events) == 0 {
		t.Fatal("no epoch events at all")
	}
	last := events[len(events)-1]
	if !last.Final {
		t.Errorf("last event not Final: %+v", last)
	}
	if last.EpochLen != hooked.EpochLen || last.Index != len(hooked.Epochs)-1 {
		t.Errorf("tail event (index %d, epoch %v) does not close the profile (%d epochs of %v)",
			last.Index, last.EpochLen, len(hooked.Epochs), hooked.EpochLen)
	}
	for i := 1; i < len(events); i++ {
		a, b := &events[i-1], &events[i]
		if b.EpochLen < a.EpochLen {
			t.Fatalf("event %d epoch length %v shrank from %v", i, b.EpochLen, a.EpochLen)
		}
		if b.EpochLen == a.EpochLen && b.Index != a.Index+1 {
			t.Fatalf("event %d index %d does not follow %d at equal epoch length", i, b.Index, a.Index)
		}
	}

	var pb, hb bytes.Buffer
	if _, err := plain.Encode(&pb); err != nil {
		t.Fatal(err)
	}
	if _, err := hooked.Encode(&hb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pb.Bytes(), hb.Bytes()) {
		t.Error("OnEpoch hook perturbed the encoded profile")
	}
}

// TestOnEpochSurvivesRescale drives the emitter through resolution
// coarsening: with a tight epoch budget the already-emitted timeline is
// re-emitted at the doubled epoch length, and the stream still closes
// on the profile's final epoch.
func TestOnEpochSurvivesRescale(t *testing.T) {
	var events []spasm.ProfileEpochEvent
	_, prof, err := spasm.RunProfiledConfig("fft", spasm.Tiny, 1,
		spasm.Config{Kind: spasm.Target, Topology: "mesh", P: 8},
		spasm.ProfileConfig{MaxEpochs: 8, OnEpoch: func(ev spasm.ProfileEpochEvent) {
			events = append(events, ev)
		}})
	if err != nil {
		t.Fatal(err)
	}
	lens := map[int64]bool{}
	for _, ev := range events {
		lens[int64(ev.EpochLen)] = true
	}
	if len(lens) < 2 {
		t.Errorf("rescale never re-emitted at a coarser epoch length (lengths seen: %v)", lens)
	}
	last := events[len(events)-1]
	if last.EpochLen != prof.EpochLen || last.Index != len(prof.Epochs)-1 {
		t.Errorf("stream tail (index %d, epoch %v) does not match profile (%d epochs of %v)",
			last.Index, last.EpochLen, len(prof.Epochs), prof.EpochLen)
	}
}
