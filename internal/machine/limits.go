package machine

import "spasm/internal/coherence"

// MaxPFor reports the largest processor count a machine kind supports —
// the bound spec validation enforces so an oversized spec is rejected
// with a clear error instead of panicking deep inside construction (the
// coherence directory's sharing sets are the hardest limit).  Per kind:
//
//   - Target, CLogP: coherence.MaxP (1024) — the directory's sharing-set
//     representation (limited pointers with chunked-bitset overflow) is
//     sized for it, and the detailed fabric's per-link arrays stay
//     within a workstation's memory there (8 MB at-rest for the fully
//     connected topology at 1024 nodes).
//   - LogP, Flow: 65536 — no directory, but the abstract tiers still
//     keep per-node port state (LogP) or per-resource occupancy maps
//     (flow), and the applications themselves allocate per-node.
//   - Ideal: 1048576 — only the per-processor statistics bound it.
//
// Unknown kinds report 0 (nothing is supported).
func MaxPFor(k Kind) int {
	switch k {
	case Target, CLogP:
		return coherence.MaxP
	case LogP, Flow:
		return 1 << 16
	case Ideal:
		return 1 << 20
	}
	return 0
}
