package spasm

// The benchmark harness regenerates every figure of the paper's
// evaluation section, one benchmark per figure, reporting the figure's
// metric for the three machine characterizations as custom benchmark
// metrics (target_us, clogp_us, logp_us) alongside the usual ns/op of
// running the simulations themselves.  The simulation-cost comparison
// and the g-discipline ablation from section 7 have their own benchmarks.
//
// Benchmarks run at Tiny scale with a short sweep so `go test -bench=.`
// completes quickly; `cmd/experiments` regenerates the figures at the
// paper's full sweep.

import (
	"fmt"
	"runtime"
	"testing"
	"time"
)

// benchProcs is the sweep used by the figure benchmarks.
var benchProcs = []int{4, 8}

func benchFigure(b *testing.B, num int) {
	b.Helper()
	fig, err := FigureByNumber(num)
	if err != nil {
		b.Fatal(err)
	}
	var last *FigureResult
	for i := 0; i < b.N; i++ {
		s := NewSession(Options{Scale: Tiny, Procs: benchProcs})
		fr, err := s.Figure(fig)
		if err != nil {
			b.Fatal(err)
		}
		last = fr
	}
	// Report the final sweep point of each machine's curve.
	for _, series := range last.Series {
		pt := series.Points[len(series.Points)-1]
		b.ReportMetric(pt.Value, fmt.Sprintf("%v_us", series.Machine))
	}
}

func BenchmarkFig01_FFT_Full_Latency(b *testing.B)         { benchFigure(b, 1) }
func BenchmarkFig02_CG_Full_Latency(b *testing.B)          { benchFigure(b, 2) }
func BenchmarkFig03_EP_Full_Latency(b *testing.B)          { benchFigure(b, 3) }
func BenchmarkFig04_IS_Full_Latency(b *testing.B)          { benchFigure(b, 4) }
func BenchmarkFig05_CHOLESKY_Full_Latency(b *testing.B)    { benchFigure(b, 5) }
func BenchmarkFig06_IS_Full_Contention(b *testing.B)       { benchFigure(b, 6) }
func BenchmarkFig07_IS_Mesh_Contention(b *testing.B)       { benchFigure(b, 7) }
func BenchmarkFig08_FFT_Cube_Contention(b *testing.B)      { benchFigure(b, 8) }
func BenchmarkFig09_CHOLESKY_Full_Contention(b *testing.B) { benchFigure(b, 9) }
func BenchmarkFig10_EP_Full_Contention(b *testing.B)       { benchFigure(b, 10) }
func BenchmarkFig11_EP_Mesh_Contention(b *testing.B)       { benchFigure(b, 11) }
func BenchmarkFig12_EP_Full_ExecTime(b *testing.B)         { benchFigure(b, 12) }
func BenchmarkFig13_FFT_Mesh_ExecTime(b *testing.B)        { benchFigure(b, 13) }
func BenchmarkFig14_IS_Full_ExecTime(b *testing.B)         { benchFigure(b, 14) }
func BenchmarkFig15_CG_Full_ExecTime(b *testing.B)         { benchFigure(b, 15) }
func BenchmarkFig16_CHOLESKY_Full_ExecTime(b *testing.B)   { benchFigure(b, 16) }
func BenchmarkFig17_CG_Mesh_ExecTime(b *testing.B)         { benchFigure(b, 17) }
func BenchmarkFig18_CHOLESKY_Mesh_ExecTime(b *testing.B)   { benchFigure(b, 18) }
func BenchmarkFig19_CG_Mesh_Contention(b *testing.B)       { benchFigure(b, 19) }
func BenchmarkFig20_CHOLESKY_Mesh_Contention(b *testing.B) { benchFigure(b, 20) }

// BenchmarkSimulationCost measures the cost of simulating each machine
// characterization over the full application suite — the paper's
// section-7 "Speed of Simulation" comparison.  ns/op IS the result here:
// compare the three sub-benchmarks.
func BenchmarkSimulationCost(b *testing.B) {
	for _, kind := range []Kind{Target, CLogP, LogP, Flow} {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			var events uint64
			for i := 0; i < b.N; i++ {
				events = 0
				for _, name := range Apps() {
					res, err := Run(name, Tiny, 1, Config{
						Kind: kind, Topology: "full", P: 8,
					})
					if err != nil {
						b.Fatal(err)
					}
					events += res.Stats.SimEvents
				}
			}
			b.ReportMetric(float64(events), "sim_events")
		})
	}
	// The same suite on the LogP machine through the conservative
	// parallel kernel (workers = GOMAXPROCS).  Compare against /logp:
	// on a single core the delta is pure gate overhead; on real cores the
	// window releases overlap span bodies and ns/op drops.  Results are
	// bit-identical either way (TestParallelRunsBitIdentical).
	b.Run("parallel", func(b *testing.B) {
		workers := runtime.GOMAXPROCS(0)
		if workers < 2 {
			workers = 2
		}
		var events uint64
		for i := 0; i < b.N; i++ {
			events = 0
			for _, name := range Apps() {
				res, err := RunSpec(Spec{App: name, Scale: Tiny, Machine: LogP,
					Topology: "full", P: 8, Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				events += res.Stats.SimEvents
			}
		}
		b.ReportMetric(float64(events), "sim_events")
	})
}

// BenchmarkFidelitySweep runs the fidelity-comparison study — the full
// application suite on the flow, LogP, and detailed network tiers — at
// 64 processors, and reports both cost axes of the comparison:
//
//   - engine events (sim_events_*): the discrete events the simulation
//     kernel dispatched, dominated by the application's own references;
//   - network-model events (net_events_*): each tier's own unit of
//     network work — per-hop resource reservations for the detailed
//     fabric, bandwidth-allocation recomputations for the flow tier.
//
// event_ratio is detailed/flow on the network-model axis: the flow
// tier's whole point is that an uncontended flow costs zero allocation
// work and a contended one costs a single recomputation, while the
// per-hop model pays len(route)+2 reservations for every message
// regardless of load.  The study runs on the mesh, where detailed
// routes are longest and the per-hop tier works hardest.
func BenchmarkFidelitySweep(b *testing.B) {
	const p = 64
	var rows []FidelityRow
	for i := 0; i < b.N; i++ {
		s := NewSession(Options{Scale: Small})
		var err error
		rows, err = s.FidelityStudy("mesh", p)
		if err != nil {
			b.Fatal(err)
		}
	}
	var tgtNet, flNet uint64
	var flErr float64
	for _, r := range rows {
		tgtNet += r.TargetNetEvents
		flNet += r.FlowNetEvents
		if e := r.FlowErrPct; e < 0 {
			flErr += -e
		} else {
			flErr += e
		}
	}
	if flNet == 0 {
		flNet = 1
	}
	b.ReportMetric(float64(tgtNet), "net_events_target")
	b.ReportMetric(float64(flNet), "net_events_flow")
	b.ReportMetric(float64(tgtNet)/float64(flNet), "event_ratio")
	b.ReportMetric(flErr/float64(len(rows)), "flow_abs_err_pct")
}

// BenchmarkSweepThroughput measures end-to-end sweep throughput on a
// 30-point Tiny sweep (every application x the three networked machines
// x p in {4, 8} on the full network), two ways:
//
//   - fresh:  the status quo before the batch scheduler — sequential
//     runs, every run constructing its engine, address space, and
//     machine from scratch.
//   - pooled: the same points through RunMany — the batch scheduler at
//     Parallel=GOMAXPROCS with per-worker context pools.
//
// Compare the runs/sec metric between the two; allocs/run shows the
// construction cost the pool amortizes away.  Each iteration uses a
// fresh session, so nothing is ever served from a session cache — every
// point is simulated every time.
func BenchmarkSweepThroughput(b *testing.B) {
	var points []BatchPoint
	for _, app := range Apps() {
		for _, kind := range []Kind{LogP, CLogP, Target} {
			for _, p := range benchProcs {
				points = append(points, BatchPoint{App: app, Topology: "full", Kind: kind, P: p})
			}
		}
	}
	measure := func(b *testing.B, sweep func() error) {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			if err := sweep(); err != nil {
				b.Fatal(err)
			}
		}
		elapsed := time.Since(start)
		b.StopTimer()
		runtime.ReadMemStats(&after)
		runs := float64(b.N * len(points))
		b.ReportMetric(runs/elapsed.Seconds(), "runs/sec")
		b.ReportMetric(float64(after.Mallocs-before.Mallocs)/runs, "allocs/run")
	}
	b.Run("fresh", func(b *testing.B) {
		measure(b, func() error {
			for _, pt := range points {
				_, err := Run(pt.App, Tiny, 1, Config{Kind: pt.Kind, Topology: pt.Topology, P: pt.P})
				if err != nil {
					return err
				}
			}
			return nil
		})
	})
	b.Run("pooled", func(b *testing.B) {
		measure(b, func() error {
			_, err := RunMany(Options{Scale: Tiny, Parallel: runtime.GOMAXPROCS(0)}, points)
			return err
		})
	})
	// Intra-run parallelism instead of inter-run: one simulation at a
	// time, each on the conservative parallel kernel.  The coherent
	// machines in the point list fall back to the sequential kernel, so
	// this measures the mixed-fleet shape a real sweep has.
	b.Run("parallel", func(b *testing.B) {
		workers := runtime.GOMAXPROCS(0)
		if workers < 2 {
			workers = 2
		}
		measure(b, func() error {
			_, err := RunMany(Options{Scale: Tiny, Parallel: 1, RunWorkers: workers}, points)
			return err
		})
	})
}

// BenchmarkLargeP measures the large-P hot paths: the uniform
// synthetic-traffic workload on the flow and LogP tiers at 256 and 1024
// processors (the torus keeps link state linear in P), and at the
// 65536-processor kind limit on the hypercube (whose O(log P) routes
// keep a run this wide tractable; torus routes are O(sqrt P) and the
// flow tier's competitor walks along them make 65536 prohibitive).  Two
// metrics matter beyond ns/op:
//
//   - events_per_sec: kernel event throughput — the number the sparse
//     directory, on-demand routing, ladder event queue, and O(touched)
//     reset work exist to keep flat as P grows;
//   - B/op (via ReportAllocs): bytes allocated per complete run — the
//     memory-regression gate's input.  A per-message allocation sneaking
//     back into a large-P path shows up here multiplied by the entire
//     traffic volume.
//
// The p65536 cases take minutes per iteration; CI's regression gates run
// only the p256/p1024 cases, and recordings cover the wide cases at
// -benchtime 1x.
func BenchmarkLargeP(b *testing.B) {
	cases := []struct {
		kind Kind
		p    int
		topo string
	}{
		{Flow, 256, "torus"}, {Flow, 1024, "torus"},
		{LogP, 256, "torus"}, {LogP, 1024, "torus"},
		{Flow, 65536, "cube"}, {LogP, 65536, "cube"},
	}
	for _, c := range cases {
		c := c
		b.Run(fmt.Sprintf("%v/p%d", c.kind, c.p), func(b *testing.B) {
			b.ReportAllocs()
			var events uint64
			for i := 0; i < b.N; i++ {
				res, err := RunExtended("uniform", Tiny, 1, Config{
					Kind: c.kind, Topology: c.topo, P: c.p,
				})
				if err != nil {
					b.Fatal(err)
				}
				events = res.Stats.SimEvents
			}
			b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events_per_sec")
		})
	}
}

// BenchmarkGapAblation reproduces the section-7 experiment: contention
// of FFT on the cube under the strict LogP gap versus the
// per-event-class gap, against the target machine.
func BenchmarkGapAblation(b *testing.B) {
	var rows []AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = GapAblation(Tiny, 1, []int{8})
		if err != nil {
			b.Fatal(err)
		}
	}
	r := rows[len(rows)-1]
	b.ReportMetric(r.Target, "target_us")
	b.ReportMetric(r.CombinedGap, "combined_us")
	b.ReportMetric(r.PerClassGap, "perclass_us")
}

// BenchmarkProtocolComparison runs the protocol-sensitivity study
// (Berkeley vs MSI vs write-update) and reports the suite-mean ratios.
func BenchmarkProtocolComparison(b *testing.B) {
	var rows []ProtocolRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = ProtocolComparison(Tiny, 1, "full", 8)
		if err != nil {
			b.Fatal(err)
		}
	}
	var msi, upd float64
	for _, r := range rows {
		msi += r.MSI / r.Berkeley
		upd += r.Update / r.Berkeley
	}
	b.ReportMetric(msi/float64(len(rows)), "mean_msi_ratio")
	b.ReportMetric(upd/float64(len(rows)), "mean_update_ratio")
}

// BenchmarkTopologyStudy runs the five-topology accuracy comparison.
func BenchmarkTopologyStudy(b *testing.B) {
	var rows []TopologyRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = TopologyStudy("is", Tiny, 1, 8)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Ratio, r.Topology+"_ratio")
	}
}

// BenchmarkAccuracyDashboard regenerates all figures at bench scale and
// reports the per-metric abstraction error.
func BenchmarkAccuracyDashboard(b *testing.B) {
	var sums []AccuracySummary
	for i := 0; i < b.N; i++ {
		s := NewSession(Options{Scale: Tiny, Procs: benchProcs, Parallel: 4})
		frs, err := s.AllFigures()
		if err != nil {
			b.Fatal(err)
		}
		sums = Summarize(Accuracy(frs))
	}
	for _, s := range sums {
		name := map[Metric]string{
			LatencyOvh: "latency", ContentionOvh: "contention", ExecTime: "exec",
		}[s.Metric]
		b.ReportMetric(s.CLogPRatio, name+"_clogp_ratio")
	}
}

// BenchmarkGapTable times the analytic g derivation (section 5's table).
func BenchmarkGapTable(b *testing.B) {
	var rows []GapRow
	for i := 0; i < b.N; i++ {
		rows = GapTable([]int{2, 4, 8, 16, 32, 64})
	}
	if len(rows) != 18 {
		b.Fatalf("%d rows", len(rows))
	}
}
