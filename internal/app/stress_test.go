package app

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"spasm/internal/machine"
	"spasm/internal/mem"
)

// TestSyncStressProperty runs randomized workloads mixing locks, flags,
// barriers and shared references on every machine kind and checks the
// structural invariants: mutual exclusion holds, every critical section
// completes, barriers never tear, and the run terminates (no deadlock).
func TestSyncStressProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := []int{2, 4, 8}[rng.Intn(3)]
		kind := machine.Kinds()[rng.Intn(len(machine.Kinds()))]
		rounds := 3 + rng.Intn(4)

		var (
			locks   []*SpinLock
			bar     *Barrier
			arr     *mem.Array
			inside  int
			maxIn   int
			crits   int
			byRound = make([]int, rounds)
		)
		prog := &testProg{
			name: "stress",
			setup: func(c *Ctx) {
				for i := 0; i < 3; i++ {
					locks = append(locks, c.NewLock(fmt.Sprintf("l%d", i), i%p))
				}
				bar = c.NewBarrier("b", p, 0)
				arr = c.Space.Alloc("x", 64*p, 8, mem.Blocked)
			},
			body: func(pr *Proc) {
				myRng := rand.New(rand.NewSource(seed*100 + int64(pr.ID)))
				for r := 0; r < rounds; r++ {
					for step := 0; step < 5; step++ {
						switch myRng.Intn(3) {
						case 0:
							l := locks[myRng.Intn(len(locks))]
							l.Lock(pr)
							inside++
							if inside > maxIn {
								maxIn = inside
							}
							crits++
							pr.Compute(int64(myRng.Intn(40)))
							inside--
							l.Unlock(pr)
						case 1:
							i := myRng.Intn(arr.N)
							pr.ReadElem(arr, i)
							pr.WriteElem(arr, i)
						default:
							pr.Compute(int64(myRng.Intn(100)))
						}
					}
					bar.Arrive(pr)
					byRound[r]++
					bar.Arrive(pr)
				}
			},
		}
		if _, err := Run(prog, machine.Config{Kind: kind, Topology: "mesh", P: p}); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if maxIn > 1 {
			return false
		}
		if crits < 0 {
			return false
		}
		for _, c := range byRound {
			if c != p {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestFlagSetBeforeWait ensures a waiter arriving after the signal does
// not block.
func TestFlagSetBeforeWait(t *testing.T) {
	var flag *Flag
	runProg(t, 2, machine.Target,
		func(c *Ctx) { flag = c.NewFlag("f", 0) },
		func(p *Proc) {
			if p.ID == 0 {
				flag.Set(p)
			} else {
				p.Compute(100000) // arrive long after the set
				flag.Wait(p)
			}
		})
}

// TestFlagClearAndReuse exercises Clear across phases.
func TestFlagClearAndReuse(t *testing.T) {
	var (
		flag *Flag
		bar  *Barrier
		hits int
	)
	runProg(t, 2, machine.CLogP,
		func(c *Ctx) {
			flag = c.NewFlag("f", 0)
			bar = c.NewBarrier("b", 2, 0)
		},
		func(p *Proc) {
			for round := 0; round < 3; round++ {
				if p.ID == 0 {
					p.Compute(500)
					flag.Set(p)
				} else {
					flag.Wait(p)
					hits++
				}
				bar.Arrive(p)
				if p.ID == 0 {
					flag.Clear(p)
				}
				bar.Arrive(p)
			}
		})
	if hits != 3 {
		t.Errorf("waiter passed %d rounds, want 3", hits)
	}
}

// TestManyWaitersOneLock checks heavy contention converges and is fair
// enough that every processor gets the lock.
func TestManyWaitersOneLock(t *testing.T) {
	var (
		lock *SpinLock
		got  = map[int]int{}
	)
	runProg(t, 8, machine.Target,
		func(c *Ctx) { lock = c.NewLock("l", 0) },
		func(p *Proc) {
			for i := 0; i < 10; i++ {
				lock.Lock(p)
				got[p.ID]++
				p.Compute(30)
				lock.Unlock(p)
			}
		})
	for id := 0; id < 8; id++ {
		if got[id] != 10 {
			t.Errorf("proc %d acquired %d times", id, got[id])
		}
	}
}
