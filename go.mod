module spasm

go 1.22
