// Package client is a small Go client for the spasmd HTTP API
// (internal/service).  It submits runs, polls them to completion,
// fetches figures and sweeps, and reads the metrics page — the same
// surface the end-to-end tests and examples/service_client exercise.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"spasm/internal/report"
	"spasm/internal/service"
)

// Client talks to one spasmd instance.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8347".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// PollInterval paces Run's status polling (default 25ms).
	PollInterval time.Duration
}

// New returns a client for the server at base.
func New(base string) *Client {
	return &Client{BaseURL: strings.TrimRight(base, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// apiError is the decoded {"error": ...} body of a failed request.
type apiError struct {
	Status int
	Msg    string
}

func (e *apiError) Error() string {
	return fmt.Sprintf("spasmd: HTTP %d: %s", e.Status, e.Msg)
}

// do issues a request and decodes the JSON response into out (unless
// out is nil).  Non-2xx responses become *apiError values.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var ed struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &ed) == nil && ed.Error != "" {
			return &apiError{Status: resp.StatusCode, Msg: ed.Error}
		}
		return &apiError{Status: resp.StatusCode, Msg: strings.TrimSpace(string(data))}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// SubmitRun submits a run without waiting for it.
func (c *Client) SubmitRun(ctx context.Context, req service.RunRequest) (*service.RunStatus, error) {
	var st service.RunStatus
	if err := c.do(ctx, http.MethodPost, "/v1/runs", req, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// GetRun polls a run by ID.
func (c *Client) GetRun(ctx context.Context, id string) (*service.RunStatus, error) {
	var st service.RunStatus
	if err := c.do(ctx, http.MethodGet, "/v1/runs/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Run submits a run and polls until it is done or failed (or ctx ends).
func (c *Client) Run(ctx context.Context, req service.RunRequest) (*service.RunStatus, error) {
	st, err := c.SubmitRun(ctx, req)
	if err != nil {
		return nil, err
	}
	interval := c.PollInterval
	if interval <= 0 {
		interval = 25 * time.Millisecond
	}
	for st.State != service.StateDone && st.State != service.StateFailed {
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(interval):
		}
		if st, err = c.GetRun(ctx, st.ID); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// DecodeResult unpacks a completed run's statistics document.
func DecodeResult(st *service.RunStatus) (*report.RunDoc, error) {
	if st.State != service.StateDone {
		return nil, fmt.Errorf("client: run %s is %s (%s)", st.ID, st.State, st.Error)
	}
	var doc report.RunDoc
	if err := json.Unmarshal(st.Result, &doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

// Profile fetches a completed run's time-resolved telemetry as the
// JSON profile document.  The server materializes the profile on first
// request and serves the memoized copy afterwards; a run still in
// flight yields HTTP 409 (with a Retry-After hint) as an *apiError.
func (c *Client) Profile(ctx context.Context, id string) (*report.ProfileDoc, error) {
	var doc report.ProfileDoc
	if err := c.do(ctx, http.MethodGet, "/v1/runs/"+id+"/profile", nil, &doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

// ProfileRaw fetches a completed run's profile in its canonical compact
// binary encoding — byte-identical across requests and across servers
// for the same spec.  Decode it with spasm.DecodeProfile.
func (c *Client) ProfileRaw(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.BaseURL+"/v1/runs/"+id+"/profile?format=bin", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		var ed struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &ed) == nil && ed.Error != "" {
			return nil, &apiError{Status: resp.StatusCode, Msg: ed.Error}
		}
		return nil, &apiError{Status: resp.StatusCode, Msg: strings.TrimSpace(string(data))}
	}
	return data, nil
}

// SweepOpts narrows a figure or sweep request; zero values mean the
// server's defaults (scale small, seed 1, procs 2..64, the paper's
// three machines).
type SweepOpts struct {
	Procs    []int
	Scale    string
	Seed     int64
	Machines []string
}

func (o SweepOpts) query() url.Values {
	q := url.Values{}
	if len(o.Procs) > 0 {
		strs := make([]string, len(o.Procs))
		for i, p := range o.Procs {
			strs[i] = strconv.Itoa(p)
		}
		q.Set("procs", strings.Join(strs, ","))
	}
	if o.Scale != "" {
		q.Set("scale", o.Scale)
	}
	if o.Seed != 0 {
		q.Set("seed", strconv.FormatInt(o.Seed, 10))
	}
	if len(o.Machines) > 0 {
		q.Set("machines", strings.Join(o.Machines, ","))
	}
	return q
}

// Figure regenerates paper figure n on the server.
func (c *Client) Figure(ctx context.Context, n int, opts SweepOpts) (*report.FigureDoc, error) {
	q := opts.query()
	path := fmt.Sprintf("/v1/figures/%d", n)
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var doc report.FigureDoc
	if err := c.do(ctx, http.MethodGet, path, nil, &doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

// Sweep runs an ad-hoc (application, topology, metric) sweep.
func (c *Client) Sweep(ctx context.Context, app, topo, metric string, opts SweepOpts) (*report.FigureDoc, error) {
	q := opts.query()
	q.Set("app", app)
	q.Set("topo", topo)
	q.Set("metric", metric)
	var doc report.FigureDoc
	if err := c.do(ctx, http.MethodGet, "/v1/sweeps?"+q.Encode(), nil, &doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

// Healthz checks server liveness.
func (c *Client) Healthz(ctx context.Context) (*service.Health, error) {
	var h service.Health
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &h); err != nil {
		return nil, err
	}
	return &h, nil
}

// Metrics fetches the raw metrics page.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	return string(data), nil
}

// MetricValue extracts an un-labelled counter or gauge from a metrics
// page, e.g. MetricValue(page, "spasmd_cache_hits_total").
func MetricValue(page, name string) (float64, bool) {
	for _, line := range strings.Split(page, "\n") {
		rest, ok := strings.CutPrefix(line, name+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			return 0, false
		}
		return v, true
	}
	return 0, false
}
