package sim

import (
	"fmt"
	"testing"
)

// BenchmarkEventDispatch measures raw engine throughput: one process
// holding repeatedly (event schedule + heap pop + context switch).
func BenchmarkEventDispatch(b *testing.B) {
	e := NewEngine()
	e.Spawn("a", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Hold(10)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkDefer measures the lazy local-clock fast path.
func BenchmarkDefer(b *testing.B) {
	e := NewEngine()
	e.Spawn("a", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Defer(10)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkManyProcesses measures heap behaviour with a wide event queue.
func BenchmarkManyProcesses(b *testing.B) {
	e := NewEngine()
	for i := 0; i < 64; i++ {
		i := i
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for k := 0; k < b.N/64+1; k++ {
				p.Hold(Time(7 + i%13))
			}
		})
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkLockHandoff measures contended lock transfer cost.
func BenchmarkLockHandoff(b *testing.B) {
	e := NewEngine()
	var l Lock
	for i := 0; i < 8; i++ {
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for k := 0; k < b.N/8+1; k++ {
				l.Acquire(p)
				p.Hold(1)
				l.Release(p)
			}
		})
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkBarrierEpisode measures a full barrier episode for 16 parties.
func BenchmarkBarrierEpisode(b *testing.B) {
	e := NewEngine()
	bar := NewBarrier(16)
	for i := 0; i < 16; i++ {
		i := i
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for k := 0; k < b.N; k++ {
				p.Hold(Time(1 + i%5))
				bar.Arrive(p)
			}
		})
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
