package coherence

import "fmt"

// Protocol selects the invalidation-based coherence protocol variant.
//
// The paper's target machine runs the Berkeley ownership protocol; the
// discussion section argues (citing Wood et al.) that application
// performance is not very sensitive to the protocol choice, which is
// what licenses abstracting coherence overhead away.  The MSI variant
// exists to test that claim within this reproduction: same states minus
// ownership transfer — a dirty block is written back to its home on a
// read miss and memory supplies all subsequent readers.
type Protocol int

const (
	// Berkeley is the ownership protocol of the paper's target
	// machine: on a read miss the owning cache supplies the data
	// directly to the requester and retains ownership in the
	// shared-dirty state; memory is not updated until eviction.
	Berkeley Protocol = iota
	// MSI is the plain three-state invalidation protocol: a read miss
	// on a dirty block forces a writeback to the home memory, the
	// previous owner downgrades to a clean shared copy, and memory
	// supplies the requester.  No shared-dirty state exists.
	MSI
	// Update is a write-update protocol in the style of the DEC
	// Firefly: a write to a shared block propagates the new value to
	// every sharer (and the home memory) instead of invalidating, so
	// copies never go stale and readers never re-miss — at the price
	// of a data-sized update message per sharer per write.
	Update
)

func (p Protocol) String() string {
	switch p {
	case Berkeley:
		return "berkeley"
	case MSI:
		return "msi"
	case Update:
		return "update"
	}
	return fmt.Sprintf("Protocol(%d)", int(p))
}

// ParseProtocol converts "berkeley", "msi" or "update" to a Protocol.
func ParseProtocol(s string) (Protocol, error) {
	switch s {
	case "berkeley":
		return Berkeley, nil
	case "msi":
		return MSI, nil
	case "update":
		return Update, nil
	}
	return 0, fmt.Errorf("coherence: unknown protocol %q", s)
}

// Protocols lists the implemented protocols.
func Protocols() []Protocol { return []Protocol{Berkeley, MSI, Update} }
