package network

import (
	"testing"

	"spasm/internal/sim"
)

// BenchmarkRoute measures routing cost per topology at p=64.
func BenchmarkRoute(b *testing.B) {
	for _, topo := range topologies(64) {
		topo := topo
		b.Run(topo.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				src := i % 64
				dst := (i*31 + 17) % 64
				if src == dst {
					dst = (dst + 1) % 64
				}
				_ = topo.Route(src, dst)
			}
		})
	}
}

// BenchmarkReserve measures circuit reservation including contention
// bookkeeping on the mesh (the longest routes).
func BenchmarkReserve(b *testing.B) {
	f := NewFabric(NewMesh(64))
	now := sim.Time(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := i % 64
		dst := (i*31 + 17) % 64
		if src == dst {
			dst = (dst + 1) % 64
		}
		x := f.Reserve(now, src, dst, 32)
		now = x.Start // keep times monotone without runaway backlog
	}
}
