package machine

import (
	"fmt"

	"spasm/internal/mem"
	"spasm/internal/sim"
	"spasm/internal/stats"
)

// Conformance checks that a Machine implementation obeys the semantic
// contract every machine characterization must satisfy, independent of
// its timing model:
//
//  1. accounting: every Read/Write increments the issuing processor's
//     reference counters;
//  2. progress: accesses complete in finite simulated time and never
//     move a processor's clock backwards;
//  3. determinism: identical access sequences produce identical
//     simulated times and statistics;
//  4. locality sanity: a reference to the issuing node's own partition
//     never costs more than the same reference made remotely (for
//     machines that distinguish the two).
//
// Tests call it with a factory so each check starts from a fresh
// machine; it returns the first violation found.
func Conformance(factory func() (Machine, *mem.Space, *mem.Array)) error {
	if err := confAccounting(factory); err != nil {
		return err
	}
	if err := confProgress(factory); err != nil {
		return err
	}
	if err := confDeterminism(factory); err != nil {
		return err
	}
	return confLocality(factory)
}

func confAccounting(factory func() (Machine, *mem.Space, *mem.Array)) error {
	m, _, arr := factory()
	e := sim.NewEngine()
	run := stats.NewRun(m.P())
	e.Spawn("conf", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			m.Read(p, &run.Procs[0], 0, arr.At(i))
		}
		for i := 0; i < 5; i++ {
			m.Write(p, &run.Procs[0], 0, arr.At(i))
		}
	})
	if err := e.Run(); err != nil {
		return fmt.Errorf("conformance/accounting: %w", err)
	}
	if run.Procs[0].Reads != 10 || run.Procs[0].Writes != 5 {
		return fmt.Errorf("conformance/accounting: reads=%d writes=%d, want 10/5",
			run.Procs[0].Reads, run.Procs[0].Writes)
	}
	return nil
}

func confProgress(factory func() (Machine, *mem.Space, *mem.Array)) error {
	m, _, arr := factory()
	e := sim.NewEngine()
	e.MaxTime = sim.Micros(1e9) // any access loop must finish well inside this
	run := stats.NewRun(m.P())
	var violation error
	e.Spawn("conf", func(p *sim.Proc) {
		last := p.Now()
		for i := 0; i < 200; i++ {
			node := i % m.P()
			m.Read(p, &run.Procs[node], node, arr.At(i%arr.N))
			if p.Now() < last {
				violation = fmt.Errorf("conformance/progress: clock moved backwards")
				return
			}
			last = p.Now()
		}
	})
	if err := e.Run(); err != nil {
		return fmt.Errorf("conformance/progress: %w", err)
	}
	return violation
}

func confDeterminism(factory func() (Machine, *mem.Space, *mem.Array)) error {
	trial := func() (sim.Time, uint64) {
		m, _, arr := factory()
		e := sim.NewEngine()
		run := stats.NewRun(m.P())
		e.Spawn("conf", func(p *sim.Proc) {
			for i := 0; i < 300; i++ {
				node := (i * 7) % m.P()
				if i%3 == 0 {
					m.Write(p, &run.Procs[node], node, arr.At((i*13)%arr.N))
				} else {
					m.Read(p, &run.Procs[node], node, arr.At((i*13)%arr.N))
				}
			}
		})
		if err := e.Run(); err != nil {
			return -1, 0
		}
		return e.Now(), run.Messages()
	}
	t1, m1 := trial()
	t2, m2 := trial()
	if t1 != t2 || m1 != m2 {
		return fmt.Errorf("conformance/determinism: %v/%d vs %v/%d", t1, m1, t2, m2)
	}
	return nil
}

// NetworkConformance checks that a network backend obeys the contract
// every tier — detailed, LogP, flow — must satisfy behind the Network
// interface, independent of its timing model:
//
//  1. conservation: every message handed to the backend is counted,
//     and counted exactly once, in its traffic statistics;
//  2. monotone delivery: a message is never delivered before it was
//     sent plus its contention-free latency, waiting is never negative,
//     and back-to-back messages on the same (src, dst) pair issued at
//     nondecreasing times are delivered at nondecreasing times;
//  3. deterministic replay: driving a fresh backend twice through the
//     same access pattern yields identical schedules and statistics —
//     and so does the same backend after a Reset, which is the runpool
//     rebind contract.
//
// Tests call it once per registered tier (see NetworkTiers).
func NetworkConformance(tier NetworkTier, topoName string, p int) error {
	if err := netConservation(tier, topoName, p); err != nil {
		return err
	}
	if err := netMonotone(tier, topoName, p); err != nil {
		return err
	}
	return netReplay(tier, topoName, p)
}

func netConservation(tier NetworkTier, topoName string, p int) error {
	n, err := tier.New(topoName, p)
	if err != nil {
		return fmt.Errorf("net-conformance/%s: %w", tier.Name, err)
	}
	var now sim.Time
	var sent, bytes uint64
	for i := 0; i < 100; i++ {
		src := i % p
		dst := (i*3 + 1) % p
		if dst == src {
			dst = (dst + 1) % p
		}
		size := 8 + i%25
		d := n.Xfer(now, src, dst, size)
		sent++
		bytes += uint64(size)
		if d.At > now {
			now = d.At
		}
	}
	st := n.Stats()
	if st.Messages != sent {
		return fmt.Errorf("net-conformance/%s: carried %d messages, counted %d",
			tier.Name, sent, st.Messages)
	}
	if st.Bytes != bytes {
		return fmt.Errorf("net-conformance/%s: carried %d bytes, counted %d",
			tier.Name, bytes, st.Bytes)
	}
	return nil
}

func netMonotone(tier NetworkTier, topoName string, p int) error {
	n, err := tier.New(topoName, p)
	if err != nil {
		return fmt.Errorf("net-conformance/%s: %w", tier.Name, err)
	}
	var now, lastAt sim.Time
	for i := 0; i < 50; i++ {
		d := n.Xfer(now, 0, p-1, 16)
		if d.At < now+d.Latency {
			return fmt.Errorf("net-conformance/%s: message %d delivered at %v, before send %v + latency %v",
				tier.Name, i, d.At, now, d.Latency)
		}
		if d.Wait < 0 {
			return fmt.Errorf("net-conformance/%s: message %d has negative wait %v",
				tier.Name, i, d.Wait)
		}
		if d.At < lastAt {
			return fmt.Errorf("net-conformance/%s: delivery went backwards (%v after %v)",
				tier.Name, d.At, lastAt)
		}
		lastAt = d.At
		now += 5 // issue faster than the link drains: forces queueing/sharing
	}
	return nil
}

// netDrive runs one fixed pseudo-random pattern and fingerprints the
// resulting schedule.
func netDrive(n Network, p int) (sum sim.Time, st NetStats) {
	var now sim.Time
	for i := 0; i < 300; i++ {
		src := (i * 5) % p
		dst := (i*11 + 3) % p
		if dst == src {
			dst = (dst + 1) % p
		}
		at := now + sim.Time(i%7)
		if i%16 == 0 {
			n.Settle(now)
		}
		d := n.Xfer(at, src, dst, 8+(i*13)%25)
		sum += d.At + d.Wait
		if i%4 == 0 && d.At > now {
			now = d.At
		}
	}
	st = n.Stats()
	return sum, st
}

func netReplay(tier NetworkTier, topoName string, p int) error {
	fresh := func() (Network, error) { return tier.New(topoName, p) }
	a, err := fresh()
	if err != nil {
		return fmt.Errorf("net-conformance/%s: %w", tier.Name, err)
	}
	b, err := fresh()
	if err != nil {
		return fmt.Errorf("net-conformance/%s: %w", tier.Name, err)
	}
	sumA, stA := netDrive(a, p)
	sumB, stB := netDrive(b, p)
	if sumA != sumB || stA != stB {
		return fmt.Errorf("net-conformance/%s: replay diverged (%v/%+v vs %v/%+v)",
			tier.Name, sumA, stA, sumB, stB)
	}
	// Reset must restore the post-construction state exactly.
	a.Reset()
	sumR, stR := netDrive(a, p)
	if sumR != sumA || stR != stA {
		return fmt.Errorf("net-conformance/%s: run after Reset diverged (%v/%+v vs %v/%+v)",
			tier.Name, sumR, stR, sumA, stA)
	}
	return nil
}

func confLocality(factory func() (Machine, *mem.Space, *mem.Array)) error {
	cost := func(node, elem int) (sim.Time, error) {
		m, _, arr := factory()
		e := sim.NewEngine()
		run := stats.NewRun(m.P())
		var d sim.Time
		e.Spawn("conf", func(p *sim.Proc) {
			t0 := p.Now()
			m.Read(p, &run.Procs[node], node, arr.At(elem))
			d = p.Now() - t0
		})
		if err := e.Run(); err != nil {
			return 0, err
		}
		return d, nil
	}
	m, _, arr := factory()
	lo0, _ := arr.OwnerRange(0)
	local, err := cost(0, lo0)
	if err != nil {
		return fmt.Errorf("conformance/locality: %w", err)
	}
	remoteNode := m.P() - 1
	remote, err := cost(remoteNode, lo0)
	if err != nil {
		return fmt.Errorf("conformance/locality: %w", err)
	}
	if local > remote {
		return fmt.Errorf("conformance/locality: local read (%v) dearer than remote (%v)",
			local, remote)
	}
	return nil
}
