package spasm

// Determinism lock for the uniform synthetic-traffic workload: like the
// main rundocs golden, but over the extension registry, so the driver
// behind the large-P smoke runs and network benchmarks is pinned
// bit-for-bit too.  Regenerate with SPASM_UPDATE=1 only when a change
// is *intended* to alter simulated results.

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"spasm/internal/report"
)

const uniformGoldenPath = "testdata/uniform_tiny.golden.json"

func TestUniformRunDocsBitIdentical(t *testing.T) {
	var docs []report.RunDoc
	add := func(kind Kind, topo string, p int) {
		res, err := RunExtended("uniform", Tiny, 1, Config{Kind: kind, Topology: topo, P: p})
		if err != nil {
			t.Fatalf("uniform on %v/%s p=%d: %v", kind, topo, p, err)
		}
		docs = append(docs, report.RunJSON(res))
	}
	for _, kind := range Machines() {
		add(kind, "full", 8)
	}
	add(Target, "mesh", 8)
	add(Flow, "torus", 64)
	got, err := json.MarshalIndent(docs, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	if os.Getenv("SPASM_UPDATE") != "" {
		if err := os.MkdirAll(filepath.Dir(uniformGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(uniformGoldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", uniformGoldenPath, len(got))
		return
	}
	want, err := os.ReadFile(uniformGoldenPath)
	if err != nil {
		t.Fatalf("missing golden (run with SPASM_UPDATE=1 to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("uniform RunDoc JSON diverged from golden %s (%d vs %d bytes)",
			uniformGoldenPath, len(got), len(want))
	}
}
