package store

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testID = "00e7f4a1b2c3d4e5f60718293a4b5c6d7e8f90a1b2c3d4e5f60718293a4b5c6d"

func testRecord(id string) Record {
	return Record{
		ID:    id,
		Spec:  json.RawMessage(`{"app":"fft","p":4}`),
		Doc:   json.RawMessage(`{"program":"fft","total_us":12.5}`),
		Stats: json.RawMessage(`{"Total":8250}`),
	}
}

func TestRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(testID); ok {
		t.Fatal("hit on empty store")
	}
	rec := testRecord(testID)
	if err := s.Put(rec); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(testID)
	if !ok {
		t.Fatal("miss after Put")
	}
	if got.ID != rec.ID || !bytes.Equal(got.Doc, rec.Doc) ||
		!bytes.Equal(got.Spec, rec.Spec) || !bytes.Equal(got.Stats, rec.Stats) {
		t.Fatalf("round trip altered the record: %+v vs %+v", got, rec)
	}
	st := s.Stats()
	if st.Entries != 1 || st.Hits != 1 || st.Misses != 1 || st.Writes != 1 {
		t.Fatalf("counters %+v, want entries=1 hits=1 misses=1 writes=1", st)
	}
}

func TestReopenWarm(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec := testRecord(testID)
	if err := s.Put(rec); err != nil {
		t.Fatal(err)
	}
	if err := s.PutProfile(testID, []byte("SPRF-test-bytes")); err != nil {
		t.Fatal(err)
	}

	// A different process opening the same directory sees the record and
	// profile byte-identically, and the scan recovers entry/byte counts.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get(testID)
	if !ok || !bytes.Equal(got.Doc, rec.Doc) {
		t.Fatalf("reopened store lost the record (ok=%v)", ok)
	}
	raw, ok := s2.GetProfile(testID)
	if !ok || string(raw) != "SPRF-test-bytes" {
		t.Fatalf("reopened store lost the profile (ok=%v, %q)", ok, raw)
	}
	if st := s2.Stats(); st.Entries != 1 || st.Bytes <= 0 {
		t.Fatalf("reopen scan counters %+v, want entries=1, bytes>0", st)
	}
}

func TestCorruptRecordIsAMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testRecord(testID)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, testID[:2], testID+runSuffix)
	if err := os.WriteFile(path, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(testID); ok {
		t.Fatal("corrupt record served as a hit")
	}
	if st := s.Stats(); st.Errors == 0 {
		t.Fatalf("corruption not counted: %+v", st)
	}
	// The damaged file is removed so a rewrite heals it.
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt file not removed: %v", err)
	}
	if err := s.Put(testRecord(testID)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(testID); !ok {
		t.Fatal("rewrite after corruption missed")
	}
}

func TestIDMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// A record renamed to another content address must not be served
	// under it: the envelope echoes the id and Get validates the echo.
	other := strings.Repeat("ab", 32)
	if err := s.Put(testRecord(testID)); err != nil {
		t.Fatal(err)
	}
	src := filepath.Join(dir, testID[:2], testID+runSuffix)
	dst := filepath.Join(dir, other[:2], other+runSuffix)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(src, dst); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(other); ok {
		t.Fatal("mismatched id served as a hit")
	}
}

func TestInvalidIDs(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"", "..", "../../etc/passwd", "ABCDEF", "short", strings.Repeat("a", 200)} {
		if err := s.Put(testRecord(id)); err == nil {
			t.Errorf("Put accepted invalid id %q", id)
		}
		if _, ok := s.Get(id); ok {
			t.Errorf("Get hit on invalid id %q", id)
		}
	}
}

func TestOpenSweepsTempFiles(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "00")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(sub, tmpPrefix+"leftover")
	if err := os.WriteFile(tmp, []byte("half a record"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("leftover temp file survived Open: %v", err)
	}
}

func TestRewriteDoesNotDoubleCount(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testRecord(testID)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testRecord(testID)); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Entries != 1 || st.Writes != 2 {
		t.Fatalf("counters %+v, want entries=1 writes=2", st)
	}
}
