// Package apps implements the paper's five-application workload suite —
// EP, IS and CG from the NAS parallel benchmarks, CHOLESKY from SPLASH,
// and the classic FFT — as execution-driven programs over the app
// framework.  Each application computes real values in host memory while
// issuing the shared-memory reference pattern of its parallel algorithm,
// so results are verifiable and control flow (lock order, dynamic task
// scheduling) genuinely depends on simulated time.
//
// The applications span the characteristics the paper's analysis relies
// on: EP and FFT are static with regular communication (EP with a much
// higher computation-to-communication ratio); IS is static but
// communication-heavy and uses locks; CG and CHOLESKY have
// data-dependent reference patterns, CHOLESKY with fully dynamic task
// scheduling.
package apps

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"spasm/internal/app"
)

// rngPool recycles PRNG state across reference streams.  A rand.Rand
// over the default source carries ~5 KB of generator state; apps draw
// two per processor per run (Body and the Check replay), which at large
// P dominated whole-run allocation — ~10 MB per 1024-processor run —
// before pooling.  Seeding fully determines the source state, so a
// pooled generator re-seeded with the same seed emits the identical
// stream a fresh one would: results are unaffected.
var rngPool = sync.Pool{
	New: func() any { return rand.New(rand.NewSource(0)) },
}

// newRng returns a deterministic PRNG for synthetic input generation.
// Pass it to putRng when the stream is done (a defer is fine: the
// generator carries no run state, so returning it mid-unwind is safe).
func newRng(seed int64) *rand.Rand {
	rng := rngPool.Get().(*rand.Rand)
	rng.Seed(seed)
	return rng
}

// putRng returns a generator to the pool.
func putRng(rng *rand.Rand) { rngPool.Put(rng) }

// Instruction-cost model (cycles on the 33 MHz baseline processor).
const (
	// FlopCycles approximates one floating-point multiply-add.
	FlopCycles = 3
	// IntOpCycles approximates one integer ALU operation.
	IntOpCycles = 1
	// SqrtCycles approximates a square root or transcendental.
	SqrtCycles = 20
	// LoopCycles approximates per-iteration loop overhead.
	LoopCycles = 2
)

// Scale selects problem sizes: Tiny keeps unit tests fast, Small is the
// default for regenerating the paper's figures, Medium stresses the
// simulator.
type Scale int

const (
	Tiny Scale = iota
	Small
	Medium
)

func (s Scale) String() string {
	switch s {
	case Tiny:
		return "tiny"
	case Small:
		return "small"
	case Medium:
		return "medium"
	}
	return fmt.Sprintf("Scale(%d)", int(s))
}

// ParseScale converts "tiny", "small" or "medium" to a Scale.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "tiny":
		return Tiny, nil
	case "small":
		return Small, nil
	case "medium":
		return Medium, nil
	}
	return 0, fmt.Errorf("apps: unknown scale %q", s)
}

// Builder constructs a fresh Program instance (programs are single-use:
// one instance per run).
type Builder func(scale Scale, seed int64) app.Program

var registry = map[string]Builder{}

func register(name string, b Builder) { registry[name] = b }

// New builds the named application at the given scale.  A fresh seed
// varies the synthetic inputs; the paper's experiments use seed 1.
func New(name string, scale Scale, seed int64) (app.Program, error) {
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("apps: unknown application %q (have %v)", name, Names())
	}
	return b(scale, seed), nil
}

// Names lists the registered applications in alphabetical order.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// extended holds workloads beyond the paper's five-application suite;
// they are kept out of the main registry so suite-wide experiments
// reproduce the paper's exact workload set.
var extended = map[string]Builder{
	"mg":      NewMG,
	"uniform": NewUniform,
}

// NewExtended builds a named extension workload ("mg", the multigrid
// solver with hierarchical communication, or "uniform", the synthetic
// uniform-random traffic driver).
func NewExtended(name string, scale Scale, seed int64) (app.Program, error) {
	b, ok := extended[name]
	if !ok {
		return nil, fmt.Errorf("apps: unknown extended workload %q (have %v)", name, ExtendedNames())
	}
	return b(scale, seed), nil
}

// ExtendedNames lists the extension workloads.
func ExtendedNames() []string {
	names := make([]string, 0, len(extended))
	for n := range extended {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// share splits n items across P processors and returns processor id's
// half-open range; remainders go to the lowest-numbered processors.
func share(n, p, id int) (lo, hi int) {
	base := n / p
	rem := n % p
	lo = id*base + min(id, rem)
	hi = lo + base
	if id < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
