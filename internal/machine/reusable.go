package machine

import (
	"fmt"

	"spasm/internal/mem"
)

// Reusable is a machine that can be rebound to a freshly set-up address
// space run after run, resetting its mutable state in place instead of
// being rebuilt.  Construction cost — topology route tables, fabric
// resource arrays, per-node cache line arrays, directory chunks — is
// paid once, on the first Bind; every later Bind only clears or
// re-stamps state, which internal/runpool relies on to make pooled runs
// observationally identical to fresh ones.
//
// A Reusable is tied to one configuration and one node count for its
// whole life.  It is not safe for concurrent use; a pool hands each
// context to one worker at a time.
type Reusable struct {
	cfg      Config
	p        int // node count fixed by the first Bind
	m        Machine
	released bool
}

// NewReusable returns a reusable machine for the given configuration.
// No machine is built until the first Bind — construction needs the
// address space, which only exists after an application's Setup runs.
func NewReusable(cfg Config) *Reusable {
	return &Reusable{cfg: cfg.Canonical()}
}

// Config returns the canonicalized configuration the machine is built
// from.
func (r *Reusable) Config() Config { return r.cfg }

// Bind returns the machine attached to space.  The first call builds it
// with New; subsequent calls reset the existing machine in place — the
// address space pointer is swapped (the new run's Setup laid out memory
// afresh) and each mutable component is returned to its post-construction
// state: the LogP net re-stamps its port slots to -g, the target fabric
// frees all links and ports, and the coherence engine re-stamps every
// directory entry, zeroes every block lock, and clears every cache.
func (r *Reusable) Bind(space *mem.Space) (Machine, error) {
	if r.released {
		return nil, fmt.Errorf("machine: Bind after Release")
	}
	if r.m == nil {
		m, err := New(r.cfg, space)
		if err != nil {
			return nil, err
		}
		r.m = m
		r.p = space.P()
		return m, nil
	}
	if space.P() != r.p {
		return nil, fmt.Errorf("machine: rebind with %d nodes, machine built for %d", space.P(), r.p)
	}
	switch m := r.m.(type) {
	case *ideal:
		// Stateless: nothing to reset, no space reference held.
	case *logpMachine:
		m.space = space
		m.net.Reset()
	case *flowMachine:
		m.space = space
		m.net.Reset()
	case *cachedMachine:
		m.space = space
		if m.net != nil {
			m.net.Reset()
		}
		if m.fab != nil {
			m.fab.Reset()
		}
		m.eng.Reset(space)
	default:
		return nil, fmt.Errorf("machine: cannot rebind %T", r.m)
	}
	return r.m, nil
}

// Release declares the machine permanently dropped and lets components
// that recycle large allocations hand them back (today the LogP-based
// machines return their per-node port arrays to a package freelist, so
// a replacement context's construction picks them up instead of
// allocating afresh).  Call it only when the Reusable will never Bind
// again — a pooled context leaving the pool for good.  Results computed
// by past runs stay readable; Release is idempotent.
func (r *Reusable) Release() {
	if r.released {
		return
	}
	r.released = true
	if m, ok := r.m.(interface{ ReleaseResources() }); ok {
		m.ReleaseResources()
	}
}
