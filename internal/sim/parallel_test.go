package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// trace is a deterministic execution log: every append happens inside an
// Ordered section, so in a correct parallel run the entries land in
// exactly the sequential dispatch order.
type trace struct {
	log []string
}

func (t *trace) add(p *Proc, format string, args ...any) {
	p.Ordered(func() {
		t.log = append(t.log, fmt.Sprintf("%s@%v: %s", p.Name, p.Now(), fmt.Sprintf(format, args...)))
	})
}

// runBoth executes the same program sequentially and in parallel mode and
// requires identical results: same error, same event count, same final
// clock, same trace.
func runBoth(t *testing.T, workers int, lookahead Time, build func(e *Engine, tr *trace)) (*Engine, *trace) {
	t.Helper()

	seqEng, seqTr := NewEngine(), &trace{}
	build(seqEng, seqTr)
	seqErr := seqEng.Run()

	parEng, parTr := NewEngine(), &trace{}
	build(parEng, parTr)
	parEng.SetParallel(workers, lookahead, func(id int) int { return id % 2 })
	if !parEng.WillRunParallel() {
		t.Fatalf("parallel mode unexpectedly unavailable: %q", parEng.parFallback())
	}
	parErr := parEng.Run()

	if (seqErr == nil) != (parErr == nil) || (seqErr != nil && seqErr.Error() != parErr.Error()) {
		t.Fatalf("result mismatch: sequential %v, parallel %v", seqErr, parErr)
	}
	if !parEng.ParReport().Parallel {
		t.Fatal("run did not execute in parallel mode")
	}
	if seqEng.Events != parEng.Events {
		t.Fatalf("event count mismatch: sequential %d, parallel %d", seqEng.Events, parEng.Events)
	}
	if seqEng.Now() != parEng.Now() {
		t.Fatalf("final clock mismatch: sequential %v, parallel %v", seqEng.Now(), parEng.Now())
	}
	if len(seqTr.log) != len(parTr.log) {
		t.Fatalf("trace length mismatch: sequential %d, parallel %d", len(seqTr.log), len(parTr.log))
	}
	for i := range seqTr.log {
		if seqTr.log[i] != parTr.log[i] {
			t.Fatalf("trace diverges at %d:\n  sequential: %s\n  parallel:   %s", i, seqTr.log[i], parTr.log[i])
		}
	}
	return parEng, parTr
}

// TestParallelPingPong alternates two processes through a lock with
// asymmetric hold times; the trace interleaving is fully determined.
func TestParallelPingPong(t *testing.T) {
	eng, tr := runBoth(t, 2, 5, func(e *Engine, tr *trace) {
		var l Lock
		for i := 0; i < 2; i++ {
			hold := Time(3 + 2*i)
			e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				for round := 0; round < 20; round++ {
					l.Acquire(p)
					tr.add(p, "locked round %d", round)
					p.Hold(hold)
					l.Release(p)
					p.Hold(1)
				}
			})
		}
	})
	if len(tr.log) != 40 {
		t.Fatalf("trace length %d, want 40", len(tr.log))
	}
	if rep := eng.ParReport(); rep.Windows == 0 || rep.Releases == 0 {
		t.Fatalf("no windows recorded: %+v", rep)
	}
}

// TestParallelRandomized drives a randomized mix of holds, defers,
// yields, barrier phases, semaphores, and queue waits across several
// processes and domains.
func TestParallelRandomized(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		const procs = 8
		build := func(e *Engine, tr *trace) {
			bar := NewBarrier(procs)
			sem := NewSemaphore(2)
			var l Lock
			var q Queue
			var pending int
			for i := 0; i < procs; i++ {
				rng := rand.New(rand.NewSource(seed*1000 + int64(i)))
				e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
					for phase := 0; phase < 5; phase++ {
						for step := 0; step < 6; step++ {
							switch rng.Intn(6) {
							case 0:
								p.Hold(Time(rng.Intn(20)))
							case 1:
								p.Defer(Time(rng.Intn(9)))
							case 2:
								p.Yield()
							case 3:
								sem.Acquire(p)
								p.Hold(Time(1 + rng.Intn(5)))
								p.Ordered(func() { sem.Release() })
							case 4:
								l.Acquire(p)
								tr.add(p, "crit phase %d step %d", phase, step)
								p.Hold(Time(rng.Intn(4)))
								l.Release(p)
							case 5:
								// Meet in pairs through the bare queue.
								var wake bool
								p.FlushLag()
								p.Ordered(func() {
									if pending > 0 {
										pending--
										wake = true
										q.WakeOne()
									} else {
										pending++
									}
								})
								if !wake {
									q.Wait(p)
								}
							}
						}
						tr.add(p, "arrive %d", phase)
						bar.Arrive(p)
					}
					// Drain stragglers parked on the pairing queue so the
					// run ends cleanly.
					p.Ordered(func() {
						if pending > 0 {
							pending--
							q.WakeOne()
						}
					})
				})
			}
		}
		for _, workers := range []int{2, 4, 8} {
			t.Run(fmt.Sprintf("seed%d_w%d", seed, workers), func(t *testing.T) {
				runBoth(t, workers, 10, build)
			})
		}
	}
}

// TestParallelDeadlockIdentical: a program that deadlocks must produce
// the same DeadlockError from both modes and leak nothing.
func TestParallelDeadlock(t *testing.T) {
	build := func(e *Engine, tr *trace) {
		var q Queue
		for i := 0; i < 4; i++ {
			e.Spawn(fmt.Sprintf("stuck%d", i), func(p *Proc) {
				p.Hold(Time(p.ID + 1))
				q.Wait(p) // nobody wakes anyone
			})
		}
	}
	eng, _ := runBoth(t, 4, 100, build)
	var dl *DeadlockError
	seq := NewEngine()
	build(seq, &trace{})
	if err := seq.Run(); !errors.As(err, &dl) {
		t.Fatalf("sequential run did not deadlock: %v", err)
	}
	_ = eng
}

// TestParallelPanicPropagates: a process panic fails the run with the
// same error text as the sequential kernel and unwinds every goroutine.
func TestParallelPanic(t *testing.T) {
	runBoth(t, 4, 50, func(e *Engine, tr *trace) {
		for i := 0; i < 4; i++ {
			e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				p.Hold(Time(10 * (p.ID + 1)))
				if p.ID == 2 {
					panic("boom")
				}
				p.Hold(1000)
			})
		}
	})
}

// TestParallelInterrupt aborts a parallel run mid-flight and requires the
// degenerate drain: an AbortError, no leaked goroutines, and a recorded
// mid-flight fallback.
func TestParallelInterrupt(t *testing.T) {
	before := runtime.NumGoroutine()
	e := NewEngine()
	var started atomic.Bool
	for i := 0; i < 8; i++ {
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for {
				started.Store(true)
				p.Hold(5)
				p.Yield()
			}
		})
	}
	e.SetParallel(4, 10, func(id int) int { return id % 4 })
	go func() {
		for !started.Load() {
			runtime.Gosched()
		}
		time.Sleep(200 * time.Microsecond)
		e.Interrupt()
	}()
	err := e.Run()
	var abort *AbortError
	if !errors.As(err, &abort) {
		t.Fatalf("interrupted run returned %v, want *AbortError", err)
	}
	rep := e.ParReport()
	if !rep.Parallel {
		t.Fatal("run did not execute in parallel mode")
	}
	if rep.Fallback != "drained-mid-flight" {
		t.Fatalf("Fallback = %q, want drained-mid-flight", rep.Fallback)
	}
	// Every process goroutine must have unwound.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d > %d before", runtime.NumGoroutine(), before)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestParallelFallbackReasons checks each incompatibility the engine
// detects, and that a fallback run still completes correctly.
func TestParallelFallbackReasons(t *testing.T) {
	newTwo := func() *Engine {
		e := NewEngine()
		for i := 0; i < 2; i++ {
			e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) { p.Hold(5) })
		}
		return e
	}
	cases := []struct {
		name string
		prep func(e *Engine)
		want string
	}{
		{"forced", func(e *Engine) { e.ForceSequential("machine-decorator") }, "machine-decorator"},
		{"zero-lookahead", func(e *Engine) { e.SetParallel(4, 0, func(id int) int { return id }) }, "zero-lookahead"},
		{"tick-hook", func(e *Engine) { e.Tick = func(Time) {} }, "tick-hook"},
		{"time-limit", func(e *Engine) { e.MaxTime = 1 << 40 }, "time-limit-watchdog"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			e := newTwo()
			e.SetParallel(4, 10, func(id int) int { return id })
			c.prep(e)
			if e.WillRunParallel() {
				t.Fatal("WillRunParallel = true, want false")
			}
			if err := e.Run(); err != nil {
				t.Fatalf("fallback run failed: %v", err)
			}
			rep := e.ParReport()
			if rep.Parallel {
				t.Fatal("fallback run reported parallel execution")
			}
			if rep.Fallback != c.want {
				t.Fatalf("Fallback = %q, want %q", rep.Fallback, c.want)
			}
		})
	}
	t.Run("single-process", func(t *testing.T) {
		e := NewEngine()
		e.Spawn("only", func(p *Proc) { p.Hold(5) })
		e.SetParallel(4, 10, func(id int) int { return id })
		if e.WillRunParallel() {
			t.Fatal("WillRunParallel = true for one process")
		}
		if err := e.Run(); err != nil {
			t.Fatalf("run failed: %v", err)
		}
		if got := e.ParReport().Fallback; got != "single-process" {
			t.Fatalf("Fallback = %q, want single-process", got)
		}
	})
}

// TestParallelReset: a pooled engine clears all parallel state on Reset
// and runs sequentially afterwards.
func TestParallelReset(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 2; i++ {
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) { p.Hold(5) })
	}
	e.SetParallel(2, 10, func(id int) int { return id })
	if err := e.Run(); err != nil {
		t.Fatalf("parallel run failed: %v", err)
	}
	if !e.ParReport().Parallel {
		t.Fatal("first run was not parallel")
	}
	e.Reset()
	if rep := e.ParReport(); rep.Requested != 0 || rep.Parallel || rep.Fallback != "" || rep.Windows != 0 {
		t.Fatalf("Reset left parallel state behind: %+v", rep)
	}
	e.Spawn("after", func(p *Proc) { p.Hold(3) })
	if err := e.Run(); err != nil {
		t.Fatalf("sequential re-run failed: %v", err)
	}
	if e.ParReport().Parallel {
		t.Fatal("re-run after Reset unexpectedly parallel")
	}
}

// TestParallelMidRunSpawn: processes spawned from inside a parallel run
// join the window and the result stays identical to sequential.
func TestParallelMidRunSpawn(t *testing.T) {
	runBoth(t, 2, 20, func(e *Engine, tr *trace) {
		for i := 0; i < 2; i++ {
			e.Spawn(fmt.Sprintf("root%d", i), func(p *Proc) {
				p.Hold(Time(5 * (p.ID + 1)))
				var child *Proc
				p.Ordered(func() {
					child = e.Spawn(fmt.Sprintf("child-of-%d", p.ID), func(c *Proc) {
						c.Hold(7)
						tr.add(c, "child done")
					})
				})
				_ = child
				tr.add(p, "spawned")
				p.Hold(30)
			})
		}
	})
}
