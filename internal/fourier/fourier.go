// Package fourier provides the host-side complex FFT kernels the
// simulated FFT application computes with, plus a naive DFT used to
// verify results.  The simulated application issues the *reference
// pattern* of a distributed transpose-based FFT; this package supplies
// the numerics so the program computes a real answer that tests can
// check (execution-driven simulation with real values, as SPASM ran real
// application code).
package fourier

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// InPlace computes the in-place radix-2 decimation-in-time FFT of x,
// whose length must be a power of two.  If inverse is true the inverse
// transform (unscaled) is computed; divide by len(x) to invert exactly.
func InPlace(x []complex128, inverse bool) {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("fourier: length %d not a power of two", n))
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 1; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := cmplx.Exp(complex(0, sign*math.Pi/float64(half)))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= step
			}
		}
	}
}

// FFT returns the forward transform of x without modifying it.
func FFT(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	InPlace(out, false)
	return out
}

// DFT is the O(n²) direct transform used as an independent oracle.
func DFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			angle := -2 * math.Pi * float64(j) * float64(k) / float64(n)
			s += x[j] * cmplx.Exp(complex(0, angle))
		}
		out[k] = s
	}
	return out
}

// Twiddle returns ω_n^(j*k) = exp(-2πi·j·k/n), the six-step FFT's
// inter-phase factor.
func Twiddle(n, j, k int) complex128 {
	angle := -2 * math.Pi * float64(j) * float64(k) / float64(n)
	return cmplx.Exp(complex(0, angle))
}

// MaxErr returns the largest magnitude difference between a and b.
func MaxErr(a, b []complex128) float64 {
	if len(a) != len(b) {
		panic("fourier: MaxErr length mismatch")
	}
	var worst float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}
