package report

import (
	"fmt"
	"strings"

	"spasm/internal/probe"
	"spasm/internal/stats"
)

// ProfileCSV renders a time-resolved profile as CSV, one row per epoch:
// the epoch's time window, the overhead buckets summed over processors,
// the cache and coherence counters, the fabric utilization (mean and
// busiest link), and the message-delay median and 99th percentile.
func ProfileCSV(p *probe.Profile) string {
	var b strings.Builder
	b.WriteString("epoch,start_us,end_us,compute_us,memory_us,latency_us,contention_us,sync_us," +
		"misses,invals,writebacks,messages,link_util,max_link_util,delay_p50_us,delay_p99_us\n")
	for i := range p.Epochs {
		e := &p.Epochs[i]
		var misses, invals, writebacks, messages uint64
		for j := range e.Procs {
			misses += e.Procs[j].Misses
			invals += e.Procs[j].Invals
			writebacks += e.Procs[j].Writebacks
			messages += e.Procs[j].Messages
		}
		mean, max := p.Utilization(i)
		fmt.Fprintf(&b, "%d,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%d,%d,%d,%d,%.4f,%.4f,%.3f,%.3f\n",
			i, p.EpochStart(i).Micros(), p.EpochStart(i+1).Micros(),
			p.EpochSum(i, stats.Compute).Micros(),
			p.EpochSum(i, stats.Memory).Micros(),
			p.EpochSum(i, stats.Latency).Micros(),
			p.EpochSum(i, stats.Contention).Micros(),
			p.EpochSum(i, stats.Sync).Micros(),
			misses, invals, writebacks, messages,
			mean, max,
			e.DelayQuantile(0.50).Micros(), e.DelayQuantile(0.99).Micros())
	}
	return b.String()
}

// ProfileTable renders a profile as a fixed-width table, one row per
// epoch — the terminal view behind the -profile flags.
func ProfileTable(p *probe.Profile) *Table {
	t := &Table{
		Title: fmt.Sprintf("Profile: %s on %s/%s p=%d (epoch %v, total %v)",
			p.App, p.Machine, p.Topology, p.P, p.EpochLen, p.Total),
		Headers: []string{"epoch", "t(us)", "compute", "memory", "latency", "contention", "sync",
			"misses", "msgs", "util%", "max-link%"},
	}
	for i := range p.Epochs {
		e := &p.Epochs[i]
		var misses, messages uint64
		for j := range e.Procs {
			misses += e.Procs[j].Misses
			messages += e.Procs[j].Messages
		}
		mean, max := p.Utilization(i)
		t.Add(i, fmt.Sprintf("%.0f", p.EpochStart(i).Micros()),
			p.EpochSum(i, stats.Compute).Micros(),
			p.EpochSum(i, stats.Memory).Micros(),
			p.EpochSum(i, stats.Latency).Micros(),
			p.EpochSum(i, stats.Contention).Micros(),
			p.EpochSum(i, stats.Sync).Micros(),
			misses, messages,
			100*mean, 100*max)
	}
	return t
}

// ProfileDoc is the JSON form of a profile for the spasmd API.  Like
// RunDoc it is fully deterministic: every field is a function of the
// run's spec.
type ProfileDoc struct {
	App      string  `json:"app"`
	Machine  string  `json:"machine"`
	Topology string  `json:"topology"`
	P        int     `json:"p"`
	NumLinks int     `json:"num_links,omitempty"`
	EpochUS  float64 `json:"epoch_us"`
	TotalUS  float64 `json:"total_us"`

	Epochs []ProfileEpochDoc `json:"epochs"`
}

// ProfileEpochDoc is one epoch within a ProfileDoc, with the buckets
// summed over processors and the link series reduced to utilization.
type ProfileEpochDoc struct {
	StartUS      float64 `json:"start_us"`
	ComputeUS    float64 `json:"compute_us"`
	MemoryUS     float64 `json:"memory_us"`
	LatencyUS    float64 `json:"latency_us"`
	ContentionUS float64 `json:"contention_us"`
	SyncUS       float64 `json:"sync_us"`

	Misses     uint64 `json:"misses"`
	Invals     uint64 `json:"invals"`
	Writebacks uint64 `json:"writebacks"`
	Messages   uint64 `json:"messages"`

	LinkUtil    float64 `json:"link_util,omitempty"`
	MaxLinkUtil float64 `json:"max_link_util,omitempty"`
	DelayP50US  float64 `json:"delay_p50_us"`
	DelayP99US  float64 `json:"delay_p99_us"`
}

// ProfileJSON converts a profile to its deterministic JSON document form.
func ProfileJSON(p *probe.Profile) ProfileDoc {
	doc := ProfileDoc{
		App:      p.App,
		Machine:  p.Machine,
		Topology: p.Topology,
		P:        p.P,
		NumLinks: p.NumLinks,
		EpochUS:  p.EpochLen.Micros(),
		TotalUS:  p.Total.Micros(),
	}
	for i := range p.Epochs {
		e := &p.Epochs[i]
		ed := ProfileEpochDoc{
			StartUS:      p.EpochStart(i).Micros(),
			ComputeUS:    p.EpochSum(i, stats.Compute).Micros(),
			MemoryUS:     p.EpochSum(i, stats.Memory).Micros(),
			LatencyUS:    p.EpochSum(i, stats.Latency).Micros(),
			ContentionUS: p.EpochSum(i, stats.Contention).Micros(),
			SyncUS:       p.EpochSum(i, stats.Sync).Micros(),
			DelayP50US:   e.DelayQuantile(0.50).Micros(),
			DelayP99US:   e.DelayQuantile(0.99).Micros(),
		}
		for j := range e.Procs {
			ed.Misses += e.Procs[j].Misses
			ed.Invals += e.Procs[j].Invals
			ed.Writebacks += e.Procs[j].Writebacks
			ed.Messages += e.Procs[j].Messages
		}
		ed.LinkUtil, ed.MaxLinkUtil = p.Utilization(i)
		doc.Epochs = append(doc.Epochs, ed)
	}
	return doc
}
