// Command spasm runs one application on one simulated machine and prints
// the SPASM-style separation of overheads.
//
// Usage:
//
//	spasm -app fft -machine target -topo mesh -p 16 -scale small
//
// Machines: ideal, flow, logp, clogp, target.  Topologies: full, cube,
// mesh, ring, torus.  With -adaptive the run starts on the flow tier
// and escalates to the detailed target machine when a flow's occupancy
// reaches -escalate percent.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"spasm"
	"spasm/internal/report"
	"spasm/internal/stats"
)

func main() {
	var (
		appName = flag.String("app", "fft", "application: cg, cholesky, ep, fft, is (or extended: mg, uniform)")
		machStr = flag.String("machine", "target", "machine: ideal, flow, logp, clogp, target")
		topo    = flag.String("topo", "full", "topology: full, cube, mesh, ring, torus")
		p       = flag.Int("p", 8, "processors (power of two; up to 1024 on the coherent machines, more on the abstract tiers)")
		scale   = flag.String("scale", "small", "problem scale: tiny, small, medium")
		seed    = flag.Int64("seed", 1, "synthetic-input seed")
		perCls  = flag.Bool("perclass", false, "use per-event-class g gap (LogP machines)")
		adapt   = flag.Bool("adaptive", false, "adaptive fidelity: start on the flow tier, escalate to target on contention (implies -machine flow)")
		escPct  = flag.Int("escalate", 50, "with -adaptive: occupancy percent that trips escalation (0-100)")
		verbose = flag.Bool("v", false, "per-processor breakdown")
		phases  = flag.Bool("phases", false, "per-phase overhead breakdown")
		asJSON  = flag.Bool("json", false, "machine-readable output")
		profile = flag.String("profile", "", "time-resolved profile: '-' prints a per-epoch table, anything else is a CSV output path")
		workers = flag.Int("workers", 0, "parallel host execution: run the simulation on up to this many OS threads (bit-identical results; 0 or 1 = sequential)")
	)
	flag.Parse()

	kind, err := spasm.ParseKind(*machStr)
	if err != nil {
		fail(err)
	}
	sc, err := spasm.ParseScale(*scale)
	if err != nil {
		fail(err)
	}
	cfg := spasm.Config{Kind: kind, Topology: *topo, P: *p}
	if *perCls {
		cfg.PortMode = spasm.PerClassGap
	}

	var res *spasm.Result
	var prof *spasm.Profile
	if *adapt {
		spec := spasm.Spec{App: *appName, Scale: sc, Seed: *seed, Machine: spasm.Flow,
			Topology: *topo, P: *p, PortMode: cfg.PortMode,
			Adaptive: true, EscalatePct: *escPct, Workers: *workers}
		if *profile != "" {
			res, prof, err = spasm.RunSpecProfiled(spec)
		} else {
			res, err = spasm.RunSpec(spec)
		}
	} else if *profile != "" {
		// Profiling attaches an engine tick hook, which the parallel mode
		// declines (recorded as a "tick-hook" fallback); no point asking.
		res, prof, err = spasm.RunProfiled(*appName, sc, *seed, cfg)
	} else if *workers > 1 {
		spec := spasm.Spec{App: *appName, Scale: sc, Seed: *seed, Machine: kind,
			Topology: *topo, P: *p, PortMode: cfg.PortMode, Workers: *workers}
		res, err = spasm.RunSpec(spec)
	} else {
		res, err = spasm.Run(*appName, sc, *seed, cfg)
		if err != nil {
			// Fall back to the extension workloads (e.g. mg, uniform).
			// For a name the extension registry knows, its error is the
			// one worth reporting (a P-limit rejection, say), not the
			// core suite's "unknown application".
			for _, name := range spasm.ExtendedApps() {
				if name == *appName {
					res, err = spasm.RunExtended(*appName, sc, *seed, cfg)
					break
				}
			}
		}
	}
	if err != nil {
		fail(err)
	}
	if *asJSON {
		printJSON(res)
		return
	}
	printRun(res, *verbose)
	if *phases {
		fmt.Println()
		fmt.Print(spasm.PhaseReport(res))
	}
	if prof != nil {
		printProfile(prof, *profile)
	}
}

// printProfile surfaces the time-resolved run profile: a peak-pressure
// summary on stdout, plus either the full per-epoch table ("-") or a
// CSV file at the given path.
func printProfile(prof *spasm.Profile, dest string) {
	fmt.Println()
	epoch, total := prof.Peak(spasm.Contention)
	fmt.Printf("profile        : %d epochs of %v\n", len(prof.Epochs), prof.EpochLen)
	fmt.Printf("peak contention: epoch %d (t=%v), %v summed over procs\n",
		epoch, prof.EpochStart(epoch), total)
	if dest == "-" {
		fmt.Println()
		fmt.Print(spasm.ProfileTable(prof))
		return
	}
	if err := os.WriteFile(dest, []byte(spasm.ProfileCSV(prof)), 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("profile CSV    : wrote %s\n", dest)
}

// jsonRun is the machine-readable run summary.
type jsonRun struct {
	App        string             `json:"app"`
	Machine    string             `json:"machine"`
	Topology   string             `json:"topology"`
	Procs      int                `json:"procs"`
	ExecUs     float64            `json:"exec_us"`
	Overheads  map[string]float64 `json:"overheads_us"`
	Reads      uint64             `json:"reads"`
	Writes     uint64             `json:"writes"`
	Hits       uint64             `json:"hits"`
	Misses     uint64             `json:"misses"`
	Messages   uint64             `json:"messages"`
	NetBytes   uint64             `json:"net_bytes"`
	SimEvents  uint64             `json:"sim_events"`
	NetEvents  uint64             `json:"net_model_events"`
	WallMillis float64            `json:"wall_ms"`
	EventsSec  float64            `json:"events_per_sec"`

	// Parallel-execution outcome, present when -workers requested one.
	Workers     int    `json:"workers,omitempty"`
	Parallel    bool   `json:"parallel,omitempty"`
	ParFallback string `json:"par_fallback,omitempty"`

	Escalation *report.EscalationDoc `json:"escalation,omitempty"`
}

func printJSON(res *spasm.Result) {
	r := res.Stats
	out := jsonRun{
		App:      res.Program,
		Machine:  res.Config.Kind.String(),
		Topology: res.Config.Topology,
		Procs:    r.P(),
		ExecUs:   r.Total.Micros(),
		Overheads: map[string]float64{
			"compute":    r.Sum(spasm.Compute).Micros(),
			"memory":     r.Sum(spasm.Memory).Micros(),
			"latency":    r.Sum(spasm.Latency).Micros(),
			"contention": r.Sum(spasm.Contention).Micros(),
			"sync":       r.Sum(spasm.Sync).Micros(),
		},
		Reads:      r.Count(func(p *stats.Proc) uint64 { return p.Reads }),
		Writes:     r.Count(func(p *stats.Proc) uint64 { return p.Writes }),
		Hits:       r.Count(func(p *stats.Proc) uint64 { return p.Hits }),
		Misses:     r.Count(func(p *stats.Proc) uint64 { return p.Misses }),
		Messages:   r.Messages(),
		NetBytes:   r.Count(func(p *stats.Proc) uint64 { return p.NetBytes }),
		SimEvents:  r.SimEvents,
		NetEvents:  r.NetEvents,
		WallMillis: float64(r.Wall.Microseconds()) / 1000,
		EventsSec:  r.EventsPerSec(),
	}
	if par := res.Par; par != nil {
		out.Workers = par.Requested
		out.Parallel = par.Parallel
		out.ParFallback = par.Fallback
	}
	out.Escalation = report.RunJSON(res).Escalation
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fail(err)
	}
}

func printRun(res *spasm.Result, verbose bool) {
	r := res.Stats
	fmt.Printf("%s on %v/%s, p=%d\n", res.Program, res.Config.Kind, res.Config.Topology, r.P())
	fmt.Printf("  execution time : %12.1f us\n", r.Total.Micros())
	for _, b := range []spasm.Bucket{spasm.Compute, spasm.Memory, spasm.Latency, spasm.Contention, spasm.Sync} {
		fmt.Printf("  %-10s sum : %12.1f us   (mean %.1f us/proc)\n",
			b, r.Sum(b).Micros(), r.Mean(b).Micros())
	}
	fmt.Printf("  references     : %d reads, %d writes\n",
		r.Count(func(p *stats.Proc) uint64 { return p.Reads }),
		r.Count(func(p *stats.Proc) uint64 { return p.Writes }))
	fmt.Printf("  cache          : %d hits, %d misses\n",
		r.Count(func(p *stats.Proc) uint64 { return p.Hits }),
		r.Count(func(p *stats.Proc) uint64 { return p.Misses }))
	fmt.Printf("  network        : %d messages, %d bytes, %d accesses\n",
		r.Messages(),
		r.Count(func(p *stats.Proc) uint64 { return p.NetBytes }),
		r.NetAccesses())
	fmt.Printf("  simulation     : %d events in %v (%.0f events/s)\n",
		r.SimEvents, r.Wall, r.EventsPerSec())
	if par := res.Par; par != nil {
		if par.Parallel {
			fmt.Printf("  parallel       : %d workers, %d domains, %d windows, %d releases (peak %d in flight)\n",
				par.Requested, par.Domains, par.Windows, par.Releases, par.Peak)
		} else {
			fmt.Printf("  parallel       : requested %d workers, fell back to sequential (%s)\n",
				par.Requested, par.Fallback)
		}
	}
	if esc := res.Escalation; esc != nil {
		if esc.Tripped {
			fmt.Printf("  fidelity       : escalated %v -> %v at t=%.1f us (share %d, threshold %d%%)\n",
				esc.From, esc.To, esc.At.Micros(), esc.Share, esc.ThresholdPct)
		} else {
			fmt.Printf("  fidelity       : stayed on %v (threshold %d%% never reached)\n",
				esc.From, esc.ThresholdPct)
		}
	}
	if !verbose {
		return
	}
	fmt.Printf("\n%4s %12s %12s %12s %12s %12s %12s\n",
		"proc", "finish_us", "compute", "memory", "latency", "contention", "sync")
	for i := range r.Procs {
		pr := &r.Procs[i]
		fmt.Printf("%4d %12.1f %12.1f %12.1f %12.1f %12.1f %12.1f\n",
			pr.ID, pr.Finish.Micros(),
			pr.Time[spasm.Compute].Micros(), pr.Time[spasm.Memory].Micros(),
			pr.Time[spasm.Latency].Micros(), pr.Time[spasm.Contention].Micros(),
			pr.Time[spasm.Sync].Micros())
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "spasm:", err)
	os.Exit(1)
}
