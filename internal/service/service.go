// Package service turns the spasm simulator into a long-lived
// simulation-as-a-service daemon: an HTTP JSON API over a job queue, a
// bounded worker pool, and a content-addressed result cache.
//
// The design leans on one property of the simulator: a run is a
// deterministic function of its canonical spec (spasm.Spec).  That makes
// specs content addresses — the job ID is the spec's SHA-256 — and it
// makes results safe to cache forever:
//
//   - Submitting a spec whose result is cached returns the stored,
//     byte-identical statistics immediately (a cache hit).
//   - Submitting a spec that is already queued or running coalesces onto
//     the in-flight job instead of simulating twice.
//   - Otherwise the job is queued and executed by one of a fixed pool of
//     workers (default GOMAXPROCS — each simulation is internally
//     single-threaded, so that saturates the host without oversubscribing).
//
// Figure and sweep requests decompose into their underlying runs, which
// flow through the same queue and cache; repeating a figure request
// re-simulates nothing.
//
// Completed results are held in an LRU cache bounded by entry count;
// hits, misses and evictions are exported on /metrics along with queue
// depth, worker utilization and per-endpoint latency histograms.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"time"

	"sync"

	"spasm"
	"spasm/internal/faults"
	"spasm/internal/probe"
	"spasm/internal/report"
	"spasm/internal/stats"
)

// Config parameterizes a Server.
type Config struct {
	// Workers bounds simulation concurrency (default GOMAXPROCS;
	// each simulation is single-threaded, so this saturates the host).
	Workers int
	// CacheSize bounds the result cache, in entries (default 512).
	CacheSize int
	// QueueDepth bounds the pending-job queue (default 1024); Submit
	// fails with ErrQueueFull beyond it.
	QueueDepth int
	// RunTimeout bounds each job's wall-clock simulation time.  A run
	// past the deadline is aborted cooperatively (every simulated
	// process unwinds, nothing leaks) and the job fails with a timeout
	// error; its pooled run context is discarded rather than reused.
	// Zero (the default) means unbounded.
	RunTimeout time.Duration
	// NegativeCacheSize bounds the failed-result side cache, in entries
	// (default 64).  Failures are kept apart from successes so a burst
	// of bad specs cannot evict good results.
	NegativeCacheSize int
	// NegativeTTL is how long a cached failure is served before the
	// spec is retried (default 30s).  Deterministic failures come back
	// identical; failures caused by operational limits (timeouts) age
	// out and get a fresh chance.
	NegativeTTL time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.CacheSize < 1 {
		c.CacheSize = 512
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 1024
	}
	if c.NegativeCacheSize < 1 {
		c.NegativeCacheSize = 64
	}
	if c.NegativeTTL <= 0 {
		c.NegativeTTL = 30 * time.Second
	}
	return c
}

// State is a job's lifecycle state.
type State string

// Job lifecycle states, as reported by the API.
const (
	StatePending State = "pending"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
	// StateCanceled marks a job dropped before execution because every
	// waiter abandoned it (see SubmitWaited).  Canceled outcomes are
	// never cached: they reflect client behaviour, not the spec.
	StateCanceled State = "canceled"
)

// Submission errors.
var (
	// ErrDraining is returned once Shutdown has begun.
	ErrDraining = errors.New("service: draining, not accepting jobs")
	// ErrQueueFull is returned when the pending queue is at capacity.
	ErrQueueFull = errors.New("service: job queue full")
	// ErrUnknownRun is returned by Profile for an id that is neither
	// active nor cached.
	ErrUnknownRun = errors.New("service: no such run")
	// ErrRunActive is returned by Profile while the run is still
	// pending or running.
	ErrRunActive = errors.New("service: run not complete yet")
)

// Job is one queued, running, or completed simulation.  Its ID is the
// content address of its spec, so identical submissions share a Job.
type Job struct {
	id   string
	spec spasm.Spec
	req  RunRequest

	// state and entry are guarded by the owning Server's mutex; entry
	// is also safely readable by anyone who has observed done closed.
	state State
	entry *entry
	done  chan struct{}

	// cached marks a job answered straight from a cache — positive or
	// negative — so the HTTP layer can report 200 instead of 202.
	cached bool
	// waiters and pinned drive pre-execution cancellation: waiters
	// counts the SubmitWaited registrations still attached, and pinned
	// marks a job with at least one plain Submit (poll-based clients
	// never release, so their jobs are never canceled).  A pending job
	// whose last waiter releases — and that is not pinned — is dropped
	// before it burns a worker.  Guarded by the Server's mutex.
	waiters int
	pinned  bool
}

// ID returns the job's content address (the spec's SHA-256).
func (j *Job) ID() string { return j.id }

// Done is closed when the job completes (done or failed).
func (j *Job) Done() <-chan struct{} { return j.done }

// closedChan is the pre-closed done channel shared by cache-hit jobs.
var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// Server owns the job queue, the worker pool, and the result cache.
// Create one with New, expose it with Handler, stop it with Shutdown.
type Server struct {
	cfg     Config
	metrics *Metrics

	mu         sync.Mutex
	active     map[string]*Job // pending + running jobs by ID
	cache      *lru            // completed successes (also guarded by mu)
	neg        *negCache       // completed failures, bounded + TTL'd (also guarded by mu)
	queue      chan *Job
	draining   bool
	profFlight map[string]chan struct{} // in-flight profile computations by ID

	// pool holds reusable run contexts shared by the workers, so the
	// daemon amortizes machine construction across the jobs it executes;
	// its hit/miss/live counters are exported on /metrics.
	pool *spasm.RunPool

	workers sync.WaitGroup
}

// New starts a Server with cfg.Workers worker goroutines.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	idle := 2 * cfg.Workers
	if idle < 16 {
		idle = 16
	}
	s := &Server{
		cfg:        cfg,
		metrics:    newMetrics(time.Now(), cfg.Workers),
		active:     make(map[string]*Job),
		cache:      newLRU(cfg.CacheSize),
		neg:        newNegCache(cfg.NegativeCacheSize, cfg.NegativeTTL),
		queue:      make(chan *Job, cfg.QueueDepth),
		profFlight: make(map[string]chan struct{}),
		pool:       spasm.NewRunPool(idle),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s
}

// Submit registers a run for execution and returns its job plus whether
// the result was served from the (positive) cache.  An invalid spec
// fails immediately; an identical in-flight submission coalesces onto
// the existing job; a cached result returns a completed job at once —
// successes report hit=true, remembered failures report hit=false with
// the job already failed and Job.cached set.  Jobs submitted this way
// are pinned: they execute even if every waiting client goes away
// (poll-based clients never signal departure).
func (s *Server) Submit(spec spasm.Spec) (job *Job, hit bool, err error) {
	return s.submit(spec, true)
}

// SubmitWaited is Submit for clients that stay attached to the result:
// it registers the caller as a waiter and returns a release function
// the caller must invoke exactly once when it stops caring (normally
// deferred).  A pending job whose waiters all release — and that no
// plain Submit pinned — is canceled before it reaches a worker: its
// state becomes StateCanceled, Done closes, and nothing is cached.
// Jobs already running are never canceled (the simulation's cost is
// sunk; its deterministic result is worth keeping).
func (s *Server) SubmitWaited(spec spasm.Spec) (job *Job, hit bool, release func(), err error) {
	j, hit, err := s.submit(spec, false)
	if err != nil {
		return nil, false, nil, err
	}
	var once sync.Once
	return j, hit, func() { once.Do(func() { s.releaseWaiter(j) }) }, nil
}

func (s *Server) submit(spec spasm.Spec, pin bool) (job *Job, hit bool, err error) {
	spec = spec.Canonical()
	if err := spec.Validate(); err != nil {
		return nil, false, &RequestError{Err: err}
	}
	id := spec.Hash()

	s.mu.Lock()
	if j, ok := s.active[id]; ok {
		if pin {
			j.pinned = true
		} else {
			j.waiters++
		}
		s.mu.Unlock()
		s.metrics.jobCoalesced()
		return j, false, nil
	}
	if e, ok := s.cache.get(id, true); ok {
		s.mu.Unlock()
		j := &Job{id: id, spec: spec, req: RequestFromSpec(spec), entry: e, done: closedChan, cached: true}
		j.state = StateDone
		return j, true, nil
	}
	if e, ok := s.neg.get(id, time.Now(), true); ok {
		s.mu.Unlock()
		j := &Job{id: id, spec: spec, req: RequestFromSpec(spec), entry: e, done: closedChan, cached: true}
		j.state = StateFailed
		return j, false, nil
	}
	if s.draining {
		s.mu.Unlock()
		return nil, false, ErrDraining
	}
	j := &Job{id: id, spec: spec, req: RequestFromSpec(spec), state: StatePending, done: make(chan struct{})}
	if pin {
		j.pinned = true
	} else {
		j.waiters = 1
	}
	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		s.metrics.jobRejected()
		return nil, false, ErrQueueFull
	}
	s.active[id] = j
	s.mu.Unlock()
	s.metrics.jobSubmitted()
	return j, false, nil
}

// releaseWaiter detaches one SubmitWaited registration from j.  When
// the last waiter of an unpinned, still-pending job departs, the job is
// canceled in place: it leaves the active set (so a later identical
// submission starts fresh), its Done closes, and its carcass stays in
// the queue channel for the worker to skip.  Nothing is cached.
func (s *Server) releaseWaiter(j *Job) {
	s.mu.Lock()
	j.waiters--
	if j.waiters > 0 || j.pinned || j.state != StatePending {
		s.mu.Unlock()
		return
	}
	j.state = StateCanceled
	j.entry = &entry{id: j.id, req: j.req, err: "canceled: every waiter abandoned the job before execution", canceled: true}
	delete(s.active, j.id)
	s.mu.Unlock()
	close(j.done)
	s.metrics.jobCanceled()
}

// worker executes queued jobs until the queue closes at shutdown.
// Canceled carcasses still sitting in the queue channel are skipped:
// the state check under the mutex is the commit point — releaseWaiter
// only cancels jobs still StatePending, so once a worker has marked a
// job running it owns it to completion.
func (s *Server) worker() {
	defer s.workers.Done()
	for job := range s.queue {
		faults.Fire(faults.WorkerStall)
		s.mu.Lock()
		if job.state != StatePending {
			s.mu.Unlock()
			continue
		}
		job.state = StateRunning
		s.mu.Unlock()
		s.metrics.workerBusy(1)

		e := &entry{id: job.id, req: job.req}
		res, err := runSpecSafely(job.spec, s.pool, s.cfg.RunTimeout)
		if err == nil && res.Escalation != nil && res.Escalation.Tripped {
			s.metrics.runEscalated()
		}
		if err == nil && res.Par != nil {
			s.metrics.runParallelOutcome(res.Par.Parallel)
		}
		if err == nil {
			if err = faults.Fire(faults.Marshal); err == nil {
				var doc []byte
				doc, err = json.Marshal(report.RunJSON(res))
				if err == nil {
					e.doc = doc
					e.stats = res.Stats
				}
			}
		}
		timedOut := errors.Is(err, spasm.ErrRunTimeout)
		if err != nil {
			e.err = err.Error()
		}
		s.finish(job, e, timedOut)
		s.metrics.workerBusy(-1)
	}
}

// runSpecSafely shields the daemon from panicking simulations: invalid
// topology/processor combinations (and any future simulator bug) fail
// the one job — deterministically, so the failure is cacheable — rather
// than killing the server.  Runs execute on the server's context pool
// under the configured wall-clock deadline; pooled runs are bit-identical
// to fresh ones, and the RunDoc the worker stores is derived from the
// result's freshly allocated statistics, so nothing cached aliases
// pooled state.  A run that fails — aborted, panicked, or otherwise —
// discards its pooled context instead of returning it (half-finished
// simulation state never re-enters the pool).
func runSpecSafely(spec spasm.Spec, pool *spasm.RunPool, timeout time.Duration) (res *spasm.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("run panicked: %v", r)
		}
	}()
	if err := faults.Fire(faults.RunExec); err != nil {
		return nil, err
	}
	return spasm.RunSpecControlled(spec, pool, spasm.RunControl{Timeout: timeout})
}

// finish publishes a job's result: successes into the result cache,
// failures into the bounded negative cache, the job out of the active
// set, and the outcome to anyone blocked on Done.
func (s *Server) finish(job *Job, e *entry, timedOut bool) {
	s.mu.Lock()
	job.entry = e
	if e.err != "" {
		job.state = StateFailed
		s.neg.add(e, time.Now())
	} else {
		job.state = StateDone
		s.cache.add(e)
	}
	delete(s.active, job.id)
	s.mu.Unlock()
	close(job.done)
	s.metrics.jobFinished(e.err == "", timedOut)
}

// Wait blocks until the job completes or ctx is cancelled, then returns
// its final status.
func (s *Server) Wait(ctx context.Context, j *Job) (RunStatus, error) {
	select {
	case <-j.done:
	case <-ctx.Done():
		return RunStatus{}, ctx.Err()
	}
	return statusFromEntry(j.entry, false), nil
}

// Status reports a job by ID: an active (pending/running) job, or a
// completed one still in the result cache (successes) or the negative
// cache (unexpired failures).
func (s *Server) Status(id string) (RunStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.active[id]; ok {
		return RunStatus{ID: j.id, State: j.state, Spec: j.req}, true
	}
	if e, ok := s.cache.get(id, false); ok {
		return statusFromEntry(e, false), true
	}
	if e, ok := s.neg.get(id, time.Now(), false); ok {
		return statusFromEntry(e, false), true
	}
	return RunStatus{}, false
}

// runStats submits a spec (deduplicated and cached like any other
// submission) and blocks for its statistics — the execution path behind
// figure and sweep requests, injected into exp.Session as its Runner.
// It registers as a releasable waiter: when the request's context dies
// before the job runs, the release lets the server cancel the pending
// work instead of simulating for nobody.
func (s *Server) runStats(ctx context.Context, spec spasm.Spec) (*stats.Run, error) {
	j, _, release, err := s.SubmitWaited(spec)
	if err != nil {
		return nil, err
	}
	defer release()
	select {
	case <-j.done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	if j.entry.err != "" {
		return nil, fmt.Errorf("service: run %s: %s", j.id[:12], j.entry.err)
	}
	return j.entry.stats, nil
}

// Profile returns a completed run's time-resolved telemetry: the
// decoded profile and its canonical binary encoding (byte-identical on
// every call for the same spec).  The profile is computed on first
// request — by re-running the spec with the probe attached, which is
// sound because profiles are deterministic — and memoized on the run's
// cache entry.  Concurrent requests for the same id coalesce onto one
// computation (singleflight): waiters block on the leader and then read
// the memoized encoding.  It returns ErrUnknownRun for ids that are
// neither active nor cached, ErrRunActive while the run is still in
// flight, and the run's own error for failed runs.
func (s *Server) Profile(id string) (*probe.Profile, []byte, error) {
	// Each request is counted exactly once: a hit (memoized encoding was
	// already there), a miss (this request computed it), or coalesced
	// (waited on another request's computation).
	waited := false
	for {
		s.mu.Lock()
		if _, ok := s.active[id]; ok {
			s.mu.Unlock()
			return nil, nil, ErrRunActive
		}
		e, ok := s.cache.get(id, false)
		if !ok {
			if ne, negOK := s.neg.get(id, time.Now(), false); negOK {
				s.mu.Unlock()
				return nil, nil, fmt.Errorf("service: run %s failed: %s", id[:12], ne.err)
			}
			s.mu.Unlock()
			return nil, nil, ErrUnknownRun
		}
		if e.err != "" {
			s.mu.Unlock()
			return nil, nil, fmt.Errorf("service: run %s failed: %s", id[:12], e.err)
		}
		if e.prof != nil {
			prof, raw := e.prof, e.profBytes
			s.mu.Unlock()
			if !waited {
				s.metrics.profileServed(true)
			}
			return prof, raw, nil
		}
		flight, inFlight := s.profFlight[id]
		if inFlight {
			// Another request is already computing this profile; wait
			// for it and re-check from the top (on the rare eviction
			// between memoization and our re-check, the loop recomputes).
			s.mu.Unlock()
			s.metrics.profileCoalesced()
			waited = true
			<-flight
			continue
		}
		ch := make(chan struct{})
		s.profFlight[id] = ch
		req := e.req
		s.mu.Unlock()
		s.metrics.profileServed(false)

		prof, raw, err := computeProfile(req)

		// Memoize on the entry if it is still cached and we succeeded,
		// then release the flight so waiters can read the result.
		s.mu.Lock()
		if err == nil {
			if e, ok := s.cache.get(id, false); ok && e.prof == nil {
				e.prof, e.profBytes = prof, raw
			}
		}
		delete(s.profFlight, id)
		s.mu.Unlock()
		close(ch)
		return prof, raw, err
	}
}

// computeProfile derives a run's profile from its request: re-run the
// spec instrumented, then encode the profile canonically.
func computeProfile(req RunRequest) (*probe.Profile, []byte, error) {
	spec, err := req.Spec()
	if err != nil {
		return nil, nil, err
	}
	prof, err := profileSpecSafely(spec)
	if err != nil {
		return nil, nil, err
	}
	var buf bytes.Buffer
	if _, err := prof.Encode(&buf); err != nil {
		return nil, nil, err
	}
	return prof, buf.Bytes(), nil
}

// profileSpecSafely shields the daemon from panicking instrumented runs,
// exactly like runSpecSafely does for plain runs.
func profileSpecSafely(spec spasm.Spec) (prof *probe.Profile, err error) {
	defer func() {
		if r := recover(); r != nil {
			prof, err = nil, fmt.Errorf("profiled run panicked: %v", r)
		}
	}()
	_, prof, err = spasm.RunSpecProfiled(spec)
	return prof, err
}

// QueueDepth reports the number of jobs waiting for a worker.
func (s *Server) QueueDepth() int { return len(s.queue) }

// Shutdown stops accepting new jobs and drains the queue: every job
// already accepted — queued or in flight — completes before Shutdown
// returns (or ctx expires).  Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	drained := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// RequestError marks a client-side (HTTP 400) submission error.
type RequestError struct{ Err error }

func (e *RequestError) Error() string { return e.Err.Error() }
func (e *RequestError) Unwrap() error { return e.Err }
